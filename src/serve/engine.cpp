#include "serve/engine.hpp"

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::serve {

Engine::Engine(const ServingArtifact& artifact)
    : artifact_(&artifact),
      scratch_(artifact.model.net),
      state_(scratch_),
      flips_(artifact.model.net.n_layers()) {
  artifact.validate();
  scratch_.sync_transpose();
  // Serving always runs the event engine: bitwise-identical replies to the
  // dense reference (replay digests unchanged) while real traffic — sparse
  // rate-coded images — skips the silent waves.
  scratch_.set_engine(snn::EngineKind::kEvent);
}

ClassifyReply Engine::classify(const ClassifyRequest& request) {
  const auto& cfg = scratch_.config();
  SPARKXD_REQUIRE(request.image.size() == cfg.n_inputs,
                  "request image size does not match the model's inputs");
  const std::size_t n_layers = scratch_.n_layers();
  const error::SanitizeRange sanitize{cfg.stdp.w_min, artifact_->weight_clip};

  // Fault injection through the frozen tables — same per-layer stream
  // discipline as core::evaluate_corrupted's trials, keyed by the request
  // seed instead of a trial index.
  const std::uint64_t inject_seed = hash_combine(request.seed, 0);
  ClassifyReply reply;
  reply.id = request.id;
  for (std::size_t l = 0; l < n_layers; ++l) {
    Rng inject_rng = n_layers == 1
                         ? Rng(inject_seed)
                         : Rng(inject_seed).fork(static_cast<std::uint64_t>(l));
    flips_[l].clear();
    reply.flips += static_cast<std::uint32_t>(artifact_->layers[l].frozen.inject(
        scratch_.weights_delta(l), inject_rng, sanitize, &flips_[l]));
    for (const auto& f : flips_[l]) scratch_.mirror_weight(l, f.word);
  }

  Rng spike_rng(hash_combine(request.seed, 1));
  const auto counts = scratch_.infer(state_, request.image, spike_rng);
  reply.label = snn::vote_spike_counts(counts, artifact_->model.labels);
  for (const std::uint32_t c : counts) reply.spikes += c;

  // Restore the scratch weights bit for bit — the next request (on this
  // worker) starts from the pristine artifact weights again.
  for (std::size_t l = 0; l < n_layers; ++l) {
    error::revert_flips(scratch_.weights_delta(l), flips_[l]);
    for (const auto& f : flips_[l]) scratch_.mirror_weight(l, f.word);
  }
  return reply;
}

}  // namespace sparkxd::serve
