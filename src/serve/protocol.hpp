#pragma once
// Length-prefixed TCP wire protocol of the serving layer.
//
// Framing: every message is  [u32 LE payload length][payload] ; the payload
// begins with a one-byte message type followed by fixed-width little-endian
// fields (the same raw-POD convention model_io uses). Version 1 is exactly
// that; version 2 (negotiated per connection via kHello/kHelloAck) appends a
// CRC32 trailer to every frame so bit-corrupted payloads are rejected with
// kBadFrame instead of being decoded into an engine.
//
//   kClassify   u64 id, u64 seed, u32 n_pixels, f32 pixels[n_pixels]
//   kReply      u64 id, i32 label, u32 spikes, u32 flips
//   kStats      (empty) — server answers with kStatsReply on the same
//               connection, bypassing the batch queue
//   kStatsReply u64 served, u64 batches, u64 max_queue_depth,
//               u64 generation, u64 wedged_events, u64 deadline_exceeded,
//               u64 bad_frames, u64 evicted_slow, u64 rejected_conns,
//               u32 n_hist, u64 hist[n_hist]  (hist[i] = batches of size i+1)
//   kQueueFull  u64 id — overload backpressure: the admission queue was at
//               its bound when this classify request arrived; the request
//               was NOT processed (and never will be), the connection stays
//               open, and the client may retry
//   kDeadlineExceeded  u64 id — the request was admitted but waited in the
//               queue past the server's per-request deadline; it was NOT
//               classified. Same retry semantics as kQueueFull.
//   kBadFrame   (empty) — a CRC-checked frame failed verification. The
//               stream can no longer be trusted to be in sync, so the
//               server closes the connection right after sending this; the
//               client must reconnect and re-send its unanswered requests.
//   kHello      u32 version, u8 flags — client's first frame opting into a
//               protocol version. flags bit0 requests CRC framing (v2).
//   kHelloAck   u32 version, u8 flags — server's acceptance. The hello and
//               the ack are always plain (v1) frames; every frame AFTER the
//               ack travels in the negotiated mode, in both directions.
//
// Encode/decode work on byte vectors (unit-testable without sockets);
// read_frame/write_frame do the blocking fd I/O with full-length loops.

#include <cstdint>
#include <vector>

#include "serve/engine.hpp"

namespace sparkxd::serve {

enum class MsgType : std::uint8_t {
  kClassify = 1,
  kReply = 2,
  kStats = 3,
  kStatsReply = 4,
  kQueueFull = 5,
  kDeadlineExceeded = 6,
  kBadFrame = 7,
  kHello = 8,
  kHelloAck = 9,
};

inline constexpr std::uint32_t kProtocolV1 = 1;  ///< plain frames
inline constexpr std::uint32_t kProtocolV2 = 2;  ///< CRC32 trailer per frame
inline constexpr std::uint8_t kHelloFlagCrc = 0x01;

/// Upper bound on a frame payload; a length prefix beyond it is treated as
/// a corrupt/hostile stream and read_frame throws.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

/// Server-side counters reported through kStatsReply.
struct ServerStats {
  std::uint64_t served = 0;   ///< replies written
  std::uint64_t batches = 0;  ///< batches processed
  std::uint64_t max_queue_depth = 0;  ///< high-water admission-queue depth
  std::uint64_t generation = 1;       ///< artifact generation (bumped by reload)
  /// Times the watchdog observed a worker stuck on one batch past the
  /// stall bound. A nonzero value is the "fail loudly" signal — the server
  /// keeps running, but something is wedging the engines.
  std::uint64_t wedged_events = 0;
  std::uint64_t deadline_exceeded = 0;  ///< requests answered kDeadlineExceeded
  std::uint64_t bad_frames = 0;         ///< CRC failures answered kBadFrame
  std::uint64_t evicted_slow = 0;       ///< connections evicted mid-frame (slow-loris)
  std::uint64_t rejected_conns = 0;     ///< accepts closed at the --max-conns cap
  /// batch_hist[i] = number of batches of size i+1.
  std::vector<std::uint64_t> batch_hist;

  friend bool operator==(const ServerStats&, const ServerStats&) = default;
};

/// kHello / kHelloAck payload.
struct Hello {
  std::uint32_t version = kProtocolV1;
  bool crc = false;

  friend bool operator==(const Hello&, const Hello&) = default;
};

/// The type byte of a decoded payload; throws on an empty payload.
[[nodiscard]] MsgType frame_type(const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_classify(
    const ClassifyRequest& request);
[[nodiscard]] std::vector<std::uint8_t> encode_reply(
    const ClassifyReply& reply);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request();
[[nodiscard]] std::vector<std::uint8_t> encode_stats_reply(
    const ServerStats& stats);
[[nodiscard]] std::vector<std::uint8_t> encode_queue_full(std::uint64_t id);
[[nodiscard]] std::vector<std::uint8_t> encode_deadline_exceeded(
    std::uint64_t id);
[[nodiscard]] std::vector<std::uint8_t> encode_bad_frame();
[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& hello);
[[nodiscard]] std::vector<std::uint8_t> encode_hello_ack(const Hello& hello);

/// Decoders throw ContractViolation on a wrong type byte or a malformed /
/// short payload.
[[nodiscard]] ClassifyRequest decode_classify(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] ClassifyReply decode_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] ServerStats decode_stats_reply(
    const std::vector<std::uint8_t>& payload);
/// Returns the rejected request's id.
[[nodiscard]] std::uint64_t decode_queue_full(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::uint64_t decode_deadline_exceeded(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] Hello decode_hello(const std::vector<std::uint8_t>& payload);
[[nodiscard]] Hello decode_hello_ack(const std::vector<std::uint8_t>& payload);

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `n` bytes.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// How one frame read completed (read_frame_ex).
enum class ReadStatus {
  kFrame,    ///< a complete (and, in CRC mode, verified) frame landed
  kEof,      ///< clean EOF at a frame boundary
  kTimeout,  ///< a frame started but stalled past the mid-frame deadline
  kBadCrc,   ///< CRC mode only: the frame arrived but failed verification
};

/// Per-connection framing options.
struct FrameOptions {
  /// v2 framing: every frame carries a 4-byte CRC32 trailer (inside the
  /// length prefix); read verifies and strips it, write appends it.
  bool crc = false;
  /// Slow-loris guard: once a frame's FIRST byte has arrived, the rest of
  /// the frame must land within this many milliseconds or the read returns
  /// kTimeout. 0 disables the deadline. A connection idle at a frame
  /// boundary never times out — only a torn/dripped frame does.
  std::uint64_t mid_frame_deadline_ms = 0;
};

/// The exact bytes write_frame puts on the wire for `payload`: length
/// prefix + payload [+ CRC32 trailer in crc mode]. Exposed so the chaos
/// injector (serve/chaos.hpp) can tear, drip, and corrupt real frames.
[[nodiscard]] std::vector<std::uint8_t> frame_wire_bytes(
    const std::vector<std::uint8_t>& payload, bool crc);

/// Writes raw bytes to `fd`, looping until all are out (EINTR-safe,
/// MSG_NOSIGNAL on sockets). Returns false when the peer is gone.
bool send_bytes(int fd, const std::uint8_t* data, std::size_t n);

/// Writes one frame (length prefix + payload [+ CRC32 in crc mode]) to
/// `fd`, looping until all bytes are out. Returns false when the peer is
/// gone (EPIPE/ECONNRESET); throws on malformed use (payload too large).
bool write_frame(int fd, const std::vector<std::uint8_t>& payload,
                 bool crc = false);

/// Reads one frame from `fd` into `payload`, looping until complete.
/// Returns false on clean EOF at a frame boundary; throws ContractViolation
/// on a truncated frame or an oversized length prefix.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Deadline- and CRC-aware frame read. kFrame fills `payload` (CRC trailer
/// already stripped in crc mode). Throws ContractViolation on a truncated
/// frame (EOF mid-frame), an out-of-bounds length prefix, or a CRC-mode
/// frame too short to carry its trailer.
[[nodiscard]] ReadStatus read_frame_ex(int fd,
                                       std::vector<std::uint8_t>& payload,
                                       const FrameOptions& options);

}  // namespace sparkxd::serve
