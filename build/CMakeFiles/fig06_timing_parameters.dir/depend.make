# Empty dependencies file for fig06_timing_parameters.
# This may be replaced when dependencies are built.
