// Fig. 6: minimum reliable DRAM timing parameters (tRCD / tRAS / tRP)
// derived from the array-voltage waveform at each supply voltage.
// Paper: the ready-to-access (75%), ready-to-precharge (98%) and
// ready-to-activate (2% band) thresholds define the timings, which grow as
// the supply voltage is reduced.

#include "bench_common.hpp"
#include "energy/voltage_model.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 6 — voltage-derived timing parameters",
                "reliable tRCD/tRAS/tRP grow as V_supply falls "
                "(nominal 18/42/18 ns at 1.35 V)");
  const energy::VoltageModel vm;
  Table t("fig06_timing_parameters",
          {"V_supply [V]", "tRCD [ns]", "tRAS [ns]", "tRP [ns]",
           "tRCD (clocked)", "tRAS (clocked)", "tRP (clocked)"});
  for (const double v : {1.350, 1.300, 1.250, 1.200, 1.150, 1.100, 1.050,
                         1.025}) {
    const auto clocked = vm.derive_timings(v);
    t.add_row({Table::num(v, 3), Table::num(vm.t_rcd_ns(v), 1),
               Table::num(vm.t_ras_ns(v), 1), Table::num(vm.t_rp_ns(v), 1),
               Table::num(clocked.t_rcd, 2), Table::num(clocked.t_ras, 2),
               Table::num(clocked.t_rp, 2)});
  }
  t.emit();
  return 0;
}
