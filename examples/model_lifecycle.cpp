// Model lifecycle: train once, ship everywhere.
//
// Demonstrates the deployment path a downstream user follows:
//   1. train + fault-harden a model (workstation),
//   2. save it to a file (snn::save_model),
//   3. reload it (edge device),
//   4. quantize the weights to uint8 for the DRAM-resident copy, and
//   5. verify accuracy of the reloaded FP32 and quantized models under
//      approximate-DRAM corruption.
//
// Usage: model_lifecycle [path]   (default: ./sparkxd_model.sxdm)

#include <cstdio>

#include "common/env.hpp"
#include "core/fault_aware.hpp"
#include "data/dataset.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"
#include "snn/model_io.hpp"
#include "snn/quant.hpp"

int main(int argc, char** argv) {
  using namespace sparkxd;
  const std::string path = argc > 1 ? argv[1] : "sparkxd_model.sxdm";
  const std::uint64_t seed = experiment_seed();
  Rng rng(seed);

  // --- Train + harden (the "workstation" phase). ---------------------------
  const std::size_t n_train = scaled(600, 150), n_test = scaled(200, 60);
  const auto all =
      data::make_dataset(data::Task::kDigits, n_train + n_test, seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);
  snn::NetworkConfig cfg;
  cfg.n_neurons = 400;
  cfg.seed = seed;
  auto baseline = snn::train_and_label(cfg, train, test, 2, rng);

  const auto geometry = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(geometry, seed);
  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto placement = mapping::baseline_placement(geometry, n_weights);
  const auto injector = error::ErrorInjector::for_weights(
      geometry, profile, {}, placement, n_weights, seed, 1e-3);
  core::FaultTrainingConfig ft;
  ft.ber_stages = {1e-7, 1e-5, 1e-3};
  auto hardened =
      core::improve_error_tolerance(baseline, ft, injector, train, test, rng);
  std::printf("trained: baseline %.1f%%, hardened BER_th %.0e\n",
              100.0 * baseline.clean_accuracy, hardened.ber_th);

  // --- Save / reload. -------------------------------------------------------
  snn::save_model(hardened.improved, path);
  auto shipped = snn::load_model(path);
  std::printf("saved + reloaded '%s' (%zu weights)\n", path.c_str(),
              shipped.net.weights().size());

  // --- Quantize for the DRAM-resident copy. ---------------------------------
  auto quant = snn::quantize(shipped.net.weights(), cfg.n_neurons,
                             cfg.n_inputs);
  std::printf("quantized: %zu B (FP32 was %zu B)\n", quant.size_bytes(),
              shipped.net.weights().size() * sizeof(float));

  // --- Verify under corruption at BER 1e-3. ---------------------------------
  const double acc_fp32 = core::evaluate_corrupted(
      shipped.net, shipped.labels, injector, 1e-3, test, rng, 2,
      ft.weight_clip);
  // The quantized copy is 4x smaller, so it has its own (smaller) payload
  // over the same layout.
  const error::ErrorInjector quant_injector(
      geometry, profile, {}, placement, quant.size_bytes(), seed, 1e-3);
  const auto clean_codes = quant.codes;
  double acc_u8 = 0.0;
  for (int t = 0; t < 2; ++t) {
    quant.codes = clean_codes;
    quant_injector.inject_bytes(quant.codes.data(), quant.codes.size(), 1e-3,
                                rng);
    shipped.net.weights_mut() = snn::dequantize(quant);
    acc_u8 += snn::evaluate(shipped.net, shipped.labels, test, rng) / 2.0;
  }
  std::printf("reloaded FP32 accuracy @BER 1e-3:  %.1f%%\n",
              100.0 * acc_fp32);
  std::printf("quantized uint8 accuracy @BER 1e-3: %.1f%%\n",
              100.0 * acc_u8);
  std::remove(path.c_str());
  return 0;
}
