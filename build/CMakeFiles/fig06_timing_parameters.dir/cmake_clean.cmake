file(REMOVE_RECURSE
  "CMakeFiles/fig06_timing_parameters.dir/bench/fig06_timing_parameters.cpp.o"
  "CMakeFiles/fig06_timing_parameters.dir/bench/fig06_timing_parameters.cpp.o.d"
  "fig06_timing_parameters"
  "fig06_timing_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_timing_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
