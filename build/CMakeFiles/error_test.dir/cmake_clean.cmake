file(REMOVE_RECURSE
  "CMakeFiles/error_test.dir/tests/error_test.cpp.o"
  "CMakeFiles/error_test.dir/tests/error_test.cpp.o.d"
  "error_test"
  "error_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
