#pragma once
// Bit-error generation and injection into DRAM-resident data
// (paper §IV-B Steps 1-2 and §V "Error Generation and Injection").
//
// Given a *placement* (the DRAM column of every 32 B burst chunk, as
// produced by a mapping policy) the injector decides which stored bits are
// "weak cells" and flips them probabilistically on every injection.
//
// Weak cells are deterministic per (seed, physical cell): each cell has a
// fixed weakness score in [0, 1) derived by hashing its physical coordinate;
// the cell is weak at BER b when  score < 2 * b * m(cell), where m is the
// subarray / bitline / wordline weakness multiplier of the active error
// model and the factor 2 accounts for the weak-cell failure probability 0.5.
// Two properties follow, both physically motivated and both load-bearing:
//   * weak sets are NESTED across BER (a cell failing at 1e-5 still fails
//     at 1e-3) — exactly how reduced-voltage failures behave; and
//   * the SAME cells fail across training epochs, which is what lets
//     fault-aware training learn around them.
//
// When the spec's RetentionSpec is enabled (reduced-refresh operation, see
// error/retention.hpp) the enumeration additionally marks the cells whose
// hashed retention time falls short of the effective refresh window. Those
// candidates carry a negative score, so they are weak at EVERY injection
// BER — the two approximation axes (voltage and refresh) compose by simple
// union of their weak-cell sets, with retention taking precedence for cells
// weak under both. A retention-failed cell reads back its *discharged*
// level, which coincides with the stored value about half the time across
// true-/anti-cell layouts — the same 0.5 flip probability the voltage weak
// cells use, so both axes share one injection path.
//
// The injector is representation-agnostic: weak cells are enumerated at
// byte granularity, so the same machinery corrupts FP32 weights
// (inject / inject_all_weak) and quantized int8 weights or any other byte
// payload (inject_bytes). It is also layer-agnostic: a deep SNN stack
// builds ONE injector per layer, each over that layer's (disjoint)
// placement with the SAME seed — the module has one weak-cell reality,
// hashed per physical cell, so per-layer injectors corrupt exactly the
// cells a whole-module injector would. core::evaluate_corrupted's
// LayerInjectors overload documents the per-layer Rng stream discipline. For performance, candidates are pre-enumerated
// once per placement up to a maximum BER (concurrently across chunks — the
// enumeration is stateless hashing, see common/parallel); injecting at any
// lower BER is a linear pass over that (small) candidate list.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dram/geometry.hpp"
#include "error/error_model.hpp"
#include "error/subarray_profile.hpp"

namespace sparkxd::error {

/// DRAM addresses of the first column of each burst chunk; chunk c stores
/// the payload bytes [c*burst_bytes, (c+1)*burst_bytes).
using ChunkPlacement = std::vector<dram::Address>;

/// Weight-range sanitization applied after FP32 injection: corrupted values
/// are clamped into [lo, hi] and NaNs become lo. This is the load-time
/// range clipping EDEN-style deployments apply (see
/// core::kDefaultWeightClip); it keeps single-bit exponent flips meaningful
/// (large deviation) without propagating Inf/NaN.
struct SanitizeRange {
  float lo = 0.0f;
  float hi = 1.0f;
  /// When false, sanitization is a no-op: injection leaves the raw flipped
  /// bit pattern in place (NaN/Inf preserved). The ECC evaluation path
  /// needs this — the decoder must see exactly the stored bits; the range
  /// clip is applied afterwards, only to codewords the code could not
  /// restore (error::ecc_scrub_codewords).
  bool clamp = true;

  /// The no-clamp mode used for ECC-protected injection.
  [[nodiscard]] static constexpr SanitizeRange raw() noexcept {
    return {0.0f, 0.0f, false};
  }
};

/// Applies SanitizeRange to one corrupted weight (NaN -> lo, else clamp).
void sanitize_weight(float& w, const SanitizeRange& r) noexcept;

/// One recorded weight corruption: the flat FP32 word index and the value it
/// held *before* the flip (pre-sanitize). A sequence of WeightFlips is a
/// complete delta of an injection pass: reverting it restores the weight
/// array bit for bit, which replaces the full-snapshot copy the Monte-Carlo
/// trial loop used to pay per trial.
struct WeightFlip {
  std::uint32_t word = 0;  ///< flat index into the FP32 weight array
  float before = 0.0f;     ///< value of weights[word] before this flip
};

/// Reverts a recorded injection delta: walks `flips` in reverse and restores
/// each word's pre-flip value. Reverse order makes multi-flip words exact —
/// the earliest record of a word wins, restoring the pre-injection value.
void revert_flips(std::vector<float>& weights,
                  const std::vector<WeightFlip>& flips) noexcept;

/// Read-only injection plan frozen for one (injector, BER) pair: the prefix
/// of the injector's score-sorted candidate list that is weak at the frozen
/// BER, with each candidate's FP32 word index and bit-within-word
/// precomputed. Build it once (ErrorInjector::freeze) and share it const
/// across all Monte-Carlo trials and sweep workers — injection through the
/// table skips the per-call threshold comparisons and byte->word arithmetic
/// of ErrorInjector::inject while consuming the SAME Rng stream and flipping
/// the SAME bits, so results are bit-identical by construction
/// (tests/error_test.cpp locks this down).
class FrozenInjection {
 public:
  struct Entry {
    std::uint32_t word;  ///< flat FP32 index holding the weak cell
    std::uint8_t bit;    ///< 0 (LSB) .. 31 within the little-endian word

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// One corrupted "read" of `weights` at the frozen BER. Identical flip
  /// decisions and Rng consumption as ErrorInjector::inject(weights,
  /// ber(), rng, sanitize). When `flips` is non-null every flip is appended
  /// (the vector is NOT cleared) so the caller can revert the delta via
  /// revert_flips. Returns the number of flipped bits.
  std::size_t inject(std::vector<float>& weights, Rng& rng,
                     const SanitizeRange& sanitize = {},
                     std::vector<WeightFlip>* flips = nullptr) const;

  /// Number of weak-cell candidates in the frozen table.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// The BER this table was frozen at.
  [[nodiscard]] double ber() const noexcept { return ber_; }

  // ---- Serialization access (serve::ServingArtifact). --------------------
  // A frozen table is part of a deployed operating point: the offline
  // pipeline freezes it once and the serving artifact carries it to the
  // long-lived server, so its full state round-trips through a file.
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] double p0() const noexcept { return p0_; }
  [[nodiscard]] double p1() const noexcept { return p1_; }
  [[nodiscard]] bool data_dependent() const noexcept {
    return data_dependent_;
  }
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return n_payload_bytes_;
  }

  /// Reassembles a table from serialized parts; the result injects
  /// bit-identically to the table the parts were read from. Validates every
  /// entry (word within the payload, bit < 32) and the probabilities, so a
  /// corrupt artifact fails loudly at load time instead of at inject time.
  [[nodiscard]] static FrozenInjection from_parts(std::vector<Entry> entries,
                                                  double ber, double p0,
                                                  double p1,
                                                  bool data_dependent,
                                                  std::size_t n_payload_bytes);

 private:
  friend class ErrorInjector;

  std::vector<Entry> entries_;  ///< candidate-list prefix, original order
  double ber_ = 0.0;
  double p0_ = 0.0;      ///< Model-3 flip probability for a stored 0
  double p1_ = 0.0;      ///< Model-3 flip probability for a stored 1
  bool data_dependent_ = false;
  std::size_t n_payload_bytes_ = 0;
};

class ErrorInjector {
 public:
  /// Enumerates weak-cell candidates for `n_payload_bytes` bytes laid out
  /// through `placement`, at BERs up to `max_ber`. The last chunk may be
  /// partially used.
  ErrorInjector(const dram::Geometry& geometry,
                const SubarrayProfile& profile, const ErrorModelSpec& spec,
                ChunkPlacement placement, std::size_t n_payload_bytes,
                std::uint64_t seed, double max_ber);

  /// Convenience: payload = n_weights FP32 values.
  static ErrorInjector for_weights(const dram::Geometry& geometry,
                                   const SubarrayProfile& profile,
                                   const ErrorModelSpec& spec,
                                   ChunkPlacement placement,
                                   std::size_t n_weights, std::uint64_t seed,
                                   double max_ber);

  /// Flips weak bits of FP32 `weights` for one "read" at module BER `ber`
  /// (<= max_ber). Each weak cell fails independently with probability 0.5
  /// (Model-3: p1/p0 by stored value). When `flips` is non-null every flip
  /// is appended to it (see WeightFlip / revert_flips). Returns the number
  /// of flipped bits.
  std::size_t inject(std::vector<float>& weights, double ber, Rng& rng,
                     const SanitizeRange& sanitize = {},
                     std::vector<WeightFlip>* flips = nullptr) const;

  /// Freezes the candidate-list prefix weak at `ber` (<= max_ber) into a
  /// shareable read-only injection plan; see FrozenInjection.
  [[nodiscard]] FrozenInjection freeze(double ber) const;

  /// Deterministic FP32 variant: flips *every* weak cell at `ber` (used by
  /// tests to reason about worst-case corruption).
  std::size_t inject_all_weak(std::vector<float>& weights, double ber,
                              const SanitizeRange& sanitize = {}) const;

  /// Raw-byte injection (e.g. quantized int8 weights): flips weak bits of
  /// `data[0..n_bytes)`. No sanitization — every byte pattern is a valid
  /// quantized value, which is precisely int8's robustness advantage.
  std::size_t inject_bytes(std::uint8_t* data, std::size_t n_bytes,
                           double ber, Rng& rng) const;

  /// Number of weak-cell candidates enumerated (at max_ber), including
  /// retention failures.
  [[nodiscard]] std::size_t candidate_count() const noexcept {
    return candidates_.size();
  }

  /// Number of candidates that are retention failures (spec.retention):
  /// cells whose retention time is shorter than the effective refresh
  /// window. These are weak at EVERY injection BER, independent of the
  /// voltage axis.
  [[nodiscard]] std::size_t retention_candidate_count() const noexcept {
    return retention_candidates_;
  }

  /// Expected number of bit flips per injection at `ber`.
  [[nodiscard]] double expected_flips(double ber) const;

  [[nodiscard]] double max_ber() const noexcept { return max_ber_; }
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return n_payload_bytes_;
  }

 private:
  struct Candidate {
    std::uint32_t byte_index;  ///< payload byte holding the weak cell
    std::uint8_t bit;          ///< 0 (LSB) .. 7 within the byte
    double score;              ///< weak at BER b iff score < 2*b
  };

  /// Score assigned to retention-failure candidates: below every BER
  /// threshold, so they are weak at any injection BER (they sort to the
  /// front of the candidate list).
  static constexpr double kRetentionScore = -1.0;

  /// Shared core of the FP32 paths.
  template <typename FlipDecision>
  std::size_t inject_floats(std::vector<float>& weights, double ber,
                            const SanitizeRange& sanitize,
                            FlipDecision&& decide,
                            std::vector<WeightFlip>* flips = nullptr) const;

  std::vector<Candidate> candidates_;  ///< sorted ascending by score
  std::size_t retention_candidates_ = 0;
  double max_ber_;
  std::size_t n_payload_bytes_;
  ErrorModelSpec spec_;
};

}  // namespace sparkxd::error
