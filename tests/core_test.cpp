// Tests for the SparkXD core: corrupted evaluation, Algorithm 1 (fault-aware
// training), tolerance analysis (§IV-C), and the end-to-end pipeline.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "common/contracts.hpp"
#include "core/fault_aware.hpp"
#include "core/pipeline.hpp"
#include "mapping/mapping.hpp"

namespace sparkxd::core {
namespace {

/// Shared expensive fixture: one trained baseline + injector, reused by all
/// Algorithm-1 tests in this binary.
class FaultAwareFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state = new State();
    state->all = data::make_dataset(data::Task::kDigits, 550, 42);
    state->train = state->all.take(400);
    state->test = state->all.drop(400);
    snn::NetworkConfig cfg;
    cfg.n_neurons = 100;
    cfg.seed = 42;
    Rng rng(42);
    state->baseline = std::make_unique<snn::TrainedModel>(
        snn::train_and_label(cfg, state->train, state->test, 2, rng));
    state->geometry = dram::Geometry::lpddr3_4gb();
    state->profile =
        std::make_unique<error::SubarrayProfile>(state->geometry, 42);
    const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
    state->placement =
        mapping::baseline_placement(state->geometry, n_weights);
    state->injector = std::make_unique<error::ErrorInjector>(
        state->geometry, *state->profile, error::ErrorModelSpec{},
        state->placement, n_weights, 42, 1e-3);
  }
  static void TearDownTestSuite() {
    delete state;
    state = nullptr;
  }

  struct State {
    data::Dataset all, train, test;
    std::unique_ptr<snn::TrainedModel> baseline;
    dram::Geometry geometry;
    std::unique_ptr<error::SubarrayProfile> profile;
    error::ChunkPlacement placement;
    std::unique_ptr<error::ErrorInjector> injector;
  };
  static State* state;
};

FaultAwareFixture::State* FaultAwareFixture::state = nullptr;

TEST_F(FaultAwareFixture, EvaluateCorruptedRestoresWeights) {
  Rng rng(1);
  const auto before = state->baseline->net.weights();
  (void)evaluate_corrupted(state->baseline->net, state->baseline->labels,
                           *state->injector, 1e-3, state->test, rng);
  EXPECT_EQ(state->baseline->net.weights(), before);
}

TEST_F(FaultAwareFixture, EvaluateCorruptedZeroBerEqualsClean) {
  // At BER 0 no bits flip, so the result must be reproducible per seed,
  // independent of which injector produced it, and equal to the clean
  // accuracy up to spike-train sampling noise (injection and evaluation use
  // separate Rng substreams, so the clean reference uses its own stream).
  Rng a(2), b(2), c(2);
  const double clean =
      snn::evaluate(state->baseline->net, state->baseline->labels,
                    state->test, a);
  const double corrupted =
      evaluate_corrupted(state->baseline->net, state->baseline->labels,
                         *state->injector, 0.0, state->test, b);
  const double again =
      evaluate_corrupted(state->baseline->net, state->baseline->labels,
                         *state->injector, 0.0, state->test, c);
  EXPECT_DOUBLE_EQ(corrupted, again);
  EXPECT_NEAR(clean, corrupted, 0.05);
}

TEST_F(FaultAwareFixture, HighBerDegradesBaseline) {
  // Common random numbers: with same-seeded parents the BER-0 and BER-1e-3
  // evaluations see identical spike trains, so the comparison isolates the
  // effect of the injected errors (small upward flukes from lucky flips
  // are still possible, hence the slack).
  Rng zero_rng(3), high_rng(3);
  const double uncorrupted =
      evaluate_corrupted(state->baseline->net, state->baseline->labels,
                         *state->injector, 0.0, state->test, zero_rng, 2);
  const double corrupted =
      evaluate_corrupted(state->baseline->net, state->baseline->labels,
                         *state->injector, 1e-3, state->test, high_rng, 2);
  EXPECT_LT(corrupted, uncorrupted + 0.02);
}

TEST_F(FaultAwareFixture, HotPathMatchesLegacySnapshotLoopBitwise) {
  // The optimized Monte-Carlo path (frozen candidate table + delta-revert +
  // reused inference scratch) against the pre-optimization reference loop:
  // full snapshot restore per trial + per-call candidate scan + a fresh
  // evaluation each time. Stream derivation is the documented contract
  // (stream = rng.next_u64(); trial t draws hash_combine(stream, 2t) /
  // (2t+1)), so the means must agree bit for bit.
  const std::size_t trials = 3;
  const double ber = 1e-3;
  Rng fast_rng(21), ref_rng(21);
  const double fast =
      evaluate_corrupted(state->baseline->net, state->baseline->labels,
                         *state->injector, ber, state->test, fast_rng,
                         trials);
  const error::SanitizeRange sanitize{
      state->baseline->net.config().stdp.w_min, kDefaultWeightClip};
  const std::uint64_t stream = ref_rng.next_u64();
  snn::Network scratch = state->baseline->net;
  const std::vector<float> snapshot = state->baseline->net.weights();
  double sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng inject_rng(hash_combine(stream, 2 * t));
    Rng eval_rng(hash_combine(stream, 2 * t + 1));
    if (t != 0) scratch.weights_mut() = snapshot;
    state->injector->inject(scratch.weights_mut(), ber, inject_rng,
                            sanitize);
    sum += snn::evaluate(scratch, state->baseline->labels, state->test,
                         eval_rng);
  }
  const double reference = sum / static_cast<double>(trials);
  EXPECT_EQ(fast, reference);  // bitwise, not approximately
}

TEST_F(FaultAwareFixture, RejectsZeroTrials) {
  Rng rng(4);
  EXPECT_THROW(
      (void)evaluate_corrupted(state->baseline->net,
                               state->baseline->labels, *state->injector,
                               1e-3, state->test, rng, 0),
      ContractViolation);
}

TEST_F(FaultAwareFixture, Algorithm1ImprovesCorruptedAccuracy) {
  FaultTrainingConfig cfg;
  cfg.ber_stages = {1e-7, 1e-5, 1e-3};
  Rng rng(5);
  const auto result = improve_error_tolerance(
      *state->baseline, cfg, *state->injector, state->train, state->test,
      rng);
  ASSERT_TRUE(result.met_target);
  EXPECT_EQ(result.stage_curve.size(), 3u);
  // The improved model under corruption at BER_th meets the paper's bound.
  Rng eval_rng(6);
  auto improved = result.improved;
  const double acc = evaluate_corrupted(improved.net, improved.labels,
                                        *state->injector, result.ber_th,
                                        state->test, eval_rng, 2);
  EXPECT_GE(acc,
            state->baseline->clean_accuracy - cfg.accuracy_bound - 0.03);
}

TEST_F(FaultAwareFixture, Algorithm1BerThIsAStageValue) {
  FaultTrainingConfig cfg;
  cfg.ber_stages = {1e-7, 1e-5, 1e-3};
  Rng rng(7);
  const auto result = improve_error_tolerance(
      *state->baseline, cfg, *state->injector, state->train, state->test,
      rng);
  if (result.met_target) {
    bool found = false;
    for (const double s : cfg.ber_stages) found |= s == result.ber_th;
    EXPECT_TRUE(found);
  }
}

TEST_F(FaultAwareFixture, Algorithm1RejectsBadSchedules) {
  FaultTrainingConfig cfg;
  cfg.ber_stages = {};
  Rng rng(8);
  EXPECT_THROW((void)improve_error_tolerance(*state->baseline, cfg,
                                             *state->injector, state->train,
                                             state->test, rng),
               ContractViolation);
  cfg.ber_stages = {1e-3, 1e-5};  // descending
  EXPECT_THROW((void)improve_error_tolerance(*state->baseline, cfg,
                                             *state->injector, state->train,
                                             state->test, rng),
               ContractViolation);
  cfg.ber_stages = {1e-5};
  cfg.epochs_per_stage = 0;
  EXPECT_THROW((void)improve_error_tolerance(*state->baseline, cfg,
                                             *state->injector, state->train,
                                             state->test, rng),
               ContractViolation);
}

TEST_F(FaultAwareFixture, ToleranceCurveIsRecordedAscending) {
  Rng rng(9);
  auto model = *state->baseline;  // copy
  const std::vector<double> rates{1e-7, 1e-5, 1e-3};
  const auto analysis =
      analyze_tolerance(model.net, model.labels, *state->injector, rates,
                        0.0, state->test, rng);
  ASSERT_EQ(analysis.curve.size(), 3u);
  for (std::size_t i = 0; i < rates.size(); ++i)
    EXPECT_EQ(analysis.curve[i].ber, rates[i]);
  // target 0 -> every point passes -> BER_th is the last stage.
  EXPECT_TRUE(analysis.met_target);
  EXPECT_EQ(analysis.ber_th, 1e-3);
}

TEST_F(FaultAwareFixture, ToleranceUnreachableTarget) {
  Rng rng(10);
  auto model = *state->baseline;
  const auto analysis =
      analyze_tolerance(model.net, model.labels, *state->injector,
                        {1e-5, 1e-3}, 1.01, state->test, rng);
  EXPECT_FALSE(analysis.met_target);
  EXPECT_EQ(analysis.ber_th, 0.0);
}

TEST_F(FaultAwareFixture, ToleranceRejectsDescendingRates) {
  Rng rng(11);
  auto model = *state->baseline;
  EXPECT_THROW(
      (void)analyze_tolerance(model.net, model.labels, *state->injector,
                              {1e-3, 1e-5}, 0.5, state->test, rng),
      ContractViolation);
}

// ------------------------------------------------------------------ pipeline

TEST(Pipeline, EndToEndSmoke) {
  PipelineConfig cfg;
  cfg.network.n_neurons = 64;
  cfg.network.seed = 42;
  cfg.train_samples = 250;
  cfg.test_samples = 100;
  cfg.baseline_epochs = 1;
  cfg.fault_training.ber_stages = {1e-5, 1e-3};
  const auto r = run_pipeline(cfg);

  EXPECT_GT(r.baseline_accuracy, 0.3);
  EXPECT_GT(r.baseline_energy_nj, 0.0);
  ASSERT_EQ(r.per_voltage.size(), 5u);

  double prev_energy = r.baseline_energy_nj * 1.01;
  for (const auto& v : r.per_voltage) {
    // Energy strictly decreases with voltage; savings grow.
    EXPECT_LT(v.energy_nj, prev_energy);
    prev_energy = v.energy_nj;
    EXPECT_GT(v.saving_pct, 0.0);
    // Throughput is maintained (paper Fig. 12b).
    EXPECT_GE(v.speedup, 0.99);
    // The mapping keeps the row buffer hot.
    EXPECT_GT(v.row_hit_rate, 0.9);
    EXPECT_GT(v.safe_subarrays, 0u);
  }
  // Headline: the lowest voltage saves roughly 40% (paper: 39.46% average).
  EXPECT_NEAR(r.per_voltage.back().saving_pct, 39.5, 3.0);
}

TEST(Pipeline, AccuracyWithinBoundAcrossVoltages) {
  PipelineConfig cfg;
  cfg.network.n_neurons = 100;
  cfg.network.seed = 42;
  cfg.train_samples = 400;
  cfg.test_samples = 150;
  cfg.baseline_epochs = 2;
  cfg.fault_training.ber_stages = {1e-7, 1e-5, 1e-3};
  const auto r = run_pipeline(cfg);
  ASSERT_TRUE(r.met_target);
  for (const auto& v : r.per_voltage)
    EXPECT_GE(v.accuracy, r.baseline_accuracy -
                              cfg.fault_training.accuracy_bound - 0.04)
        << "at " << v.v_supply << " V";
}

TEST(Pipeline, RecordsPhaseWallClockTimings) {
  PipelineConfig cfg;
  cfg.network.n_neurons = 25;
  cfg.network.seed = 42;
  cfg.train_samples = 100;
  cfg.test_samples = 50;
  cfg.baseline_epochs = 1;
  cfg.fault_training.ber_stages = {1e-5, 1e-3};
  cfg.voltages = {1.250, 1.025};
  const auto r = run_pipeline(cfg);
  const auto& t = r.timings;
  EXPECT_GT(t.train_ns, 0.0);
  EXPECT_GT(t.fault_training_ns, 0.0);
  EXPECT_GT(t.sweep_ns, 0.0);
  // The phases tile the run: they sum to the total (same clock reads).
  EXPECT_NEAR(t.train_ns + t.fault_training_ns + t.sweep_ns, t.total_ns,
              t.total_ns * 1e-9 + 1.0);
}

TEST(Pipeline, RejectsEmptyVoltageList) {
  PipelineConfig cfg;
  cfg.voltages.clear();
  EXPECT_THROW((void)run_pipeline(cfg), ContractViolation);
}

TEST(PipelineConfig_, ValidateRejectsBadVoltageGrids) {
  PipelineConfig cfg;
  EXPECT_NO_THROW(cfg.validate());  // defaults are valid

  cfg.voltages = {1.100, 1.250};  // ascending — wrong order
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.voltages = {1.250, 1.250, 1.100};  // duplicate
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.voltages = {1.250, -1.0};  // non-positive
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.voltages = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.voltages = {1.325};  // a single voltage is fine
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PipelineConfig_, ValidateRejectsBadBerSchedule) {
  PipelineConfig cfg;
  cfg.fault_training.ber_stages.clear();
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.fault_training.ber_stages = {1e-3, 1e-5};  // descending
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.fault_training.ber_stages = {0.0, 1e-3};  // zero rate
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

TEST(PipelineConfig_, ValidateRejectsEmptyData) {
  PipelineConfig no_train;
  no_train.train_samples = 0;
  EXPECT_THROW(no_train.validate(), ContractViolation);
  PipelineConfig no_test;
  no_test.test_samples = 0;
  EXPECT_THROW(no_test.validate(), ContractViolation);
}

TEST_F(FaultAwareFixture, SingleInjectorOverloadEqualsOneElementLayerList) {
  // The legacy single-injector API is defined as the one-element
  // LayerInjectors case (the stream discipline makes them bit-identical).
  Rng a(31), b(31);
  const double legacy =
      evaluate_corrupted(state->baseline->net, state->baseline->labels,
                         *state->injector, 1e-3, state->test, a, 2);
  const double multi = evaluate_corrupted(
      state->baseline->net, state->baseline->labels,
      LayerInjectors{state->injector.get()}, 1e-3, state->test, b, 2);
  EXPECT_EQ(legacy, multi);
}

TEST_F(FaultAwareFixture, LayerInjectorsSizeMustMatchDepth) {
  Rng rng(32);
  EXPECT_THROW((void)evaluate_corrupted(
                   state->baseline->net, state->baseline->labels,
                   LayerInjectors{state->injector.get(),
                                  state->injector.get()},
                   1e-3, state->test, rng),
               ContractViolation);
}

// -------------------------------------------------------------- deep stacks

/// Shared expensive fixture for the layer-stack pipeline: one 2-layer
/// end-to-end run, reused by all deep-pipeline assertions below.
class DeepPipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg = new PipelineConfig();
    cfg->network.n_neurons = 25;
    cfg->network.hidden_neurons = {48};
    cfg->network.seed = 42;
    cfg->train_samples = 100;
    cfg->test_samples = 50;
    cfg->baseline_epochs = 1;
    cfg->fault_training.ber_stages = {1e-5, 1e-3};
    cfg->fault_training.eval_trials = 2;
    cfg->voltages = {1.250, 1.100, 1.025};
    report = new PipelineReport(run_pipeline(*cfg));
  }
  static void TearDownTestSuite() {
    delete report;
    delete cfg;
    report = nullptr;
    cfg = nullptr;
  }
  static PipelineConfig* cfg;
  static PipelineReport* report;
};

PipelineConfig* DeepPipelineFixture::cfg = nullptr;
PipelineReport* DeepPipelineFixture::report = nullptr;

TEST_F(DeepPipelineFixture, RunsEndToEndWithPerLayerTolerance) {
  const auto& r = *report;
  EXPECT_GT(r.baseline_accuracy, 0.2);
  ASSERT_EQ(r.layer_ber_th.size(), 2u);
  ASSERT_EQ(r.layer_met_target.size(), 2u);
  ASSERT_EQ(r.layer_curves.size(), 2u);
  for (std::size_t l = 0; l < 2; ++l) {
    // Per-layer curves cover every configured BER stage, in order.
    ASSERT_EQ(r.layer_curves[l].size(),
              cfg->fault_training.ber_stages.size());
    for (std::size_t i = 0; i < r.layer_curves[l].size(); ++i)
      EXPECT_EQ(r.layer_curves[l][i].ber,
                cfg->fault_training.ber_stages[i]);
    // A met per-layer threshold is one of the analyzed stages.
    if (r.layer_met_target[l]) {
      bool found = false;
      for (const double s : cfg->fault_training.ber_stages)
        found |= s == r.layer_ber_th[l];
      EXPECT_TRUE(found);
    } else {
      EXPECT_EQ(r.layer_ber_th[l], 0.0);
    }
    // Corrupting ONE layer can never be harder to tolerate than corrupting
    // all of them: the per-layer threshold dominates the global one.
    if (r.met_target && r.layer_met_target[l]) {
      EXPECT_GE(r.layer_ber_th[l], r.ber_th);
    }
  }
}

TEST_F(DeepPipelineFixture, PerVoltageRowsCarryPerLayerPlacementStats) {
  for (const auto& v : report->per_voltage) {
    ASSERT_EQ(v.layers.size(), 2u);
    double energy = 0.0;
    std::uint64_t refreshes = 0;
    for (std::size_t l = 0; l < v.layers.size(); ++l) {
      const auto& ls = v.layers[l];
      EXPECT_GT(ls.chunks, 0u);
      EXPECT_GT(ls.safe_subarrays, 0u);
      EXPECT_GT(ls.energy_nj, 0.0);
      EXPECT_GT(ls.row_hit_rate, 0.9);
      energy += ls.energy_nj;
      refreshes += ls.refreshes;
    }
    // Layer 0 (784x48) holds far more weights than layer 1 (48x25).
    EXPECT_GT(v.layers[0].chunks, v.layers[1].chunks);
    // Aggregates are the sums of the per-layer slices.
    EXPECT_DOUBLE_EQ(v.energy_nj, energy);
    EXPECT_EQ(v.refreshes, refreshes);
    EXPECT_GT(v.saving_pct, 0.0);
    EXPECT_GE(v.speedup, 0.99);
  }
}

TEST_F(DeepPipelineFixture, SingleLayerReportsKeepLegacyShape) {
  // The flat pipeline must not pay for (or report) the per-layer analysis:
  // its vector is exactly {ber_th} and no curves are recorded.
  PipelineConfig flat = *cfg;
  flat.network.hidden_neurons.clear();
  const auto r = run_pipeline(flat);
  ASSERT_EQ(r.layer_ber_th.size(), 1u);
  EXPECT_EQ(r.layer_ber_th[0], r.met_target ? r.ber_th : 0.0);
  ASSERT_EQ(r.layer_met_target.size(), 1u);
  EXPECT_EQ(r.layer_met_target[0], r.met_target);
  EXPECT_TRUE(r.layer_curves.empty());
  ASSERT_FALSE(r.per_voltage.empty());
  for (const auto& v : r.per_voltage) {
    ASSERT_EQ(v.layers.size(), 1u);
    EXPECT_DOUBLE_EQ(v.layers[0].energy_nj, v.energy_nj);
    EXPECT_EQ(v.layers[0].safe_subarrays, v.safe_subarrays);
    EXPECT_EQ(v.layers[0].capacity_relaxed, v.capacity_relaxed);
  }
}

TEST(Pipeline, SalpIsNeverSlowerOrHungrierThanCommodity) {
  // SALP only removes PRE/ACT work from the SparkXD mapping's trace, so at
  // every voltage it can only save energy and time; accuracy is untouched
  // (error injection does not depend on the row-buffer architecture).
  PipelineConfig cfg;
  cfg.network.n_neurons = 25;
  cfg.network.seed = 42;
  cfg.train_samples = 100;
  cfg.test_samples = 50;
  cfg.baseline_epochs = 1;
  cfg.fault_training.ber_stages = {1e-5, 1e-3};
  cfg.voltages = {1.250, 1.025};
  const auto commodity = run_pipeline(cfg);
  cfg.salp = true;
  const auto salp = run_pipeline(cfg);
  ASSERT_EQ(salp.per_voltage.size(), commodity.per_voltage.size());
  for (std::size_t i = 0; i < salp.per_voltage.size(); ++i) {
    EXPECT_LE(salp.per_voltage[i].energy_nj,
              commodity.per_voltage[i].energy_nj * 1.0001);
    EXPECT_GE(salp.per_voltage[i].speedup,
              commodity.per_voltage[i].speedup * 0.9999);
    EXPECT_EQ(salp.per_voltage[i].accuracy, commodity.per_voltage[i].accuracy);
  }
}

}  // namespace
}  // namespace sparkxd::core
