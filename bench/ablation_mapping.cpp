// Ablation A (DESIGN.md §5): what each ingredient of the DRAM mapping buys.
// Compares, at 1.025 V / module BER 1e-3:
//   * baseline mapping  (sequential bank fill, error-oblivious)
//   * Algorithm 2       (safe subarrays + row-hit + bank rotation)
//   * row-scatter       (adversarial: consecutive chunks in different rows
//                        of the same bank -> all conflicts)
// on row-hit rate, simulated time, DRAM energy, and expected bit errors in
// the stored weights.

#include "bench_common.hpp"
#include "dram/controller.hpp"
#include "energy/power_model.hpp"
#include "energy/voltage_model.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Ablation — mapping policies",
                "Algorithm 2 keeps the baseline's row hits, adds safety; "
                "a row-scattering layout pays conflict energy");
  const auto g = dram::Geometry::lpddr3_4gb();
  const std::uint64_t seed = experiment_seed();
  const error::SubarrayProfile profile(g, seed);
  const std::size_t n_weights = 784 * 900;
  const double ber = 1e-3;

  const auto base = mapping::baseline_placement(g, n_weights);
  const auto prop = mapping::sparkxd_placement(g, profile, ber, ber,
                                               n_weights);
  // Adversarial scatter: stride chunks across rows of one bank.
  error::ChunkPlacement scatter;
  const std::size_t chunks = mapping::chunks_for_weights(g, n_weights);
  scatter.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    dram::Address a;
    a.subarray = static_cast<std::uint32_t>((c / g.rows_per_subarray) %
                                            g.subarrays_per_bank);
    a.row = static_cast<std::uint32_t>(c % g.rows_per_subarray);
    a.column = static_cast<std::uint32_t>(
        ((c / (g.rows_per_bank())) * g.burst_columns) % g.columns_per_row);
    scatter.push_back(a);
  }

  const energy::VoltageModel vm;
  const energy::PowerModel pm;
  const double v = 1.025;
  dram::Controller controller(g, vm.derive_timings(v));

  Table t("ablation_mapping",
          {"mapping", "hit rate", "conflicts", "time [us]", "energy [uJ]",
           "expected weight-bit errors"});
  const auto report = [&](const char* name,
                          const error::ChunkPlacement& placement) {
    const auto stats = controller.run(
        mapping::streaming_read_trace(g, placement, n_weights),
        core::kBurstArrivalNs);
    const auto e = pm.trace_energy(stats, v);
    const auto inj = error::ErrorInjector::for_weights(g, profile, {}, placement, n_weights,
                                   seed, ber);
    t.add_row({name, Table::num(stats.hit_rate(), 4),
               std::to_string(stats.conflicts),
               Table::num(stats.total_time_ns / 1000.0, 1),
               Table::num(e.total_nj() / 1000.0, 1),
               Table::num(inj.expected_flips(ber), 0)});
  };
  report("baseline (sequential)", base);
  report("SparkXD (Algorithm 2)", prop.chunks);
  report("row-scatter (adversarial)", scatter);
  t.emit();

  // Sensitivity: how much safe capacity the module offers as the die's
  // subarray-to-subarray variation (sigma) grows.
  Table s("ablation_mapping_sigma",
          {"subarray sigma", "safe subarrays @BER_th=BER",
           "SparkXD expected errors / baseline expected errors"});
  for (const double sigma : {0.2, 0.5, 0.8, 1.2}) {
    const error::SubarrayProfile p2(g, seed, sigma);
    const auto prop2 =
        mapping::sparkxd_placement(g, p2, ber, ber, n_weights);
    const auto inj_b = error::ErrorInjector::for_weights(g, p2, {}, base, n_weights, seed, ber);
    const auto inj_p = error::ErrorInjector::for_weights(g, p2, {}, prop2.chunks, n_weights,
                                     seed, ber);
    s.add_row({Table::num(sigma, 1),
               std::to_string(prop2.safe_subarrays),
               Table::num(inj_p.expected_flips(ber) /
                              std::max(1.0, inj_b.expected_flips(ber)),
                          3)});
  }
  s.emit();
  return 0;
}
