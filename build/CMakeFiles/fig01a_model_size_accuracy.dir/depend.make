# Empty dependencies file for fig01a_model_size_accuracy.
# This may be replaced when dependencies are built.
