#include "mapping/mapping.hpp"

#include "common/contracts.hpp"

namespace sparkxd::mapping {

std::size_t weights_per_chunk(const dram::Geometry& g) {
  SPARKXD_REQUIRE(g.burst_bytes() % sizeof(float) == 0,
                  "burst size must hold whole FP32 weights");
  return g.burst_bytes() / sizeof(float);
}

std::size_t chunks_for_weights(const dram::Geometry& g,
                               std::size_t n_weights) {
  const std::size_t wpc = weights_per_chunk(g);
  return (n_weights + wpc - 1) / wpc;
}

error::ChunkPlacement baseline_placement(const dram::Geometry& g,
                                         std::size_t n_weights) {
  g.validate();
  const std::size_t needed = chunks_for_weights(g, n_weights);
  const std::size_t bursts_per_row = g.columns_per_row / g.burst_columns;
  error::ChunkPlacement out;
  out.reserve(needed);

  // Subsequent addresses within a bank: columns, then rows (subarray-major),
  // then the next bank, chip, rank, channel.
  for (std::uint32_t ch = 0; ch < g.channels && out.size() < needed; ++ch)
    for (std::uint32_t ra = 0; ra < g.ranks_per_channel && out.size() < needed;
         ++ra)
      for (std::uint32_t cp = 0; cp < g.chips_per_rank && out.size() < needed;
           ++cp)
        for (std::uint32_t ba = 0;
             ba < g.banks_per_chip && out.size() < needed; ++ba)
          for (std::uint32_t su = 0;
               su < g.subarrays_per_bank && out.size() < needed; ++su)
            for (std::uint32_t ro = 0;
                 ro < g.rows_per_subarray && out.size() < needed; ++ro)
              for (std::size_t b = 0;
                   b < bursts_per_row && out.size() < needed; ++b)
                out.push_back(dram::Address{
                    ch, ra, cp, ba, su, ro,
                    static_cast<std::uint32_t>(b * g.burst_columns)});

  SPARKXD_REQUIRE(out.size() == needed,
                  "DRAM module too small for the weight data");
  return out;
}

SparkXdPlacement sparkxd_placement(const dram::Geometry& g,
                                   const error::SubarrayProfile& profile,
                                   double module_ber, double ber_threshold,
                                   std::size_t n_weights) {
  g.validate();
  SPARKXD_REQUIRE(ber_threshold >= 0.0, "BER_th must be non-negative");
  const std::size_t needed = chunks_for_weights(g, n_weights);
  const std::size_t bursts_per_row = g.columns_per_row / g.burst_columns;

  SparkXdPlacement result;
  result.chunks.reserve(needed);

  // Count safe/unsafe once for diagnostics.
  for (std::uint64_t s = 0; s < profile.size(); ++s)
    (profile.rate(s, module_ber) <= ber_threshold ? result.safe_subarrays
                                                  : result.unsafe_subarrays)++;

  // Algorithm 2's loop nest: ch -> ra -> cp -> ro -> su -> ba -> safe? -> co.
  // For a fixed row offset, all columns of that row are filled (row-buffer
  // hits, Step-1) and the walk rotates across banks (multi-bank overlap,
  // Step-2) before moving to the next subarray and only then the next row.
  auto& out = result.chunks;
  for (std::uint32_t ch = 0; ch < g.channels && out.size() < needed; ++ch)
    for (std::uint32_t ra = 0; ra < g.ranks_per_channel && out.size() < needed;
         ++ra)
      for (std::uint32_t cp = 0; cp < g.chips_per_rank && out.size() < needed;
           ++cp)
        for (std::uint32_t ro = 0;
             ro < g.rows_per_subarray && out.size() < needed; ++ro)
          for (std::uint32_t su = 0;
               su < g.subarrays_per_bank && out.size() < needed; ++su)
            for (std::uint32_t ba = 0;
                 ba < g.banks_per_chip && out.size() < needed; ++ba) {
              const dram::Address probe{ch, ra, cp, ba, su, ro, 0};
              const auto sid = dram::subarray_id(g, probe);
              if (profile.rate(sid, module_ber) > ber_threshold)
                continue;  // unsafe subarray: do not store weights here
              for (std::size_t b = 0; b < bursts_per_row && out.size() < needed;
                   ++b)
                out.push_back(dram::Address{
                    ch, ra, cp, ba, su, ro,
                    static_cast<std::uint32_t>(b * g.burst_columns)});
            }

  SPARKXD_REQUIRE(out.size() == needed,
                  "safe subarrays cannot hold the weight data at this BER_th");
  return result;
}

dram::AccessTrace streaming_read_trace(const dram::Geometry& g,
                                       const error::ChunkPlacement& placement,
                                       std::size_t n_weights,
                                       std::size_t passes) {
  const std::size_t used = chunks_for_weights(g, n_weights);
  SPARKXD_REQUIRE(used <= placement.size(),
                  "placement does not cover the weight data");
  SPARKXD_REQUIRE(passes >= 1, "need at least one pass");
  dram::AccessTrace trace;
  trace.reserve(used * passes);
  for (std::size_t p = 0; p < passes; ++p)
    for (std::size_t c = 0; c < used; ++c)
      trace.push_back({placement[c], dram::AccessType::kRead});
  return trace;
}

}  // namespace sparkxd::mapping
