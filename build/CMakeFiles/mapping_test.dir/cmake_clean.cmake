file(REMOVE_RECURSE
  "CMakeFiles/mapping_test.dir/tests/mapping_test.cpp.o"
  "CMakeFiles/mapping_test.dir/tests/mapping_test.cpp.o.d"
  "mapping_test"
  "mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
