# Empty dependencies file for snn_stdp_test.
# This may be replaced when dependencies are built.
