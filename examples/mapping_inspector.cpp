// Mapping inspector: visualizes how Algorithm 2 places weights across the
// DRAM module versus the baseline sequential fill.
//
// Prints (1) a per-bank x subarray occupancy map — '#' safe+used, '.'
// safe+unused, 'x' unsafe/skipped — and (2) row-buffer statistics of the
// inference weight stream under both mappings.
//
// Usage: mapping_inspector [neurons] [module_ber] [ber_th]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/env.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "dram/controller.hpp"
#include "mapping/mapping.hpp"

int main(int argc, char** argv) {
  using namespace sparkxd;
  const std::size_t neurons =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 3600;
  const double module_ber = argc > 2 ? std::atof(argv[2]) : 1e-3;
  const double ber_th = argc > 3 ? std::atof(argv[3]) : 1e-3;

  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, experiment_seed());
  const std::size_t n_weights = 784 * neurons;
  std::printf(
      "SparkXD mapping inspector — N%zu (%zu weights, %.1f MB), module "
      "BER %.0e, BER_th %.0e\n",
      neurons, n_weights,
      static_cast<double>(n_weights) * 4.0 / (1024.0 * 1024.0), module_ber,
      ber_th);

  const auto prop =
      mapping::sparkxd_placement(g, profile, module_ber, ber_th, n_weights);
  std::printf("safe subarrays: %zu / %zu (unsafe skipped: %zu)\n",
              prop.safe_subarrays, static_cast<std::size_t>(
                                       g.total_subarrays()),
              prop.unsafe_subarrays);

  // Occupancy map: which subarrays hold weights.
  std::set<std::uint64_t> used;
  for (const auto& a : prop.chunks) used.insert(subarray_id(g, a));
  std::printf("\nsubarray map (rows = banks, cols = subarrays; '#' used, "
              "'.' safe unused, 'x' unsafe):\n");
  for (std::uint32_t ba = 0; ba < g.banks_per_chip; ++ba) {
    std::printf("bank %u | ", ba);
    for (std::uint32_t su = 0; su < g.subarrays_per_bank; ++su) {
      const dram::Address a{0, 0, 0, ba, su, 0, 0};
      const auto sid = subarray_id(g, a);
      const bool safe = profile.rate(sid, module_ber) <= ber_th;
      std::printf("%c", !safe ? 'x' : (used.count(sid) ? '#' : '.'));
    }
    std::printf("\n");
  }

  // Stream statistics under both mappings.
  const auto base = mapping::baseline_placement(g, n_weights);
  dram::Controller c(g, dram::TimingParams::lpddr3_1600());
  const auto s_base = c.run(
      mapping::streaming_read_trace(g, base, n_weights),
      core::kBurstArrivalNs);
  const auto s_prop = c.run(
      mapping::streaming_read_trace(g, prop.chunks, n_weights),
      core::kBurstArrivalNs);

  Table t("mapping_inspector",
          {"mapping", "accesses", "hits", "misses", "conflicts",
           "hit rate", "time [us]", "GB/s"});
  const auto add = [&](const char* name, const dram::TraceStats& s) {
    t.add_row({name, std::to_string(s.accesses), std::to_string(s.hits),
               std::to_string(s.misses), std::to_string(s.conflicts),
               Table::num(s.hit_rate(), 4),
               Table::num(s.total_time_ns / 1000.0, 1),
               Table::num(s.bytes_per_ns(g.burst_bytes()), 2)});
  };
  add("baseline", s_base);
  add("SparkXD (Algorithm 2)", s_prop);
  t.emit();
  return 0;
}
