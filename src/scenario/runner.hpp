#pragma once
// Batch execution of scenarios + stable report serialization.
//
// run_scenarios fans the batch out through common/parallel's parallel_for;
// each scenario is fully self-seeded (Scenario::seed drives the dataset, the
// training, and every injection stream), so the batch inherits the
// framework-wide determinism contract: results are bit-identical at every
// SPARKXD_THREADS setting. Nested pipeline parallelism runs inline on the
// scenario's worker (see common/parallel.hpp).
//
// Two serializations are provided:
//  * to_json      — the full report (schema "sparkxd-report-v1", see README)
//  * digest       — a compact fixed-precision key=value rendering of the
//                   headline metrics, used by the golden-report regression
//                   harness (tests/golden/*.digest) and the CI check.

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "scenario/scenario.hpp"

namespace sparkxd::scenario {

/// One executed scenario.
struct ScenarioResult {
  Scenario scenario;
  core::PipelineReport report;
};

/// Runs every scenario through core::run_pipeline, in parallel across
/// scenarios. Results come back in input order.
[[nodiscard]] std::vector<ScenarioResult> run_scenarios(
    const std::vector<Scenario>& scenarios);

/// Full JSON document for a batch of results (stable byte-for-byte for
/// identical results; keys in fixed order, std::to_chars number formatting).
[[nodiscard]] std::string to_json(const std::vector<ScenarioResult>& results);

/// Compact digest of one result: one "key=value" line per headline metric,
/// every float rounded to fixed precision so the digest survives honest
/// serialization changes but trips on any numeric drift.
[[nodiscard]] std::string digest(const ScenarioResult& result);

}  // namespace sparkxd::scenario
