// Tests for the serving layer: artifact container round trips, engine
// determinism, cross-thread artifact sharing, and the server end to end
// (digest parity with a serial engine across batching configurations,
// graceful drain accounting).

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "serve/artifact.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"

namespace sparkxd::serve {
namespace {

constexpr std::uint64_t kBaseSeed = 11;

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(is.good()) << path;
  std::vector<char> bytes(static_cast<std::size_t>(is.tellg()));
  is.seekg(0);
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

/// One artifact for the whole suite: a real (tiny) pipeline run takes a few
/// seconds, and every test here reads the artifact without mutating it.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::PipelineConfig cfg;
    cfg.network.n_neurons = 20;
    cfg.network.timesteps = 30;
    cfg.network.seed = 5;
    cfg.train_samples = 80;
    cfg.test_samples = 40;
    cfg.baseline_epochs = 1;
    cfg.fault_training.ber_stages = {1e-5, 1e-3};
    cfg.voltages = {1.250, 1.025};
    cfg.seed = 5;
    core::ArtifactState state;
    (void)core::run_pipeline(cfg, &state);
    artifact_ = new ServingArtifact(
        make_artifact("serve-test", std::move(state)));
    pool_ = new data::Dataset(
        data::make_dataset(data::Task::kDigits, 16, kBaseSeed));
  }
  static void TearDownTestSuite() {
    delete artifact_;
    artifact_ = nullptr;
    delete pool_;
    pool_ = nullptr;
  }

  /// The replay client's request construction, mirrored exactly (id = i,
  /// seed = hash_combine(base, i), image = pool[i % pool]).
  static ClassifyRequest request(std::size_t i) {
    ClassifyRequest req;
    req.id = i;
    req.seed = hash_combine(kBaseSeed, i);
    req.image = pool_->images[i % pool_->size()];
    return req;
  }

  static std::vector<ClassifyReply> serial_replies(
      const ServingArtifact& artifact, std::size_t n) {
    Engine engine(artifact);
    std::vector<ClassifyReply> replies;
    replies.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      replies.push_back(engine.classify(request(i)));
    return replies;
  }

  static ServingArtifact* artifact_;
  static data::Dataset* pool_;
};

ServingArtifact* ServeTest::artifact_ = nullptr;
data::Dataset* ServeTest::pool_ = nullptr;

// ---------------------------------------------------------------- artifact

TEST_F(ServeTest, ArtifactSaveLoadSaveIsByteIdentical) {
  const std::string path = ::testing::TempDir() + "serve_test.sxda";
  const std::string path2 = path + ".resaved";
  save_artifact(*artifact_, path);
  const auto loaded = load_artifact(path);
  save_artifact(loaded, path2);
  EXPECT_EQ(file_bytes(path), file_bytes(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST_F(ServeTest, ArtifactLoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "serve_test_bad.sxda";
  EXPECT_THROW((void)load_artifact("/nonexistent/dir/a.sxda"),
               ContractViolation);
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTANARTIFACT_____________________";
  }
  EXPECT_THROW((void)load_artifact(path), ContractViolation);
  // A truncated real artifact must throw, never return a partial object.
  save_artifact(*artifact_, path);
  const auto bytes = file_bytes(path);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW((void)load_artifact(path), ContractViolation);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ engine

TEST_F(ServeTest, EngineIsDeterministicAndStateless) {
  Engine engine(*artifact_);
  const auto first = serial_replies(*artifact_, 24);
  // Replaying the same requests in a scrambled order, interleaved with
  // other requests, must reproduce every reply bit for bit — classify()
  // restores the scratch weights after each call.
  for (const std::size_t i : {17u, 3u, 3u, 23u, 0u, 11u, 17u}) {
    const auto again = engine.classify(request(i));
    EXPECT_EQ(again, first[i]) << "request " << i;
  }
  // Sanity: the workload is non-trivial (faults actually flip bits, spikes
  // actually fire somewhere in the stream).
  std::uint64_t total_flips = 0, total_spikes = 0;
  for (const auto& r : first) {
    total_flips += r.flips;
    total_spikes += r.spikes;
  }
  EXPECT_GT(total_flips, 0u);
  EXPECT_GT(total_spikes, 0u);
}

TEST_F(ServeTest, LoadedArtifactRepliesMatchOriginal) {
  const std::string path = ::testing::TempDir() + "serve_test_load.sxda";
  save_artifact(*artifact_, path);
  const auto loaded = load_artifact(path);
  std::remove(path.c_str());
  EXPECT_EQ(serial_replies(loaded, 16), serial_replies(*artifact_, 16));
}

// Satellite: N threads, each with its own Engine over the SAME artifact
// object, classify the same request list concurrently; every thread's
// replies must be bit-equal to the single-threaded run (the artifact is
// genuinely read-only under concurrent injection-table reads).
TEST_F(ServeTest, SharedArtifactAcrossThreadsIsBitEqual) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRequests = 12;
  const auto expected = serial_replies(*artifact_, kRequests);
  std::vector<std::vector<ClassifyReply>> per_thread(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t)
      threads.emplace_back([t, &per_thread] {
        per_thread[t] = serial_replies(*artifact_, kRequests);
      });
    for (auto& th : threads) th.join();
  }
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(per_thread[t], expected) << "thread " << t;
}

// ------------------------------------------------------------------ server

TEST_F(ServeTest, ServerDigestMatchesSerialAcrossConfigs) {
  constexpr std::size_t kRequests = 80;
  auto expected = serial_replies(*artifact_, kRequests);
  const std::uint64_t expected_digest = digest_replies(expected);

  struct Config {
    std::size_t workers, max_batch, connections;
  };
  for (const auto& c : {Config{1, 1, 1}, Config{4, 8, 3}}) {
    ServerConfig server_config;
    server_config.workers = c.workers;
    server_config.max_batch = c.max_batch;
    server_config.max_wait_us = 100;
    Server server(*artifact_, server_config);
    server.start();

    ClientOptions options;
    options.requests = kRequests;
    options.connections = c.connections;
    options.window = 16;
    options.base_seed = kBaseSeed;
    const auto stats =
        replay("127.0.0.1", server.port(), *pool_, options);
    EXPECT_EQ(stats.replies, kRequests);
    EXPECT_EQ(stats.digest, expected_digest)
        << "workers=" << c.workers << " batch=" << c.max_batch;

    server.request_stop();
    server.wait();
    // Drain accounting: every admitted request was answered, batch sizes
    // stayed within the ceiling, and the histogram adds up.
    const auto server_stats = server.stats();
    EXPECT_EQ(server_stats.served, kRequests);
    EXPECT_LE(server_stats.batch_hist.size(), c.max_batch);
    std::uint64_t hist_jobs = 0;
    for (std::size_t b = 0; b < server_stats.batch_hist.size(); ++b)
      hist_jobs += server_stats.batch_hist[b] * (b + 1);
    EXPECT_EQ(hist_jobs, kRequests);
    EXPECT_GE(server_stats.max_queue_depth, 1u);
  }
}

TEST_F(ServeTest, BoundedQueueAnswersOverflowWithQueueFull) {
  // One slow worker, batch size 1, a queue bound of 2 — then a flood of
  // classify frames. Every frame must be answered exactly once: either a
  // kReply that is bit-equal to the serial engine's, or a kQueueFull
  // carrying the rejected id. The connection must survive the rejections.
  constexpr std::size_t kRequests = 300;
  ServerConfig server_config;
  server_config.workers = 1;
  server_config.max_batch = 1;
  server_config.max_queue = 2;
  Server server(*artifact_, server_config);
  server.start();

  const int fd = connect_to("127.0.0.1", server.port());
  // Send everything before reading anything. Deadlock-free: every answer
  // frame is <= 25 bytes on the wire, so all kRequests answers fit in the
  // kernel socket buffers and the server's reader never stalls on a write.
  for (std::size_t i = 0; i < kRequests; ++i)
    ASSERT_TRUE(write_frame(fd, encode_classify(request(i))));

  const auto expected = serial_replies(*artifact_, kRequests);
  std::vector<bool> seen(kRequests, false);
  std::size_t replies = 0, rejected = 0;
  std::vector<std::uint8_t> payload;
  for (std::size_t k = 0; k < kRequests; ++k) {
    ASSERT_TRUE(read_frame(fd, payload)) << "frame " << k;
    if (frame_type(payload) == MsgType::kQueueFull) {
      const std::uint64_t id = decode_queue_full(payload);
      ASSERT_LT(id, kRequests);
      EXPECT_FALSE(seen[id]) << "id " << id << " answered twice";
      seen[static_cast<std::size_t>(id)] = true;
      ++rejected;
    } else {
      const auto reply = decode_reply(payload);
      ASSERT_LT(reply.id, kRequests);
      EXPECT_FALSE(seen[reply.id]) << "id " << reply.id << " answered twice";
      seen[static_cast<std::size_t>(reply.id)] = true;
      EXPECT_EQ(reply, expected[reply.id]) << "request " << reply.id;
      ++replies;
    }
  }
  ::close(fd);
  EXPECT_EQ(replies + rejected, kRequests);
  EXPECT_GE(rejected, 1u) << "the flood never overflowed a queue of 2";
  EXPECT_GE(replies, server_config.max_queue);

  server.request_stop();
  server.wait();
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, replies);
  EXPECT_LE(stats.max_queue_depth, server_config.max_queue);
}

TEST_F(ServeTest, ReplayClientRetriesQueueFullUntilAnswered) {
  // Regression: the replay client used to abort on the first kQueueFull
  // frame (decode_reply contract violation) instead of retrying. Against a
  // deliberately tiny queue it must absorb the rejections, re-send until
  // every request is answered, and land on the exact serial digest —
  // backpressure is flow control, not data loss.
  constexpr std::size_t kRequests = 64;
  auto expected = serial_replies(*artifact_, kRequests);
  const std::uint64_t expected_digest = digest_replies(expected);

  ServerConfig server_config;
  server_config.workers = 1;
  server_config.max_batch = 1;
  server_config.max_queue = 2;
  Server server(*artifact_, server_config);
  server.start();

  ClientOptions options;
  options.requests = kRequests;
  options.connections = 2;
  options.window = 16;  // 32 in flight against a queue of 2: must reject
  options.base_seed = kBaseSeed;
  const auto stats = replay("127.0.0.1", server.port(), *pool_, options);
  EXPECT_EQ(stats.replies, kRequests);
  EXPECT_EQ(stats.digest, expected_digest);
  EXPECT_GE(stats.retries, 1u);

  server.request_stop();
  server.wait();
  EXPECT_EQ(server.stats().served, kRequests);
}

TEST_F(ServeTest, RequestDeadlineAnswersStaleJobsExactlyOnce) {
  // One slow worker, batch size 1, and a 1us request deadline: almost every
  // admitted request goes stale in the queue. Each one must still be
  // answered exactly once — kDeadlineExceeded for the stale ones, a reply
  // bit-equal to the serial engine's for the fresh ones.
  constexpr std::size_t kRequests = 60;
  ServerConfig server_config;
  server_config.workers = 1;
  server_config.max_batch = 1;
  server_config.request_deadline_us = 1;
  Server server(*artifact_, server_config);
  server.start();

  const int fd = connect_to("127.0.0.1", server.port());
  for (std::size_t i = 0; i < kRequests; ++i)
    ASSERT_TRUE(write_frame(fd, encode_classify(request(i))));

  const auto expected = serial_replies(*artifact_, kRequests);
  std::vector<bool> seen(kRequests, false);
  std::size_t replies = 0, expired = 0;
  std::vector<std::uint8_t> payload;
  for (std::size_t k = 0; k < kRequests; ++k) {
    ASSERT_TRUE(read_frame(fd, payload)) << "frame " << k;
    std::uint64_t id;
    if (frame_type(payload) == MsgType::kDeadlineExceeded) {
      id = decode_deadline_exceeded(payload);
      ++expired;
    } else {
      const auto reply = decode_reply(payload);
      id = reply.id;
      ASSERT_LT(id, kRequests);
      EXPECT_EQ(reply, expected[id]) << "request " << id;
      ++replies;
    }
    ASSERT_LT(id, kRequests);
    EXPECT_FALSE(seen[id]) << "id " << id << " answered twice";
    seen[static_cast<std::size_t>(id)] = true;
  }
  ::close(fd);
  EXPECT_EQ(replies + expired, kRequests);
  EXPECT_GE(expired, 1u) << "nothing went stale against a 1us deadline";

  server.request_stop();
  server.wait();
  EXPECT_EQ(server.stats().deadline_exceeded, expired);
  EXPECT_EQ(server.stats().served, replies);
}

TEST_F(ServeTest, MaxConnsShedsExcessAcceptsImmediately) {
  ServerConfig server_config;
  server_config.max_conns = 1;
  Server server(*artifact_, server_config);
  server.start();

  // First connection occupies the only slot (a served request proves the
  // reader is registered, not just accepted).
  const int fd = connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(write_frame(fd, encode_classify(request(0))));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(frame_type(payload), MsgType::kReply);

  // Second connection is shed at accept: immediate close, no reply ever.
  const int extra = connect_to("127.0.0.1", server.port());
  EXPECT_FALSE(read_frame(extra, payload));
  ::close(extra);

  // Releasing the slot makes the next connection admissible again.
  ::close(fd);
  ClientOptions options;
  options.requests = 4;
  options.base_seed = kBaseSeed;
  const auto stats = replay("127.0.0.1", server.port(), *pool_, options);
  EXPECT_EQ(stats.replies, 4u);

  server.request_stop();
  server.wait();
  EXPECT_GE(server.stats().rejected_conns, 1u);
}

TEST_F(ServeTest, WatchdogCountsWorkersStuckPastStallBound) {
  // A 1ms stall bound against deliberately long batches (one worker, batch
  // ceiling 128, a 256-request flood): the watchdog must observe at least
  // one batch outliving the bound and count it, while the server keeps
  // serving correctly.
  constexpr std::size_t kRequests = 256;
  ServerConfig server_config;
  server_config.workers = 1;
  server_config.max_batch = 128;
  server_config.max_wait_us = 2000;
  server_config.watchdog_stall_ms = 1;
  Server server(*artifact_, server_config);
  server.start();

  ClientOptions options;
  options.requests = kRequests;
  options.window = 256;
  options.base_seed = kBaseSeed;
  const auto stats = replay("127.0.0.1", server.port(), *pool_, options);
  EXPECT_EQ(stats.replies, kRequests);

  server.request_stop();
  server.wait();
  const auto server_stats = server.stats();
  EXPECT_EQ(server_stats.served, kRequests);
  EXPECT_GE(server_stats.wedged_events, 1u)
      << "no batch outlived a 1ms stall bound";
}

TEST_F(ServeTest, HotReloadSwapsGenerationWithoutDroppingConnections) {
  // Reload mid-replay: the generation bumps, in-flight requests finish on
  // whichever generation their batch started with, and — because both
  // generations here hold the same frozen state — the digest is the serial
  // one. reconnects==0 proves no connection was dropped by the swap.
  constexpr std::size_t kRequests = 200;
  auto expected = serial_replies(*artifact_, kRequests);
  const std::uint64_t expected_digest = digest_replies(expected);

  const std::string path = ::testing::TempDir() + "serve_test_reload.sxda";
  save_artifact(*artifact_, path);
  ServerConfig server_config;
  server_config.workers = 2;
  Server server(load_artifact_shared(path), server_config);
  server.start();
  EXPECT_EQ(server.generation(), 1u);

  ReplayStats stats;
  std::thread replayer([&] {
    ClientOptions options;
    options.requests = kRequests;
    options.connections = 2;
    options.window = 8;
    options.base_seed = kBaseSeed;
    stats = replay("127.0.0.1", server.port(), *pool_, options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.reload(load_artifact_shared(path));
  replayer.join();
  std::remove(path.c_str());

  EXPECT_EQ(server.generation(), 2u);
  EXPECT_EQ(stats.replies, kRequests);
  EXPECT_EQ(stats.digest, expected_digest);
  EXPECT_EQ(stats.reconnects, 0u) << "reload dropped a connection";

  // Replies keep flowing on the new generation, and stats report it.
  ClientOptions after;
  after.requests = 8;
  after.base_seed = kBaseSeed;
  EXPECT_EQ(replay("127.0.0.1", server.port(), *pool_, after).digest,
            [&] {
              auto first = serial_replies(*artifact_, 8);
              return digest_replies(first);
            }());
  EXPECT_EQ(fetch_stats("127.0.0.1", server.port()).generation, 2u);

  server.request_stop();
  server.wait();
}

TEST_F(ServeTest, ReloadRejectsInvalidArtifactAndKeepsServing) {
  ServerConfig server_config;
  Server server(*artifact_, server_config);
  server.start();
  EXPECT_THROW(server.reload(nullptr), ContractViolation);
  EXPECT_EQ(server.generation(), 1u);

  ClientOptions options;
  options.requests = 4;
  options.base_seed = kBaseSeed;
  EXPECT_EQ(replay("127.0.0.1", server.port(), *pool_, options).replies, 4u);
  server.request_stop();
  server.wait();
}

TEST_F(ServeTest, ServerAnswersStatsAndSurvivesBadClients) {
  ServerConfig server_config;
  server_config.workers = 2;
  Server server(*artifact_, server_config);
  server.start();

  // A client that sends garbage gets dropped; the server keeps serving.
  {
    const int fd = connect_to("127.0.0.1", server.port());
    const std::vector<std::uint8_t> garbage = {0x7f, 1, 2, 3};
    ASSERT_TRUE(write_frame(fd, garbage));
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(read_frame(fd, payload));  // server closed on us
    ::close(fd);
  }
  // A classify with the wrong pixel count is dropped without an answer and
  // without poisoning the worker.
  {
    const int fd = connect_to("127.0.0.1", server.port());
    ClassifyRequest bad;
    bad.image = {0.5f, 0.5f};
    ASSERT_TRUE(write_frame(fd, encode_classify(bad)));
    ::close(fd);
  }

  ClientOptions options;
  options.requests = 8;
  options.base_seed = kBaseSeed;
  const auto stats = replay("127.0.0.1", server.port(), *pool_, options);
  EXPECT_EQ(stats.replies, 8u);
  const auto server_stats = fetch_stats("127.0.0.1", server.port());
  EXPECT_EQ(server_stats.served, 8u);

  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace sparkxd::serve
