// Tests for the chaos layer: spec parsing, schedule determinism, digest
// parity under every injected fault mode (the core robustness claim — any
// number of torn/dripped/stalled/RST/corrupted frames leaves the id-sorted
// reply digest byte-identical to a clean run), slow-loris eviction, and
// drain-under-chaos (a mid-flood stop still answers every admitted request
// bit-for-bit).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "serve/artifact.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"

namespace sparkxd::serve {
namespace {

constexpr std::uint64_t kBaseSeed = 11;

// ------------------------------------------------------------------- spec

TEST(ChaosSpecTest, ParsesTheGrammar) {
  EXPECT_FALSE(ChaosSpec::parse("").any());
  EXPECT_FALSE(ChaosSpec::parse("none").any());

  const auto all = ChaosSpec::parse("all");
  EXPECT_DOUBLE_EQ(all.torn, ChaosSpec::kDefaultProb);
  EXPECT_DOUBLE_EQ(all.corrupt, ChaosSpec::kDefaultProb);

  const auto scaled = ChaosSpec::parse("all:0.25");
  EXPECT_DOUBLE_EQ(scaled.rst, 0.25);
  EXPECT_DOUBLE_EQ(scaled.drip, 0.25);

  const auto mixed = ChaosSpec::parse("torn:0.1,corrupt:0.5,stall");
  EXPECT_DOUBLE_EQ(mixed.torn, 0.1);
  EXPECT_DOUBLE_EQ(mixed.corrupt, 0.5);
  EXPECT_DOUBLE_EQ(mixed.stall, ChaosSpec::kDefaultProb);
  EXPECT_DOUBLE_EQ(mixed.rst, 0.0);
  EXPECT_TRUE(mixed.any());

  // Round trip through the canonical form.
  EXPECT_EQ(ChaosSpec::parse(mixed.to_string()).to_string(),
            mixed.to_string());
  EXPECT_EQ(ChaosSpec{}.to_string(), "none");
}

TEST(ChaosSpecTest, RejectsBadSpecs) {
  EXPECT_THROW((void)ChaosSpec::parse("bogus"), ContractViolation);
  EXPECT_THROW((void)ChaosSpec::parse("torn:1.5"), ContractViolation);
  EXPECT_THROW((void)ChaosSpec::parse("torn:-0.1"), ContractViolation);
  EXPECT_THROW((void)ChaosSpec::parse("torn:x"), ContractViolation);
  EXPECT_THROW((void)ChaosSpec::parse("torn:"), ContractViolation);
  EXPECT_THROW((void)ChaosSpec::parse("torn,,rst"), ContractViolation);
}

// --------------------------------------------------------------- schedule

TEST(ChaosScheduleTest, SameSeedSameSchedule) {
  // Two injectors with the same (spec, seed) must make identical decisions
  // frame for frame — observed through their counters over a discarding
  // peer. A different seed must eventually diverge.
  const auto spec = ChaosSpec::parse("all:0.3");
  const auto run = [&spec](std::uint64_t seed) {
    // /dev/null absorbs the bytes (send_bytes falls back to write() on
    // ENOTSOCK); an injected kill closes the fd, so "reconnect" by
    // reopening — the frame ordinal keeps counting across kills, exactly
    // like a real reconnecting client slot.
    ChaosConnection chaos(spec, seed);
    const auto payload = encode_queue_full(7);
    int fd = ::open("/dev/null", O_WRONLY);
    EXPECT_GE(fd, 0);
    for (int i = 0; i < 64; ++i) {
      if (fd < 0) {
        fd = ::open("/dev/null", O_WRONLY);
        EXPECT_GE(fd, 0);
      }
      (void)chaos.send_frame(fd, payload, false);
    }
    if (fd >= 0) ::close(fd);
    return chaos.counters();
  };
  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a.torn, b.torn);
  EXPECT_EQ(a.drip, b.drip);
  EXPECT_EQ(a.stall, b.stall);
  EXPECT_EQ(a.rst, b.rst);
  EXPECT_EQ(a.corrupt, b.corrupt);
  EXPECT_GT(a.total(), 0u);
  const bool diverged = a.torn != c.torn || a.drip != c.drip ||
                        a.stall != c.stall || a.rst != c.rst ||
                        a.corrupt != c.corrupt;
  EXPECT_TRUE(diverged) << "seed 43 replayed seed 42's schedule";
}

// ------------------------------------------------------------- end to end

/// Same one-artifact-per-suite setup as serve_test.cpp: the pipeline run
/// is the expensive part, every test only reads the result.
class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::PipelineConfig cfg;
    cfg.network.n_neurons = 20;
    cfg.network.timesteps = 30;
    cfg.network.seed = 5;
    cfg.train_samples = 80;
    cfg.test_samples = 40;
    cfg.baseline_epochs = 1;
    cfg.fault_training.ber_stages = {1e-5, 1e-3};
    cfg.voltages = {1.250, 1.025};
    cfg.seed = 5;
    core::ArtifactState state;
    (void)core::run_pipeline(cfg, &state);
    artifact_ = new ServingArtifact(
        make_artifact("serve-chaos-test", std::move(state)));
    pool_ = new data::Dataset(
        data::make_dataset(data::Task::kDigits, 16, kBaseSeed));
  }
  static void TearDownTestSuite() {
    delete artifact_;
    artifact_ = nullptr;
    delete pool_;
    pool_ = nullptr;
  }

  static ClassifyRequest request(std::size_t i) {
    ClassifyRequest req;
    req.id = i;
    req.seed = hash_combine(kBaseSeed, i);
    req.image = pool_->images[i % pool_->size()];
    return req;
  }

  static std::uint64_t serial_digest(std::size_t n) {
    Engine engine(*artifact_);
    std::vector<ClassifyReply> replies;
    replies.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      replies.push_back(engine.classify(request(i)));
    return digest_replies(replies);
  }

  /// A server hardened the way production would run: mid-frame read
  /// deadline tight enough to evict torn frames quickly but far above the
  /// injector's drip/stall pauses, plus a watchdog.
  static ServerConfig hardened_config() {
    ServerConfig config;
    config.workers = 2;
    config.max_batch = 8;
    config.read_deadline_ms = 250;
    config.watchdog_stall_ms = 10'000;
    return config;
  }

  static ServingArtifact* artifact_;
  static data::Dataset* pool_;
};

ServingArtifact* ServeChaosTest::artifact_ = nullptr;
data::Dataset* ServeChaosTest::pool_ = nullptr;

TEST_F(ServeChaosTest, DigestSurvivesEveryFaultMode) {
  // THE robustness claim of this layer: for every fault mode — and for all
  // of them at once, with CRC on and off where legal — the replay digest is
  // byte-identical to the clean serial digest. Failures cost retries and
  // reconnects, never data.
  constexpr std::size_t kRequests = 96;
  const std::uint64_t expected = serial_digest(kRequests);

  struct Case {
    const char* spec;
    bool crc;
  };
  const Case cases[] = {
      {"none", false},        {"none", true},
      {"torn:0.08", false},   {"drip:0.08", false},
      {"stall:0.08", false},  {"rst:0.08", false},
      {"corrupt:0.15", true}, {"all:0.04", true},
      {"torn:0.08,rst:0.08", false},
  };
  for (const auto& c : cases) {
    Server server(*artifact_, hardened_config());
    server.start();

    ClientOptions options;
    options.requests = kRequests;
    options.connections = 2;
    options.window = 8;
    options.base_seed = kBaseSeed;
    options.crc = c.crc;
    options.chaos = ChaosSpec::parse(c.spec);
    options.chaos_seed = 99;
    const auto stats = replay("127.0.0.1", server.port(), *pool_, options);

    EXPECT_EQ(stats.replies, kRequests) << c.spec;
    EXPECT_EQ(stats.digest, expected)
        << c.spec << " (crc " << c.crc << "): " << stats.chaos.total()
        << " faults, " << stats.reconnects << " reconnects";
    if (options.chaos.any())
      EXPECT_GT(stats.chaos.total(), 0u)
          << c.spec << " injected nothing — raise the probability";

    server.request_stop();
    server.wait();
  }
}

TEST_F(ServeChaosTest, ChaosReplayIsDeterministic) {
  // Same (chaos spec, chaos seed) twice against a fresh server: the digest
  // is identical and faults fired both times. (Frame k's FATE is a pure
  // function of (spec, seed, k) — pinned by ChaosScheduleTest above — but
  // how many frames a slot ends up sending depends on retry timing, so
  // run-level counter totals may differ by a few; the payloads never do.)
  constexpr std::size_t kRequests = 64;
  const auto run = [this] {
    Server server(*artifact_, hardened_config());
    server.start();
    ClientOptions options;
    options.requests = kRequests;
    options.connections = 2;
    options.window = 8;
    options.base_seed = kBaseSeed;
    options.crc = true;
    options.chaos = ChaosSpec::parse("all:0.06");
    options.chaos_seed = 7;
    const auto stats = replay("127.0.0.1", server.port(), *pool_, options);
    server.request_stop();
    server.wait();
    return stats;
  };
  const auto a = run(), b = run();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.digest, serial_digest(kRequests));
  EXPECT_EQ(a.replies, kRequests);
  EXPECT_EQ(b.replies, kRequests);
  EXPECT_GT(a.chaos.total(), 0u);
  EXPECT_GT(b.chaos.total(), 0u);
}

TEST_F(ServeChaosTest, CorruptChaosWithoutCrcIsRejectedUpFront) {
  ClientOptions options;
  options.chaos = ChaosSpec::parse("corrupt:0.1");
  options.crc = false;
  EXPECT_THROW((void)replay("127.0.0.1", 1, *pool_, options),
               ContractViolation);
}

TEST_F(ServeChaosTest, SlowLorisConnectionIsEvicted) {
  ServerConfig config;
  config.read_deadline_ms = 50;
  Server server(*artifact_, config);
  server.start();

  // Start a frame and never finish it. The server must evict us shortly
  // after the deadline instead of holding the reader forever.
  const int fd = connect_to("127.0.0.1", server.port());
  const auto wire = frame_wire_bytes(encode_classify(request(0)), false);
  ASSERT_GT(wire.size(), 8u);
  ASSERT_TRUE(send_bytes(fd, wire.data(), 8));
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(read_frame(fd, payload));  // eviction closes the stream
  ::close(fd);

  // The server is unharmed: a well-behaved client still gets served.
  ClientOptions options;
  options.requests = 4;
  options.base_seed = kBaseSeed;
  EXPECT_EQ(replay("127.0.0.1", server.port(), *pool_, options).replies, 4u);

  server.request_stop();
  server.wait();
  EXPECT_GE(server.stats().evicted_slow, 1u);
}

TEST_F(ServeChaosTest, DrainUnderChaosAnswersEveryAdmittedRequest) {
  // SIGTERM-equivalent mid-flood with chaos active: request_stop() lands
  // while a chaotic replay is in flight. Every reply that does come back
  // must be bit-equal to the serial engine's (verified via per-id replies
  // below), the server must drain and join cleanly, and the client — with
  // allow_partial — must report rather than hang or crash.
  constexpr std::size_t kRequests = 400;
  Server server(*artifact_, hardened_config());
  server.start();

  ReplayStats stats;
  std::thread replayer([&] {
    ClientOptions options;
    options.requests = kRequests;
    options.connections = 2;
    options.window = 8;
    options.base_seed = kBaseSeed;
    options.crc = true;
    options.chaos = ChaosSpec::parse("all:0.05");
    options.chaos_seed = 3;
    options.allow_partial = true;  // the server IS going away mid-run
    options.retry.max_reconnects = 3;
    stats = replay("127.0.0.1", server.port(), *pool_, options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server.request_stop();
  server.wait();  // must return: every admitted request answered, clean join
  replayer.join();

  // Whatever portion completed before the drain is exact. (The digest of a
  // partial id set cannot be compared against the full-run digest, so
  // exactness under chaos is pinned by DigestSurvivesEveryFaultMode; here
  // the claims are clean drain + no lost-or-duplicated ids among replies.)
  EXPECT_LE(stats.replies, kRequests);
  const auto server_stats = server.stats();
  EXPECT_GE(server_stats.served, stats.replies)
      << "client recorded replies the server never served";

  // Slots either finished or reported themselves incomplete — never hung.
  EXPECT_LE(stats.incomplete_conns, 2u);
  if (stats.replies < kRequests) EXPECT_GE(stats.incomplete_conns, 1u);
}

TEST_F(ServeChaosTest, EvictionWithPendingReplyStillAnswersAdmittedJob) {
  // A connection that gets a request admitted and is then evicted for
  // slow-lorising its NEXT frame must still receive (or at least not
  // corrupt) the pending reply path: the server writes the reply to the
  // (shut-down) socket and moves on. The observable contract: the server
  // neither crashes nor leaks the job, and a healthy client is unaffected.
  ServerConfig config;
  config.read_deadline_ms = 40;
  config.max_wait_us = 200'000;  // hold the batch until the eviction lands
  Server server(*artifact_, config);
  server.start();

  const int fd = connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(write_frame(fd, encode_classify(request(0))));
  const auto wire = frame_wire_bytes(encode_classify(request(1)), false);
  ASSERT_TRUE(send_bytes(fd, wire.data(), 5));  // start, never finish
  std::vector<std::uint8_t> payload;
  // We may or may not see the reply before the eviction closes the stream;
  // both are legal. What must not happen is a hang or a server crash.
  try {
    (void)read_frame(fd, payload);
  } catch (const ContractViolation&) {
  }
  ::close(fd);

  ClientOptions options;
  options.requests = 8;
  options.base_seed = kBaseSeed;
  EXPECT_EQ(replay("127.0.0.1", server.port(), *pool_, options).replies, 8u);
  server.request_stop();
  server.wait();
  EXPECT_GE(server.stats().evicted_slow, 1u);
}

}  // namespace
}  // namespace sparkxd::serve
