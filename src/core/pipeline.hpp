#pragma once
// The end-to-end SparkXD pipeline (paper Fig. 7): baseline training ->
// fault-aware training (Algorithm 1) -> tolerance analysis -> error-aware
// DRAM mapping (Algorithm 2) -> DRAM energy / throughput evaluation across
// supply voltages.
//
// This is the top-level API a deployment would use: give it a task and a
// network size, get back the improved model, its maximum tolerable BER, and
// a per-voltage report of accuracy, energy and speed against the accurate-
// DRAM baseline.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fault_aware.hpp"
#include "core/layer_knobs.hpp"
#include "dram/geometry.hpp"
#include "energy/ber_model.hpp"
#include "energy/power_model.hpp"
#include "energy/voltage_model.hpp"
#include "error/error_model.hpp"
#include "mapping/mapping.hpp"
#include "snn/params.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::core {

/// Full pipeline configuration.
struct PipelineConfig {
  snn::NetworkConfig network;
  data::Task task = data::Task::kDigits;
  std::size_t train_samples = 600;
  std::size_t test_samples = 200;
  std::size_t baseline_epochs = 2;
  FaultTrainingConfig fault_training;
  /// Supply voltages to evaluate (paper: 1.325 .. 1.025 V).
  std::vector<double> voltages = {1.325, 1.250, 1.175, 1.100, 1.025};
  dram::Geometry geometry = dram::Geometry::lpddr3_4gb();
  /// Per-subarray row buffers (SALP, §IV-D / Putra et al. [14]) for the
  /// SparkXD mapping's evaluation. The accurate-DRAM baseline reference is
  /// always the conventional commodity module (one row buffer per bank).
  bool salp = false;
  /// Refresh axis (EDEN-style reduced refresh). Disabled by default, which
  /// reproduces the refresh-free controller schedule and the legacy
  /// makespan-based refresh-energy estimate bit for bit. When simulated,
  /// the accurate-DRAM baseline reference runs at the NOMINAL cadence, so
  /// reduced-rate savings include the refresh-energy win.
  dram::RefreshPolicy refresh;
  error::ErrorModelSpec error_model;  ///< Model-0 by default (paper §III);
                                      ///< carries the retention spec
  /// ECC axis (third approximation knob). Disabled by default, which keeps
  /// the unprotected path bit for bit. When enabled, each layer's weights
  /// are codeword-protected: injection is raw (no load-time clip before the
  /// decoder), the scrub corrects/flags codewords against check words from
  /// the clean weights, and the check storage + per-codeword decode
  /// latency/energy feed the placement, the controller timeline, and the
  /// energy breakdown. A layer whose BER_th the operating point exceeds
  /// escalates along error::ecc_escalation_ladder instead of immediately
  /// relaxing placement capacity.
  error::EccSpec ecc;
  /// Per-layer operating-point search (EnforceSNN/EDEN completion): when
  /// enabled, run_pipeline additionally assigns each layer its own
  /// (voltage, refresh, ECC) triple via assign_layer_knobs and reports the
  /// result in PipelineReport::layer_knobs. Purely additive — the search
  /// consumes no Rng and runs after the sweep, so every report field of a
  /// knob-free run is bit-identical.
  LayerKnobsConfig layer_knobs;
  std::uint64_t seed = 42;
  /// Lognormal spread of per-subarray error rates.
  double subarray_sigma = 0.8;

  /// Validates the configuration; throws ContractViolation with a specific
  /// message on the first problem found. Checks sample counts, the BER
  /// stage schedule (non-empty, positive, strictly ascending), the voltage
  /// grid (non-empty, finite, positive, strictly descending — the paper's
  /// 1.325 → 1.025 V presentation order), and the DRAM geometry.
  void validate() const;
};

/// Per-layer slice of one voltage row: the placement, occupancy, and DRAM
/// accounting of ONE layer of the stack (its weights live in their own
/// disjoint safe-subarray region with their own BER threshold). The
/// top-level VoltageReport fields aggregate these — energy/refreshes/weak
/// cells by sum, the hit rate over the combined access counts.
struct LayerVoltageStats {
  double ber_th = 0.0;  ///< threshold this layer was placed under (post-relax)
  bool capacity_relaxed = false;  ///< threshold raised to fit this layer
  std::size_t chunks = 0;         ///< burst chunks holding this layer
  std::size_t safe_subarrays = 0; ///< subarrays safe at this layer's BER_th
  double energy_nj = 0.0;         ///< streaming this layer's weights once
  double row_hit_rate = 0.0;
  std::uint64_t refreshes = 0;
  std::size_t retention_weak_cells = 0;
  // ECC axis (meaningful only when PipelineConfig::ecc is enabled; all
  // zero/empty otherwise so non-ecc reports and digests are unchanged).
  std::string ecc_scheme;          ///< assigned scheme name, e.g. "bch(79,64)"
  bool ecc_escalated = false;      ///< stronger than the configured base code
  double ecc_overhead = 0.0;       ///< check bits per data bit
  std::uint64_t ecc_codewords = 0; ///< codewords scrubbed across MC trials
  std::uint64_t ecc_corrected = 0; ///< codewords fully restored
  std::uint64_t ecc_detected = 0;  ///< codewords flagged uncorrectable
  double ecc_energy_nj = 0.0;      ///< decode energy of one weight stream
};

/// Per-voltage evaluation row (one bar group of Fig. 12a / 12b).
struct VoltageReport {
  double v_supply = 0.0;
  double module_ber = 0.0;
  double accuracy = 0.0;       ///< improved SNN + Algorithm 2 mapping
  double energy_nj = 0.0;      ///< DRAM energy of one inference weight fetch
  double saving_pct = 0.0;     ///< vs the accurate-DRAM baseline
  double speedup = 1.0;        ///< baseline time / SparkXD time
  double row_hit_rate = 0.0;
  std::size_t safe_subarrays = 0;
  bool capacity_relaxed = false;  ///< BER_th raised to fit the weights
  std::uint64_t refreshes = 0;    ///< REF commands during the weight stream
  /// Retention-failure weak cells in the mapped payload (0 unless the
  /// refresh policy is simulated with a retention-enabled error model).
  std::size_t retention_weak_cells = 0;
  // ECC scrub aggregates over all layers (zero when the ecc axis is off).
  std::uint64_t ecc_codewords = 0;
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_detected = 0;
  /// One entry per network layer (size n_layers; a single-layer stack has
  /// one entry that mirrors the top-level fields). For deep stacks the
  /// top-level energy_nj/refreshes/retention_weak_cells are the sums over
  /// these, row_hit_rate aggregates the access counts, safe_subarrays is
  /// the most permissive layer's count, and capacity_relaxed is true when
  /// ANY layer's threshold had to be relaxed.
  std::vector<LayerVoltageStats> layers;
};

/// Wall-clock phase timings of one run_pipeline call (nanoseconds).
/// Informational only: host- and load-dependent, so they are EXCLUDED from
/// the stable JSON serialization and the golden digests (which must stay
/// byte-identical across runs); sparkxd_run --timings prints them to stderr.
struct PhaseTimings {
  double train_ns = 0.0;           ///< dataset synthesis + baseline training
  double fault_training_ns = 0.0;  ///< Algorithm 1 (incl. stage evaluations)
  double sweep_ns = 0.0;           ///< baseline energy + per-voltage sweep
  double total_ns = 0.0;
};

/// Full pipeline output.
struct PipelineReport {
  double baseline_accuracy = 0.0;  ///< baseline SNN, accurate DRAM
  double improved_accuracy = 0.0;  ///< improved SNN, error-free weights
  double ber_th = 0.0;
  bool met_target = false;
  std::vector<TolerancePoint> stage_curve;
  /// Per-layer maximum tolerable BER (size = network n_layers, input side
  /// first). For a single-layer stack this is {ber_th} — the global
  /// analysis IS the one layer's analysis, so no extra work (or Rng
  /// consumption) happens. For deep stacks it is the §IV-C analysis run
  /// once per layer with ONLY that layer corrupted (see
  /// analyze_layer_tolerance); 0.0 where the bound was never met.
  std::vector<double> layer_ber_th;
  std::vector<bool> layer_met_target;        ///< per-layer bound met?
  /// Per-layer tolerance curves (deep stacks only; empty for single-layer).
  std::vector<std::vector<TolerancePoint>> layer_curves;
  double baseline_energy_nj = 0.0;  ///< accurate DRAM @1.35 V, baseline map
  double baseline_time_ns = 0.0;
  std::vector<VoltageReport> per_voltage;
  /// Per-layer operating points (engaged when PipelineConfig::layer_knobs
  /// is enabled; nullopt otherwise so legacy reports are untouched).
  std::optional<LayerKnobsReport> layer_knobs;
  PhaseTimings timings;  ///< wall clock; not serialized, not digested
};

/// Runs the whole framework. Deterministic in cfg.seed.
[[nodiscard]] PipelineReport run_pipeline(const PipelineConfig& cfg);

/// Offline half of the artifact/serve split: everything a long-lived server
/// needs to run classification at ONE deployed operating point, captured
/// while the pipeline computes it anyway. The capture is purely additive —
/// it copies state the sweep already built (the improved model, one
/// voltage's Algorithm-2 placement, and that voltage's frozen injection
/// tables) and consumes no Rng, so a run with capture is bit-identical to a
/// run without (the golden digests lock this down).
struct ArtifactState {
  /// Input: index into cfg.voltages of the operating point to capture;
  /// npos (the default) captures the LAST grid entry — the lowest, most
  /// aggressive voltage, the paper's headline operating point.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t voltage_index = npos;

  // Outputs, filled by run_pipeline:
  double v_supply = 0.0;
  double module_ber = 0.0;      ///< operating BER at v_supply
  float weight_clip = 0.0f;     ///< load-time range clip the server applies
  /// The improved (fault-aware) model; clean_accuracy holds the error-free
  /// test accuracy (the report's improved_accuracy).
  std::optional<snn::TrainedModel> model;
  /// Per-layer Algorithm-2 placement at the captured voltage.
  std::vector<mapping::LayerPlacement> placement;
  /// Per-layer frozen injection tables at module_ber — the exact tables the
  /// sweep's Monte-Carlo evaluation shares across trials, now shareable
  /// across serving workers.
  std::vector<error::FrozenInjection> frozen;
};

/// run_pipeline with an optional artifact capture (nullptr = plain run).
[[nodiscard]] PipelineReport run_pipeline(const PipelineConfig& cfg,
                                          ArtifactState* artifact);

/// Burst request arrival period seen by the DRAM: the accelerator consumes
/// one 32 B weight burst per MAC-array pass, slightly slower than the bus
/// can stream (tBURST = 5 ns), so short bank-preparation stalls are partially
/// hidden. Both mappings are simulated under the same arrival process.
inline constexpr double kBurstArrivalNs = 5.4;

/// Helper shared with the benches: DRAM stats + energy of streaming all
/// weights of an n_weights model through a placement at a supply voltage.
struct TraceEnergy {
  dram::TraceStats stats;
  energy::EnergyBreakdown energy;
};

/// ECC cost of one layer's weight stream: the scrub engine decodes every
/// fetched codeword, extending the access timeline (background energy
/// accrues over the added decode time, and the speedup vs the accurate
/// baseline reflects it) and drawing decode energy on the fixed logic rail
/// (EnergyBreakdown::ecc_nj). Stream the CHECK bits too by passing the
/// stored (payload + check equivalent) weight count to
/// weight_stream_energy — that is the redundancy-read bandwidth cost.
struct EccStreamOverhead {
  std::size_t codewords = 0;
  double decode_ns_per_codeword = 0.0;
  double decode_nj_per_codeword = 0.0;
};

[[nodiscard]] TraceEnergy weight_stream_energy(
    const dram::Geometry& geometry, const error::ChunkPlacement& placement,
    std::size_t n_weights, double v_supply,
    const energy::VoltageModel& vm = energy::VoltageModel{},
    const energy::PowerModel& pm = energy::PowerModel{}, bool salp = false,
    const dram::RefreshPolicy& refresh = dram::RefreshPolicy::disabled(),
    const EccStreamOverhead* ecc = nullptr);

}  // namespace sparkxd::core
