#pragma once
// ASCII table / CSV emission for the benchmark harnesses.
//
// Every bench binary prints the paper's rows/series as an aligned ASCII table
// on stdout; when the environment variable SPARKXD_CSV_DIR is set, the same
// table is additionally written as `<dir>/<name>.csv` for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace sparkxd {

/// Column-aligned table with a title and a header row.
class Table {
 public:
  Table(std::string name, std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Formats a double with the given precision (helper for callers).
  static std::string num(double v, int precision = 3);
  /// Scientific notation, e.g. "1.0e-05".
  static std::string sci(double v, int precision = 1);
  /// Percent with sign, e.g. "39.46%".
  static std::string pct(double v, int precision = 2);

  /// Writes the aligned ASCII rendering.
  void print(std::ostream& os) const;

  /// Prints to stdout and, if SPARKXD_CSV_DIR is set, writes `<name>.csv` there.
  void emit() const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string name_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sparkxd
