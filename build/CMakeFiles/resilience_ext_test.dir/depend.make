# Empty dependencies file for resilience_ext_test.
# This may be replaced when dependencies are built.
