// Fig. 2c: bit error rate vs DRAM supply voltage.
// Paper: BER grows from ~0 near 1.35 V to ~1e-2 around 1.0 V as the supply
// drops (study of Chang et al. [10]).

#include <cmath>

#include "bench_common.hpp"
#include "energy/ber_model.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 2c — BER vs supply voltage",
                "bit errors increase as the supply voltage decreases");
  const energy::BerModel bm;
  Table t("fig02c_ber_voltage", {"V_supply [V]", "BER", "log10(BER)"});
  for (double v = 1.350; v >= 1.024; v -= 0.025) {
    const double ber = bm.ber(v);
    t.add_row({Table::num(v, 3), ber > 0.0 ? Table::sci(ber) : "0",
               ber > 0.0 ? Table::num(std::log10(ber), 2) : "-inf"});
  }
  t.emit();
  return 0;
}
