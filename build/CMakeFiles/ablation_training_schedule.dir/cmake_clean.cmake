file(REMOVE_RECURSE
  "CMakeFiles/ablation_training_schedule.dir/bench/ablation_training_schedule.cpp.o"
  "CMakeFiles/ablation_training_schedule.dir/bench/ablation_training_schedule.cpp.o.d"
  "ablation_training_schedule"
  "ablation_training_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
