// Tests for the Poisson rate encoder (snn/encoding): spike-rate
// correctness, determinism per Rng stream, zero/full intensity behavior,
// and domain contracts. The encoder drives every spike train in the
// framework, so its rate and stream discipline underpin both the accuracy
// numbers and the bit-exact determinism contract.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "snn/encoding.hpp"

namespace sparkxd::snn {
namespace {

TEST(PoissonEncoder, EmpiricalRateMatchesIntensityTimesMaxRate) {
  // A pixel of intensity p spikes with probability p * max_rate per step:
  // over many steps the empirical frequency must land within a few standard
  // errors of that product, pixel by pixel.
  const float max_rate = 0.3f;
  PoissonEncoder enc(max_rate);
  const std::vector<float> image{0.1f, 0.5f, 1.0f, 0.0f, 0.25f};
  enc.set_image(image);
  const std::size_t steps = 20000;
  std::vector<std::size_t> counts(image.size(), 0);
  Rng rng(7);
  std::vector<std::uint32_t> spikes;
  for (std::size_t t = 0; t < steps; ++t) {
    enc.step(rng, spikes);
    for (const auto i : spikes) ++counts[i];
  }
  for (std::size_t i = 0; i < image.size(); ++i) {
    const double p = static_cast<double>(image[i]) * max_rate;
    const double freq = static_cast<double>(counts[i]) / steps;
    const double sigma = std::sqrt(p * (1.0 - p) / steps);
    EXPECT_NEAR(freq, p, 5.0 * sigma + 1e-12) << "pixel " << i;
  }
}

TEST(PoissonEncoder, DeterministicPerRngStream) {
  // Identical Rng states must produce identical spike trains — the property
  // every fork-per-sample evaluation path in the framework leans on.
  PoissonEncoder enc(0.5f);
  std::vector<float> image(50);
  Rng img_rng(11);
  for (auto& p : image) p = static_cast<float>(img_rng.uniform());
  enc.set_image(image);
  Rng a(42), b(42), c(43);
  std::vector<std::uint32_t> sa, sb, sc;
  bool any_difference_from_c = false;
  for (std::size_t t = 0; t < 200; ++t) {
    enc.step(a, sa);
    enc.step(b, sb);
    enc.step(c, sc);
    EXPECT_EQ(sa, sb) << "same seed diverged at step " << t;
    any_difference_from_c |= sa != sc;
  }
  EXPECT_TRUE(any_difference_from_c) << "different seeds never diverged";
}

TEST(PoissonEncoder, SpikeIndicesAreSortedActivePixels) {
  PoissonEncoder enc(1.0f);
  const std::vector<float> image{0.0f, 0.8f, 0.0f, 0.9f, 0.7f};
  enc.set_image(image);
  Rng rng(3);
  std::vector<std::uint32_t> spikes;
  for (std::size_t t = 0; t < 100; ++t) {
    enc.step(rng, spikes);
    for (std::size_t k = 0; k < spikes.size(); ++k) {
      EXPECT_GT(image[spikes[k]], 0.0f) << "zero pixel spiked";
      if (k > 0) {
        EXPECT_LT(spikes[k - 1], spikes[k]) << "indices unsorted";
      }
    }
  }
}

TEST(PoissonEncoder, ZeroPixelsNeverSpikeAndFullIntensityAlwaysDoes) {
  // At max_rate 1.0 a full-intensity pixel fires every step (uniform() < 1
  // is certain); zero pixels are not even enumerated as active.
  PoissonEncoder enc(1.0f);
  enc.set_image({1.0f, 0.0f, 1.0f});
  Rng rng(5);
  std::vector<std::uint32_t> spikes;
  for (std::size_t t = 0; t < 50; ++t) {
    enc.step(rng, spikes);
    ASSERT_EQ(spikes.size(), 2u);
    EXPECT_EQ(spikes[0], 0u);
    EXPECT_EQ(spikes[1], 2u);
  }
}

TEST(PoissonEncoder, ExpectedSpikesPerStepSumsActiveProbabilities) {
  PoissonEncoder enc(0.4f);
  enc.set_image({0.5f, 0.0f, 1.0f});
  EXPECT_NEAR(enc.expected_spikes_per_step(), 0.5 * 0.4 + 1.0 * 0.4, 1e-6);
  enc.set_image(std::vector<float>(10, 0.0f));
  EXPECT_EQ(enc.expected_spikes_per_step(), 0.0);
}

TEST(PoissonEncoder, SetImageResetsTheActiveSet) {
  PoissonEncoder enc(1.0f);
  enc.set_image({1.0f, 1.0f});
  enc.set_image({0.0f, 1.0f});  // the first image must not linger
  Rng rng(9);
  std::vector<std::uint32_t> spikes;
  enc.step(rng, spikes);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0], 1u);
}

TEST(PoissonEncoder, RejectsBadRatesAndIntensities) {
  EXPECT_THROW(PoissonEncoder(0.0f), ContractViolation);
  EXPECT_THROW(PoissonEncoder(-0.1f), ContractViolation);
  EXPECT_THROW(PoissonEncoder(1.5f), ContractViolation);
  PoissonEncoder enc(0.5f);
  EXPECT_THROW(enc.set_image({0.5f, 1.2f}), ContractViolation);
}

TEST(PoissonEncoder, RejectsNegativeAndNanIntensities) {
  // Regression: the `> 0.0f` activity filter used to run before any
  // validation, so negative and NaN pixels slipped through silently as
  // "inactive" instead of failing the [0,1] domain contract.
  PoissonEncoder enc(0.5f);
  EXPECT_THROW(enc.set_image({0.5f, -0.1f}), ContractViolation);
  EXPECT_THROW(enc.set_image({-1.0f}), ContractViolation);
  EXPECT_THROW(enc.set_image({0.5f, std::nanf("")}), ContractViolation);
  // A rejected image must not leave a partial active set behind.
  enc.set_image({1.0f, 0.0f});
  EXPECT_EQ(enc.active_pixels(), 1u);
}

TEST(PoissonEncoder, ActivePixelsCountsNonZeroIntensities) {
  PoissonEncoder enc(0.5f);
  enc.set_image({0.0f, 0.3f, 1.0f, 0.0f});
  EXPECT_EQ(enc.active_pixels(), 2u);
  enc.set_image(std::vector<float>(8, 0.0f));
  EXPECT_EQ(enc.active_pixels(), 0u);
}

}  // namespace
}  // namespace sparkxd::snn
