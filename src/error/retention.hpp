#pragma once
// Retention-failure error model — the refresh-axis counterpart of the
// voltage-BER models (EDEN [15] §"reduced refresh", EnforceSNN).
//
// A DRAM cell must be refreshed before its charge leaks below the sense
// threshold. The datasheet guarantees every cell a retention window tREFW
// (64 ms for LPDDR3); real cells retain their data far longer, with a
// lognormal-tailed distribution across the die. Relaxing the refresh
// cadence by a multiplier m stretches the effective window to m x tREFW, so
// the cells whose retention time falls below that stretched window fail —
// deterministically the *same* cells at every read, which is exactly the
// weak-cell structure fault-aware training can learn around.
//
// We model per-cell retention time (in units of the nominal window) as
//     t_ret = 10^(median_decades + sigma_decades * z) / subarray_weakness
// with z standard normal. A cell fails when t_ret < m, i.e. with
// per-subarray probability
//     p(m, w) = Phi((log10(m) + log10(w) - median_decades) / sigma_decades).
// The injector realizes this by comparing a deterministic per-cell uniform
// hash against p — which makes retention-weak sets NESTED across multipliers
// (a cell failing at m = 8 also fails at m = 16), mirroring the nesting of
// the voltage weak-cell sets across BER.
//
// The defaults put the nominal cadence (m = 1) at ~1e-8 failures/cell and
// m = 32 at ~1e-3 — the same decades the voltage axis spans — so the two
// approximation axes compose on equal footing.

#include "common/contracts.hpp"

namespace sparkxd::error {

/// Retention-failure model parameters. `enabled` is false by default so
/// error models without a refresh axis are unaffected.
struct RetentionSpec {
  bool enabled = false;
  /// Effective retention window in units of the nominal tREFW (the refresh
  /// policy's interval multiplier; 1 = datasheet cadence).
  double interval_multiplier = 1.0;
  /// log10 of the median cell retention time, in nominal windows
  /// (3.36 decades ~ 23 s for a 64 ms window).
  double median_decades = 3.36;
  /// Lognormal spread of retention times, in decades.
  double sigma_decades = 0.6;

  /// Throws ContractViolation when enabled with out-of-range parameters.
  void validate() const;
};

/// Probability that a cell of a subarray with weakness multiplier
/// `subarray_weakness` fails to retain its data over the effective window.
/// Monotonically non-decreasing in both arguments; 0 when disabled.
[[nodiscard]] double retention_fail_probability(const RetentionSpec& spec,
                                                double subarray_weakness);

}  // namespace sparkxd::error
