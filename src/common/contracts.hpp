#pragma once
// Lightweight contract checking (Core Guidelines I.6/I.8 style).
//
// SPARKXD_REQUIRE  - precondition on a public API; always on (throws).
// SPARKXD_ENSURE   - postcondition / internal invariant; always on (throws).
//
// We throw rather than abort so that tests can assert on violations and so that
// long-running benchmark harnesses fail with a diagnosable message.

#include <sstream>
#include <stdexcept>
#include <string>

namespace sparkxd {

/// Error thrown when a precondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace sparkxd

#define SPARKXD_REQUIRE(cond, msg)                                            \
  do {                                                                        \
    if (!(cond))                                                              \
      ::sparkxd::detail::contract_fail("precondition", #cond, __FILE__,       \
                                       __LINE__, (msg));                      \
  } while (false)

#define SPARKXD_ENSURE(cond, msg)                                             \
  do {                                                                        \
    if (!(cond))                                                              \
      ::sparkxd::detail::contract_fail("invariant", #cond, __FILE__,          \
                                       __LINE__, (msg));                      \
  } while (false)
