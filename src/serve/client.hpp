#pragma once
// Client side of the serving protocol: a deterministic replay load
// generator plus small helpers (connect, stats fetch, reply digest).
//
// replay() opens N connections, each driven by its own thread with a
// windowed pipeline (up to `window` requests in flight per connection).
// Request i carries id=i, seed=hash_combine(base_seed, i), and image
// pool[i % pool.size()]; connection c sends the requests with i % N == c.
// Because every reply is a pure function of (artifact, request) — see
// engine.hpp — the id-sorted reply digest is identical no matter how the
// server batches, how many workers it runs, or how the replies interleave,
// which is exactly what the serve-smoke golden pins.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"

namespace sparkxd::serve {

struct ClientOptions {
  std::size_t requests = 1000;
  std::size_t connections = 1;
  std::size_t window = 64;  ///< max in-flight requests per connection
  std::uint64_t base_seed = 7;
};

struct ReplayStats {
  std::uint64_t replies = 0;
  std::uint64_t digest = 0;   ///< id-sorted FNV-1a over all replies
  std::uint64_t wall_ns = 0;  ///< first send to last reply
  /// kQueueFull rejections that were re-sent until answered. Timing-
  /// dependent (NOT part of the digest): every request still ends in
  /// exactly one reply, so the digest stays replayable bit for bit.
  std::uint64_t retries = 0;
  /// One entry per reply: first-send-to-reply microseconds (unsorted);
  /// retried requests include their queue-full round trips and backoff.
  std::vector<double> latency_us;
};

/// Blocking TCP connect to host:port; throws ContractViolation on failure.
[[nodiscard]] int connect_to(const std::string& host, std::uint16_t port);

/// Drives `options.requests` classify requests from the image pool and
/// collects every reply. Throws if the server drops a connection early.
[[nodiscard]] ReplayStats replay(const std::string& host, std::uint16_t port,
                                 const data::Dataset& pool,
                                 const ClientOptions& options);

/// Fetches the server counters over a fresh connection.
[[nodiscard]] ServerStats fetch_stats(const std::string& host,
                                      std::uint16_t port);

/// FNV-1a 64 over (id, label, spikes, flips) of the replies in ascending-id
/// order (the input is sorted in place). Concurrency-order independent.
[[nodiscard]] std::uint64_t digest_replies(std::vector<ClassifyReply>& replies);

/// Nearest-rank percentile (p in [0, 100]) of an unsorted sample; 0 when
/// the sample is empty. The input is sorted in place.
[[nodiscard]] double percentile(std::vector<double>& sample, double p);

}  // namespace sparkxd::serve
