// CLI contract tests for sparkxd_run: bad usage must exit 2 with a clear
// stderr message, --help must exit 0. These run the real binary (path baked
// in via SPARKXD_RUN_BIN) so the exit codes scripts and CI depend on are
// pinned by a test, not convention.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, merged
};

RunResult run_cli(const std::string& args) {
  const std::string cmd = std::string(SPARKXD_RUN_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult result;
  if (pipe == nullptr) return result;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
    result.output.append(buf, n);
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(CliTest, UnknownScenarioExitsTwoWithMessage) {
  const auto r = run_cli("--scenario no-such-scenario-xyz");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown scenario 'no-such-scenario-xyz'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("--list"), std::string::npos) << r.output;
}

TEST(CliTest, NoSelectionExitsTwo) {
  const auto r = run_cli("--digest");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("nothing selected"), std::string::npos) << r.output;
}

TEST(CliTest, BadRefreshSpecExitsTwo) {
  const auto r = run_cli("--scenario smoke-digits-m0 --refresh bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--refresh"), std::string::npos) << r.output;
}

TEST(CliTest, BadEccSpecExitsTwo) {
  const auto r = run_cli("--scenario smoke-digits-m0 --ecc bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--ecc"), std::string::npos) << r.output;
  // An infeasible shape (secded is the fixed 72,64 code) is rejected by the
  // spec validation, same exit code.
  const auto shape = run_cli("--scenario smoke-digits-m0 --ecc secded:128");
  EXPECT_EQ(shape.exit_code, 2);
  EXPECT_NE(shape.output.find("--ecc"), std::string::npos) << shape.output;
}

TEST(CliTest, EccOverrideRenamesAndShowsInList) {
  const auto r = run_cli("--list --scenario smoke-digits-m0 --ecc bch:4096");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("smoke-digits-m0-ecc-bch4096b"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[ecc override]"), std::string::npos) << r.output;
}

TEST(CliTest, UnknownOptionExitsTwo) {
  const auto r = run_cli("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option"), std::string::npos) << r.output;
}

TEST(CliTest, ExportArtifactNeedsExactlyOneScenario) {
  const auto r = run_cli(
      "--scenario smoke-digits-m0 --scenario smoke-fashion-salp-m1 "
      "--export-artifact /tmp/cli_test_never_written.sxda");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("exactly one selected scenario"),
            std::string::npos)
      << r.output;
}

TEST(CliTest, BadArtifactVoltageExitsTwo) {
  const auto r = run_cli(
      "--scenario smoke-digits-m0 --export-artifact "
      "/tmp/cli_test_never_written.sxda --artifact-voltage nope");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--artifact-voltage"), std::string::npos)
      << r.output;
}

TEST(CliTest, HelpExitsZero) {
  const auto r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage: sparkxd_run"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("--export-artifact"), std::string::npos)
      << r.output;
}

TEST(CliTest, ListExitsZeroAndNamesGoldenScenarios) {
  const auto r = run_cli("--list");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("smoke-digits-m0"), std::string::npos) << r.output;
}

}  // namespace
