file(REMOVE_RECURSE
  "CMakeFiles/resilience_ext_test.dir/tests/resilience_ext_test.cpp.o"
  "CMakeFiles/resilience_ext_test.dir/tests/resilience_ext_test.cpp.o.d"
  "resilience_ext_test"
  "resilience_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
