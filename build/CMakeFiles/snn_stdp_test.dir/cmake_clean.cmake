file(REMOVE_RECURSE
  "CMakeFiles/snn_stdp_test.dir/tests/snn_stdp_test.cpp.o"
  "CMakeFiles/snn_stdp_test.dir/tests/snn_stdp_test.cpp.o.d"
  "snn_stdp_test"
  "snn_stdp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snn_stdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
