// Tests for the serving wire protocol: encoder/decoder round trips,
// malformed-payload rejection, CRC (v2) framing, hello negotiation,
// mid-frame read deadlines, frame I/O over real fds, and a seeded fuzzer
// that throws random bytes, truncations, and oversized length prefixes at
// every decoder (ASan/UBSan in CI turn any over-read into a hard failure).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "serve/protocol.hpp"

namespace sparkxd::serve {
namespace {

ClassifyRequest sample_request() {
  ClassifyRequest req;
  req.id = 0x1122334455667788ULL;
  req.seed = 0xdeadbeefcafef00dULL;
  req.image = {0.0f, 0.25f, 0.5f, 1.0f};
  return req;
}

ServerStats sample_stats() {
  ServerStats stats;
  stats.served = 1000;
  stats.batches = 131;
  stats.max_queue_depth = 77;
  stats.generation = 3;
  stats.wedged_events = 1;
  stats.deadline_exceeded = 12;
  stats.bad_frames = 4;
  stats.evicted_slow = 2;
  stats.rejected_conns = 9;
  stats.batch_hist = {10, 0, 5, 116};
  return stats;
}

TEST(ServeProtocolTest, ClassifyRoundTrip) {
  const auto req = sample_request();
  const auto payload = encode_classify(req);
  EXPECT_EQ(frame_type(payload), MsgType::kClassify);
  const auto back = decode_classify(payload);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.image, req.image);
}

TEST(ServeProtocolTest, ReplyRoundTrip) {
  ClassifyReply rep;
  rep.id = 42;
  rep.label = -1;
  rep.spikes = 17;
  rep.flips = 3;
  const auto payload = encode_reply(rep);
  EXPECT_EQ(frame_type(payload), MsgType::kReply);
  EXPECT_EQ(decode_reply(payload), rep);
}

TEST(ServeProtocolTest, StatsRoundTrip) {
  const auto stats = sample_stats();
  const auto payload = encode_stats_reply(stats);
  EXPECT_EQ(frame_type(payload), MsgType::kStatsReply);
  EXPECT_EQ(decode_stats_reply(payload), stats);
  EXPECT_EQ(frame_type(encode_stats_request()), MsgType::kStats);
}

TEST(ServeProtocolTest, QueueFullRoundTrip) {
  const std::uint64_t id = 0xfeedfacecafebeefULL;
  const auto payload = encode_queue_full(id);
  EXPECT_EQ(frame_type(payload), MsgType::kQueueFull);
  EXPECT_EQ(decode_queue_full(payload), id);
}

TEST(ServeProtocolTest, DeadlineExceededRoundTrip) {
  const std::uint64_t id = 0x0123456789abcdefULL;
  const auto payload = encode_deadline_exceeded(id);
  EXPECT_EQ(frame_type(payload), MsgType::kDeadlineExceeded);
  EXPECT_EQ(decode_deadline_exceeded(payload), id);
  // The two rejection frames must not be confusable.
  EXPECT_THROW((void)decode_queue_full(payload), ContractViolation);
}

TEST(ServeProtocolTest, BadFrameRoundTrip) {
  const auto payload = encode_bad_frame();
  EXPECT_EQ(frame_type(payload), MsgType::kBadFrame);
}

TEST(ServeProtocolTest, HelloRoundTrip) {
  for (const bool crc : {false, true}) {
    const Hello hello{crc ? kProtocolV2 : kProtocolV1, crc};
    const auto payload = encode_hello(hello);
    EXPECT_EQ(frame_type(payload), MsgType::kHello);
    EXPECT_EQ(decode_hello(payload), hello);
    const auto ack = encode_hello_ack(hello);
    EXPECT_EQ(frame_type(ack), MsgType::kHelloAck);
    EXPECT_EQ(decode_hello_ack(ack), hello);
  }
}

TEST(ServeProtocolTest, HelloRejectsBadVersionAndFlags) {
  // CRC flag requires protocol v2.
  EXPECT_THROW((void)encode_hello(Hello{kProtocolV1, true}),
               ContractViolation);
  // Unknown version on the wire.
  auto payload = encode_hello(Hello{kProtocolV2, true});
  payload[1] = 99;
  EXPECT_THROW((void)decode_hello(payload), ContractViolation);
  // Unknown flag bits on the wire.
  auto flags = encode_hello(Hello{kProtocolV2, true});
  flags.back() = 0x80 | kHelloFlagCrc;
  EXPECT_THROW((void)decode_hello(flags), ContractViolation);
}

TEST(ServeProtocolTest, Crc32KnownVector) {
  // The classic check value: CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(ServeProtocolTest, FrameWireBytesCarryCrcTrailer) {
  const auto payload = encode_queue_full(7);
  const auto plain = frame_wire_bytes(payload, false);
  const auto checked = frame_wire_bytes(payload, true);
  EXPECT_EQ(plain.size(), 4 + payload.size());
  EXPECT_EQ(checked.size(), 4 + payload.size() + 4);
  // The CRC-mode length prefix covers payload + trailer.
  std::uint32_t len = 0;
  std::memcpy(&len, checked.data(), 4);
  EXPECT_EQ(len, payload.size() + 4);
}

TEST(ServeProtocolTest, RejectsMalformedPayloads) {
  EXPECT_THROW((void)frame_type({}), ContractViolation);

  auto queue_full = encode_queue_full(7);
  EXPECT_THROW((void)decode_queue_full(encode_stats_request()),
               ContractViolation);  // wrong type byte
  queue_full.pop_back();
  EXPECT_THROW((void)decode_queue_full(queue_full), ContractViolation);

  auto classify = encode_classify(sample_request());
  // Wrong type byte for the decoder.
  EXPECT_THROW((void)decode_reply(classify), ContractViolation);
  // Truncated: pixel count no longer matches the payload length.
  classify.pop_back();
  EXPECT_THROW((void)decode_classify(classify), ContractViolation);

  ClassifyReply rep;
  auto reply = encode_reply(rep);
  reply.push_back(0);  // trailing garbage
  EXPECT_THROW((void)decode_reply(reply), ContractViolation);

  auto stats = encode_stats_reply(sample_stats());
  stats.resize(stats.size() - 3);  // cut inside the histogram
  EXPECT_THROW((void)decode_stats_reply(stats), ContractViolation);
}

/// Seeded protocol fuzzer: every decoder must survive random bytes,
/// truncations of valid frames, and byte-level mutations without crashing
/// or over-reading — a malformed payload either decodes (when the mutation
/// happens to keep it well-formed) or throws ContractViolation, nothing
/// else. The sanitizer CI job runs this under ASan+UBSan, which promotes
/// any out-of-bounds read in a decoder into a test failure.
TEST(ServeProtocolTest, FuzzDecodersSurviveGarbage) {
  Rng rng(0x5EEDF00DULL);
  const auto poke_all = [](const std::vector<std::uint8_t>& p) {
    const auto poke = [&p](auto&& decode) {
      try {
        (void)decode(p);
      } catch (const ContractViolation&) {
      }
    };
    poke([](const auto& x) { return frame_type(x); });
    poke([](const auto& x) { return decode_classify(x); });
    poke([](const auto& x) { return decode_reply(x); });
    poke([](const auto& x) { return decode_stats_reply(x); });
    poke([](const auto& x) { return decode_queue_full(x); });
    poke([](const auto& x) { return decode_deadline_exceeded(x); });
    poke([](const auto& x) { return decode_hello(x); });
    poke([](const auto& x) { return decode_hello_ack(x); });
  };

  // Pure random payloads of random lengths (including empty).
  for (int i = 0; i < 400; ++i) {
    std::vector<std::uint8_t> payload(rng.index(64));
    for (auto& b : payload)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    poke_all(payload);
  }

  // Truncations and single-byte mutations of every valid frame kind.
  const std::vector<std::vector<std::uint8_t>> seeds = {
      encode_classify(sample_request()),
      encode_reply(ClassifyReply{3, 1, 9, 2}),
      encode_stats_request(),
      encode_stats_reply(sample_stats()),
      encode_queue_full(11),
      encode_deadline_exceeded(12),
      encode_bad_frame(),
      encode_hello(Hello{kProtocolV2, true}),
      encode_hello_ack(Hello{kProtocolV1, false}),
  };
  for (const auto& seed : seeds) {
    for (std::size_t cut = 0; cut <= seed.size(); ++cut)
      poke_all({seed.begin(), seed.begin() + static_cast<std::ptrdiff_t>(cut)});
    for (int i = 0; i < 100; ++i) {
      auto mutated = seed;
      if (!mutated.empty())
        mutated[rng.index(mutated.size())] =
            static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      if (rng.bernoulli(0.3)) mutated.push_back(0xFF);  // trailing garbage
      poke_all(mutated);
    }
  }
}

/// Frame I/O runs over a socketpair — the same fd type the server uses, so
/// the send/recv path (MSG_NOSIGNAL) is what gets exercised.
class ServeFrameIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(ServeFrameIoTest, WriteThenReadRoundTrips) {
  const auto req = sample_request();
  ASSERT_TRUE(write_frame(fds_[0], encode_classify(req)));
  ASSERT_TRUE(write_frame(fds_[0], encode_stats_request()));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(fds_[1], payload));
  EXPECT_EQ(decode_classify(payload).image, req.image);
  ASSERT_TRUE(read_frame(fds_[1], payload));
  EXPECT_EQ(frame_type(payload), MsgType::kStats);
}

TEST_F(ServeFrameIoTest, CleanEofReturnsFalse) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(read_frame(fds_[1], payload));
}

TEST_F(ServeFrameIoTest, TruncatedFrameThrows) {
  // A length prefix promising 100 bytes, then EOF after 3.
  const std::uint32_t len = 100;
  ASSERT_EQ(::write(fds_[0], &len, sizeof(len)),
            static_cast<::ssize_t>(sizeof(len)));
  const std::uint8_t partial[3] = {1, 2, 3};
  ASSERT_EQ(::write(fds_[0], partial, sizeof(partial)),
            static_cast<::ssize_t>(sizeof(partial)));
  ::close(fds_[0]);
  fds_[0] = -1;
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)read_frame(fds_[1], payload), ContractViolation);
}

TEST_F(ServeFrameIoTest, OversizedLengthPrefixThrows) {
  const std::uint32_t len = kMaxFrameBytes + 1;
  ASSERT_EQ(::write(fds_[0], &len, sizeof(len)),
            static_cast<::ssize_t>(sizeof(len)));
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)read_frame(fds_[1], payload), ContractViolation);
}

TEST_F(ServeFrameIoTest, WriteToClosedPeerReturnsFalse) {
  ::close(fds_[1]);
  fds_[1] = -1;
  // Large enough to overflow any kernel buffer on the first write; must
  // come back as `false`, not SIGPIPE.
  ClassifyRequest req = sample_request();
  req.image.assign(1 << 20, 0.5f);
  EXPECT_FALSE(write_frame(fds_[0], encode_classify(req)));
}

TEST_F(ServeFrameIoTest, CrcFramesRoundTripAndDetectCorruption) {
  const auto req = sample_request();
  ASSERT_TRUE(write_frame(fds_[0], encode_classify(req), /*crc=*/true));
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame_ex(fds_[1], payload, FrameOptions{true, 0}),
            ReadStatus::kFrame);
  EXPECT_EQ(decode_classify(payload).image, req.image);

  // Flip one payload bit on the wire: the reader must report kBadCrc, not
  // hand the frame to a decoder.
  auto wire = frame_wire_bytes(encode_classify(req), /*crc=*/true);
  wire[5] ^= 0x01;
  ASSERT_TRUE(send_bytes(fds_[0], wire.data(), wire.size()));
  ASSERT_EQ(read_frame_ex(fds_[1], payload, FrameOptions{true, 0}),
            ReadStatus::kBadCrc);

  // A flipped CRC-trailer bit is equally fatal.
  wire = frame_wire_bytes(encode_classify(req), /*crc=*/true);
  wire.back() ^= 0x80;
  ASSERT_TRUE(send_bytes(fds_[0], wire.data(), wire.size()));
  ASSERT_EQ(read_frame_ex(fds_[1], payload, FrameOptions{true, 0}),
            ReadStatus::kBadCrc);
}

TEST_F(ServeFrameIoTest, CrcModeRejectsFrameTooShortForTrailer) {
  // len=2 cannot carry the 4-byte CRC trailer: hostile/corrupt stream.
  const std::uint32_t len = 2;
  ASSERT_EQ(::write(fds_[0], &len, sizeof(len)),
            static_cast<::ssize_t>(sizeof(len)));
  const std::uint8_t body[2] = {1, 2};
  ASSERT_EQ(::write(fds_[0], body, sizeof(body)), 2);
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)read_frame_ex(fds_[1], payload, FrameOptions{true, 0}),
               ContractViolation);
}

TEST_F(ServeFrameIoTest, MidFrameDeadlineFiresOnlyAfterFirstByte) {
  std::vector<std::uint8_t> payload;

  // Torn frame: a few bytes, then silence. The mid-frame deadline must
  // fire (kTimeout), not block forever.
  const std::uint32_t len = 64;
  ASSERT_EQ(::write(fds_[0], &len, sizeof(len)),
            static_cast<::ssize_t>(sizeof(len)));
  EXPECT_EQ(read_frame_ex(fds_[1], payload, FrameOptions{false, 50}),
            ReadStatus::kTimeout);
}

TEST_F(ServeFrameIoTest, IdleConnectionDoesNotTimeOut) {
  // Nothing sent at all: an idle peer at a frame boundary must be waited
  // for, not evicted. Write the frame from another thread after a delay
  // longer than the mid-frame deadline.
  std::thread writer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    (void)write_frame(fds_[0], encode_stats_request());
  });
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(read_frame_ex(fds_[1], payload, FrameOptions{false, 50}),
            ReadStatus::kFrame);
  EXPECT_EQ(frame_type(payload), MsgType::kStats);
  writer.join();
}

TEST_F(ServeFrameIoTest, DrippedFrameCompletesWithinDeadline) {
  // A slow writer that stays under the deadline per chunk is fine.
  const auto wire = frame_wire_bytes(encode_stats_request(), false);
  std::thread writer([this, wire] {
    for (const std::uint8_t b : wire) {
      ASSERT_TRUE(send_bytes(fds_[0], &b, 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(read_frame_ex(fds_[1], payload, FrameOptions{false, 5000}),
            ReadStatus::kFrame);
  EXPECT_EQ(frame_type(payload), MsgType::kStats);
  writer.join();
}

}  // namespace
}  // namespace sparkxd::serve
