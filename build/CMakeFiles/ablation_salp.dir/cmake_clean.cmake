file(REMOVE_RECURSE
  "CMakeFiles/ablation_salp.dir/bench/ablation_salp.cpp.o"
  "CMakeFiles/ablation_salp.dir/bench/ablation_salp.cpp.o.d"
  "ablation_salp"
  "ablation_salp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_salp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
