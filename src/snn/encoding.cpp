#include "snn/encoding.hpp"

#include "common/contracts.hpp"

namespace sparkxd::snn {

PoissonEncoder::PoissonEncoder(float max_rate) : max_rate_(max_rate) {
  SPARKXD_REQUIRE(max_rate > 0.0f && max_rate <= 1.0f,
                  "max_rate must be a per-step probability in (0, 1]");
}

void PoissonEncoder::set_image(const std::vector<float>& image) {
  active_idx_.clear();
  active_p_.clear();
  for (std::size_t i = 0; i < image.size(); ++i) {
    // Validate BEFORE the activity filter: a negative or NaN pixel fails
    // `> 0.0f` and used to slip through silently as "inactive".
    SPARKXD_REQUIRE(image[i] >= 0.0f && image[i] <= 1.0f,
                    "pixel intensities must be in [0,1]");
    if (image[i] > 0.0f) {
      active_idx_.push_back(static_cast<std::uint32_t>(i));
      active_p_.push_back(image[i] * max_rate_);
    }
  }
}

void PoissonEncoder::step(Rng& rng,
                          std::vector<std::uint32_t>& spikes_out) const {
  spikes_out.clear();
  for (std::size_t k = 0; k < active_idx_.size(); ++k)
    if (rng.uniform() < active_p_[k]) spikes_out.push_back(active_idx_[k]);
}

double PoissonEncoder::expected_spikes_per_step() const noexcept {
  double e = 0.0;
  for (const float p : active_p_) e += p;
  return e;
}

}  // namespace sparkxd::snn
