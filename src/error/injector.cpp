#include "error/injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace sparkxd::error {

const char* to_string(ErrorModelKind k) noexcept {
  switch (k) {
    case ErrorModelKind::kModel0Uniform:
      return "Model-0 (uniform)";
    case ErrorModelKind::kModel1Bitline:
      return "Model-1 (bitline)";
    case ErrorModelKind::kModel2Wordline:
      return "Model-2 (wordline)";
    case ErrorModelKind::kModel3DataDependent:
      return "Model-3 (data-dependent)";
  }
  return "unknown";
}

namespace {

/// Uniform [0,1) double from a cell coordinate, deterministic per seed.
double cell_score(std::uint64_t seed, std::uint64_t cell) noexcept {
  std::uint64_t s = sparkxd::hash_combine(seed, cell);
  return static_cast<double>(sparkxd::splitmix64(s) >> 11) * 0x1.0p-53;
}

/// Deterministic mean-1 lognormal multiplier for a stripe (bitline or
/// wordline) identified by `id`.
double stripe_multiplier(std::uint64_t seed, std::uint64_t id, double sigma) {
  Rng rng(sparkxd::hash_combine(seed, id));
  return rng.lognormal(-0.5 * sigma * sigma, sigma);
}

}  // namespace

ErrorInjector::ErrorInjector(const dram::Geometry& geometry,
                             const SubarrayProfile& profile,
                             const ErrorModelSpec& spec,
                             ChunkPlacement placement,
                             std::size_t n_payload_bytes, std::uint64_t seed,
                             double max_ber)
    : max_ber_(max_ber), n_payload_bytes_(n_payload_bytes), spec_(spec) {
  SPARKXD_REQUIRE(max_ber >= 0.0 && max_ber <= 0.5,
                  "max BER outside the modelled range");
  const std::size_t chunk_bytes = geometry.burst_bytes();
  SPARKXD_REQUIRE(placement.size() * chunk_bytes >= n_payload_bytes,
                  "placement does not cover the payload");
  SPARKXD_REQUIRE(spec.p0 >= 0.0 && spec.p0 <= 1.0 && spec.p1 >= 0.0 &&
                      spec.p1 <= 1.0,
                  "Model-3 flip probabilities must be probabilities");
  spec.retention.validate();
  const bool retention_on = spec.retention.enabled;
  if (n_payload_bytes == 0 || (max_ber == 0.0 && !retention_on)) return;

  // Stripe multipliers (Model-1 / Model-2) are recomputed on demand from a
  // deterministic per-stripe hash: the flat stripe id is the same index a
  // full `n_banks x bitlines` / `n_banks x rows` table would use, so the
  // values are identical to an eager table without the millions of
  // lognormal draws for stripes the payload never touches.
  const std::uint64_t bitline_count =
      std::uint64_t{geometry.columns_per_row} * geometry.column_bytes * 8;
  const std::uint64_t bitline_seed = hash_combine(seed, 0xB17ULL);
  const std::uint64_t wordline_seed = hash_combine(seed, 0x30BDULL);

  const std::uint64_t cell_seed = hash_combine(seed, 0xCE11ULL);
  const std::uint64_t retention_seed = hash_combine(seed, 0x4E7E417ULL);
  const double threshold = 2.0 * max_ber;
  const std::uint32_t column_bits = geometry.column_bytes * 8;

  // Candidate enumeration is pure per chunk (stateless hashes, no shared
  // Rng), so chunks are scanned concurrently into per-range buffers;
  // concatenating the buffers in range order restores ascending chunk order
  // regardless of the thread count.
  const std::size_t n_chunks = std::min(
      placement.size(), (n_payload_bytes + chunk_bytes - 1) / chunk_bytes);
  const std::size_t n_parts = parallel_chunk_count(n_chunks);
  std::vector<std::vector<Candidate>> parts(n_parts);
  const auto enumerate = [&](std::size_t chunk_begin,
                             std::size_t chunk_end, std::size_t slot) {
    std::vector<Candidate>& out = parts[slot];
    for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
      const std::size_t first_byte = c * chunk_bytes;
      const std::size_t last_byte =
          std::min(first_byte + chunk_bytes, n_payload_bytes);
      dram::Address addr = placement[c];
      const std::uint64_t sub_id = subarray_id(geometry, addr);
      const double sub_weak = profile.weakness(sub_id);
      // A chunk lives in one subarray, so its retention-failure probability
      // is a single per-chunk constant.
      const double p_retention =
          retention_on ? retention_fail_probability(spec.retention, sub_weak)
                       : 0.0;
      const std::uint64_t bank = bank_id(geometry, addr);
      const std::uint32_t brow = bank_row(geometry, addr);
      // A chunk lives in one row, so its wordline multiplier is one stripe.
      const double wordline_mult =
          spec.kind == ErrorModelKind::kModel2Wordline
              ? stripe_multiplier(wordline_seed,
                                  bank * geometry.rows_per_bank() + brow,
                                  spec.stripe_sigma)
              : 1.0;

      for (std::size_t b = first_byte; b < last_byte; ++b) {
        const auto offset = static_cast<std::uint32_t>(b - first_byte);
        addr.column = placement[c].column + offset / geometry.column_bytes;
        const std::uint32_t byte_in_column =
            (offset % geometry.column_bytes) * 8;
        for (std::uint32_t bit = 0; bit < 8; ++bit) {
          const std::uint32_t bit_in_column = byte_in_column + bit;
          const std::uint64_t cell =
              cell_bit_index(geometry, addr, bit_in_column);
          // Retention failure takes precedence: a cell that leaks past the
          // effective refresh window is weak regardless of voltage, and
          // must not also appear as a voltage candidate (a duplicate would
          // let two flips cancel).
          if (retention_on &&
              cell_score(retention_seed, cell) < p_retention) {
            out.push_back({static_cast<std::uint32_t>(b),
                           static_cast<std::uint8_t>(bit), kRetentionScore});
            continue;
          }
          // Per-cell weakness multiplier under the active model.
          double m = sub_weak;
          switch (spec.kind) {
            case ErrorModelKind::kModel0Uniform:
            case ErrorModelKind::kModel3DataDependent:
              break;  // uniform within the subarray
            case ErrorModelKind::kModel1Bitline:
              m *= stripe_multiplier(
                  bitline_seed,
                  bank * bitline_count +
                      std::uint64_t{addr.column} * column_bits +
                      bit_in_column,
                  spec.stripe_sigma);
              break;
            case ErrorModelKind::kModel2Wordline:
              m *= wordline_mult;
              break;
          }
          if (m <= 0.0) continue;
          const double score = cell_score(cell_seed, cell) / m;
          if (score < threshold)
            out.push_back({static_cast<std::uint32_t>(b),
                           static_cast<std::uint8_t>(bit), score});
        }
      }
    }
  };
  // Pass n_parts explicitly: the chunk count must match the buffer sizing
  // above even if the thread knob changes between the two reads.
  parallel_for_chunks(n_chunks, enumerate, n_parts);
  for (const auto& part : parts)
    candidates_.insert(candidates_.end(), part.begin(), part.end());
  // Sort by score so injection at lower BERs touches a stable prefix; break
  // score ties by cell position so the order is fully specified.
  std::sort(candidates_.begin(), candidates_.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.byte_index != b.byte_index
                         ? a.byte_index < b.byte_index
                         : a.bit < b.bit;
            });
  // Retention candidates carry a negative score, so after the sort they are
  // exactly the leading run.
  while (retention_candidates_ < candidates_.size() &&
         candidates_[retention_candidates_].score < 0.0)
    ++retention_candidates_;
}

ErrorInjector ErrorInjector::for_weights(const dram::Geometry& geometry,
                                         const SubarrayProfile& profile,
                                         const ErrorModelSpec& spec,
                                         ChunkPlacement placement,
                                         std::size_t n_weights,
                                         std::uint64_t seed, double max_ber) {
  return ErrorInjector(geometry, profile, spec, std::move(placement),
                       n_weights * sizeof(float), seed, max_ber);
}

void sanitize_weight(float& w, const SanitizeRange& r) noexcept {
  if (!r.clamp) return;
  if (std::isnan(w)) {
    w = r.lo;
    return;
  }
  w = std::clamp(w, r.lo, r.hi);
}

void revert_flips(std::vector<float>& weights,
                  const std::vector<WeightFlip>& flips) noexcept {
  // Reverse order: when one word was flipped more than once, the first
  // record (written last here) carries the pre-injection value.
  for (auto it = flips.rbegin(); it != flips.rend(); ++it)
    weights[it->word] = it->before;
}

template <typename FlipDecision>
std::size_t ErrorInjector::inject_floats(std::vector<float>& weights,
                                         double ber,
                                         const SanitizeRange& sanitize,
                                         FlipDecision&& decide,
                                         std::vector<WeightFlip>* flips) const {
  SPARKXD_REQUIRE(ber <= max_ber_ + 1e-15,
                  "injection BER exceeds the enumerated maximum");
  SPARKXD_REQUIRE(weights.size() * sizeof(float) >= n_payload_bytes_,
                  "weight array smaller than the mapped payload");
  const double threshold = 2.0 * ber;
  std::size_t n_flips = 0;
  for (const auto& c : candidates_) {
    if (c.score >= threshold) break;  // sorted: all further are not weak
    const std::size_t w_idx = c.byte_index / sizeof(float);
    // Little-endian byte order: byte k of the float holds u32 bits 8k..8k+7.
    const unsigned bit32 =
        (c.byte_index % sizeof(float)) * 8 + c.bit;
    float& w = weights[w_idx];
    if (!decide(test_bit(float_to_bits(w), bit32))) continue;
    if (flips != nullptr)
      flips->push_back({static_cast<std::uint32_t>(w_idx), w});
    w = flip_float_bit(w, bit32);
    sanitize_weight(w, sanitize);
    ++n_flips;
  }
  return n_flips;
}

std::size_t ErrorInjector::inject(std::vector<float>& weights, double ber,
                                  Rng& rng, const SanitizeRange& sanitize,
                                  std::vector<WeightFlip>* flips) const {
  return inject_floats(
      weights, ber, sanitize,
      [&](bool bit_value) {
        double p = kWeakCellFailProb;
        if (spec_.kind == ErrorModelKind::kModel3DataDependent)
          p = bit_value ? spec_.p1 : spec_.p0;
        return rng.bernoulli(p);
      },
      flips);
}

std::size_t ErrorInjector::inject_all_weak(
    std::vector<float>& weights, double ber,
    const SanitizeRange& sanitize) const {
  return inject_floats(weights, ber, sanitize, [](bool) { return true; });
}

FrozenInjection ErrorInjector::freeze(double ber) const {
  SPARKXD_REQUIRE(ber <= max_ber_ + 1e-15,
                  "frozen BER exceeds the enumerated maximum");
  FrozenInjection f;
  f.ber_ = ber;
  f.p0_ = spec_.p0;
  f.p1_ = spec_.p1;
  f.data_dependent_ = spec_.kind == ErrorModelKind::kModel3DataDependent;
  f.n_payload_bytes_ = n_payload_bytes_;
  const double threshold = 2.0 * ber;
  for (const auto& c : candidates_) {
    if (c.score >= threshold) break;  // sorted prefix, same as inject()
    f.entries_.push_back(
        {static_cast<std::uint32_t>(c.byte_index / sizeof(float)),
         static_cast<std::uint8_t>((c.byte_index % sizeof(float)) * 8 +
                                   c.bit)});
  }
  return f;
}

FrozenInjection FrozenInjection::from_parts(std::vector<Entry> entries,
                                            double ber, double p0, double p1,
                                            bool data_dependent,
                                            std::size_t n_payload_bytes) {
  SPARKXD_REQUIRE(std::isfinite(ber) && ber >= 0.0 && ber < 1.0,
                  "frozen BER must lie in [0, 1)");
  SPARKXD_REQUIRE(std::isfinite(p0) && p0 >= 0.0 && p0 <= 1.0 &&
                      std::isfinite(p1) && p1 >= 0.0 && p1 <= 1.0,
                  "flip probabilities must lie in [0, 1]");
  const std::size_t n_words = n_payload_bytes / sizeof(float);
  for (const auto& e : entries) {
    SPARKXD_REQUIRE(e.word < n_words,
                    "frozen entry addresses a word past the payload");
    SPARKXD_REQUIRE(e.bit < 32, "frozen entry bit index must be < 32");
  }
  FrozenInjection f;
  f.entries_ = std::move(entries);
  f.ber_ = ber;
  f.p0_ = p0;
  f.p1_ = p1;
  f.data_dependent_ = data_dependent;
  f.n_payload_bytes_ = n_payload_bytes;
  return f;
}

std::size_t FrozenInjection::inject(std::vector<float>& weights, Rng& rng,
                                    const SanitizeRange& sanitize,
                                    std::vector<WeightFlip>* flips) const {
  SPARKXD_REQUIRE(weights.size() * sizeof(float) >= n_payload_bytes_,
                  "weight array smaller than the mapped payload");
  std::size_t n_flips = 0;
  for (const auto& e : entries_) {
    float& w = weights[e.word];
    double p = kWeakCellFailProb;
    if (data_dependent_)
      p = test_bit(float_to_bits(w), e.bit) ? p1_ : p0_;
    if (!rng.bernoulli(p)) continue;
    if (flips != nullptr) flips->push_back({e.word, w});
    w = flip_float_bit(w, e.bit);
    sanitize_weight(w, sanitize);
    ++n_flips;
  }
  return n_flips;
}

std::size_t ErrorInjector::inject_bytes(std::uint8_t* data,
                                        std::size_t n_bytes, double ber,
                                        Rng& rng) const {
  SPARKXD_REQUIRE(ber <= max_ber_ + 1e-15,
                  "injection BER exceeds the enumerated maximum");
  SPARKXD_REQUIRE(n_bytes >= n_payload_bytes_,
                  "byte array smaller than the mapped payload");
  const double threshold = 2.0 * ber;
  std::size_t flips = 0;
  for (const auto& c : candidates_) {
    if (c.score >= threshold) break;
    std::uint8_t& byte = data[c.byte_index];
    double p = kWeakCellFailProb;
    if (spec_.kind == ErrorModelKind::kModel3DataDependent)
      p = ((byte >> c.bit) & 1u) ? spec_.p1 : spec_.p0;
    if (!rng.bernoulli(p)) continue;
    byte = static_cast<std::uint8_t>(byte ^ (1u << c.bit));
    ++flips;
  }
  return flips;
}

double ErrorInjector::expected_flips(double ber) const {
  const double threshold = 2.0 * ber;
  double e = 0.0;
  for (const auto& c : candidates_) {
    if (c.score >= threshold) break;
    e += spec_.kind == ErrorModelKind::kModel3DataDependent
             ? 0.5 * (spec_.p0 + spec_.p1)
             : kWeakCellFailProb;
  }
  return e;
}

}  // namespace sparkxd::error
