file(REMOVE_RECURSE
  "CMakeFiles/fig12a_dram_energy.dir/bench/fig12a_dram_energy.cpp.o"
  "CMakeFiles/fig12a_dram_energy.dir/bench/fig12a_dram_energy.cpp.o.d"
  "fig12a_dram_energy"
  "fig12a_dram_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_dram_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
