#pragma once
// Quantized weight storage (uint8) — the representation EDEN [15] (the
// error-model source this paper builds on) uses, and the quantization knob
// the paper's related-work section (§I-A, Rathi et al. [6]) identifies as
// composable with approximate DRAM.
//
// Weights are quantized per neuron row with an affine scale:
//     q = round(w / scale),  scale = row_max / 255,
// so a stored byte decodes to  w = q * scale  in [0, row_max].
//
// The resilience consequence is structural: a bit flip in a uint8 code can
// move a weight by at most row_max (bit 7), and on average by far less —
// whereas an FP32 exponent flip multiplies the weight by up to 2^128.
// Quantized storage therefore needs no load-time range clipping; this is
// quantified by bench/ablation_quantization.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace sparkxd::snn {

/// A quantized copy of a weight matrix, row-major [n_neurons][n_inputs].
struct QuantizedWeights {
  std::vector<std::uint8_t> codes;  ///< one byte per synapse
  std::vector<float> row_scale;     ///< per-neuron dequantization scale
  std::size_t n_neurons = 0;
  std::size_t n_inputs = 0;

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return codes.size();
  }
};

/// Quantizes FP32 weights (all >= 0, as produced by the STDP rule) to
/// per-row affine uint8 codes.
[[nodiscard]] QuantizedWeights quantize(const std::vector<float>& weights,
                                        std::size_t n_neurons,
                                        std::size_t n_inputs);

/// Reconstructs FP32 weights from the codes.
[[nodiscard]] std::vector<float> dequantize(const QuantizedWeights& q);

/// Worst-case reconstruction error of a row: scale/2 per weight.
[[nodiscard]] float quantization_error_bound(const QuantizedWeights& q,
                                             std::size_t neuron);

}  // namespace sparkxd::snn
