#include "snn/trainer.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace sparkxd::snn {

void train_epoch(Network& net, const data::Dataset& ds, Rng& rng) {
  SPARKXD_REQUIRE(ds.pixels() == net.config().n_inputs,
                  "dataset pixel count must match the network input width");
  for (std::size_t i = 0; i < ds.size(); ++i)
    (void)net.process(ds.images[i], /*learn=*/true, rng);
}

NeuronLabels label_neurons(Network& net, const data::Dataset& ds, Rng& rng) {
  SPARKXD_REQUIRE(ds.size() > 0, "cannot label neurons on an empty dataset");
  const std::size_t n = net.config().n_neurons;
  const std::size_t k = ds.num_classes;
  // responses[n][c] = summed spikes of neuron n over class-c samples.
  std::vector<double> responses(n * k, 0.0);
  std::vector<std::size_t> class_count(k, 0);

  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto counts = net.process(ds.images[i], /*learn=*/false, rng);
    const auto c = ds.labels[i];
    ++class_count[c];
    for (std::size_t j = 0; j < n; ++j) responses[j * k + c] += counts[j];
  }

  NeuronLabels out;
  out.num_classes = k;
  out.label.assign(n, -1);
  out.bias.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double best = 0.0;
    double total = 0.0;
    std::int32_t best_c = -1;
    for (std::size_t c = 0; c < k; ++c) {
      // Average response per presented sample of that class.
      const double avg = class_count[c]
                             ? responses[j * k + c] /
                                   static_cast<double>(class_count[c])
                             : 0.0;
      total += responses[j * k + c];
      if (avg > best) {
        best = avg;
        best_c = static_cast<std::int32_t>(c);
      }
    }
    out.label[j] = best_c;
    out.bias[j] = total / static_cast<double>(ds.size());
  }
  return out;
}

std::int32_t predict(Network& net, const NeuronLabels& labels,
                     const std::vector<float>& image, Rng& rng) {
  SPARKXD_REQUIRE(labels.label.size() == net.config().n_neurons,
                  "label table must match the network size");
  const auto counts = net.process(image, /*learn=*/false, rng);
  std::vector<double> votes(labels.num_classes, 0.0);
  std::vector<std::size_t> members(labels.num_classes, 0);
  for (std::size_t j = 0; j < counts.size(); ++j) {
    const auto c = labels.label[j];
    if (c < 0) continue;
    // Bias-corrected vote: a neuron only contributes its response *excess*
    // over its labelling-time mean, so indiscriminate firing cancels.
    votes[static_cast<std::size_t>(c)] +=
        static_cast<double>(counts[j]) - labels.bias[j];
    ++members[static_cast<std::size_t>(c)];
  }
  double best = 0.0;
  std::int32_t best_c = -1;
  bool first = true;
  for (std::size_t c = 0; c < votes.size(); ++c) {
    if (members[c] == 0) continue;
    const double avg = votes[c] / static_cast<double>(members[c]);
    if (first || avg > best) {
      best = avg;
      best_c = static_cast<std::int32_t>(c);
      first = false;
    }
  }
  return best_c;
}

double evaluate(Network& net, const NeuronLabels& labels,
                const data::Dataset& ds, Rng& rng) {
  SPARKXD_REQUIRE(ds.size() > 0, "cannot evaluate on an empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i)
    if (predict(net, labels, ds.images[i], rng) ==
        static_cast<std::int32_t>(ds.labels[i]))
      ++correct;
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

TrainedModel train_and_label(const NetworkConfig& cfg,
                             const data::Dataset& train,
                             const data::Dataset& test, std::size_t epochs,
                             Rng& rng) {
  TrainedModel m{Network(cfg), {}, 0.0};
  for (std::size_t e = 0; e < epochs; ++e) train_epoch(m.net, train, rng);
  m.labels = label_neurons(m.net, train, rng);
  m.clean_accuracy = evaluate(m.net, m.labels, test, rng);
  return m;
}

}  // namespace sparkxd::snn
