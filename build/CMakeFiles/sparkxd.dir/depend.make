# Empty dependencies file for sparkxd.
# This may be replaced when dependencies are built.
