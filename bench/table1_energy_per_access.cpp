// Table I: energy savings over the baseline (accurate DRAM at 1.350 V)
// considering the DRAM energy-per-access, for each reduced supply voltage.
// Paper: 3.92% / 14.29% / 24.33% / 33.59% / 42.40%.

#include "bench_common.hpp"
#include "energy/power_model.hpp"
#include "energy/voltage_model.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Table I — DRAM energy-per-access savings",
                "3.92/14.29/24.33/33.59/42.40 % at "
                "1.325/1.250/1.175/1.100/1.025 V");
  const energy::PowerModel pm;
  const double paper[] = {3.92, 14.29, 24.33, 33.59, 42.40};
  const double base = pm.array_energy_per_access_nj(energy::kNominalVdd);

  Table t("table1_energy_per_access",
          {"V_supply [V]", "paper saving", "measured saving", "delta [pp]"});
  int i = 0;
  for (const double v : energy::kEvalVoltages) {
    const double measured =
        100.0 * (1.0 - pm.array_energy_per_access_nj(v) / base);
    t.add_row({Table::num(v, 3), Table::pct(paper[i]), Table::pct(measured),
               Table::num(measured - paper[i], 2)});
    ++i;
  }
  t.emit();
  return 0;
}
