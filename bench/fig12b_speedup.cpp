// Fig. 12b: data-throughput speed-up of the SparkXD mapping over the
// baseline SNN mapping (simulated DRAM service time of one inference's
// weight stream, same request-arrival process for both).
// Paper: SparkXD maintains throughput — 1.02x average speed-up.

#include "bench_common.hpp"
#include "dram/controller.hpp"
#include "error/subarray_profile.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 12b — throughput speed-up over the baseline mapping",
                "SparkXD maintains data throughput (paper: 1.02x average)");
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, experiment_seed());
  const dram::TimingParams timing = dram::TimingParams::lpddr3_1600();
  dram::Controller controller(g, timing);

  Table t("fig12b_speedup",
          {"network", "baseline time [us]", "SparkXD time [us]", "speed-up",
           "baseline hit rate", "SparkXD hit rate"});
  double avg = 0.0;
  for (const auto neurons : bench::kPaperSizes) {
    const std::size_t n_weights = 784 * neurons;
    const auto base = mapping::baseline_placement(g, n_weights);
    const auto prop =
        mapping::sparkxd_placement(g, profile, 1e-3, 1e-3, n_weights);
    const auto s_base = controller.run(
        mapping::streaming_read_trace(g, base, n_weights),
        core::kBurstArrivalNs);
    const auto s_prop = controller.run(
        mapping::streaming_read_trace(g, prop.chunks, n_weights),
        core::kBurstArrivalNs);
    const double speedup = s_base.total_time_ns / s_prop.total_time_ns;
    avg += speedup / static_cast<double>(bench::kPaperSizes.size());
    t.add_row({"N" + std::to_string(neurons),
               Table::num(s_base.total_time_ns / 1000.0, 1),
               Table::num(s_prop.total_time_ns / 1000.0, 1),
               Table::num(speedup, 3), Table::num(s_base.hit_rate(), 4),
               Table::num(s_prop.hit_rate(), 4)});
  }
  t.add_row({"average", "-", "-", Table::num(avg, 3), "-", "-"});
  t.emit();
  return 0;
}
