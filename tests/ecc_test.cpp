// Exhaustive round-trip tests for the SECDED(72,64) code: every correctable
// (single-bit) error pattern must decode back to the original word, and
// every double-bit pattern must be flagged uncorrectable — never silently
// miscorrected into a wrong word that claims to be clean or corrected.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "error/ecc.hpp"

namespace sparkxd::error {
namespace {

/// Assorted data words: degenerate patterns plus deterministic random ones.
std::vector<std::uint64_t> test_words() {
  std::vector<std::uint64_t> words = {
      0x0000000000000000ULL, 0xFFFFFFFFFFFFFFFFULL, 0xAAAAAAAAAAAAAAAAULL,
      0x5555555555555555ULL, 0xDEADBEEFCAFEBABEULL, 0x0000000000000001ULL,
      0x8000000000000000ULL,
  };
  Rng rng(123);
  for (int i = 0; i < 5; ++i) words.push_back(rng.next_u64());
  return words;
}

/// A codeword-wide bit flip: positions 0..63 hit the data word, 64..71 hit
/// the check byte.
void flip(std::uint64_t& data, std::uint8_t& check, unsigned pos) {
  if (pos < 64)
    data ^= std::uint64_t{1} << pos;
  else
    check ^= static_cast<std::uint8_t>(1u << (pos - 64));
}

TEST(Secded, CleanWordsDecodeClean) {
  for (const auto word : test_words()) {
    std::uint64_t data = word;
    EXPECT_EQ(secded_decode(data, secded_encode(word)), SecdedStatus::kClean);
    EXPECT_EQ(data, word);
  }
}

TEST(Secded, EverySingleBitErrorIsCorrectedToTheOriginal) {
  for (const auto word : test_words()) {
    const std::uint8_t check = secded_encode(word);
    for (unsigned pos = 0; pos < 72; ++pos) {
      std::uint64_t data = word;
      std::uint8_t c = check;
      flip(data, c, pos);
      EXPECT_EQ(secded_decode(data, c), SecdedStatus::kCorrected)
          << "word " << word << " flipped bit " << pos;
      EXPECT_EQ(data, word) << "data not restored after flipping bit " << pos;
    }
  }
}

TEST(Secded, EveryDoubleBitErrorIsFlaggedNeverMiscorrected) {
  // All C(72,2) = 2556 two-bit patterns across data + check bits. SECDED
  // must *detect* them; the fatal failure mode would be kClean or a
  // kCorrected that "fixes" the word to a wrong value.
  for (const auto word : test_words()) {
    const std::uint8_t check = secded_encode(word);
    for (unsigned i = 0; i < 72; ++i) {
      for (unsigned j = i + 1; j < 72; ++j) {
        std::uint64_t data = word;
        std::uint8_t c = check;
        flip(data, c, i);
        flip(data, c, j);
        EXPECT_EQ(secded_decode(data, c), SecdedStatus::kUncorrectable)
            << "word " << word << " flipped bits " << i << "," << j;
      }
    }
  }
}

// ------------------------------------------------------------ weight buffers

TEST(EccWeights, CleanBufferScrubsClean) {
  std::vector<float> w = {0.1f, 0.2f, 0.3f, 0.4f};
  const auto checks = ecc_encode_weights(w);
  ASSERT_EQ(checks.size(), 2u);
  const auto stats = ecc_scrub_weights(w, checks);
  EXPECT_EQ(stats.words, 2u);
  EXPECT_EQ(stats.corrected, 0u);
  EXPECT_EQ(stats.uncorrectable, 0u);
}

TEST(EccWeights, SingleBitFlipIsRepaired) {
  std::vector<float> w(8, 0.25f);
  const auto original = w;
  const auto checks = ecc_encode_weights(w);
  // Corrupt one mantissa bit of weight 5.
  std::uint32_t bits;
  std::memcpy(&bits, &w[5], sizeof(bits));
  bits ^= 1u << 13;
  std::memcpy(&w[5], &bits, sizeof(bits));

  const auto stats = ecc_scrub_weights(w, checks);
  EXPECT_EQ(stats.corrected, 1u);
  EXPECT_EQ(stats.uncorrectable, 0u);
  EXPECT_EQ(w, original);
}

TEST(EccWeights, DoubleFlipInOneWordIsFlaggedAndLeftAsIs) {
  std::vector<float> w(4, 0.75f);
  const auto checks = ecc_encode_weights(w);
  // Two flips inside the same 64-bit word (weights 0 and 1).
  std::uint32_t bits;
  std::memcpy(&bits, &w[0], sizeof(bits));
  bits ^= 1u << 3;
  std::memcpy(&w[0], &bits, sizeof(bits));
  std::memcpy(&bits, &w[1], sizeof(bits));
  bits ^= 1u << 21;
  std::memcpy(&w[1], &bits, sizeof(bits));
  const auto corrupted = w;

  const auto stats = ecc_scrub_weights(w, checks);
  EXPECT_EQ(stats.corrected, 0u);
  EXPECT_EQ(stats.uncorrectable, 1u);
  EXPECT_EQ(w, corrupted);  // detected but not touched
}

TEST(EccWeights, FlipsInDifferentWordsAreBothRepaired) {
  std::vector<float> w(8, 0.5f);
  const auto original = w;
  const auto checks = ecc_encode_weights(w);
  for (const std::size_t i : {0u, 7u}) {
    std::uint32_t bits;
    std::memcpy(&bits, &w[i], sizeof(bits));
    bits ^= 1u << 7;
    std::memcpy(&w[i], &bits, sizeof(bits));
  }
  const auto stats = ecc_scrub_weights(w, checks);
  EXPECT_EQ(stats.corrected, 2u);
  EXPECT_EQ(stats.uncorrectable, 0u);
  EXPECT_EQ(w, original);
}

TEST(EccWeights, RejectsOddBufferAndMismatchedChecks) {
  std::vector<float> odd(3, 0.1f);
  EXPECT_THROW((void)ecc_encode_weights(odd), ContractViolation);
  std::vector<float> w(4, 0.1f);
  const std::vector<std::uint8_t> wrong(3);
  EXPECT_THROW((void)ecc_scrub_weights(w, wrong), ContractViolation);
}

TEST(EccWeights, StorageOverheadIsOneEighth) {
  std::vector<float> w(64, 0.1f);  // 256 data bytes
  EXPECT_EQ(ecc_encode_weights(w).size() * sizeof(std::uint8_t), 32u);
  EXPECT_DOUBLE_EQ(kEccStorageOverhead, 0.125);
}

}  // namespace
}  // namespace sparkxd::error
