#pragma once
// DRAM timing parameters (paper Fig. 5b / Fig. 6).
//
// tRCD — ACT to RD/WR delay (array must reach the ready-to-access voltage,
//        75% of V_supply).
// tRAS — ACT to PRE delay (cells must be restored to the ready-to-precharge
//        voltage, 98% of V_supply).
// tRP  — PRE to next ACT delay (bitlines must equalize to within 2% of
//        V_supply/2).
//
// The nominal values below are the LPDDR3-1600 datasheet numbers the paper's
// SPICE study reproduces at 1.35 V; at reduced voltage the VoltageModel in
// src/energy re-derives tRCD/tRAS/tRP from the array-voltage waveform.

#include <cstdint>

namespace sparkxd::dram {

/// Timing parameters in nanoseconds.
struct TimingParams {
  double t_ck = 1.25;   ///< clock period (LPDDR3-1600: 800 MHz)
  double t_rcd = 18.0;  ///< ACT -> column command
  double t_ras = 42.0;  ///< ACT -> PRE
  double t_rp = 18.0;   ///< PRE -> ACT
  double t_cl = 15.0;   ///< column command -> first data beat
  double t_burst = 5.0; ///< BL8 data transfer (4 clocks, DDR)
  double t_rrd = 10.0;  ///< ACT -> ACT, different banks

  /// ACT -> ACT same bank (row cycle).
  [[nodiscard]] double t_rc() const noexcept { return t_ras + t_rp; }

  /// Nominal LPDDR3-1600 timings at V_supply = 1.35 V.
  [[nodiscard]] static TimingParams lpddr3_1600() { return {}; }
};

}  // namespace sparkxd::dram
