# Empty dependencies file for ablation_error_models.
# This may be replaced when dependencies are built.
