#include "error/ecc_scheme.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "error/ecc.hpp"

namespace sparkxd::error {

namespace {

// --- bit addressing over little-endian uint64 arrays -----------------------

[[nodiscard]] inline bool get_bit(const std::uint64_t* words, std::size_t bit) {
  return (words[bit / 64] >> (bit % 64)) & 1u;
}

inline void flip_word_bit(std::uint64_t* words, std::size_t bit) {
  words[bit / 64] ^= std::uint64_t{1} << (bit % 64);
}

[[nodiscard]] inline unsigned parity_of(const std::uint64_t* words,
                                        std::size_t n_words) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n_words; ++i) acc ^= words[i];
  return static_cast<unsigned>(std::popcount(acc)) & 1u;
}

// --- None: t=0, d=0 --------------------------------------------------------

class NoneScheme final : public EccScheme {
 public:
  explicit NoneScheme(std::size_t data_bits) : EccScheme(data_bits, 0) {}

  [[nodiscard]] EccKind kind() const noexcept override { return EccKind::kNone; }
  [[nodiscard]] std::string name() const override { return "off"; }
  [[nodiscard]] unsigned correctable_bits() const noexcept override { return 0; }
  [[nodiscard]] unsigned detectable_bits() const noexcept override { return 0; }

  void encode(const std::uint64_t*, std::uint64_t*) const override {}
  EccDecode decode(std::uint64_t*, std::uint64_t*) const override {
    return {EccStatus::kClean, 0};
  }
};

// --- Parity: one bit per codeword, t=0, d=1 --------------------------------

class ParityScheme final : public EccScheme {
 public:
  explicit ParityScheme(std::size_t data_bits) : EccScheme(data_bits, 1) {}

  [[nodiscard]] EccKind kind() const noexcept override {
    return EccKind::kParity;
  }
  [[nodiscard]] std::string name() const override {
    return "parity(" + std::to_string(data_bits_ + 1) + "," +
           std::to_string(data_bits_) + ")";
  }
  [[nodiscard]] unsigned correctable_bits() const noexcept override { return 0; }
  [[nodiscard]] unsigned detectable_bits() const noexcept override { return 1; }

  void encode(const std::uint64_t* data, std::uint64_t* check) const override {
    check[0] = parity_of(data, data_words());
  }

  EccDecode decode(std::uint64_t* data, std::uint64_t* check) const override {
    const unsigned mismatch =
        parity_of(data, data_words()) ^ (static_cast<unsigned>(check[0]) & 1u);
    return {mismatch ? EccStatus::kDetected : EccStatus::kClean, 0};
  }
};

// --- Secded: the legacy Hamming(72,64), via delegation ---------------------
//
// Encode and the data-side decode result are bit-identical to
// secded_encode/secded_decode (tests/ecc_scheme_test.cpp diffs them on a
// randomized corpus); on kCorrected the check byte is re-derived from the
// corrected data so the stored codeword is valid again.

class SecdedScheme final : public EccScheme {
 public:
  SecdedScheme() : EccScheme(64, 8) {}

  [[nodiscard]] EccKind kind() const noexcept override {
    return EccKind::kSecded;
  }
  [[nodiscard]] std::string name() const override { return "secded(72,64)"; }
  [[nodiscard]] unsigned correctable_bits() const noexcept override { return 1; }
  [[nodiscard]] unsigned detectable_bits() const noexcept override { return 2; }

  void encode(const std::uint64_t* data, std::uint64_t* check) const override {
    check[0] = secded_encode(data[0]);
  }

  EccDecode decode(std::uint64_t* data, std::uint64_t* check) const override {
    const std::uint64_t old_data = data[0];
    const std::uint64_t old_check = check[0];
    const SecdedStatus r =
        secded_decode(data[0], static_cast<std::uint8_t>(check[0]));
    switch (r) {
      case SecdedStatus::kClean:
        return {EccStatus::kClean, 0};
      case SecdedStatus::kUncorrectable:
        data[0] = old_data;
        return {EccStatus::kDetected, 0};
      case SecdedStatus::kCorrected: {
        check[0] = secded_encode(data[0]);
        const unsigned flipped =
            static_cast<unsigned>(std::popcount(old_data ^ data[0]) +
                                  std::popcount(old_check ^ check[0]));
        return {EccStatus::kCorrected, flipped};
      }
    }
    return {EccStatus::kDetected, 0};  // unreachable
  }
};

// --- Hsiao: odd-weight-column SECDED, configurable d/k ---------------------
//
// H = [A | I_k]: the k check columns are the identity (weight 1), every
// data column is a distinct odd-weight (>= 3) k-bit vector chosen in
// ascending (weight, value) order — the minimum-total-weight construction.
// Any double error XORs two odd columns into an even, nonzero syndrome
// that can match neither a data column nor a check column, so 2-bit
// patterns are always detected and never miscorrected.

class HsiaoScheme final : public EccScheme {
 public:
  HsiaoScheme(std::size_t data_bits, std::size_t k) : EccScheme(data_bits, k) {
    col_.reserve(data_bits);
    for (unsigned weight = 3; weight <= k && col_.size() < data_bits;
         weight += 2) {
      for (std::uint32_t v = 0;
           v < (std::uint32_t{1} << k) && col_.size() < data_bits; ++v) {
        if (static_cast<unsigned>(std::popcount(v)) == weight)
          col_.push_back(v);
      }
    }
    SPARKXD_REQUIRE(col_.size() == data_bits,
                    "hsiao(" + std::to_string(data_bits) +
                        ") infeasible with " + std::to_string(k) +
                        " check bits");
    by_value_.reserve(data_bits);
    for (std::uint32_t i = 0; i < data_bits; ++i)
      by_value_.push_back({col_[i], i});
    std::sort(by_value_.begin(), by_value_.end());
  }

  [[nodiscard]] EccKind kind() const noexcept override {
    return EccKind::kHsiao;
  }
  [[nodiscard]] std::string name() const override {
    return "hsiao(" + std::to_string(data_bits_ + check_bits_) + "," +
           std::to_string(data_bits_) + ")";
  }
  [[nodiscard]] unsigned correctable_bits() const noexcept override { return 1; }
  [[nodiscard]] unsigned detectable_bits() const noexcept override { return 2; }

  void encode(const std::uint64_t* data, std::uint64_t* check) const override {
    check[0] = syndrome_of(data);
  }

  EccDecode decode(std::uint64_t* data, std::uint64_t* check) const override {
    const std::uint32_t synd =
        syndrome_of(data) ^ (static_cast<std::uint32_t>(check[0]) &
                             ((std::uint32_t{1} << check_bits_) - 1u));
    if (synd == 0) return {EccStatus::kClean, 0};
    const unsigned weight = static_cast<unsigned>(std::popcount(synd));
    if (weight == 1) {  // identity column: a check bit flipped
      check[0] ^= synd;
      return {EccStatus::kCorrected, 1};
    }
    if ((weight & 1u) == 0) return {EccStatus::kDetected, 0};
    const auto it = std::lower_bound(by_value_.begin(), by_value_.end(),
                                     std::pair<std::uint32_t, std::uint32_t>{
                                         synd, 0});
    if (it == by_value_.end() || it->first != synd)
      return {EccStatus::kDetected, 0};
    flip_word_bit(data, it->second);
    return {EccStatus::kCorrected, 1};
  }

 private:
  [[nodiscard]] std::uint32_t syndrome_of(const std::uint64_t* data) const {
    std::uint32_t acc = 0;
    for (std::size_t w = 0; w < data_words(); ++w) {
      std::uint64_t bits = data[w];
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        acc ^= col_[w * 64 + b];
      }
    }
    return acc;
  }

  std::vector<std::uint32_t> col_;  // data bit index -> H column
  std::vector<std::pair<std::uint32_t, std::uint32_t>> by_value_;
};

// --- BchT2: shortened binary BCH (designed distance 5) + overall parity ----
//
// Generator g(x) = m1(x) * m3(x) over GF(2^m) gives a cyclic code that
// corrects 2 errors; the appended overall parity bit raises d_min to >= 6
// so weight-3 patterns are guaranteed detected. The codeword is laid out
// systematically: cyclic position j < r holds check bit j (the remainder),
// cyclic position r + i holds data bit i, and the parity bit is stored as
// check bit r (outside the cyclic code).

constexpr std::array<std::uint32_t, 17> kPrimitivePoly = {
    0,      0,      0,      0,      0,       // m < 5 unused
    0x25,   0x43,   0x89,   0x11D,  0x211,   // m = 5..9
    0x409,  0x805,  0x1053, 0x201B, 0x4443,  // m = 10..14
    0x8003, 0x1100B,                         // m = 15..16
};

class BchScheme final : public EccScheme {
 public:
  BchScheme(std::size_t data_bits, unsigned m)
      : EccScheme(data_bits, 2 * m + 1),
        m_(m),
        order_((std::uint32_t{1} << m) - 1),
        r_(2 * m) {
    SPARKXD_REQUIRE(r_ + data_bits <= order_,
                    "bch(" + std::to_string(data_bits) +
                        ") does not fit GF(2^" + std::to_string(m) + ")");
    build_field();
    build_generator();
  }

  [[nodiscard]] EccKind kind() const noexcept override { return EccKind::kBch; }
  [[nodiscard]] std::string name() const override {
    return "bch(" + std::to_string(data_bits_ + check_bits_) + "," +
           std::to_string(data_bits_) + ")";
  }
  [[nodiscard]] unsigned correctable_bits() const noexcept override { return 2; }
  [[nodiscard]] unsigned detectable_bits() const noexcept override { return 3; }

  void encode(const std::uint64_t* data, std::uint64_t* check) const override {
    std::uint64_t rem = 0;
    const std::uint64_t mask = (std::uint64_t{1} << r_) - 1;
    for (std::size_t i = data_bits_; i-- > 0;) {
      const unsigned fb =
          (get_bit(data, i) ? 1u : 0u) ^
          (static_cast<unsigned>(rem >> (r_ - 1)) & 1u);
      rem = (rem << 1) & mask;
      if (fb) rem ^= glow_;
    }
    const unsigned parity = parity_of(data, data_words()) ^
                            (static_cast<unsigned>(std::popcount(rem)) & 1u);
    check[0] = rem | (std::uint64_t{parity} << r_);
  }

  EccDecode decode(std::uint64_t* data, std::uint64_t* check) const override {
    std::uint32_t s1 = 0, s3 = 0;
    unsigned par = 0;
    syndromes(data, check, s1, s3, par);
    if (s1 == 0 && s3 == 0 && par == 0) return {EccStatus::kClean, 0};

    const std::size_t ncw = r_ + data_bits_;  // cyclic length
    const std::size_t kParityPos = ncw;       // sentinel: the parity bit
    std::size_t cand[2];
    std::size_t n_cand = 0;

    if (s1 == 0 && s3 == 0) {
      cand[n_cand++] = kParityPos;  // only the parity bit disagrees
    } else if (s1 != 0 && s3 == gf_pow3(s1)) {
      // Single cyclic error at log(S1); a clean parity bit then means the
      // parity bit itself is the second error.
      const std::size_t pos = log_[s1];
      if (pos >= ncw) return {EccStatus::kDetected, 0};
      cand[n_cand++] = pos;
      if (par == 0) cand[n_cand++] = kParityPos;
    } else if (s1 == 0) {
      return {EccStatus::kDetected, 0};  // S3 alone: >= 3 errors
    } else {
      // Two-error locator: sigma1 = S1, sigma2 = (S3 + S1^3) / S1;
      // Lambda(x) = 1 + sigma1 x + sigma2 x^2, roots found by Chien
      // search with incremental alpha^-1 / alpha^-2 stepping.
      if (par != 0) return {EccStatus::kDetected, 0};  // odd weight >= 3
      const std::uint32_t sigma2 = gf_div(s3 ^ gf_pow3(s1), s1);
      std::uint32_t t1 = s1, t2 = sigma2;
      const std::uint32_t inv1 = exp_[order_ - 1];
      const std::uint32_t inv2 = exp_[order_ - 2];
      for (std::size_t i = 0; i < ncw && n_cand <= 2; ++i) {
        if ((1u ^ t1 ^ t2) == 0) {
          if (n_cand == 2) return {EccStatus::kDetected, 0};
          cand[n_cand++] = i;
        }
        t1 = gf_mul(t1, inv1);
        t2 = gf_mul(t2, inv2);
      }
      if (n_cand != 2) return {EccStatus::kDetected, 0};
    }

    for (std::size_t i = 0; i < n_cand; ++i) flip_codeword_bit(data, check, cand[i]);
    std::uint32_t v1 = 0, v3 = 0;
    unsigned vpar = 0;
    syndromes(data, check, v1, v3, vpar);
    if (v1 != 0 || v3 != 0 || vpar != 0) {
      for (std::size_t i = 0; i < n_cand; ++i)
        flip_codeword_bit(data, check, cand[i]);
      return {EccStatus::kDetected, 0};
    }
    return {EccStatus::kCorrected, static_cast<unsigned>(n_cand)};
  }

 private:
  void build_field() {
    const std::uint32_t poly = kPrimitivePoly[m_];
    exp_.assign(order_, 0);
    log_.assign(order_ + 1, 0);
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < order_; ++i) {
      exp_[i] = x;
      log_[x] = i;
      x <<= 1;
      if (x > order_) x ^= poly;
    }
    SPARKXD_REQUIRE(x == 1, "GF(2^" + std::to_string(m_) +
                                ") polynomial is not primitive");
  }

  [[nodiscard]] std::uint32_t gf_mul(std::uint32_t a, std::uint32_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[(log_[a] + log_[b]) % order_];
  }
  [[nodiscard]] std::uint32_t gf_div(std::uint32_t a, std::uint32_t b) const {
    if (a == 0) return 0;
    return exp_[(log_[a] + order_ - log_[b]) % order_];
  }
  [[nodiscard]] std::uint32_t gf_pow3(std::uint32_t a) const {
    if (a == 0) return 0;
    return exp_[(3u * log_[a]) % order_];
  }

  /// Minimal polynomial of alpha^c: product of (x + alpha^s) over the
  /// cyclotomic coset of c. Coefficients come out in GF(2) = {0, 1}.
  [[nodiscard]] std::vector<std::uint32_t> min_poly(std::uint32_t c) const {
    std::vector<std::uint32_t> poly = {1};
    std::uint32_t s = c;
    do {
      std::vector<std::uint32_t> next(poly.size() + 1, 0);
      for (std::size_t i = 0; i < poly.size(); ++i) {
        next[i + 1] ^= poly[i];
        next[i] ^= gf_mul(poly[i], exp_[s]);
      }
      poly = std::move(next);
      s = (2 * s) % order_;
    } while (s != c);
    return poly;
  }

  void build_generator() {
    const std::vector<std::uint32_t> m1 = min_poly(1);
    const std::vector<std::uint32_t> m3 = min_poly(3);
    std::vector<std::uint32_t> g(m1.size() + m3.size() - 1, 0);
    for (std::size_t i = 0; i < m1.size(); ++i)
      for (std::size_t j = 0; j < m3.size(); ++j)
        g[i + j] ^= gf_mul(m1[i], m3[j]);
    SPARKXD_REQUIRE(g.size() == r_ + 1,
                    "bch generator degree " + std::to_string(g.size() - 1) +
                        " != " + std::to_string(r_));
    std::uint64_t packed = 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      SPARKXD_REQUIRE(g[i] <= 1, "bch generator has a non-binary coefficient");
      if (g[i]) packed |= std::uint64_t{1} << i;
    }
    glow_ = packed & ((std::uint64_t{1} << r_) - 1);
  }

  /// S1 = sum alpha^pos, S3 = sum alpha^(3 pos) over set cyclic bits;
  /// par = parity of the whole stored codeword including the parity bit.
  void syndromes(const std::uint64_t* data, const std::uint64_t* check,
                 std::uint32_t& s1, std::uint32_t& s3, unsigned& par) const {
    s1 = 0;
    s3 = 0;
    std::uint64_t pacc = check[0] & ((std::uint64_t{1} << (r_ + 1)) - 1);
    std::uint64_t cbits = check[0] & ((std::uint64_t{1} << r_) - 1);
    while (cbits != 0) {
      const unsigned pos = static_cast<unsigned>(std::countr_zero(cbits));
      cbits &= cbits - 1;
      s1 ^= exp_[pos % order_];
      s3 ^= exp_[(3u * pos) % order_];
    }
    for (std::size_t w = 0; w < data_words(); ++w) {
      std::uint64_t bits = data[w];
      pacc ^= bits;
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t pos = r_ + w * 64 + b;
        s1 ^= exp_[pos % order_];
        s3 ^= exp_[(3u * pos) % order_];
      }
    }
    par = static_cast<unsigned>(std::popcount(pacc)) & 1u;
  }

  void flip_codeword_bit(std::uint64_t* data, std::uint64_t* check,
                         std::size_t pos) const {
    const std::size_t ncw = r_ + data_bits_;
    if (pos == ncw) {
      check[0] ^= std::uint64_t{1} << r_;  // the parity bit
    } else if (pos < r_) {
      check[0] ^= std::uint64_t{1} << pos;
    } else {
      flip_word_bit(data, pos - r_);
    }
  }

  unsigned m_;
  std::uint32_t order_;  // 2^m - 1
  std::size_t r_;        // deg g = 2m cyclic check bits (+1 parity bit)
  std::uint64_t glow_ = 0;
  std::vector<std::uint32_t> exp_;
  std::vector<std::uint32_t> log_;
};

[[nodiscard]] unsigned bch_field_bits(std::size_t data_bits) {
  for (unsigned m = 5; m <= 16; ++m) {
    if (data_bits + 2 * m <= (std::size_t{1} << m) - 1) return m;
  }
  SPARKXD_REQUIRE(false,
                  "bch(" + std::to_string(data_bits) + ") exceeds GF(2^16)");
  return 0;
}

[[nodiscard]] std::size_t hsiao_min_k(std::size_t data_bits) {
  for (std::size_t k = 4; k <= 16; ++k) {
    // Count the odd-weight >= 3 columns available with k check bits.
    std::size_t columns = 0;
    for (std::size_t w = 3; w <= k; w += 2) {
      std::uint64_t c = 1;
      for (std::size_t j = 0; j < w; ++j) c = c * (k - j) / (j + 1);
      columns += c;
    }
    if (columns >= data_bits) return k;
  }
  SPARKXD_REQUIRE(false, "hsiao(" + std::to_string(data_bits) +
                             ") exceeds 16 check bits");
  return 0;
}

}  // namespace

const char* to_string(EccKind kind) noexcept {
  switch (kind) {
    case EccKind::kNone: return "off";
    case EccKind::kParity: return "parity";
    case EccKind::kSecded: return "secded";
    case EccKind::kHsiao: return "hsiao";
    case EccKind::kBch: return "bch";
  }
  return "off";
}

std::size_t ecc_min_check_bits(EccKind kind, std::size_t data_bits) {
  switch (kind) {
    case EccKind::kNone: return 0;
    case EccKind::kParity: return 1;
    case EccKind::kSecded: return 8;
    case EccKind::kHsiao: return hsiao_min_k(data_bits);
    case EccKind::kBch: return 2 * bch_field_bits(data_bits) + 1;
  }
  return 0;
}

void EccSpec::validate() const {
  SPARKXD_REQUIRE(data_bits >= 32 && data_bits <= 32768 && data_bits % 32 == 0,
                  "ecc data_bits must be a multiple of 32 in [32, 32768], "
                  "got " +
                      std::to_string(data_bits));
  switch (kind) {
    case EccKind::kNone:
      SPARKXD_REQUIRE(check_bits == 0, "ecc off takes no check bits");
      break;
    case EccKind::kParity:
      SPARKXD_REQUIRE(check_bits == 0 || check_bits == 1,
                      "parity uses exactly 1 check bit");
      break;
    case EccKind::kSecded:
      SPARKXD_REQUIRE(data_bits == 64,
                      "secded is the fixed Hamming(72,64); use hsiao or bch "
                      "for other codeword sizes");
      SPARKXD_REQUIRE(check_bits == 0 || check_bits == 8,
                      "secded(72,64) uses exactly 8 check bits");
      break;
    case EccKind::kHsiao: {
      SPARKXD_REQUIRE(data_bits <= 4096,
                      "hsiao supports data_bits <= 4096; use bch for the "
                      "large-codeword mode");
      const std::size_t min_k = hsiao_min_k(data_bits);
      SPARKXD_REQUIRE(check_bits == 0 ||
                          (check_bits >= min_k && check_bits <= 16),
                      "hsiao(" + std::to_string(data_bits) +
                          ") wants check_bits 0 (auto) or " +
                          std::to_string(min_k) + "..16, got " +
                          std::to_string(check_bits));
      break;
    }
    case EccKind::kBch: {
      const std::size_t auto_bits = 2 * bch_field_bits(data_bits) + 1;
      SPARKXD_REQUIRE(check_bits == 0 || check_bits == auto_bits,
                      "bch(" + std::to_string(data_bits) + ") auto-sizes to " +
                          std::to_string(auto_bits) + " check bits, got " +
                          std::to_string(check_bits));
      break;
    }
  }
}

std::string ecc_label(const EccSpec& spec) {
  std::string label = to_string(spec.kind);
  if (spec.enabled() && spec.data_bits != 64)
    label += std::to_string(spec.data_bits) + "b";
  return label;
}

double EccScheme::decode_latency_ns() const noexcept {
  // Syndrome checks are flat XOR trees; BCH adds an algebraic stage whose
  // Chien search walks the codeword.
  switch (kind()) {
    case EccKind::kNone: return 0.0;
    case EccKind::kParity: return 0.5;
    case EccKind::kSecded:
    case EccKind::kHsiao: return 1.5;
    case EccKind::kBch:
      return 6.0 + 0.002 * static_cast<double>(data_bits_);
  }
  return 0.0;
}

double EccScheme::decode_energy_nj() const noexcept {
  double nj = 0.002 * static_cast<double>(check_bits_);
  if (kind() == EccKind::kBch)
    nj += 0.0002 * static_cast<double>(data_bits_);
  return nj;
}

double EccScheme::tolerable_raw_ber(double post_ber) const {
  const unsigned t = correctable_bits();
  if (t == 0 || post_ber <= 0.0) return post_ber;
  const double n = static_cast<double>(data_bits_ + check_bits_);
  double comb = 1.0;  // C(n, t+1)
  for (unsigned j = 0; j <= t; ++j) comb = comb * (n - j) / (j + 1);
  const double raw =
      std::pow(post_ber * n / ((t + 1) * comb), 1.0 / (t + 1));
  return std::min(std::max(raw, post_ber), 0.4);
}

std::unique_ptr<EccScheme> make_ecc_scheme(const EccSpec& spec) {
  spec.validate();
  switch (spec.kind) {
    case EccKind::kNone:
      return std::make_unique<NoneScheme>(spec.data_bits);
    case EccKind::kParity:
      return std::make_unique<ParityScheme>(spec.data_bits);
    case EccKind::kSecded:
      return std::make_unique<SecdedScheme>();
    case EccKind::kHsiao:
      return std::make_unique<HsiaoScheme>(
          spec.data_bits, spec.check_bits != 0
                              ? spec.check_bits
                              : hsiao_min_k(spec.data_bits));
    case EccKind::kBch:
      return std::make_unique<BchScheme>(spec.data_bits,
                                         bch_field_bits(spec.data_bits));
  }
  return std::make_unique<NoneScheme>(spec.data_bits);
}

std::vector<EccSpec> ecc_escalation_ladder(const EccSpec& spec) {
  std::vector<EccSpec> ladder = {spec};
  const EccSpec bch{EccKind::kBch, spec.data_bits, 0};
  switch (spec.kind) {
    case EccKind::kNone:
    case EccKind::kBch:
      break;
    case EccKind::kParity:
      if (spec.data_bits == 64) {
        ladder.push_back({EccKind::kSecded, 64, 0});
      } else if (spec.data_bits <= 4096) {
        ladder.push_back({EccKind::kHsiao, spec.data_bits, 0});
      }
      ladder.push_back(bch);
      break;
    case EccKind::kSecded:
    case EccKind::kHsiao:
      ladder.push_back(bch);
      break;
  }
  return ladder;
}

std::vector<EccSpec> registered_ecc_specs() {
  return {
      {EccKind::kNone, 64, 0},
      {EccKind::kParity, 64, 0},
      {EccKind::kSecded, 64, 0},
      {EccKind::kHsiao, 64, 0},
      {EccKind::kHsiao, 128, 0},
      {EccKind::kBch, 64, 0},
      {EccKind::kBch, 4096, 0},   // 512 B large-codeword mode
      {EccKind::kBch, 32768, 0},  // 4 KB large-codeword mode
  };
}

// ---------------------------------------------------------------------------
// Buffer helpers.

namespace {

/// Gathers codeword `cw` of `weights` into `dbuf` (zero-padded tail).
void gather_codeword(const std::vector<float>& weights, std::size_t cw,
                     std::size_t floats_per_cw, std::uint64_t* dbuf,
                     std::size_t data_words) {
  const std::size_t base = cw * floats_per_cw;
  const std::size_t count =
      std::min(floats_per_cw, weights.size() - base);
  std::fill(dbuf, dbuf + data_words, 0);
  std::memcpy(dbuf, weights.data() + base, count * sizeof(float));
}

}  // namespace

std::size_t ecc_codeword_count(const EccScheme& scheme,
                               std::size_t n_weights) {
  const std::size_t floats_per_cw = scheme.data_bits() / 32;
  return (n_weights + floats_per_cw - 1) / floats_per_cw;
}

std::size_t ecc_check_float_equiv(const EccScheme& scheme,
                                  std::size_t n_weights) {
  const std::size_t check_bits =
      ecc_codeword_count(scheme, n_weights) * scheme.check_bits();
  return (check_bits + 31) / 32;
}

std::vector<std::uint64_t> ecc_encode_buffer(const EccScheme& scheme,
                                             const std::vector<float>& weights) {
  SPARKXD_REQUIRE(scheme.data_bits() % 32 == 0,
                  "ecc codewords cover whole FP32 words");
  const std::size_t floats_per_cw = scheme.data_bits() / 32;
  const std::size_t n_cw = ecc_codeword_count(scheme, weights.size());
  const std::size_t cww = scheme.check_words();
  std::vector<std::uint64_t> checks(n_cw * cww, 0);
  std::vector<std::uint64_t> dbuf(scheme.data_words());
  for (std::size_t cw = 0; cw < n_cw; ++cw) {
    gather_codeword(weights, cw, floats_per_cw, dbuf.data(),
                    scheme.data_words());
    if (cww != 0) scheme.encode(dbuf.data(), checks.data() + cw * cww);
  }
  return checks;
}

EccScrubStats ecc_scrub_buffer(const EccScheme& scheme,
                               std::vector<float>& weights,
                               const std::vector<std::uint64_t>& checks) {
  const std::size_t floats_per_cw = scheme.data_bits() / 32;
  const std::size_t n_cw = ecc_codeword_count(scheme, weights.size());
  const std::size_t cww = scheme.check_words();
  SPARKXD_REQUIRE(checks.size() == n_cw * cww,
                  "check buffer does not match the weight buffer");
  EccScrubStats stats;
  std::vector<std::uint64_t> dbuf(scheme.data_words());
  std::vector<std::uint64_t> cbuf(cww);
  for (std::size_t cw = 0; cw < n_cw; ++cw) {
    gather_codeword(weights, cw, floats_per_cw, dbuf.data(),
                    scheme.data_words());
    std::copy_n(checks.begin() + cw * cww, cww, cbuf.begin());
    const EccDecode d = scheme.decode(dbuf.data(), cbuf.data());
    ++stats.codewords;
    stats.bits_corrected += d.bits_corrected;
    if (d.status == EccStatus::kCorrected) {
      ++stats.corrected;
      const std::size_t base = cw * floats_per_cw;
      const std::size_t count =
          std::min(floats_per_cw, weights.size() - base);
      std::memcpy(weights.data() + base, dbuf.data(), count * sizeof(float));
    } else if (d.status == EccStatus::kDetected) {
      ++stats.detected;
    }
  }
  return stats;
}

EccScrubStats ecc_scrub_codewords(const EccScheme& scheme,
                                  std::vector<float>& weights,
                                  const std::vector<std::uint64_t>& checks,
                                  std::vector<WeightFlip>& flips,
                                  std::size_t n_injected,
                                  const SanitizeRange& post_sanitize) {
  const std::size_t floats_per_cw = scheme.data_bits() / 32;
  const std::size_t n_cw = ecc_codeword_count(scheme, weights.size());
  const std::size_t cww = scheme.check_words();
  SPARKXD_REQUIRE(checks.size() == n_cw * cww,
                  "check buffer does not match the weight buffer");
  SPARKXD_REQUIRE(n_injected <= flips.size(),
                  "n_injected exceeds the flip log");
  EccScrubStats stats;
  if (n_injected == 0) return stats;

  std::vector<std::uint32_t> dirty;
  dirty.reserve(n_injected);
  for (std::size_t i = 0; i < n_injected; ++i)
    dirty.push_back(flips[i].word / static_cast<std::uint32_t>(floats_per_cw));
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  std::vector<std::uint64_t> dbuf(scheme.data_words());
  std::vector<std::uint64_t> cbuf(cww);
  for (const std::uint32_t cw : dirty) {
    gather_codeword(weights, cw, floats_per_cw, dbuf.data(),
                    scheme.data_words());
    std::copy_n(checks.begin() + std::size_t{cw} * cww, cww, cbuf.begin());
    const EccDecode d = scheme.decode(dbuf.data(), cbuf.data());
    ++stats.codewords;
    stats.bits_corrected += d.bits_corrected;
    if (d.status == EccStatus::kCorrected) {
      ++stats.corrected;
      const std::size_t base = std::size_t{cw} * floats_per_cw;
      const std::size_t count =
          std::min(floats_per_cw, weights.size() - base);
      std::vector<float> corrected(count);
      std::memcpy(corrected.data(), dbuf.data(), count * sizeof(float));
      for (std::size_t j = 0; j < count; ++j) {
        float v = corrected[j];
        if (!std::isfinite(v)) sanitize_weight(v, post_sanitize);
        if (float_to_bits(v) == float_to_bits(weights[base + j])) continue;
        flips.push_back({static_cast<std::uint32_t>(base + j),
                         weights[base + j]});
        weights[base + j] = v;
      }
    } else {
      if (d.status == EccStatus::kDetected) ++stats.detected;
      // The code could not restore this codeword: its injected words go
      // through the load-time range clip, exactly like the unprotected
      // path would apply at injection time.
      for (std::size_t i = 0; i < n_injected; ++i) {
        if (flips[i].word / floats_per_cw != cw) continue;
        const std::uint32_t word = flips[i].word;
        float v = weights[word];
        const float before = v;
        sanitize_weight(v, post_sanitize);
        if (float_to_bits(v) == float_to_bits(before)) continue;
        flips.push_back({word, before});
        weights[word] = v;
      }
    }
  }
  return stats;
}

}  // namespace sparkxd::error
