#pragma once
// Tiny grayscale rasterizer used to synthesize dataset images.
//
// Shapes are authored in a normalized [0,1]x[0,1] coordinate system (origin at
// the top-left) and painted with soft (anti-aliased) edges via signed distance
// fields, which gives MNIST-like soft strokes after blur + noise.

#include <cstddef>
#include <vector>

namespace sparkxd::data {

/// A float image buffer with soft-brush drawing primitives.
class Canvas {
 public:
  Canvas(std::size_t width, std::size_t height);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] const std::vector<float>& pixels() const noexcept {
    return px_;
  }

  /// Paints a thick line segment; coordinates normalized, thickness in pixels.
  void stroke(double x0, double y0, double x1, double y1, double thickness_px,
              float intensity = 1.0f);

  /// Paints an ellipse outline (rx, ry normalized radii; thickness in pixels).
  void ellipse(double cx, double cy, double rx, double ry, double thickness_px,
               float intensity = 1.0f);

  /// Fills an ellipse.
  void fill_ellipse(double cx, double cy, double rx, double ry,
                    float intensity = 1.0f);

  /// Fills an axis-aligned rectangle (normalized corners).
  void fill_rect(double x0, double y0, double x1, double y1,
                 float intensity = 1.0f);

  /// 3x3 binomial blur, `passes` times.
  void blur(int passes = 1);

  /// Applies an affine jitter: rotate by `radians` about the image centre,
  /// scale by `scale`, then translate by (dx, dy) pixels (bilinear resample).
  void affine(double radians, double scale, double dx_px, double dy_px);

  /// Clamps all pixels into [0, 1].
  void clamp01();

  /// Extracts the buffer (leaves the canvas cleared to black).
  [[nodiscard]] std::vector<float> take();

 private:
  /// Max-blends `intensity * coverage` into pixel (x, y).
  void blend(std::size_t x, std::size_t y, float value) noexcept;

  std::size_t width_;
  std::size_t height_;
  std::vector<float> px_;
};

}  // namespace sparkxd::data
