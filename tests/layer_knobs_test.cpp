// Tests for the per-layer (voltage x refresh x ECC) operating-point search:
// determinism (thread count, candidate-enumeration order), the accuracy-floor
// property every chosen triple must satisfy, the honest fallback when no
// candidate is feasible, and ladder validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/layer_knobs.hpp"
#include "energy/ber_model.hpp"
#include "error/retention.hpp"
#include "error/subarray_profile.hpp"
#include "test_env_util.hpp"

namespace sparkxd::core {
namespace {

/// A small two-layer search problem with generous tolerances, so both the
/// per-layer choices and the uniform baseline are feasible.
struct SearchSetup {
  dram::Geometry geometry = dram::Geometry::lpddr3_4gb();
  error::SubarrayProfile profile{geometry, 42};
  LayerKnobsConfig cfg;
  LayerKnobsInputs in;

  SearchSetup() {
    cfg.enabled = true;
    in.geometry = geometry;
    in.profile = &profile;
    in.voltages = {1.325, 1.175, 1.025};
    in.ecc = {error::EccKind::kSecded, 64, 0};
    in.layer_ber_th = {1e-3, 2e-4};
    in.layer_met_target = {true, true};
    in.layer_weights = {600, 300};
    in.salp = false;
    in.seed = 42;
  }
};

void expect_identical(const LayerKnobsReport& a, const LayerKnobsReport& b) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    const auto& x = a.layers[l];
    const auto& y = b.layers[l];
    EXPECT_EQ(x.v_supply, y.v_supply) << "layer " << l;
    EXPECT_EQ(x.refresh_multiplier, y.refresh_multiplier) << "layer " << l;
    EXPECT_EQ(x.ecc_scheme, y.ecc_scheme) << "layer " << l;
    EXPECT_EQ(x.raw_ber, y.raw_ber) << "layer " << l;
    EXPECT_EQ(x.tolerable_ber, y.tolerable_ber) << "layer " << l;
    EXPECT_EQ(x.energy_nj, y.energy_nj) << "layer " << l;
    EXPECT_EQ(x.meets_floor, y.meets_floor) << "layer " << l;
    EXPECT_EQ(x.retention_weak_cells, y.retention_weak_cells) << "layer " << l;
  }
  EXPECT_EQ(a.total_energy_nj, b.total_energy_nj);
  EXPECT_EQ(a.uniform_feasible, b.uniform_feasible);
  EXPECT_EQ(a.uniform_energy_nj, b.uniform_energy_nj);
  EXPECT_EQ(a.uniform.v_supply, b.uniform.v_supply);
  EXPECT_EQ(a.uniform.refresh_multiplier, b.uniform.refresh_multiplier);
  EXPECT_EQ(a.uniform.ecc_scheme, b.uniform.ecc_scheme);
}

TEST(LayerKnobs, LadderValidation) {
  LayerKnobsConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.refresh_ladder = {};
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.refresh_ladder = {0.5};
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.refresh_ladder = {1.0, 4.0, 2.0};  // not ascending
  EXPECT_THROW(cfg.validate(), ContractViolation);
  cfg.refresh_ladder = {1.0, 2.0, 2.0};  // not strictly
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

TEST(LayerKnobs, EveryChosenTripleMeetsTheFloorItWasSelectedUnder) {
  SearchSetup s;
  const auto report = assign_layer_knobs(s.cfg, s.in);
  const energy::BerModel ber_model;
  ASSERT_EQ(report.layers.size(), s.in.layer_weights.size());
  for (std::size_t l = 0; l < report.layers.size(); ++l) {
    const auto& c = report.layers[l];
    EXPECT_TRUE(c.meets_floor) << "layer " << l;
    EXPECT_LE(c.raw_ber, c.tolerable_ber) << "layer " << l;
    // The recorded raw BER is the voltage BER composed with the retention
    // failure probability of the chosen cadence — recompute it.
    error::RetentionSpec ret = s.in.error_model.retention;
    ret.enabled = true;
    ret.interval_multiplier = c.refresh_multiplier;
    const double p_v = ber_model.ber(c.v_supply);
    const double p_ret = error::retention_fail_probability(ret, 1.0);
    EXPECT_NEAR(c.raw_ber, 1.0 - (1.0 - p_v) * (1.0 - p_ret), 1e-15)
        << "layer " << l;
    EXPECT_GT(c.energy_nj, 0.0) << "layer " << l;
    // The chosen knobs come from the candidate axes.
    EXPECT_NE(std::find(s.in.voltages.begin(), s.in.voltages.end(),
                        c.v_supply),
              s.in.voltages.end());
    EXPECT_NE(std::find(s.cfg.refresh_ladder.begin(),
                        s.cfg.refresh_ladder.end(), c.refresh_multiplier),
              s.cfg.refresh_ladder.end());
  }
  // The per-layer assignment minimizes over a superset of any uniform
  // triple, so its total can never exceed the uniform baseline.
  ASSERT_TRUE(report.uniform_feasible);
  EXPECT_LE(report.total_energy_nj, report.uniform_energy_nj);
  EXPECT_GT(report.uniform_energy_nj, 0.0);
}

TEST(LayerKnobs, ResultIsThreadCountInvariant) {
  SearchSetup s;
  LayerKnobsReport serial, parallel8;
  {
    testutil::ThreadsOverride threads("1");
    serial = assign_layer_knobs(s.cfg, s.in);
  }
  {
    testutil::ThreadsOverride threads("8");
    parallel8 = assign_layer_knobs(s.cfg, s.in);
  }
  expect_identical(serial, parallel8);
}

TEST(LayerKnobs, ResultIsInvariantToCandidateEnumerationOrder) {
  // The winner is chosen by a value-based order (energy, then higher
  // voltage, then lower multiplier, then weaker code), so permuting the
  // voltage grid — which permutes the candidate enumeration — must not
  // change any chosen triple bit for bit.
  SearchSetup s;
  const auto forward = assign_layer_knobs(s.cfg, s.in);
  SearchSetup r;
  std::reverse(r.in.voltages.begin(), r.in.voltages.end());
  const auto reversed = assign_layer_knobs(r.cfg, r.in);
  expect_identical(forward, reversed);
}

TEST(LayerKnobs, InfeasibleLayerFallsBackToSafestTripleHonestly) {
  SearchSetup s;
  // Layer 1's tolerance was never met: no candidate may claim the floor.
  s.in.layer_met_target = {true, false};
  s.in.layer_ber_th = {1e-3, 0.0};
  const auto report = assign_layer_knobs(s.cfg, s.in);
  ASSERT_EQ(report.layers.size(), 2u);
  EXPECT_TRUE(report.layers[0].meets_floor);
  const auto& fallback = report.layers[1];
  EXPECT_FALSE(fallback.meets_floor);
  // Safest triple: first grid voltage (the highest), datasheet-closest
  // cadence, strongest rung of the escalation ladder.
  EXPECT_EQ(fallback.v_supply, s.in.voltages.front());
  EXPECT_EQ(fallback.refresh_multiplier, s.cfg.refresh_ladder.front());
  const auto ladder = error::ecc_escalation_ladder(s.in.ecc);
  EXPECT_EQ(fallback.ecc, ladder.back());
  // One infeasible layer makes every uniform triple infeasible too.
  EXPECT_FALSE(report.uniform_feasible);
}

TEST(LayerKnobs, RejectsMismatchedInputs) {
  SearchSetup s;
  s.in.layer_ber_th.pop_back();
  EXPECT_THROW((void)assign_layer_knobs(s.cfg, s.in), ContractViolation);
  SearchSetup p;
  p.in.profile = nullptr;
  EXPECT_THROW((void)assign_layer_knobs(p.cfg, p.in), ContractViolation);
  SearchSetup v;
  v.in.voltages.clear();
  EXPECT_THROW((void)assign_layer_knobs(v.cfg, v.in), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::core
