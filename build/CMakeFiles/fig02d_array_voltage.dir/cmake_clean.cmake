file(REMOVE_RECURSE
  "CMakeFiles/fig02d_array_voltage.dir/bench/fig02d_array_voltage.cpp.o"
  "CMakeFiles/fig02d_array_voltage.dir/bench/fig02d_array_voltage.cpp.o.d"
  "fig02d_array_voltage"
  "fig02d_array_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02d_array_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
