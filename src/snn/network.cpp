#include "snn/network.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace sparkxd::snn {

InferenceState::InferenceState(const Network& net)
    : encoder_(net.cfg_.max_rate) {
  layers_.reserve(net.layers_.size());
  for (const auto& lay : net.layers_) {
    // Inference freezes the adaptive thresholds (standard for this
    // architecture): the copied thetas stay at the network's trained values.
    LayerSlice slice{lay.lif, std::vector<float>(lay.n_out, 0.0f), {}};
    slice.lif.set_plastic(false);
    layers_.push_back(std::move(slice));
  }
}

Network::Layer::Layer(std::size_t n_in_, std::size_t n_out_,
                      const NetworkConfig& cfg)
    : n_in(n_in_),
      n_out(n_out_),
      w(n_in_ * n_out_),
      wt(n_in_ * n_out_),
      lif(n_out_, cfg.lif, cfg.dt_ms),
      traces(n_in_, cfg.stdp.tau_pre_ms, cfg.dt_ms),
      current(n_out_, 0.0f) {}

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg), encoder_(cfg.max_rate) {
  SPARKXD_REQUIRE(cfg.n_inputs > 0 && cfg.n_neurons > 0,
                  "network dimensions must be positive");
  for (const std::size_t h : cfg.hidden_neurons)
    SPARKXD_REQUIRE(h > 0, "hidden layer sizes must be positive");
  SPARKXD_REQUIRE(cfg.timesteps > 0, "need at least one timestep per sample");
  SPARKXD_REQUIRE(cfg.norm_target > 0.0f, "norm_target must be positive");

  const std::size_t n_layers = cfg.n_layers();
  layers_.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l)
    layers_.emplace_back(cfg.layer_inputs(l), cfg.layer_neurons(l), cfg);

  // Uniform random initial weights in [0, 0.3], then normalized — the
  // standard initialization for this architecture. Stream discipline: the
  // OUTPUT layer draws from Rng(seed) — exactly the legacy single-layer
  // stream, so an empty hidden stack reproduces the pre-stack weights bit
  // for bit — while hidden layer l draws from the independent substream
  // Rng(hash_combine(seed, l + 1)).
  for (std::size_t l = 0; l < n_layers; ++l) {
    Rng rng(l + 1 == n_layers ? cfg.seed : hash_combine(cfg.seed, l + 1));
    for (float& w : layers_[l].w) w = static_cast<float>(rng.uniform(0.0, 0.3));
  }
  normalize_rows();
  sync_transpose();
}

void Network::sync_transpose() {
  for (Layer& lay : layers_) {
    if (lay.wt_synced) continue;
    for (std::size_t n = 0; n < lay.n_out; ++n) {
      const float* row = lay.w.data() + n * lay.n_in;
      for (std::size_t i = 0; i < lay.n_in; ++i)
        lay.wt[i * lay.n_out + n] = row[i];
    }
    lay.wt_synced = true;
  }
}

bool Network::transpose_synced() const noexcept {
  for (const Layer& lay : layers_)
    if (!lay.wt_synced) return false;
  return true;
}

void Network::normalize_rows() {
  for (Layer& lay : layers_) {
    const std::size_t ni = lay.n_in;
    for (std::size_t n = 0; n < lay.n_out; ++n) {
      float* row = lay.w.data() + n * ni;
      float sum = 0.0f;
      for (std::size_t i = 0; i < ni; ++i) sum += row[i];
      if (sum <= 0.0f) continue;
      const float scale = cfg_.norm_target / sum;
      for (std::size_t i = 0; i < ni; ++i) row[i] *= scale;
    }
    lay.wt_synced = false;
  }
}

void Network::reset_dynamics() {
  for (Layer& lay : layers_) {
    lay.lif.reset_dynamics();
    lay.traces.reset();
    std::fill(lay.current.begin(), lay.current.end(), 0.0f);
  }
}

std::vector<std::uint32_t> Network::process(const std::vector<float>& image,
                                            bool learn, Rng& rng) {
  SPARKXD_REQUIRE(image.size() == cfg_.n_inputs,
                  "image size must match n_inputs");
  if (!learn) sync_transpose();
  reset_dynamics();
  for (Layer& lay : layers_) lay.lif.set_plastic(learn);
  encoder_.set_image(image);

  const std::size_t n_layers = layers_.size();
  std::vector<std::uint32_t> counts(layers_.back().n_out, 0);

  for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
    encoder_.step(rng, in_spikes_);

    // Feed the spike wave through the stack: layer l's output spikes are
    // layer l+1's input spikes within the same timestep.
    const std::vector<std::uint32_t>* spikes = &in_spikes_;
    for (std::size_t l = 0; l < n_layers; ++l) {
      Layer& lay = layers_[l];
      if (learn) lay.traces.step(*spikes);

      // Synaptic drive: per-neuron sum over this step's spiking inputs.
      std::fill(lay.current.begin(), lay.current.end(), 0.0f);
      if (!spikes->empty()) {
        const std::size_t ni = lay.n_in;
        const std::size_t nn = lay.n_out;
        if (learn) {
          // Training reads the row-major array directly: STDP updates
          // weight rows mid-sample and the next step's gather must see them.
          for (std::size_t n = 0; n < nn; ++n) {
            const float* row = lay.w.data() + n * ni;
            float acc = 0.0f;
            for (const auto i : *spikes) acc += row[i];
            lay.current[n] = acc;
          }
        } else {
          // Inference: spike-outer / neuron-inner over contiguous
          // transposed columns. Per neuron the additions happen in the same
          // spike order as the row-major walk, so the sums are bitwise
          // identical.
          float* cur = lay.current.data();
          for (const auto i : *spikes) {
            const float* col = lay.wt.data() + std::size_t{i} * nn;
            for (std::size_t n = 0; n < nn; ++n) cur[n] += col[n];
          }
        }
      }

      lay.lif.step(lay.current, lay.out_spikes);
      for (const auto s : lay.out_spikes) {
        if (l + 1 == n_layers) ++counts[s];
        if (learn)
          stdp_post_update(lay.w.data() + static_cast<std::size_t>(s) * lay.n_in,
                           lay.n_in, lay.traces.values(), cfg_.stdp);
      }
      spikes = &lay.out_spikes;
    }
  }

  if (learn) {
    normalize_rows();  // also marks the transposes stale
  }
  return counts;
}

std::vector<std::uint32_t> Network::infer(InferenceState& state,
                                          const std::vector<float>& image,
                                          Rng& rng) const {
  SPARKXD_REQUIRE(image.size() == cfg_.n_inputs,
                  "image size must match n_inputs");
  SPARKXD_REQUIRE(transpose_synced(),
                  "infer needs synced transposes — call sync_transpose()");
  SPARKXD_REQUIRE(state.layers_.size() == layers_.size(),
                  "InferenceState was built for a different network depth");
  const std::size_t n_layers = layers_.size();
  for (std::size_t l = 0; l < n_layers; ++l) {
    SPARKXD_REQUIRE(state.layers_[l].current.size() == layers_[l].n_out,
                    "InferenceState was built for a different network size");
    state.layers_[l].lif.reset_dynamics();
  }
  state.encoder_.set_image(image);

  std::vector<std::uint32_t> counts(layers_.back().n_out, 0);

  for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
    state.encoder_.step(rng, state.in_spikes_);
    const std::vector<std::uint32_t>* spikes = &state.in_spikes_;
    for (std::size_t l = 0; l < n_layers; ++l) {
      const Layer& lay = layers_[l];
      auto& slice = state.layers_[l];
      std::fill(slice.current.begin(), slice.current.end(), 0.0f);
      if (!spikes->empty()) {
        const std::size_t nn = lay.n_out;
        float* cur = slice.current.data();
        for (const auto i : *spikes) {
          const float* col = lay.wt.data() + std::size_t{i} * nn;
          for (std::size_t n = 0; n < nn; ++n) cur[n] += col[n];
        }
      }
      slice.lif.step(slice.current, slice.out_spikes);
      if (l + 1 == n_layers)
        for (const auto s : slice.out_spikes) ++counts[s];
      spikes = &slice.out_spikes;
    }
  }
  return counts;
}

}  // namespace sparkxd::snn
