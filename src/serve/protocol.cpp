#include "serve/protocol.hpp"

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/contracts.hpp"

namespace sparkxd::serve {

namespace {

// Raw little-endian POD append/extract. The framework already reads and
// writes PODs byte for byte (model_io, the artifact), so the wire format
// shares that convention.

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T get(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  SPARKXD_REQUIRE(pos + sizeof(T) <= in.size(),
                  "truncated protocol payload");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

void require_type(const std::vector<std::uint8_t>& payload, MsgType want) {
  SPARKXD_REQUIRE(frame_type(payload) == want,
                  "unexpected protocol message type");
}

std::vector<std::uint8_t> encode_id_frame(MsgType type, std::uint64_t id) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8);
  out.push_back(static_cast<std::uint8_t>(type));
  put(out, id);
  return out;
}

std::uint64_t decode_id_frame(const std::vector<std::uint8_t>& payload,
                              MsgType type) {
  require_type(payload, type);
  std::size_t pos = 1;
  const auto id = get<std::uint64_t>(payload, pos);
  SPARKXD_REQUIRE(pos == payload.size(), "oversized id-frame payload");
  return id;
}

std::vector<std::uint8_t> encode_hello_frame(MsgType type,
                                             const Hello& hello) {
  SPARKXD_REQUIRE(hello.version == kProtocolV1 || hello.version == kProtocolV2,
                  "unsupported protocol version in hello");
  SPARKXD_REQUIRE(!hello.crc || hello.version == kProtocolV2,
                  "CRC framing requires protocol v2");
  std::vector<std::uint8_t> out;
  out.reserve(1 + 4 + 1);
  out.push_back(static_cast<std::uint8_t>(type));
  put(out, hello.version);
  put(out, static_cast<std::uint8_t>(hello.crc ? kHelloFlagCrc : 0));
  return out;
}

Hello decode_hello_frame(const std::vector<std::uint8_t>& payload,
                         MsgType type) {
  require_type(payload, type);
  std::size_t pos = 1;
  Hello hello;
  hello.version = get<std::uint32_t>(payload, pos);
  const auto flags = get<std::uint8_t>(payload, pos);
  SPARKXD_REQUIRE(pos == payload.size(), "oversized hello payload");
  SPARKXD_REQUIRE((flags & ~kHelloFlagCrc) == 0, "unknown hello flags");
  hello.crc = (flags & kHelloFlagCrc) != 0;
  SPARKXD_REQUIRE(hello.version == kProtocolV1 || hello.version == kProtocolV2,
                  "unsupported protocol version in hello");
  SPARKXD_REQUIRE(!hello.crc || hello.version == kProtocolV2,
                  "CRC framing requires protocol v2");
  return hello;
}

}  // namespace

MsgType frame_type(const std::vector<std::uint8_t>& payload) {
  SPARKXD_REQUIRE(!payload.empty(), "empty protocol payload");
  return static_cast<MsgType>(payload[0]);
}

std::vector<std::uint8_t> encode_classify(const ClassifyRequest& request) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + 8 + 4 + request.image.size() * sizeof(float));
  out.push_back(static_cast<std::uint8_t>(MsgType::kClassify));
  put(out, request.id);
  put(out, request.seed);
  put(out, static_cast<std::uint32_t>(request.image.size()));
  for (const float px : request.image) put(out, px);
  return out;
}

ClassifyRequest decode_classify(const std::vector<std::uint8_t>& payload) {
  require_type(payload, MsgType::kClassify);
  std::size_t pos = 1;
  ClassifyRequest req;
  req.id = get<std::uint64_t>(payload, pos);
  req.seed = get<std::uint64_t>(payload, pos);
  const auto n = get<std::uint32_t>(payload, pos);
  SPARKXD_REQUIRE(pos + static_cast<std::size_t>(n) * sizeof(float) ==
                      payload.size(),
                  "classify payload length does not match its pixel count");
  req.image.resize(n);
  for (auto& px : req.image) px = get<float>(payload, pos);
  return req;
}

std::vector<std::uint8_t> encode_reply(const ClassifyReply& reply) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + 4 + 4 + 4);
  out.push_back(static_cast<std::uint8_t>(MsgType::kReply));
  put(out, reply.id);
  put(out, reply.label);
  put(out, reply.spikes);
  put(out, reply.flips);
  return out;
}

ClassifyReply decode_reply(const std::vector<std::uint8_t>& payload) {
  require_type(payload, MsgType::kReply);
  std::size_t pos = 1;
  ClassifyReply rep;
  rep.id = get<std::uint64_t>(payload, pos);
  rep.label = get<std::int32_t>(payload, pos);
  rep.spikes = get<std::uint32_t>(payload, pos);
  rep.flips = get<std::uint32_t>(payload, pos);
  SPARKXD_REQUIRE(pos == payload.size(), "oversized reply payload");
  return rep;
}

std::vector<std::uint8_t> encode_stats_request() {
  return {static_cast<std::uint8_t>(MsgType::kStats)};
}

std::vector<std::uint8_t> encode_stats_reply(const ServerStats& stats) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kStatsReply));
  put(out, stats.served);
  put(out, stats.batches);
  put(out, stats.max_queue_depth);
  put(out, stats.generation);
  put(out, stats.wedged_events);
  put(out, stats.deadline_exceeded);
  put(out, stats.bad_frames);
  put(out, stats.evicted_slow);
  put(out, stats.rejected_conns);
  put(out, static_cast<std::uint32_t>(stats.batch_hist.size()));
  for (const std::uint64_t h : stats.batch_hist) put(out, h);
  return out;
}

std::vector<std::uint8_t> encode_queue_full(std::uint64_t id) {
  return encode_id_frame(MsgType::kQueueFull, id);
}

std::uint64_t decode_queue_full(const std::vector<std::uint8_t>& payload) {
  return decode_id_frame(payload, MsgType::kQueueFull);
}

std::vector<std::uint8_t> encode_deadline_exceeded(std::uint64_t id) {
  return encode_id_frame(MsgType::kDeadlineExceeded, id);
}

std::uint64_t decode_deadline_exceeded(
    const std::vector<std::uint8_t>& payload) {
  return decode_id_frame(payload, MsgType::kDeadlineExceeded);
}

std::vector<std::uint8_t> encode_bad_frame() {
  return {static_cast<std::uint8_t>(MsgType::kBadFrame)};
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  return encode_hello_frame(MsgType::kHello, hello);
}

std::vector<std::uint8_t> encode_hello_ack(const Hello& hello) {
  return encode_hello_frame(MsgType::kHelloAck, hello);
}

Hello decode_hello(const std::vector<std::uint8_t>& payload) {
  return decode_hello_frame(payload, MsgType::kHello);
}

Hello decode_hello_ack(const std::vector<std::uint8_t>& payload) {
  return decode_hello_frame(payload, MsgType::kHelloAck);
}

ServerStats decode_stats_reply(const std::vector<std::uint8_t>& payload) {
  require_type(payload, MsgType::kStatsReply);
  std::size_t pos = 1;
  ServerStats stats;
  stats.served = get<std::uint64_t>(payload, pos);
  stats.batches = get<std::uint64_t>(payload, pos);
  stats.max_queue_depth = get<std::uint64_t>(payload, pos);
  stats.generation = get<std::uint64_t>(payload, pos);
  stats.wedged_events = get<std::uint64_t>(payload, pos);
  stats.deadline_exceeded = get<std::uint64_t>(payload, pos);
  stats.bad_frames = get<std::uint64_t>(payload, pos);
  stats.evicted_slow = get<std::uint64_t>(payload, pos);
  stats.rejected_conns = get<std::uint64_t>(payload, pos);
  const auto n = get<std::uint32_t>(payload, pos);
  SPARKXD_REQUIRE(pos + static_cast<std::size_t>(n) * sizeof(std::uint64_t) ==
                      payload.size(),
                  "stats payload length does not match its histogram size");
  stats.batch_hist.resize(n);
  for (auto& h : stats.batch_hist) h = get<std::uint64_t>(payload, pos);
  return stats;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> frame_wire_bytes(
    const std::vector<std::uint8_t>& payload, bool crc) {
  SPARKXD_REQUIRE(!payload.empty() && payload.size() <= kMaxFrameBytes,
                  "frame payload must be non-empty and bounded");
  const auto len = static_cast<std::uint32_t>(payload.size() + (crc ? 4 : 0));
  std::vector<std::uint8_t> buf;
  buf.reserve(sizeof(len) + len);
  put(buf, len);
  buf.insert(buf.end(), payload.begin(), payload.end());
  if (crc) put(buf, crc32(payload.data(), payload.size()));
  return buf;
}

bool send_bytes(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL keeps a vanished peer from raising SIGPIPE at the
    // server; non-socket fds (tests use pipes too) fall back to write().
    ::ssize_t r = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (r < 0 && errno == ENOTSOCK) r = ::write(fd, data + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone (EPIPE/ECONNRESET) or fd closed
    }
    done += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload, bool crc) {
  const auto buf = frame_wire_bytes(payload, crc);
  return send_bytes(fd, buf.data(), buf.size());
}

namespace {

using Clock = std::chrono::steady_clock;

/// Waits until `fd` is readable (or has an error/hangup to report). A null
/// deadline waits forever. Returns false on deadline expiry.
bool wait_readable(int fd, const Clock::time_point* deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != nullptr) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            *deadline - Clock::now())
                            .count();
      if (left <= 0) return false;
      timeout_ms = static_cast<int>(left);
    }
    ::pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return true;  // let the read surface the error
    }
    if (r == 0) return false;  // timeout
    return true;
  }
}

/// Reads exactly `n` bytes, honoring an optional absolute deadline between
/// reads; returns the byte count actually read (short on EOF, error, or
/// deadline — `timed_out` distinguishes the latter).
std::size_t read_full_deadline(int fd, std::uint8_t* out, std::size_t n,
                               const Clock::time_point* deadline,
                               bool* timed_out) {
  std::size_t done = 0;
  while (done < n) {
    if (!wait_readable(fd, deadline)) {
      if (timed_out != nullptr) *timed_out = true;
      break;
    }
    const ::ssize_t r = ::read(fd, out + done, n - done);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    if (r == 0) break;  // EOF
    done += static_cast<std::size_t>(r);
  }
  return done;
}

}  // namespace

ReadStatus read_frame_ex(int fd, std::vector<std::uint8_t>& payload,
                         const FrameOptions& options) {
  // The first byte may take forever — an idle connection is healthy. Once
  // it lands the frame has STARTED and the mid-frame deadline (when set)
  // covers everything up to the last payload byte: that is exactly the
  // window a slow-loris peer tries to stretch.
  std::uint8_t len_buf[4];
  std::size_t got = read_full_deadline(fd, len_buf, 1, nullptr, nullptr);
  if (got == 0) return ReadStatus::kEof;  // clean EOF at a frame boundary

  Clock::time_point deadline_tp;
  const Clock::time_point* deadline = nullptr;
  if (options.mid_frame_deadline_ms > 0) {
    deadline_tp = Clock::now() +
                  std::chrono::milliseconds(options.mid_frame_deadline_ms);
    deadline = &deadline_tp;
  }
  bool timed_out = false;
  got += read_full_deadline(fd, len_buf + 1, sizeof(len_buf) - 1, deadline,
                            &timed_out);
  if (timed_out) return ReadStatus::kTimeout;
  SPARKXD_REQUIRE(got == sizeof(len_buf), "truncated frame length prefix");
  std::uint32_t len = 0;
  std::memcpy(&len, len_buf, sizeof(len));
  SPARKXD_REQUIRE(len > 0 && len <= kMaxFrameBytes,
                  "frame length prefix out of bounds");
  SPARKXD_REQUIRE(!options.crc || len >= 5,
                  "CRC-framed payload too short for its trailer");
  payload.resize(len);
  const std::size_t body =
      read_full_deadline(fd, payload.data(), len, deadline, &timed_out);
  if (timed_out) return ReadStatus::kTimeout;
  SPARKXD_REQUIRE(body == len, "truncated frame payload");
  if (options.crc) {
    const std::size_t data_len = payload.size() - 4;
    std::uint32_t want = 0;
    std::memcpy(&want, payload.data() + data_len, 4);
    if (crc32(payload.data(), data_len) != want) return ReadStatus::kBadCrc;
    payload.resize(data_len);
  }
  return ReadStatus::kFrame;
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  // Plain v1 read: no CRC, no deadline — kTimeout/kBadCrc cannot happen.
  return read_frame_ex(fd, payload, FrameOptions{}) == ReadStatus::kFrame;
}

}  // namespace sparkxd::serve
