file(REMOVE_RECURSE
  "CMakeFiles/energy_power_test.dir/tests/energy_power_test.cpp.o"
  "CMakeFiles/energy_power_test.dir/tests/energy_power_test.cpp.o.d"
  "energy_power_test"
  "energy_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
