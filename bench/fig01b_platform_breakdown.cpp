// Fig. 1b: energy breakdown of SNN processing on TrueNorth, PEASE and
// SNNAP (adapted from the study in Krithivasan et al. [5]).
// Paper: memory accesses dominate, consuming ~50-75% of total energy.

#include "bench_common.hpp"
#include "energy/platform_model.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 1b — platform energy breakdown",
                "memory accesses consume ~50-75% of SNN processing energy");
  // Workload of one N400 inference with the framework's default coding
  // rate (~10% of inputs spiking per step on an average sample).
  const auto w = energy::snn_inference_workload(784, 400, 100, 0.10);
  Table t("fig01b_platform_breakdown",
          {"platform", "computation", "communication", "memory accesses"});
  for (const auto& p : energy::fig1b_platforms()) {
    const auto s = energy::breakdown(p, w);
    t.add_row({p.name, Table::pct(100.0 * s.computation),
               Table::pct(100.0 * s.communication),
               Table::pct(100.0 * s.memory)});
  }
  t.emit();
  return 0;
}
