// Fig. 1a: accuracy of a small vs a large SNN model across training epochs.
// Paper: a 200-neuron (~1 MB) model reaches ~75% while a 9800-neuron
// (~200 MB) model reaches ~92% on MNIST — larger models are more accurate,
// which is why model size (and hence DRAM traffic) keeps growing.
//
// We sweep a small and a large network (sizes scaled for the host; the
// ordering, not the absolute pair, is the figure's claim).

#include "bench_common.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 1a — model size vs accuracy",
                "larger SNN models achieve higher accuracy (200 neurons "
                "~75% vs 9800 neurons ~92% on MNIST)");
  const std::uint64_t seed = experiment_seed();
  const std::size_t small_n = 100, large_n = 1600;
  const std::size_t n_train = bench::train_samples_for(large_n);
  const std::size_t n_test = bench::test_samples();
  const auto all =
      data::make_dataset(data::Task::kDigits, n_train + n_test, seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);

  Table t("fig01a_model_size_accuracy",
          {"epoch", "small model (N" + std::to_string(small_n) + ")",
           "large model (N" + std::to_string(large_n) + ")"});

  snn::Network small(bench::net_config(small_n));
  snn::Network large(bench::net_config(large_n));
  Rng rng_s(seed), rng_l(seed);
  for (int epoch = 1; epoch <= 3; ++epoch) {
    snn::train_epoch(small, train, rng_s);
    snn::train_epoch(large, train, rng_l);
    const auto labels_s = snn::label_neurons(small, train, rng_s);
    const auto labels_l = snn::label_neurons(large, train, rng_l);
    t.add_row({std::to_string(epoch),
               Table::pct(100.0 * snn::evaluate(small, labels_s, test, rng_s),
                          1),
               Table::pct(100.0 * snn::evaluate(large, labels_l, test, rng_l),
                          1)});
  }
  t.emit();
  return 0;
}
