// sparkxd_serve — long-lived batched-inference daemon.
//
// Loads a serving artifact (sparkxd_run --export-artifact) once, then
// serves classify requests over the length-prefixed TCP protocol
// (src/serve/protocol.hpp) with an admission queue and dynamic batching.
// SIGTERM/SIGINT triggers a graceful drain: every admitted request is
// answered, then the process exits 0 with final counters on stderr.
//
//   sparkxd_serve --artifact model.sxda [--port N] [--port-file FILE]
//                 [--workers N] [--max-batch N] [--max-wait-us N]
//                 [--max-queue N]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// resolved port as a single decimal line, which is how scripted callers
// (CI, the throughput bench) find the server without racing it.
//
// Exit codes: 0 clean shutdown, 2 bad usage, 1 startup failure.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>
#include <thread>

#include "serve/artifact.hpp"
#include "serve/server.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: sparkxd_serve --artifact FILE [options]\n"
      "  --artifact FILE    serving artifact from sparkxd_run "
      "--export-artifact\n"
      "  --port N           TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
      "  --port-file FILE   write the resolved port to FILE once listening\n"
      "  --workers N        worker threads, one engine each (default 1)\n"
      "  --max-batch N      batch size ceiling (default 16)\n"
      "  --max-wait-us N    batching linger after the first queued request\n"
      "                     (default 200)\n"
      "  --max-queue N      admission-queue bound; overflowing classify\n"
      "                     requests get a kQueueFull reply instead of\n"
      "                     growing memory (default 4096)\n"
      "  --help             this message\n"
      "\nSIGTERM/SIGINT drains admitted requests, answers them, and exits "
      "0.\n");
}

long long parse_count(const char* what, const char* spec, long long lo,
                      long long hi) {
  char* end = nullptr;
  const long long v = std::strtoll(spec, &end, 10);
  if (end == spec || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "sparkxd_serve: %s wants an integer in [%lld, %lld]\n",
                 what, lo, hi);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparkxd;

  std::string artifact_path, port_file;
  serve::ServerConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sparkxd_serve: %s needs an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--artifact") {
      artifact_path = next("--artifact");
    } else if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(
          parse_count("--port", next("--port"), 0, 65535));
    } else if (arg == "--port-file") {
      port_file = next("--port-file");
    } else if (arg == "--workers") {
      config.workers = static_cast<std::size_t>(
          parse_count("--workers", next("--workers"), 1, 4096));
    } else if (arg == "--max-batch") {
      config.max_batch = static_cast<std::size_t>(
          parse_count("--max-batch", next("--max-batch"), 1, 1 << 20));
    } else if (arg == "--max-wait-us") {
      config.max_wait_us = static_cast<std::uint64_t>(
          parse_count("--max-wait-us", next("--max-wait-us"), 0, 60'000'000));
    } else if (arg == "--max-queue") {
      config.max_queue = static_cast<std::size_t>(
          parse_count("--max-queue", next("--max-queue"), 1, 1 << 24));
    } else {
      std::fprintf(stderr, "sparkxd_serve: unknown option '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }
  if (artifact_path.empty()) {
    std::fprintf(stderr, "sparkxd_serve: --artifact is required\n");
    print_usage(stderr);
    return 2;
  }

  try {
    const serve::ServingArtifact artifact =
        serve::load_artifact(artifact_path);
    serve::Server server(artifact, config);

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    server.start();
    std::fprintf(stderr,
                 "sparkxd_serve: serving scenario '%s' on 127.0.0.1:%u "
                 "(%zu workers, batch<=%zu, wait<=%lluus, V=%.4f, "
                 "BER=%.3e)\n",
                 artifact.scenario.c_str(), server.port(), config.workers,
                 config.max_batch,
                 static_cast<unsigned long long>(config.max_wait_us),
                 artifact.v_supply, artifact.module_ber);
    if (!port_file.empty()) {
      // Written (and flushed) only after listen() — pollers that see the
      // file can connect immediately.
      std::ofstream pf(port_file, std::ios::trunc);
      pf << server.port() << "\n";
      pf.close();
      if (!pf) {
        std::fprintf(stderr, "sparkxd_serve: cannot write port file '%s'\n",
                     port_file.c_str());
        return 1;
      }
    }

    while (g_signal.load() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::fprintf(stderr, "sparkxd_serve: signal %d, draining\n",
                 g_signal.load());
    server.request_stop();
    server.wait();

    const auto stats = server.stats();
    std::fprintf(stderr,
                 "sparkxd_serve: drained — served=%llu batches=%llu "
                 "max_queue_depth=%llu\n",
                 static_cast<unsigned long long>(stats.served),
                 static_cast<unsigned long long>(stats.batches),
                 static_cast<unsigned long long>(stats.max_queue_depth));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sparkxd_serve: %s\n", e.what());
    return 1;
  }
}
