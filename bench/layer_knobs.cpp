// Per-layer operating-point search: the (voltage x refresh x ECC) energy
// split vs the best uniform assignment.
//
// Runs the deep 2-layer smoke workload (smoke-digits-deep) with the knob
// search enabled and publishes, per layer, the chosen triple with the
// evaluation that justified it, plus the uniform baseline — the
// minimum-energy single triple feasible for every layer. The acceptance
// property of the per-layer assignment is enforced by the exit code: at the
// same accuracy floor, the per-layer total must never exceed the uniform
// baseline (each layer minimizes over a superset of the shared choice).
//
// With --json <path> it writes a sparkxd-bench-v1 report (one phase per
// layer plus the totals) for the CI perf-smoke artifacts.
//
// Exit codes: 0 ok, 1 per-layer total exceeds the uniform baseline (or the
// search went missing), 2 bad usage.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace sparkxd;
  bench::banner("per-layer operating points",
                "each layer picks its own (voltage, refresh, ECC) triple at "
                "the learned tolerance — the split vs one uniform choice");
  const char* json_path = bench::json_out_path(argc, argv);

  const auto* base = scenario::find_scenario("smoke-digits-deep");
  SPARKXD_REQUIRE(base != nullptr, "smoke scenario disappeared");
  scenario::Scenario s = *base;
  s.name += "-knobs";
  s.layer_knobs = true;
  s.ecc = {error::EccKind::kSecded, 64, 0};  // give the search a real ladder
  s.seed = experiment_seed();

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = scenario::run_scenarios({s});
  const double dt_ns = std::chrono::duration<double, std::nano>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  const auto& r = results.front().report;
  if (!r.layer_knobs.has_value()) {
    std::fprintf(stderr, "layer_knobs: the pipeline ran no knob search\n");
    return 1;
  }
  const auto& k = *r.layer_knobs;

  bench::BenchReport report("layer_knobs");
  Table t("layer_knobs", {"layer", "V", "tREFI x", "ecc", "raw BER",
                          "tolerable", "floor", "energy [nJ]"});
  for (std::size_t l = 0; l < k.layers.size(); ++l) {
    const auto& c = k.layers[l];
    t.add_row({std::to_string(l), Table::num(c.v_supply, 3),
               Table::num(c.refresh_multiplier, 1), c.ecc_scheme,
               Table::sci(c.raw_ber), Table::sci(c.tolerable_ber),
               c.meets_floor ? "yes" : "NO", Table::num(c.energy_nj, 1)});
    auto& phase =
        report.add_phase("layer" + std::to_string(l), 1, dt_ns);
    phase.metrics.emplace_back("v_supply", c.v_supply);
    phase.metrics.emplace_back("refresh_multiplier", c.refresh_multiplier);
    phase.metrics.emplace_back("raw_ber", c.raw_ber);
    phase.metrics.emplace_back("tolerable_ber", c.tolerable_ber);
    phase.metrics.emplace_back("energy_nj", c.energy_nj);
    phase.metrics.emplace_back("meets_floor", c.meets_floor ? 1.0 : 0.0);
    phase.metrics.emplace_back(
        "retention_weak_cells",
        static_cast<double>(c.retention_weak_cells));
  }
  if (k.uniform_feasible)
    t.add_row({"uniform", Table::num(k.uniform.v_supply, 3),
               Table::num(k.uniform.refresh_multiplier, 1),
               k.uniform.ecc_scheme, Table::sci(k.uniform.raw_ber),
               Table::sci(k.uniform.tolerable_ber), "yes",
               Table::num(k.uniform_energy_nj, 1)});
  t.emit();

  const double save_pct =
      k.uniform_feasible && k.uniform_energy_nj > 0.0
          ? 100.0 * (1.0 - k.total_energy_nj / k.uniform_energy_nj)
          : 0.0;
  std::printf("per-layer total %.1f nJ vs uniform %.1f nJ (%.2f%% saved)\n",
              k.total_energy_nj,
              k.uniform_feasible ? k.uniform_energy_nj : 0.0, save_pct);

  auto& totals = report.add_phase("totals", 1, dt_ns);
  totals.metrics.emplace_back("total_energy_nj", k.total_energy_nj);
  totals.metrics.emplace_back("uniform_energy_nj", k.uniform_energy_nj);
  totals.metrics.emplace_back("uniform_feasible",
                              k.uniform_feasible ? 1.0 : 0.0);
  totals.metrics.emplace_back("save_pct", save_pct);

  if (json_path != nullptr && !report.write(json_path)) return 2;
  if (k.uniform_feasible && k.total_energy_nj > k.uniform_energy_nj) {
    std::fprintf(stderr,
                 "layer_knobs: per-layer total %.3f nJ EXCEEDS the uniform "
                 "baseline %.3f nJ — the per-layer assignment must never "
                 "lose to a choice it strictly generalizes\n",
                 k.total_energy_nj, k.uniform_energy_nj);
    return 1;
  }
  return 0;
}
