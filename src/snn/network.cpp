#include "snn/network.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::snn {

namespace {
/// Fixed-point scale for the kEventFx synaptic accumulator: Q47.16. Weights
/// live in [0, ~norm_target], so 16 fractional bits keep quantization below
/// 1e-5 of a unit threshold while 47 integer bits can absorb any realistic
/// fan-in without overflow.
constexpr float kFxScale = 65536.0f;

[[nodiscard]] std::size_t mask_words(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}
}  // namespace

InferenceState::InferenceState(const Network& net)
    : encoder_(net.cfg_.max_rate) {
  resync(net);
}

void InferenceState::resync(const Network& net) {
  layers_.clear();
  layers_.reserve(net.layers_.size());
  for (const auto& lay : net.layers_) {
    // Inference freezes the adaptive thresholds (standard for this
    // architecture): the copied thetas stay at the network's trained values.
    LayerSlice slice{lay.lif,
                     std::vector<float>(lay.n_out, 0.0f),
                     {},
                     std::vector<std::uint64_t>(mask_words(lay.n_in), 0),
                     std::vector<std::int64_t>(lay.n_out, 0)};
    slice.lif.set_plastic(false);
    layers_.push_back(std::move(slice));
  }
  generation_ = net.theta_generation_;
}

Network::Layer::Layer(std::size_t n_in_, std::size_t n_out_,
                      const NetworkConfig& cfg)
    : n_in(n_in_),
      n_out(n_out_),
      w(n_in_ * n_out_),
      wt(n_in_ * n_out_),
      lif(n_out_, cfg.lif, cfg.dt_ms),
      traces(n_in_, cfg.stdp.tau_pre_ms, cfg.dt_ms),
      current(n_out_, 0.0f) {}

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg), encoder_(cfg.max_rate) {
  SPARKXD_REQUIRE(cfg.n_inputs > 0 && cfg.n_neurons > 0,
                  "network dimensions must be positive");
  for (const std::size_t h : cfg.hidden_neurons)
    SPARKXD_REQUIRE(h > 0, "hidden layer sizes must be positive");
  SPARKXD_REQUIRE(cfg.timesteps > 0, "need at least one timestep per sample");
  SPARKXD_REQUIRE(cfg.norm_target > 0.0f, "norm_target must be positive");

  const std::size_t n_layers = cfg.n_layers();
  layers_.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l)
    layers_.emplace_back(cfg.layer_inputs(l), cfg.layer_neurons(l), cfg);

  // Uniform random initial weights in [0, 0.3], then normalized — the
  // standard initialization for this architecture. Stream discipline: the
  // OUTPUT layer draws from Rng(seed) — exactly the legacy single-layer
  // stream, so an empty hidden stack reproduces the pre-stack weights bit
  // for bit — while hidden layer l draws from the independent substream
  // Rng(hash_combine(seed, l + 1)).
  for (std::size_t l = 0; l < n_layers; ++l) {
    Rng rng(l + 1 == n_layers ? cfg.seed : hash_combine(cfg.seed, l + 1));
    for (float& w : layers_[l].w) w = static_cast<float>(rng.uniform(0.0, 0.3));
  }
  normalize_rows();
  sync_transpose();
}

void Network::sync_transpose() {
  for (Layer& lay : layers_) {
    if (lay.wt_synced) continue;
    for (std::size_t n = 0; n < lay.n_out; ++n) {
      const float* row = lay.w.data() + n * lay.n_in;
      for (std::size_t i = 0; i < lay.n_in; ++i)
        lay.wt[i * lay.n_out + n] = row[i];
    }
    lay.wt_synced = true;
  }
}

bool Network::transpose_synced() const noexcept {
  for (const Layer& lay : layers_)
    if (!lay.wt_synced) return false;
  return true;
}

void Network::normalize_rows() {
  for (Layer& lay : layers_) {
    const std::size_t ni = lay.n_in;
    for (std::size_t n = 0; n < lay.n_out; ++n) {
      float* row = lay.w.data() + n * ni;
      float sum = 0.0f;
      for (std::size_t i = 0; i < ni; ++i) sum += row[i];
      if (sum <= 0.0f) continue;
      const float scale = cfg_.norm_target / sum;
      for (std::size_t i = 0; i < ni; ++i) row[i] *= scale;
    }
    lay.wt_synced = false;
  }
}

void Network::reset_dynamics() {
  for (Layer& lay : layers_) {
    lay.lif.reset_dynamics();
    lay.traces.reset();
    std::fill(lay.current.begin(), lay.current.end(), 0.0f);
  }
}

std::vector<std::uint32_t> Network::process(const std::vector<float>& image,
                                            bool learn, Rng& rng) {
  SPARKXD_REQUIRE(image.size() == cfg_.n_inputs,
                  "image size must match n_inputs");
  if (!learn) sync_transpose();
  // A learning pass adapts thetas on every layer: any InferenceState
  // snapshotted before it is stale from here on.
  if (learn) ++theta_generation_;
  reset_dynamics();
  for (Layer& lay : layers_) lay.lif.set_plastic(learn);
  encoder_.set_image(image);

  const std::size_t n_layers = layers_.size();
  std::vector<std::uint32_t> counts(layers_.back().n_out, 0);

  for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
    encoder_.step(rng, in_spikes_);

    // Feed the spike wave through the stack: layer l's output spikes are
    // layer l+1's input spikes within the same timestep.
    const std::vector<std::uint32_t>* spikes = &in_spikes_;
    for (std::size_t l = 0; l < n_layers; ++l) {
      Layer& lay = layers_[l];
      if (learn) lay.traces.step(*spikes);

      // Synaptic drive: per-neuron sum over this step's spiking inputs.
      std::fill(lay.current.begin(), lay.current.end(), 0.0f);
      if (!spikes->empty()) {
        const std::size_t ni = lay.n_in;
        const std::size_t nn = lay.n_out;
        if (learn) {
          // Training reads the row-major array directly: STDP updates
          // weight rows mid-sample and the next step's gather must see them.
          for (std::size_t n = 0; n < nn; ++n) {
            const float* row = lay.w.data() + n * ni;
            float acc = 0.0f;
            for (const auto i : *spikes) acc += row[i];
            lay.current[n] = acc;
          }
        } else {
          // Inference: spike-outer / neuron-inner over contiguous
          // transposed columns. Per neuron the additions happen in the same
          // spike order as the row-major walk, so the sums are bitwise
          // identical.
          float* cur = lay.current.data();
          for (const auto i : *spikes) {
            const float* col = lay.wt.data() + std::size_t{i} * nn;
            for (std::size_t n = 0; n < nn; ++n) cur[n] += col[n];
          }
        }
      }

      lay.lif.step(lay.current, lay.out_spikes);
      for (const auto s : lay.out_spikes) {
        if (l + 1 == n_layers) ++counts[s];
        if (learn)
          stdp_post_update(lay.w.data() + static_cast<std::size_t>(s) * lay.n_in,
                           lay.n_in, lay.traces.values(), cfg_.stdp);
      }
      spikes = &lay.out_spikes;
    }
  }

  if (learn) {
    normalize_rows();  // also marks the transposes stale
  }
  return counts;
}

std::vector<std::uint32_t> Network::infer(InferenceState& state,
                                          const std::vector<float>& image,
                                          Rng& rng) const {
  SPARKXD_REQUIRE(image.size() == cfg_.n_inputs,
                  "image size must match n_inputs");
  SPARKXD_REQUIRE(transpose_synced(),
                  "infer needs synced transposes — call sync_transpose()");
  // Stale-state guard: a state snapshotted before a training pass (or a
  // thetas_mut touch) would infer with old thresholds. Resync is cheap —
  // O(neurons) — so just do it.
  if (state.generation_ != theta_generation_) state.resync(*this);
  SPARKXD_REQUIRE(state.layers_.size() == layers_.size(),
                  "InferenceState was built for a different network depth");
  const std::size_t n_layers = layers_.size();
  for (std::size_t l = 0; l < n_layers; ++l) {
    SPARKXD_REQUIRE(state.layers_[l].current.size() == layers_[l].n_out,
                    "InferenceState was built for a different network size");
    state.layers_[l].lif.reset_dynamics();
  }
  state.encoder_.set_image(image);

  std::vector<std::uint32_t> counts(layers_.back().n_out, 0);
  if (cfg_.engine == EngineKind::kDense)
    infer_dense(state, rng, counts);
  else
    infer_event(state, rng, counts);
  return counts;
}

void Network::infer_dense(InferenceState& state, Rng& rng,
                          std::vector<std::uint32_t>& counts) const {
  const std::size_t n_layers = layers_.size();
  for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
    state.encoder_.step(rng, state.in_spikes_);
    const std::vector<std::uint32_t>* spikes = &state.in_spikes_;
    for (std::size_t l = 0; l < n_layers; ++l) {
      const Layer& lay = layers_[l];
      auto& slice = state.layers_[l];
      std::fill(slice.current.begin(), slice.current.end(), 0.0f);
      if (!spikes->empty()) {
        const std::size_t nn = lay.n_out;
        float* cur = slice.current.data();
        for (const auto i : *spikes) {
          const float* col = lay.wt.data() + std::size_t{i} * nn;
          for (std::size_t n = 0; n < nn; ++n) cur[n] += col[n];
        }
      }
      slice.lif.step(slice.current, slice.out_spikes);
      if (l + 1 == n_layers)
        for (const auto s : slice.out_spikes) ++counts[s];
      spikes = &slice.out_spikes;
    }
  }
}

// Event-driven kernel. Same spike waves, same per-neuron addition order —
// only *provably identity* work is skipped:
//   - a layer whose input wave is empty while its LIF state sits exactly at
//     rest (and whose frozen thresholds sit strictly above rest) is skipped
//     without touching its membrane state. at_rest holds from the per-sample
//     reset until the layer's first non-empty wave; there is no mid-sample
//     re-arm because the float decay cannot return v to exact v_rest within
//     realistic timestep counts (it only gets there by underflow, thousands
//     of steps out) — checking every step would cost more than it ever
//     recovers;
//   - an all-zero image short-circuits the whole sample: the encoder has no
//     active pixels, so it would draw nothing from the Rng and every layer
//     would skip every step;
//   - consecutive pure-decay steps reuse the already-zero current buffer
//     instead of re-clearing it.
// The float gather walks the (sorted) event list directly — the identical
// per-neuron addition order as the dense kernel, so the sums are bitwise
// identical, and the contiguous column loop stays vectorizable. The bitset
// spike mask backs the fixed-point gather (kEventFx): there the Q47.16
// int64 accumulation is order-independent, so the word-wise set-bit walk is
// the natural event-set traversal. Weights are quantized at read time —
// no second (stale-prone) quantized copy, delta fault injection keeps
// working unchanged.
void Network::infer_event(InferenceState& state, Rng& rng,
                          std::vector<std::uint32_t>& counts) const {
  const bool fx = cfg_.engine == EngineKind::kEventFx;
  const std::size_t n_layers = layers_.size();

  bool all_skip_ok = true;
  for (auto& slice : state.layers_) {
    slice.skip_ok = slice.lif.silent_at_rest();
    slice.at_rest = true;  // reset_dynamics just put the LIF at exact rest
    std::fill(slice.current.begin(), slice.current.end(), 0.0f);
    slice.current_zero = true;
    all_skip_ok &= slice.skip_ok;
  }
  // Whole-sample short-circuit: no active pixels means zero Rng draws per
  // step, so skipping all timesteps consumes the exact same stream.
  if (state.encoder_.active_pixels() == 0 && all_skip_ok) return;

  for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
    state.encoder_.step(rng, state.in_spikes_);
    const std::vector<std::uint32_t>* spikes = &state.in_spikes_;
    for (std::size_t l = 0; l < n_layers; ++l) {
      const Layer& lay = layers_[l];
      auto& slice = state.layers_[l];

      if (spikes->empty()) {
        if (slice.skip_ok && slice.at_rest) {
          // Empty wave into an at-rest layer: the step is the identity.
          slice.out_spikes.clear();
          spikes = &slice.out_spikes;
          continue;
        }
        // Pure-decay step (no drive, state not at rest — still decaying
        // after earlier input, refractory counters running, or WTA-held
        // above-threshold potentials, which CAN still spike).
        if (!slice.current_zero) {
          std::fill(slice.current.begin(), slice.current.end(), 0.0f);
          slice.current_zero = true;
        }
        slice.lif.step(slice.current, slice.out_spikes);
      } else {
        const std::size_t nn = lay.n_out;
        if (fx) {
          // Build the bitset spike mask for this wave and gather over its
          // set bits, word by word.
          auto& mask = slice.in_mask;
          std::fill(mask.begin(), mask.end(), 0);
          for (const auto i : *spikes)
            mask[i >> 6] |= std::uint64_t{1} << (i & 63);
          auto& acc = slice.acc;
          std::fill(acc.begin(), acc.end(), std::int64_t{0});
          for (std::size_t w = 0; w < mask.size(); ++w) {
            std::uint64_t bits = mask[w];
            while (bits != 0) {
              const std::size_t i =
                  (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              const float* col = lay.wt.data() + i * nn;
              for (std::size_t n = 0; n < nn; ++n)
                acc[n] += static_cast<std::int64_t>(
                    std::llrintf(col[n] * kFxScale));
            }
          }
          for (std::size_t n = 0; n < nn; ++n)
            slice.current[n] = static_cast<float>(acc[n]) / kFxScale;
        } else {
          std::fill(slice.current.begin(), slice.current.end(), 0.0f);
          float* cur = slice.current.data();
          for (const auto i : *spikes) {
            const float* col = lay.wt.data() + std::size_t{i} * nn;
            for (std::size_t n = 0; n < nn; ++n) cur[n] += col[n];
          }
        }
        slice.current_zero = false;
        slice.lif.step(slice.current, slice.out_spikes);
        slice.at_rest = false;
      }

      if (l + 1 == n_layers)
        for (const auto s : slice.out_spikes) ++counts[s];
      spikes = &slice.out_spikes;
    }
  }
}

}  // namespace sparkxd::snn
