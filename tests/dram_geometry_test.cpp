// Tests for DRAM geometry, address codecs and identifiers.

#include <gtest/gtest.h>

#include <set>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "dram/geometry.hpp"

namespace sparkxd::dram {
namespace {

TEST(Geometry, Lpddr3CapacityIs4Gb) {
  const auto g = Geometry::lpddr3_4gb();
  g.validate();
  EXPECT_EQ(g.total_bytes(), 512ull * 1024 * 1024);  // 4 Gb = 512 MB
  EXPECT_EQ(g.row_bytes(), 2048u);
  EXPECT_EQ(g.rows_per_bank(), 32768u);
  EXPECT_EQ(g.burst_bytes(), 32u);
  EXPECT_EQ(g.total_subarrays(), 8u * 64u);
}

TEST(Geometry, DerivedQuantitiesConsistent) {
  const auto g = Geometry::lpddr3_4gb();
  EXPECT_EQ(g.bank_bytes() * g.banks_per_chip, g.chip_bytes());
  EXPECT_EQ(g.row_bytes() * g.rows_per_bank(), g.bank_bytes());
}

TEST(Geometry, ValidateRejectsZeroLevels) {
  auto g = Geometry::lpddr3_4gb();
  g.banks_per_chip = 0;
  EXPECT_THROW(g.validate(), ContractViolation);
}

TEST(Geometry, ValidateRejectsBadBurst) {
  auto g = Geometry::lpddr3_4gb();
  g.burst_columns = 7;  // does not divide 512
  EXPECT_THROW(g.validate(), ContractViolation);
  g.burst_columns = 1024;  // larger than the row
  EXPECT_THROW(g.validate(), ContractViolation);
}

TEST(Address, CodecRoundTripExhaustiveOnSmallGeometry) {
  Geometry g;
  g.channels = 2;
  g.ranks_per_channel = 2;
  g.chips_per_rank = 2;
  g.banks_per_chip = 2;
  g.subarrays_per_bank = 2;
  g.rows_per_subarray = 4;
  g.columns_per_row = 8;
  g.column_bytes = 4;
  g.burst_columns = 4;
  g.validate();
  for (std::uint64_t b = 0; b < g.total_bytes(); b += g.column_bytes) {
    const auto a = decode_linear(g, b);
    EXPECT_EQ(encode_linear(g, a), b);
  }
}

TEST(Address, CodecRoundTripRandomOnFullGeometry) {
  const auto g = Geometry::lpddr3_4gb();
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Address a;
    a.bank = static_cast<std::uint32_t>(rng.index(g.banks_per_chip));
    a.subarray = static_cast<std::uint32_t>(rng.index(g.subarrays_per_bank));
    a.row = static_cast<std::uint32_t>(rng.index(g.rows_per_subarray));
    a.column = static_cast<std::uint32_t>(rng.index(g.columns_per_row));
    const auto enc = encode_linear(g, a);
    EXPECT_EQ(decode_linear(g, enc), a);
  }
}

TEST(Address, LinearAddressesAreColumnMajorWithinRow) {
  const auto g = Geometry::lpddr3_4gb();
  Address a{0, 0, 0, 0, 0, 0, 0};
  Address b = a;
  b.column = 1;
  EXPECT_EQ(encode_linear(g, b), encode_linear(g, a) + g.column_bytes);
}

TEST(Address, CheckAddressRejectsOutOfRange) {
  const auto g = Geometry::lpddr3_4gb();
  Address a;
  a.bank = g.banks_per_chip;
  EXPECT_THROW(check_address(g, a), ContractViolation);
  a = Address{};
  a.column = g.columns_per_row;
  EXPECT_THROW(check_address(g, a), ContractViolation);
  a = Address{};
  a.channel = 1;  // only one channel
  EXPECT_THROW(check_address(g, a), ContractViolation);
}

TEST(Address, DecodeRejectsOutOfRangeByte) {
  const auto g = Geometry::lpddr3_4gb();
  EXPECT_THROW((void)decode_linear(g, g.total_bytes()), ContractViolation);
}

TEST(Identifiers, SubarrayIdsAreDenseAndUnique) {
  const auto g = Geometry::lpddr3_4gb();
  std::set<std::uint64_t> ids;
  for (std::uint32_t ba = 0; ba < g.banks_per_chip; ++ba)
    for (std::uint32_t su = 0; su < g.subarrays_per_bank; ++su) {
      Address a{0, 0, 0, ba, su, 0, 0};
      const auto id = subarray_id(g, a);
      EXPECT_LT(id, g.total_subarrays());
      ids.insert(id);
    }
  EXPECT_EQ(ids.size(), g.total_subarrays());
}

TEST(Identifiers, BankRowCombinesSubarrayAndRow) {
  const auto g = Geometry::lpddr3_4gb();
  Address a{0, 0, 0, 0, 2, 5, 0};
  EXPECT_EQ(bank_row(g, a), 2u * g.rows_per_subarray + 5u);
}

TEST(Identifiers, BankIdDistinguishesBanks) {
  const auto g = Geometry::lpddr3_4gb();
  Address a{0, 0, 0, 3, 0, 0, 0};
  Address b{0, 0, 0, 4, 0, 0, 0};
  EXPECT_NE(bank_id(g, a), bank_id(g, b));
}

TEST(Identifiers, CellBitIndexUniquePerBit) {
  const auto g = Geometry::lpddr3_4gb();
  const Address a{0, 0, 0, 1, 2, 3, 4};
  std::set<std::uint64_t> cells;
  for (std::uint32_t bit = 0; bit < 32; ++bit)
    cells.insert(cell_bit_index(g, a, bit));
  EXPECT_EQ(cells.size(), 32u);
  // Adjacent columns do not overlap bit ranges.
  Address b = a;
  b.column += 1;
  EXPECT_EQ(cell_bit_index(g, b, 0), cell_bit_index(g, a, 0) + 32);
}

TEST(Identifiers, CellBitIndexRejectsWideBit) {
  const auto g = Geometry::lpddr3_4gb();
  EXPECT_THROW((void)cell_bit_index(g, Address{}, 32), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::dram
