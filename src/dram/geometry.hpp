#pragma once
// DRAM organization model (paper §II-B1, Fig. 5a).
//
// A module is organized as channel / rank / chip / bank / subarray / row /
// column. The default configuration models the LPDDR3-1600 4 Gb x32 device
// the paper evaluates: 8 banks per chip, 2 KB rows, 64 subarrays per bank.
// A "column" here is one 4-byte word; a burst (BL8) transfers 8 consecutive
// columns = 32 B, the unit in which synaptic weights are fetched.

#include <cstdint>

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace sparkxd::dram {

/// Counts of each level of the DRAM hierarchy.
struct Geometry {
  std::uint32_t channels = 1;
  std::uint32_t ranks_per_channel = 1;
  std::uint32_t chips_per_rank = 1;   ///< x32 LPDDR3: one chip fills the bus
  std::uint32_t banks_per_chip = 8;
  std::uint32_t subarrays_per_bank = 64;
  std::uint32_t rows_per_subarray = 512;  ///< 32768 rows/bank
  std::uint32_t columns_per_row = 512;    ///< 4-byte words; 2 KB rows
  std::uint32_t column_bytes = 4;
  std::uint32_t burst_columns = 8;  ///< BL8: 8 columns = 32 B per burst

  /// The paper's LPDDR3-1600 4 Gb configuration (the default above).
  [[nodiscard]] static Geometry lpddr3_4gb() { return {}; }

  [[nodiscard]] std::uint32_t rows_per_bank() const noexcept {
    return subarrays_per_bank * rows_per_subarray;
  }
  [[nodiscard]] std::uint64_t row_bytes() const noexcept {
    return std::uint64_t{columns_per_row} * column_bytes;
  }
  [[nodiscard]] std::uint64_t burst_bytes() const noexcept {
    return std::uint64_t{burst_columns} * column_bytes;
  }
  [[nodiscard]] std::uint64_t bank_bytes() const noexcept {
    return row_bytes() * rows_per_bank();
  }
  [[nodiscard]] std::uint64_t chip_bytes() const noexcept {
    return bank_bytes() * banks_per_chip;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return chip_bytes() * chips_per_rank * ranks_per_channel * channels;
  }
  [[nodiscard]] std::uint64_t total_subarrays() const noexcept {
    return std::uint64_t{channels} * ranks_per_channel * chips_per_rank *
           banks_per_chip * subarrays_per_bank;
  }
  /// Validates that every level has at least one element.
  void validate() const;
};

/// A fully decomposed DRAM location. `row` is the row index *within the
/// subarray*; `column` is a 4-byte-word index within the row.
struct Address {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t chip = 0;
  std::uint32_t bank = 0;
  std::uint32_t subarray = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;

  friend bool operator==(const Address&, const Address&) = default;
};

/// Flat identifier of a subarray across the whole module (for error
/// profiles); layout: ((channel*ranks + rank)*chips + chip)*banks + bank,
/// then *subarrays + subarray.
[[nodiscard]] std::uint64_t subarray_id(const Geometry& g, const Address& a);

/// Flat identifier of a bank across the module.
[[nodiscard]] std::uint64_t bank_id(const Geometry& g, const Address& a);

/// Row index within the bank (subarray-major).
[[nodiscard]] std::uint32_t bank_row(const Geometry& g, const Address& a);

/// Unique linear *bit* coordinate of bit `bit_in_column` (0..8*column_bytes)
/// of the word at `a` — the cell coordinate hashed by the weak-cell model.
[[nodiscard]] std::uint64_t cell_bit_index(const Geometry& g, const Address& a,
                                           std::uint32_t bit_in_column);

/// Byte-address codec: the canonical linearization used by the baseline
/// mapping ("subsequent addresses in a DRAM bank"): bytes advance through
/// columns of a row, then rows of a bank (subarray-major), then banks, then
/// chips, ranks, channels.
[[nodiscard]] std::uint64_t encode_linear(const Geometry& g, const Address& a);
[[nodiscard]] Address decode_linear(const Geometry& g, std::uint64_t byte_addr);

/// Bounds-checks an address against the geometry.
void check_address(const Geometry& g, const Address& a);

}  // namespace sparkxd::dram
