#pragma once
// Dataset substrate.
//
// The paper evaluates on MNIST and Fashion-MNIST. Those files are not
// available in this offline environment, so we substitute deterministic
// *procedural* datasets with the same interface contract the experiments rely
// on: 28x28 grayscale images in [0,1], 10 classes, a harder second task
// (see DESIGN.md §2 for the substitution rationale).

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace sparkxd::data {

/// A labelled set of same-sized grayscale images, pixel values in [0, 1].
struct Dataset {
  std::size_t width = 0;
  std::size_t height = 0;
  /// images[i] has width*height pixels, row-major.
  std::vector<std::vector<float>> images;
  /// labels[i] in [0, num_classes).
  std::vector<std::uint8_t> labels;
  std::size_t num_classes = 0;
  std::string name;

  [[nodiscard]] std::size_t size() const noexcept { return images.size(); }
  [[nodiscard]] std::size_t pixels() const noexcept { return width * height; }

  /// Splits off the first `n` samples into a new dataset (view-by-copy).
  [[nodiscard]] Dataset take(std::size_t n) const;
  /// Returns samples [n, size()).
  [[nodiscard]] Dataset drop(std::size_t n) const;
};

/// Which synthetic task to generate.
enum class Task : std::uint8_t {
  kDigits,   ///< MNIST stand-in: stroke-rendered digits 0-9.
  kFashion,  ///< Fashion-MNIST stand-in: garment silhouettes (harder).
};

[[nodiscard]] const char* to_string(Task t) noexcept;

/// Generates `n` samples of the given task; class labels are balanced
/// round-robin. Deterministic in (task, n, seed).
[[nodiscard]] Dataset make_dataset(Task task, std::size_t n,
                                   std::uint64_t seed);

/// Per-class mean images (centroids); used by tests to check separability.
[[nodiscard]] std::vector<std::vector<float>> class_centroids(
    const Dataset& ds);

}  // namespace sparkxd::data
