#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double mean(const std::vector<double>& v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) noexcept {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double percentile(std::vector<double> v, double p) {
  SPARKXD_REQUIRE(!v.empty(), "percentile of empty sample");
  SPARKXD_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  // Partial selection instead of a full sort: place element lo, then the
  // upper neighbour (if interpolation needs it) is the minimum of the tail.
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(lo),
                   v.end());
  const double v_lo = v[lo];
  if (frac <= 0.0 || lo + 1 >= v.size()) return v_lo;
  const double v_hi = *std::min_element(
      v.begin() + static_cast<std::ptrdiff_t>(lo) + 1, v.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  SPARKXD_REQUIRE(n >= 1, "linspace needs n >= 1");
  std::vector<double> out(n);
  if (n == 1) {
    out[0] = lo;
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + step * static_cast<double>(i);
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  SPARKXD_REQUIRE(lo > 0.0 && hi > 0.0, "logspace needs positive endpoints");
  auto exps = linspace(std::log10(lo), std::log10(hi), n);
  for (double& e : exps) e = std::pow(10.0, e);
  return exps;
}

double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

double interp(const std::vector<double>& xs, const std::vector<double>& ys,
              double x) {
  SPARKXD_REQUIRE(xs.size() == ys.size() && !xs.empty(),
                  "interp needs equal-sized non-empty tables");
  SPARKXD_REQUIRE(std::is_sorted(xs.begin(), xs.end()),
                  "interp needs xs sorted ascending");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  // Find the bracketing segment.
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const auto i = static_cast<std::size_t>(it - xs.begin());
  const double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
  return ys[i - 1] * (1.0 - t) + ys[i] * t;
}

}  // namespace sparkxd
