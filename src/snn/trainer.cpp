#include "snn/trainer.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace sparkxd::snn {

void train_epoch(Network& net, const data::Dataset& ds, Rng& rng) {
  SPARKXD_REQUIRE(ds.pixels() == net.config().n_inputs,
                  "dataset pixel count must match the network input width");
  for (std::size_t i = 0; i < ds.size(); ++i)
    (void)net.process(ds.images[i], /*learn=*/true, rng);
}

NeuronLabels label_neurons(Network& net, const data::Dataset& ds, Rng& rng) {
  SPARKXD_REQUIRE(ds.size() > 0, "cannot label neurons on an empty dataset");
  const std::size_t n = net.config().n_neurons;
  const std::size_t k = ds.num_classes;
  // responses[n][c] = summed spikes of neuron n over class-c samples.
  std::vector<double> responses(n * k, 0.0);
  std::vector<std::size_t> class_count(k, 0);

  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto counts = net.process(ds.images[i], /*learn=*/false, rng);
    const auto c = ds.labels[i];
    ++class_count[c];
    for (std::size_t j = 0; j < n; ++j) responses[j * k + c] += counts[j];
  }

  NeuronLabels out;
  out.num_classes = k;
  out.label.assign(n, -1);
  out.bias.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double best = 0.0;
    double total = 0.0;
    std::int32_t best_c = -1;
    for (std::size_t c = 0; c < k; ++c) {
      // Average response per presented sample of that class.
      const double avg = class_count[c]
                             ? responses[j * k + c] /
                                   static_cast<double>(class_count[c])
                             : 0.0;
      total += responses[j * k + c];
      if (avg > best) {
        best = avg;
        best_c = static_cast<std::int32_t>(c);
      }
    }
    out.label[j] = best_c;
    out.bias[j] = total / static_cast<double>(ds.size());
  }
  return out;
}

std::int32_t vote_spike_counts(const std::vector<std::uint32_t>& counts,
                               const NeuronLabels& labels) {
  std::vector<double> votes(labels.num_classes, 0.0);
  std::vector<std::size_t> members(labels.num_classes, 0);
  for (std::size_t j = 0; j < counts.size(); ++j) {
    const auto c = labels.label[j];
    if (c < 0) continue;
    // Bias-corrected vote: a neuron only contributes its response *excess*
    // over its labelling-time mean, so indiscriminate firing cancels.
    votes[static_cast<std::size_t>(c)] +=
        static_cast<double>(counts[j]) - labels.bias[j];
    ++members[static_cast<std::size_t>(c)];
  }
  double best = 0.0;
  std::int32_t best_c = -1;
  bool first = true;
  for (std::size_t c = 0; c < votes.size(); ++c) {
    if (members[c] == 0) continue;
    const double avg = votes[c] / static_cast<double>(members[c]);
    if (first || avg > best) {
      best = avg;
      best_c = static_cast<std::int32_t>(c);
      first = false;
    }
  }
  return best_c;
}

std::int32_t predict(Network& net, const NeuronLabels& labels,
                     const std::vector<float>& image, Rng& rng) {
  SPARKXD_REQUIRE(labels.label.size() == net.config().n_neurons,
                  "label table must match the network size");
  return vote_spike_counts(net.process(image, /*learn=*/false, rng), labels);
}

namespace {

/// Scores samples [begin, end) through `state`, one forked Rng per sample.
void score_span(const Network& net, InferenceState& state,
                const NeuronLabels& labels, const data::Dataset& ds,
                std::uint64_t stream, std::size_t begin, std::size_t end,
                std::vector<std::uint8_t>& correct) {
  for (std::size_t i = begin; i < end; ++i) {
    Rng sample_rng(hash_combine(stream, i));
    const auto counts = net.infer(state, ds.images[i], sample_rng);
    correct[i] = vote_spike_counts(counts, labels) ==
                 static_cast<std::int32_t>(ds.labels[i]);
  }
}

double accuracy_of(const std::vector<std::uint8_t>& correct) {
  std::size_t n_correct = 0;
  for (const std::uint8_t c : correct) n_correct += c;
  return static_cast<double>(n_correct) / static_cast<double>(correct.size());
}

}  // namespace

double evaluate(const Network& net, const NeuronLabels& labels,
                const data::Dataset& ds, Rng& rng) {
  SPARKXD_REQUIRE(ds.size() > 0, "cannot evaluate on an empty dataset");
  SPARKXD_REQUIRE(labels.label.size() == net.config().n_neurons,
                  "label table must match the network size");
  if (!net.transpose_synced()) {
    // Cold path: one private synced copy for the whole call (never one per
    // chunk). Hot callers sync beforehand and share `net` across workers.
    Network synced = net;
    synced.sync_transpose();
    return evaluate(std::as_const(synced), labels, ds, rng);
  }
  // Inference is per-sample independent (the membrane dynamics reset per
  // sample and the weights are read-only), so samples are scored
  // concurrently: each chunk owns an InferenceState and each sample forks
  // its spike-train Rng from one parent draw, making the accuracy
  // bit-identical at every thread count.
  const std::uint64_t stream = rng.next_u64();
  std::vector<std::uint8_t> correct(ds.size(), 0);
  parallel_for_chunks(
      ds.size(), [&](std::size_t begin, std::size_t end, std::size_t) {
        InferenceState state(net);
        score_span(net, state, labels, ds, stream, begin, end, correct);
      });
  return accuracy_of(correct);
}

double evaluate(Network& net, const NeuronLabels& labels,
                const data::Dataset& ds, Rng& rng) {
  // Scratch overload: sync the transposed inference copy in place (the only
  // mutation — weights and thetas are untouched), then share the network
  // read-only across the scoring workers.
  net.sync_transpose();
  return evaluate(std::as_const(net), labels, ds, rng);
}

double evaluate(const Network& net, InferenceState& state,
                const NeuronLabels& labels, const data::Dataset& ds,
                Rng& rng) {
  SPARKXD_REQUIRE(ds.size() > 0, "cannot evaluate on an empty dataset");
  SPARKXD_REQUIRE(labels.label.size() == net.config().n_neurons,
                  "label table must match the network size");
  const std::uint64_t stream = rng.next_u64();
  std::vector<std::uint8_t> correct(ds.size(), 0);
  score_span(net, state, labels, ds, stream, 0, ds.size(), correct);
  return accuracy_of(correct);
}

TrainedModel train_and_label(const NetworkConfig& cfg,
                             const data::Dataset& train,
                             const data::Dataset& test, std::size_t epochs,
                             Rng& rng) {
  TrainedModel m{Network(cfg), {}, 0.0};
  for (std::size_t e = 0; e < epochs; ++e) train_epoch(m.net, train, rng);
  m.labels = label_neurons(m.net, train, rng);
  m.clean_accuracy = evaluate(m.net, m.labels, test, rng);
  return m;
}

}  // namespace sparkxd::snn
