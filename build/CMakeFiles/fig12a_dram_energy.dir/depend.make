# Empty dependencies file for fig12a_dram_energy.
# This may be replaced when dependencies are built.
