#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hpp"

namespace sparkxd {

namespace {
thread_local bool tl_in_parallel = false;
}  // namespace

bool in_parallel_region() noexcept { return tl_in_parallel; }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t k = std::min(thread_count(), n);
  if (k <= 1 || tl_in_parallel) {
    // Serial path (SPARKXD_THREADS=1, single item, or nested inside a
    // worker): same items in the same index order, no threads.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mutex;
  std::exception_ptr first_error;

  const auto worker = [&]() {
    tl_in_parallel = true;
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    tl_in_parallel = false;
  };

  std::vector<std::thread> threads;
  threads.reserve(k - 1);
  try {
    for (std::size_t t = 0; t + 1 < k; ++t) threads.emplace_back(worker);
  } catch (...) {
    // Thread exhaustion: degrade to however many workers started (plus the
    // caller) — items are pulled from the shared cursor either way. Without
    // this, unwinding past joinable threads would std::terminate.
  }
  worker();  // the caller is worker k-1
  tl_in_parallel = false;
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t parallel_chunk_count(std::size_t n) {
  // Nested calls run inline on one worker, so splitting would only multiply
  // per-chunk setup (e.g. private state copies) with no parallelism to
  // show for it. Results are chunk-partition invariant by contract.
  if (tl_in_parallel) return 1;
  return std::min(thread_count(), std::max<std::size_t>(n, 1));
}

void parallel_for_chunks(
    const std::size_t n,
    const std::function<void(std::size_t begin, std::size_t end,
                             std::size_t chunk)>& body,
    std::size_t n_chunks) {
  if (n == 0) return;
  const std::size_t k =
      n_chunks ? std::min(n_chunks, std::max<std::size_t>(n, 1))
               : parallel_chunk_count(n);
  parallel_for(k, [&](std::size_t c) {
    const std::size_t begin = c * n / k;
    const std::size_t end = (c + 1) * n / k;
    if (begin < end) body(begin, end, c);
  });
}

}  // namespace sparkxd
