#pragma once
// Shared setup for the paper-reproduction bench binaries.
//
// Every bench prints the rows/series of one table or figure of the paper
// (see DESIGN.md §5 for the experiment index) as an ASCII Table, and writes
// CSV when SPARKXD_CSV_DIR is set. Accuracy experiments honour SPARKXD_SCALE
// (default 1.0, sized for a single-core host) and SPARKXD_SEED.

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "core/fault_aware.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::bench {

/// The paper's network sizes (number of excitatory neurons).
inline const std::vector<std::size_t> kPaperSizes = {400, 900, 1600, 2500,
                                                     3600};

/// The paper's BER grid for Figs. 8 and 11.
inline const std::vector<double> kPlotBers = {1e-9, 1e-7, 1e-5, 1e-3};

/// Training-set size for a network of `neurons` neurons: larger networks
/// need more presentations to label all receptive fields (the paper trains
/// on the full MNIST training set for every size; we scale down for the
/// single-core host, keeping samples roughly proportional to capacity).
inline std::size_t train_samples_for(std::size_t neurons) {
  return scaled(400 + neurons / 6, 120);
}

inline std::size_t test_samples() { return scaled(150, 60); }

/// Standard network config for a bench run.
inline snn::NetworkConfig net_config(std::size_t neurons) {
  snn::NetworkConfig cfg;
  cfg.n_neurons = neurons;
  cfg.seed = experiment_seed();
  return cfg;
}

/// Prints a one-line header so bench output is self-describing.
inline void banner(const char* experiment, const char* claim) {
  std::printf("\n### SparkXD reproduction — %s\n### paper claim: %s\n",
              experiment, claim);
  std::printf("### scale=%.2f seed=%llu threads=%zu\n", workload_scale(),
              static_cast<unsigned long long>(experiment_seed()),
              thread_count());
}

// ---------------------------------------------------------------------------
// Machine-readable bench reports (schema "sparkxd-bench-v1").
//
// Every bench can collect named phases (wall-clock total + rep count +
// free-form scalar metrics) into a BenchReport and write it as JSON so the
// perf trajectory is tracked by files instead of scraped stdout. The layout
// is stable — fixed key order, std::to_chars numbers via common/json — so
// identical results serialize byte-identically; the wall-clock values
// themselves of course vary run to run (CI archives them as trend
// artifacts, no thresholds). Canonical consumer: bench/pipeline_hotpath,
// whose CI artifact is BENCH_4.json.

/// One timed phase of a bench run.
struct BenchPhase {
  std::string name;
  std::size_t reps = 1;   ///< work items the total covers
  double total_ns = 0.0;  ///< wall clock across all reps
  /// Extra scalar metrics, serialized in insertion order.
  std::vector<std::pair<std::string, double>> metrics;
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Adds a phase and returns it for metric attachment. References stay
  /// valid across later add_phase calls (phases live in a deque).
  BenchPhase& add_phase(std::string name, std::size_t reps,
                        double total_ns) {
    phases_.push_back({std::move(name), reps, total_ns, {}});
    return phases_.back();
  }

  [[nodiscard]] std::string to_json() const {
    json::Writer w;
    w.begin_object();
    w.field("schema", "sparkxd-bench-v1");
    w.field("bench", bench_);
    w.field("scale", workload_scale());
    w.field("seed", experiment_seed());
    w.field("threads", static_cast<std::uint64_t>(thread_count()));
    w.key("phases").begin_array();
    for (const auto& p : phases_) {
      w.begin_object();
      w.field("name", p.name);
      w.field("reps", static_cast<std::uint64_t>(p.reps));
      w.field("total_ns", p.total_ns);
      w.field("ns_per_rep",
              p.total_ns / static_cast<double>(p.reps ? p.reps : 1));
      w.key("metrics").begin_object();
      for (const auto& [k, v] : p.metrics) w.field(k, v);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str() + "\n";
  }

  /// Writes the JSON document to `path`; returns false (with a stderr note)
  /// on I/O failure so benches can exit non-zero.
  bool write(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (out) {
      out << to_json();
      out.flush();  // surface late I/O errors (e.g. ENOSPC) before checking
    }
    if (!out) {
      std::fprintf(stderr, "bench: cannot write JSON report to '%s'\n",
                   path.c_str());
      return false;
    }
    std::printf("JSON report written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_;
  std::deque<BenchPhase> phases_;  ///< stable references for add_phase
};

/// Parses the shared `--json <path>` bench flag; returns nullptr when
/// absent. Exits with code 2 on a missing argument so misuse is loud.
inline const char* json_out_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != "--json") continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: --json needs a file path\n", argv[0]);
      std::exit(2);
    }
    return argv[i + 1];
  }
  return nullptr;
}

}  // namespace sparkxd::bench
