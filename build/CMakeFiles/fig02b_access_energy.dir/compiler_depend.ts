# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02b_access_energy.
