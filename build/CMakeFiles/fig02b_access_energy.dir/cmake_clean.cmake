file(REMOVE_RECURSE
  "CMakeFiles/fig02b_access_energy.dir/bench/fig02b_access_energy.cpp.o"
  "CMakeFiles/fig02b_access_energy.dir/bench/fig02b_access_energy.cpp.o.d"
  "fig02b_access_energy"
  "fig02b_access_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02b_access_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
