#pragma once
// STDP weight update (postsynaptic-spike-triggered formulation; see the
// StdpParams doc comment in params.hpp for the rule and its provenance).

#include <cstddef>
#include <vector>

#include "snn/params.hpp"

namespace sparkxd::snn {

/// Presynaptic spike traces: x_i <- x_i * exp(-dt/tau) each step, set to 1
/// when input i spikes. Values stay in [0, 1].
class PreTraces {
 public:
  PreTraces(std::size_t n_inputs, float tau_ms, float dt_ms);

  void reset();
  /// Decays all traces by one step, then sets spiking inputs' traces to 1.
  void step(const std::vector<std::uint32_t>& input_spikes);

  [[nodiscard]] const std::vector<float>& values() const noexcept {
    return x_;
  }

 private:
  float decay_;
  std::vector<float> x_;
};

/// Applies the STDP update to one neuron's weight row at a postsynaptic
/// spike:  w_i += eta * (x_pre_i - x_target) * (w_max - w_i), clamped to
/// [w_min, w_max]. `w_row` points at n_inputs contiguous weights.
void stdp_post_update(float* w_row, std::size_t n_inputs,
                      const std::vector<float>& x_pre, const StdpParams& p);

}  // namespace sparkxd::snn
