// Tests for the common foundation: RNG determinism and distribution
// statistics, bit utilities, numeric helpers, table emission, env knobs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <string_view>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace sparkxd {
namespace {

// ---------------------------------------------------------------- Rng basics

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicAndDoesNotAdvanceParent) {
  Rng parent(7);
  const auto before = Rng(7).next_u64();
  Rng f1 = parent.fork(42);
  Rng f2 = parent.fork(42);
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
  EXPECT_EQ(parent.next_u64(), before);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += f1.next_u64() == f2.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(13);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(3));
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMeanOneParameterization) {
  // lognormal(-sigma^2/2, sigma) has mean 1 — the subarray-profile
  // normalization relies on this.
  Rng rng(31);
  const double sigma = 0.8;
  RunningStat s;
  for (int i = 0; i < 200000; ++i)
    s.add(rng.lognormal(-0.5 * sigma * sigma, sigma));
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
}

TEST(Rng, PoissonSmallLambdaMoments) {
  Rng rng(37);
  RunningStat s;
  for (int i = 0; i < 50000; ++i)
    s.add(static_cast<double>(rng.poisson(3.5)));
  EXPECT_NEAR(s.mean(), 3.5, 0.1);
  EXPECT_NEAR(s.variance(), 3.5, 0.2);
}

TEST(Rng, PoissonLargeLambdaMoments) {
  Rng rng(41);
  RunningStat s;
  for (int i = 0; i < 50000; ++i)
    s.add(static_cast<double>(rng.poisson(200.0)));
  EXPECT_NEAR(s.mean(), 200.0, 1.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(200.0), 0.5);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(43);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(47);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(59);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(61);
  auto s = rng.sample_without_replacement(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleRejectsOverdraw) {
  Rng rng(67);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), ContractViolation);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, AdjacentIdsDecorrelate) {
  // Consecutive cell addresses must not produce correlated scores.
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 1000; ++i) out.insert(hash_combine(42, i));
  EXPECT_EQ(out.size(), 1000u);
}

// ----------------------------------------------------------------- bit utils

TEST(Bits, FloatRoundTrip) {
  for (const float f : {0.0f, 1.0f, -2.5f, 3.14159f, 1e-30f}) {
    EXPECT_EQ(bits_to_float(float_to_bits(f)), f);
  }
}

TEST(Bits, FlipBitIsInvolution) {
  const std::uint32_t w = 0xDEADBEEF;
  for (unsigned b = 0; b < 32; ++b) EXPECT_EQ(flip_bit(flip_bit(w, b), b), w);
}

TEST(Bits, FlipFloatSignBit) {
  EXPECT_FLOAT_EQ(flip_float_bit(1.5f, 31), -1.5f);
}

TEST(Bits, FlipFloatExponentMsbIsLarge) {
  // The paper's label-2 observation: MSB-side flips change weights a lot.
  const float w = 0.1f;
  const float corrupted = flip_float_bit(w, 30);
  EXPECT_GT(std::abs(corrupted), 1e6f);
}

TEST(Bits, FlipFloatMantissaLsbIsSmall) {
  const float w = 0.1f;
  const float corrupted = flip_float_bit(w, 0);
  EXPECT_NEAR(corrupted, w, 1e-6f);
  EXPECT_NE(corrupted, w);
}

TEST(Bits, FlipRejectsOutOfRangeBit) {
  EXPECT_THROW((void)flip_float_bit(1.0f, 32), ContractViolation);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance(0x0, 0x0), 0);
  EXPECT_EQ(hamming_distance(0x0, 0xF), 4);
  EXPECT_EQ(hamming_distance(0xFFFFFFFF, 0x0), 32);
}

TEST(Bits, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 8), 16u);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_pow2(64), 6u);
}

// --------------------------------------------------------------------- stats

TEST(Stats, RunningStatMatchesBatch) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStat s;
  for (const double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), mean(xs));
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
  EXPECT_EQ(stddev({5.0}), 0.0);
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, PercentileRejectsEmpty) {
  EXPECT_THROW((void)percentile({}, 50), ContractViolation);
}

TEST(Stats, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Stats, LogspaceEndpointsAndMonotonic) {
  const auto v = logspace(1e-9, 1e-3, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_NEAR(v.front(), 1e-9, 1e-12);
  EXPECT_NEAR(v.back(), 1e-3, 1e-6);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
  EXPECT_NEAR(v[1] / v[0], 10.0, 1e-6);
}

TEST(Stats, InterpClampsAndInterpolates) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp(xs, ys, 3.0), 40.0);
  EXPECT_DOUBLE_EQ(interp(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp(xs, ys, 1.5), 25.0);
}

TEST(Stats, Clamp) {
  EXPECT_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

// --------------------------------------------------------------------- table

TEST(Table, RendersHeaderAndRows) {
  Table t("demo", {"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(39.46), "39.46%");
  EXPECT_EQ(Table::sci(1e-5, 1), "1.0e-05");
}

// ----------------------------------------------------------------------- env

TEST(Env, DoubleFallback) {
  ::unsetenv("SPARKXD_TEST_VAR");
  EXPECT_EQ(env_double("SPARKXD_TEST_VAR", 2.5), 2.5);
  ::setenv("SPARKXD_TEST_VAR", "7.5", 1);
  EXPECT_EQ(env_double("SPARKXD_TEST_VAR", 2.5), 7.5);
  ::setenv("SPARKXD_TEST_VAR", "garbage", 1);
  EXPECT_EQ(env_double("SPARKXD_TEST_VAR", 2.5), 2.5);
  ::unsetenv("SPARKXD_TEST_VAR");
}

TEST(Env, ScaledAppliesFloor) {
  ::setenv("SPARKXD_SCALE", "0.05", 1);
  EXPECT_EQ(scaled(100, 10), 10u);
  ::setenv("SPARKXD_SCALE", "2", 1);
  EXPECT_EQ(scaled(100, 10), 200u);
  ::unsetenv("SPARKXD_SCALE");
  EXPECT_EQ(scaled(100, 10), 100u);
}

// ---------------------------------------------------------------- JSON core
// The scenario reports diff serialized bytes across thread counts and
// against checked-in goldens, so json::number must be byte-stable over the
// whole finite double range and must refuse the two values that have no
// JSON spelling at all.

TEST(Json, RejectsNonFiniteDoublesWithClearError) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    try {
      (void)json::number(bad);
      FAIL() << "json::number accepted " << bad;
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos);
    }
  }
  // The Writer's double path inherits the rejection.
  json::Writer w;
  w.begin_object().key("x");
  EXPECT_THROW(w.value(std::numeric_limits<double>::quiet_NaN()),
               ContractViolation);
}

TEST(Json, ExtremeMagnitudesRoundTripByteStably) {
  // Shortest-round-trip to_chars output: parsing the text and re-rendering
  // must reproduce the exact bytes, even at the edges of the double range.
  for (const double v :
       {1e-300, 1e300, -1e-300, -1e300, 5e-324 /* min subnormal */,
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::min(), 0.1, 1.0 / 3.0}) {
    const std::string text = json::number(v);
    const double reparsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(reparsed, v) << text;
    EXPECT_EQ(json::number(reparsed), text) << "unstable rendering of " << v;
  }
  EXPECT_EQ(json::number(1e-300), "1e-300");
  EXPECT_EQ(json::number(1e300), "1e+300");
}

TEST(Json, EscapesControlCharacters) {
  // Every byte below 0x20 must come out escaped; the C-style shorthands for
  // the common ones, \u00xx for the rest.
  EXPECT_EQ(json::escape(std::string_view("\x00\x01\x1f", 3)),
            "\\u0000\\u0001\\u001f");
  EXPECT_EQ(json::escape("tab\there"), "tab\\there");
  EXPECT_EQ(json::escape("a\b\f\n\r"), "a\\b\\f\\n\\r");
  EXPECT_EQ(json::escape("quote\" back\\slash"), "quote\\\" back\\\\slash");
  // 0x7f and non-ASCII bytes pass through untouched (JSON strings are UTF-8).
  EXPECT_EQ(json::escape("\x7f\xc3\xa9"), "\x7f\xc3\xa9");
  // Escaped control characters survive a full Writer round through a key
  // and a value without breaking nesting.
  json::Writer w(/*pretty=*/false);
  w.begin_object().field(std::string_view("k\n", 2),
                         std::string_view("v\x01", 2));
  w.end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "{\"k\\n\":\"v\\u0001\"}");
}

// ----------------------------------------------------------------- contracts

TEST(Contracts, ViolationCarriesContext) {
  try {
    SPARKXD_REQUIRE(false, "specific context");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("specific context"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

}  // namespace
}  // namespace sparkxd
