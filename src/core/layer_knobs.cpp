#include "core/layer_knobs.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "dram/controller.hpp"
#include "energy/ber_model.hpp"
#include "energy/power_model.hpp"
#include "energy/voltage_model.hpp"
#include "error/injector.hpp"
#include "error/retention.hpp"
#include "mapping/mapping.hpp"

namespace sparkxd::core {

void LayerKnobsConfig::validate() const {
  SPARKXD_REQUIRE(!refresh_ladder.empty(),
                  "refresh ladder needs at least one multiplier");
  for (std::size_t i = 0; i < refresh_ladder.size(); ++i) {
    const double m = refresh_ladder[i];
    SPARKXD_REQUIRE(std::isfinite(m) && m >= 1.0,
                    "refresh multipliers must be finite and >= 1");
    SPARKXD_REQUIRE(i == 0 || refresh_ladder[i - 1] < m,
                    "refresh ladder must be strictly ascending");
  }
}

namespace {

/// One candidate's evaluation record: written concurrently (one slot per
/// candidate), read sequentially by the selection pass.
struct CandidateEval {
  double energy_nj = 0.0;
  double raw_ber = 0.0;
  double tolerable_ber = 0.0;
  bool feasible = false;
};

/// Retention-failure probability of a module-median cell at multiplier `m`,
/// under the scenario's retention parameters (enabled regardless of the
/// scenario's own refresh mode — the ladder models what each cadence WOULD
/// cost).
double retention_p_fail(const error::ErrorModelSpec& model, double m) {
  error::RetentionSpec spec = model.retention;
  spec.enabled = true;
  spec.interval_multiplier = m;
  return error::retention_fail_probability(spec, 1.0);
}

dram::RefreshPolicy candidate_policy(double m) {
  return m == 1.0 ? dram::RefreshPolicy::nominal()
                  : dram::RefreshPolicy::reduced(m);
}

}  // namespace

LayerKnobsReport assign_layer_knobs(const LayerKnobsConfig& cfg,
                                    const LayerKnobsInputs& in) {
  cfg.validate();
  SPARKXD_REQUIRE(in.profile != nullptr,
                  "knob search needs a subarray profile");
  SPARKXD_REQUIRE(!in.voltages.empty(), "knob search needs a voltage grid");
  const std::size_t n_layers = in.layer_weights.size();
  SPARKXD_REQUIRE(n_layers > 0, "knob search needs at least one layer");
  SPARKXD_REQUIRE(in.layer_ber_th.size() == n_layers &&
                      in.layer_met_target.size() == n_layers,
                  "per-layer tolerance vectors must match the layer count");

  const energy::BerModel ber_model;
  const energy::VoltageModel voltage_model;
  const energy::PowerModel power_model;

  // --- ECC ladder + per-rung placements. -----------------------------------
  // Check storage depends on the code, so each rung lays the module out with
  // its own stored sizes (the cheap baseline walk — candidate ranking needs
  // a consistent traffic model, not the operating-BER-dependent Algorithm-2
  // assignment). Each layer's rows under rung k become the candidate
  // RefreshRegion for every (v, m) pair at that rung.
  const auto ladder_specs = error::ecc_escalation_ladder(in.ecc);
  const std::size_t n_rungs = ladder_specs.size();
  std::vector<std::unique_ptr<error::EccScheme>> schemes;
  schemes.reserve(n_rungs);
  std::vector<std::vector<std::size_t>> stored(n_rungs);
  std::vector<std::vector<error::ChunkPlacement>> places(n_rungs);
  std::vector<std::vector<std::vector<std::uint64_t>>> rows(n_rungs);
  std::vector<std::vector<double>> row_fraction(n_rungs);
  const double total_rows =
      static_cast<double>(in.geometry.total_subarrays()) *
      static_cast<double>(in.geometry.rows_per_subarray);
  for (std::size_t k = 0; k < n_rungs; ++k) {
    schemes.push_back(error::make_ecc_scheme(ladder_specs[k]));
    stored[k].resize(n_layers);
    for (std::size_t l = 0; l < n_layers; ++l)
      stored[k][l] = in.layer_weights[l] +
                     error::ecc_check_float_equiv(*schemes[k],
                                                  in.layer_weights[l]);
    places[k] = mapping::baseline_placement_layers(in.geometry, stored[k]);
    rows[k].resize(n_layers);
    row_fraction[k].resize(n_layers);
    for (std::size_t l = 0; l < n_layers; ++l) {
      auto& r = rows[k][l];
      r.reserve(places[k][l].size());
      for (const auto& addr : places[k][l])
        r.push_back(dram::region_row_id(in.geometry, addr));
      std::sort(r.begin(), r.end());
      r.erase(std::unique(r.begin(), r.end()), r.end());
      row_fraction[k][l] = static_cast<double>(r.size()) / total_rows;
    }
  }

  // --- Evaluate every (layer, voltage, multiplier, rung) candidate. --------
  const std::size_t n_v = in.voltages.size();
  const std::size_t n_m = cfg.refresh_ladder.size();
  std::vector<CandidateEval> table(n_layers * n_v * n_m * n_rungs);
  const auto slot = [&](std::size_t l, std::size_t vi, std::size_t mi,
                        std::size_t ki) {
    return ((l * n_v + vi) * n_m + mi) * n_rungs + ki;
  };
  parallel_for(table.size(), [&](std::size_t idx) {
    const std::size_t ki = idx % n_rungs;
    const std::size_t mi = (idx / n_rungs) % n_m;
    const std::size_t vi = (idx / (n_rungs * n_m)) % n_v;
    const std::size_t l = idx / (n_rungs * n_m * n_v);
    const double v = in.voltages[vi];
    const double m = cfg.refresh_ladder[mi];
    const error::EccScheme& scheme = *schemes[ki];
    CandidateEval eval;

    // Feasibility: the combined raw BER (independent voltage and retention
    // failures composing by union) must stay within what the code absorbs
    // at this layer's learned tolerance — the accuracy floor BER_th was
    // derived under.
    const double p_v = ber_model.ber(v);
    const double p_ret = retention_p_fail(in.error_model, m);
    eval.raw_ber = 1.0 - (1.0 - p_v) * (1.0 - p_ret);
    const double th = in.layer_ber_th[l];
    eval.tolerable_ber = scheme.tolerable_raw_ber(th);
    eval.feasible =
        in.layer_met_target[l] && th > 0.0 && eval.raw_ber <= eval.tolerable_ber;

    // Energy: stream the layer's stored weights (payload + check bits) once
    // through its region, commands dodging the region's own REF cadence;
    // the refresh charge is the per-region term (REFs x row fraction), not
    // a module-wide REF bill — other layers' regions are billed by their
    // own candidates.
    const auto timing = voltage_model.derive_timings(v);
    dram::RefreshRegions plan;
    plan.regions.push_back({candidate_policy(m), rows[ki][l]});
    dram::Controller controller(in.geometry, timing, in.salp,
                                std::move(plan));
    const auto trace = mapping::streaming_read_trace(
        in.geometry, places[ki][l], stored[ki][l]);
    auto stats = controller.run(trace, kBurstArrivalNs);
    std::size_t codewords = 0;
    if (ladder_specs[ki].enabled()) {
      codewords = error::ecc_codeword_count(scheme, in.layer_weights[l]);
      stats.total_time_ns +=
          static_cast<double>(codewords) * scheme.decode_latency_ns();
    }
    auto energy = power_model.trace_energy(stats, v);
    energy.refresh_nj = power_model.region_refresh_energy_nj(
        stats.region_refreshes.empty() ? 0 : stats.region_refreshes[0],
        row_fraction[ki][l], v);
    energy.ecc_nj =
        static_cast<double>(codewords) * scheme.decode_energy_nj();
    eval.energy_nj = energy.total_nj();
    table[slot(l, vi, mi, ki)] = eval;
  });

  // --- Selection. ----------------------------------------------------------
  // "Better" is a value-based strict order — lower energy, then higher
  // (safer) voltage, then lower multiplier, then weaker (cheaper) code — so
  // the winner does not depend on how candidates were enumerated.
  const auto better = [&](std::size_t avi, std::size_t ami, std::size_t aki,
                          double ae, std::size_t bvi, std::size_t bmi,
                          std::size_t bki, double be) {
    if (ae != be) return ae < be;
    if (in.voltages[avi] != in.voltages[bvi])
      return in.voltages[avi] > in.voltages[bvi];
    if (cfg.refresh_ladder[ami] != cfg.refresh_ladder[bmi])
      return cfg.refresh_ladder[ami] < cfg.refresh_ladder[bmi];
    return schemes[aki]->check_bits() < schemes[bki]->check_bits();
  };

  const auto make_choice = [&](std::size_t l, std::size_t vi, std::size_t mi,
                               std::size_t ki, bool feasible) {
    const CandidateEval& eval = table[slot(l, vi, mi, ki)];
    LayerKnobChoice c;
    c.v_supply = in.voltages[vi];
    c.module_ber = ber_model.ber(c.v_supply);
    c.refresh_multiplier = cfg.refresh_ladder[mi];
    c.ecc = ladder_specs[ki];
    c.ecc_scheme = schemes[ki]->name();
    c.raw_ber = eval.raw_ber;
    c.tolerable_ber = eval.tolerable_ber;
    c.energy_nj = eval.energy_nj;
    c.meets_floor = feasible;
    // Weak cells the chosen cadence actually produces in the layer's rows
    // (deterministic per-cell enumeration; consumes no Rng).
    error::ErrorModelSpec spec = in.error_model;
    spec.retention.enabled = true;
    spec.retention.interval_multiplier = c.refresh_multiplier;
    const auto injector = error::ErrorInjector::for_weights(
        in.geometry, *in.profile, spec, places[ki][l], in.layer_weights[l],
        in.seed, std::max(c.module_ber, 1e-12));
    c.retention_weak_cells = injector.retention_candidate_count();
    return c;
  };

  LayerKnobsReport report;
  report.layers.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    bool found = false;
    std::size_t best_vi = 0, best_mi = 0, best_ki = 0;
    for (std::size_t vi = 0; vi < n_v; ++vi)
      for (std::size_t mi = 0; mi < n_m; ++mi)
        for (std::size_t ki = 0; ki < n_rungs; ++ki) {
          const CandidateEval& eval = table[slot(l, vi, mi, ki)];
          if (!eval.feasible) continue;
          if (!found ||
              better(vi, mi, ki, eval.energy_nj, best_vi, best_mi, best_ki,
                     table[slot(l, best_vi, best_mi, best_ki)].energy_nj)) {
            found = true;
            best_vi = vi;
            best_mi = mi;
            best_ki = ki;
          }
        }
    if (!found) {
      // No candidate meets the floor: fall back to the safest triple
      // (highest voltage, datasheet-closest cadence, strongest code) and
      // report the miss honestly.
      best_vi = 0;
      best_mi = 0;
      best_ki = n_rungs - 1;
    }
    report.layers.push_back(make_choice(l, best_vi, best_mi, best_ki, found));
    report.total_energy_nj += report.layers.back().energy_nj;
  }

  // --- Uniform baseline: the best single triple feasible for every layer. --
  bool u_found = false;
  std::size_t u_vi = 0, u_mi = 0, u_ki = 0;
  double u_total = 0.0;
  for (std::size_t vi = 0; vi < n_v; ++vi)
    for (std::size_t mi = 0; mi < n_m; ++mi)
      for (std::size_t ki = 0; ki < n_rungs; ++ki) {
        bool all = true;
        double total = 0.0;
        for (std::size_t l = 0; l < n_layers; ++l) {
          const CandidateEval& eval = table[slot(l, vi, mi, ki)];
          all &= eval.feasible;
          total += eval.energy_nj;
        }
        if (!all) continue;
        if (!u_found || better(vi, mi, ki, total, u_vi, u_mi, u_ki, u_total)) {
          u_found = true;
          u_vi = vi;
          u_mi = mi;
          u_ki = ki;
          u_total = total;
        }
      }
  report.uniform_feasible = u_found;
  if (u_found) {
    report.uniform_energy_nj = u_total;
    report.uniform.v_supply = in.voltages[u_vi];
    report.uniform.module_ber = ber_model.ber(report.uniform.v_supply);
    report.uniform.refresh_multiplier = cfg.refresh_ladder[u_mi];
    report.uniform.ecc = ladder_specs[u_ki];
    report.uniform.ecc_scheme = schemes[u_ki]->name();
    report.uniform.energy_nj = u_total;
    report.uniform.meets_floor = true;
    const CandidateEval& first = table[slot(0, u_vi, u_mi, u_ki)];
    report.uniform.raw_ber = first.raw_ber;
    double tol = first.tolerable_ber;
    for (std::size_t l = 1; l < n_layers; ++l)
      tol = std::min(tol, table[slot(l, u_vi, u_mi, u_ki)].tolerable_ber);
    report.uniform.tolerable_ber = tol;  // the binding layer's constraint
  }
  return report;
}

}  // namespace sparkxd::core
