file(REMOVE_RECURSE
  "CMakeFiles/fig02a_pruning_combination.dir/bench/fig02a_pruning_combination.cpp.o"
  "CMakeFiles/fig02a_pruning_combination.dir/bench/fig02a_pruning_combination.cpp.o.d"
  "fig02a_pruning_combination"
  "fig02a_pruning_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02a_pruning_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
