#include "serve/chaos.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "common/contracts.hpp"
#include "serve/protocol.hpp"

namespace sparkxd::serve {

namespace {

struct ModeField {
  const char* name;
  double ChaosSpec::* field;
};

constexpr ModeField kModes[] = {
    {"torn", &ChaosSpec::torn},       {"drip", &ChaosSpec::drip},
    {"stall", &ChaosSpec::stall},     {"rst", &ChaosSpec::rst},
    {"corrupt", &ChaosSpec::corrupt},
};

double parse_prob(const std::string& spec) {
  std::size_t used = 0;
  double p = -1.0;
  try {
    p = std::stod(spec, &used);
  } catch (...) {
    SPARKXD_REQUIRE(false, "chaos probability is not a number");
  }
  SPARKXD_REQUIRE(used == spec.size() && p >= 0.0 && p <= 1.0,
                  "chaos probability must lie in [0, 1]");
  return p;
}

}  // namespace

ChaosSpec ChaosSpec::parse(const std::string& spec) {
  ChaosSpec out;
  if (spec.empty() || spec == "none") return out;

  std::stringstream ss(spec);
  std::string mode;
  while (std::getline(ss, mode, ',')) {
    SPARKXD_REQUIRE(!mode.empty(), "empty mode in chaos spec");
    std::string name = mode;
    double prob = kDefaultProb;
    if (const auto colon = mode.find(':'); colon != std::string::npos) {
      name = mode.substr(0, colon);
      prob = parse_prob(mode.substr(colon + 1));
    }
    if (name == "all") {
      for (const auto& m : kModes) out.*(m.field) = prob;
      continue;
    }
    bool known = false;
    for (const auto& m : kModes) {
      if (name == m.name) {
        out.*(m.field) = prob;
        known = true;
        break;
      }
    }
    SPARKXD_REQUIRE(known,
                    "unknown chaos mode (want torn|drip|stall|rst|corrupt|all)");
  }
  out.validate();
  return out;
}

bool ChaosSpec::any() const noexcept {
  for (const auto& m : kModes)
    if (this->*(m.field) > 0.0) return true;
  return false;
}

std::string ChaosSpec::to_string() const {
  std::string out;
  std::ostringstream os;
  for (const auto& m : kModes) {
    const double p = this->*(m.field);
    if (p <= 0.0) continue;
    os.str("");
    os << m.name << ':' << p;
    if (!out.empty()) out += ',';
    out += os.str();
  }
  return out.empty() ? "none" : out;
}

void ChaosSpec::validate() const {
  for (const auto& m : kModes) {
    const double p = this->*(m.field);
    SPARKXD_REQUIRE(p >= 0.0 && p <= 1.0,
                    "chaos probability must lie in [0, 1]");
  }
  SPARKXD_REQUIRE(drip_chunk >= 1, "chaos drip chunk must be >= 1 byte");
}

ChaosCounters& ChaosCounters::operator+=(const ChaosCounters& o) noexcept {
  torn += o.torn;
  drip += o.drip;
  stall += o.stall;
  rst += o.rst;
  corrupt += o.corrupt;
  return *this;
}

void rst_close(int fd) {
  // SO_LINGER with zero timeout turns close() into an abortive release:
  // the kernel discards unsent data and fires RST at the peer.
  const ::linger lin{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  ::close(fd);
}

ChaosConnection::ChaosConnection(ChaosSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  spec_.validate();
}

ChaosConnection::Fault ChaosConnection::draw_fault(Rng& rng) {
  // Fixed evaluation order; at most one fault per frame. Each mode draws
  // exactly once whether or not an earlier mode already hit, so the stream
  // consumption — and therefore the whole schedule — is shape-independent.
  Fault fault = Fault::kNone;
  const std::pair<double, Fault> draws[] = {
      {spec_.torn, Fault::kTorn},       {spec_.drip, Fault::kDrip},
      {spec_.stall, Fault::kStall},     {spec_.rst, Fault::kRst},
      {spec_.corrupt, Fault::kCorrupt},
  };
  for (const auto& [p, f] : draws) {
    const bool hit = rng.bernoulli(p);
    if (hit && fault == Fault::kNone) fault = f;
  }
  return fault;
}

bool ChaosConnection::send_frame(int& fd, const std::vector<std::uint8_t>& payload,
                                 bool crc) {
  SPARKXD_REQUIRE(fd >= 0, "chaos send on a closed connection");
  auto wire = frame_wire_bytes(payload, crc);
  // Per-frame fork: frame k's fate depends only on (spec, seed, k), never
  // on how many draws earlier faults consumed.
  Rng frame_rng = rng_.fork(frame_ordinal_++);
  const Fault fault = draw_fault(frame_rng);

  const auto fail = [&fd] {
    ::close(fd);
    fd = -1;
    return false;
  };

  switch (fault) {
    case Fault::kNone:
      if (!send_bytes(fd, wire.data(), wire.size())) return fail();
      return true;

    case Fault::kTorn: {
      ++counters_.torn;
      const auto cut = static_cast<std::size_t>(
          frame_rng.uniform_int(1, static_cast<std::int64_t>(wire.size()) - 1));
      (void)send_bytes(fd, wire.data(), cut);
      rst_close(fd);
      fd = -1;
      return false;
    }

    case Fault::kDrip: {
      ++counters_.drip;
      for (std::size_t off = 0; off < wire.size(); off += spec_.drip_chunk) {
        const std::size_t n = std::min(spec_.drip_chunk, wire.size() - off);
        if (!send_bytes(fd, wire.data() + off, n)) return fail();
        if (off + n < wire.size())
          std::this_thread::sleep_for(
              std::chrono::microseconds(spec_.drip_delay_us));
      }
      return true;
    }

    case Fault::kStall: {
      ++counters_.stall;
      const std::size_t half = wire.size() / 2;
      if (!send_bytes(fd, wire.data(), half)) return fail();
      std::this_thread::sleep_for(std::chrono::microseconds(spec_.stall_us));
      if (!send_bytes(fd, wire.data() + half, wire.size() - half))
        return fail();
      return true;
    }

    case Fault::kRst:
      ++counters_.rst;
      rst_close(fd);
      fd = -1;
      return false;

    case Fault::kCorrupt: {
      ++counters_.corrupt;
      // Flip one bit past the length prefix: payload or CRC trailer, never
      // the framing itself — the stream stays in sync, the CRC check (the
      // only safe way to run this mode) rejects the frame as kBadFrame.
      const auto bit = static_cast<std::size_t>(frame_rng.uniform_int(
          0, static_cast<std::int64_t>((wire.size() - 4) * 8) - 1));
      wire[4 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      if (!send_bytes(fd, wire.data(), wire.size())) return fail();
      return true;
    }
  }
  return true;  // unreachable
}

}  // namespace sparkxd::serve
