#pragma once
// Deterministic chaos injection for the serving layer's frame I/O.
//
// SparkXD injects DRAM faults into the *model* exhaustively; this module
// injects faults into the *network path* with the same discipline: every
// fault decision is drawn from a seeded Rng substream, so a chaos schedule
// is replayable bit for bit from (spec, seed) alone. The injector wraps the
// client's outbound frame writes — from where the server experiences torn
// frames, slow-loris drip reads, mid-frame stalls, abrupt RSTs, and
// bit-corrupted payloads exactly as a hostile or failing peer would
// produce them — and the client's retry policy (serve/client.hpp) must
// recover from every one of them without perturbing the reply digest.
//
// Fault modes (at most one per frame, chosen by per-frame forked streams):
//
//   torn     send a strict prefix of the frame, then RST-close — the
//            server sees a truncated frame (or a mid-frame stall until its
//            read deadline fires) and must drop the connection cleanly
//   drip     send the frame a few bytes at a time with delays — a
//            slow-loris write; survivable when it beats the server's
//            mid-frame read deadline, evicted when it does not
//   stall    send half the frame, sleep, send the rest — one long
//            mid-frame gap instead of drip's many small ones
//   rst      RST-close without sending anything — the request vanishes
//   corrupt  flip one bit somewhere past the length prefix, then send
//            normally — only safe under CRC framing (protocol v2), where
//            the server answers kBadFrame instead of decoding garbage
//
// Spec grammar (sparkxd_replay --chaos):
//   spec  := "none" | "all" | "all:P" | mode ("," mode)*
//   mode  := name [":" P]          P = per-frame probability in [0, 1]
//   name  := torn | drip | stall | rst | corrupt
// e.g. --chaos torn:0.1,corrupt:0.2   or   --chaos all:0.05

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace sparkxd::serve {

/// Which faults to inject and how often. Field defaults are the "none"
/// spec; parse("all") sets every probability to kDefaultProb.
struct ChaosSpec {
  static constexpr double kDefaultProb = 0.05;

  double torn = 0.0;
  double drip = 0.0;
  double stall = 0.0;
  double rst = 0.0;
  double corrupt = 0.0;

  std::size_t drip_chunk = 16;        ///< bytes per dripped write
  std::uint64_t drip_delay_us = 500;  ///< sleep between dripped chunks
  std::uint64_t stall_us = 20'000;    ///< mid-frame stall duration

  /// Parses the grammar above; throws ContractViolation on a bad spec.
  [[nodiscard]] static ChaosSpec parse(const std::string& spec);

  /// True when any fault has a nonzero probability.
  [[nodiscard]] bool any() const noexcept;

  /// Canonical "name:prob,..." form ("none" when inactive).
  [[nodiscard]] std::string to_string() const;

  /// Probabilities in [0, 1], chunk/delays sane; throws otherwise.
  void validate() const;
};

/// Per-kind injection counts (how often each fault actually fired).
struct ChaosCounters {
  std::uint64_t torn = 0;
  std::uint64_t drip = 0;
  std::uint64_t stall = 0;
  std::uint64_t rst = 0;
  std::uint64_t corrupt = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return torn + drip + stall + rst + corrupt;
  }
  ChaosCounters& operator+=(const ChaosCounters& o) noexcept;
};

/// One connection slot's fault injector. The schedule is a pure function
/// of (spec, seed, frame ordinal): frame k's decision comes from
/// rng.fork(k), so it is independent of how earlier faults resolved and
/// identical across reruns — including across the reconnects the faults
/// themselves force.
class ChaosConnection {
 public:
  ChaosConnection(ChaosSpec spec, std::uint64_t seed);

  /// Sends one frame (payload framed exactly as write_frame would, CRC
  /// trailer included when `crc`) through the fault injector. Returns true
  /// when the connection is still usable afterwards; on false the fd has
  /// been closed (injected RST/torn-close, or a real send failure) and the
  /// caller must reconnect — `fd` is set to -1 either way.
  bool send_frame(int& fd, const std::vector<std::uint8_t>& payload, bool crc);

  [[nodiscard]] const ChaosCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const ChaosSpec& spec() const noexcept { return spec_; }

 private:
  enum class Fault { kNone, kTorn, kDrip, kStall, kRst, kCorrupt };

  Fault draw_fault(Rng& rng);

  ChaosSpec spec_;
  Rng rng_;
  std::uint64_t frame_ordinal_ = 0;
  ChaosCounters counters_;
};

/// RST-closes `fd` (SO_LINGER {1, 0} + close): the peer sees ECONNRESET,
/// not an orderly FIN. Used by the injector and available to tests.
void rst_close(int fd);

}  // namespace sparkxd::serve
