// Tests for the deterministic parallel evaluation engine: parallel_for
// semantics (coverage, nesting, exceptions, the SPARKXD_THREADS knob) and
// the framework-wide determinism contract — the full pipeline report, the
// injector's candidate enumeration, and corrupted-accuracy evaluation must
// be bit-identical at every thread count.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/env.hpp"
#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"
#include "test_env_util.hpp"

namespace sparkxd {
namespace {

using testutil::ThreadsOverride;

// ------------------------------------------------------------- parallel_for

TEST(ParallelFor, ThreadCountKnobIsReadPerCall) {
  {
    ThreadsOverride t("3");
    EXPECT_EQ(thread_count(), 3u);
  }
  {
    ThreadsOverride t("1");
    EXPECT_EQ(thread_count(), 1u);
  }
  {
    ThreadsOverride t("0");  // clamped up to 1
    EXPECT_EQ(thread_count(), 1u);
  }
  ThreadsOverride t("100000");  // clamped down to 256
  EXPECT_EQ(thread_count(), 256u);
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  ThreadsOverride threads("4");
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);  // one writer per slot — no atomics needed
  parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, ZeroAndSingleItemWork) {
  ThreadsOverride threads("4");
  parallel_for(0, [](std::size_t) { FAIL() << "no items to run"; });
  int runs = 0;
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ThreadsOverride threads("4");
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunInlineOnTheWorker) {
  ThreadsOverride threads("4");
  EXPECT_FALSE(in_parallel_region());
  const std::size_t outer = 8, inner = 8;
  std::vector<int> hits(outer * inner, 0);
  parallel_for(outer, [&](std::size_t i) {
    EXPECT_TRUE(in_parallel_region());
    parallel_for(inner, [&](std::size_t j) { ++hits[i * inner + j]; });
  });
  EXPECT_FALSE(in_parallel_region());
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForChunks, PartitionIsContiguousCompleteAndOrdered) {
  ThreadsOverride threads("3");
  const std::size_t n = 101;
  ASSERT_EQ(parallel_chunk_count(n), 3u);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(3, {0, 0});
  parallel_for_chunks(
      n, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        ASSERT_LT(chunk, ranges.size());
        ranges[chunk] = {begin, end};
      });
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, n);
}

// ------------------------------------------- thread-count-invariant results

core::PipelineConfig tiny_pipeline_config(std::uint64_t seed = 42) {
  core::PipelineConfig cfg;
  cfg.network.n_neurons = 25;
  cfg.network.seed = seed;
  cfg.train_samples = 100;
  cfg.test_samples = 50;
  cfg.baseline_epochs = 1;
  cfg.fault_training.ber_stages = {1e-5, 1e-3};
  cfg.fault_training.eval_trials = 2;  // exercise the trial-level fan-out
  cfg.voltages = {1.250, 1.100, 1.025};
  cfg.seed = seed;
  return cfg;
}

/// Asserts two pipeline reports are bit-identical, field by field.
void expect_identical(const core::PipelineReport& a,
                      const core::PipelineReport& b) {
  EXPECT_EQ(a.baseline_accuracy, b.baseline_accuracy);
  EXPECT_EQ(a.improved_accuracy, b.improved_accuracy);
  EXPECT_EQ(a.ber_th, b.ber_th);
  EXPECT_EQ(a.met_target, b.met_target);
  EXPECT_EQ(a.baseline_energy_nj, b.baseline_energy_nj);
  EXPECT_EQ(a.baseline_time_ns, b.baseline_time_ns);
  ASSERT_EQ(a.stage_curve.size(), b.stage_curve.size());
  for (std::size_t i = 0; i < a.stage_curve.size(); ++i) {
    EXPECT_EQ(a.stage_curve[i].ber, b.stage_curve[i].ber);
    EXPECT_EQ(a.stage_curve[i].accuracy, b.stage_curve[i].accuracy);
  }
  ASSERT_EQ(a.per_voltage.size(), b.per_voltage.size());
  for (std::size_t i = 0; i < a.per_voltage.size(); ++i) {
    const auto& va = a.per_voltage[i];
    const auto& vb = b.per_voltage[i];
    EXPECT_EQ(va.v_supply, vb.v_supply);
    EXPECT_EQ(va.module_ber, vb.module_ber);
    EXPECT_EQ(va.accuracy, vb.accuracy);
    EXPECT_EQ(va.energy_nj, vb.energy_nj);
    EXPECT_EQ(va.saving_pct, vb.saving_pct);
    EXPECT_EQ(va.speedup, vb.speedup);
    EXPECT_EQ(va.row_hit_rate, vb.row_hit_rate);
    EXPECT_EQ(va.safe_subarrays, vb.safe_subarrays);
    EXPECT_EQ(va.capacity_relaxed, vb.capacity_relaxed);
  }
}

TEST(ParallelDeterminism, PipelineReportIsIdenticalAtOneAndManyThreads) {
  const auto cfg = tiny_pipeline_config();
  core::PipelineReport serial, parallel;
  {
    ThreadsOverride threads("1");
    serial = core::run_pipeline(cfg);
  }
  {
    ThreadsOverride threads("4");
    parallel = core::run_pipeline(cfg);
  }
  expect_identical(serial, parallel);
}

TEST(ParallelDeterminism, GoldenSameSeedSameReport) {
  const auto cfg = tiny_pipeline_config();
  const auto a = core::run_pipeline(cfg);
  const auto b = core::run_pipeline(cfg);
  expect_identical(a, b);
  // And the config actually produced a meaningful run.
  EXPECT_GT(a.baseline_accuracy, 0.0);
  EXPECT_EQ(a.per_voltage.size(), cfg.voltages.size());
}

TEST(ParallelDeterminism, DifferentSeedDifferentReport) {
  // The seed drives dataset synthesis and training, so accuracy must move;
  // baseline DRAM energy is pure geometry + placement and stays put.
  const auto a = core::run_pipeline(tiny_pipeline_config(42));
  const auto b = core::run_pipeline(tiny_pipeline_config(43));
  EXPECT_NE(a.baseline_accuracy, b.baseline_accuracy);
  EXPECT_EQ(a.baseline_energy_nj, b.baseline_energy_nj);
}

TEST(ParallelDeterminism, InjectorEnumerationIsThreadCountInvariant) {
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, 42);
  const std::size_t n_weights = 100000;
  const auto place = mapping::baseline_placement(g, n_weights);

  const auto masks_at = [&](const char* threads_value) {
    ThreadsOverride threads(threads_value);
    const auto inj = error::ErrorInjector::for_weights(g, profile, {}, place,
                                                       n_weights, 42, 1e-3);
    std::vector<float> w(n_weights, 0.0f);
    inj.inject_all_weak(w, 1e-3, {-1e30f, 1e30f});
    std::vector<std::uint32_t> bits(n_weights);
    for (std::size_t i = 0; i < n_weights; ++i) bits[i] = float_to_bits(w[i]);
    return std::pair{inj.candidate_count(), bits};
  };

  const auto [count_1, bits_1] = masks_at("1");
  const auto [count_4, bits_4] = masks_at("4");
  EXPECT_EQ(count_1, count_4);
  EXPECT_GT(count_1, 0u);
  EXPECT_EQ(bits_1, bits_4);
}

}  // namespace
}  // namespace sparkxd
