file(REMOVE_RECURSE
  "CMakeFiles/voltage_explorer.dir/examples/voltage_explorer.cpp.o"
  "CMakeFiles/voltage_explorer.dir/examples/voltage_explorer.cpp.o.d"
  "voltage_explorer"
  "voltage_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
