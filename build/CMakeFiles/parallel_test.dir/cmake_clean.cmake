file(REMOVE_RECURSE
  "CMakeFiles/parallel_test.dir/tests/parallel_test.cpp.o"
  "CMakeFiles/parallel_test.dir/tests/parallel_test.cpp.o.d"
  "parallel_test"
  "parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
