#pragma once
// Environment-variable knobs shared by benches and examples.
//
// SPARKXD_SCALE  — float multiplier (default 1.0) applied to training sample
//                  counts and spike-train lengths in the accuracy experiments.
//                  The default is sized for a single-core host; set 4.0 for a
//                  closer-to-paper run or 0.25 for a smoke run. Experiment
//                  *shapes* are stable across scales.
// SPARKXD_CSV_DIR — when set, each Table additionally writes <name>.csv there.
// SPARKXD_SEED   — global experiment seed (default 42).
// SPARKXD_THREADS — worker threads for common/parallel (default: hardware
//                  concurrency). 1 restores the fully serial path; results
//                  are bit-identical at every setting.

#include <cstdint>
#include <string>

namespace sparkxd {

/// Reads a double-valued env var, falling back to `fallback` when unset/bad.
[[nodiscard]] double env_double(const char* name, double fallback);

/// Reads an integer env var, falling back to `fallback` when unset/bad.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// The global workload scale factor (SPARKXD_SCALE, default 1.0, clamped to
/// [0.05, 100]).
[[nodiscard]] double workload_scale();

/// The global experiment seed (SPARKXD_SEED, default 42).
[[nodiscard]] std::uint64_t experiment_seed();

/// Worker-thread count for parallel_for (SPARKXD_THREADS, default
/// std::thread::hardware_concurrency(), clamped to [1, 256]). Read on every
/// call, so tests may change the knob between runs.
[[nodiscard]] std::size_t thread_count();

/// max(lo, round(base * workload_scale())) — sizing helper for sample counts.
[[nodiscard]] std::size_t scaled(std::size_t base, std::size_t lo = 1);

}  // namespace sparkxd
