#pragma once
// The four probabilistic approximate-DRAM error models of EDEN [15]
// (paper §III). All four share the weak-cell abstraction: a fixed set of
// cells fails probabilistically when the DRAM is operated out of spec; they
// differ in how weakness is distributed across the bank:
//
//   Model-0  uniform random weak cells across the bank        (paper's pick)
//   Model-1  weakness concentrated along bitlines  (vertical stripes)
//   Model-2  weakness concentrated along wordlines (horizontal stripes)
//   Model-3  uniform weak cells, error probability depends on the stored
//            value (a "true" cell flips with p1, a "false" cell with p0)
//
// The paper (and EDEN) use Model-0 for training because it approximates the
// others well and injects fastest; we implement all four so the choice can
// be ablated (bench/ablation_error_models).

#include <cstdint>

#include "error/retention.hpp"

namespace sparkxd::error {

enum class ErrorModelKind : std::uint8_t {
  kModel0Uniform = 0,
  kModel1Bitline = 1,
  kModel2Wordline = 2,
  kModel3DataDependent = 3,
};

[[nodiscard]] const char* to_string(ErrorModelKind k) noexcept;

/// Full error-model specification.
struct ErrorModelSpec {
  ErrorModelKind kind = ErrorModelKind::kModel0Uniform;
  /// Model-3 only: flip probability of a weak cell storing 1 (p1) or 0 (p0).
  /// Kept averaging to the weak-cell failure probability 0.5 so all four
  /// models produce the same expected BER for random data.
  double p1 = 0.75;
  double p0 = 0.25;
  /// Lognormal spread of the per-bitline (Model-1) / per-wordline (Model-2)
  /// weakness multipliers.
  double stripe_sigma = 1.0;
  /// Retention-failure component (error/retention.hpp): an independent
  /// refresh-axis error source that COMPOSES with all four voltage models —
  /// the injector adds the retention-weak cells of the active refresh
  /// interval on top of the voltage-weak cells. Disabled by default.
  RetentionSpec retention;
};

/// Probability that a weak cell fails on a given read. The module BER is
/// (weak-cell density) * kWeakCellFailProb; density is derived from the BER
/// by the injector.
inline constexpr double kWeakCellFailProb = 0.5;

}  // namespace sparkxd::error
