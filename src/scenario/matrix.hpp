#pragma once
// Cross-product expansion of scenario axes.
//
// A ScenarioMatrix names a list of values per evaluation axis (task, network
// size, DRAM organization, error model, voltage grid, seed) and expands to
// the full cross product of Scenarios with deterministic names and ordering
// — the programmatic way to build the paper's Fig. 11/12 grids, the built-in
// registry, and ad-hoc sweeps (bench/scenario_matrix).

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace sparkxd::scenario {

/// Network-size axis value: neuron count plus the data budget that makes it
/// trainable on this host (bench_common keeps samples roughly proportional
/// to capacity; sizes here follow the same rule).
struct SizeSpec {
  std::string name;  ///< e.g. "small"
  std::size_t n_neurons = 64;
  std::size_t train_samples = 250;
  std::size_t test_samples = 100;
  std::size_t baseline_epochs = 1;
};

/// DRAM-organization axis value.
struct GeometrySpec {
  std::string name;  ///< e.g. "commodity", "salp"
  dram::Geometry geometry = dram::Geometry::lpddr3_4gb();
  bool salp = false;
};

/// Error-model axis value.
struct ErrorModelAxis {
  std::string name;  ///< e.g. "m0"
  error::ErrorModelSpec spec;
};

/// Refresh-policy axis value (the second approximation axis).
struct RefreshSpec {
  std::string name;  ///< e.g. "nominal-refresh", "relaxed-refresh-8x"
  dram::RefreshPolicy policy;
};

/// ECC axis value (the third approximation axis). The default disabled
/// value keeps legacy matrices unchanged.
struct EccAxis {
  std::string name;  ///< e.g. "ecc-off", "ecc-secded", "ecc-bch512b"
  error::EccSpec spec;
};

/// Layer-stack axis value (the `layers` axis): spiking hidden layer sizes
/// between the input and the excitatory output layer, input side first.
/// An empty list is the flat single-layer network of the paper.
struct LayerStackSpec {
  std::string name = "flat";
  std::vector<std::size_t> hidden;
};

/// Voltage-grid axis value (strictly descending voltages). Defaults to the
/// paper's five-point grid.
struct VoltageGridSpec {
  std::string name = "v5";
  std::vector<double> voltages = {1.325, 1.250, 1.175, 1.100, 1.025};
};

/// Per-layer knob-search axis value (Scenario::layer_knobs). The default
/// disabled value keeps legacy matrices unchanged.
struct LayerKnobsAxis {
  std::string name = "knobs-off";
  bool enabled = false;
};

/// Axis lists plus the shared knobs every expanded scenario inherits.
/// expand() iterates tasks (outermost), sizes, geometries, error models,
/// layer stacks, ecc schemes, refresh policies, voltage grids, knob
/// searches, seeds (innermost) and names each cell
/// "<task>-<size>-<geometry>-<model>", appending "-<layers>" when the
/// layer-stack axis has more than one value, "-<ecc>" when the ecc axis
/// does, "-<refresh>" when the refresh axis does, "-<grid>" when the grid
/// axis does, "-<knobs>" when the knob-search axis does, and "-s<seed>"
/// when the seed axis does, so single-valued axes keep names short and
/// multi-valued axes keep them unique.
struct ScenarioMatrix {
  std::vector<data::Task> tasks = {data::Task::kDigits};
  std::vector<SizeSpec> sizes;
  std::vector<GeometrySpec> geometries;
  std::vector<ErrorModelAxis> error_models;
  std::vector<LayerStackSpec> layer_stacks = {LayerStackSpec{}};
  std::vector<EccAxis> ecc_schemes = {{"ecc-off", error::EccSpec{}}};
  std::vector<RefreshSpec> refresh_policies = {
      {"ref-off", dram::RefreshPolicy::disabled()}};
  std::vector<VoltageGridSpec> voltage_grids = {VoltageGridSpec{}};
  std::vector<LayerKnobsAxis> knob_searches = {LayerKnobsAxis{}};
  std::vector<std::uint64_t> seeds = {42};

  /// Shared (non-axis) knobs.
  std::vector<double> ber_stages = {1e-5, 1e-3};
  std::size_t eval_trials = 1;

  /// Number of scenarios expand() will produce (product of axis sizes).
  [[nodiscard]] std::size_t size() const noexcept;

  /// The cross product. Throws ContractViolation if any axis is empty or an
  /// axis value is unnamed; every produced scenario passes validate().
  /// Because suffixes are only appended for multi-valued axes, two
  /// different axis tuples could otherwise lower to the same name and
  /// silently shadow each other — expand() guards against that by throwing
  /// with BOTH source tuples when a name collision occurs.
  [[nodiscard]] std::vector<Scenario> expand() const;
};

}  // namespace sparkxd::scenario
