#pragma once
// Per-worker classification engine over a shared, frozen ServingArtifact.
//
// Determinism contract (the serving layer's core guarantee): a request's
// `seed` FULLY determines its reply. The engine derives two streams from
// it —
//
//   inject stream  hash_combine(seed, 0): drives the weak-cell flip
//                  decisions through the artifact's frozen tables, with the
//                  same per-layer discipline as core::evaluate_corrupted
//                  (single layer consumes the stream directly, a deep stack
//                  forks substream l for layer l);
//   spike stream   hash_combine(seed, 1): drives the Poisson encoding of
//                  the request's image.
//
// Nothing else is stochastic, and the scratch weights are restored bit for
// bit after every request (delta injection + revert), so replies are
// replayable regardless of batching, worker assignment, or the order
// requests reach a worker. That is what lets the server batch freely and
// lets a replay client verify a deployment byte for byte.
//
// An Engine is the per-worker mutable half: one corruptible weight copy
// (O(total weights), paid once per worker, not per request) plus one
// snn::InferenceState. The artifact itself is shared read-only across any
// number of engines on any number of threads.

#include <cstdint>
#include <vector>

#include "error/injector.hpp"
#include "serve/artifact.hpp"
#include "snn/network.hpp"

namespace sparkxd::serve {

/// One classification request.
struct ClassifyRequest {
  std::uint64_t id = 0;    ///< echoed in the reply (client correlation)
  std::uint64_t seed = 0;  ///< determinism root: encoding + injected faults
  std::vector<float> image;  ///< n_inputs pixels in [0, 1]
};

/// One classification reply. label/spikes/flips are pure functions of
/// (artifact, request) — the replay digest hashes all of them.
struct ClassifyReply {
  std::uint64_t id = 0;
  std::int32_t label = -1;   ///< predicted class, -1 if no neuron fired
  std::uint32_t spikes = 0;  ///< total output-layer spikes
  std::uint32_t flips = 0;   ///< weak-cell bits flipped for this request

  friend bool operator==(const ClassifyReply&, const ClassifyReply&) = default;
};

class Engine {
 public:
  /// Copies the artifact's network once (the per-worker corruptible copy)
  /// and keeps a pointer to the artifact, which must outlive the engine.
  explicit Engine(const ServingArtifact& artifact);

  /// Classifies one request; deterministic in (artifact, request), no
  /// observable state carried between calls. NOT thread-safe — one engine
  /// per worker thread.
  [[nodiscard]] ClassifyReply classify(const ClassifyRequest& request);

  [[nodiscard]] const ServingArtifact& artifact() const noexcept {
    return *artifact_;
  }

 private:
  const ServingArtifact* artifact_;
  snn::Network scratch_;       ///< private corruptible weight copy
  snn::InferenceState state_;  ///< reused membrane/encoder scratch
  std::vector<std::vector<error::WeightFlip>> flips_;  ///< per-layer deltas
};

}  // namespace sparkxd::serve
