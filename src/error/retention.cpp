#include "error/retention.hpp"

#include <cmath>

namespace sparkxd::error {

void RetentionSpec::validate() const {
  if (!enabled) return;
  SPARKXD_REQUIRE(std::isfinite(interval_multiplier) &&
                      interval_multiplier >= 1.0,
                  "retention interval multiplier must be finite and >= 1");
  SPARKXD_REQUIRE(std::isfinite(median_decades),
                  "retention median must be finite");
  SPARKXD_REQUIRE(std::isfinite(sigma_decades) && sigma_decades > 0.0,
                  "retention sigma must be positive and finite");
}

double retention_fail_probability(const RetentionSpec& spec,
                                  double subarray_weakness) {
  if (!spec.enabled) return 0.0;
  spec.validate();
  SPARKXD_REQUIRE(subarray_weakness >= 0.0,
                  "subarray weakness must be non-negative");
  if (subarray_weakness == 0.0) return 0.0;  // infinitely strong subarray
  const double z = (std::log10(spec.interval_multiplier) +
                    std::log10(subarray_weakness) - spec.median_decades) /
                   spec.sigma_decades;
  // Standard normal CDF via erfc (numerically sound far into the tail).
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

}  // namespace sparkxd::error
