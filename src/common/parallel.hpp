#pragma once
// Deterministic parallel execution for the evaluation pipeline.
//
// Everything SparkXD parallelizes is an index-addressed batch of independent
// work items (supply voltages of a sweep, Monte-Carlo fault-injection
// trials, test samples, burst chunks of a placement). parallel_for runs such
// a batch across worker threads with a shared atomic cursor. Determinism is
// a caller-side contract the whole framework follows: a work item never
// shares an Rng with its siblings — it forks its own stream from the item
// index (see Rng::fork / hash_combine) and writes only to its own output
// slot. Under that contract the result is bit-identical at every thread
// count, which tests/parallel_test.cpp locks in for the full pipeline.
//
// The worker count comes from the SPARKXD_THREADS env knob (common/env);
// SPARKXD_THREADS=1 restores the plain serial loop. Nested parallel_for
// calls (e.g. fault-injection trials inside a per-voltage sweep) execute
// inline on the calling worker, so the pool never oversubscribes and never
// deadlocks on itself.

#include <cstddef>
#include <functional>

namespace sparkxd {

/// True while the calling thread is executing a parallel_for work item.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Runs body(0) .. body(n-1) across up to thread_count() workers (dynamic
/// scheduling). Items must be independent and must not share mutable state
/// (fork Rng streams per item, write per-item slots). The first exception
/// thrown by any item is rethrown on the caller after all workers stop.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Number of contiguous ranges parallel_for_chunks splits [0, n) into:
/// min(thread_count(), max(n, 1)), or 1 inside a parallel region (nested
/// calls run inline, so splitting would only multiply per-chunk setup).
/// Size per-chunk output buffers with this, in the same scope that calls
/// parallel_for_chunks.
[[nodiscard]] std::size_t parallel_chunk_count(std::size_t n);

/// Splits [0, n) into contiguous ascending ranges and runs
/// body(begin, end, chunk_index) for each, in parallel. Use when per-item
/// work is small (amortizes per-item overhead) or when each worker needs a
/// private copy of some state (build it once per chunk). Concatenating
/// per-chunk outputs in chunk order always yields ascending item order,
/// independent of the thread count.
///
/// `n_chunks` = 0 uses parallel_chunk_count(n). Callers that size per-chunk
/// output buffers MUST pass the count they sized for — the knob behind
/// parallel_chunk_count is re-read from the environment on every call, so
/// two separate calls are not guaranteed to agree.
void parallel_for_chunks(
    const std::size_t n,
    const std::function<void(std::size_t begin, std::size_t end,
                             std::size_t chunk)>& body,
    std::size_t n_chunks = 0);

}  // namespace sparkxd
