#pragma once
// Command-level DRAM energy model — the stand-in for DRAMPower [8]
// (paper Figs. 2b, 12a and Table I).
//
// Energy is split into:
//  * per-command dynamic charges (ACT, PRE, RD, WR array energy) that scale
//    with (V_supply / V_nom)^2 — array charging is C·V^2 work;
//  * a per-burst I/O term on the separate (fixed) output-driver rail, which
//    does NOT scale with the array supply — this is why a row-buffer *hit*
//    saves less (~31%) from voltage scaling than a conflict (~38-42%),
//    reproducing the 31%-42% per-access range of §I-B;
//  * background power over the simulated trace makespan, scaling linearly
//    with voltage (roughly constant standby current).
//
// Absolute per-command charges are calibrated so the nominal 1.35 V
// hit/miss/conflict access energies land in the 2-8 nJ range of Fig. 2b.

#include "dram/timing.hpp"
#include "dram/trace.hpp"

namespace sparkxd::energy {

/// Energy split of a simulated trace, in nanojoules.
struct EnergyBreakdown {
  double act_nj = 0.0;
  double pre_nj = 0.0;
  double read_nj = 0.0;   ///< array+peripheral dynamic energy of RD bursts
  double write_nj = 0.0;  ///< array+peripheral dynamic energy of WR bursts
  double io_nj = 0.0;     ///< output-driver energy (voltage-independent)
  double background_nj = 0.0;
  double refresh_nj = 0.0;  ///< periodic REF commands over the makespan
  double ecc_nj = 0.0;      ///< ECC decode logic per fetched codeword
                            ///< (fixed logic rail, like io_nj)

  [[nodiscard]] double total_nj() const noexcept {
    return act_nj + pre_nj + read_nj + write_nj + io_nj + background_nj +
           refresh_nj + ecc_nj;
  }
};

class PowerModel {
 public:
  /// Per-command charges at V_nom = 1.35 V, in nJ; background in mW.
  struct Params {
    double e_act_nj = 3.2;
    double e_pre_nj = 2.1;
    double e_rd_nj = 1.5;
    double e_wr_nj = 1.6;
    double e_io_nj = 0.10;        ///< per burst, fixed rail
    double p_background_mw = 3.0;
    /// Refresh: one all-bank REF every tREFI; its charge is array work and
    /// scales with V^2 like the other dynamic components.
    double e_refresh_nj = 28.0;
    double t_refi_ns = 7800.0;
  };

  PowerModel() : PowerModel(Params{}) {}
  explicit PowerModel(const Params& p) : p_(p) {}

  /// (V / V_nom)^2 — scaling of array dynamic energy.
  [[nodiscard]] static double dynamic_scale(double v_supply);
  /// V / V_nom — scaling of background power.
  [[nodiscard]] static double background_scale(double v_supply);

  /// Energy of a whole simulated trace at the given supply voltage. Refresh
  /// is charged by the legacy makespan-proportional estimate (one REF per
  /// Params::t_refi_ns of makespan) — the idealization used when the
  /// controller did not simulate refresh.
  [[nodiscard]] EnergyBreakdown trace_energy(const dram::TraceStats& stats,
                                             double v_supply) const;

  /// Refresh-policy-aware variant. When the policy is simulated
  /// (nominal/reduced) the refresh term charges the REF commands the
  /// controller actually counted (`stats.refreshes`) — so a reduced-rate
  /// policy shows its energy win directly; when the policy is disabled it
  /// falls back to the legacy estimate above, byte for byte.
  [[nodiscard]] EnergyBreakdown trace_energy(
      const dram::TraceStats& stats, double v_supply,
      const dram::RefreshPolicy& refresh) const;

  /// Refresh charge of one region under per-region refresh: `refreshes` REF
  /// commands (the controller's per-region count), each retiring only
  /// `row_fraction` of the module's rows — an all-bank REF's charge scaled by
  /// the fraction of rows actually refreshed, V^2-scaled like all array
  /// work. Summing this over disjoint regions replaces the module-wide
  /// refresh term for a per-layer operating-point evaluation.
  [[nodiscard]] double region_refresh_energy_nj(std::uint64_t refreshes,
                                                double row_fraction,
                                                double v_supply) const;

  /// Energy of ONE access of the given row-buffer condition (Fig. 2b):
  /// command dynamic energy + I/O + background over the access latency
  /// implied by `timing` (pass voltage-derived timings for reduced-voltage
  /// points).
  [[nodiscard]] double access_energy_nj(dram::RowBufferOutcome outcome,
                                        double v_supply,
                                        const dram::TimingParams& timing) const;

  /// Pure array dynamic energy per fully-charged access (ACT+RD+PRE),
  /// excluding the fixed I/O rail — the "DRAM energy-per-access" quantity
  /// whose savings Table I reports.
  [[nodiscard]] double array_energy_per_access_nj(double v_supply) const;

  [[nodiscard]] const Params& params() const noexcept { return p_; }

 private:
  Params p_;
};

}  // namespace sparkxd::energy
