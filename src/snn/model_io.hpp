#pragma once
// Trained-model serialization.
//
// A deployment trains once (possibly on a workstation) and ships the
// improved model to the edge device, so the trained state — weights,
// adaptive thresholds, neuron labels/biases, and the exact network
// configuration — must round-trip through a file.
//
// Format: a small versioned binary container ("SXDM"), little-endian,
// fixed-width fields; no external dependencies.

#include <iosfwd>
#include <string>

#include "snn/trainer.hpp"

namespace sparkxd::snn {

/// Serializes a trained, labelled model to `path`. Throws ContractViolation
/// on I/O failure.
void save_model(const TrainedModel& model, const std::string& path);

/// Loads a model previously written by save_model. Throws on I/O failure,
/// bad magic/version, or a corrupt payload (size mismatch).
[[nodiscard]] TrainedModel load_model(const std::string& path);

/// Stream overloads: write/read the same container (magic + version + the
/// full payload) at the stream's current position, so a model section can
/// be embedded inside a larger file — the serving artifact does exactly
/// this. The file-path functions above forward here.
void save_model(const TrainedModel& model, std::ostream& os);
[[nodiscard]] TrainedModel load_model(std::istream& is);

}  // namespace sparkxd::snn
