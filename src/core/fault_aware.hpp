#pragma once
// Improving and analyzing the SNN error tolerance — the paper's Algorithm 1
// (§IV-B and §IV-C).
//
// Fault-aware training: starting from the baseline model, bit errors are
// injected into the DRAM-resident weights at a stage BER and the network is
// retrained for one or more STDP epochs; the BER is then raised (the paper
// uses 10x increments) and the process repeats up to the maximum rate. The
// network gradually learns not to rely on weights stored in weak cells
// (weak-cell locations are fixed — see ErrorInjector).
//
// Tolerance analysis: a linear search over the BER stages finds the largest
// rate whose corrupted-inference accuracy still meets the user bound
// (valid because the accuracy-vs-BER curve is monotonically non-increasing,
// paper Fig. 8).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "error/ecc_scheme.hpp"
#include "error/injector.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::core {

/// Load-time range clipping of DRAM-resident weights (the EDEN-style
/// mitigation this paper's error-injection setup inherits): any weight read
/// back outside [w_min, kDefaultWeightClip] is clamped. Without it a single
/// upward exponent-bit flip turns a ~0.08 weight into w_max and one corrupted
/// neuron can hijack the WTA competition; with it, bit errors degrade
/// accuracy gradually — the regime the paper's Fig. 11 operates in.
inline constexpr float kDefaultWeightClip = 0.4f;

/// Fault-aware training schedule (paper Algorithm 1 inputs).
struct FaultTrainingConfig {
  /// Ascending BER stages; paper: decades from 1e-9 to 1e-3.
  std::vector<double> ber_stages = {1e-9, 1e-8, 1e-7, 1e-6,
                                    1e-5, 1e-4, 1e-3};
  std::size_t epochs_per_stage = 1;
  /// Target accuracy bound: accuracy must stay within this of the error-free
  /// baseline (paper: 1%).
  double accuracy_bound = 0.01;
  /// Injections of fresh error draws per accuracy evaluation (averaged).
  std::size_t eval_trials = 1;
  /// Range-clipping bound applied when corrupted weights are loaded.
  float weight_clip = kDefaultWeightClip;
  /// Calibrate the readout (neuron labels + bias) on corrupted weights —
  /// the deployed labelling pass runs against the approximate DRAM, so
  /// neurons inflated by their weak cells carry high bias and are
  /// discounted by the vote.
  bool calibrate_under_errors = true;
};

/// One (BER, accuracy) point of an error-tolerance curve.
struct TolerancePoint {
  double ber = 0.0;
  double accuracy = 0.0;
};

/// Output of Algorithm 1.
struct FaultAwareResult {
  snn::TrainedModel improved;  ///< model_1 of Algorithm 1
  double ber_th = 0.0;         ///< maximum tolerable BER meeting the bound
  bool met_target = false;     ///< true if any stage met the bound
  std::vector<TolerancePoint> stage_curve;  ///< accuracy after each stage
};

/// Per-layer injector list for a layer-stack network: entry `l` corrupts
/// layer `l`'s DRAM-resident weights; a null entry leaves that layer clean
/// (used by the per-layer tolerance analysis to corrupt one layer at a
/// time). Size must equal the network's n_layers().
using LayerInjectors = std::vector<const error::ErrorInjector*>;

/// Evaluates a model with weights corrupted at `ber` through `injector`.
/// Averages `trials` fresh error draws; trials run concurrently (see
/// common/parallel), each with its own Rng substream keyed off one draw
/// from `rng`, so the result is deterministic in `rng`'s state and
/// identical at every thread count. The hot path is delta-based: the flip
/// candidates at `ber` are frozen once (ErrorInjector::freeze) and shared
/// across all trials, each worker owns one corruptible weight copy plus a
/// reused snn::InferenceState, and between trials only the recorded flips
/// are reverted instead of restoring a full snapshot — bit-identical to
/// the snapshot loop (tests/core_test.cpp proves it against a reference
/// implementation). `net` is untouched (const — required for the
/// concurrent per-voltage sweep to share one trained model). `weight_clip`
/// is the load-time range clip applied to corrupted values.
[[nodiscard]] double evaluate_corrupted(const snn::Network& net,
                                        const snn::NeuronLabels& labels,
                                        const error::ErrorInjector& injector,
                                        double ber, const data::Dataset& test,
                                        Rng& rng, std::size_t trials = 1,
                                        float weight_clip = kDefaultWeightClip);

/// Layer-stack generalization: every non-null entry of `injectors` corrupts
/// its layer's weights at `ber` each trial. Rng stream discipline: a
/// single-layer stack consumes the trial's injection stream directly — the
/// legacy discipline, so the single-injector overload above is bit-identical
/// to this one with a one-element list — while an L>1 stack forks per-layer
/// injection substreams (layer l draws from inject_rng.fork(l)), keeping
/// each layer's error draw independent of which other layers are corrupted
/// (what lets the per-layer tolerance analysis reuse the same draws).
[[nodiscard]] double evaluate_corrupted(const snn::Network& net,
                                        const snn::NeuronLabels& labels,
                                        const LayerInjectors& injectors,
                                        double ber, const data::Dataset& test,
                                        Rng& rng, std::size_t trials = 1,
                                        float weight_clip = kDefaultWeightClip);

/// Per-layer ECC protection for corrupted evaluation: the scheme plus the
/// check words computed from that layer's CLEAN weights
/// (error::ecc_encode_buffer). A null scheme leaves the layer on the legacy
/// clip-only path. Size must equal the network's n_layers().
struct LayerEccState {
  const error::EccScheme* scheme = nullptr;
  const std::vector<std::uint64_t>* checks = nullptr;
};
using LayerEcc = std::vector<LayerEccState>;

/// Scrub statistics accumulated over all Monte-Carlo trials of one
/// evaluate_corrupted_ecc call, per layer.
struct EccScrubTotals {
  std::uint64_t codewords = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  std::uint64_t bits_corrected = 0;
};

/// ECC-protected variant of the layer-stack evaluate_corrupted: each trial
/// injects RAW bit flips (no load-time clip — the decoder must see exactly
/// the stored bits), scrubs only the corrupted codewords against the
/// layer's check words (error::ecc_scrub_codewords), and applies the range
/// clip solely to words of codewords the code could not restore. Rng
/// stream discipline is identical to evaluate_corrupted, so with every
/// scheme null this consumes the same draws (the clip timing differs, so
/// use the plain overload for unprotected runs). When `totals` is non-null
/// it is resized to n_layers and filled with per-layer scrub counts summed
/// over trials, deterministically (trial-ascending reduction).
[[nodiscard]] double evaluate_corrupted_ecc(
    const snn::Network& net, const snn::NeuronLabels& labels,
    const LayerInjectors& injectors, const LayerEcc& ecc, double ber,
    const data::Dataset& test, Rng& rng, std::size_t trials = 1,
    float weight_clip = kDefaultWeightClip,
    std::vector<EccScrubTotals>* totals = nullptr);

/// Algorithm 1: improves the baseline model's error tolerance and records
/// the largest stage BER whose accuracy meets
/// (baseline.clean_accuracy - cfg.accuracy_bound).
/// `injector` must be built over the training-time (baseline) placement.
[[nodiscard]] FaultAwareResult improve_error_tolerance(
    const snn::TrainedModel& baseline, const FaultTrainingConfig& cfg,
    const error::ErrorInjector& injector, const data::Dataset& train,
    const data::Dataset& test, Rng& rng);

/// Layer-stack generalization of Algorithm 1: every stage injects each
/// layer's weights through its own injector (layers in order, all drawing
/// serially from `rng`) before the retraining epoch, so STDP learns around
/// the weak cells of EVERY layer's DRAM region. One-element lists reproduce
/// the single-injector overload bit for bit.
[[nodiscard]] FaultAwareResult improve_error_tolerance(
    const snn::TrainedModel& baseline, const FaultTrainingConfig& cfg,
    const LayerInjectors& injectors, const data::Dataset& train,
    const data::Dataset& test, Rng& rng);

/// §IV-C tolerance analysis on an already-trained model: evaluates the
/// corrupted accuracy at every BER in `rates` (ascending) and returns the
/// curve plus the largest rate meeting `target_accuracy`.
struct ToleranceAnalysis {
  std::vector<TolerancePoint> curve;
  double ber_th = 0.0;
  bool met_target = false;
};

[[nodiscard]] ToleranceAnalysis analyze_tolerance(
    const snn::Network& net, const snn::NeuronLabels& labels,
    const error::ErrorInjector& injector, const std::vector<double>& rates,
    double target_accuracy, const data::Dataset& test, Rng& rng,
    std::size_t trials = 1);

/// PER-LAYER tolerance analysis (the EnforceSNN/EDEN structure): for each
/// layer of the stack, runs analyze_tolerance with ONLY that layer
/// corrupted (all other layers clean) and returns one curve + BER_th per
/// layer, in layer order. Different layers tolerate different BERs — early
/// layers feed every later computation while the output layer is protected
/// by the bias-corrected population vote — and the per-layer BER_th vector
/// is what the error-aware mapping consumes to give each layer its own
/// placement threshold. `injectors` must be fully populated (one non-null
/// injector per layer, built over that layer's placement). Layers consume
/// `rng` serially, so the result is deterministic in its state.
[[nodiscard]] std::vector<ToleranceAnalysis> analyze_layer_tolerance(
    const snn::Network& net, const snn::NeuronLabels& labels,
    const LayerInjectors& injectors, const std::vector<double>& rates,
    double target_accuracy, const data::Dataset& test, Rng& rng,
    std::size_t trials = 1,
    float weight_clip = kDefaultWeightClip);

}  // namespace sparkxd::core
