#include "energy/power_model.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "energy/voltage_model.hpp"

namespace sparkxd::energy {

double PowerModel::dynamic_scale(double v_supply) {
  SPARKXD_REQUIRE(v_supply > 0.0, "supply voltage must be positive");
  const double r = v_supply / kNominalVdd;
  return r * r;
}

double PowerModel::background_scale(double v_supply) {
  SPARKXD_REQUIRE(v_supply > 0.0, "supply voltage must be positive");
  return v_supply / kNominalVdd;
}

EnergyBreakdown PowerModel::trace_energy(const dram::TraceStats& stats,
                                         double v_supply) const {
  const double s2 = dynamic_scale(v_supply);
  const double s1 = background_scale(v_supply);
  EnergyBreakdown e;
  e.act_nj = static_cast<double>(stats.activates) * p_.e_act_nj * s2;
  e.pre_nj = static_cast<double>(stats.precharges) * p_.e_pre_nj * s2;
  e.read_nj = static_cast<double>(stats.reads) * p_.e_rd_nj * s2;
  e.write_nj = static_cast<double>(stats.writes) * p_.e_wr_nj * s2;
  e.io_nj = static_cast<double>(stats.reads + stats.writes) * p_.e_io_nj;
  // mW * ns = pJ; /1000 -> nJ.
  e.background_nj = p_.p_background_mw * s1 * stats.total_time_ns / 1000.0;
  // Periodic refresh over the makespan (array work -> V^2 scaling).
  e.refresh_nj = std::floor(stats.total_time_ns / p_.t_refi_ns) *
                 p_.e_refresh_nj * s2;
  return e;
}

EnergyBreakdown PowerModel::trace_energy(
    const dram::TraceStats& stats, double v_supply,
    const dram::RefreshPolicy& refresh) const {
  if (!refresh.simulated()) return trace_energy(stats, v_supply);
  EnergyBreakdown e = trace_energy(stats, v_supply);
  e.refresh_nj = static_cast<double>(stats.refreshes) * p_.e_refresh_nj *
                 dynamic_scale(v_supply);
  return e;
}

double PowerModel::region_refresh_energy_nj(std::uint64_t refreshes,
                                            double row_fraction,
                                            double v_supply) const {
  SPARKXD_REQUIRE(row_fraction >= 0.0 && row_fraction <= 1.0,
                  "region row fraction must lie in [0, 1]");
  return static_cast<double>(refreshes) * p_.e_refresh_nj * row_fraction *
         dynamic_scale(v_supply);
}

double PowerModel::access_energy_nj(dram::RowBufferOutcome outcome,
                                    double v_supply,
                                    const dram::TimingParams& timing) const {
  const double s2 = dynamic_scale(v_supply);
  const double s1 = background_scale(v_supply);
  double dynamic = p_.e_rd_nj * s2;
  double latency_ns = timing.t_cl + timing.t_burst;
  switch (outcome) {
    case dram::RowBufferOutcome::kHit:
      break;
    case dram::RowBufferOutcome::kMiss:
      dynamic += p_.e_act_nj * s2;
      latency_ns += timing.t_rcd;
      break;
    case dram::RowBufferOutcome::kConflict:
      dynamic += (p_.e_act_nj + p_.e_pre_nj) * s2;
      latency_ns += timing.t_rp + timing.t_rcd;
      break;
  }
  const double background =
      p_.p_background_mw * s1 * latency_ns / 1000.0;
  return dynamic + p_.e_io_nj + background;
}

double PowerModel::array_energy_per_access_nj(double v_supply) const {
  return (p_.e_act_nj + p_.e_rd_nj + p_.e_pre_nj) * dynamic_scale(v_supply);
}

}  // namespace sparkxd::energy
