// Fig. 8: error-tolerance analysis of an improved N900 model — the
// accuracy-vs-BER curve is (generally) decreasing, so a linear search finds
// the maximum tolerable BER (BER_th) that still meets the minimum target
// accuracy (baseline accuracy - 1%).

#include "bench_common.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 8 — tolerance analysis (N900)",
                "error-tolerance curve is generally decreasing; linear "
                "search finds BER_th meeting the accuracy target");
  const std::uint64_t seed = experiment_seed();
  const std::size_t neurons = 900;
  const std::size_t n_train = bench::train_samples_for(neurons);
  const std::size_t n_test = bench::test_samples();
  const auto all =
      data::make_dataset(data::Task::kDigits, n_train + n_test, seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);
  Rng rng(seed);

  // Baseline + fault-aware improvement (Algorithm 1).
  const auto cfg = bench::net_config(neurons);
  auto baseline = snn::train_and_label(cfg, train, test, 2, rng);
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, seed);
  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto injector = error::ErrorInjector::for_weights(g, profile, {}, place, n_weights, seed,
                                      1e-3);
  core::FaultTrainingConfig ft;
  ft.ber_stages = {1e-7, 1e-5, 1e-3};
  auto improved =
      core::improve_error_tolerance(baseline, ft, injector, train, test, rng);

  // §IV-C linear search over the BER grid for both models.
  const double target = baseline.clean_accuracy - ft.accuracy_bound;
  const auto base_curve =
      core::analyze_tolerance(baseline.net, baseline.labels, injector,
                              bench::kPlotBers, target, test, rng, 2);
  const auto impr_curve = core::analyze_tolerance(
      improved.improved.net, improved.improved.labels, injector,
      bench::kPlotBers, target, test, rng, 2);

  Table t("fig08_tolerance_analysis",
          {"BER", "baseline + approx DRAM", "improved + approx DRAM",
           "meets target?"});
  for (std::size_t i = 0; i < bench::kPlotBers.size(); ++i) {
    t.add_row({Table::sci(bench::kPlotBers[i]),
               Table::pct(100.0 * base_curve.curve[i].accuracy, 1),
               Table::pct(100.0 * impr_curve.curve[i].accuracy, 1),
               impr_curve.curve[i].accuracy >= target ? "yes" : "no"});
  }
  t.emit();

  Table s("fig08_summary", {"quantity", "value"});
  s.add_row({"baseline accuracy (accurate DRAM)",
             Table::pct(100.0 * baseline.clean_accuracy, 1)});
  s.add_row({"minimum target accuracy", Table::pct(100.0 * target, 1)});
  s.add_row({"maximum tolerable BER (BER_th)",
             impr_curve.met_target ? Table::sci(impr_curve.ber_th)
                                   : "none"});
  s.emit();
  return 0;
}
