file(REMOVE_RECURSE
  "CMakeFiles/energy_voltage_test.dir/tests/energy_voltage_test.cpp.o"
  "CMakeFiles/energy_voltage_test.dir/tests/energy_voltage_test.cpp.o.d"
  "energy_voltage_test"
  "energy_voltage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_voltage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
