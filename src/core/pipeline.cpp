#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "dram/controller.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::core {

void PipelineConfig::validate() const {
  SPARKXD_REQUIRE(train_samples > 0, "need at least one training sample");
  SPARKXD_REQUIRE(test_samples > 0, "need at least one test sample");
  SPARKXD_REQUIRE(network.n_inputs > 0 && network.n_neurons > 0,
                  "network must have inputs and neurons");
  SPARKXD_REQUIRE(!fault_training.ber_stages.empty(),
                  "fault-training schedule needs at least one BER stage");
  for (std::size_t i = 0; i < fault_training.ber_stages.size(); ++i) {
    const double b = fault_training.ber_stages[i];
    SPARKXD_REQUIRE(std::isfinite(b) && b > 0.0 && b < 1.0,
                    "BER stages must lie in (0, 1)");
    SPARKXD_REQUIRE(i == 0 || fault_training.ber_stages[i - 1] < b,
                    "BER stages must be strictly ascending");
  }
  SPARKXD_REQUIRE(!voltages.empty(),
                  "voltage grid is empty — need at least one supply voltage");
  for (std::size_t i = 0; i < voltages.size(); ++i) {
    SPARKXD_REQUIRE(std::isfinite(voltages[i]) && voltages[i] > 0.0,
                    "supply voltages must be positive and finite");
    SPARKXD_REQUIRE(i == 0 || voltages[i - 1] > voltages[i],
                    "voltage grid must be strictly descending "
                    "(paper order, 1.325 V down to 1.025 V)");
  }
  geometry.validate();
  refresh.validate(dram::TimingParams::lpddr3_1600());
  error_model.retention.validate();
}

TraceEnergy weight_stream_energy(const dram::Geometry& geometry,
                                 const error::ChunkPlacement& placement,
                                 std::size_t n_weights, double v_supply,
                                 const energy::VoltageModel& vm,
                                 const energy::PowerModel& pm, bool salp,
                                 const dram::RefreshPolicy& refresh) {
  const auto timing = vm.derive_timings(v_supply);
  dram::Controller controller(geometry, timing, salp, refresh);
  const auto trace =
      mapping::streaming_read_trace(geometry, placement, n_weights);
  TraceEnergy te;
  te.stats = controller.run(trace, kBurstArrivalNs);
  te.energy = pm.trace_energy(te.stats, v_supply, refresh);
  return te;
}

PipelineReport run_pipeline(const PipelineConfig& cfg) {
  cfg.validate();
  Rng rng(cfg.seed);
  PipelineReport report;
  // Phase wall clocks (informational; see PhaseTimings).
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto since = [](std::chrono::steady_clock::time_point t0,
                        std::chrono::steady_clock::time_point t1) {
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
  };
  const auto t_start = now();

  // --- Data + baseline model (accurate DRAM). -----------------------------
  const auto all = data::make_dataset(
      cfg.task, cfg.train_samples + cfg.test_samples, cfg.seed);
  const auto train = all.take(cfg.train_samples);
  const auto test = all.drop(cfg.train_samples);

  auto baseline = snn::train_and_label(cfg.network, train, test,
                                       cfg.baseline_epochs, rng);
  report.baseline_accuracy = baseline.clean_accuracy;
  const auto t_trained = now();
  report.timings.train_ns = since(t_start, t_trained);

  // --- Substrate models. ---------------------------------------------------
  const energy::VoltageModel voltage_model;
  const energy::BerModel ber_model;
  const energy::PowerModel power_model;
  const error::SubarrayProfile profile(cfg.geometry, cfg.seed,
                                       cfg.subarray_sigma);
  const std::size_t n_weights =
      cfg.network.n_inputs * cfg.network.n_neurons;

  // Training-time injector: the paper trains against the *baseline* mapping
  // (weights in subsequent addresses of a bank, §IV-B Step-2).
  const auto base_place = mapping::baseline_placement(cfg.geometry, n_weights);
  const double max_stage_ber = cfg.fault_training.ber_stages.back();
  const auto train_injector = error::ErrorInjector::for_weights(
      cfg.geometry, profile, cfg.error_model, base_place, n_weights,
      cfg.seed, max_stage_ber);

  // --- Algorithm 1: fault-aware training + BER_th. -------------------------
  auto fa = improve_error_tolerance(baseline, cfg.fault_training,
                                    train_injector, train, test, rng);
  report.ber_th = fa.ber_th;
  report.met_target = fa.met_target;
  report.stage_curve = std::move(fa.stage_curve);
  report.improved_accuracy =
      snn::evaluate(fa.improved.net, fa.improved.labels, test, rng);
  const auto t_fault_trained = now();
  report.timings.fault_training_ns = since(t_trained, t_fault_trained);

  // --- Baseline energy reference: accurate DRAM @ 1.35 V, baseline map. ----
  // When the refresh axis is simulated, the reference runs at the NOMINAL
  // cadence (accurate DRAM refreshes on spec), so reduced-refresh scenarios
  // report the refresh-energy win; otherwise the legacy estimate applies.
  const dram::RefreshPolicy baseline_refresh =
      cfg.refresh.simulated() ? dram::RefreshPolicy::nominal()
                              : dram::RefreshPolicy::disabled();
  const auto base_te = weight_stream_energy(
      cfg.geometry, base_place, n_weights, energy::kNominalVdd, voltage_model,
      power_model, /*salp=*/false, baseline_refresh);
  report.baseline_energy_nj = base_te.energy.total_nj();
  report.baseline_time_ns = base_te.stats.total_time_ns;

  // --- Per-voltage: Algorithm 2 mapping + accuracy + energy. ---------------
  // Voltages are independent given the trained model, so the sweep runs
  // concurrently: each voltage forks its own Rng stream from the sweep index
  // and fills its own report slot, keeping the report bit-identical at every
  // SPARKXD_THREADS setting.
  report.per_voltage.resize(cfg.voltages.size());
  const Rng sweep_rng = rng;
  parallel_for(cfg.voltages.size(), [&](std::size_t vi) {
    const double v = cfg.voltages[vi];
    Rng vrng = sweep_rng.fork(vi);
    VoltageReport row;
    row.v_supply = v;
    row.module_ber = ber_model.ber(v);

    // Algorithm 2 needs enough safe capacity; if the learned BER_th is too
    // strict to fit the weights at this operating BER, relax it to the
    // smallest feasible threshold and report that honestly.
    double threshold = fa.met_target ? fa.ber_th : 0.0;
    mapping::SparkXdPlacement placement;
    for (;;) {
      try {
        placement = mapping::sparkxd_placement(cfg.geometry, profile,
                                               row.module_ber, threshold,
                                               n_weights);
        break;
      } catch (const ContractViolation&) {
        row.capacity_relaxed = true;
        threshold = threshold == 0.0 ? row.module_ber * 0.125 : threshold * 2.0;
        SPARKXD_REQUIRE(threshold < 1.0,
                        "weights cannot fit even with every subarray unsafe");
      }
    }
    row.safe_subarrays = placement.safe_subarrays;

    // Accuracy of the improved model with errors drawn through the
    // Algorithm-2 placement at this voltage's module BER.
    const auto eval_injector = error::ErrorInjector::for_weights(
        cfg.geometry, profile, cfg.error_model, placement.chunks, n_weights,
        cfg.seed, std::max(row.module_ber, 1e-12));
    row.accuracy = evaluate_corrupted(
        fa.improved.net, fa.improved.labels, eval_injector, row.module_ber,
        test, vrng, cfg.fault_training.eval_trials,
        cfg.fault_training.weight_clip);

    // Energy + throughput of the SparkXD mapping at this voltage.
    const auto te = weight_stream_energy(cfg.geometry, placement.chunks,
                                         n_weights, v, voltage_model,
                                         power_model, cfg.salp, cfg.refresh);
    row.refreshes = te.stats.refreshes;
    row.retention_weak_cells = eval_injector.retention_candidate_count();
    row.energy_nj = te.energy.total_nj();
    row.saving_pct =
        100.0 * (1.0 - row.energy_nj / report.baseline_energy_nj);
    row.speedup = te.stats.total_time_ns > 0.0
                      ? report.baseline_time_ns / te.stats.total_time_ns
                      : 1.0;
    row.row_hit_rate = te.stats.hit_rate();
    report.per_voltage[vi] = row;
  });
  const auto t_done = now();
  report.timings.sweep_ns = since(t_fault_trained, t_done);
  report.timings.total_ns = since(t_start, t_done);
  return report;
}

}  // namespace sparkxd::core
