# Empty dependencies file for microbench_kernels.
# This may be replaced when dependencies are built.
