file(REMOVE_RECURSE
  "CMakeFiles/fig11_accuracy_resilience.dir/bench/fig11_accuracy_resilience.cpp.o"
  "CMakeFiles/fig11_accuracy_resilience.dir/bench/fig11_accuracy_resilience.cpp.o.d"
  "fig11_accuracy_resilience"
  "fig11_accuracy_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_accuracy_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
