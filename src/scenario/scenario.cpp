#include "scenario/scenario.hpp"

#include "common/contracts.hpp"
#include "scenario/matrix.hpp"

namespace sparkxd::scenario {

core::PipelineConfig Scenario::pipeline_config() const {
  core::PipelineConfig cfg;
  cfg.task = task;
  cfg.network.n_neurons = n_neurons;
  cfg.network.hidden_neurons = hidden_neurons;
  cfg.network.seed = seed;
  cfg.train_samples = train_samples;
  cfg.test_samples = test_samples;
  cfg.baseline_epochs = baseline_epochs;
  cfg.fault_training.ber_stages = ber_stages;
  cfg.fault_training.eval_trials = eval_trials;
  cfg.geometry = geometry;
  cfg.salp = salp;
  cfg.refresh = refresh;
  cfg.error_model = error_model;
  // A simulated refresh policy brings its retention-failure errors along:
  // the effective window stretches with the policy's interval multiplier.
  if (refresh.simulated()) {
    cfg.error_model.retention.enabled = true;
    cfg.error_model.retention.interval_multiplier =
        refresh.effective_multiplier();
  }
  cfg.ecc = ecc;
  cfg.voltages = voltages;
  cfg.seed = seed;
  cfg.network.engine = engine;
  cfg.layer_knobs.enabled = layer_knobs;
  return cfg;
}

void Scenario::validate() const {
  SPARKXD_REQUIRE(!name.empty(), "scenario name must not be empty");
  for (const char c : name) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
    SPARKXD_REQUIRE(ok, "scenario name '" + name +
                            "' must use only [a-z0-9-] characters");
  }
  pipeline_config().validate();
}

std::string refresh_label(const dram::RefreshPolicy& policy) {
  if (!policy.simulated()) return "off";
  std::string mult = std::to_string(policy.effective_multiplier());
  // Trim the trailing zeros std::to_string's fixed form produces.
  mult.erase(mult.find_last_not_of('0') + 1);
  if (!mult.empty() && mult.back() == '.') mult.pop_back();
  return mult + "x";
}

const char* model_label(error::ErrorModelKind kind) noexcept {
  switch (kind) {
    case error::ErrorModelKind::kModel0Uniform:
      return "m0";
    case error::ErrorModelKind::kModel1Bitline:
      return "m1";
    case error::ErrorModelKind::kModel2Wordline:
      return "m2";
    case error::ErrorModelKind::kModel3DataDependent:
      return "m3";
  }
  return "m?";
}

namespace {

error::ErrorModelSpec model_spec(error::ErrorModelKind kind) {
  error::ErrorModelSpec spec;
  spec.kind = kind;
  return spec;
}

/// The two golden-locked smoke scenarios: sized like the determinism tests'
/// tiny config so a full run costs ~0.25 s, with a trimmed voltage grid.
Scenario smoke_digits_m0() {
  Scenario s;
  s.name = "smoke-digits-m0";
  s.description =
      "tiny digits net, commodity DRAM, Model-0 — golden-locked smoke run";
  s.n_neurons = 25;
  s.train_samples = 100;
  s.test_samples = 50;
  s.baseline_epochs = 1;
  s.ber_stages = {1e-5, 1e-3};
  s.eval_trials = 2;
  s.voltages = {1.250, 1.100, 1.025};
  return s;
}

Scenario smoke_fashion_salp_m1() {
  Scenario s;
  s.name = "smoke-fashion-salp-m1";
  s.description =
      "tiny fashion net, SALP DRAM, Model-1 — golden-locked smoke run";
  s.task = data::Task::kFashion;
  s.n_neurons = 25;
  s.train_samples = 100;
  s.test_samples = 50;
  s.baseline_epochs = 1;
  s.ber_stages = {1e-5, 1e-3};
  s.eval_trials = 2;
  s.salp = true;
  s.error_model = model_spec(error::ErrorModelKind::kModel1Bitline);
  s.voltages = {1.250, 1.100, 1.025};
  return s;
}

/// Golden-locked refresh-axis smoke runs: the nominal cadence (REF stalls
/// on, retention errors negligible) and a 32x relaxed cadence (few REFs,
/// visible retention errors) on the same tiny workloads as the voltage
/// smokes.
Scenario smoke_digits_m0_refresh() {
  Scenario s = smoke_digits_m0();
  s.name = "smoke-digits-m0-refresh";
  s.description =
      "tiny digits net, commodity DRAM, Model-0, nominal refresh — "
      "golden-locked smoke run";
  s.refresh = dram::RefreshPolicy::nominal();
  return s;
}

Scenario smoke_fashion_salp_m1_refresh() {
  Scenario s = smoke_fashion_salp_m1();
  s.name = "smoke-fashion-salp-m1-refresh";
  s.description =
      "tiny fashion net, SALP DRAM, Model-1, 32x relaxed refresh — "
      "golden-locked smoke run";
  s.refresh = dram::RefreshPolicy::reduced(32.0);
  return s;
}

/// Golden-locked deep-stack smoke run: the layer-stack pipeline end to end
/// — per-layer tolerance analysis, per-layer mapping, per-layer report
/// fields — on the same tiny digits workload as the voltage smoke.
Scenario smoke_digits_deep() {
  Scenario s = smoke_digits_m0();
  s.name = "smoke-digits-deep";
  s.description =
      "tiny 2-layer digits net (784-48-25), commodity DRAM, Model-0 — "
      "golden-locked deep-stack smoke run";
  s.hidden_neurons = {48};
  return s;
}

/// Golden-locked ECC-axis smoke run: SECDED(72,64) over the same tiny
/// digits workload — raw injection + codeword scrub, BCH escalation at the
/// aggressive voltages, check-bit streaming, and the ecc digest fields.
Scenario smoke_digits_ecc() {
  Scenario s = smoke_digits_m0();
  s.name = "smoke-digits-ecc";
  s.description =
      "tiny digits net, commodity DRAM, Model-0, SECDED ECC — "
      "golden-locked ecc-axis smoke run";
  s.ecc = {error::EccKind::kSecded, 64, 0};
  return s;
}

/// Golden-locked fixed-point event-engine smoke run: the kEventFx kernel
/// (bitset-mask gather + Q47.16 integer accumulation) over the same tiny
/// digits workload. The float event engine is bitwise-identical to dense on
/// every golden and needs no digest of its own; the fixed-point drive is
/// numerically different, so this scenario pins it.
Scenario smoke_digits_event_fx() {
  Scenario s = smoke_digits_m0();
  s.name = "smoke-digits-event-fx";
  s.description =
      "tiny digits net, commodity DRAM, Model-0, fixed-point event engine — "
      "golden-locked smoke run";
  s.engine = snn::EngineKind::kEventFx;
  return s;
}

/// Golden-locked knob-search smoke run: the per-layer (voltage x refresh x
/// ECC) operating-point search over the deep stack, with all three axes
/// engaged (SECDED base code, 8x relaxed refresh) so every candidate
/// dimension is exercised — the digest's K<n> lines pin the chosen triples
/// and the per-layer-vs-uniform energy split.
Scenario smoke_digits_knobs() {
  Scenario s = smoke_digits_deep();
  s.name = "smoke-digits-knobs";
  s.description =
      "tiny 2-layer digits net, SECDED ECC, 8x relaxed refresh, per-layer "
      "knob search — golden-locked smoke run";
  s.ecc = {error::EccKind::kSecded, 64, 0};
  s.refresh = dram::RefreshPolicy::reduced(8.0);
  s.layer_knobs = true;
  return s;
}

std::vector<Scenario> build_registry() {
  std::vector<Scenario> all;
  all.push_back(smoke_digits_m0());
  all.push_back(smoke_fashion_salp_m1());
  all.push_back(smoke_digits_m0_refresh());
  all.push_back(smoke_fashion_salp_m1_refresh());
  all.push_back(smoke_digits_deep());
  all.push_back(smoke_digits_ecc());
  all.push_back(smoke_digits_event_fx());
  all.push_back(smoke_digits_knobs());

  const SizeSpec small{"small", 64, 250, 100, 1};
  const SizeSpec medium{"medium", 100, 400, 150, 2};
  const GeometrySpec commodity{"commodity", dram::Geometry::lpddr3_4gb(),
                               false};
  const GeometrySpec salp{"salp", dram::Geometry::lpddr3_4gb(), true};

  // Main grid: tasks × sizes × DRAM organizations under the paper's pick,
  // Model-0 (8 scenarios).
  ScenarioMatrix main_grid;
  main_grid.tasks = {data::Task::kDigits, data::Task::kFashion};
  main_grid.sizes = {small, medium};
  main_grid.geometries = {commodity, salp};
  main_grid.error_models = {
      {"m0", model_spec(error::ErrorModelKind::kModel0Uniform)}};
  for (auto& s : main_grid.expand()) all.push_back(std::move(s));

  // Stripe-model grid: the bitline/wordline EDEN models on the small digits
  // net across both organizations (4 scenarios).
  ScenarioMatrix stripes;
  stripes.tasks = {data::Task::kDigits};
  stripes.sizes = {small};
  stripes.geometries = {commodity, salp};
  stripes.error_models = {
      {"m1", model_spec(error::ErrorModelKind::kModel1Bitline)},
      {"m2", model_spec(error::ErrorModelKind::kModel2Wordline)}};
  for (auto& s : stripes.expand()) all.push_back(std::move(s));

  // Deep-stack grid: the `layers` axis — 2- and 3-layer stacks on the small
  // nets across both tasks, per-layer tolerance analysis + per-layer
  // error-aware mapping end to end (4 scenarios, e.g.
  // "digits-small-commodity-m0-deep2"), plus one SALP point so the deep
  // path also exercises the subarray-parallel organization (5 scenarios).
  ScenarioMatrix deep_grid;
  deep_grid.tasks = {data::Task::kDigits, data::Task::kFashion};
  deep_grid.sizes = {small};
  deep_grid.geometries = {commodity};
  deep_grid.error_models = {
      {"m0", model_spec(error::ErrorModelKind::kModel0Uniform)}};
  deep_grid.layer_stacks = {{"deep2", {64}}, {"deep3", {64, 48}}};
  for (auto& s : deep_grid.expand()) all.push_back(std::move(s));
  ScenarioMatrix deep_salp;
  deep_salp.tasks = {data::Task::kDigits};
  deep_salp.sizes = {small};
  deep_salp.geometries = {salp};
  deep_salp.error_models = {
      {"m0", model_spec(error::ErrorModelKind::kModel0Uniform)}};
  deep_salp.layer_stacks = {{"flat", {}}, {"deep2", {64}}};
  // Only the deep cell is new; the flat cell would duplicate the main
  // grid's digits-small-salp-m0, so keep just the deep expansion.
  for (auto& s : deep_salp.expand())
    if (!s.hidden_neurons.empty()) all.push_back(std::move(s));

  // Refresh grid: the second approximation axis on the small nets across
  // both tasks and organizations — nominal cadence plus two relaxed-refresh
  // points in the retention decades the voltage axis also spans
  // (12 scenarios, e.g. "digits-small-salp-m0-relaxed-refresh-32x").
  ScenarioMatrix refresh_grid;
  refresh_grid.tasks = {data::Task::kDigits, data::Task::kFashion};
  refresh_grid.sizes = {small};
  refresh_grid.geometries = {commodity, salp};
  refresh_grid.error_models = {
      {"m0", model_spec(error::ErrorModelKind::kModel0Uniform)}};
  refresh_grid.refresh_policies = {
      {"nominal-refresh", dram::RefreshPolicy::nominal()},
      {"relaxed-refresh-8x", dram::RefreshPolicy::reduced(8.0)},
      {"relaxed-refresh-32x", dram::RefreshPolicy::reduced(32.0)}};
  for (auto& s : refresh_grid.expand()) all.push_back(std::move(s));

  // ECC grid: the third approximation axis on the small digits net — every
  // registered scheme kind at the classic 64-bit codeword plus the 512 B
  // large-codeword BCH mode (5 scenarios, e.g.
  // "digits-small-commodity-m0-ecc-bch").
  ScenarioMatrix ecc_grid;
  ecc_grid.tasks = {data::Task::kDigits};
  ecc_grid.sizes = {small};
  ecc_grid.geometries = {commodity};
  ecc_grid.error_models = {
      {"m0", model_spec(error::ErrorModelKind::kModel0Uniform)}};
  ecc_grid.ecc_schemes = {
      {"ecc-parity", {error::EccKind::kParity, 64, 0}},
      {"ecc-secded", {error::EccKind::kSecded, 64, 0}},
      {"ecc-hsiao", {error::EccKind::kHsiao, 64, 0}},
      {"ecc-bch", {error::EccKind::kBch, 64, 0}},
      {"ecc-bch512b", {error::EccKind::kBch, 4096, 0}}};
  for (auto& s : ecc_grid.expand()) all.push_back(std::move(s));

  // ECC × SALP/Model-1 cross: the scrub path composing with the bitline
  // stripe model and subarray-parallel timing, including the 4 KB
  // large-codeword mode (2 scenarios).
  ScenarioMatrix ecc_salp;
  ecc_salp.tasks = {data::Task::kFashion};
  ecc_salp.sizes = {small};
  ecc_salp.geometries = {salp};
  ecc_salp.error_models = {
      {"m1", model_spec(error::ErrorModelKind::kModel1Bitline)}};
  ecc_salp.ecc_schemes = {
      {"ecc-secded", {error::EccKind::kSecded, 64, 0}},
      {"ecc-bch4kb", {error::EccKind::kBch, 32768, 0}}};
  for (auto& s : ecc_salp.expand()) all.push_back(std::move(s));

  for (const auto& s : all) s.validate();
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      SPARKXD_ENSURE(all[i].name != all[j].name,
                     "duplicate scenario name: " + all[i].name);
  return all;
}

}  // namespace

const std::vector<Scenario>& builtin_scenarios() {
  static const std::vector<Scenario> registry = build_registry();
  return registry;
}

const Scenario* find_scenario(std::string_view name) {
  for (const auto& s : builtin_scenarios())
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<Scenario> match_scenarios(std::string_view substring) {
  std::vector<Scenario> out;
  for (const auto& s : builtin_scenarios())
    if (s.name.find(substring) != std::string::npos) out.push_back(s);
  return out;
}

}  // namespace sparkxd::scenario
