#pragma once
// Shared test helpers for environment-knob manipulation.

#include <cstdlib>
#include <string>

namespace sparkxd::testutil {

/// Scoped override of the SPARKXD_THREADS knob (restored on destruction).
/// The knob is re-read on every parallel_for call, so tests can flip it
/// between runs to compare serial and parallel results.
class ThreadsOverride {
 public:
  explicit ThreadsOverride(const char* value) {
    const char* old = std::getenv("SPARKXD_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("SPARKXD_THREADS", value, 1);
  }
  ~ThreadsOverride() {
    if (had_old_)
      ::setenv("SPARKXD_THREADS", old_.c_str(), 1);
    else
      ::unsetenv("SPARKXD_THREADS");
  }
  ThreadsOverride(const ThreadsOverride&) = delete;
  ThreadsOverride& operator=(const ThreadsOverride&) = delete;

 private:
  std::string old_;
  bool had_old_ = false;
};

}  // namespace sparkxd::testutil
