// Refresh-multiplier sweep: the second approximation axis, end to end.
//
// Runs the tiny golden workload once per refresh policy — legacy
// (unsimulated), the nominal cadence, and a ladder of relaxed-refresh
// multipliers — and prints, at the lowest evaluated voltage, the REF count,
// refresh energy, total energy/saving, the retention-failure weak cells the
// relaxed cadence introduces, and the accuracy the fault-aware model holds
// against them. This is the EDEN/EnforceSNN trade: each doubling of the
// refresh interval halves refresh energy while pushing more weak retention
// cells into the error budget.

#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Refresh-multiplier sweep",
                "relaxing the refresh cadence cuts refresh energy while "
                "fault-aware training absorbs the retention errors "
                "(EDEN-style second approximation axis)");

  const auto* base = scenario::find_scenario("smoke-digits-m0");
  SPARKXD_REQUIRE(base != nullptr, "smoke scenario missing from registry");

  std::vector<scenario::Scenario> sweep;
  const auto add = [&](const char* name, dram::RefreshPolicy policy) {
    scenario::Scenario s = *base;
    s.name = name;
    s.description = "refresh sweep point";
    s.seed = experiment_seed();
    s.refresh = policy;
    sweep.push_back(std::move(s));
  };
  add("sweep-ref-legacy", dram::RefreshPolicy::disabled());
  add("sweep-ref-1x", dram::RefreshPolicy::nominal());
  for (const double m : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0})
    add(("sweep-ref-" + scenario::refresh_label(dram::RefreshPolicy::reduced(m)))
            .c_str(),
        dram::RefreshPolicy::reduced(m));

  const auto results = scenario::run_scenarios(sweep);

  const energy::PowerModel::Params power_params;
  Table t("refresh_sweep",
          {"refresh", "REFs@lowV", "refresh_nJ", "energy_nJ", "saving",
           "ret_weak_cells", "acc@lowV"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& low = r.report.per_voltage.back();
    // Refresh energy of the simulated REF commands at this voltage (the
    // legacy row charges the makespan-based estimate inside energy_nj and
    // counts no REFs).
    const double refresh_nj =
        static_cast<double>(low.refreshes) * power_params.e_refresh_nj *
        energy::PowerModel::dynamic_scale(low.v_supply);
    t.add_row({i == 0 ? std::string("legacy")
                      : scenario::refresh_label(r.scenario.refresh),
               std::to_string(low.refreshes),
               r.scenario.refresh.simulated() ? Table::num(refresh_nj, 2)
                                              : std::string("est"),
               Table::num(low.energy_nj, 1), Table::pct(low.saving_pct),
               std::to_string(low.retention_weak_cells),
               Table::num(low.accuracy, 3)});
  }
  t.emit();
  return 0;
}
