// Tests for the full network and the trainer: initialization invariants,
// normalization, learning/inference separation, labeling, prediction, and a
// small end-to-end learning smoke test.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <utility>

#include "common/contracts.hpp"
#include "data/dataset.hpp"
#include "snn/network.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::snn {
namespace {

NetworkConfig tiny_config() {
  NetworkConfig cfg;
  cfg.n_inputs = 784;
  cfg.n_neurons = 30;
  cfg.timesteps = 40;
  cfg.seed = 7;
  return cfg;
}

std::vector<float> bright_image(std::size_t n, float value = 0.8f) {
  return std::vector<float>(n, value);
}

TEST(Network, InitialWeightsNormalized) {
  const auto cfg = tiny_config();
  Network net(cfg);
  const auto& w = net.weights();
  ASSERT_EQ(w.size(), cfg.n_neurons * cfg.n_inputs);
  for (std::size_t n = 0; n < cfg.n_neurons; ++n) {
    float sum = 0.0f;
    for (std::size_t i = 0; i < cfg.n_inputs; ++i)
      sum += w[n * cfg.n_inputs + i];
    EXPECT_NEAR(sum, cfg.norm_target, 0.01f);
  }
  for (const float v : w) EXPECT_GE(v, 0.0f);
}

TEST(Network, WeightInitDeterministicInSeed) {
  auto cfg = tiny_config();
  Network a(cfg), b(cfg);
  EXPECT_EQ(a.weights(), b.weights());
  cfg.seed = 8;
  Network c(cfg);
  EXPECT_NE(a.weights(), c.weights());
}

TEST(Network, NormalizeRowsRestoresTarget) {
  const auto cfg = tiny_config();
  Network net(cfg);
  for (auto& w : net.weights_mut()) w *= 3.0f;
  net.normalize_rows();
  const auto& w = net.weights();
  float sum = 0.0f;
  for (std::size_t i = 0; i < cfg.n_inputs; ++i) sum += w[i];
  EXPECT_NEAR(sum, cfg.norm_target, 0.01f);
}

TEST(Network, NormalizeSkipsZeroRows) {
  const auto cfg = tiny_config();
  Network net(cfg);
  for (std::size_t i = 0; i < cfg.n_inputs; ++i)
    net.weights_mut()[i] = 0.0f;  // zero out neuron 0
  net.normalize_rows();
  for (std::size_t i = 0; i < cfg.n_inputs; ++i)
    EXPECT_EQ(net.weights()[i], 0.0f);
}

TEST(Network, InferenceDoesNotChangeWeightsOrThetas) {
  const auto cfg = tiny_config();
  Network net(cfg);
  const auto w_before = net.weights();
  const auto theta_before = net.thetas();
  Rng rng(1);
  (void)net.process(bright_image(cfg.n_inputs), /*learn=*/false, rng);
  EXPECT_EQ(net.weights(), w_before);
  EXPECT_EQ(net.thetas(), theta_before);
}

TEST(Network, LearningChangesWeights) {
  const auto cfg = tiny_config();
  Network net(cfg);
  const auto w_before = net.weights();
  Rng rng(1);
  (void)net.process(bright_image(cfg.n_inputs), /*learn=*/true, rng);
  EXPECT_NE(net.weights(), w_before);
}

TEST(Network, LearningKeepsRowsNormalized) {
  const auto cfg = tiny_config();
  Network net(cfg);
  Rng rng(1);
  (void)net.process(bright_image(cfg.n_inputs), /*learn=*/true, rng);
  const auto& w = net.weights();
  for (std::size_t n = 0; n < cfg.n_neurons; ++n) {
    float sum = 0.0f;
    for (std::size_t i = 0; i < cfg.n_inputs; ++i)
      sum += w[n * cfg.n_inputs + i];
    EXPECT_NEAR(sum, cfg.norm_target, 0.05f);
  }
}

TEST(Network, SpikesProducedForBrightInput) {
  const auto cfg = tiny_config();
  Network net(cfg);
  Rng rng(1);
  const auto counts = net.process(bright_image(cfg.n_inputs), false, rng);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_GT(total, 0u);
}

TEST(Network, NoSpikesForBlackInput) {
  const auto cfg = tiny_config();
  Network net(cfg);
  Rng rng(1);
  const auto counts =
      net.process(std::vector<float>(cfg.n_inputs, 0.0f), false, rng);
  for (const auto c : counts) EXPECT_EQ(c, 0u);
}

TEST(Network, InferenceDeterministicGivenRngState) {
  const auto cfg = tiny_config();
  Network net(cfg);
  Rng a(3), b(3);
  const auto img = bright_image(cfg.n_inputs, 0.5f);
  EXPECT_EQ(net.process(img, false, a), net.process(img, false, b));
}

TEST(Network, TrainingWithWtaProducesAtMostOneSpikePerStep) {
  auto cfg = tiny_config();
  cfg.lif.winner_take_all = true;
  Network net(cfg);
  Rng rng(2);
  const auto counts = net.process(bright_image(cfg.n_inputs), true, rng);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_LE(total, cfg.timesteps);
}

TEST(Network, RejectsWrongImageSize) {
  Network net(tiny_config());
  Rng rng(1);
  std::vector<float> wrong(10, 0.5f);
  EXPECT_THROW(net.process(wrong, false, rng), ContractViolation);
}

TEST(Network, RejectsDegenerateConfig) {
  auto cfg = tiny_config();
  cfg.n_neurons = 0;
  EXPECT_THROW(Network{cfg}, ContractViolation);
  cfg = tiny_config();
  cfg.timesteps = 0;
  EXPECT_THROW(Network{cfg}, ContractViolation);
  cfg = tiny_config();
  cfg.norm_target = 0.0f;
  EXPECT_THROW(Network{cfg}, ContractViolation);
}

// --------------------------------------------- transposed inference layout

TEST(Network, TransposeMirrorsRowMajorAfterTraining) {
  const auto cfg = tiny_config();
  Network net(cfg);
  Rng rng(1);
  (void)net.process(bright_image(cfg.n_inputs), /*learn=*/true, rng);
  EXPECT_FALSE(net.transpose_synced());  // training moved the rows
  net.sync_transpose();
  const auto& w = net.weights();
  const auto& wt = net.weights_T();
  ASSERT_EQ(wt.size(), w.size());
  for (std::size_t n = 0; n < cfg.n_neurons; ++n)
    for (std::size_t i = 0; i < cfg.n_inputs; ++i)
      ASSERT_EQ(wt[i * cfg.n_neurons + n], w[n * cfg.n_inputs + i])
          << "neuron " << n << " input " << i;
}

TEST(Network, StaleTransposeIsRejectedUntilSynced) {
  Network net(tiny_config());
  net.weights_mut()[3] = 0.77f;
  EXPECT_FALSE(net.transpose_synced());
  EXPECT_THROW((void)net.weights_T(), ContractViolation);
  EXPECT_THROW((void)net.weights_delta(), ContractViolation);
  InferenceState state(net);
  Rng rng(1);
  EXPECT_THROW((void)net.infer(state, bright_image(net.config().n_inputs),
                               rng),
               ContractViolation);
  net.sync_transpose();
  EXPECT_EQ(net.weights_T()[3 * net.config().n_neurons], 0.77f);
}

TEST(Network, DeltaMirrorEqualsFullResync) {
  const auto cfg = tiny_config();
  Network full(cfg), delta(cfg);
  const std::size_t idx = 5 * cfg.n_inputs + 17;  // neuron 5, input 17
  full.weights_mut()[idx] = 0.123f;
  full.sync_transpose();
  delta.weights_delta()[idx] = 0.123f;
  delta.mirror_weight(idx);
  EXPECT_TRUE(delta.transpose_synced());
  EXPECT_EQ(full.weights(), delta.weights());
  EXPECT_EQ(full.weights_T(), delta.weights_T());
}

TEST(Network, InferMatchesProcessBitwise) {
  // The InferenceState fast path must consume the same Rng stream and
  // produce the same spike counts as process(learn=false) — including when
  // one state is reused across samples.
  const auto cfg = tiny_config();
  Network net(cfg);
  Rng train_rng(2);
  (void)net.process(bright_image(cfg.n_inputs), /*learn=*/true, train_rng);
  net.sync_transpose();
  InferenceState state(net);
  for (const float intensity : {0.8f, 0.5f, 0.2f}) {
    const auto img = bright_image(cfg.n_inputs, intensity);
    Rng a(3), b(3);
    EXPECT_EQ(net.process(img, /*learn=*/false, a), net.infer(state, img, b))
        << "intensity " << intensity;
  }
}

TEST(Network, StaleInferenceStateResyncsAfterRetraining) {
  // Regression: InferenceState snapshots the LIF thetas at construction.
  // Before the generation counter a state built pre-(re)training silently
  // kept inferring with the stale thresholds; now infer() notices the
  // generation mismatch and resyncs the slices first.
  const auto cfg = tiny_config();
  Network net(cfg);
  InferenceState stale(net);
  EXPECT_EQ(stale.generation(), net.theta_generation());

  Rng train_rng(2);
  (void)net.process(bright_image(cfg.n_inputs), /*learn=*/true, train_rng);
  net.sync_transpose();
  EXPECT_GT(net.theta_generation(), stale.generation());

  InferenceState fresh(net);
  const auto img = bright_image(cfg.n_inputs, 0.5f);
  Rng a(9), b(9);
  EXPECT_EQ(net.infer(stale, img, a), net.infer(fresh, img, b));
  EXPECT_EQ(stale.generation(), net.theta_generation());
}

TEST(Network, ThetaGenerationBumpsOnEveryMutationPath) {
  Network net(tiny_config());
  const auto g0 = net.theta_generation();
  (void)net.thetas_mut();  // mutable access presumes mutation
  EXPECT_EQ(net.theta_generation(), g0 + 1);
  Rng rng(3);
  (void)net.process(bright_image(net.config().n_inputs), /*learn=*/true, rng);
  EXPECT_GT(net.theta_generation(), g0 + 1);
  // Inference must not bump it (states stay valid across pure readouts).
  net.sync_transpose();
  InferenceState state(net);
  const auto g1 = net.theta_generation();
  Rng rng2(4);
  (void)net.infer(state, bright_image(net.config().n_inputs, 0.3f), rng2);
  EXPECT_EQ(net.theta_generation(), g1);
  EXPECT_EQ(state.generation(), g1);
}

TEST(Network, ExplicitResyncRefreshesSnapshot) {
  Network net(tiny_config());
  InferenceState state(net);
  net.thetas_mut()[0] += 0.5f;
  EXPECT_NE(state.generation(), net.theta_generation());
  state.resync(net);
  EXPECT_EQ(state.generation(), net.theta_generation());
}

TEST(Network, InferLeavesNetworkUntouched) {
  const auto cfg = tiny_config();
  Network net(cfg);
  InferenceState state(net);
  const auto w_before = net.weights();
  const auto theta_before = net.thetas();
  Rng rng(4);
  (void)net.infer(state, bright_image(cfg.n_inputs), rng);
  EXPECT_EQ(net.weights(), w_before);
  EXPECT_EQ(net.thetas(), theta_before);
  EXPECT_TRUE(net.transpose_synced());
}

// ------------------------------------------------------------------- trainer

struct TrainedFixture : public ::testing::Test {
  void SetUp() override {
    all = data::make_dataset(data::Task::kDigits, 500, 42);
    train = all.take(400);
    test = all.drop(400);
    NetworkConfig cfg;
    cfg.n_neurons = 100;
    cfg.seed = 42;
    Rng rng(42);
    model = std::make_unique<TrainedModel>(
        train_and_label(cfg, train, test, 2, rng));
  }
  data::Dataset all, train, test;
  std::unique_ptr<TrainedModel> model;
};

TEST_F(TrainedFixture, LearnsWellAboveChance) {
  // 10 classes -> chance is 10%. The smoke bound is deliberately loose; the
  // benches report the real accuracy.
  EXPECT_GT(model->clean_accuracy, 0.5);
}

TEST_F(TrainedFixture, LabelsCoverMultipleClasses) {
  std::set<std::int32_t> classes;
  for (const auto l : model->labels.label)
    if (l >= 0) classes.insert(l);
  EXPECT_GE(classes.size(), 8u);
}

TEST_F(TrainedFixture, LabelsInRange) {
  for (const auto l : model->labels.label) {
    EXPECT_GE(l, -1);
    EXPECT_LT(l, 10);
  }
  ASSERT_EQ(model->labels.bias.size(), model->labels.label.size());
  for (const double b : model->labels.bias) EXPECT_GE(b, 0.0);
}

TEST_F(TrainedFixture, PredictReturnsValidClass) {
  Rng rng(5);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto p = predict(model->net, model->labels, test.images[i], rng);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 10);
  }
}

TEST_F(TrainedFixture, EvaluateIsMeanAccuracy) {
  Rng rng(6);
  const double acc = evaluate(model->net, model->labels, test, rng);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST_F(TrainedFixture, EvaluateOverloadsAgreeBitwise) {
  // Const fan-out, in-place scratch, and the reusable-InferenceState hot
  // path must all produce the same accuracy from the same Rng state.
  Rng a(8), b(8), c(8);
  const double fanned =
      evaluate(std::as_const(model->net), model->labels, test, a);
  const double in_place = evaluate(model->net, model->labels, test, b);
  model->net.sync_transpose();
  InferenceState state(model->net);
  const double reused =
      evaluate(std::as_const(model->net), state, model->labels, test, c);
  EXPECT_EQ(fanned, in_place);
  EXPECT_EQ(fanned, reused);
}

TEST_F(TrainedFixture, MoreTrainingDoesNotCollapse) {
  Rng rng(7);
  train_epoch(model->net, train, rng);
  const auto labels = label_neurons(model->net, train, rng);
  const double acc = evaluate(model->net, labels, test, rng);
  EXPECT_GT(acc, 0.5);
}

TEST(Trainer, LargerNetworkAtLeastAsGood) {
  // Paper Fig. 1a: larger models achieve higher accuracy (given data).
  const auto all = data::make_dataset(data::Task::kDigits, 700, 11);
  const auto train = all.take(550);
  const auto test = all.drop(550);
  NetworkConfig small, large;
  small.n_neurons = 36;
  small.seed = 11;
  large.n_neurons = 225;
  large.seed = 11;
  Rng r1(11), r2(11);
  const auto m_small = train_and_label(small, train, test, 2, r1);
  const auto m_large = train_and_label(large, train, test, 2, r2);
  EXPECT_GT(m_large.clean_accuracy, m_small.clean_accuracy - 0.02);
}

TEST(Trainer, RejectsMismatchedDataset) {
  NetworkConfig cfg = tiny_config();
  cfg.n_inputs = 100;  // not 784
  Network net(cfg);
  const auto ds = data::make_dataset(data::Task::kDigits, 10, 1);
  Rng rng(1);
  EXPECT_THROW(train_epoch(net, ds, rng), ContractViolation);
}

TEST(Trainer, EmptyDatasetRejectedForLabeling) {
  Network net(tiny_config());
  data::Dataset empty;
  empty.num_classes = 10;
  Rng rng(1);
  EXPECT_THROW(label_neurons(net, empty, rng), ContractViolation);
}

// -------------------------------------------------------------- deep stacks

NetworkConfig deep_config() {
  NetworkConfig cfg = tiny_config();
  cfg.hidden_neurons = {20, 12};
  return cfg;
}

TEST(DeepNetwork, LayerGeometryHelpers) {
  const auto cfg = deep_config();
  EXPECT_EQ(cfg.n_layers(), 3u);
  EXPECT_EQ(cfg.layer_inputs(0), 784u);
  EXPECT_EQ(cfg.layer_neurons(0), 20u);
  EXPECT_EQ(cfg.layer_inputs(1), 20u);
  EXPECT_EQ(cfg.layer_neurons(1), 12u);
  EXPECT_EQ(cfg.layer_inputs(2), 12u);
  EXPECT_EQ(cfg.layer_neurons(2), 30u);
  EXPECT_EQ(cfg.total_weights(),
            784u * 20u + 20u * 12u + 12u * 30u);
}

TEST(DeepNetwork, PerLayerWeightsNormalizedAndDeterministic) {
  const auto cfg = deep_config();
  Network net(cfg);
  ASSERT_EQ(net.n_layers(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    const auto& w = net.weights(l);
    ASSERT_EQ(w.size(), cfg.layer_weight_count(l));
    for (std::size_t n = 0; n < cfg.layer_neurons(l); ++n) {
      float sum = 0.0f;
      for (std::size_t i = 0; i < cfg.layer_inputs(l); ++i)
        sum += w[n * cfg.layer_inputs(l) + i];
      EXPECT_NEAR(sum, cfg.norm_target, 0.01f) << "layer " << l;
    }
  }
  Network again(cfg);
  for (std::size_t l = 0; l < 3; ++l)
    EXPECT_EQ(net.weights(l), again.weights(l));
}

TEST(DeepNetwork, OutputLayerInitMatchesTheFlatNetworkBitwise) {
  // The output layer draws from Rng(seed) — the legacy stream — so before
  // normalization it is the same draw sequence as the flat network's one
  // layer. (Normalization depends only on the row itself, so the normalized
  // rows coincide too.)
  auto flat_cfg = tiny_config();
  flat_cfg.n_inputs = 20;  // the deep output layer's fan-in
  auto deep_cfg = tiny_config();
  deep_cfg.hidden_neurons = {20};
  deep_cfg.n_inputs = 20;
  const Network flat(flat_cfg);
  const Network deep(deep_cfg);
  ASSERT_EQ(deep.weights(1).size(), 20u * 30u);
  EXPECT_EQ(deep.weights(1), flat.weights(0));
}

TEST(DeepNetwork, SingleLayerAliasesRejectDeepStacks) {
  Network deep(deep_config());
  EXPECT_THROW((void)deep.weights(), ContractViolation);
  EXPECT_THROW((void)deep.weights_mut(), ContractViolation);
  EXPECT_THROW((void)deep.thetas(), ContractViolation);
  EXPECT_THROW((void)deep.weights(3), ContractViolation);  // out of range
}

TEST(DeepNetwork, ProcessAndInferAgreeBitwise) {
  const auto cfg = deep_config();
  Network net(cfg);
  const auto image = bright_image(cfg.n_inputs, 0.6f);
  Rng a(21), b(21);
  const auto via_process = net.process(image, /*learn=*/false, a);
  InferenceState state(net);
  const auto via_infer = net.infer(state, image, b);
  EXPECT_EQ(via_process, via_infer);
  ASSERT_EQ(via_process.size(), cfg.n_neurons);
}

TEST(DeepNetwork, PerLayerDeltaMirrorRoundTrips) {
  // Corrupt a word of each layer via the delta path, mirror it, and verify
  // inference sees it; then revert and verify bitwise restoration.
  const auto cfg = deep_config();
  Network net(cfg);
  const auto image = bright_image(cfg.n_inputs, 0.7f);
  Rng clean_rng(31);
  InferenceState state(net);
  const auto clean = net.infer(state, image, clean_rng);

  std::vector<std::pair<std::size_t, float>> before(net.n_layers());
  for (std::size_t l = 0; l < net.n_layers(); ++l) {
    const std::size_t idx = 3 + l;
    before[l] = {idx, net.weights(l)[idx]};
    net.weights_delta(l)[idx] = 0.9f;
    net.mirror_weight(l, idx);
  }
  Rng corrupt_rng(31);
  const auto corrupted = net.infer(state, image, corrupt_rng);
  (void)corrupted;  // values may or may not differ; the contract is revert
  for (std::size_t l = 0; l < net.n_layers(); ++l) {
    net.weights_delta(l)[before[l].first] = before[l].second;
    net.mirror_weight(l, before[l].first);
  }
  Rng restored_rng(31);
  EXPECT_EQ(net.infer(state, image, restored_rng), clean);
}

TEST(DeepNetwork, WeightsMutInvalidatesOnlyThatLayersTranspose) {
  Network net(deep_config());
  ASSERT_TRUE(net.transpose_synced());
  (void)net.weights_mut(1);
  EXPECT_FALSE(net.transpose_synced());
  EXPECT_THROW((void)net.weights_T(1), ContractViolation);
  EXPECT_NO_THROW((void)net.weights_T(0));  // untouched layers stay synced
  EXPECT_THROW((void)net.weights_delta(1), ContractViolation);
  net.sync_transpose();
  EXPECT_TRUE(net.transpose_synced());
}

TEST(DeepNetwork, TrainsLabelsAndEvaluatesEndToEnd) {
  const auto all = data::make_dataset(data::Task::kDigits, 140, 3);
  const auto train = all.take(100);
  const auto test = all.drop(100);
  auto cfg = tiny_config();
  cfg.hidden_neurons = {48};
  Rng rng(3);
  const auto model = train_and_label(cfg, train, test, 1, rng);
  EXPECT_GT(model.clean_accuracy, 0.15);  // well above the 10% chance floor
  // Deterministic end to end.
  Rng rng2(3);
  const auto model2 = train_and_label(cfg, train, test, 1, rng2);
  EXPECT_EQ(model.clean_accuracy, model2.clean_accuracy);
  for (std::size_t l = 0; l < model.net.n_layers(); ++l)
    EXPECT_EQ(model.net.weights(l), model2.net.weights(l));
}

TEST(DeepNetwork, RejectsZeroSizedHiddenLayers) {
  auto cfg = tiny_config();
  cfg.hidden_neurons = {16, 0};
  EXPECT_THROW(Network net(cfg), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::snn
