// Ablation C (DESIGN.md §5): what the *incremental* BER schedule of
// Algorithm 1 buys. All variants get the same total number of training
// epochs (5), so differences are attributable to the schedule, not to
// extra training:
//   * none        — 5 clean epochs (no fault awareness)
//   * direct-max  — 2 clean + 3 epochs at the maximum BER immediately
//   * incremental — 2 clean + 1 epoch each at 1e-7 -> 1e-5 -> 1e-3 (paper)

#include "bench_common.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Ablation — fault-aware training schedule",
                "Algorithm 1 raises the BER incrementally (10x per stage); "
                "compare against no fault training and direct-max training");
  const std::uint64_t seed = experiment_seed();
  const std::size_t neurons = 400;
  const std::size_t n_train = bench::train_samples_for(neurons);
  const std::size_t n_test = bench::test_samples();
  const auto all =
      data::make_dataset(data::Task::kDigits, n_train + n_test, seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);

  const auto cfg = bench::net_config(neurons);
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, seed);
  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto injector = error::ErrorInjector::for_weights(g, profile, {}, place, n_weights, seed,
                                      1e-3);

  core::FaultTrainingConfig ft;  // for clip / calibration defaults
  const auto ft_with = [](const std::vector<double>& stages) {
    core::FaultTrainingConfig c;
    c.ber_stages = stages;
    return c;
  };

  const auto run_variant = [&](const std::vector<double>& stages) {
    Rng rng(seed);
    auto model = snn::train_and_label(cfg, train, test, 2, rng);
    const double clean_before = model.clean_accuracy;
    if (!stages.empty()) {
      auto improved = core::improve_error_tolerance(model, ft_with(stages),
                                                    injector, train, test,
                                                    rng);
      model = improved.improved;
    } else {
      for (int e = 0; e < 3; ++e) snn::train_epoch(model.net, train, rng);
      model.labels = snn::label_neurons(model.net, train, rng);
    }
    struct Out {
      double clean_before, clean_after, corrupted;
    } out{};
    out.clean_before = clean_before;
    out.clean_after = snn::evaluate(model.net, model.labels, test, rng);
    out.corrupted = core::evaluate_corrupted(model.net, model.labels,
                                             injector, 1e-3, test, rng, 3,
                                             ft.weight_clip);
    return out;
  };

  Table t("ablation_training_schedule",
          {"schedule", "clean acc after", "corrupted acc @1e-3",
           "drop vs own clean [pp]"});
  const auto add = [&](const char* name, const std::vector<double>& stages) {
    const auto o = run_variant(stages);
    t.add_row({name, Table::pct(100.0 * o.clean_after, 1),
               Table::pct(100.0 * o.corrupted, 1),
               Table::num(100.0 * (o.clean_after - o.corrupted), 2)});
  };
  add("none (5 clean epochs)", {});
  add("direct-max (3 epochs @1e-3)", {1e-3, 1e-3, 1e-3});
  add("incremental (1e-7/1e-5/1e-3)", {1e-7, 1e-5, 1e-3});
  t.emit();
  return 0;
}
