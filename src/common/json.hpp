#pragma once
// Minimal, dependency-free JSON *writer* for scenario reports.
//
// The scenario runner's regression harness diffs emitted reports byte for
// byte (1 thread vs N threads, run vs golden digest), so the serialization
// must be stable: keys appear in insertion order, numbers are formatted
// with std::to_chars (shortest round-trip form, locale-independent), and
// indentation is fixed at two spaces. There is deliberately no parser —
// nothing in the framework consumes JSON; external tooling does.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sparkxd::json {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added): backslash, quote, and control characters below 0x20.
[[nodiscard]] std::string escape(std::string_view s);

/// Shortest round-trip decimal form of `v` via std::to_chars. NaN and
/// infinities are not representable in JSON; a non-finite value is a bug in
/// the caller (every metric the reports serialize is validated finite), so
/// it throws ContractViolation instead of silently degrading to "null".
[[nodiscard]] std::string number(double v);

/// Streaming writer with contract-checked nesting.
///
///   Writer w;
///   w.begin_object()
///       .field("name", "digits-small")
///       .key("voltages").begin_array().value(1.25).value(1.1).end_array()
///   .end_object();
///   std::string doc = w.str();
class Writer {
 public:
  /// `pretty` = newline + 2-space indentation; false = single line.
  explicit Writer(bool pretty = true) : pretty_(pretty) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Emits the key of the next value; only valid directly inside an object.
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(double v);
  Writer& value(bool v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& null();

  /// key() + value() in one call.
  template <typename T>
  Writer& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// True once every begin_ has been matched by its end_ and a single
  /// top-level value has been written.
  [[nodiscard]] bool complete() const;

  /// The document so far; callers should check complete() first.
  [[nodiscard]] const std::string& str() const& { return out_; }

 private:
  struct Level {
    bool is_array = false;
    bool empty = true;
  };

  void prepare_value();  ///< comma/indent bookkeeping before any value
  void newline_indent(std::size_t depth);

  std::string out_;
  std::vector<Level> stack_;
  bool pretty_ = true;
  bool have_key_ = false;
  bool root_written_ = false;
};

}  // namespace sparkxd::json
