#pragma once
// Pluggable ECC schemes — the third approximation axis (voltage × refresh ×
// ECC).
//
// SparkXD's first two knobs make the DRAM *worse* (lower voltage, relaxed
// refresh) and teach the network to cope; ECC spends storage and decode
// effort to make the stored weights *better* again. Generalizing the fixed
// SECDED utility (error/ecc.hpp) into an EccScheme interface lets the
// mapping trade code strength against BER_th per layer: a layer whose
// learned tolerance the operating point exceeds can escalate to a stronger
// code (ecc_escalation_ladder) instead of relaxing its placement threshold.
//
// Registered schemes:
//  * None    — no protection (t=0, d=0); the legacy pipeline behavior.
//  * Parity  — one parity bit per codeword, detect-only (t=0, d=1).
//  * Secded  — the existing Hamming(72,64); bit-identical to
//              secded_encode/secded_decode through this interface
//              (t=1, d=2; tests/ecc_scheme_test.cpp locks the equivalence).
//  * Hsiao   — odd-weight-column SECDED with configurable d/k: every data
//              column of H has odd weight >= 3, so any double error has an
//              even, hence non-column, syndrome — 2-bit patterns can NEVER
//              miscorrect (t=1, d=2, same overhead as Hamming at d=64).
//  * BchT2   — shortened binary BCH over GF(2^m) with designed distance 5
//              plus an overall parity bit (d_min >= 6): corrects any 2,
//              detects any 3 bit errors per codeword (t=2, d=3). Check bits
//              auto-size from the field (15 bits at d=64 up to 33 bits at
//              d=32768 — the large-codeword 512 B–4 KB mode, where the
//              relative storage overhead drops below 1%).
//
// Every scheme also carries a controller-side cost model: decode latency
// per codeword (fed into the dram::Controller access timeline by
// core::weight_stream_energy) and decode energy per codeword (the
// EnergyBreakdown::ecc_nj component), plus tolerable_raw_ber() — the raw
// bit-error rate the code absorbs while keeping the post-correction
// residual BER at a layer's learned tolerance.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "error/injector.hpp"  // WeightFlip, SanitizeRange, revert_flips

namespace sparkxd::error {

enum class EccKind : std::uint8_t {
  kNone = 0,
  kParity,
  kSecded,
  kHsiao,
  kBch,
};

/// Stable lower-case label of a kind: "off", "parity", "secded", "hsiao",
/// "bch".
[[nodiscard]] const char* to_string(EccKind kind) noexcept;

/// Pure-data ECC configuration (the RefreshPolicy pattern): what a Scenario
/// names, what PipelineConfig validates, what make_ecc_scheme constructs.
struct EccSpec {
  EccKind kind = EccKind::kNone;
  /// Data bits per codeword. Must be a positive multiple of 32 (whole FP32
  /// weights) up to 32768 (the 4 KB large-codeword mode); 64 is the classic
  /// per-word granularity of the legacy SECDED path.
  std::size_t data_bits = 64;
  /// Check bits; 0 = auto-size for the kind (parity 1, secded 8, hsiao the
  /// smallest feasible column count, bch from the field size). A non-zero
  /// value must match the kind's sizing rule exactly (hsiao additionally
  /// accepts any feasible k <= 32).
  std::size_t check_bits = 0;

  [[nodiscard]] bool enabled() const noexcept { return kind != EccKind::kNone; }

  /// Throws ContractViolation with a specific message on the first problem
  /// (bad data size, infeasible check-bit override, kind-specific limits).
  void validate() const;

  friend bool operator==(const EccSpec&, const EccSpec&) = default;
};

/// Minimum (= auto) check-bit count of a spec's (kind, data_bits) pair.
[[nodiscard]] std::size_t ecc_min_check_bits(EccKind kind,
                                             std::size_t data_bits);

/// Scenario-name-safe label of a spec: "off", "parity", "secded", "hsiao",
/// "bch", with the data size appended when it is not the default 64
/// ("bch4096b").
[[nodiscard]] std::string ecc_label(const EccSpec& spec);

/// Outcome of decoding one codeword.
enum class EccStatus : std::uint8_t {
  kClean,      ///< no error observed
  kCorrected,  ///< <= t errors corrected; the codeword is fully restored
  kDetected,   ///< uncorrectable error flagged; the codeword is untouched
};

struct EccDecode {
  EccStatus status = EccStatus::kClean;
  unsigned bits_corrected = 0;  ///< codeword bits flipped back (data + check)
};

/// One error-correcting code over fixed-size codewords. Data and check bits
/// live in little-endian std::uint64_t arrays (data bit i = word i/64, bit
/// i%64 — the in-memory layout of FP32 weight words on this target; check
/// bits likewise). decode() repairs check bits along with data, so a
/// kCorrected/kClean codeword is a valid codeword afterwards.
class EccScheme {
 public:
  virtual ~EccScheme() = default;

  [[nodiscard]] virtual EccKind kind() const noexcept = 0;
  /// Human-readable "(n,k)" style name, e.g. "secded(72,64)".
  [[nodiscard]] virtual std::string name() const = 0;
  /// Guaranteed corrected error weight t (any pattern of <= t bit errors is
  /// fully corrected).
  [[nodiscard]] virtual unsigned correctable_bits() const noexcept = 0;
  /// Guaranteed detected error weight d (any pattern of t < weight <= d is
  /// flagged, never miscorrected).
  [[nodiscard]] virtual unsigned detectable_bits() const noexcept = 0;

  /// Computes the check bits of `data` (data_words() words) into `check`
  /// (check_words() words; bits past check_bits() are cleared).
  virtual void encode(const std::uint64_t* data, std::uint64_t* check) const = 0;
  /// Checks (and within the t-guarantee corrects, in place) one codeword.
  virtual EccDecode decode(std::uint64_t* data,
                           std::uint64_t* check) const = 0;

  [[nodiscard]] std::size_t data_bits() const noexcept { return data_bits_; }
  [[nodiscard]] std::size_t check_bits() const noexcept { return check_bits_; }
  [[nodiscard]] std::size_t data_words() const noexcept {
    return (data_bits_ + 63) / 64;
  }
  [[nodiscard]] std::size_t check_words() const noexcept {
    return (check_bits_ + 63) / 64;
  }
  /// Redundant storage per stored data bit (check_bits / data_bits); the
  /// classic SECDED(72,64) is 0.125.
  [[nodiscard]] double storage_overhead() const noexcept {
    return static_cast<double>(check_bits_) / static_cast<double>(data_bits_);
  }

  /// Controller-side decode latency per fetched codeword, ns. Syndrome
  /// computation is an XOR tree (flat), but algebraic decoding (BCH Chien
  /// search) grows with the codeword.
  [[nodiscard]] double decode_latency_ns() const noexcept;
  /// Decode logic energy per fetched codeword, nJ — on the fixed logic
  /// rail, like the I/O term (does not scale with the DRAM array supply).
  [[nodiscard]] double decode_energy_nj() const noexcept;

  /// Largest raw module BER at which the post-correction residual BER still
  /// stays at `post_ber`: inverts the leading term of the residual rate
  /// (t+1) * C(n, t+1) * p^(t+1) / n of an (n, k) t-corrector under
  /// independent bit errors. Detect-only and unprotected codes pass
  /// `post_ber` through unchanged (detection does not restore bits).
  [[nodiscard]] double tolerable_raw_ber(double post_ber) const;

 protected:
  EccScheme(std::size_t data_bits, std::size_t check_bits)
      : data_bits_(data_bits), check_bits_(check_bits) {}

  std::size_t data_bits_;
  std::size_t check_bits_;
};

/// Constructs the scheme a (validated) spec describes. Throws
/// ContractViolation on an invalid spec.
[[nodiscard]] std::unique_ptr<EccScheme> make_ecc_scheme(const EccSpec& spec);

/// Escalation ladder of a base spec: the spec itself first, then strictly
/// stronger codes at the same codeword size (t=0 -> t=1 -> t=2), ending at
/// BCH. The per-layer assignment in the voltage sweep walks this ladder
/// until the code's tolerable_raw_ber covers the operating BER — weak
/// layers buy stronger codes instead of relaxing placement capacity. A
/// disabled spec never escalates (ladder = {spec}).
[[nodiscard]] std::vector<EccSpec> ecc_escalation_ladder(const EccSpec& spec);

/// Representative specs across every kind and codeword size — what the
/// exhaustive sweep and the property/fuzz tests iterate. Includes the
/// 512 B and 4 KB large-codeword BCH modes.
[[nodiscard]] std::vector<EccSpec> registered_ecc_specs();

// ---------------------------------------------------------------------------
// Buffer-level helpers over FP32 weight arrays. Codeword c covers the FP32
// words [c * data_bits/32, (c+1) * data_bits/32); the tail codeword is
// zero-padded. Check words of codeword c live at [c * check_words(), ...)
// of the check buffer.

/// Codewords needed to protect n_weights FP32 values.
[[nodiscard]] std::size_t ecc_codeword_count(const EccScheme& scheme,
                                             std::size_t n_weights);

/// FP32-word equivalent of the check storage for n_weights values (rounded
/// up to whole words) — what the check bits add to the layer's DRAM
/// placement and streamed traffic.
[[nodiscard]] std::size_t ecc_check_float_equiv(const EccScheme& scheme,
                                                std::size_t n_weights);

/// Aggregate results of scrubbing codewords.
struct EccScrubStats {
  std::size_t codewords = 0;       ///< codewords decoded
  std::size_t corrected = 0;       ///< codewords fully restored
  std::size_t detected = 0;        ///< codewords flagged uncorrectable
  std::size_t bits_corrected = 0;  ///< total bits flipped back
};

/// Encodes a clean weight buffer: check_words() words per codeword,
/// sequentially.
[[nodiscard]] std::vector<std::uint64_t> ecc_encode_buffer(
    const EccScheme& scheme, const std::vector<float>& weights);

/// Decodes/corrects every codeword of a (possibly corrupted) buffer in
/// place against check words computed from the clean weights. Detected
/// codewords are left as-is.
EccScrubStats ecc_scrub_buffer(const EccScheme& scheme,
                               std::vector<float>& weights,
                               const std::vector<std::uint64_t>& checks);

/// Monte-Carlo hot-path scrub: decodes ONLY the codewords containing a word
/// recorded in flips[0..n_injected) — clean codewords decode clean by
/// construction, so the pass is O(corrupted codewords), not O(buffer).
/// Every word it modifies (corrections, and the load-time range clip
/// applied to words of codewords the code could NOT restore) is appended to
/// `flips` with its pre-modification value, so revert_flips(weights, flips)
/// still restores the buffer bit for bit. Corrected codewords return to
/// their clean values and are not clipped; any non-finite value a
/// beyond-guarantee miscorrection leaves behind goes through the clip like
/// other surviving corruption.
EccScrubStats ecc_scrub_codewords(const EccScheme& scheme,
                                  std::vector<float>& weights,
                                  const std::vector<std::uint64_t>& checks,
                                  std::vector<WeightFlip>& flips,
                                  std::size_t n_injected,
                                  const SanitizeRange& post_sanitize);

}  // namespace sparkxd::error
