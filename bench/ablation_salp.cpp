// Ablation F: subarray-level parallelism (SALP).
//
// The paper's §IV-D notes that Algorithm 2's subarray-granularity mapping
// can also exploit subarray-level parallelism in "new DRAM architectures"
// (Putra et al. [14], after SALP). This bench quantifies what that buys:
// with per-subarray row buffers, the safe-subarray walk's row switches
// inside a bank stop costing PRE+ACT.
//
// Workload: the Algorithm-2 weight stream read twice (two inference passes
// back-to-back, as a pipelined deployment would), plus the adversarial
// row-scatter layout where SALP's benefit is largest.

#include "bench_common.hpp"
#include "dram/controller.hpp"
#include "energy/power_model.hpp"
#include "error/subarray_profile.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Ablation — subarray-level parallelism (SALP)",
                "per-subarray row buffers remove intra-bank row conflicts "
                "(paper §IV-D, exploiting [14])");
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, experiment_seed());
  const std::size_t n_weights = 784 * 900;
  const double ber = 1e-3;

  const auto prop =
      mapping::sparkxd_placement(g, profile, ber, ber, n_weights);
  // Adversarial: consecutive chunks walk rows within one bank's subarrays.
  error::ChunkPlacement scatter;
  const std::size_t chunks = mapping::chunks_for_weights(g, n_weights);
  for (std::size_t c = 0; c < chunks; ++c) {
    dram::Address a;
    a.subarray =
        static_cast<std::uint32_t>(c % g.subarrays_per_bank);
    a.row = static_cast<std::uint32_t>((c / g.subarrays_per_bank) %
                                       g.rows_per_subarray);
    scatter.push_back(a);
  }

  const dram::TimingParams timing = dram::TimingParams::lpddr3_1600();
  dram::Controller commodity(g, timing, false);
  dram::Controller salp(g, timing, true);
  const energy::PowerModel pm;

  Table t("ablation_salp",
          {"workload", "controller", "hit rate", "conflicts", "time [us]",
           "energy [uJ]"});
  const auto add = [&](const char* wl, const char* name,
                       dram::Controller& c, const dram::AccessTrace& trace) {
    const auto s = c.run(trace, core::kBurstArrivalNs);
    const auto e = pm.trace_energy(s, 1.025);
    t.add_row({wl, name, Table::num(s.hit_rate(), 4),
               std::to_string(s.conflicts),
               Table::num(s.total_time_ns / 1000.0, 1),
               Table::num(e.total_nj() / 1000.0, 1)});
  };
  const auto stream =
      mapping::streaming_read_trace(g, prop.chunks, n_weights, 2);
  add("Algorithm 2, 2 passes", "commodity", commodity, stream);
  add("Algorithm 2, 2 passes", "SALP", salp, stream);
  const auto scatter_trace =
      mapping::streaming_read_trace(g, scatter, n_weights);
  add("row-scatter (adversarial)", "commodity", commodity, scatter_trace);
  add("row-scatter (adversarial)", "SALP", salp, scatter_trace);
  t.emit();
  return 0;
}
