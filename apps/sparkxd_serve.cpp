// sparkxd_serve — long-lived batched-inference daemon.
//
// Loads a serving artifact (sparkxd_run --export-artifact) once, then
// serves classify requests over the length-prefixed TCP protocol
// (src/serve/protocol.hpp) with an admission queue and dynamic batching.
// SIGTERM/SIGINT triggers a graceful drain: every admitted request is
// answered, then the process exits 0 with final counters on stderr.
// SIGHUP hot-reloads the artifact file: the new file is loaded and
// validated off to the side, then atomically installed as the next
// generation — in-flight requests finish on the old artifact and no
// connection is dropped. A reload that fails to load keeps the old
// generation serving.
//
//   sparkxd_serve --artifact model.sxda [--port N] [--port-file FILE]
//                 [--workers N] [--max-batch N] [--max-wait-us N]
//                 [--max-queue N] [--read-deadline-ms N]
//                 [--request-deadline-us N] [--max-conns N]
//                 [--watchdog-ms N]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// resolved port as a single decimal line — to a temp file first, then
// rename()d into place, so a poller never reads a half-written file.
//
// Exit codes: 0 clean shutdown, 2 bad usage, 1 startup failure.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>
#include <thread>

#include "serve/artifact.hpp"
#include "serve/server.hpp"

namespace {

std::atomic<int> g_signal{0};
std::atomic<bool> g_reload{false};

void on_signal(int sig) {
  if (sig == SIGHUP) {
    g_reload.store(true);
  } else {
    g_signal.store(sig);
  }
}

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: sparkxd_serve --artifact FILE [options]\n"
      "  --artifact FILE    serving artifact from sparkxd_run "
      "--export-artifact\n"
      "  --port N           TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
      "  --port-file FILE   write the resolved port to FILE once listening\n"
      "                     (temp file + atomic rename)\n"
      "  --workers N        worker threads, one engine each (default 1)\n"
      "  --max-batch N      batch size ceiling (default 16)\n"
      "  --max-wait-us N    batching linger after the first queued request\n"
      "                     (default 200)\n"
      "  --max-queue N      admission-queue bound; overflowing classify\n"
      "                     requests get a kQueueFull reply instead of\n"
      "                     growing memory (default 4096)\n"
      "  --read-deadline-ms N   evict a connection whose frame stalls\n"
      "                     mid-read past N ms (slow-loris defense;\n"
      "                     default 5000, 0 disables)\n"
      "  --request-deadline-us N  answer kDeadlineExceeded instead of\n"
      "                     classifying a request that queued longer than\n"
      "                     N us (default 0 = disabled)\n"
      "  --max-conns N      close accepts beyond N live connections\n"
      "                     (default 0 = unlimited)\n"
      "  --watchdog-ms N    log + count a worker stuck on one batch past\n"
      "                     N ms (default 10000, 0 disables)\n"
      "  --help             this message\n"
      "\nSIGTERM/SIGINT drains admitted requests, answers them, and exits "
      "0.\nSIGHUP reloads the artifact file as a new generation without "
      "dropping connections.\n");
}

long long parse_count(const char* what, const char* spec, long long lo,
                      long long hi) {
  char* end = nullptr;
  const long long v = std::strtoll(spec, &end, 10);
  if (end == spec || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "sparkxd_serve: %s wants an integer in [%lld, %lld]\n",
                 what, lo, hi);
    std::exit(2);
  }
  return v;
}

/// Publishes the port atomically: write + flush a sibling temp file, then
/// rename() over the destination. A reader either sees no file or a
/// complete one, never a torn write.
bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream pf(tmp, std::ios::trunc);
    pf << port << "\n";
    pf.close();
    if (!pf) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparkxd;

  std::string artifact_path, port_file;
  serve::ServerConfig config;
  config.read_deadline_ms = 5000;
  config.watchdog_stall_ms = 10'000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sparkxd_serve: %s needs an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--artifact") {
      artifact_path = next("--artifact");
    } else if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(
          parse_count("--port", next("--port"), 0, 65535));
    } else if (arg == "--port-file") {
      port_file = next("--port-file");
    } else if (arg == "--workers") {
      config.workers = static_cast<std::size_t>(
          parse_count("--workers", next("--workers"), 1, 4096));
    } else if (arg == "--max-batch") {
      config.max_batch = static_cast<std::size_t>(
          parse_count("--max-batch", next("--max-batch"), 1, 1 << 20));
    } else if (arg == "--max-wait-us") {
      config.max_wait_us = static_cast<std::uint64_t>(
          parse_count("--max-wait-us", next("--max-wait-us"), 0, 60'000'000));
    } else if (arg == "--max-queue") {
      config.max_queue = static_cast<std::size_t>(
          parse_count("--max-queue", next("--max-queue"), 1, 1 << 24));
    } else if (arg == "--read-deadline-ms") {
      config.read_deadline_ms = static_cast<std::uint64_t>(parse_count(
          "--read-deadline-ms", next("--read-deadline-ms"), 0, 3'600'000));
    } else if (arg == "--request-deadline-us") {
      config.request_deadline_us = static_cast<std::uint64_t>(
          parse_count("--request-deadline-us", next("--request-deadline-us"),
                      0, 3'600'000'000ll));
    } else if (arg == "--max-conns") {
      config.max_conns = static_cast<std::size_t>(
          parse_count("--max-conns", next("--max-conns"), 0, 1 << 20));
    } else if (arg == "--watchdog-ms") {
      config.watchdog_stall_ms = static_cast<std::uint64_t>(
          parse_count("--watchdog-ms", next("--watchdog-ms"), 0, 3'600'000));
    } else {
      std::fprintf(stderr, "sparkxd_serve: unknown option '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }
  if (artifact_path.empty()) {
    std::fprintf(stderr, "sparkxd_serve: --artifact is required\n");
    print_usage(stderr);
    return 2;
  }

  try {
    auto artifact = serve::load_artifact_shared(artifact_path);
    serve::Server server(artifact, config);

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGHUP, on_signal);
    server.start();
    std::fprintf(stderr,
                 "sparkxd_serve: serving scenario '%s' on 127.0.0.1:%u "
                 "(%zu workers, batch<=%zu, wait<=%lluus, V=%.4f, "
                 "BER=%.3e)\n",
                 artifact->scenario.c_str(), server.port(), config.workers,
                 config.max_batch,
                 static_cast<unsigned long long>(config.max_wait_us),
                 artifact->v_supply, artifact->module_ber);
    artifact.reset();  // the server owns its generations from here on
    if (!port_file.empty() && !write_port_file(port_file, server.port())) {
      std::fprintf(stderr, "sparkxd_serve: cannot write port file '%s'\n",
                   port_file.c_str());
      return 1;
    }

    while (g_signal.load() == 0) {
      if (g_reload.exchange(false)) {
        // Load + validate off to the side; only a good artifact is swapped
        // in. In-flight batches finish on the old generation either way.
        try {
          server.reload(serve::load_artifact_shared(artifact_path));
          std::fprintf(
              stderr,
              "sparkxd_serve: reloaded '%s' as generation %llu\n",
              artifact_path.c_str(),
              static_cast<unsigned long long>(server.generation()));
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "sparkxd_serve: reload failed (%s) — keeping "
                       "generation %llu\n",
                       e.what(),
                       static_cast<unsigned long long>(server.generation()));
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "sparkxd_serve: signal %d, draining\n",
                 g_signal.load());
    server.request_stop();
    server.wait();

    const auto stats = server.stats();
    std::fprintf(
        stderr,
        "sparkxd_serve: drained — served=%llu batches=%llu "
        "max_queue_depth=%llu generation=%llu deadline_exceeded=%llu "
        "bad_frames=%llu evicted_slow=%llu rejected_conns=%llu "
        "wedged_events=%llu\n",
        static_cast<unsigned long long>(stats.served),
        static_cast<unsigned long long>(stats.batches),
        static_cast<unsigned long long>(stats.max_queue_depth),
        static_cast<unsigned long long>(stats.generation),
        static_cast<unsigned long long>(stats.deadline_exceeded),
        static_cast<unsigned long long>(stats.bad_frames),
        static_cast<unsigned long long>(stats.evicted_slow),
        static_cast<unsigned long long>(stats.rejected_conns),
        static_cast<unsigned long long>(stats.wedged_events));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sparkxd_serve: %s\n", e.what());
    return 1;
  }
}
