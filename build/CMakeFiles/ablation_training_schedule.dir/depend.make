# Empty dependencies file for ablation_training_schedule.
# This may be replaced when dependencies are built.
