# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig01a_model_size_accuracy.
