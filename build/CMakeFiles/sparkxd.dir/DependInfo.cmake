
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/env.cpp" "CMakeFiles/sparkxd.dir/src/common/env.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/common/env.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "CMakeFiles/sparkxd.dir/src/common/parallel.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/common/parallel.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/sparkxd.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/sparkxd.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/sparkxd.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/common/table.cpp.o.d"
  "/root/repo/src/core/fault_aware.cpp" "CMakeFiles/sparkxd.dir/src/core/fault_aware.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/core/fault_aware.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/sparkxd.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/data/canvas.cpp" "CMakeFiles/sparkxd.dir/src/data/canvas.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/data/canvas.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/sparkxd.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/dram/controller.cpp" "CMakeFiles/sparkxd.dir/src/dram/controller.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/dram/controller.cpp.o.d"
  "/root/repo/src/dram/geometry.cpp" "CMakeFiles/sparkxd.dir/src/dram/geometry.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/dram/geometry.cpp.o.d"
  "/root/repo/src/energy/ber_model.cpp" "CMakeFiles/sparkxd.dir/src/energy/ber_model.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/energy/ber_model.cpp.o.d"
  "/root/repo/src/energy/platform_model.cpp" "CMakeFiles/sparkxd.dir/src/energy/platform_model.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/energy/platform_model.cpp.o.d"
  "/root/repo/src/energy/power_model.cpp" "CMakeFiles/sparkxd.dir/src/energy/power_model.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/energy/power_model.cpp.o.d"
  "/root/repo/src/energy/voltage_model.cpp" "CMakeFiles/sparkxd.dir/src/energy/voltage_model.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/energy/voltage_model.cpp.o.d"
  "/root/repo/src/error/ecc.cpp" "CMakeFiles/sparkxd.dir/src/error/ecc.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/error/ecc.cpp.o.d"
  "/root/repo/src/error/injector.cpp" "CMakeFiles/sparkxd.dir/src/error/injector.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/error/injector.cpp.o.d"
  "/root/repo/src/error/subarray_profile.cpp" "CMakeFiles/sparkxd.dir/src/error/subarray_profile.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/error/subarray_profile.cpp.o.d"
  "/root/repo/src/mapping/mapping.cpp" "CMakeFiles/sparkxd.dir/src/mapping/mapping.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/mapping/mapping.cpp.o.d"
  "/root/repo/src/snn/encoding.cpp" "CMakeFiles/sparkxd.dir/src/snn/encoding.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/snn/encoding.cpp.o.d"
  "/root/repo/src/snn/lif.cpp" "CMakeFiles/sparkxd.dir/src/snn/lif.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/snn/lif.cpp.o.d"
  "/root/repo/src/snn/model_io.cpp" "CMakeFiles/sparkxd.dir/src/snn/model_io.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/snn/model_io.cpp.o.d"
  "/root/repo/src/snn/network.cpp" "CMakeFiles/sparkxd.dir/src/snn/network.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/snn/network.cpp.o.d"
  "/root/repo/src/snn/quant.cpp" "CMakeFiles/sparkxd.dir/src/snn/quant.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/snn/quant.cpp.o.d"
  "/root/repo/src/snn/stdp.cpp" "CMakeFiles/sparkxd.dir/src/snn/stdp.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/snn/stdp.cpp.o.d"
  "/root/repo/src/snn/trainer.cpp" "CMakeFiles/sparkxd.dir/src/snn/trainer.cpp.o" "gcc" "CMakeFiles/sparkxd.dir/src/snn/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
