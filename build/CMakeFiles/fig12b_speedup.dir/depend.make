# Empty dependencies file for fig12b_speedup.
# This may be replaced when dependencies are built.
