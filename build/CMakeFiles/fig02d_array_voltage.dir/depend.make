# Empty dependencies file for fig02d_array_voltage.
# This may be replaced when dependencies are built.
