// Ablation D: FP32 vs uint8 weight storage under approximate DRAM.
//
// EDEN [15] (the paper's error-model source) stores int8 weights; SparkXD
// stores FP32 (§V) and therefore needs load-time range clipping to bound
// exponent-bit damage. This bench quantifies both representations on the
// same trained model and the same weak cells:
//   * FP32, no clipping       — exponent flips are catastrophic
//   * FP32 + range clipping   — the framework's default deployment
//   * uint8 (per-row affine)  — corruption structurally bounded, and 4x
//                               less DRAM traffic on top.

#include "bench_common.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"
#include "snn/quant.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Ablation — weight storage representation",
                "uint8 storage bounds per-flip damage structurally; FP32 "
                "needs range clipping (EDEN-style) to survive");
  const std::uint64_t seed = experiment_seed();
  const std::size_t neurons = 400;
  const std::size_t n_train = bench::train_samples_for(neurons);
  const std::size_t n_test = bench::test_samples();
  const auto all =
      data::make_dataset(data::Task::kDigits, n_train + n_test, seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);
  Rng rng(seed);

  const auto cfg = bench::net_config(neurons);
  auto model = snn::train_and_label(cfg, train, test, 2, rng);
  const auto clean = model.net.weights();

  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, seed);
  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto inj_f32 = error::ErrorInjector::for_weights(
      g, profile, {}, place, n_weights, seed, 1e-3);
  // uint8 payload is 4x smaller; it occupies the prefix of the same layout.
  const error::ErrorInjector inj_u8(g, profile, {}, place, n_weights, seed,
                                    1e-3);

  auto quant = snn::quantize(clean, cfg.n_neurons, cfg.n_inputs);
  const auto quant_clean_codes = quant.codes;

  Table t("ablation_quantization",
          {"storage", "bytes", "accuracy @BER 1e-4", "accuracy @BER 1e-3"});
  const int trials = 3;

  const auto eval_f32 = [&](double ber, float clip) {
    double acc = 0.0;
    for (int i = 0; i < trials; ++i) {
      model.net.weights_mut() = clean;
      inj_f32.inject(model.net.weights_mut(), ber, rng, {0.0f, clip});
      acc += snn::evaluate(model.net, model.labels, test, rng);
    }
    model.net.weights_mut() = clean;
    return acc / trials;
  };
  const auto eval_u8 = [&](double ber) {
    double acc = 0.0;
    for (int i = 0; i < trials; ++i) {
      quant.codes = quant_clean_codes;
      inj_u8.inject_bytes(quant.codes.data(), quant.codes.size(), ber, rng);
      model.net.weights_mut() = snn::dequantize(quant);
      acc += snn::evaluate(model.net, model.labels, test, rng);
    }
    model.net.weights_mut() = clean;
    return acc / trials;
  };

  t.add_row({"FP32, no clipping", std::to_string(n_weights * 4),
             Table::pct(100.0 * eval_f32(1e-4, 1e30f), 1),
             Table::pct(100.0 * eval_f32(1e-3, 1e30f), 1)});
  t.add_row({"FP32 + clip 0.4", std::to_string(n_weights * 4),
             Table::pct(100.0 * eval_f32(1e-4, 0.4f), 1),
             Table::pct(100.0 * eval_f32(1e-3, 0.4f), 1)});
  t.add_row({"uint8 per-row affine", std::to_string(n_weights),
             Table::pct(100.0 * eval_u8(1e-4), 1),
             Table::pct(100.0 * eval_u8(1e-3), 1)});
  t.emit();

  Table s("ablation_quantization_ref", {"reference", "value"});
  s.add_row({"clean FP32 accuracy",
             Table::pct(100.0 * model.clean_accuracy, 1)});
  {
    quant.codes = quant_clean_codes;
    model.net.weights_mut() = snn::dequantize(quant);
    s.add_row({"clean uint8 accuracy (quantization loss only)",
               Table::pct(100.0 * snn::evaluate(model.net, model.labels,
                                                test, rng),
                          1)});
    model.net.weights_mut() = clean;
  }
  s.emit();
  return 0;
}
