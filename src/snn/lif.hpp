#pragma once
// Leaky integrate-and-fire neuron layer with adaptive thresholds
// (homeostasis), refractory periods, and all-to-all lateral inhibition —
// the excitatory layer of the paper's Fig. 4a architecture.

#include <cstdint>
#include <vector>

#include "snn/params.hpp"

namespace sparkxd::snn {

/// A population of LIF neurons advanced in discrete steps.
///
/// Dynamics per step (dt):
///   v <- v_rest + (v - v_rest) * exp(-dt/tau_m) + I
///   spike if v >= v_thresh + theta  ->  v = v_reset, refractory, theta +=
///   theta_plus (when plastic); every spike subtracts `inhibition` from all
///   other neurons' potentials (lateral inhibition).
class LifLayer {
 public:
  LifLayer(std::size_t n, const LifParams& p, float dt_ms);

  /// Clears membrane potentials and refractory counters (not theta — the
  /// adaptive threshold persists across samples by design).
  void reset_dynamics();

  /// Clears everything including the adaptive thresholds.
  void reset_all();

  /// Enables/disables plasticity of the adaptive threshold. During
  /// evaluation theta is frozen (standard for this architecture) so that
  /// inference is deterministic given the weights.
  void set_plastic(bool plastic) noexcept { plastic_ = plastic; }

  /// Advances one step with per-neuron input current; appends spiking neuron
  /// indices to `spikes_out` (cleared first).
  void step(const std::vector<float>& input_current,
            std::vector<std::uint32_t>& spikes_out);

  /// True when a zero-input step is provably the identity for any at-rest
  /// state: plasticity frozen (theta neither decays nor grows) and every
  /// threshold strictly above the resting potential, so a neuron sitting at
  /// v_rest with no drive can never cross. The event engine checks this once
  /// per infer call before it is allowed to skip empty timesteps.
  [[nodiscard]] bool silent_at_rest() const noexcept;
  /// True when the layer currently sits exactly at rest: every membrane
  /// potential bit-equal to v_rest and no refractory counter running.
  /// Diagnostic/test predicate — the event engine arms skipping from the
  /// per-sample reset_dynamics() state only (float decay cannot return to
  /// exact rest within a sample, so a per-step re-arm check never pays).
  [[nodiscard]] bool at_exact_rest() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }
  [[nodiscard]] const std::vector<float>& potentials() const noexcept {
    return v_;
  }
  [[nodiscard]] const std::vector<float>& thetas() const noexcept {
    return theta_;
  }
  /// Direct theta access for snapshot/restore in the trainer.
  [[nodiscard]] std::vector<float>& thetas_mut() noexcept { return theta_; }

 private:
  LifParams p_;
  float decay_m_;      ///< exp(-dt/tau_m)
  float decay_theta_;  ///< exp(-dt/tau_theta)
  bool plastic_ = true;
  std::vector<float> v_;
  std::vector<float> theta_;
  std::vector<std::int32_t> refractory_;
};

}  // namespace sparkxd::snn
