# Empty dependencies file for energy_voltage_test.
# This may be replaced when dependencies are built.
