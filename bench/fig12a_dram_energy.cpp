// Fig. 12a: DRAM access energy of one inference — baseline SNN with
// accurate DRAM (1.350 V, baseline mapping) vs SparkXD-improved SNN with
// approximate DRAM (Algorithm-2 mapping) across supply voltages and
// network sizes.
// Paper: reducing V_supply to 1.325/1.250/1.175/1.100/1.025 V saves
// 3.84/13.33/22.69/31.12/39.46 % on average across sizes.

#include "bench_common.hpp"
#include "energy/ber_model.hpp"
#include "error/subarray_profile.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 12a — DRAM energy per inference",
                "~3.8/13.3/22.7/31.1/39.5 % saving at the five reduced "
                "voltages, across network sizes");
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, experiment_seed());
  const energy::BerModel bm;

  Table t("fig12a_dram_energy",
          {"network", "V_supply [V]", "mapping", "energy [uJ]", "saving"});
  std::vector<double> avg_saving(5, 0.0);
  for (const auto neurons : bench::kPaperSizes) {
    const std::size_t n_weights = 784 * neurons;
    const auto base_place = mapping::baseline_placement(g, n_weights);
    const double e_base =
        core::weight_stream_energy(g, base_place, n_weights, 1.350)
            .energy.total_nj();
    const std::string name = "N" + std::to_string(neurons);
    t.add_row({name, "1.350", "baseline", Table::num(e_base / 1000.0, 1),
               "-"});
    int vi = 0;
    for (const double v : energy::kEvalVoltages) {
      const double ber = bm.ber(v);
      // BER_th = the trained tolerance; the full pipeline learns 1e-3
      // (see fig11); mapping at min(1e-3, anything above module BER).
      const auto prop = mapping::sparkxd_placement(g, profile, ber,
                                                   std::max(ber, 1e-3),
                                                   n_weights);
      const double e =
          core::weight_stream_energy(g, prop.chunks, n_weights, v)
              .energy.total_nj();
      const double saving = 100.0 * (1.0 - e / e_base);
      avg_saving[static_cast<std::size_t>(vi)] += saving / 5.0;
      t.add_row({name, Table::num(v, 3), "SparkXD",
                 Table::num(e / 1000.0, 1), Table::pct(saving)});
      ++vi;
    }
  }
  t.emit();

  Table avg("fig12a_average_savings",
            {"V_supply [V]", "paper avg saving", "measured avg saving"});
  const double paper[] = {3.84, 13.33, 22.69, 31.12, 39.46};
  for (int i = 0; i < 5; ++i)
    avg.add_row({Table::num(energy::kEvalVoltages[i], 3),
                 Table::pct(paper[i]),
                 Table::pct(avg_saving[static_cast<std::size_t>(i)])});
  avg.emit();
  return 0;
}
