#pragma once
// DRAM timing parameters (paper Fig. 5b / Fig. 6).
//
// tRCD — ACT to RD/WR delay (array must reach the ready-to-access voltage,
//        75% of V_supply).
// tRAS — ACT to PRE delay (cells must be restored to the ready-to-precharge
//        voltage, 98% of V_supply).
// tRP  — PRE to next ACT delay (bitlines must equalize to within 2% of
//        V_supply/2).
// tREFI/tRFC — auto-refresh cadence: one all-bank REF every tREFI, each
//        occupying the device for tRFC (EDEN [15] and EnforceSNN relax this
//        cadence as a second, voltage-independent approximation axis).
//
// The nominal values below are the LPDDR3-1600 datasheet numbers the paper's
// SPICE study reproduces at 1.35 V; at reduced voltage the VoltageModel in
// src/energy re-derives tRCD/tRAS/tRP from the array-voltage waveform.

#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"

namespace sparkxd::dram {

/// Timing parameters in nanoseconds.
struct TimingParams {
  double t_ck = 1.25;   ///< clock period (LPDDR3-1600: 800 MHz)
  double t_rcd = 18.0;  ///< ACT -> column command
  double t_ras = 42.0;  ///< ACT -> PRE
  double t_rp = 18.0;   ///< PRE -> ACT
  double t_cl = 15.0;   ///< column command -> first data beat
  double t_burst = 5.0; ///< BL8 data transfer (4 clocks, DDR)
  double t_rrd = 10.0;  ///< ACT -> ACT, different banks
  double t_refi = 7800.0;  ///< average REF-to-REF interval (tREFI)
  double t_rfc = 130.0;    ///< all-bank REF cycle time (tRFCab, 4 Gb)

  /// ACT -> ACT same bank (row cycle).
  [[nodiscard]] double t_rc() const noexcept { return t_ras + t_rp; }

  /// Nominal LPDDR3-1600 timings at V_supply = 1.35 V.
  [[nodiscard]] static TimingParams lpddr3_1600() { return {}; }
};

/// How the controller schedules auto-refresh.
enum class RefreshMode : std::uint8_t {
  /// Refresh is not simulated: no REF commands, no tRFC stalls. This is the
  /// pre-refresh-axis behavior of the controller (and the default), so every
  /// existing trace, report, and golden digest is reproduced bit for bit.
  /// The energy model falls back to its makespan-proportional refresh
  /// estimate for this mode (refresh still happens in the background of a
  /// real module; it just is not modelled as stalls here).
  kDisabled = 0,
  /// Datasheet cadence: one all-bank REF every tREFI.
  kNominal = 1,
  /// Reduced-rate refresh: one REF every `interval_multiplier` x tREFI.
  /// Fewer REF stalls and less refresh energy, paid for with
  /// retention-failure bit errors (error::RetentionSpec).
  kReduced = 2,
};

[[nodiscard]] const char* to_string(RefreshMode m) noexcept;

/// Refresh policy of a DRAM module: the second approximation axis next to
/// supply-voltage scaling. A policy is pure data; the Controller turns it
/// into REF windows and the power model into refresh energy.
struct RefreshPolicy {
  RefreshMode mode = RefreshMode::kDisabled;
  /// Effective refresh interval in units of tREFI (>= 1). Only meaningful
  /// for kReduced; kNominal pins it to 1.
  double interval_multiplier = 1.0;

  [[nodiscard]] static RefreshPolicy disabled() { return {}; }
  [[nodiscard]] static RefreshPolicy nominal() {
    return {RefreshMode::kNominal, 1.0};
  }
  [[nodiscard]] static RefreshPolicy reduced(double multiplier) {
    return {RefreshMode::kReduced, multiplier};
  }

  /// True when the controller must schedule REF commands.
  [[nodiscard]] bool simulated() const noexcept {
    return mode != RefreshMode::kDisabled;
  }

  /// Effective REF-to-REF interval under this policy, in ns.
  [[nodiscard]] double effective_refi_ns(const TimingParams& t) const {
    return t.t_refi *
           (mode == RefreshMode::kReduced ? interval_multiplier : 1.0);
  }

  /// Multiplier actually applied (1 for nominal/disabled).
  [[nodiscard]] double effective_multiplier() const noexcept {
    return mode == RefreshMode::kReduced ? interval_multiplier : 1.0;
  }

  /// Checks the policy against a timing set: the multiplier must be a
  /// finite value >= 1, and a REF must fit between two REFs (tRFC < the
  /// effective tREFI) or the device would refresh back to back.
  void validate(const TimingParams& t) const {
    SPARKXD_REQUIRE(std::isfinite(interval_multiplier) &&
                        interval_multiplier >= 1.0,
                    "refresh interval multiplier must be finite and >= 1");
    if (!simulated()) return;
    SPARKXD_REQUIRE(t.t_refi > 0.0 && t.t_rfc > 0.0,
                    "tREFI and tRFC must be positive to simulate refresh");
    SPARKXD_REQUIRE(t.t_rfc < effective_refi_ns(t),
                    "tRFC must be shorter than the effective tREFI");
  }
};

}  // namespace sparkxd::dram
