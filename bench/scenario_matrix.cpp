// Scenario-matrix sweep: the CLI's engine driven as a bench.
//
// Expands a tiny ScenarioMatrix (both tasks × commodity/SALP × Model-0/1)
// and runs the batch through scenario::run_scenarios — the same path
// `sparkxd_run` and the golden harness use — printing one row per scenario.
// This is the grid view the paper's Figs. 11-12 aggregate: accuracy
// resilience and energy saving per workload cell, plus what SALP buys.
//
// Wall-clock scales with SPARKXD_THREADS: scenarios fan out across workers
// (nested pipeline parallelism runs inline), so on a multi-core host the
// whole grid costs about one scenario.

#include <chrono>

#include "bench_common.hpp"
#include "scenario/matrix.hpp"
#include "scenario/runner.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Scenario matrix sweep",
                "SparkXD holds accuracy within the bound while saving "
                "DRAM energy across workloads, organizations, and error "
                "models (Figs. 11-12)");

  scenario::ScenarioMatrix m;
  m.tasks = {data::Task::kDigits, data::Task::kFashion};
  m.sizes = {{"tiny", 25, scaled(100, 50), scaled(50, 25), 1}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false},
                  {"salp", dram::Geometry::lpddr3_4gb(), true}};
  error::ErrorModelSpec m1;
  m1.kind = error::ErrorModelKind::kModel1Bitline;
  m.error_models = {{"m0", {}}, {"m1", m1}};
  m.voltage_grids = {{"v3", {1.250, 1.100, 1.025}}};
  m.seeds = {experiment_seed()};

  const auto scenarios = m.expand();
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = scenario::run_scenarios(scenarios);
  const auto dt = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  Table t("scenario_matrix",
          {"scenario", "baseline", "improved", "BER_th", "acc@1.025V",
           "saving@1.025V", "speedup"});
  for (const auto& r : results) {
    const auto& low = r.report.per_voltage.back();
    t.add_row({r.scenario.name, Table::num(r.report.baseline_accuracy, 3),
               Table::num(r.report.improved_accuracy, 3),
               Table::sci(r.report.ber_th), Table::num(low.accuracy, 3),
               Table::pct(low.saving_pct), Table::num(low.speedup, 3)});
  }
  t.emit();
  std::printf("%zu scenarios in %.2f s (%zu threads)\n", results.size(), dt,
              thread_count());
  return 0;
}
