file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantization.dir/bench/ablation_quantization.cpp.o"
  "CMakeFiles/ablation_quantization.dir/bench/ablation_quantization.cpp.o.d"
  "ablation_quantization"
  "ablation_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
