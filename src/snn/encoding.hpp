#pragma once
// Poisson rate coding (paper §V: "rate coding and the Poisson distribution
// for converting the input samples into spike trains").
//
// A pixel of intensity p in [0,1] emits a spike in each simulation step with
// probability p * max_rate — a Bernoulli approximation of a Poisson process
// sampled at dt, which is the standard discrete-time formulation.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace sparkxd::snn {

/// Converts images into per-step lists of spiking input indices.
class PoissonEncoder {
 public:
  /// max_rate = spike probability per step at full intensity, in (0, 1].
  explicit PoissonEncoder(float max_rate);

  /// Prepares the encoder for a new image: records which pixels can spike.
  void set_image(const std::vector<float>& image);

  /// Samples the set of input indices that spike in one step. The output
  /// vector is reused storage owned by the caller.
  void step(Rng& rng, std::vector<std::uint32_t>& spikes_out) const;

  /// Expected number of input spikes per step for the current image.
  [[nodiscard]] double expected_spikes_per_step() const noexcept;

  /// Number of pixels that can spike for the current image. Zero means
  /// step() never draws from the Rng, which lets the event engine
  /// short-circuit an all-zero sample without desynchronizing the stream.
  [[nodiscard]] std::size_t active_pixels() const noexcept {
    return active_idx_.size();
  }

 private:
  float max_rate_;
  std::vector<std::uint32_t> active_idx_;  ///< pixels with non-zero intensity
  std::vector<float> active_p_;            ///< their per-step probabilities
};

}  // namespace sparkxd::snn
