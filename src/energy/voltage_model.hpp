#pragma once
// DRAM array-voltage model — the stand-in for the paper's SPICE study of the
// circuit model from Chang et al. [10] (paper §II-B2, Figs. 2d and 6).
//
// Physics captured:
//  * After PRE, bitlines rest equalized at V_supply/2.
//  * ACT fires the sense amplifier, which restores the array voltage toward
//    V_supply. The restore is modelled as a stretched exponential
//        V(t) = V/2 + (V/2) * (1 - exp(-(t/tau)^beta)),
//    whose shape parameter beta is fitted so the nominal 1.35 V waveform
//    reproduces the LPDDR3-1600 datasheet tRCD (18 ns) *and* tRAS (42 ns)
//    simultaneously (a single-pole exponential cannot).
//  * PRE drives the array back to V_supply/2 with a fast equalizer pole.
//  * The sense amplifier's drive current shrinks as the supply drops, so the
//    time constants scale as (V_nom / V_supply)^2 — this is what makes
//    reliable tRCD/tRAS/tRP grow at reduced voltage (paper Fig. 6).
//
// Reliability thresholds (paper §II-B2, labels 1-3):
//    ready-to-access    V_array >= 75% V_supply  -> minimum tRCD
//    ready-to-precharge V_array >= 98% V_supply  -> minimum tRAS
//    ready-to-activate  |V_array - V_supply/2| <= 2% of V_supply/2 -> min tRP

#include <vector>

#include "dram/timing.hpp"

namespace sparkxd::energy {

/// Nominal LPDDR3 supply voltage (paper: accurate DRAM at 1.35 V).
inline constexpr double kNominalVdd = 1.350;
/// Lowest approximate-DRAM voltage the paper evaluates.
inline constexpr double kMinVdd = 1.025;
/// The five approximate-DRAM voltage steps of the paper's evaluation.
inline constexpr double kEvalVoltages[] = {1.325, 1.250, 1.175, 1.100, 1.025};

/// One point of the array-voltage waveform.
struct WaveformPoint {
  double t_ns = 0.0;
  double v_array = 0.0;
};

class VoltageModel {
 public:
  /// Model constants; defaults calibrated to LPDDR3-1600 nominal timings.
  struct Params {
    double beta = 1.81;         ///< stretch of the restore exponential
    double tau_act_ns = 22.04;  ///< restore time constant at V_nom
    double tau_pre_ns = 4.60;   ///< equalize time constant at V_nom
    double drive_exponent = 2.0;  ///< tau ~ (V_nom/V)^drive_exponent
  };

  VoltageModel() : VoltageModel(Params{}) {}
  explicit VoltageModel(const Params& p);

  /// Array voltage at time t_ns after an ACT issued at t = 0 with the array
  /// starting from the equalized level V/2.
  [[nodiscard]] double v_array_activate(double v_supply, double t_ns) const;

  /// Array voltage at time t_ns after a PRE issued with the array at
  /// `v_start`.
  [[nodiscard]] double v_array_precharge(double v_supply, double v_start,
                                         double t_ns) const;

  /// Minimum reliable tRCD at this supply voltage (75% threshold).
  [[nodiscard]] double t_rcd_ns(double v_supply) const;
  /// Minimum reliable tRAS at this supply voltage (98% threshold).
  [[nodiscard]] double t_ras_ns(double v_supply) const;
  /// Minimum reliable tRP at this supply voltage (2% equalize band).
  [[nodiscard]] double t_rp_ns(double v_supply) const;

  /// Full timing set at a supply voltage: tRCD/tRAS/tRP re-derived from the
  /// waveform (rounded up to whole clocks), other parameters nominal.
  [[nodiscard]] dram::TimingParams derive_timings(double v_supply) const;

  /// Samples the Fig. 2d / Fig. 6 waveform: ACT at t = 0, PRE at
  /// `pre_at_ns`, sampled every `dt_ns` until `t_end_ns`.
  [[nodiscard]] std::vector<WaveformPoint> waveform(double v_supply,
                                                    double pre_at_ns,
                                                    double t_end_ns,
                                                    double dt_ns) const;

 private:
  [[nodiscard]] double tau_scale(double v_supply) const;
  Params p_;
};

}  // namespace sparkxd::energy
