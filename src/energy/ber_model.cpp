#include "energy/ber_model.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::energy {

double BerModel::ber(double v_supply) const {
  SPARKXD_REQUIRE(v_supply > 0.0, "supply voltage must be positive");
  if (v_supply >= p_.v_safe) return 0.0;
  const double log10_ber = p_.log10_at_anchor +
                           p_.decades_per_volt * (v_supply - p_.v_anchor);
  const double b = std::pow(10.0, log10_ber);
  return b > p_.max_ber ? p_.max_ber : b;
}

double BerModel::min_voltage_for(double target_ber) const {
  SPARKXD_REQUIRE(target_ber >= 0.0, "target BER must be non-negative");
  if (target_ber <= 0.0) return p_.v_safe;
  // Invert the log-linear segment; clamp into the modelled range.
  const double v = p_.v_anchor + (std::log10(target_ber) -
                                  p_.log10_at_anchor) /
                                     p_.decades_per_volt;
  if (v > p_.v_safe) return p_.v_safe;
  const double v_floor = p_.v_anchor + (std::log10(p_.max_ber) -
                                        p_.log10_at_anchor) /
                                           p_.decades_per_volt;
  return v < v_floor ? v_floor : v;
}

}  // namespace sparkxd::energy
