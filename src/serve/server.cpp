#include "serve/server.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/contracts.hpp"

namespace sparkxd::serve {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(std::shared_ptr<const ServingArtifact> artifact,
               ServerConfig config)
    : config_(config), artifact_(std::move(artifact)) {
  SPARKXD_REQUIRE(artifact_ != nullptr, "server needs an artifact");
  SPARKXD_REQUIRE(config_.workers >= 1, "server needs at least one worker");
  SPARKXD_REQUIRE(config_.max_batch >= 1, "server batch ceiling must be >= 1");
  SPARKXD_REQUIRE(config_.max_queue >= 1,
                  "server admission-queue bound must be >= 1");
  artifact_->validate();
  beats_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    beats_.push_back(std::make_unique<WorkerBeat>());

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SPARKXD_REQUIRE(listen_fd_ >= 0, "cannot create the listening socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  SPARKXD_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "cannot bind the serving port");
  SPARKXD_REQUIRE(::listen(listen_fd_, 128) == 0,
                  "cannot listen on the serving port");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  SPARKXD_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0,
                  "cannot read back the bound serving port");
  port_ = ntohs(bound.sin_port);
}

Server::Server(const ServingArtifact& artifact, ServerConfig config)
    : Server(std::shared_ptr<const ServingArtifact>(
                 std::shared_ptr<const ServingArtifact>(), &artifact),
             config) {}

Server::~Server() {
  request_stop();
  wait();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::start() {
  SPARKXD_REQUIRE(!accept_thread_.joinable(), "server already started");
  worker_threads_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    worker_threads_.emplace_back([this, w] { worker_loop(w); });
  if (config_.watchdog_stall_ms > 0)
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::reload(std::shared_ptr<const ServingArtifact> artifact) {
  SPARKXD_REQUIRE(artifact != nullptr, "reload needs an artifact");
  artifact->validate();
  std::lock_guard<std::mutex> lock(artifact_mu_);
  artifact_ = std::move(artifact);
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

std::pair<std::shared_ptr<const ServingArtifact>, std::uint64_t>
Server::artifact_snapshot() const {
  std::lock_guard<std::mutex> lock(artifact_mu_);
  return {artifact_, generation_.load(std::memory_order_acquire)};
}

void Server::request_stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Kick every reader out of its blocking read; replies still flow (the
  // write half stays open until the connection object dies).
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& weak : conns_)
    if (const auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RD);
  queue_cv_.notify_all();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop is done, so reader_threads_ can no longer grow.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(reader_threads_);
  }
  for (auto& t : readers) t.join();
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
  watchdog_stop_.store(true);
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.served = served_.load(std::memory_order_relaxed);
  out.generation = generation_.load(std::memory_order_acquire);
  out.wedged_events = wedged_events_.load(std::memory_order_relaxed);
  out.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  out.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  out.evicted_slow = evicted_slow_.load(std::memory_order_relaxed);
  out.rejected_conns = rejected_conns_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.batches = batches_;
  out.max_queue_depth = max_queue_depth_;
  out.batch_hist = batch_hist_;
  return out;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or hard error): stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;  // raced with request_stop(); the listener dies next round
    }
    if (config_.max_conns > 0 &&
        live_conns_.load(std::memory_order_relaxed) >= config_.max_conns) {
      // Overload safety: shed the connection at accept time instead of
      // spawning an unbounded reader fan-out. The peer sees an immediate
      // close and is expected to back off and reconnect.
      rejected_conns_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    live_conns_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      ++active_readers_;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    accept_done_ = true;
  }
  queue_cv_.notify_all();
}

void Server::write_to_conn(Connection& conn,
                           const std::vector<std::uint8_t>& frame) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  write_frame(conn.fd, frame, conn.crc);  // peer-gone is not our problem
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> payload;
  bool crc = false;  // reader's own view; mirrored into conn->crc
  for (;;) {
    ReadStatus status;
    try {
      status = read_frame_ex(conn->fd, payload,
                             FrameOptions{crc, config_.read_deadline_ms});
    } catch (const ContractViolation&) {
      break;  // malformed stream: drop the connection
    }
    if (status == ReadStatus::kEof) break;
    if (status == ReadStatus::kTimeout) {
      // Slow-loris: a frame started and never finished. Evict — shutdown
      // makes the eviction immediately visible to the peer; the fd closes
      // when the last queued job referencing this connection completes.
      evicted_slow_.fetch_add(1, std::memory_order_relaxed);
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
    if (status == ReadStatus::kBadCrc) {
      // The payload is garbage and the stream may be out of sync; answer
      // kBadFrame so the client knows to reconnect-and-resend, then close.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        write_frame(conn->fd, encode_bad_frame(), conn->crc);
      }
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
    MsgType type;
    try {
      type = frame_type(payload);
      if (type == MsgType::kClassify) {
        Job job{conn, decode_classify(payload), Clock::now()};
        std::size_t depth = 0;
        bool admitted = false;
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          if (queue_.size() < config_.max_queue) {
            queue_.push_back(std::move(job));
            depth = queue_.size();
            admitted = true;
          }
        }
        if (admitted) {
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            if (depth > max_queue_depth_) max_queue_depth_ = depth;
          }
          queue_cv_.notify_one();
        } else {
          // Backpressure: answer kQueueFull instead of growing the queue
          // (or dropping the connection) — the request is rejected, the
          // connection stays usable, the client may retry.
          const auto frame = encode_queue_full(job.request.id);
          std::lock_guard<std::mutex> lock(conn->write_mu);
          if (!write_frame(conn->fd, frame, conn->crc)) break;
        }
      } else if (type == MsgType::kStats) {
        const auto frame = encode_stats_reply(stats());
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (!write_frame(conn->fd, frame, conn->crc)) break;
      } else if (type == MsgType::kHello) {
        const Hello hello = decode_hello(payload);
        // The ack travels in the OLD framing; everything after it (both
        // directions) in the negotiated one. conn->crc flips under
        // write_mu so a worker reply can never straddle the switch.
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (!write_frame(conn->fd, encode_hello_ack(hello), conn->crc)) break;
        conn->crc = hello.crc;
        crc = hello.crc;
      } else {
        break;  // clients must not send server-to-client message types
      }
    } catch (const ContractViolation&) {
      break;  // malformed payload: drop the connection
    }
  }
  live_conns_.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    --active_readers_;
  }
  queue_cv_.notify_all();
}

void Server::worker_loop(std::size_t worker_index) {
  auto [artifact, local_gen] = artifact_snapshot();
  auto engine = std::make_unique<Engine>(*artifact);
  WorkerBeat& beat = *beats_[worker_index];
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() ||
               (stopping_.load() && accept_done_ && active_readers_ == 0);
      });
      if (queue_.empty()) return;  // fully drained, nothing can arrive
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      const auto deadline = Clock::now() +
                            std::chrono::microseconds(config_.max_wait_us);
      while (batch.size() < config_.max_batch) {
        if (queue_.empty()) {
          if (stopping_.load()) break;  // draining: don't linger for more
          const bool arrived = queue_cv_.wait_until(
              lock, deadline, [this] { return !queue_.empty(); });
          if (!arrived) break;  // deadline hit: run what we have
        }
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Hot reload: pick up the newest generation before the batch starts.
    // The whole batch runs on ONE generation; the old artifact stays alive
    // (shared_ptr) until the last worker drops it.
    if (generation_.load(std::memory_order_acquire) != local_gen) {
      std::tie(artifact, local_gen) = artifact_snapshot();
      engine = std::make_unique<Engine>(*artifact);
    }
    record_batch(batch.size());
    beat.batch_seq.fetch_add(1, std::memory_order_relaxed);
    beat.busy_since_ns.store(now_ns(), std::memory_order_release);
    for (const auto& job : batch) {
      if (config_.request_deadline_us > 0 &&
          Clock::now() - job.admitted >
              std::chrono::microseconds(config_.request_deadline_us)) {
        // Too stale to be worth classifying — the client has likely given
        // up or retried already. Answer instead of silently dropping so
        // the id is still accounted for exactly once.
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        write_to_conn(*job.conn, encode_deadline_exceeded(job.request.id));
        continue;
      }
      ClassifyReply reply;
      try {
        reply = engine->classify(job.request);
      } catch (const ContractViolation&) {
        continue;  // bad request (e.g. wrong image size): no reply, no crash
      }
      served_.fetch_add(1, std::memory_order_relaxed);
      write_to_conn(*job.conn, encode_reply(reply));
    }
    beat.busy_since_ns.store(0, std::memory_order_release);
  }
}

void Server::watchdog_loop() {
  const auto stall_ns =
      static_cast<std::int64_t>(config_.watchdog_stall_ms) * 1'000'000;
  // Sample a few times per stall bound so detection latency stays a
  // fraction of the bound itself.
  const auto period =
      std::chrono::milliseconds(config_.watchdog_stall_ms / 4 + 1);
  std::vector<std::uint64_t> flagged(config_.workers, ~0ull);
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(period);
    const std::int64_t now = now_ns();
    for (std::size_t w = 0; w < beats_.size(); ++w) {
      const std::uint64_t seq = beats_[w]->batch_seq.load(std::memory_order_relaxed);
      const std::int64_t busy =
          beats_[w]->busy_since_ns.load(std::memory_order_acquire);
      if (busy != 0 && now - busy > stall_ns && flagged[w] != seq) {
        // Fail loudly (stderr + stats counter) but keep serving: the
        // watchdog detects a wedged worker, it does not shoot it.
        flagged[w] = seq;
        wedged_events_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "sparkxd_serve: watchdog: worker %zu stuck on batch "
                     "%llu for %lldms (bound %llums)\n",
                     w, static_cast<unsigned long long>(seq),
                     static_cast<long long>((now - busy) / 1'000'000),
                     static_cast<unsigned long long>(config_.watchdog_stall_ms));
      }
    }
  }
}

void Server::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++batches_;
  if (batch_hist_.size() < batch_size) batch_hist_.resize(batch_size, 0);
  ++batch_hist_[batch_size - 1];
}

}  // namespace sparkxd::serve
