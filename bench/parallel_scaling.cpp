// Parallel-sweep scaling: wall-clock of the SparkXD evaluation hot loop —
// a 5-voltage sweep of Monte-Carlo corrupted-accuracy trials — at
// SPARKXD_THREADS=1 versus all available cores, verifying the sweep means
// are bit-identical in both runs (the engine's determinism contract).
//
// This is the workload the parallel evaluation engine exists for: every
// (voltage, trial) pair is an independent fault-injection experiment, so on
// an M-core host the sweep approaches M-fold speedup (Amdahl-limited by the
// final reduction only). On a single-core host it documents the engine's
// overhead instead.

#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "energy/ber_model.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

namespace {

using namespace sparkxd;

double sweep_once(const snn::TrainedModel& model,
                  const error::ErrorInjector& inj,
                  const std::vector<double>& voltages,
                  const energy::BerModel& bm, const data::Dataset& test,
                  std::size_t trials) {
  // Per-voltage forked streams, exactly like core::run_pipeline's sweep.
  const Rng sweep_rng(experiment_seed());
  std::vector<double> acc(voltages.size(), 0.0);
  parallel_for(voltages.size(), [&](std::size_t vi) {
    Rng vrng = sweep_rng.fork(vi);
    acc[vi] = core::evaluate_corrupted(model.net, model.labels, inj,
                                       std::min(bm.ber(voltages[vi]), 1e-3),
                                       test, vrng, trials);
  });
  double sum = 0.0;
  for (const double a : acc) sum += a;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparkxd;
  const char* json_path = bench::json_out_path(argc, argv);
  bench::banner("parallel evaluation engine — sweep scaling",
                "per-voltage sweep + fault-injection trials parallelize to "
                ">=2x on >=4 cores with bit-identical results");

  const std::uint64_t seed = experiment_seed();
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, seed);
  const energy::BerModel bm;
  const std::vector<double> voltages = {1.325, 1.250, 1.175, 1.100, 1.025};
  const std::size_t trials = std::max<std::size_t>(scaled(3), 2);

  const auto cfg = bench::net_config(100);
  const std::size_t n_train = scaled(200, 80);
  const std::size_t n_test = scaled(120, 60);
  const auto all = data::make_dataset(data::Task::kDigits, n_train + n_test,
                                      seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);
  Rng rng(seed);
  auto model = snn::train_and_label(cfg, train, test, 1, rng);

  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto inj = error::ErrorInjector::for_weights(g, profile, {}, place,
                                                     n_weights, seed, 1e-3);

  const auto timed = [&](const char* threads_env) {
    ::setenv("SPARKXD_THREADS", threads_env, 1);
    (void)sweep_once(model, inj, voltages, bm, test, trials);  // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    const double acc = sweep_once(model, inj, voltages, bm, test, trials);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return std::pair{ms, acc};
  };

  const auto [serial_ms, serial_acc] = timed("1");
  ::unsetenv("SPARKXD_THREADS");
  // At least 4 workers so the threaded path runs even on a 1-core host
  // (there it measures engine overhead rather than speedup).
  const std::size_t hw = std::max<std::size_t>(thread_count(), 4);
  const auto [parallel_ms, parallel_acc] = timed(
      std::to_string(hw).c_str());
  ::unsetenv("SPARKXD_THREADS");

  Table t("parallel_scaling",
          {"threads", "sweep wall [ms]", "speedup", "sweep acc sum"});
  t.add_row({"1", Table::num(serial_ms, 1), "1.00",
             Table::num(serial_acc, 6)});
  t.add_row({std::to_string(hw), Table::num(parallel_ms, 1),
             Table::num(serial_ms / std::max(parallel_ms, 1e-3), 2),
             Table::num(parallel_acc, 6)});
  t.emit();

  const bool identical = serial_acc == parallel_acc;
  std::printf("\nresults bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATION");
  if (json_path != nullptr) {
    bench::BenchReport report("parallel_scaling");
    report.add_phase("sweep_serial", 1, serial_ms * 1e6)
        .metrics.emplace_back("acc_sum", serial_acc);
    auto& par = report.add_phase("sweep_parallel", 1, parallel_ms * 1e6);
    par.metrics.emplace_back("acc_sum", parallel_acc);
    par.metrics.emplace_back("workers", static_cast<double>(hw));
    par.metrics.emplace_back("speedup",
                             serial_ms / std::max(parallel_ms, 1e-3));
    if (!report.write(json_path)) return 2;
  }
  const unsigned hw_real = std::max(1u, std::thread::hardware_concurrency());
  std::printf("5 voltages x %zu trials, parallel leg ran %zu workers; "
              "expect >=2x speedup on >=4 cores (this host: %u hardware "
              "thread%s).\n",
              trials, hw, hw_real, hw_real == 1 ? "" : "s");
  return identical ? 0 : 1;
}
