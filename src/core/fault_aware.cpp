#include "core/fault_aware.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/parallel.hpp"

namespace sparkxd::core {

namespace {

/// Derives the injection Rng for layer `l` of trial substream `inject_seed`
/// (the documented stream discipline): a single-layer stack consumes the
/// trial stream directly — bit-identical to the pre-stack code — while a
/// deep stack forks one substream per layer.
Rng layer_inject_rng(std::uint64_t inject_seed, std::size_t l,
                     std::size_t n_layers) {
  return n_layers == 1 ? Rng(inject_seed)
                       : Rng(inject_seed).fork(static_cast<std::uint64_t>(l));
}

}  // namespace

double evaluate_corrupted(const snn::Network& net,
                          const snn::NeuronLabels& labels,
                          const LayerInjectors& injectors, double ber,
                          const data::Dataset& test, Rng& rng,
                          std::size_t trials, float weight_clip) {
  SPARKXD_REQUIRE(trials >= 1, "need at least one evaluation trial");
  const std::size_t n_layers = net.n_layers();
  SPARKXD_REQUIRE(injectors.size() == n_layers,
                  "need one injector slot per network layer");
  const error::SanitizeRange sanitize{net.config().stdp.w_min, weight_clip};
  // One parent draw keys this call's trial substreams: every trial owns an
  // independent Rng pair and every worker a private corruptible weight
  // copy, so trials run concurrently and the mean is bit-identical at any
  // thread count. Injection and evaluation draw from *separate* substreams
  // (common random numbers): the spike trains are then identical across
  // BERs for the same parent state, so accuracy differences measure the
  // injected errors, not resampling noise.
  const std::uint64_t stream = rng.next_u64();
  // The flip candidates at this BER are the same for every trial: freeze
  // them once per corrupted layer and share the tables read-only across
  // the whole fan-out.
  std::vector<error::FrozenInjection> frozen(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l)
    if (injectors[l] != nullptr) frozen[l] = injectors[l]->freeze(ber);
  std::vector<double> accs(trials, 0.0);
  parallel_for_chunks(
      trials, [&](std::size_t begin, std::size_t end, std::size_t) {
        // One weight copy per worker (each needs private corruptible
        // arrays); between trials only the recorded flips are reverted —
        // delta injection replaces the full per-trial snapshot restore.
        // The InferenceState (membrane/encoder scratch) is likewise built
        // once per worker and reused across trials. The copy carries the
        // configured inference engine (dense/event/event-fx) along, so the
        // whole Monte-Carlo fan-out runs whichever kernel the
        // PipelineConfig selected.
        snn::Network scratch = net;
        scratch.sync_transpose();
        snn::InferenceState state(scratch);
        std::vector<std::vector<error::WeightFlip>> flips(n_layers);
        for (std::size_t t = begin; t < end; ++t) {
          const std::uint64_t inject_seed = hash_combine(stream, 2 * t);
          Rng eval_rng(hash_combine(stream, 2 * t + 1));
          for (std::size_t l = 0; l < n_layers; ++l) {
            if (injectors[l] == nullptr) continue;
            Rng inject_rng = layer_inject_rng(inject_seed, l, n_layers);
            flips[l].clear();
            frozen[l].inject(scratch.weights_delta(l), inject_rng, sanitize,
                             &flips[l]);
            for (const auto& f : flips[l]) scratch.mirror_weight(l, f.word);
          }
          accs[t] = snn::evaluate(scratch, state, labels, test, eval_rng);
          for (std::size_t l = 0; l < n_layers; ++l) {
            if (injectors[l] == nullptr) continue;
            error::revert_flips(scratch.weights_delta(l), flips[l]);
            for (const auto& f : flips[l]) scratch.mirror_weight(l, f.word);
          }
        }
      });
  double acc_sum = 0.0;
  for (const double a : accs) acc_sum += a;
  return acc_sum / static_cast<double>(trials);
}

double evaluate_corrupted_ecc(const snn::Network& net,
                              const snn::NeuronLabels& labels,
                              const LayerInjectors& injectors,
                              const LayerEcc& ecc, double ber,
                              const data::Dataset& test, Rng& rng,
                              std::size_t trials, float weight_clip,
                              std::vector<EccScrubTotals>* totals) {
  SPARKXD_REQUIRE(trials >= 1, "need at least one evaluation trial");
  const std::size_t n_layers = net.n_layers();
  SPARKXD_REQUIRE(injectors.size() == n_layers && ecc.size() == n_layers,
                  "need one injector and one ecc slot per network layer");
  for (std::size_t l = 0; l < n_layers; ++l)
    SPARKXD_REQUIRE(ecc[l].scheme == nullptr || ecc[l].checks != nullptr,
                    "an ecc-protected layer needs its check words");
  const error::SanitizeRange clip{net.config().stdp.w_min, weight_clip};
  // Same stream discipline as evaluate_corrupted (one parent draw, per-trial
  // inject/eval substream pair, per-worker scratch network) — see the
  // comments there. The difference is purely in what happens to a corrupted
  // word: raw injection, codeword scrub, then the clip only where the code
  // failed.
  const std::uint64_t stream = rng.next_u64();
  std::vector<error::FrozenInjection> frozen(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l)
    if (injectors[l] != nullptr) frozen[l] = injectors[l]->freeze(ber);
  std::vector<double> accs(trials, 0.0);
  // Per-(trial, layer) scrub slots keep the reduction order deterministic
  // regardless of which worker ran which trial.
  std::vector<error::EccScrubStats> trial_stats(
      totals != nullptr ? trials * n_layers : 0);
  parallel_for_chunks(
      trials, [&](std::size_t begin, std::size_t end, std::size_t) {
        snn::Network scratch = net;
        scratch.sync_transpose();
        snn::InferenceState state(scratch);
        std::vector<std::vector<error::WeightFlip>> flips(n_layers);
        for (std::size_t t = begin; t < end; ++t) {
          const std::uint64_t inject_seed = hash_combine(stream, 2 * t);
          Rng eval_rng(hash_combine(stream, 2 * t + 1));
          for (std::size_t l = 0; l < n_layers; ++l) {
            if (injectors[l] == nullptr) continue;
            Rng inject_rng = layer_inject_rng(inject_seed, l, n_layers);
            flips[l].clear();
            if (ecc[l].scheme != nullptr) {
              frozen[l].inject(scratch.weights_delta(l), inject_rng,
                               error::SanitizeRange::raw(), &flips[l]);
              const std::size_t n_injected = flips[l].size();
              const error::EccScrubStats st = error::ecc_scrub_codewords(
                  *ecc[l].scheme, scratch.weights_delta(l), *ecc[l].checks,
                  flips[l], n_injected, clip);
              if (totals != nullptr) trial_stats[t * n_layers + l] = st;
            } else {
              frozen[l].inject(scratch.weights_delta(l), inject_rng, clip,
                               &flips[l]);
            }
            for (const auto& f : flips[l]) scratch.mirror_weight(l, f.word);
          }
          accs[t] = snn::evaluate(scratch, state, labels, test, eval_rng);
          for (std::size_t l = 0; l < n_layers; ++l) {
            if (injectors[l] == nullptr) continue;
            error::revert_flips(scratch.weights_delta(l), flips[l]);
            for (const auto& f : flips[l]) scratch.mirror_weight(l, f.word);
          }
        }
      });
  double acc_sum = 0.0;
  for (const double a : accs) acc_sum += a;
  if (totals != nullptr) {
    totals->assign(n_layers, EccScrubTotals{});
    for (std::size_t t = 0; t < trials; ++t) {
      for (std::size_t l = 0; l < n_layers; ++l) {
        const error::EccScrubStats& st = trial_stats[t * n_layers + l];
        (*totals)[l].codewords += st.codewords;
        (*totals)[l].corrected += st.corrected;
        (*totals)[l].detected += st.detected;
        (*totals)[l].bits_corrected += st.bits_corrected;
      }
    }
  }
  return acc_sum / static_cast<double>(trials);
}

double evaluate_corrupted(const snn::Network& net,
                          const snn::NeuronLabels& labels,
                          const error::ErrorInjector& injector, double ber,
                          const data::Dataset& test, Rng& rng,
                          std::size_t trials, float weight_clip) {
  SPARKXD_REQUIRE(net.n_layers() == 1,
                  "the single-injector overload addresses THE layer of a "
                  "single-layer network — deep stacks pass a LayerInjectors "
                  "list");
  return evaluate_corrupted(net, labels, LayerInjectors{&injector}, ber, test,
                            rng, trials, weight_clip);
}

FaultAwareResult improve_error_tolerance(const snn::TrainedModel& baseline,
                                         const FaultTrainingConfig& cfg,
                                         const LayerInjectors& injectors,
                                         const data::Dataset& train,
                                         const data::Dataset& test, Rng& rng) {
  SPARKXD_REQUIRE(!cfg.ber_stages.empty(), "need at least one BER stage");
  SPARKXD_REQUIRE(std::is_sorted(cfg.ber_stages.begin(), cfg.ber_stages.end()),
                  "BER stages must be ascending (Algorithm 1 raises the BER)");
  SPARKXD_REQUIRE(cfg.epochs_per_stage >= 1, "need at least one epoch/stage");
  const std::size_t n_layers = baseline.net.n_layers();
  SPARKXD_REQUIRE(injectors.size() == n_layers,
                  "need one injector slot per network layer");

  const double target = baseline.clean_accuracy - cfg.accuracy_bound;
  const error::SanitizeRange sanitize{baseline.net.config().stdp.w_min,
                                      cfg.weight_clip};
  const auto inject_all = [&](snn::Network& net, double rate, Rng& r) {
    // Layers draw serially from the caller's generator, input side first —
    // for a single-layer stack exactly the legacy single inject call.
    for (std::size_t l = 0; l < n_layers; ++l)
      if (injectors[l] != nullptr)
        injectors[l]->inject(net.weights_mut(l), rate, r, sanitize);
  };

  // model_temp starts as a copy of the baseline (Algorithm 1 line 1).
  snn::TrainedModel model_temp = baseline;
  FaultAwareResult result{baseline, 0.0, false, {}};

  for (const double rate : cfg.ber_stages) {
    for (std::size_t e = 0; e < cfg.epochs_per_stage; ++e) {
      // Error generation + injection into the stored weights (lines 3-4):
      // the training epoch then runs on the corrupted weights, and STDP
      // re-routes weight mass away from unreliable cells — in every layer.
      inject_all(model_temp.net, rate, rng);
      snn::train_epoch(model_temp.net, train, rng);
    }
    // Re-label (receptive fields move during retraining). When configured,
    // the calibration pass itself runs on corrupted weights, as it would on
    // the deployed approximate DRAM — neurons inflated by their weak cells
    // then carry a high bias and are discounted by the vote at inference.
    if (cfg.calibrate_under_errors) {
      std::vector<std::vector<float>> snapshots(n_layers);
      for (std::size_t l = 0; l < n_layers; ++l)
        if (injectors[l] != nullptr) snapshots[l] = model_temp.net.weights(l);
      inject_all(model_temp.net, rate, rng);
      model_temp.labels = snn::label_neurons(model_temp.net, train, rng);
      for (std::size_t l = 0; l < n_layers; ++l)
        if (injectors[l] != nullptr)
          model_temp.net.weights_mut(l) = std::move(snapshots[l]);
    } else {
      model_temp.labels = snn::label_neurons(model_temp.net, train, rng);
    }
    // Test under corruption at this stage's rate (lines 8-9).
    const double acc = evaluate_corrupted(model_temp.net, model_temp.labels,
                                          injectors, rate, test, rng,
                                          cfg.eval_trials, cfg.weight_clip);
    result.stage_curve.push_back({rate, acc});
    // Lines 10-13: accept this stage if it still meets the target.
    if (acc >= target) {
      result.improved = model_temp;
      result.improved.clean_accuracy = acc;
      result.ber_th = rate;
      result.met_target = true;
    }
  }
  // If no stage met the bound, return the last trained model with ber_th 0
  // (callers check met_target).
  if (!result.met_target) result.improved = model_temp;
  return result;
}

FaultAwareResult improve_error_tolerance(const snn::TrainedModel& baseline,
                                         const FaultTrainingConfig& cfg,
                                         const error::ErrorInjector& injector,
                                         const data::Dataset& train,
                                         const data::Dataset& test, Rng& rng) {
  SPARKXD_REQUIRE(baseline.net.n_layers() == 1,
                  "the single-injector overload addresses THE layer of a "
                  "single-layer network — deep stacks pass a LayerInjectors "
                  "list");
  return improve_error_tolerance(baseline, cfg, LayerInjectors{&injector},
                                 train, test, rng);
}

ToleranceAnalysis analyze_tolerance(const snn::Network& net,
                                    const snn::NeuronLabels& labels,
                                    const error::ErrorInjector& injector,
                                    const std::vector<double>& rates,
                                    double target_accuracy,
                                    const data::Dataset& test, Rng& rng,
                                    std::size_t trials) {
  SPARKXD_REQUIRE(std::is_sorted(rates.begin(), rates.end()),
                  "linear search expects ascending BER values");
  ToleranceAnalysis out;
  for (const double ber : rates) {
    const double acc =
        evaluate_corrupted(net, labels, injector, ber, test, rng, trials);
    out.curve.push_back({ber, acc});
    if (acc >= target_accuracy) {
      out.ber_th = ber;
      out.met_target = true;
    }
  }
  return out;
}

std::vector<ToleranceAnalysis> analyze_layer_tolerance(
    const snn::Network& net, const snn::NeuronLabels& labels,
    const LayerInjectors& injectors, const std::vector<double>& rates,
    double target_accuracy, const data::Dataset& test, Rng& rng,
    std::size_t trials, float weight_clip) {
  SPARKXD_REQUIRE(std::is_sorted(rates.begin(), rates.end()),
                  "linear search expects ascending BER values");
  const std::size_t n_layers = net.n_layers();
  SPARKXD_REQUIRE(injectors.size() == n_layers,
                  "need one injector per network layer");
  for (const auto* inj : injectors)
    SPARKXD_REQUIRE(inj != nullptr,
                    "per-layer tolerance analysis needs every layer's "
                    "injector populated");

  std::vector<ToleranceAnalysis> out(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    // Corrupt ONLY layer l: the difference from the clean accuracy is this
    // layer's own contribution to the error budget.
    LayerInjectors solo(n_layers, nullptr);
    solo[l] = injectors[l];
    for (const double ber : rates) {
      const double acc = evaluate_corrupted(net, labels, solo, ber, test, rng,
                                            trials, weight_clip);
      out[l].curve.push_back({ber, acc});
      if (acc >= target_accuracy) {
        out[l].ber_th = ber;
        out[l].met_target = true;
      }
    }
  }
  return out;
}

}  // namespace sparkxd::core
