#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <unordered_map>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace sparkxd::serve {

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SPARKXD_REQUIRE(fd >= 0, "cannot create a client socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    SPARKXD_REQUIRE(false, "client host must be a numeric IPv4 address");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    SPARKXD_REQUIRE(false, "cannot connect to the serving port");
  }
  return fd;
}

namespace {

using Clock = std::chrono::steady_clock;

/// What one connection thread brings home.
struct ConnResult {
  std::vector<ClassifyReply> replies;
  std::vector<double> latency_us;
  std::uint64_t retries = 0;
  bool server_gone = false;
};

/// Drives the requests with index % stride == offset over one connection,
/// keeping at most `window` of them in flight.
void drive_connection(const std::string& host, std::uint16_t port,
                      const data::Dataset& pool, const ClientOptions& options,
                      std::size_t offset, ConnResult& out) {
  const int fd = connect_to(host, port);
  std::unordered_map<std::uint64_t, Clock::time_point> in_flight;
  std::vector<std::uint8_t> payload;

  // Request i is a pure function of i, so a kQueueFull rejection is
  // answered by rebuilding and re-sending the same frame.
  const auto encode_request = [&](std::uint64_t id) {
    ClassifyRequest request;
    request.id = id;
    request.seed = hash_combine(options.base_seed, id);
    request.image = pool.images[id % pool.size()];
    return encode_classify(request);
  };

  const auto read_one = [&]() -> bool {
    if (!read_frame(fd, payload)) return false;
    if (frame_type(payload) == MsgType::kQueueFull) {
      // Overload backpressure: back off briefly, then retry the request.
      // The in_flight timestamp is kept, so the measured latency honestly
      // includes the rejected round trips.
      const std::uint64_t id = decode_queue_full(payload);
      SPARKXD_REQUIRE(in_flight.count(id) != 0,
                      "server rejected a request this connection never sent");
      ++out.retries;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return write_frame(fd, encode_request(id));
    }
    ClassifyReply reply = decode_reply(payload);
    const auto sent = in_flight.find(reply.id);
    SPARKXD_REQUIRE(sent != in_flight.end(),
                    "server replied to a request this connection never sent");
    out.latency_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - sent->second)
            .count());
    in_flight.erase(sent);
    out.replies.push_back(reply);
    return true;
  };

  for (std::size_t i = offset; i < options.requests;
       i += options.connections) {
    const auto frame = encode_request(i);
    in_flight.emplace(i, Clock::now());
    if (!write_frame(fd, frame)) {
      out.server_gone = true;
      break;
    }
    while (in_flight.size() >= options.window) {
      if (!read_one()) {
        out.server_gone = true;
        break;
      }
    }
    if (out.server_gone) break;
  }
  while (!out.server_gone && !in_flight.empty()) {
    if (!read_one()) out.server_gone = true;
  }
  ::close(fd);
}

}  // namespace

ReplayStats replay(const std::string& host, std::uint16_t port,
                   const data::Dataset& pool, const ClientOptions& options) {
  SPARKXD_REQUIRE(options.requests >= 1, "replay needs at least one request");
  SPARKXD_REQUIRE(options.connections >= 1 && options.window >= 1,
                  "replay needs at least one connection and a window >= 1");
  SPARKXD_REQUIRE(pool.size() > 0, "replay needs a non-empty image pool");

  const std::size_t n_conns = std::min(options.connections, options.requests);
  std::vector<ConnResult> results(n_conns);
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(n_conns);
    for (std::size_t c = 0; c < n_conns; ++c)
      threads.emplace_back([&, c] {
        ClientOptions opt = options;
        opt.connections = n_conns;
        drive_connection(host, port, pool, opt, c, results[c]);
      });
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  std::vector<ClassifyReply> replies;
  replies.reserve(options.requests);
  for (auto& r : results) {
    SPARKXD_REQUIRE(!r.server_gone,
                    "server dropped a replay connection before replying to "
                    "every admitted request");
    replies.insert(replies.end(), r.replies.begin(), r.replies.end());
  }
  ReplayStats stats;
  for (const auto& r : results) stats.retries += r.retries;
  stats.replies = replies.size();
  stats.digest = digest_replies(replies);
  stats.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  for (auto& r : results)
    stats.latency_us.insert(stats.latency_us.end(), r.latency_us.begin(),
                            r.latency_us.end());
  return stats;
}

ServerStats fetch_stats(const std::string& host, std::uint16_t port) {
  const int fd = connect_to(host, port);
  std::vector<std::uint8_t> payload;
  bool ok = write_frame(fd, encode_stats_request()) &&
            read_frame(fd, payload);
  ServerStats stats;
  if (ok) stats = decode_stats_reply(payload);
  ::close(fd);
  SPARKXD_REQUIRE(ok, "server closed the stats connection without replying");
  return stats;
}

std::uint64_t digest_replies(std::vector<ClassifyReply>& replies) {
  std::sort(replies.begin(), replies.end(),
            [](const ClassifyReply& a, const ClassifyReply& b) {
              return a.id < b.id;
            });
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  const auto mix = [&h](std::uint64_t v, std::size_t n_bytes) {
    for (std::size_t i = 0; i < n_bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV-1a 64 prime
    }
  };
  for (const auto& r : replies) {
    mix(r.id, 8);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.label)), 4);
    mix(r.spikes, 4);
    mix(r.flips, 4);
  }
  return h;
}

double percentile(std::vector<double>& sample, double p) {
  SPARKXD_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must lie in [0, 100]");
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sample.size())));
  return sample[rank == 0 ? 0 : rank - 1];
}

}  // namespace sparkxd::serve
