// Exhaustive multi-bit fault-injection sweep over every registered ECC
// scheme: inject ALL 1-bit and ALL 2-bit error patterns per codeword (plus a
// seeded 3-bit sample) and assert each scheme's (t, d) contract *exactly* —
// a t-corrector restores every <= t-bit pattern bit for bit, a d-detector
// never reports a t < weight <= d pattern as clean or "corrected" into the
// wrong codeword, and the classification counts are invariant under the
// worker thread count (the sweep itself runs over parallel_for).
//
// The small-codeword schemes (<= ~160 total bits) are swept exhaustively;
// the 512 B / 4 KB BCH large-codeword modes get a seeded random sample of
// singles, doubles, and triples (their C(n,2) pattern spaces are in the
// millions).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "error/ecc_scheme.hpp"
#include "test_env_util.hpp"

namespace sparkxd::error {
namespace {

using testutil::ThreadsOverride;

/// Classification counts of one sweep, split by injected error weight.
struct Counts {
  std::uint64_t corrected = 0;     ///< kCorrected and codeword restored
  std::uint64_t detected = 0;      ///< kDetected
  std::uint64_t missed = 0;        ///< kClean despite corrupted data bits
  std::uint64_t miscorrected = 0;  ///< kCorrected but codeword is wrong
  std::uint64_t total = 0;

  friend bool operator==(const Counts&, const Counts&) = default;

  Counts& operator+=(const Counts& o) {
    corrected += o.corrected;
    detected += o.detected;
    missed += o.missed;
    miscorrected += o.miscorrected;
    total += o.total;
    return *this;
  }
};

/// One clean codeword (data + freshly encoded check words).
struct Codeword {
  std::vector<std::uint64_t> data;
  std::vector<std::uint64_t> check;
};

Codeword make_codeword(const EccScheme& s, Rng& rng) {
  Codeword cw;
  cw.data.resize(s.data_words());
  cw.check.resize(s.check_words());
  for (auto& w : cw.data) w = rng.next_u64();
  // Clear bits past data_bits so the pattern space stays within the code.
  if (s.data_bits() % 64 != 0)
    cw.data.back() &= (std::uint64_t{1} << (s.data_bits() % 64)) - 1;
  s.encode(cw.data.data(), cw.check.data());
  return cw;
}

/// Flips codeword bit `pos`: [0, data_bits) hits data, the rest check bits.
void flip(const EccScheme& s, Codeword& cw, std::size_t pos) {
  if (pos < s.data_bits())
    cw.data[pos / 64] ^= std::uint64_t{1} << (pos % 64);
  else {
    const std::size_t c = pos - s.data_bits();
    cw.check[c / 64] ^= std::uint64_t{1} << (c % 64);
  }
}

/// Injects `pattern`, decodes, and classifies the outcome against the clean
/// codeword.
Counts classify(const EccScheme& s, const Codeword& clean,
                const std::vector<std::size_t>& pattern) {
  Codeword cw = clean;
  bool data_hit = false;
  for (const std::size_t pos : pattern) {
    flip(s, cw, pos);
    data_hit = data_hit || pos < s.data_bits();
  }
  const EccDecode r = s.decode(cw.data.data(), cw.check.data());
  const bool restored = cw.data == clean.data && cw.check == clean.check;
  Counts c;
  c.total = 1;
  switch (r.status) {
    case EccStatus::kClean:
      // Clean with corrupted data bits is the fatal silent miss; clean with
      // only check-bit corruption would merely strand a stale check word,
      // and no registered scheme does even that.
      if (data_hit || cw.data != clean.data) ++c.missed;
      break;
    case EccStatus::kDetected:
      ++c.detected;
      break;
    case EccStatus::kCorrected:
      if (restored)
        ++c.corrected;
      else
        ++c.miscorrected;
      break;
  }
  return c;
}

/// Sweep result: counts by injected weight (1, 2, and sampled 3).
struct Sweep {
  Counts w1, w2, w3;
  friend bool operator==(const Sweep&, const Sweep&) = default;
};

/// All 1-bit and ALL 2-bit patterns, parallel over the first flip position,
/// plus `triples` seeded 3-bit samples. Deterministic regardless of the
/// worker count: per-position partial counts reduce in index order.
Sweep exhaustive_sweep(const EccScheme& s, const Codeword& clean,
                       std::size_t triples, std::uint64_t seed) {
  const std::size_t n = s.data_bits() + s.check_bits();
  std::vector<Sweep> partial(n);
  parallel_for(n, [&](std::size_t i) {
    partial[i].w1 += classify(s, clean, {i});
    for (std::size_t j = i + 1; j < n; ++j)
      partial[i].w2 += classify(s, clean, {i, j});
  });
  Sweep sum;
  for (const auto& p : partial) {
    sum.w1 += p.w1;
    sum.w2 += p.w2;
  }
  // Seeded 3-bit sample: beyond every scheme's t but within (or beyond) d —
  // the sweep asserts per-kind what is still guaranteed about it.
  std::vector<std::vector<std::size_t>> tri(triples);
  Rng rng(seed);
  for (auto& t : tri) {
    std::size_t a = rng.next_u64() % n, b = a, c = a;
    while (b == a) b = rng.next_u64() % n;
    while (c == a || c == b) c = rng.next_u64() % n;
    t = {a, b, c};
  }
  std::vector<Counts> tri_counts(triples);
  parallel_for(triples,
               [&](std::size_t i) { tri_counts[i] = classify(s, clean, tri[i]); });
  for (const auto& c : tri_counts) sum.w3 += c;
  return sum;
}

std::uint64_t choose2(std::uint64_t n) { return n * (n - 1) / 2; }

/// Per-kind contract over one sweep of one codeword.
void check_contract(const EccScheme& s, const Sweep& r, std::size_t triples) {
  const std::uint64_t n = s.data_bits() + s.check_bits();
  // Coverage is exact and total: every 1- and 2-bit pattern classified.
  ASSERT_EQ(r.w1.total, n) << s.name();
  ASSERT_EQ(r.w1.corrected + r.w1.detected + r.w1.missed + r.w1.miscorrected,
            n)
      << s.name();
  ASSERT_EQ(r.w2.total, choose2(n)) << s.name();
  ASSERT_EQ(r.w3.total, triples) << s.name();

  const unsigned t = s.correctable_bits();
  const unsigned d = s.detectable_bits();
  // Weight 1: corrected iff t >= 1, else detected iff d >= 1, else missed.
  if (t >= 1) {
    EXPECT_EQ(r.w1.corrected, n) << s.name();
  } else if (d >= 1) {
    EXPECT_EQ(r.w1.detected, n) << s.name();
    EXPECT_EQ(r.w1.missed, 0u) << s.name();
  } else {
    EXPECT_EQ(r.w1.missed, n) << s.name();
  }
  // Weight 2: corrected iff t >= 2; flagged (never missed or miscorrected)
  // iff d >= 2; None misses all, Parity misses exactly the even patterns.
  if (t >= 2) {
    EXPECT_EQ(r.w2.corrected, choose2(n)) << s.name();
  } else if (d >= 2) {
    EXPECT_EQ(r.w2.detected, choose2(n)) << s.name();
    EXPECT_EQ(r.w2.missed, 0u) << s.name();
    EXPECT_EQ(r.w2.miscorrected, 0u) << s.name();
  } else {
    EXPECT_EQ(r.w2.missed, choose2(n)) << s.name();
  }
  // Weight 3: BCH (d = 3) detects all of them; the SECDED family may
  // miscorrect beyond its guarantee but its overall parity bit means a
  // 3-bit pattern can never decode as clean; parity detects odd weights.
  switch (s.kind()) {
    case EccKind::kBch:
      EXPECT_EQ(r.w3.detected, triples) << s.name();
      break;
    case EccKind::kSecded:
    case EccKind::kHsiao:
    case EccKind::kParity:
      EXPECT_EQ(r.w3.missed, 0u) << s.name();
      break;
    case EccKind::kNone:
      EXPECT_EQ(r.w3.missed, triples) << s.name();
      break;
  }
}

/// Registered schemes small enough for the full C(n,2) sweep.
std::vector<EccSpec> exhaustive_specs() {
  std::vector<EccSpec> out;
  for (const auto& spec : registered_ecc_specs())
    if (spec.data_bits + ecc_min_check_bits(spec.kind, spec.data_bits) <= 160)
      out.push_back(spec);
  return out;
}

constexpr std::size_t kTriples = 200;

TEST(EccExhaustive, EverySchemeMeetsItsContractOnEveryPattern) {
  Rng rng(20260808);
  for (const auto& spec : exhaustive_specs()) {
    const auto scheme = make_ecc_scheme(spec);
    // Degenerate and random payloads: the contract must hold regardless of
    // the stored data.
    std::vector<Codeword> bases;
    Codeword zero;
    zero.data.assign(scheme->data_words(), 0);
    zero.check.assign(scheme->check_words(), 0);
    scheme->encode(zero.data.data(), zero.check.data());
    bases.push_back(zero);
    Codeword ones;
    ones.data.assign(scheme->data_words(), ~std::uint64_t{0});
    if (scheme->data_bits() % 64 != 0)
      ones.data.back() &= (std::uint64_t{1} << (scheme->data_bits() % 64)) - 1;
    ones.check.assign(scheme->check_words(), 0);
    scheme->encode(ones.data.data(), ones.check.data());
    bases.push_back(ones);
    bases.push_back(make_codeword(*scheme, rng));
    bases.push_back(make_codeword(*scheme, rng));

    for (std::size_t b = 0; b < bases.size(); ++b) {
      SCOPED_TRACE(scheme->name() + " base " + std::to_string(b));
      const Sweep r =
          exhaustive_sweep(*scheme, bases[b], kTriples, 77 + 13 * b);
      check_contract(*scheme, r, kTriples);
    }
  }
}

TEST(EccExhaustive, CountsAreInvariantUnderTheWorkerThreadCount) {
  Rng rng(424242);
  for (const auto& spec : exhaustive_specs()) {
    const auto scheme = make_ecc_scheme(spec);
    const Codeword base = make_codeword(*scheme, rng);
    Sweep one_thread, eight_threads;
    {
      ThreadsOverride threads("1");
      one_thread = exhaustive_sweep(*scheme, base, kTriples, 99);
    }
    {
      ThreadsOverride threads("8");
      eight_threads = exhaustive_sweep(*scheme, base, kTriples, 99);
    }
    EXPECT_EQ(one_thread, eight_threads) << scheme->name();
    check_contract(*scheme, one_thread, kTriples);
  }
}

TEST(EccExhaustive, LargeCodewordBchSampledPatternsHoldTheContract) {
  // The 512 B and 4 KB modes: sampled singles and doubles must correct,
  // sampled triples must be detected — same contract, sampled pattern space.
  Rng rng(31337);
  for (const auto& spec : registered_ecc_specs()) {
    if (spec.kind != EccKind::kBch || spec.data_bits <= 160) continue;
    const auto scheme = make_ecc_scheme(spec);
    const Codeword clean = make_codeword(*scheme, rng);
    const std::size_t n = scheme->data_bits() + scheme->check_bits();
    Counts singles, doubles, triples;
    for (int s = 0; s < 24; ++s) {
      const std::size_t a = rng.next_u64() % n;
      std::size_t b = a, c = a;
      while (b == a) b = rng.next_u64() % n;
      while (c == a || c == b) c = rng.next_u64() % n;
      singles += classify(*scheme, clean, {a});
      doubles += classify(*scheme, clean, {a, b});
      triples += classify(*scheme, clean, {a, b, c});
    }
    EXPECT_EQ(singles.corrected, 24u) << scheme->name();
    EXPECT_EQ(doubles.corrected, 24u) << scheme->name();
    EXPECT_EQ(triples.detected, 24u) << scheme->name();
  }
}

}  // namespace
}  // namespace sparkxd::error
