#include "snn/stdp.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::snn {

PreTraces::PreTraces(std::size_t n_inputs, float tau_ms, float dt_ms)
    : decay_(std::exp(-dt_ms / tau_ms)), x_(n_inputs, 0.0f) {
  SPARKXD_REQUIRE(tau_ms > 0.0f && dt_ms > 0.0f,
                  "trace time constants must be positive");
}

void PreTraces::reset() { std::fill(x_.begin(), x_.end(), 0.0f); }

void PreTraces::step(const std::vector<std::uint32_t>& input_spikes) {
  for (float& x : x_) x *= decay_;
  for (const auto i : input_spikes) {
    SPARKXD_REQUIRE(i < x_.size(), "input spike index out of range");
    x_[i] = 1.0f;
  }
}

void stdp_post_update(float* w_row, std::size_t n_inputs,
                      const std::vector<float>& x_pre, const StdpParams& p) {
  SPARKXD_REQUIRE(x_pre.size() == n_inputs,
                  "trace width must match the weight row");
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const float drive = x_pre[i] - p.x_target;
    // Asymmetric soft bounds: potentiation saturates toward w_max,
    // depression toward w_min. Scaling depression by (w - w_min) matters
    // for fault recovery: a weight corrupted to w_max must still be
    // depressible, which a symmetric (w_max - w) factor would forbid.
    const float dw = drive > 0.0f
                         ? p.eta * drive * (p.w_max - w_row[i])
                         : p.eta * drive * (w_row[i] - p.w_min);
    w_row[i] = std::clamp(w_row[i] + dw, p.w_min, p.w_max);
  }
}

}  // namespace sparkxd::snn
