// Edge deployment: the full SparkXD pipeline as a downstream user would run
// it. Given a task, a network size, and an accuracy budget, the pipeline
//   1. trains the baseline SNN,
//   2. hardens it with fault-aware training (Algorithm 1),
//   3. finds the maximum tolerable BER,
//   4. maps the weights into safe subarrays (Algorithm 2), and
//   5. reports, per supply voltage, the accuracy / energy / throughput the
//      deployment would see — so the integrator can pick the lowest voltage
//      that meets the accuracy budget.
//
// Usage: edge_deployment [neurons] [digits|fashion]   (default: 400 digits)

#include <cstdio>
#include <cstring>

#include "common/env.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace sparkxd;
  core::PipelineConfig cfg;
  cfg.network.n_neurons =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 400;
  cfg.task = (argc > 2 && std::strcmp(argv[2], "fashion") == 0)
                 ? data::Task::kFashion
                 : data::Task::kDigits;
  cfg.network.seed = experiment_seed();
  cfg.seed = experiment_seed();
  cfg.train_samples = scaled(600, 150);
  cfg.test_samples = scaled(200, 60);
  cfg.fault_training.ber_stages = {1e-7, 1e-5, 1e-3};

  std::printf("SparkXD edge deployment: N%zu on %s\n", cfg.network.n_neurons,
              data::to_string(cfg.task));
  const auto r = core::run_pipeline(cfg);

  std::printf("baseline accuracy (accurate DRAM): %.1f%%\n",
              100.0 * r.baseline_accuracy);
  std::printf("improved accuracy (clean weights): %.1f%%\n",
              100.0 * r.improved_accuracy);
  std::printf("maximum tolerable BER:             %s\n",
              r.met_target ? Table::sci(r.ber_th).c_str() : "none");

  Table t("edge_deployment",
          {"V_supply [V]", "module BER", "accuracy", "energy [uJ]",
           "saving", "speed-up", "meets budget?"});
  const double budget =
      r.baseline_accuracy - cfg.fault_training.accuracy_bound;
  double best_v = energy::kNominalVdd;
  double best_saving = 0.0;
  for (const auto& v : r.per_voltage) {
    const bool ok = v.accuracy >= budget;
    if (ok && v.saving_pct > best_saving) {
      best_saving = v.saving_pct;
      best_v = v.v_supply;
    }
    t.add_row({Table::num(v.v_supply, 3),
               v.module_ber > 0 ? Table::sci(v.module_ber) : "0",
               Table::pct(100.0 * v.accuracy, 1),
               Table::num(v.energy_nj / 1000.0, 1),
               Table::pct(v.saving_pct), Table::num(v.speedup, 3),
               ok ? "yes" : "no"});
  }
  t.emit();

  if (best_saving > 0.0)
    std::printf(
        "\nRecommendation: run the DRAM at %.3f V — %.1f%% energy saving "
        "with accuracy within %.0f%% of the accurate-DRAM baseline.\n",
        best_v, best_saving, 100.0 * cfg.fault_training.accuracy_bound);
  else
    std::printf(
        "\nNo reduced-voltage point met the accuracy budget; stay at "
        "1.350 V.\n");
  return 0;
}
