file(REMOVE_RECURSE
  "CMakeFiles/table1_energy_per_access.dir/bench/table1_energy_per_access.cpp.o"
  "CMakeFiles/table1_energy_per_access.dir/bench/table1_energy_per_access.cpp.o.d"
  "table1_energy_per_access"
  "table1_energy_per_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_energy_per_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
