#pragma once
// SNN-platform energy breakdown model (paper Fig. 1b, adapted from the
// study in Krithivasan et al. [5]): splits the energy of processing one SNN
// inference on a neuromorphic platform into computation, communication, and
// memory accesses.
//
// Each platform is a triple of per-event energy coefficients applied to the
// workload counters of a simulated inference (synaptic operations, routed
// spikes, bytes moved). Coefficients are calibrated so the three platforms
// of the paper's figure land in its reported ranges (memory ~50-75% of
// total): TrueNorth [2] has heavily banked local SRAM (lowest memory share),
// PEASE [3] streams weights from memory (highest), SNNAP [4] in between.

#include <string>
#include <vector>

namespace sparkxd::energy {

/// Workload counters of one SNN inference.
struct SnnWorkload {
  double synaptic_ops = 0.0;  ///< weight-accumulate events
  double spikes = 0.0;        ///< routed spike events
  double memory_bytes = 0.0;  ///< weight/state traffic
};

/// Per-event energy coefficients of a platform (picojoules).
struct PlatformCoefficients {
  std::string name;
  double pj_per_synop = 0.0;
  double pj_per_spike = 0.0;
  double pj_per_byte = 0.0;
};

/// Fractional energy breakdown (sums to 1 for a non-empty workload).
struct EnergyShares {
  double computation = 0.0;
  double communication = 0.0;
  double memory = 0.0;
};

/// The three platforms of Fig. 1b with calibrated coefficients.
[[nodiscard]] std::vector<PlatformCoefficients> fig1b_platforms();

/// Computes the breakdown of `workload` on `platform`.
[[nodiscard]] EnergyShares breakdown(const PlatformCoefficients& platform,
                                     const SnnWorkload& workload);

/// Derives the workload counters of one inference of a fully-connected SNN
/// with the given shape. `spike_rate` is the average fraction of inputs
/// spiking per timestep.
[[nodiscard]] SnnWorkload snn_inference_workload(std::size_t n_inputs,
                                                 std::size_t n_neurons,
                                                 std::size_t timesteps,
                                                 double spike_rate);

}  // namespace sparkxd::energy
