// pipeline_hotpath — the canonical perf-trajectory benchmark.
//
// Times the SparkXD pipeline's phases separately — baseline training,
// fault-aware training, the DRAM energy sweep, and the Monte-Carlo
// corrupted-accuracy phase — and emits the stable sparkxd-bench-v1 JSON
// report (CI archives it as BENCH_4.json) so hot-path wins are tracked by
// machines, not commit messages.
//
// The Monte-Carlo phase is measured twice, single-threaded:
//   * hot     — the delta-injection hot path (core::evaluate_corrupted):
//               frozen candidate table shared across trials, flip-log
//               revert instead of a full snapshot restore, transposed
//               spike-gather kernel, reused per-worker inference scratch.
//   * legacy  — the pre-optimization loop, reconstructed faithfully here:
//               full weight-snapshot restore per trial, per-call candidate
//               scan (ErrorInjector::inject), and the row-major
//               neuron-outer gather kernel.
// Both legs must produce the SAME mean accuracy bit for bit (the exit code
// enforces it); `speedup_vs_legacy` records the win. The hot-path gains are
// copy/enumeration/layout eliminations, so the ratio is thread-count
// independent — measuring at 1 thread keeps it stable on any CI host.
//
//   pipeline_hotpath [--json BENCH_4.json]
//
// Honours SPARKXD_SCALE / SPARKXD_SEED. Exit codes: 0 ok, 1 equivalence
// violation, 2 bad usage.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"
#include "snn/lif.hpp"

namespace {

using namespace sparkxd;
using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/// The pre-optimization inference kernel: row-major weights, neuron-outer /
/// spike-inner gather (a serial dependent addition chain per neuron), full
/// LIF state owned per call. Kept here — not in the library — purely as the
/// legacy reference the hot path is measured and verified against.
std::vector<std::uint32_t> legacy_infer(const snn::Network& net,
                                        const std::vector<float>& image,
                                        snn::LifLayer& lif, Rng& rng) {
  const auto& cfg = net.config();
  const std::size_t ni = cfg.n_inputs;
  const std::size_t nn = cfg.n_neurons;
  const std::vector<float>& w = net.weights();
  snn::PoissonEncoder encoder(cfg.max_rate);
  lif.reset_dynamics();
  lif.set_plastic(false);
  encoder.set_image(image);
  std::vector<float> current(nn, 0.0f);
  std::vector<std::uint32_t> in_spikes, out_spikes, counts(nn, 0);
  for (std::size_t t = 0; t < cfg.timesteps; ++t) {
    encoder.step(rng, in_spikes);
    std::fill(current.begin(), current.end(), 0.0f);
    if (!in_spikes.empty()) {
      for (std::size_t n = 0; n < nn; ++n) {
        const float* row = w.data() + n * ni;
        float acc = 0.0f;
        for (const auto i : in_spikes) acc += row[i];
        current[n] = acc;
      }
    }
    lif.step(current, out_spikes);
    for (const auto s : out_spikes) ++counts[s];
  }
  return counts;
}

/// The pre-optimization Monte-Carlo loop: snapshot restore + per-call
/// candidate enumeration + legacy kernel. Stream derivation matches
/// core::evaluate_corrupted exactly, so the means must agree bit for bit.
double legacy_evaluate_corrupted(const snn::Network& net,
                                 const snn::NeuronLabels& labels,
                                 const error::ErrorInjector& injector,
                                 double ber, const data::Dataset& test,
                                 Rng& rng, std::size_t trials,
                                 float weight_clip) {
  const error::SanitizeRange sanitize{net.config().stdp.w_min, weight_clip};
  const std::uint64_t stream = rng.next_u64();
  const std::vector<float>& snapshot = net.weights();
  snn::Network scratch = net;
  snn::LifLayer lif(net.config().n_neurons, net.config().lif,
                    net.config().dt_ms);
  lif.thetas_mut() = net.thetas();
  double acc_sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng inject_rng(hash_combine(stream, 2 * t));
    Rng eval_rng(hash_combine(stream, 2 * t + 1));
    if (t != 0) scratch.weights_mut() = snapshot;  // full per-trial restore
    injector.inject(scratch.weights_mut(), ber, inject_rng, sanitize);
    const std::uint64_t eval_stream = eval_rng.next_u64();
    std::size_t n_correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      Rng sample_rng(hash_combine(eval_stream, i));
      const auto counts = legacy_infer(scratch, test.images[i], lif,
                                       sample_rng);
      n_correct += snn::vote_spike_counts(counts, labels) ==
                   static_cast<std::int32_t>(test.labels[i]);
    }
    acc_sum += static_cast<double>(n_correct) /
               static_cast<double>(test.size());
  }
  return acc_sum / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_out_path(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      ++i;  // value consumed by json_out_path
    } else {
      std::fprintf(stderr, "pipeline_hotpath: unknown option '%s'\n",
                   argv[i]);
      return 2;
    }
  }
  // The phase ratios this bench records are thread-count independent (copy,
  // enumeration and layout eliminations); pin one worker so the absolute
  // numbers are comparable across CI hosts too.
  ::setenv("SPARKXD_THREADS", "1", 1);
  bench::banner("pipeline hot-path phase timings",
                "delta injection + frozen candidate tables + the transposed "
                "gather give >=1.5x fewer ns/trial in the Monte-Carlo phase "
                "than the pre-optimization loop, with bit-identical results");

  const std::uint64_t seed = experiment_seed();
  const auto cfg = bench::net_config(200);
  const std::size_t n_train = scaled(220, 100);
  const std::size_t n_test = scaled(80, 50);
  const std::size_t trials = std::max<std::size_t>(scaled(8), 4);

  // --- train ---------------------------------------------------------------
  const auto all = data::make_dataset(data::Task::kDigits, n_train + n_test,
                                      seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);
  Rng rng(seed);
  const auto t0 = Clock::now();
  auto model = snn::train_and_label(cfg, train, test, 1, rng);
  const auto t1 = Clock::now();

  // --- fault training (Algorithm 1, short schedule) ------------------------
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, seed);
  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto injector = error::ErrorInjector::for_weights(
      g, profile, {}, place, n_weights, seed, 1e-3);
  core::FaultTrainingConfig ft;
  ft.ber_stages = {1e-5, 1e-4, 1e-3};
  const auto t2 = Clock::now();
  const auto fa = core::improve_error_tolerance(model, ft, injector, train,
                                                test, rng);
  const auto t3 = Clock::now();

  // --- DRAM energy sweep ---------------------------------------------------
  const std::vector<double> voltages = {1.325, 1.250, 1.175, 1.100, 1.025};
  const auto t4 = Clock::now();
  double energy_sum = 0.0;
  for (const double v : voltages)
    energy_sum +=
        core::weight_stream_energy(g, place, n_weights, v).energy.total_nj();
  const auto t5 = Clock::now();

  // --- Monte-Carlo phase: hot path vs legacy loop --------------------------
  const double ber = 1e-3;
  const auto timed_mc = [&](auto&& eval) {
    Rng warm(7);
    (void)eval(warm, std::size_t{2});  // warm-up: page in weights + caches
    Rng r(7);
    const auto s0 = Clock::now();
    const double acc = eval(r, trials);
    const auto s1 = Clock::now();
    return std::pair{ns_between(s0, s1), acc};
  };
  const auto [hot_ns, hot_acc] = timed_mc([&](Rng& r, std::size_t n) {
    return core::evaluate_corrupted(model.net, model.labels, injector, ber,
                                    test, r, n);
  });
  const auto [legacy_ns, legacy_acc] = timed_mc([&](Rng& r, std::size_t n) {
    return legacy_evaluate_corrupted(model.net, model.labels, injector, ber,
                                     test, r, n, core::kDefaultWeightClip);
  });
  const double hot_per_trial = hot_ns / static_cast<double>(trials);
  const double legacy_per_trial = legacy_ns / static_cast<double>(trials);
  const double speedup = legacy_per_trial / std::max(hot_per_trial, 1.0);

  Table t("pipeline_hotpath",
          {"phase", "reps", "total [ms]", "ns/rep"});
  const auto row = [&](const char* name, std::size_t reps, double ns) {
    t.add_row({name, std::to_string(reps), Table::num(ns / 1e6, 1),
               Table::num(ns / static_cast<double>(reps), 0)});
  };
  row("train", 1, ns_between(t0, t1));
  row("fault_training", 1, ns_between(t2, t3));
  row("sweep", voltages.size(), ns_between(t4, t5));
  row("monte_carlo", trials, hot_ns);
  row("monte_carlo_legacy", trials, legacy_ns);
  t.emit();
  std::printf("\nmonte_carlo speedup vs legacy loop: %.2fx "
              "(%.1f -> %.1f ms/trial), accuracies bit-identical: %s\n",
              speedup, legacy_per_trial / 1e6, hot_per_trial / 1e6,
              hot_acc == legacy_acc ? "yes" : "NO — EQUIVALENCE VIOLATION");

  bench::BenchReport report("pipeline_hotpath");
  report.add_phase("train", 1, ns_between(t0, t1));
  auto& ftp = report.add_phase("fault_training", 1, ns_between(t2, t3));
  ftp.metrics.emplace_back("ber_th", fa.ber_th);
  report.add_phase("sweep", voltages.size(), ns_between(t4, t5))
      .metrics.emplace_back("energy_nj_sum", energy_sum);
  auto& mc = report.add_phase("monte_carlo", trials, hot_ns);
  mc.metrics.emplace_back("ns_per_trial", hot_per_trial);
  mc.metrics.emplace_back("accuracy", hot_acc);
  auto& mcl = report.add_phase("monte_carlo_legacy", trials, legacy_ns);
  mcl.metrics.emplace_back("ns_per_trial", legacy_per_trial);
  mcl.metrics.emplace_back("accuracy", legacy_acc);
  mcl.metrics.emplace_back("speedup_vs_legacy", speedup);
  if (json_path != nullptr && !report.write(json_path)) return 2;

  return hot_acc == legacy_acc ? 0 : 1;
}
