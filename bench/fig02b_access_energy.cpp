// Fig. 2b: DRAM access energy per row-buffer condition (hit / miss /
// conflict) at the accurate (1.350 V) and approximate (1.025 V) supply.
// Paper: hit < miss < conflict, with 31%-42% energy saving per access at
// the reduced voltage.

#include "bench_common.hpp"
#include "dram/trace.hpp"
#include "energy/power_model.hpp"
#include "energy/voltage_model.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 2b — access energy per row-buffer condition",
                "31%-42% energy saving per access at 1.025 V; "
                "hit < miss < conflict");
  const energy::PowerModel pm;
  const energy::VoltageModel vm;
  const auto t_nom = vm.derive_timings(1.350);
  const auto t_low = vm.derive_timings(1.025);

  Table t("fig02b_access_energy",
          {"condition", "E @1.350V [nJ]", "E @1.025V [nJ]", "saving"});
  const std::pair<const char*, dram::RowBufferOutcome> conditions[] = {
      {"row buffer hit", dram::RowBufferOutcome::kHit},
      {"row buffer miss", dram::RowBufferOutcome::kMiss},
      {"row buffer conflict", dram::RowBufferOutcome::kConflict},
  };
  for (const auto& [name, outcome] : conditions) {
    const double e_nom = pm.access_energy_nj(outcome, 1.350, t_nom);
    const double e_low = pm.access_energy_nj(outcome, 1.025, t_low);
    t.add_row({name, Table::num(e_nom, 2), Table::num(e_low, 2),
               Table::pct(100.0 * (1.0 - e_low / e_nom))});
  }
  t.emit();
  return 0;
}
