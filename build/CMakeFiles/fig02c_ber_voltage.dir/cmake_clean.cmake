file(REMOVE_RECURSE
  "CMakeFiles/fig02c_ber_voltage.dir/bench/fig02c_ber_voltage.cpp.o"
  "CMakeFiles/fig02c_ber_voltage.dir/bench/fig02c_ber_voltage.cpp.o.d"
  "fig02c_ber_voltage"
  "fig02c_ber_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02c_ber_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
