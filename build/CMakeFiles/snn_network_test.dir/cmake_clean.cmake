file(REMOVE_RECURSE
  "CMakeFiles/snn_network_test.dir/tests/snn_network_test.cpp.o"
  "CMakeFiles/snn_network_test.dir/tests/snn_network_test.cpp.o.d"
  "snn_network_test"
  "snn_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snn_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
