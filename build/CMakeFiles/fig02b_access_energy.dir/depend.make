# Empty dependencies file for fig02b_access_energy.
# This may be replaced when dependencies are built.
