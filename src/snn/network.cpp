#include "snn/network.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace sparkxd::snn {

InferenceState::InferenceState(const Network& net)
    : lif_(net.lif_),
      encoder_(net.cfg_.max_rate),
      current_(net.cfg_.n_neurons, 0.0f) {
  // Inference freezes the adaptive thresholds (standard for this
  // architecture): the copied thetas stay at the network's trained values.
  lif_.set_plastic(false);
}

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg),
      w_(cfg.n_neurons * cfg.n_inputs),
      wt_(cfg.n_neurons * cfg.n_inputs),
      lif_(cfg.n_neurons, cfg.lif, cfg.dt_ms),
      traces_(cfg.n_inputs, cfg.stdp.tau_pre_ms, cfg.dt_ms),
      encoder_(cfg.max_rate),
      current_(cfg.n_neurons, 0.0f) {
  SPARKXD_REQUIRE(cfg.n_inputs > 0 && cfg.n_neurons > 0,
                  "network dimensions must be positive");
  SPARKXD_REQUIRE(cfg.timesteps > 0, "need at least one timestep per sample");
  SPARKXD_REQUIRE(cfg.norm_target > 0.0f, "norm_target must be positive");
  // Uniform random initial weights in [0, 0.3], then normalized — the
  // standard initialization for this architecture.
  Rng rng(cfg.seed);
  for (float& w : w_) w = static_cast<float>(rng.uniform(0.0, 0.3));
  normalize_rows();
  sync_transpose();
}

void Network::sync_transpose() {
  if (wt_synced_) return;
  const std::size_t ni = cfg_.n_inputs;
  const std::size_t nn = cfg_.n_neurons;
  for (std::size_t n = 0; n < nn; ++n) {
    const float* row = w_.data() + n * ni;
    for (std::size_t i = 0; i < ni; ++i) wt_[i * nn + n] = row[i];
  }
  wt_synced_ = true;
}

void Network::normalize_rows() {
  const std::size_t ni = cfg_.n_inputs;
  for (std::size_t n = 0; n < cfg_.n_neurons; ++n) {
    float* row = w_.data() + n * ni;
    float sum = 0.0f;
    for (std::size_t i = 0; i < ni; ++i) sum += row[i];
    if (sum <= 0.0f) continue;
    const float scale = cfg_.norm_target / sum;
    for (std::size_t i = 0; i < ni; ++i) row[i] *= scale;
  }
  wt_synced_ = false;
}

void Network::reset_dynamics() {
  lif_.reset_dynamics();
  traces_.reset();
  std::fill(current_.begin(), current_.end(), 0.0f);
}

std::vector<std::uint32_t> Network::process(const std::vector<float>& image,
                                            bool learn, Rng& rng) {
  SPARKXD_REQUIRE(image.size() == cfg_.n_inputs,
                  "image size must match n_inputs");
  if (!learn) sync_transpose();
  reset_dynamics();
  lif_.set_plastic(learn);
  encoder_.set_image(image);

  const std::size_t ni = cfg_.n_inputs;
  const std::size_t nn = cfg_.n_neurons;
  std::vector<std::uint32_t> counts(nn, 0);

  for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
    encoder_.step(rng, in_spikes_);
    if (learn) traces_.step(in_spikes_);

    // Synaptic drive: per-neuron sum over this step's spiking inputs.
    std::fill(current_.begin(), current_.end(), 0.0f);
    if (!in_spikes_.empty()) {
      if (learn) {
        // Training reads the row-major array directly: STDP updates weight
        // rows mid-sample and the next step's gather must see them.
        for (std::size_t n = 0; n < nn; ++n) {
          const float* row = w_.data() + n * ni;
          float acc = 0.0f;
          for (const auto i : in_spikes_) acc += row[i];
          current_[n] = acc;
        }
      } else {
        // Inference: spike-outer / neuron-inner over contiguous transposed
        // columns. Per neuron the additions happen in the same spike order
        // as the row-major walk, so the sums are bitwise identical.
        float* cur = current_.data();
        for (const auto i : in_spikes_) {
          const float* col = wt_.data() + std::size_t{i} * nn;
          for (std::size_t n = 0; n < nn; ++n) cur[n] += col[n];
        }
      }
    }

    lif_.step(current_, out_spikes_);
    for (const auto s : out_spikes_) {
      ++counts[s];
      if (learn)
        stdp_post_update(w_.data() + static_cast<std::size_t>(s) * ni, ni,
                         traces_.values(), cfg_.stdp);
    }
  }

  if (learn) {
    normalize_rows();  // also marks the transpose stale
  }
  return counts;
}

std::vector<std::uint32_t> Network::infer(InferenceState& state,
                                          const std::vector<float>& image,
                                          Rng& rng) const {
  SPARKXD_REQUIRE(image.size() == cfg_.n_inputs,
                  "image size must match n_inputs");
  SPARKXD_REQUIRE(wt_synced_,
                  "infer needs a synced transpose — call sync_transpose()");
  SPARKXD_REQUIRE(state.current_.size() == cfg_.n_neurons,
                  "InferenceState was built for a different network size");
  state.lif_.reset_dynamics();
  state.encoder_.set_image(image);

  const std::size_t nn = cfg_.n_neurons;
  std::vector<std::uint32_t> counts(nn, 0);

  for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
    state.encoder_.step(rng, state.in_spikes_);
    std::fill(state.current_.begin(), state.current_.end(), 0.0f);
    if (!state.in_spikes_.empty()) {
      float* cur = state.current_.data();
      for (const auto i : state.in_spikes_) {
        const float* col = wt_.data() + std::size_t{i} * nn;
        for (std::size_t n = 0; n < nn; ++n) cur[n] += col[n];
      }
    }
    state.lif_.step(state.current_, state.out_spikes_);
    for (const auto s : state.out_spikes_) ++counts[s];
  }
  return counts;
}

}  // namespace sparkxd::snn
