#include "dram/controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::dram {

const char* to_string(RefreshMode m) noexcept {
  switch (m) {
    case RefreshMode::kDisabled:
      return "disabled";
    case RefreshMode::kNominal:
      return "nominal";
    case RefreshMode::kReduced:
      return "reduced";
  }
  return "unknown";
}

Controller::Controller(const Geometry& geometry, const TimingParams& timing,
                       bool subarray_level_parallelism, RefreshPolicy refresh)
    : geom_(geometry),
      timing_(timing),
      salp_(subarray_level_parallelism),
      refresh_(refresh) {
  geom_.validate();
  refresh_.validate(timing_);
  if (refresh_.simulated()) refi_eff_ns_ = refresh_.effective_refi_ns(timing_);
  const std::size_t n_banks = geom_.channels * geom_.ranks_per_channel *
                              geom_.chips_per_rank * geom_.banks_per_chip;
  banks_.resize(salp_ ? n_banks * geom_.subarrays_per_bank : n_banks);
}

Controller::Controller(const Geometry& geometry, const TimingParams& timing,
                       bool subarray_level_parallelism, RefreshRegions regions)
    : Controller(geometry, timing, subarray_level_parallelism, regions.base) {
  region_refi_ns_.reserve(regions.regions.size());
  for (std::size_t r = 0; r < regions.regions.size(); ++r) {
    const auto& region = regions.regions[r];
    region.policy.validate(timing_);
    region_refi_ns_.push_back(region.policy.simulated()
                                  ? region.policy.effective_refi_ns(timing_)
                                  : 0.0);
    for (const auto row : region.rows) {
      const bool inserted = row_region_.emplace(row, r).second;
      SPARKXD_REQUIRE(inserted,
                      "refresh regions must have disjoint row sets");
    }
  }
}

std::size_t Controller::buffer_index(const Address& a) const {
  const auto bank = bank_id(geom_, a);
  return salp_ ? bank * geom_.subarrays_per_bank + a.subarray : bank;
}

double Controller::refi_for(const Address& a) const {
  if (region_refi_ns_.empty()) return refi_eff_ns_;
  const auto it = row_region_.find(region_row_id(geom_, a));
  return it == row_region_.end() ? refi_eff_ns_
                                 : region_refi_ns_[it->second];
}

void Controller::reset_state() {
  for (auto& b : banks_) b = BankState{};
  bus_ready_ns_ = 0.0;
  last_act_ns_ = -1.0e18;
}

RowBufferOutcome Controller::classify(const Access& access) const {
  const auto& bank = banks_[buffer_index(access.addr)];
  if (!bank.open) return RowBufferOutcome::kMiss;
  return bank.open_row == bank_row(geom_, access.addr)
             ? RowBufferOutcome::kHit
             : RowBufferOutcome::kConflict;
}

double Controller::next_outside(double t_ns, double refi_ns) const {
  if (refi_ns <= 0.0) return t_ns;
  double k = std::floor(t_ns / refi_ns);
  // An instant exactly on a window boundary ties with the REF that starts
  // there; the REF wins. Compare against the *product* — the quotient above
  // may round to just under the integer, which would otherwise let a command
  // issue at the very instant REF k+1 begins.
  if (t_ns >= (k + 1.0) * refi_ns) k += 1.0;
  if (k < 1.0) return t_ns;  // first REF fires at tREFI_eff
  const double window_start = k * refi_ns;
  // tRFC < tREFI_eff (validated), so the pushed instant cannot land inside
  // the next window.
  return t_ns < window_start + timing_.t_rfc ? window_start + timing_.t_rfc
                                             : t_ns;
}

double Controller::next_outside_refresh(double t_ns) const {
  return next_outside(t_ns, refi_eff_ns_);
}

TraceStats Controller::run(const AccessTrace& trace,
                           double arrival_interval_ns,
                           std::vector<AccessTiming>* timeline) {
  SPARKXD_REQUIRE(arrival_interval_ns >= 0.0,
                  "arrival interval must be non-negative");
  reset_state();
  TraceStats stats;
  stats.accesses = trace.size();
  if (timeline != nullptr) {
    timeline->clear();
    timeline->reserve(trace.size());
  }
  double makespan = 0.0;
  std::size_t index = 0;

  for (const auto& access : trace) {
    check_address(geom_, access.addr);
    auto& bank = banks_[buffer_index(access.addr)];
    const auto row = bank_row(geom_, access.addr);
    const auto outcome = classify(access);
    const double arrival =
        arrival_interval_ns * static_cast<double>(index++);
    // Commands to this access dodge the REF windows of *its row's* cadence
    // (the region's, or the base policy's). Single-policy mode resolves to
    // refi_eff_ns_ for every access, reproducing the global schedule.
    const double refi = refi_for(access.addr);
    AccessTiming timing_row;
    timing_row.outcome = outcome;

    // When can the column (RD/WR) command issue to this bank?
    double cmd_ready = std::max(bank.ready_ns, arrival);
    switch (outcome) {
      case RowBufferOutcome::kHit:
        ++stats.hits;
        break;
      case RowBufferOutcome::kConflict: {
        ++stats.conflicts;
        // PRE may only issue tRAS after the open row's ACT — and never
        // inside a refresh window.
        const double pre_at = next_outside(
            std::max({bank.ready_ns, arrival, bank.act_ns + timing_.t_ras}),
            refi);
        const double act_at = next_outside(
            std::max(pre_at + timing_.t_rp, last_act_ns_ + timing_.t_rrd),
            refi);
        ++stats.precharges;
        ++stats.activates;
        bank.act_ns = act_at;
        last_act_ns_ = act_at;
        cmd_ready = act_at + timing_.t_rcd;
        timing_row.pre_ns = pre_at;
        timing_row.act_ns = act_at;
        break;
      }
      case RowBufferOutcome::kMiss: {
        ++stats.misses;
        const double act_at = next_outside(
            std::max({bank.ready_ns, arrival, last_act_ns_ + timing_.t_rrd}),
            refi);
        ++stats.activates;
        bank.act_ns = act_at;
        last_act_ns_ = act_at;
        cmd_ready = act_at + timing_.t_rcd;
        timing_row.act_ns = act_at;
        break;
      }
    }
    bank.open = true;
    bank.open_row = row;

    // Data appears tCL after the column command; the shared data bus
    // serializes bursts, while PRE/ACT of *other* banks proceed under cover
    // of ongoing bursts — the multi-bank overlap of Fig. 9b. The column
    // command itself must also dodge refresh windows; the adjustment only
    // touches the schedule when the command actually lands in one, so the
    // refresh-free arithmetic stays bit-identical.
    double data_start = std::max(cmd_ready + timing_.t_cl, bus_ready_ns_);
    const double rd_at = next_outside(data_start - timing_.t_cl, refi);
    if (rd_at > data_start - timing_.t_cl) data_start = rd_at + timing_.t_cl;
    const double data_end = data_start + timing_.t_burst;
    bus_ready_ns_ = data_end;
    // The next column command to this bank may issue one burst slot after
    // this one (tCCD ~= tBURST for BL8).
    bank.ready_ns = data_start - timing_.t_cl + timing_.t_burst;
    if (access.type == AccessType::kRead)
      ++stats.reads;
    else
      ++stats.writes;
    makespan = std::max(makespan, data_end);
    if (timeline != nullptr) {
      timing_row.cmd_ns = data_start - timing_.t_cl;
      timing_row.data_start_ns = data_start;
      timing_row.data_end_ns = data_end;
      timeline->push_back(timing_row);
    }
  }

  // Every still-open row is eventually precharged; account the commands (the
  // trailing tRP is not on the critical path of the data makespan).
  for (auto& b : banks_)
    if (b.open) ++stats.precharges;

  stats.total_time_ns = makespan;
  // All-bank REFs at k * tREFI_eff for k = 1 .. floor(makespan / tREFI_eff)
  // fell within the trace (the same counting the legacy makespan-based
  // refresh-energy estimate uses). In region mode each region additionally
  // refreshes at its own cadence; per-region counts feed the power model's
  // row-fraction-scaled refresh charge (region_refresh_energy_nj).
  if (refi_eff_ns_ > 0.0 && makespan > 0.0)
    stats.refreshes =
        static_cast<std::uint64_t>(std::floor(makespan / refi_eff_ns_));
  if (!region_refi_ns_.empty() && makespan > 0.0) {
    stats.region_refreshes.resize(region_refi_ns_.size(), 0);
    for (std::size_t r = 0; r < region_refi_ns_.size(); ++r)
      if (region_refi_ns_[r] > 0.0)
        stats.region_refreshes[r] = static_cast<std::uint64_t>(
            std::floor(makespan / region_refi_ns_[r]));
  }
  return stats;
}

}  // namespace sparkxd::dram
