// Ablation B (DESIGN.md §5): the paper (following EDEN [15]) trains with
// Error Model-0 arguing it approximates Models 1-3. Test that claim: train
// fault-aware with Model-0, then evaluate the improved model under all four
// error models at the same BER.

#include "bench_common.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Ablation — error models 0-3",
                "a model hardened with Model-0 also tolerates Models 1-3 "
                "(Model-0 approximates the others; paper §III)");
  const std::uint64_t seed = experiment_seed();
  const std::size_t neurons = 400;
  const std::size_t n_train = bench::train_samples_for(neurons);
  const std::size_t n_test = bench::test_samples();
  const auto all =
      data::make_dataset(data::Task::kDigits, n_train + n_test, seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);
  Rng rng(seed);

  const auto cfg = bench::net_config(neurons);
  auto baseline = snn::train_and_label(cfg, train, test, 2, rng);
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, seed);
  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto place = mapping::baseline_placement(g, n_weights);

  // Harden with Model-0 (the paper's training configuration).
  const auto train_inj = error::ErrorInjector::for_weights(g, profile, {}, place, n_weights,
                                       seed, 1e-3);
  core::FaultTrainingConfig ft;
  ft.ber_stages = {1e-7, 1e-5, 1e-3};
  auto improved = core::improve_error_tolerance(baseline, ft, train_inj,
                                                train, test, rng);

  Table t("ablation_error_models",
          {"evaluation error model", "baseline acc @BER 1e-3",
           "improved acc @BER 1e-3"});
  for (const auto kind :
       {error::ErrorModelKind::kModel0Uniform,
        error::ErrorModelKind::kModel1Bitline,
        error::ErrorModelKind::kModel2Wordline,
        error::ErrorModelKind::kModel3DataDependent}) {
    error::ErrorModelSpec spec;
    spec.kind = kind;
    const auto eval_inj = error::ErrorInjector::for_weights(g, profile, spec, place, n_weights,
                                        seed, 1e-3);
    const double acc_base = core::evaluate_corrupted(
        baseline.net, baseline.labels, eval_inj, 1e-3, test, rng, 2);
    const double acc_impr = core::evaluate_corrupted(
        improved.improved.net, improved.improved.labels, eval_inj, 1e-3,
        test, rng, 2);
    t.add_row({to_string(kind), Table::pct(100.0 * acc_base, 1),
               Table::pct(100.0 * acc_impr, 1)});
  }
  t.emit();

  Table s("ablation_error_models_ref", {"reference", "value"});
  s.add_row({"baseline accuracy (accurate DRAM)",
             Table::pct(100.0 * baseline.clean_accuracy, 1)});
  s.emit();
  return 0;
}
