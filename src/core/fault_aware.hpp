#pragma once
// Improving and analyzing the SNN error tolerance — the paper's Algorithm 1
// (§IV-B and §IV-C).
//
// Fault-aware training: starting from the baseline model, bit errors are
// injected into the DRAM-resident weights at a stage BER and the network is
// retrained for one or more STDP epochs; the BER is then raised (the paper
// uses 10x increments) and the process repeats up to the maximum rate. The
// network gradually learns not to rely on weights stored in weak cells
// (weak-cell locations are fixed — see ErrorInjector).
//
// Tolerance analysis: a linear search over the BER stages finds the largest
// rate whose corrupted-inference accuracy still meets the user bound
// (valid because the accuracy-vs-BER curve is monotonically non-increasing,
// paper Fig. 8).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "error/injector.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::core {

/// Load-time range clipping of DRAM-resident weights (the EDEN-style
/// mitigation this paper's error-injection setup inherits): any weight read
/// back outside [w_min, kDefaultWeightClip] is clamped. Without it a single
/// upward exponent-bit flip turns a ~0.08 weight into w_max and one corrupted
/// neuron can hijack the WTA competition; with it, bit errors degrade
/// accuracy gradually — the regime the paper's Fig. 11 operates in.
inline constexpr float kDefaultWeightClip = 0.4f;

/// Fault-aware training schedule (paper Algorithm 1 inputs).
struct FaultTrainingConfig {
  /// Ascending BER stages; paper: decades from 1e-9 to 1e-3.
  std::vector<double> ber_stages = {1e-9, 1e-8, 1e-7, 1e-6,
                                    1e-5, 1e-4, 1e-3};
  std::size_t epochs_per_stage = 1;
  /// Target accuracy bound: accuracy must stay within this of the error-free
  /// baseline (paper: 1%).
  double accuracy_bound = 0.01;
  /// Injections of fresh error draws per accuracy evaluation (averaged).
  std::size_t eval_trials = 1;
  /// Range-clipping bound applied when corrupted weights are loaded.
  float weight_clip = kDefaultWeightClip;
  /// Calibrate the readout (neuron labels + bias) on corrupted weights —
  /// the deployed labelling pass runs against the approximate DRAM, so
  /// neurons inflated by their weak cells carry high bias and are
  /// discounted by the vote.
  bool calibrate_under_errors = true;
};

/// One (BER, accuracy) point of an error-tolerance curve.
struct TolerancePoint {
  double ber = 0.0;
  double accuracy = 0.0;
};

/// Output of Algorithm 1.
struct FaultAwareResult {
  snn::TrainedModel improved;  ///< model_1 of Algorithm 1
  double ber_th = 0.0;         ///< maximum tolerable BER meeting the bound
  bool met_target = false;     ///< true if any stage met the bound
  std::vector<TolerancePoint> stage_curve;  ///< accuracy after each stage
};

/// Evaluates a model with weights corrupted at `ber` through `injector`.
/// Averages `trials` fresh error draws; trials run concurrently (see
/// common/parallel), each with its own Rng substream keyed off one draw
/// from `rng`, so the result is deterministic in `rng`'s state and
/// identical at every thread count. The hot path is delta-based: the flip
/// candidates at `ber` are frozen once (ErrorInjector::freeze) and shared
/// across all trials, each worker owns one corruptible weight copy plus a
/// reused snn::InferenceState, and between trials only the recorded flips
/// are reverted instead of restoring a full snapshot — bit-identical to
/// the snapshot loop (tests/core_test.cpp proves it against a reference
/// implementation). `net` is untouched (const — required for the
/// concurrent per-voltage sweep to share one trained model). `weight_clip`
/// is the load-time range clip applied to corrupted values.
[[nodiscard]] double evaluate_corrupted(const snn::Network& net,
                                        const snn::NeuronLabels& labels,
                                        const error::ErrorInjector& injector,
                                        double ber, const data::Dataset& test,
                                        Rng& rng, std::size_t trials = 1,
                                        float weight_clip = kDefaultWeightClip);

/// Algorithm 1: improves the baseline model's error tolerance and records
/// the largest stage BER whose accuracy meets
/// (baseline.clean_accuracy - cfg.accuracy_bound).
/// `injector` must be built over the training-time (baseline) placement.
[[nodiscard]] FaultAwareResult improve_error_tolerance(
    const snn::TrainedModel& baseline, const FaultTrainingConfig& cfg,
    const error::ErrorInjector& injector, const data::Dataset& train,
    const data::Dataset& test, Rng& rng);

/// §IV-C tolerance analysis on an already-trained model: evaluates the
/// corrupted accuracy at every BER in `rates` (ascending) and returns the
/// curve plus the largest rate meeting `target_accuracy`.
struct ToleranceAnalysis {
  std::vector<TolerancePoint> curve;
  double ber_th = 0.0;
  bool met_target = false;
};

[[nodiscard]] ToleranceAnalysis analyze_tolerance(
    const snn::Network& net, const snn::NeuronLabels& labels,
    const error::ErrorInjector& injector, const std::vector<double>& rates,
    double target_accuracy, const data::Dataset& test, Rng& rng,
    std::size_t trials = 1);

}  // namespace sparkxd::core
