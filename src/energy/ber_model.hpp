#pragma once
// Bit-error-rate vs supply-voltage model (paper Fig. 2c, derived from the
// reduced-voltage characterization of Chang et al. [10]).
//
// Below a safe guardband the module-level BER grows exponentially as the
// supply voltage drops; we use a log-linear fit anchored so the paper's five
// evaluation voltages land on the BER decades its training schedule uses:
//     1.325 V -> 1e-9,  1.025 V -> 1e-3   (slope: -20 decades/V)
// and BER = 0 at or above the 1.35 V nominal supply.

namespace sparkxd::energy {

class BerModel {
 public:
  struct Params {
    double v_safe = 1.340;        ///< at/above this voltage: no errors
    double v_anchor = 1.325;      ///< anchor voltage
    double log10_at_anchor = -9;  ///< log10 BER at the anchor
    double decades_per_volt = -20.0;  ///< d(log10 BER)/dV
    double max_ber = 1.0e-2;          ///< clamp (cells fail en masse below)
  };

  BerModel() : BerModel(Params{}) {}
  explicit BerModel(const Params& p) : p_(p) {}

  /// Module-level bit error rate at the given supply voltage.
  [[nodiscard]] double ber(double v_supply) const;

  /// Inverse: the lowest supply voltage whose BER does not exceed
  /// `target_ber` (clamped to the modelled range [v floor, v_safe]).
  [[nodiscard]] double min_voltage_for(double target_ber) const;

 private:
  Params p_;
};

}  // namespace sparkxd::energy
