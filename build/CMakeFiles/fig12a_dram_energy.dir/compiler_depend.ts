# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12a_dram_energy.
