#include "snn/model_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/contracts.hpp"

namespace sparkxd::snn {

namespace {

constexpr char kMagic[4] = {'S', 'X', 'D', 'M'};
// v2: layer-stack models — hidden layer sizes plus one weight/theta blob
// per layer replace the single-layer blobs of v1.
// v3: LifParams/StdpParams are serialized field by field instead of as raw
// struct images. Raw images leak uninitialized alignment padding (LifParams
// ends in two bools), so two saves of the same model differed on disk, and
// the layout silently depended on the compiler's padding choices.
constexpr std::uint32_t kVersion = 3;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  SPARKXD_REQUIRE(is.good(), "truncated model file");
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
void read_vec(std::istream& is, std::vector<T>& v,
              std::uint64_t max_elems) {
  std::uint64_t n = 0;
  read_pod(is, n);
  SPARKXD_REQUIRE(n <= max_elems, "model file declares an absurd size");
  v.resize(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  SPARKXD_REQUIRE(is.good(), "truncated model file");
}

void write_bool(std::ostream& os, bool b) {
  write_pod(os, static_cast<std::uint8_t>(b ? 1 : 0));
}

void read_bool(std::istream& is, bool& b) {
  std::uint8_t byte = 0;
  read_pod(is, byte);
  b = byte != 0;
}

void write_lif(std::ostream& os, const LifParams& p) {
  write_pod(os, p.v_rest);
  write_pod(os, p.v_reset);
  write_pod(os, p.v_thresh);
  write_pod(os, p.tau_m_ms);
  write_pod(os, static_cast<std::int64_t>(p.refractory_steps));
  write_pod(os, p.theta_plus);
  write_pod(os, p.tau_theta_ms);
  write_pod(os, p.inhibition);
  write_bool(os, p.winner_take_all);
  write_bool(os, p.compete_at_inference);
}

void read_lif(std::istream& is, LifParams& p) {
  read_pod(is, p.v_rest);
  read_pod(is, p.v_reset);
  read_pod(is, p.v_thresh);
  read_pod(is, p.tau_m_ms);
  std::int64_t refractory = 0;
  read_pod(is, refractory);
  p.refractory_steps = static_cast<int>(refractory);
  read_pod(is, p.theta_plus);
  read_pod(is, p.tau_theta_ms);
  read_pod(is, p.inhibition);
  read_bool(is, p.winner_take_all);
  read_bool(is, p.compete_at_inference);
}

void write_stdp(std::ostream& os, const StdpParams& p) {
  write_pod(os, p.eta);
  write_pod(os, p.x_target);
  write_pod(os, p.tau_pre_ms);
  write_pod(os, p.w_min);
  write_pod(os, p.w_max);
}

void read_stdp(std::istream& is, StdpParams& p) {
  read_pod(is, p.eta);
  read_pod(is, p.x_target);
  read_pod(is, p.tau_pre_ms);
  read_pod(is, p.w_min);
  read_pod(is, p.w_max);
}

}  // namespace

void save_model(const TrainedModel& model, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);

  const auto& cfg = model.net.config();
  write_pod(os, static_cast<std::uint64_t>(cfg.n_inputs));
  write_pod(os, static_cast<std::uint64_t>(cfg.n_neurons));
  write_vec(os, std::vector<std::uint64_t>(cfg.hidden_neurons.begin(),
                                           cfg.hidden_neurons.end()));
  write_pod(os, static_cast<std::uint64_t>(cfg.timesteps));
  write_pod(os, cfg.dt_ms);
  write_pod(os, cfg.max_rate);
  write_pod(os, cfg.norm_target);
  write_pod(os, cfg.seed);
  write_lif(os, cfg.lif);
  write_stdp(os, cfg.stdp);

  for (std::size_t l = 0; l < model.net.n_layers(); ++l) {
    write_vec(os, model.net.weights(l));
    write_vec(os, model.net.thetas(l));
  }
  write_vec(os, model.labels.label);
  write_vec(os, model.labels.bias);
  write_pod(os, static_cast<std::uint64_t>(model.labels.num_classes));
  write_pod(os, model.clean_accuracy);
  SPARKXD_ENSURE(os.good(), "model write failed");
}

void save_model(const TrainedModel& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SPARKXD_REQUIRE(os.good(), "cannot open model file for writing");
  save_model(model, static_cast<std::ostream&>(os));
  os.close();
  SPARKXD_ENSURE(os.good(), "model write failed");
}

TrainedModel load_model(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  SPARKXD_REQUIRE(is.good() && std::memcmp(magic, kMagic, 4) == 0,
                  "not a SparkXD model file");
  std::uint32_t version = 0;
  read_pod(is, version);
  SPARKXD_REQUIRE(version == kVersion, "unsupported model file version");

  NetworkConfig cfg;
  constexpr std::uint64_t kMaxElems = 1ull << 32;  // sanity bound
  std::uint64_t n_inputs = 0, n_neurons = 0, timesteps = 0;
  read_pod(is, n_inputs);
  read_pod(is, n_neurons);
  std::vector<std::uint64_t> hidden;
  read_vec(is, hidden, 1024);
  read_pod(is, timesteps);
  cfg.n_inputs = static_cast<std::size_t>(n_inputs);
  cfg.n_neurons = static_cast<std::size_t>(n_neurons);
  cfg.hidden_neurons.assign(hidden.begin(), hidden.end());
  cfg.timesteps = static_cast<std::size_t>(timesteps);
  read_pod(is, cfg.dt_ms);
  read_pod(is, cfg.max_rate);
  read_pod(is, cfg.norm_target);
  read_pod(is, cfg.seed);
  read_lif(is, cfg.lif);
  read_stdp(is, cfg.stdp);

  TrainedModel model{Network(cfg), {}, 0.0};
  for (std::size_t l = 0; l < model.net.n_layers(); ++l) {
    std::vector<float> weights, thetas;
    read_vec(is, weights, kMaxElems);
    read_vec(is, thetas, kMaxElems);
    SPARKXD_REQUIRE(weights.size() == cfg.layer_weight_count(l),
                    "weight payload does not match the stored shape");
    SPARKXD_REQUIRE(thetas.size() == cfg.layer_neurons(l),
                    "theta payload does not match the stored shape");
    model.net.weights_mut(l) = std::move(weights);
    model.net.thetas_mut(l) = std::move(thetas);
  }

  read_vec(is, model.labels.label, kMaxElems);
  read_vec(is, model.labels.bias, kMaxElems);
  SPARKXD_REQUIRE(model.labels.label.size() == cfg.n_neurons &&
                      model.labels.bias.size() == cfg.n_neurons,
                  "label payload does not match the stored shape");
  std::uint64_t num_classes = 0;
  read_pod(is, num_classes);
  model.labels.num_classes = static_cast<std::size_t>(num_classes);
  read_pod(is, model.clean_accuracy);
  return model;
}

TrainedModel load_model(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SPARKXD_REQUIRE(is.good(), "cannot open model file for reading");
  return load_model(static_cast<std::istream&>(is));
}

}  // namespace sparkxd::snn
