// Tests for the DRAM mapping policies (baseline §IV-B Step-2, SparkXD
// Algorithm 2) and the trace generator.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "dram/controller.hpp"
#include "mapping/mapping.hpp"

namespace sparkxd::mapping {
namespace {

dram::Geometry geom() { return dram::Geometry::lpddr3_4gb(); }

/// Encodes a chunk address into a unique key for uniqueness checks.
std::uint64_t key(const dram::Geometry& g, const dram::Address& a) {
  return dram::encode_linear(g, a);
}

TEST(Helpers, WeightsPerChunk) {
  EXPECT_EQ(weights_per_chunk(geom()), 8u);  // 32 B / FP32
  EXPECT_EQ(chunks_for_weights(geom(), 16), 2u);
  EXPECT_EQ(chunks_for_weights(geom(), 17), 3u);
  EXPECT_EQ(chunks_for_weights(geom(), 0), 0u);
}

// ------------------------------------------------------------------ baseline

TEST(Baseline, CoversAllWeightsWithUniqueBurstAlignedChunks) {
  const auto g = geom();
  const std::size_t n_weights = 100000;
  const auto p = baseline_placement(g, n_weights);
  EXPECT_EQ(p.size(), chunks_for_weights(g, n_weights));
  std::set<std::uint64_t> keys;
  for (const auto& a : p) {
    EXPECT_EQ(a.column % g.burst_columns, 0u) << "burst misaligned";
    keys.insert(key(g, a));
  }
  EXPECT_EQ(keys.size(), p.size()) << "chunks overlap";
}

TEST(Baseline, FillsSubsequentAddressesInOneBankFirst) {
  const auto g = geom();
  const auto p = baseline_placement(g, 100000);
  // First chunk at bank 0 row 0 col 0; consecutive chunks advance columns.
  EXPECT_EQ(p[0].bank, 0u);
  EXPECT_EQ(p[0].column, 0u);
  EXPECT_EQ(p[1].column, g.burst_columns);
  // All of these weights fit in bank 0.
  for (const auto& a : p) EXPECT_EQ(a.bank, 0u);
}

TEST(Baseline, SpillsToNextBankWhenFull) {
  auto g = geom();
  g.subarrays_per_bank = 1;
  g.rows_per_subarray = 2;  // tiny banks: 2 rows * 512 cols * 4 B = 4 KB
  const std::size_t weights_per_bank =
      g.rows_per_bank() * g.columns_per_row;  // FP32 words per bank
  const auto p = baseline_placement(g, weights_per_bank + 8);
  EXPECT_EQ(p.back().bank, 1u);
}

TEST(Baseline, ThrowsWhenModuleTooSmall) {
  auto g = geom();
  g.banks_per_chip = 1;
  g.subarrays_per_bank = 1;
  g.rows_per_subarray = 1;
  EXPECT_THROW(baseline_placement(g, 10000), ContractViolation);
}

TEST(Baseline, LinearAddressesAreContiguous) {
  // "Subsequent addresses in a DRAM bank": byte addresses advance by one
  // burst per chunk.
  const auto g = geom();
  const auto p = baseline_placement(g, 5000);
  for (std::size_t i = 1; i < p.size(); ++i)
    EXPECT_EQ(key(g, p[i]), key(g, p[i - 1]) + g.burst_bytes());
}

// ------------------------------------------------------------------- sparkxd

struct SparkXdFixture : public ::testing::Test {
  dram::Geometry g = geom();
  error::SubarrayProfile profile{g, 42};
  double module_ber = 1e-3;
  double ber_th = 1e-3;
  std::size_t n_weights = 784 * 400;
};

TEST_F(SparkXdFixture, AllChunksInSafeSubarrays) {
  const auto p =
      sparkxd_placement(g, profile, module_ber, ber_th, n_weights);
  for (const auto& a : p.chunks) {
    const auto sid = dram::subarray_id(g, a);
    EXPECT_LE(profile.rate(sid, module_ber), ber_th)
        << "weight stored in an unsafe subarray";
  }
}

TEST_F(SparkXdFixture, ChunksUniqueAndComplete) {
  const auto p =
      sparkxd_placement(g, profile, module_ber, ber_th, n_weights);
  EXPECT_EQ(p.chunks.size(), chunks_for_weights(g, n_weights));
  std::set<std::uint64_t> keys;
  for (const auto& a : p.chunks) keys.insert(key(g, a));
  EXPECT_EQ(keys.size(), p.chunks.size());
}

TEST_F(SparkXdFixture, DiagnosticsAddUp) {
  const auto p =
      sparkxd_placement(g, profile, module_ber, ber_th, n_weights);
  EXPECT_EQ(p.safe_subarrays + p.unsafe_subarrays, g.total_subarrays());
  EXPECT_EQ(p.safe_subarrays, profile.count_safe(module_ber, ber_th));
  EXPECT_GT(p.unsafe_subarrays, 0u);  // lognormal spread guarantees some
}

TEST_F(SparkXdFixture, RotatesAcrossBanksAtRowGranularity) {
  const auto p =
      sparkxd_placement(g, profile, module_ber, ber_th, n_weights);
  const std::size_t bursts_per_row = g.columns_per_row / g.burst_columns;
  // Within the first row's worth of chunks the bank is constant...
  for (std::size_t i = 1; i < bursts_per_row; ++i)
    EXPECT_EQ(p.chunks[i].bank, p.chunks[0].bank);
  // ...and the next row's worth sits in a different bank (multi-bank
  // rotation), unless that bank was unsafe everywhere.
  EXPECT_NE(p.chunks[bursts_per_row].bank, p.chunks[0].bank);
}

TEST_F(SparkXdFixture, EverythingSafeAtZeroBer) {
  const auto p = sparkxd_placement(g, profile, 0.0, 0.0, n_weights);
  EXPECT_EQ(p.safe_subarrays, g.total_subarrays());
  EXPECT_EQ(p.unsafe_subarrays, 0u);
}

TEST_F(SparkXdFixture, ThrowsWhenNoSafeCapacity) {
  // Threshold far below every subarray's rate -> nothing is safe.
  EXPECT_THROW(sparkxd_placement(g, profile, 1e-3, 1e-9, n_weights),
               ContractViolation);
}

TEST_F(SparkXdFixture, TighterThresholdUsesFewerSubarrays) {
  const auto loose =
      sparkxd_placement(g, profile, module_ber, 1e-3, n_weights);
  const auto tight =
      sparkxd_placement(g, profile, module_ber, 3e-4, n_weights);
  EXPECT_LT(tight.safe_subarrays, loose.safe_subarrays);
}

TEST_F(SparkXdFixture, SkipsExactlyTheUnsafeSubarrays) {
  const auto p =
      sparkxd_placement(g, profile, module_ber, ber_th, n_weights);
  std::set<std::uint64_t> used;
  for (const auto& a : p.chunks) used.insert(dram::subarray_id(g, a));
  for (const auto sid : used)
    EXPECT_LE(profile.rate(sid, module_ber), ber_th);
}

// ------------------------------------------------------------ trace & timing

TEST_F(SparkXdFixture, ProposedMappingAtLeastAsFastAsBaseline) {
  // The throughput claim of Fig. 12b: Algorithm 2 overlaps row switches
  // across banks, so it cannot be slower than the baseline fill.
  const auto base = baseline_placement(g, n_weights);
  const auto prop =
      sparkxd_placement(g, profile, module_ber, ber_th, n_weights);
  dram::Controller c(g, dram::TimingParams::lpddr3_1600());
  const auto t_base =
      c.run(streaming_read_trace(g, base, n_weights)).total_time_ns;
  const auto t_prop =
      c.run(streaming_read_trace(g, prop.chunks, n_weights)).total_time_ns;
  EXPECT_LE(t_prop, t_base * 1.001);
}

TEST_F(SparkXdFixture, BothMappingsMaximizeRowHits) {
  const auto base = baseline_placement(g, n_weights);
  const auto prop =
      sparkxd_placement(g, profile, module_ber, ber_th, n_weights);
  dram::Controller c(g, dram::TimingParams::lpddr3_1600());
  const auto s_base = c.run(streaming_read_trace(g, base, n_weights));
  const auto s_prop = c.run(streaming_read_trace(g, prop.chunks, n_weights));
  EXPECT_GT(s_base.hit_rate(), 0.95);
  EXPECT_GT(s_prop.hit_rate(), 0.95);
}

TEST(TraceGen, OneAccessPerChunkInOrder) {
  const auto g = geom();
  const auto p = baseline_placement(g, 100);
  const auto trace = streaming_read_trace(g, p, 100);
  EXPECT_EQ(trace.size(), chunks_for_weights(g, 100));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].addr, p[i]);
    EXPECT_EQ(trace[i].type, dram::AccessType::kRead);
  }
}

TEST(TraceGen, MultiplePassesRepeat) {
  const auto g = geom();
  const auto p = baseline_placement(g, 64);
  const auto trace = streaming_read_trace(g, p, 64, 3);
  const std::size_t per_pass = chunks_for_weights(g, 64);
  EXPECT_EQ(trace.size(), 3 * per_pass);
  EXPECT_EQ(trace[0].addr, trace[per_pass].addr);
}

TEST(TraceGen, RejectsUndersizedPlacementAndZeroPasses) {
  const auto g = geom();
  const auto p = baseline_placement(g, 64);
  EXPECT_THROW(streaming_read_trace(g, p, 1000), ContractViolation);
  EXPECT_THROW(streaming_read_trace(g, p, 64, 0), ContractViolation);
}

// ------------------------------------------------- multi-layer placements

TEST(MultiLayer, BaselineLayersSliceTheLinearWalk) {
  const auto g = geom();
  const std::vector<std::size_t> layer_weights{784 * 48, 48 * 25};
  const auto per_layer = baseline_placement_layers(g, layer_weights);
  ASSERT_EQ(per_layer.size(), 2u);
  // Each layer covers its own weights in whole chunks...
  for (std::size_t l = 0; l < 2; ++l)
    EXPECT_EQ(per_layer[l].size(), chunks_for_weights(g, layer_weights[l]));
  // ...layer 0 is exactly the single-layer baseline placement...
  const auto flat = baseline_placement(g, layer_weights[0]);
  ASSERT_EQ(per_layer[0].size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i)
    EXPECT_EQ(per_layer[0][i], flat[i]);
  // ...and layer 1 continues at the next subsequent address.
  EXPECT_EQ(key(g, per_layer[1].front()),
            key(g, per_layer[0].back()) + g.burst_bytes());
}

TEST(MultiLayer, SingleLayerSparkXdMatchesLegacyChunkForChunk) {
  const auto g = geom();
  const error::SubarrayProfile profile(g, 42);
  const std::size_t n_weights = 784 * 400;
  const auto legacy = sparkxd_placement(g, profile, 1e-3, 1e-3, n_weights);
  const auto multi =
      sparkxd_placement_layers(g, profile, 1e-3, {1e-3}, {n_weights});
  ASSERT_EQ(multi.size(), 1u);
  EXPECT_EQ(multi[0].ber_th, 1e-3);
  EXPECT_FALSE(multi[0].capacity_relaxed);
  EXPECT_EQ(multi[0].safe_subarrays, legacy.safe_subarrays);
  EXPECT_EQ(multi[0].unsafe_subarrays, legacy.unsafe_subarrays);
  ASSERT_EQ(multi[0].chunks.size(), legacy.chunks.size());
  for (std::size_t i = 0; i < legacy.chunks.size(); ++i)
    EXPECT_EQ(multi[0].chunks[i], legacy.chunks[i]);
}

TEST(MultiLayer, RelaxesPerLayerThresholdWhenCapacityRunsOut) {
  const auto g = geom();
  const error::SubarrayProfile profile(g, 42);
  // A threshold far below every subarray's rate fits nothing; the placement
  // must relax it (module_ber/8, then doubling) instead of throwing.
  const auto multi =
      sparkxd_placement_layers(g, profile, 1e-3, {1e-9}, {784 * 25});
  ASSERT_EQ(multi.size(), 1u);
  EXPECT_TRUE(multi[0].capacity_relaxed);
  EXPECT_GT(multi[0].ber_th, 1e-9);
  EXPECT_EQ(multi[0].chunks.size(), chunks_for_weights(g, 784 * 25));
}

TEST(MultiLayer, ThrowsWhenModuleCannotHoldTheStack) {
  auto g = geom();
  g.banks_per_chip = 1;
  g.subarrays_per_bank = 2;
  g.rows_per_subarray = 2;
  const error::SubarrayProfile profile(g, 42);
  EXPECT_THROW(
      (void)sparkxd_placement_layers(g, profile, 1e-3, {1e-3, 1e-3},
                                     {100000, 100000}),
      ContractViolation);
  // One threshold per layer is mandatory.
  EXPECT_THROW((void)sparkxd_placement_layers(g, profile, 1e-3, {1e-3},
                                              {100, 100}),
               ContractViolation);
}

/// Property/fuzz sweep: across randomized geometries, operating BERs,
/// profile spreads (sigma), and 1-3 layer stacks, the per-layer placement
/// must (a) never put a chunk into a subarray unsafe at that layer's final
/// threshold, (b) produce pairwise-disjoint, in-bounds, burst-aligned
/// chunks within AND across layers, and (c) report occupancy diagnostics
/// that tile the module and match the profile's own safe count.
TEST(MultiLayerProperty, RandomizedGeometriesBersAndSigmas) {
  Rng rng(0xf00d);
  for (std::size_t iter = 0; iter < 25; ++iter) {
    dram::Geometry g;
    g.banks_per_chip = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
    g.subarrays_per_bank = static_cast<std::uint32_t>(rng.uniform_int(2, 16));
    g.rows_per_subarray = static_cast<std::uint32_t>(rng.uniform_int(4, 64));
    g.columns_per_row = 8u << rng.uniform_int(0, 3);  // 8..64 words
    const double sigma = rng.uniform(0.2, 1.5);
    const double module_ber = std::pow(10.0, rng.uniform(-7.0, -3.0));
    const error::SubarrayProfile profile(g, rng.next_u64(), sigma);

    const std::size_t n_layers = static_cast<std::size_t>(rng.uniform_int(1, 3));
    std::vector<std::size_t> layer_weights(n_layers);
    std::vector<double> thresholds(n_layers);
    // Capacity headroom: keep the stack well under the module size so the
    // relax loop terminates by relaxing rather than exhausting the module.
    const std::size_t module_words =
        static_cast<std::size_t>(g.total_bytes() / sizeof(float));
    for (std::size_t l = 0; l < n_layers; ++l) {
      layer_weights[l] = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(
                                 module_words / (4 * n_layers))));
      // Thresholds from "nothing safe" to "everything safe".
      thresholds[l] = std::pow(10.0, rng.uniform(-9.0, -1.0));
    }

    const auto multi = sparkxd_placement_layers(g, profile, module_ber,
                                                thresholds, layer_weights);
    ASSERT_EQ(multi.size(), n_layers);
    std::set<std::uint64_t> all_keys;
    for (std::size_t l = 0; l < n_layers; ++l) {
      const auto& lp = multi[l];
      EXPECT_EQ(lp.chunks.size(), chunks_for_weights(g, layer_weights[l]));
      // Occupancy diagnostics tile the module and match the profile.
      EXPECT_EQ(lp.safe_subarrays + lp.unsafe_subarrays, g.total_subarrays());
      EXPECT_EQ(lp.safe_subarrays, profile.count_safe(module_ber, lp.ber_th));
      // Relaxation only ever loosens the caller's threshold.
      EXPECT_GE(lp.ber_th, thresholds[l]);
      if (!lp.capacity_relaxed) {
        EXPECT_EQ(lp.ber_th, thresholds[l]);
      }
      for (const auto& a : lp.chunks) {
        // In bounds + burst-aligned.
        ASSERT_NO_THROW(dram::check_address(g, a));
        EXPECT_EQ(a.column % g.burst_columns, 0u);
        // Never in a subarray unsafe at this layer's final threshold.
        EXPECT_LE(profile.rate(dram::subarray_id(g, a), module_ber),
                  lp.ber_th);
        // Disjoint within and across layers.
        EXPECT_TRUE(all_keys.insert(key(g, a)).second)
            << "overlapping chunks at iter " << iter;
      }
    }

    // The baseline split obeys the same disjointness/bounds contract.
    const auto base = baseline_placement_layers(g, layer_weights);
    std::set<std::uint64_t> base_keys;
    for (const auto& layer : base)
      for (const auto& a : layer) {
        ASSERT_NO_THROW(dram::check_address(g, a));
        EXPECT_TRUE(base_keys.insert(key(g, a)).second);
      }
  }
}

class WeightCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WeightCounts, BaselineAndSparkXdAgreeOnChunkCount) {
  const auto g = geom();
  const error::SubarrayProfile profile(g, 1);
  const auto n = GetParam();
  const auto base = baseline_placement(g, n);
  const auto prop = sparkxd_placement(g, profile, 1e-4, 1e-3, n);
  EXPECT_EQ(base.size(), prop.chunks.size());
}

INSTANTIATE_TEST_SUITE_P(NetworkSizes, WeightCounts,
                         ::testing::Values(784 * 400, 784 * 900, 784 * 1600,
                                           784 * 2500, 784 * 3600));

}  // namespace
}  // namespace sparkxd::mapping
