#pragma once
// DRAM data-mapping policies for synaptic weights.
//
// A *placement* assigns every 8-weight (32 B) burst chunk a DRAM address
// (the burst's first column). Two policies are implemented:
//
//  * baseline_placement — the paper's baseline (§IV-B Step-2): weights fill
//    subsequent addresses of a DRAM bank (all columns of a row, then the
//    next row of the same bank); when a bank is full, the next bank of the
//    same chip is used. Good row locality, no bank interleaving, no
//    awareness of per-subarray error rates.
//
//  * sparkxd_placement — Algorithm 2: weights are placed only in *safe*
//    subarrays (error rate <= BER_th at the operating BER), filling all
//    columns of one row to maximize row-buffer hits and rotating across
//    banks at row granularity so ACT/PRE of the next bank overlaps with the
//    current bank's bursts (the multi-bank burst feature, Fig. 9b).

#include <cstddef>
#include <vector>

#include "dram/geometry.hpp"
#include "dram/trace.hpp"
#include "error/injector.hpp"
#include "error/subarray_profile.hpp"

namespace sparkxd::mapping {

/// Weights per burst chunk (8 for 32 B bursts of FP32 weights).
[[nodiscard]] std::size_t weights_per_chunk(const dram::Geometry& g);

/// Number of burst chunks needed to store n_weights.
[[nodiscard]] std::size_t chunks_for_weights(const dram::Geometry& g,
                                             std::size_t n_weights);

/// The paper's baseline mapping. Throws if the module cannot hold the data.
[[nodiscard]] error::ChunkPlacement baseline_placement(
    const dram::Geometry& g, std::size_t n_weights);

/// Result of Algorithm 2 with occupancy diagnostics.
struct SparkXdPlacement {
  error::ChunkPlacement chunks;
  std::size_t safe_subarrays = 0;    ///< subarrays meeting BER_th
  std::size_t unsafe_subarrays = 0;  ///< subarrays skipped as unsafe
};

/// Algorithm 2: error-aware, row-hit-maximizing, bank-rotating placement.
/// `module_ber` is the operating error rate (from the supply voltage);
/// `ber_threshold` is the model's maximum tolerable BER (BER_th).
/// Throws if the safe subarrays cannot hold the data.
[[nodiscard]] SparkXdPlacement sparkxd_placement(
    const dram::Geometry& g, const error::SubarrayProfile& profile,
    double module_ber, double ber_threshold, std::size_t n_weights);

/// Builds the inference access trace: every used chunk read once per pass,
/// in placement order (streaming weight fetch).
[[nodiscard]] dram::AccessTrace streaming_read_trace(
    const dram::Geometry& g, const error::ChunkPlacement& placement,
    std::size_t n_weights, std::size_t passes = 1);

// ---------------------------------------------------------------------------
// Multi-layer placements: one address region per layer of an SNN stack.
// Layers are packed into the SAME module with pairwise-disjoint addresses
// (row granularity — a row holds chunks of at most one layer, so a layer
// whose weights end mid-row pads out the remainder). A single-element layer
// list reproduces the single-layer policies chunk for chunk.

/// The baseline mapping, split per layer: layer l occupies the next
/// chunks_for_weights(g, layer_weights[l]) subsequent addresses after layer
/// l-1. Throws if the module cannot hold all layers.
[[nodiscard]] std::vector<error::ChunkPlacement> baseline_placement_layers(
    const dram::Geometry& g, const std::vector<std::size_t>& layer_weights);

/// One layer's slice of an error-aware multi-layer placement.
struct LayerPlacement {
  error::ChunkPlacement chunks;
  /// BER threshold this layer was actually placed under. Starts at the
  /// caller's per-layer BER_th; when the safe subarrays cannot hold the
  /// layer it is relaxed (0 -> module_ber/8, then doubling) until the layer
  /// fits, mirroring the pipeline's legacy capacity-relax loop.
  double ber_th = 0.0;
  bool capacity_relaxed = false;  ///< BER_th was raised to fit this layer
  std::size_t safe_subarrays = 0;    ///< subarrays meeting this layer's BER_th
  std::size_t unsafe_subarrays = 0;  ///< subarrays skipped as unsafe
};

/// Algorithm 2 generalized to a layer stack with PER-LAYER BER thresholds
/// (the EnforceSNN/EDEN structure): each layer's weights go only into
/// subarrays safe at ITS threshold, layers are placed input-side first, and
/// rows already holding an earlier layer are skipped, so the per-layer
/// address ranges are disjoint. Every layer keeps the row-hit-maximizing,
/// bank-rotating walk of the single-layer algorithm. `thresholds` and
/// `layer_weights` must have equal, non-zero size. For one layer with no
/// relax this is chunk-for-chunk sparkxd_placement. Throws when a layer
/// cannot fit even with every subarray unsafe (threshold relaxed past 1).
[[nodiscard]] std::vector<LayerPlacement> sparkxd_placement_layers(
    const dram::Geometry& g, const error::SubarrayProfile& profile,
    double module_ber, const std::vector<double>& thresholds,
    const std::vector<std::size_t>& layer_weights);

}  // namespace sparkxd::mapping
