#pragma once
// DRAM controller simulation.
//
// An open-row-policy controller with per-bank state and a shared data bus:
// each access is classified as a row-buffer hit, miss, or conflict
// (paper §II-B1); ACT/PRE latencies of different banks overlap with data
// bursts on the bus, which is how the multi-bank burst feature of Fig. 9b
// buys throughput. The simulation is event-free (one pass over the trace,
// per-bank ready times), which is exact for in-order single-request-stream
// workloads like streaming weight reads.
//
// Auto-refresh: under a simulated RefreshPolicy the controller schedules one
// all-bank REF every effective tREFI (tREFI x the policy's multiplier). REF
// k occupies the whole device for [k*tREFI_eff, k*tREFI_eff + tRFC): no
// ACT, PRE, or column command may issue inside that window, so every command
// instant is pushed past the window it lands in. Row buffers are restored
// after the REF (the controller is assumed to reopen the rows at no modelled
// cost) — a deliberate simplification that keeps row-buffer classification a
// pure function of the address stream, which classify() and the
// classify-vs-run differential tests rely on. The dominant timing cost of
// refresh — a tRFC stall every tREFI, ~1.7% of time at the nominal cadence —
// is captured exactly.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/geometry.hpp"
#include "dram/timing.hpp"
#include "dram/trace.hpp"

namespace sparkxd::dram {

/// One refresh region: a set of global row ids (bank_id * rows_per_bank +
/// bank-level row, see region_row_id) that share a RefreshPolicy. Per-layer
/// error-aware mapping keeps layer regions disjoint at row granularity, so a
/// region is exactly one layer's footprint — EnforceSNN's "less tolerant
/// layers live in shorter-refresh regions" realized as per-region REF
/// cadences instead of one module-wide multiplier.
struct RefreshRegion {
  RefreshPolicy policy;
  std::vector<std::uint64_t> rows;  ///< global row ids; disjoint across regions
};

/// A module-wide refresh plan: `base` covers every row not claimed by a
/// region (and defines whether unclaimed rows are refreshed at all), each
/// region overrides the cadence for its own rows. Commands to a row dodge
/// the REF windows of *that row's* region only — per-region REF retires one
/// region's rows, not the whole device, so other regions' traffic proceeds.
struct RefreshRegions {
  RefreshPolicy base = RefreshPolicy::disabled();
  std::vector<RefreshRegion> regions;
};

/// Global row id used by RefreshRegion::rows.
[[nodiscard]] inline std::uint64_t region_row_id(const Geometry& g,
                                                 const Address& a) {
  return bank_id(g, a) * g.rows_per_bank() + bank_row(g, a);
}

/// Simulates a trace and produces timing + row-buffer statistics.
class Controller {
 public:
  /// `subarray_level_parallelism` models the SALP-style architecture the
  /// paper's §IV-D references (Putra et al. [14]): each *subarray* keeps its
  /// own local row buffer, so switching rows across subarrays of one bank is
  /// a miss (ACT only) rather than a conflict (PRE + ACT). Commodity DRAM
  /// (the default, false) has one row buffer per bank.
  ///
  /// `refresh` defaults to RefreshPolicy::disabled(), which reproduces the
  /// refresh-free schedule bit for bit.
  Controller(const Geometry& geometry, const TimingParams& timing,
             bool subarray_level_parallelism = false,
             RefreshPolicy refresh = RefreshPolicy::disabled());

  /// Per-region refresh: rows listed in `regions` follow their region's
  /// cadence, every other row follows `regions.base`. A plan with no regions
  /// behaves bit-identically to the single-policy constructor with
  /// `regions.base`. Region row sets must be disjoint (throws otherwise).
  Controller(const Geometry& geometry, const TimingParams& timing,
             bool subarray_level_parallelism, RefreshRegions regions);

  /// Classifies and times every access in order. Resets state first, so each
  /// call simulates an independent trace (all banks initially idle).
  ///
  /// `arrival_interval_ns` models the consumer: request i arrives at
  /// i * interval (an accelerator consuming one burst per MAC-array pass).
  /// 0 = back-to-back (pure DRAM-limited streaming).
  ///
  /// When `timeline` is non-null it receives one AccessTiming per access,
  /// in trace order (the vector is cleared first).
  TraceStats run(const AccessTrace& trace, double arrival_interval_ns = 0.0,
                 std::vector<AccessTiming>* timeline = nullptr);

  /// Classifies a single access against current state *without* advancing
  /// time (used by tests and by the energy model's per-condition probes).
  [[nodiscard]] RowBufferOutcome classify(const Access& access) const;

  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] const TimingParams& timing() const noexcept { return timing_; }
  [[nodiscard]] const RefreshPolicy& refresh() const noexcept {
    return refresh_;
  }

  /// Earliest instant >= t_ns that does not fall inside a refresh window
  /// [k*tREFI_eff, k*tREFI_eff + tRFC), k >= 1, of the *base* policy.
  /// Identity when refresh is not simulated. An instant landing exactly on a
  /// window boundary belongs to the REF (REF wins the tie): the command is
  /// pushed behind the window regardless of how t_ns / tREFI_eff rounds.
  /// Exposed so tests can assert the window arithmetic.
  [[nodiscard]] double next_outside_refresh(double t_ns) const;

  /// Number of per-region refresh cadences (0 for single-policy mode).
  [[nodiscard]] std::size_t region_count() const noexcept {
    return region_refi_ns_.size();
  }
  /// Effective tREFI of region `index` in ns (0 = region not refreshed).
  [[nodiscard]] double region_refi_ns(std::size_t index) const {
    return region_refi_ns_.at(index);
  }

 private:
  struct BankState {
    bool open = false;
    std::uint32_t open_row = 0;  ///< bank-level row index when open
    double ready_ns = 0.0;       ///< earliest time the bank accepts a command
    double act_ns = -1.0e18;     ///< issue time of the last ACT (for tRAS)
  };

  void reset_state();
  [[nodiscard]] std::size_t buffer_index(const Address& a) const;
  /// Effective tREFI governing commands to `a` (the region's, or the base).
  [[nodiscard]] double refi_for(const Address& a) const;
  /// The tie-break-pinned window arithmetic for one cadence.
  [[nodiscard]] double next_outside(double t_ns, double refi_ns) const;

  Geometry geom_;
  TimingParams timing_;
  bool salp_ = false;
  RefreshPolicy refresh_;
  double refi_eff_ns_ = 0.0;      ///< effective tREFI (0 when not simulated)
  std::vector<double> region_refi_ns_;  ///< per-region tREFI (region mode)
  std::unordered_map<std::uint64_t, std::size_t> row_region_;
  std::vector<BankState> banks_;  ///< one per row buffer (bank, or subarray)
  double bus_ready_ns_ = 0.0;
  double last_act_ns_ = -1.0e18;  ///< for tRRD across banks
};

}  // namespace sparkxd::dram
