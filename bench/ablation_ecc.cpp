// Ablation E: SparkXD vs conventional SECDED ECC protection.
//
// An ECC deployment stores a Hamming(72,64) check byte per 64-bit word
// (+12.5% storage and weight traffic) and scrubs on read: single-bit errors
// per word are repaired, double-bit errors only detected. SparkXD instead
// spends nothing on redundancy and relies on training + mapping.
// This bench compares, per BER: repaired accuracy, residual uncorrectable
// words, and the DRAM energy including the ECC traffic overhead.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "error/ecc.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Ablation — SparkXD vs SECDED ECC",
                "ECC repairs single-bit errors at +12.5% storage/traffic; "
                "SparkXD pays no redundancy");
  const std::uint64_t seed = experiment_seed();
  const std::size_t neurons = 400;
  const std::size_t n_train = bench::train_samples_for(neurons);
  const std::size_t n_test = bench::test_samples();
  const auto all =
      data::make_dataset(data::Task::kDigits, n_train + n_test, seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);
  Rng rng(seed);

  const auto cfg = bench::net_config(neurons);
  auto baseline = snn::train_and_label(cfg, train, test, 2, rng);
  const auto clean = baseline.net.weights();
  const auto checks = error::ecc_encode_weights(clean);

  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, seed);
  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto injector = error::ErrorInjector::for_weights(
      g, profile, {}, place, n_weights, seed, 1e-2);

  // SparkXD-hardened model for the comparison row.
  core::FaultTrainingConfig ft;
  ft.ber_stages = {1e-7, 1e-5, 1e-3};
  auto improved = core::improve_error_tolerance(baseline, ft, injector,
                                                train, test, rng);

  Table t("ablation_ecc",
          {"BER", "baseline (no protection)", "baseline + SECDED",
           "uncorrectable words", "SparkXD (no redundancy)"});
  const int trials = 3;
  for (const double ber : {1e-5, 1e-4, 1e-3, 1e-2}) {
    double acc_plain = 0.0, acc_ecc = 0.0, acc_sparkxd = 0.0;
    std::size_t uncorrectable = 0;
    for (int i = 0; i < trials; ++i) {
      // Unprotected.
      baseline.net.weights_mut() = clean;
      injector.inject(baseline.net.weights_mut(), ber, rng,
                      {0.0f, ft.weight_clip});
      acc_plain += snn::evaluate(baseline.net, baseline.labels, test, rng);
      // ECC: corrupt raw bits (no clipping — ECC sees the raw word), scrub,
      // then clip whatever survived uncorrectable.
      baseline.net.weights_mut() = clean;
      injector.inject(baseline.net.weights_mut(), ber, rng,
                      {-1e30f, 1e30f});
      const auto stats =
          error::ecc_scrub_weights(baseline.net.weights_mut(), checks);
      uncorrectable += stats.uncorrectable;
      for (float& w : baseline.net.weights_mut())
        w = std::isnan(w) ? 0.0f
                          : std::clamp(w, 0.0f, ft.weight_clip);
      acc_ecc += snn::evaluate(baseline.net, baseline.labels, test, rng);
      // SparkXD.
      acc_sparkxd += core::evaluate_corrupted(
          improved.improved.net, improved.improved.labels, injector, ber,
          test, rng, 1, ft.weight_clip);
    }
    baseline.net.weights_mut() = clean;
    t.add_row({Table::sci(ber), Table::pct(100.0 * acc_plain / trials, 1),
               Table::pct(100.0 * acc_ecc / trials, 1),
               Table::num(static_cast<double>(uncorrectable) / trials, 1),
               Table::pct(100.0 * acc_sparkxd / trials, 1)});
  }
  t.emit();

  // Energy cost of the redundancy: ECC fetches 12.5% more bytes.
  const auto base_te = core::weight_stream_energy(g, place, n_weights, 1.025);
  const std::size_t ecc_weights =
      n_weights + n_weights / 8;  // data + check bytes, in FP32-equivalents
  const auto ecc_place = mapping::baseline_placement(g, ecc_weights);
  const auto ecc_te =
      core::weight_stream_energy(g, ecc_place, ecc_weights, 1.025);
  Table s("ablation_ecc_energy", {"scheme", "DRAM energy @1.025V [uJ]",
                                  "overhead"});
  s.add_row({"SparkXD (no redundancy)",
             Table::num(base_te.energy.total_nj() / 1000.0, 1), "0%"});
  s.add_row({"SECDED ECC",
             Table::num(ecc_te.energy.total_nj() / 1000.0, 1),
             Table::pct(100.0 * (ecc_te.energy.total_nj() /
                                     base_te.energy.total_nj() -
                                 1.0))});
  s.emit();
  return 0;
}
