// Tests for the scenario subsystem: the stable JSON writer, the built-in
// registry, ScenarioMatrix expansion, runner determinism across thread
// counts, and the golden-report regression harness.
//
// Golden workflow: the digests of the two smoke scenarios live in
// tests/golden/<name>.digest. When a change intentionally moves the numbers
// (new training schedule, energy-model fix, ...), regenerate them with
//
//     ./build/scenario_test --update-golden        (or SPARKXD_UPDATE_GOLDEN=1)
//
// and commit the diff. Unintentional drift — any change to accuracy, BER,
// energy, or timing at 6-digit precision — fails the test.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <string_view>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "scenario/matrix.hpp"
#include "scenario/runner.hpp"
#include "test_env_util.hpp"

#ifndef SPARKXD_GOLDEN_DIR
#error "scenario_test needs SPARKXD_GOLDEN_DIR (set by CMakeLists.txt)"
#endif

namespace sparkxd::scenario {
namespace {

bool g_update_golden = false;

using testutil::ThreadsOverride;

std::string golden_path(std::string_view scenario_name) {
  return std::string(SPARKXD_GOLDEN_DIR) + "/" + std::string(scenario_name) +
         ".digest";
}

// ------------------------------------------------------------- JSON writer

TEST(JsonWriter, NestedDocumentHasStableLayout) {
  json::Writer w;
  w.begin_object();
  w.field("name", "x");
  w.key("values").begin_array().value(1.5).value(2).end_array();
  w.key("inner").begin_object().field("flag", true).end_object();
  w.key("empty").begin_array().end_array();
  w.end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"x\",\n"
            "  \"values\": [\n"
            "    1.5,\n"
            "    2\n"
            "  ],\n"
            "  \"inner\": {\n"
            "    \"flag\": true\n"
            "  },\n"
            "  \"empty\": []\n"
            "}");
}

TEST(JsonWriter, CompactMode) {
  json::Writer w(/*pretty=*/false);
  w.begin_object();
  w.field("a", 1).key("b").begin_array().value(true).value("s").end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[true,\"s\"]}");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json::escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json::escape("plain"), "plain");
}

TEST(JsonWriter, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(json::number(0.5), "0.5");
  EXPECT_EQ(json::number(1e-5), "1e-05");
  EXPECT_EQ(json::number(1.25), "1.25");
  EXPECT_EQ(json::number(0.0), "0");
  // NaN / inf are not JSON numbers — a clear error beats a silent null
  // (common_test locks down the message; the full coverage lives there).
  EXPECT_THROW((void)json::number(std::numeric_limits<double>::quiet_NaN()),
               ContractViolation);
  EXPECT_THROW((void)json::number(std::numeric_limits<double>::infinity()),
               ContractViolation);
}

TEST(JsonWriter, RejectsMalformedNesting) {
  {
    json::Writer w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), ContractViolation);  // value without key
  }
  {
    json::Writer w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), ContractViolation);  // key inside array
  }
  {
    json::Writer w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), ContractViolation);  // mismatched end
  }
  {
    json::Writer w;
    w.value(1.0);
    EXPECT_THROW(w.value(2.0), ContractViolation);  // two roots
  }
}

// ---------------------------------------------------------------- registry

TEST(Registry, HasAtLeastTenValidUniqueScenarios) {
  const auto& all = builtin_scenarios();
  EXPECT_GE(all.size(), 10u);
  std::set<std::string> names;
  for (const auto& s : all) {
    EXPECT_NO_THROW(s.validate()) << s.name;
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate: " << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
  }
}

TEST(Registry, CoversTheEvaluationGrid) {
  const auto& all = builtin_scenarios();
  std::set<data::Task> tasks;
  std::set<bool> salp;
  std::set<error::ErrorModelKind> models;
  for (const auto& s : all) {
    tasks.insert(s.task);
    salp.insert(s.salp);
    models.insert(s.error_model.kind);
  }
  EXPECT_EQ(tasks.size(), 2u);  // digits and fashion
  EXPECT_EQ(salp.size(), 2u);   // commodity and SALP
  EXPECT_GE(models.size(), 3u); // Model-0, Model-1, Model-2
}

TEST(Registry, FindAndMatch) {
  ASSERT_NE(find_scenario("smoke-digits-m0"), nullptr);
  EXPECT_EQ(find_scenario("smoke-digits-m0")->n_neurons, 25u);
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  const auto smoke = match_scenarios("smoke");
  EXPECT_EQ(smoke.size(), 8u);
  EXPECT_TRUE(match_scenarios("zzz").empty());
}

TEST(Registry, CoversTheLayerStackAxis) {
  // The deep grid contributes 2- and 3-layer stacks on both tasks plus a
  // SALP point and the golden-locked smoke; pre-existing cells stay flat.
  std::size_t flat = 0, deep2 = 0, deep3 = 0;
  for (const auto& s : builtin_scenarios()) {
    switch (s.hidden_neurons.size()) {
      case 0: ++flat; break;
      case 1: ++deep2; break;
      default: ++deep3; break;
    }
  }
  EXPECT_GE(flat, 10u);
  EXPECT_GE(deep2, 3u);
  EXPECT_GE(deep3, 2u);
  EXPECT_FALSE(match_scenarios("deep2").empty());
  EXPECT_FALSE(match_scenarios("deep3").empty());
  ASSERT_NE(find_scenario("digits-small-salp-m0-deep2"), nullptr);
}

TEST(Scenario, LoweringCarriesTheLayerStack) {
  const auto* deep = find_scenario("smoke-digits-deep");
  ASSERT_NE(deep, nullptr);
  ASSERT_EQ(deep->hidden_neurons.size(), 1u);
  const auto cfg = deep->pipeline_config();
  EXPECT_EQ(cfg.network.hidden_neurons, deep->hidden_neurons);
  EXPECT_EQ(cfg.network.n_layers(), 2u);

  // Flat scenarios lower to the legacy single-layer network.
  const auto flat_cfg = find_scenario("smoke-digits-m0")->pipeline_config();
  EXPECT_TRUE(flat_cfg.network.hidden_neurons.empty());
  EXPECT_EQ(flat_cfg.network.n_layers(), 1u);
}

TEST(Registry, CoversTheRefreshAxis) {
  // The refresh grid contributes nominal and relaxed-refresh scenarios; the
  // pre-existing cells keep the disabled (legacy) policy.
  std::size_t disabled = 0, nominal = 0, reduced = 0;
  for (const auto& s : builtin_scenarios()) {
    switch (s.refresh.mode) {
      case dram::RefreshMode::kDisabled: ++disabled; break;
      case dram::RefreshMode::kNominal: ++nominal; break;
      case dram::RefreshMode::kReduced: ++reduced; break;
    }
  }
  EXPECT_GE(disabled, 10u);
  EXPECT_GE(nominal, 2u);
  EXPECT_GE(reduced, 4u);
  EXPECT_FALSE(match_scenarios("relaxed-refresh").empty());
}

TEST(Scenario, LoweringCouplesRefreshAndRetention) {
  const auto* relaxed = find_scenario("smoke-fashion-salp-m1-refresh");
  ASSERT_NE(relaxed, nullptr);
  const auto cfg = relaxed->pipeline_config();
  EXPECT_EQ(cfg.refresh.mode, dram::RefreshMode::kReduced);
  EXPECT_TRUE(cfg.error_model.retention.enabled);
  EXPECT_DOUBLE_EQ(cfg.error_model.retention.interval_multiplier, 32.0);

  // Legacy scenarios lower with refresh and retention both off.
  const auto legacy_cfg = find_scenario("smoke-digits-m0")->pipeline_config();
  EXPECT_EQ(legacy_cfg.refresh.mode, dram::RefreshMode::kDisabled);
  EXPECT_FALSE(legacy_cfg.error_model.retention.enabled);
}

TEST(Registry, CoversTheEccAxis) {
  // The ecc grids contribute every scheme kind (plus the 512 B and 4 KB
  // large-codeword BCH modes on the SALP cell); pre-existing cells stay
  // unprotected.
  std::size_t off = 0, protected_count = 0;
  std::set<error::EccKind> kinds;
  std::set<std::size_t> sizes;
  for (const auto& s : builtin_scenarios()) {
    if (s.ecc.enabled()) {
      ++protected_count;
      kinds.insert(s.ecc.kind);
      sizes.insert(s.ecc.data_bits);
    } else {
      ++off;
    }
  }
  EXPECT_GE(off, 10u);
  EXPECT_GE(protected_count, 7u);
  EXPECT_EQ(kinds.size(), 4u);  // parity, secded, hsiao, bch
  EXPECT_GE(sizes.size(), 2u);  // 64-bit and a large-codeword mode
  ASSERT_NE(find_scenario("digits-small-commodity-m0-ecc-bch"), nullptr);
  EXPECT_FALSE(match_scenarios("ecc-bch512b").empty());
}

TEST(Scenario, LoweringCarriesTheEccSpec) {
  const auto* ecc = find_scenario("smoke-digits-ecc");
  ASSERT_NE(ecc, nullptr);
  EXPECT_EQ(ecc->ecc.kind, error::EccKind::kSecded);
  const auto cfg = ecc->pipeline_config();
  EXPECT_EQ(cfg.ecc.kind, error::EccKind::kSecded);
  EXPECT_EQ(cfg.ecc.data_bits, 64u);

  // Legacy scenarios lower with ECC disabled (the unprotected path).
  const auto legacy_cfg = find_scenario("smoke-digits-m0")->pipeline_config();
  EXPECT_FALSE(legacy_cfg.ecc.enabled());
}

TEST(Scenario, RefreshLabels) {
  EXPECT_EQ(refresh_label(dram::RefreshPolicy::disabled()), "off");
  EXPECT_EQ(refresh_label(dram::RefreshPolicy::nominal()), "1x");
  EXPECT_EQ(refresh_label(dram::RefreshPolicy::reduced(8.0)), "8x");
  EXPECT_EQ(refresh_label(dram::RefreshPolicy::reduced(8.5)), "8.5x");
}

TEST(Registry, GoldenScenariosExistAndAreFast) {
  for (const auto name : kGoldenScenarios) {
    const auto* s = find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    // Golden runs must stay cheap: tests and CI run them repeatedly.
    EXPECT_LE(s->n_neurons, 32u) << name;
    EXPECT_LE(s->train_samples, 120u) << name;
    EXPECT_LE(s->voltages.size(), 3u) << name;
  }
}

TEST(Scenario, ValidateRejectsBadNames) {
  Scenario s = *find_scenario("smoke-digits-m0");
  s.name = "";
  EXPECT_THROW(s.validate(), ContractViolation);
  s.name = "Has Spaces";
  EXPECT_THROW(s.validate(), ContractViolation);
  s.name = "ok-name-2";
  EXPECT_NO_THROW(s.validate());
}

TEST(Scenario, ValidateRejectsBadVoltageGrid) {
  Scenario s = *find_scenario("smoke-digits-m0");
  s.voltages = {1.1, 1.25};  // ascending
  EXPECT_THROW(s.validate(), ContractViolation);
  s.voltages = {};
  EXPECT_THROW(s.validate(), ContractViolation);
}

// ------------------------------------------------------------------ matrix

ScenarioMatrix small_matrix() {
  ScenarioMatrix m;
  m.tasks = {data::Task::kDigits, data::Task::kFashion};
  m.sizes = {{"tiny", 25, 100, 50, 1}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false},
                  {"salp", dram::Geometry::lpddr3_4gb(), true}};
  error::ErrorModelSpec m1;
  m1.kind = error::ErrorModelKind::kModel1Bitline;
  m.error_models = {{"m0", {}}, {"m1", m1}};
  return m;
}

TEST(Matrix, ExpandsTheFullCrossProduct) {
  const auto m = small_matrix();
  EXPECT_EQ(m.size(), 2u * 1u * 2u * 2u);
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), m.size());
  std::set<std::string> names;
  for (const auto& s : scenarios) names.insert(s.name);
  EXPECT_EQ(names.size(), scenarios.size());
  EXPECT_TRUE(names.count("digits-tiny-commodity-m0"));
  EXPECT_TRUE(names.count("fashion-tiny-salp-m1"));
}

TEST(Matrix, ExpansionIsDeterministic) {
  const auto a = small_matrix().expand();
  const auto b = small_matrix().expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Matrix, SeedAxisSuffixesNamesOnlyWhenMultiValued) {
  auto m = small_matrix();
  m.tasks = {data::Task::kDigits};
  m.error_models = {{"m0", {}}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false}};
  m.seeds = {1, 2};
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].name, "digits-tiny-commodity-m0-s1");
  EXPECT_EQ(scenarios[1].name, "digits-tiny-commodity-m0-s2");
}

TEST(Matrix, RefreshAxisSuffixesNamesOnlyWhenMultiValued) {
  auto m = small_matrix();
  m.tasks = {data::Task::kDigits};
  m.error_models = {{"m0", {}}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false}};
  m.refresh_policies = {{"nominal-refresh", dram::RefreshPolicy::nominal()},
                        {"relaxed-refresh-8x", dram::RefreshPolicy::reduced(8.0)}};
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].name, "digits-tiny-commodity-m0-nominal-refresh");
  EXPECT_EQ(scenarios[1].name, "digits-tiny-commodity-m0-relaxed-refresh-8x");
  EXPECT_EQ(scenarios[0].refresh.mode, dram::RefreshMode::kNominal);
  EXPECT_DOUBLE_EQ(scenarios[1].refresh.interval_multiplier, 8.0);
  // Single-valued refresh axis (the default) leaves names untouched.
  auto single = small_matrix();
  for (const auto& s : single.expand())
    EXPECT_EQ(s.name.find("ref"), std::string::npos) << s.name;
}

TEST(Matrix, EccAxisSuffixesNamesOnlyWhenMultiValued) {
  auto m = small_matrix();
  m.tasks = {data::Task::kDigits};
  m.error_models = {{"m0", {}}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false}};
  m.ecc_schemes = {{"ecc-off", {}},
                   {"ecc-secded", {error::EccKind::kSecded, 64, 0}},
                   {"ecc-bch512b", {error::EccKind::kBch, 4096, 0}}};
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].name, "digits-tiny-commodity-m0-ecc-off");
  EXPECT_EQ(scenarios[1].name, "digits-tiny-commodity-m0-ecc-secded");
  EXPECT_EQ(scenarios[2].name, "digits-tiny-commodity-m0-ecc-bch512b");
  EXPECT_FALSE(scenarios[0].ecc.enabled());
  EXPECT_EQ(scenarios[1].ecc.kind, error::EccKind::kSecded);
  EXPECT_EQ(scenarios[2].ecc.data_bits, 4096u);
  EXPECT_NE(scenarios[2].description.find("ecc bch4096b"), std::string::npos);
  // Single-valued ecc axis (the default) leaves names untouched.
  for (const auto& s : small_matrix().expand())
    EXPECT_EQ(s.name.find("ecc"), std::string::npos) << s.name;
}

TEST(Matrix, KnobSearchAxisSuffixesNamesOnlyWhenMultiValued) {
  auto m = small_matrix();
  m.tasks = {data::Task::kDigits};
  m.error_models = {{"m0", {}}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false}};
  m.knob_searches = {{"knobs-off", false}, {"knobs-on", true}};
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].name, "digits-tiny-commodity-m0-knobs-off");
  EXPECT_EQ(scenarios[1].name, "digits-tiny-commodity-m0-knobs-on");
  EXPECT_FALSE(scenarios[0].layer_knobs);
  EXPECT_TRUE(scenarios[1].layer_knobs);
  // Single-valued knob axis (the default) leaves names untouched.
  for (const auto& s : small_matrix().expand())
    EXPECT_EQ(s.name.find("knobs"), std::string::npos) << s.name;
}

TEST(Matrix, DuplicateAxisValueNamesCollideLoudly) {
  // Two refresh-axis values with the same name lower two different tuples
  // to one scenario name; in a registry the second would silently shadow
  // the first. expand() must throw and name both source tuples.
  auto m = small_matrix();
  m.tasks = {data::Task::kDigits};
  m.error_models = {{"m0", {}}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false}};
  m.refresh_policies = {{"relaxed", dram::RefreshPolicy::reduced(4.0)},
                        {"relaxed", dram::RefreshPolicy::reduced(8.0)}};
  try {
    (void)m.expand();
    FAIL() << "duplicate names must not expand silently";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scenario name collision"), std::string::npos)
        << what;
    EXPECT_NE(what.find("produced by both"), std::string::npos) << what;
    EXPECT_NE(what.find("refresh=relaxed"), std::string::npos) << what;
  }
}

TEST(Matrix, CrossAxisSuffixCollisionsAreDetected) {
  // Suffixes are plain dash joins, so distinctly-named values on DIFFERENT
  // axes can still concatenate to the same name: ecc "a" + refresh "b-c"
  // == ecc "a-b" + refresh "c". The guard catches those too.
  auto m = small_matrix();
  m.tasks = {data::Task::kDigits};
  m.error_models = {{"m0", {}}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false}};
  m.ecc_schemes = {{"a", {}}, {"a-b", {}}};
  m.refresh_policies = {{"b-c", dram::RefreshPolicy::nominal()},
                        {"c", dram::RefreshPolicy::nominal()}};
  EXPECT_THROW((void)m.expand(), ContractViolation);
}

TEST(Matrix, RejectsEmptyAxes) {
  auto m = small_matrix();
  m.sizes.clear();
  EXPECT_THROW((void)m.expand(), ContractViolation);
  auto m2 = small_matrix();
  m2.error_models.clear();
  EXPECT_THROW((void)m2.expand(), ContractViolation);
  auto m3 = small_matrix();
  m3.geometries[0].name.clear();
  EXPECT_THROW((void)m3.expand(), ContractViolation);
}

// ---------------------------------------------------- runner + golden files

constexpr std::size_t kGoldenCount = std::size(kGoldenScenarios);

/// Runs one golden scenario once per binary invocation and caches the
/// result — several tests below reuse it.
const ScenarioResult& golden_result(std::size_t which) {
  static ScenarioResult cache[kGoldenCount];
  static bool done[kGoldenCount] = {};
  SPARKXD_REQUIRE(which < kGoldenCount, "golden scenario index out of range");
  if (!done[which]) {
    const auto* s = find_scenario(kGoldenScenarios[which]);
    SPARKXD_REQUIRE(s != nullptr, "golden scenario missing from registry");
    cache[which] = run_scenarios({*s}).front();
    done[which] = true;
  }
  return cache[which];
}

TEST(Runner, ResultsComeBackInInputOrder) {
  ThreadsOverride threads("4");
  const auto* a = find_scenario("smoke-digits-m0");
  const auto* b = find_scenario("smoke-fashion-salp-m1");
  ASSERT_TRUE(a != nullptr && b != nullptr);
  const auto results = run_scenarios({*b, *a});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].scenario.name, b->name);
  EXPECT_EQ(results[1].scenario.name, a->name);
  EXPECT_GT(results[0].report.baseline_accuracy, 0.0);
}

class ThreadInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadInvariance, JsonAndDigestAreThreadCountInvariant) {
  // Every golden scenario — including both refresh-axis ones — must produce
  // byte-identical JSON and digests at 1 and 8 threads.
  const auto* s = find_scenario(kGoldenScenarios[GetParam()]);
  ASSERT_NE(s, nullptr);
  std::string json_1, json_8, digest_1, digest_8;
  {
    ThreadsOverride threads("1");
    const auto r = run_scenarios({*s});
    json_1 = to_json(r);
    digest_1 = digest(r.front());
  }
  {
    ThreadsOverride threads("8");
    const auto r = run_scenarios({*s});
    json_8 = to_json(r);
    digest_8 = digest(r.front());
  }
  EXPECT_EQ(json_1, json_8);    // byte-identical full report
  EXPECT_EQ(digest_1, digest_8);  // and digest
}

INSTANTIATE_TEST_SUITE_P(AllGoldenScenarios, ThreadInvariance,
                         ::testing::Range<std::size_t>(0u, kGoldenCount));

class BatchVsSolo : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchVsSolo, BatchRunIsByteIdenticalToSoloPipelineRuns) {
  // Differential determinism: run_scenarios on a BATCH must produce exactly
  // the results of running each scenario alone through core::run_pipeline —
  // each scenario is fully self-seeded, so batch fan-out, worker
  // scheduling, and neighbouring scenarios must not leak into any result.
  // Checked at 1 and 8 threads via byte-equal JSON and digests.
  const ThreadsOverride threads(GetParam());
  const auto* a = find_scenario("smoke-digits-m0");
  const auto* b = find_scenario("smoke-digits-deep");
  const auto* c = find_scenario("smoke-fashion-salp-m1-refresh");
  ASSERT_TRUE(a != nullptr && b != nullptr && c != nullptr);
  const std::vector<Scenario> batch_in{*a, *b, *c};

  const auto batch = run_scenarios(batch_in);
  ASSERT_EQ(batch.size(), batch_in.size());
  for (std::size_t i = 0; i < batch_in.size(); ++i) {
    ScenarioResult solo;
    solo.scenario = batch_in[i];
    solo.report = core::run_pipeline(batch_in[i].pipeline_config());
    EXPECT_EQ(digest(batch[i]), digest(solo)) << batch_in[i].name;
    EXPECT_EQ(to_json({batch[i]}), to_json({solo})) << batch_in[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, BatchVsSolo,
                         ::testing::Values("1", "8"));

TEST(Runner, DigestEmitsLayerFieldsOnlyForDeepScenarios) {
  // Flat digests must not change shape (the checked-in goldens depend on
  // it); deep scenarios gain the layers=, layerN and per-voltage L<n>
  // lines, with per-layer BER_th and placement stats.
  const auto flat = digest(golden_result(0));
  EXPECT_EQ(flat.find("layers="), std::string::npos);
  EXPECT_EQ(flat.find("\nlayer0"), std::string::npos);
  const auto deep = digest(golden_result(4));
  EXPECT_NE(deep.find("layers=2\n"), std::string::npos);
  EXPECT_NE(deep.find("layer0 ber_th="), std::string::npos);
  EXPECT_NE(deep.find("layer1 ber_th="), std::string::npos);
  EXPECT_NE(deep.find("\n  L0 ber_th="), std::string::npos);
  EXPECT_NE(deep.find(" chunks="), std::string::npos);
}

TEST(Runner, DeepReportCarriesPerLayerStats) {
  const auto& r = golden_result(4);
  ASSERT_EQ(r.report.layer_ber_th.size(), 2u);
  ASSERT_EQ(r.report.layer_curves.size(), 2u);
  for (const auto& v : r.report.per_voltage) {
    ASSERT_EQ(v.layers.size(), 2u);
    double energy = 0.0;
    std::size_t retweak = 0;
    for (const auto& ls : v.layers) {
      EXPECT_GT(ls.chunks, 0u);
      energy += ls.energy_nj;
      retweak += ls.retention_weak_cells;
    }
    // Top-level accounting aggregates the per-layer slices.
    EXPECT_DOUBLE_EQ(energy, v.energy_nj);
    EXPECT_EQ(retweak, v.retention_weak_cells);
  }
  // The JSON carries the per-layer blocks for deep scenarios only.
  const auto json = to_json({r});
  EXPECT_NE(json.find("\"layer_tolerance\""), std::string::npos);
  EXPECT_NE(json.find("\"layers\""), std::string::npos);
  EXPECT_EQ(to_json({golden_result(0)}).find("\"layer_tolerance\""),
            std::string::npos);
}

TEST(Runner, DigestIsCompactAndLabelled) {
  const auto& r = golden_result(0);
  const auto d = digest(r);
  EXPECT_NE(d.find("scenario=smoke-digits-m0\n"), std::string::npos);
  EXPECT_NE(d.find("baseline_accuracy="), std::string::npos);
  EXPECT_NE(d.find("ber_th="), std::string::npos);
  // One v= line per voltage.
  std::size_t lines = 0;
  for (std::size_t pos = 0; (pos = d.find("\nv=", pos)) != std::string::npos;
       ++pos)
    ++lines;
  EXPECT_EQ(lines, r.report.per_voltage.size());
}

TEST(Runner, DigestEmitsRefreshFieldsOnlyForRefreshScenarios) {
  // Pre-refresh-axis digests must not change shape (the checked-in goldens
  // depend on it); refresh scenarios gain the refresh=, ref= and retweak=
  // fields.
  const auto legacy = digest(golden_result(0));
  EXPECT_EQ(legacy.find("refresh="), std::string::npos);
  EXPECT_EQ(legacy.find(" ref="), std::string::npos);
  const auto relaxed = digest(golden_result(3));
  EXPECT_NE(relaxed.find("refresh=32x\n"), std::string::npos);
  EXPECT_NE(relaxed.find(" ref="), std::string::npos);
  EXPECT_NE(relaxed.find(" retweak="), std::string::npos);
}

TEST(Runner, DigestEmitsEccFieldsOnlyForEccScenarios) {
  // Pre-ecc-axis digests must not change shape (the checked-in goldens
  // depend on it); ecc scenarios gain the ecc= header, the per-voltage
  // ecccw=/ecccorr=/eccdet= aggregates, and the per-layer E<n> lines.
  const auto legacy = digest(golden_result(0));
  EXPECT_EQ(legacy.find("ecc="), std::string::npos);
  EXPECT_EQ(legacy.find(" ecccw="), std::string::npos);
  EXPECT_EQ(legacy.find("\n  E0 "), std::string::npos);
  const auto ecc = digest(golden_result(5));
  EXPECT_NE(ecc.find("ecc=secded\n"), std::string::npos);
  EXPECT_NE(ecc.find(" ecccw="), std::string::npos);
  EXPECT_NE(ecc.find(" ecccorr="), std::string::npos);
  EXPECT_NE(ecc.find("\n  E0 scheme=secded(72,64)"), std::string::npos);
  EXPECT_NE(ecc.find(" decode_nj="), std::string::npos);

  // The JSON gains the scheme/counters block for ecc scenarios only.
  const auto json = to_json({golden_result(5)});
  EXPECT_NE(json.find("\"ecc_layers\""), std::string::npos);
  EXPECT_NE(json.find("\"ecc_corrected\""), std::string::npos);
  EXPECT_EQ(to_json({golden_result(0)}).find("\"ecc_layers\""),
            std::string::npos);
}

TEST(Runner, DigestEmitsKnobFieldsOnlyForKnobScenarios) {
  // Knob-free digests must not change shape (the checked-in goldens depend
  // on it); knob-search scenarios gain the K<n> per-layer operating-point
  // lines plus the Kuniform/Ktotal energy split.
  const auto legacy = digest(golden_result(0));
  EXPECT_EQ(legacy.find("\nK0 "), std::string::npos);
  EXPECT_EQ(legacy.find("\nKtotal "), std::string::npos);
  const auto knobs = digest(golden_result(7));
  EXPECT_NE(knobs.find("\nK0 v="), std::string::npos);
  EXPECT_NE(knobs.find("\nK1 v="), std::string::npos);
  EXPECT_NE(knobs.find(" raw="), std::string::npos);
  EXPECT_NE(knobs.find(" tol="), std::string::npos);
  EXPECT_NE(knobs.find(" floor="), std::string::npos);
  EXPECT_NE(knobs.find("\nKtotal energy_nj="), std::string::npos);

  // The JSON gains the layer_knobs block for knob scenarios only.
  const auto json = to_json({golden_result(7)});
  EXPECT_NE(json.find("\"layer_knobs\""), std::string::npos);
  EXPECT_NE(json.find("\"total_energy_nj\""), std::string::npos);
  EXPECT_NE(json.find("\"uniform_feasible\""), std::string::npos);
  EXPECT_EQ(to_json({golden_result(0)}).find("\"layer_knobs\""),
            std::string::npos);
}

TEST(Runner, KnobReportBeatsOrMatchesTheUniformBaseline) {
  // The acceptance criterion of the per-layer assignment: at the same
  // accuracy floor, the per-layer total can never exceed the best uniform
  // triple (each layer minimizes over a superset of the shared choice).
  const auto& r = golden_result(7);
  ASSERT_TRUE(r.report.layer_knobs.has_value());
  const auto& k = *r.report.layer_knobs;
  ASSERT_EQ(k.layers.size(), 2u);  // deep 2-layer smoke stack
  for (const auto& c : k.layers) {
    EXPECT_TRUE(c.meets_floor);
    EXPECT_LE(c.raw_ber, c.tolerable_ber);
  }
  ASSERT_TRUE(k.uniform_feasible);
  EXPECT_LE(k.total_energy_nj, k.uniform_energy_nj);
}

TEST(Runner, EccReportAggregatesThePerLayerScrubCounters) {
  const auto& r = golden_result(5);
  bool any_scrub = false;
  for (const auto& v : r.report.per_voltage) {
    ASSERT_EQ(v.layers.size(), 1u);  // flat smoke net
    std::uint64_t cw = 0, corr = 0, det = 0;
    for (const auto& ls : v.layers) {
      EXPECT_EQ(ls.ecc_scheme, "secded(72,64)");
      cw += ls.ecc_codewords;
      corr += ls.ecc_corrected;
      det += ls.ecc_detected;
    }
    EXPECT_EQ(cw, v.ecc_codewords);
    EXPECT_EQ(corr, v.ecc_corrected);
    EXPECT_EQ(det, v.ecc_detected);
    any_scrub = any_scrub || cw > 0;
  }
  // At the lowest voltages the module BER is high enough that the scrub
  // must actually have decoded dirty codewords.
  EXPECT_TRUE(any_scrub);
}

TEST(Runner, WallClockTimingsNeverReachJsonOrDigest) {
  // run_pipeline records host-dependent phase timings; they must stay out
  // of both machine-diffable serializations or every golden would flake.
  const auto& r = golden_result(0);
  EXPECT_GT(r.report.timings.total_ns, 0.0);
  EXPECT_EQ(to_json({r}).find("timing"), std::string::npos);
  EXPECT_EQ(digest(r).find("timing"), std::string::npos);
}

TEST(Runner, RejectsInvalidScenario) {
  Scenario bad = *find_scenario("smoke-digits-m0");
  bad.voltages.clear();
  EXPECT_THROW((void)run_scenarios({bad}), ContractViolation);
}

class GoldenReport : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenReport, DigestMatchesCheckedInGolden) {
  const auto& result = golden_result(GetParam());
  const auto fresh = digest(result);
  const auto path = golden_path(result.scenario.name);

  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << fresh;
    std::printf("[golden] updated %s\n", path.c_str());
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run scenario_test --update-golden and commit it";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), fresh)
      << "golden digest drift for " << result.scenario.name
      << ".\nIf this change is intentional, regenerate with\n"
         "  ./build/scenario_test --update-golden\nand commit the diff.";
}

INSTANTIATE_TEST_SUITE_P(AllGoldenScenarios, GoldenReport,
                         ::testing::Range<std::size_t>(0u, kGoldenCount));

}  // namespace
}  // namespace sparkxd::scenario

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--update-golden")
      sparkxd::scenario::g_update_golden = true;
  if (std::getenv("SPARKXD_UPDATE_GOLDEN") != nullptr)
    sparkxd::scenario::g_update_golden = true;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
