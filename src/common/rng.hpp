#pragma once
// Deterministic pseudo-random number generation for the whole framework.
//
// Everything in SparkXD that is stochastic (dataset synthesis, Poisson spike
// coding, weak-cell placement, error injection, weight init) draws from this
// generator so that every experiment is reproducible from a single 64-bit seed.
//
// The engine is xoshiro256** (Blackman & Vigna) seeded through splitmix64;
// it is fast, has 256-bit state, and — unlike std::mt19937 — its output for a
// given seed is fully specified here, independent of the standard library.

#include <array>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace sparkxd {

// The primitives below (and the core draws next_u64 / uniform / bernoulli)
// are defined inline in this header: the evaluation hot paths — Poisson
// spike encoding, Monte-Carlo fault injection, per-sample stream forking —
// make millions of draws per trial, and a cross-TU call per draw is
// measurable. The arithmetic is unchanged, so every stream stays
// bit-identical to the out-of-line definitions.

/// splitmix64 step; used for seeding and for cheap stateless hashes.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values (for deriving per-entity substream seeds).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  // Feed both words through splitmix64 so even adjacent ids decorrelate.
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** engine with convenience distributions.
///
/// Distribution helpers are member functions (not std:: distributions) so the
/// produced sequences are identical across standard libraries and platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  /// Derives an independent substream, e.g. `rng.fork(neuron_index)`.
  /// Forking does not advance this generator's state.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

  /// Raw 64 uniform random bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    SPARKXD_REQUIRE(p >= 0.0 && p <= 1.0,
                    "bernoulli probability out of [0,1]");
    return uniform() < p;
  }

  /// Standard normal via Box–Muller (no state caching; two draws per sample).
  double normal() noexcept;

  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Poisson-distributed count with given mean (lambda >= 0).
  /// Uses Knuth's method for small lambda and normal approximation above 64.
  std::uint64_t poisson(double lambda);

  /// Exponential with given rate (rate > 0).
  double exponential(double rate);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sparkxd
