# Empty dependencies file for fig11_accuracy_resilience.
# This may be replaced when dependencies are built.
