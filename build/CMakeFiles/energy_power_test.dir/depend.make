# Empty dependencies file for energy_power_test.
# This may be replaced when dependencies are built.
