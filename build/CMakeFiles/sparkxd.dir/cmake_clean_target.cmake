file(REMOVE_RECURSE
  "libsparkxd.a"
)
