// ECC-axis ablation: the full pipeline swept across the registered ECC
// schemes on one workload cell.
//
// Where bench/ablation_ecc compares bare SECDED scrubbing against SparkXD
// outside the pipeline, this bench drives the integrated third axis: one
// ScenarioMatrix cell per scheme (off / parity / secded / hsiao / bch /
// bch-512B), each lowered through placement escalation, the frozen-injection
// scrub, and the decode-latency-aware energy model. One row per scheme shows
// what the code buys (accuracy at the lowest voltage, corrected/detected
// codewords) and what it costs (storage overhead, decode energy, energy
// saving and speedup after the redundancy traffic).
//
// With --json <path> it writes a sparkxd-bench-v1 report (one phase per
// scheme, wall clock + the scalar metrics above) for the CI perf-smoke
// artifacts.

#include <chrono>

#include "bench_common.hpp"
#include "error/ecc_scheme.hpp"
#include "scenario/matrix.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  using namespace sparkxd;
  bench::banner("ECC-axis ablation",
                "stronger codes trade storage and decode effort for "
                "post-correction BER — the third approximation axis beside "
                "voltage and refresh");
  const char* json_path = bench::json_out_path(argc, argv);

  scenario::ScenarioMatrix m;
  m.sizes = {{"tiny", 25, scaled(100, 50), scaled(50, 25), 1}};
  m.geometries = {{"commodity", dram::Geometry::lpddr3_4gb(), false}};
  m.error_models = {{"m0", {}}};
  m.ecc_schemes = {
      {"ecc-off", {}},
      {"ecc-parity", {error::EccKind::kParity, 64, 0}},
      {"ecc-secded", {error::EccKind::kSecded, 64, 0}},
      {"ecc-hsiao", {error::EccKind::kHsiao, 64, 0}},
      {"ecc-bch", {error::EccKind::kBch, 64, 0}},
      {"ecc-bch512b", {error::EccKind::kBch, 4096, 0}},
  };
  m.voltage_grids = {{"v3", {1.250, 1.100, 1.025}}};
  m.seeds = {experiment_seed()};

  const auto scenarios = m.expand();
  bench::BenchReport report("ecc_ablation");
  Table t("ecc_ablation",
          {"scheme", "assigned@1.025V", "overhead", "acc@1.025V", "corrected",
           "detected", "ecc energy [nJ]", "saving@1.025V", "speedup"});
  for (const auto& s : scenarios) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = scenario::run_scenarios({s});
    const double dt_ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const auto& r = results.front().report;
    const auto& low = r.per_voltage.back();
    double overhead = 0.0, ecc_nj = 0.0;
    std::string assigned = "-";
    bool escalated = false;
    for (const auto& ls : low.layers) {
      overhead = ls.ecc_overhead;
      ecc_nj += ls.ecc_energy_nj;
      if (!ls.ecc_scheme.empty()) assigned = ls.ecc_scheme;
      escalated = escalated || ls.ecc_escalated;
    }
    if (escalated) assigned += " (escalated)";
    t.add_row({error::ecc_label(s.ecc), assigned,
               Table::pct(100.0 * overhead, 1),
               Table::num(low.accuracy, 3),
               Table::num(static_cast<double>(low.ecc_corrected), 0),
               Table::num(static_cast<double>(low.ecc_detected), 0),
               Table::num(ecc_nj, 1), Table::pct(low.saving_pct),
               Table::num(low.speedup, 3)});
    auto& phase = report.add_phase(error::ecc_label(s.ecc), 1, dt_ns);
    phase.metrics.emplace_back("storage_overhead", overhead);
    phase.metrics.emplace_back("accuracy_low_v", low.accuracy);
    phase.metrics.emplace_back("energy_nj", low.energy_nj);
    phase.metrics.emplace_back("ecc_energy_nj", ecc_nj);
    phase.metrics.emplace_back("ecc_corrected",
                               static_cast<double>(low.ecc_corrected));
    phase.metrics.emplace_back("ecc_detected",
                               static_cast<double>(low.ecc_detected));
    phase.metrics.emplace_back("saving_pct", low.saving_pct);
    phase.metrics.emplace_back("speedup", low.speedup);
  }
  t.emit();
  if (json_path != nullptr && !report.write(json_path)) return 1;
  return 0;
}
