# Empty dependencies file for ablation_salp.
# This may be replaced when dependencies are built.
