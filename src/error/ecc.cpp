#include "error/ecc.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "common/contracts.hpp"

namespace sparkxd::error {

namespace {

// Hamming(71,64) + overall parity = SECDED(72,64).
//
// Codeword positions are numbered 1..71; positions that are powers of two
// (1,2,4,8,16,32,64) carry the 7 Hamming parity bits; the remaining 64
// positions carry data bits in ascending order. The 8th check bit is the
// overall parity of all 71 positions (data + Hamming bits).

/// data_position[i] = codeword position (1..71) of data bit i.
constexpr std::array<std::uint8_t, 64> make_data_positions() {
  std::array<std::uint8_t, 64> map{};
  std::size_t i = 0;
  for (std::uint8_t pos = 1; pos <= 71 && i < 64; ++pos) {
    if ((pos & (pos - 1)) == 0) continue;  // parity position
    map[i++] = pos;
  }
  return map;
}

constexpr auto kDataPos = make_data_positions();

/// position_to_data[pos] = data bit index + 1, or 0 if a parity position.
constexpr std::array<std::uint8_t, 72> make_position_map() {
  std::array<std::uint8_t, 72> map{};
  for (std::size_t i = 0; i < kDataPos.size(); ++i)
    map[kDataPos[i]] = static_cast<std::uint8_t>(i + 1);
  return map;
}

constexpr auto kPosToData = make_position_map();

/// The 7 Hamming parity bits of a data word (bit k of the result is the
/// parity over codeword positions with bit k set, counting data bits only —
/// parity positions contribute their own value, which is defined to make
/// each group's total parity even).
std::uint8_t hamming_bits(std::uint64_t data) {
  std::uint8_t parity = 0;
  for (unsigned k = 0; k < 7; ++k) {
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < 64; ++i)
      if (kDataPos[i] & (1u << k)) acc ^= (data >> i) & 1u;
    parity |= static_cast<std::uint8_t>(acc << k);
  }
  return parity;
}

}  // namespace

std::uint8_t secded_encode(std::uint64_t data) {
  const std::uint8_t h = hamming_bits(data);
  // Overall parity across data bits and the 7 Hamming bits.
  const unsigned overall =
      (std::popcount(data) + std::popcount(static_cast<unsigned>(h))) & 1u;
  return static_cast<std::uint8_t>(h | (overall << 7));
}

SecdedStatus secded_decode(std::uint64_t& data, std::uint8_t check) {
  // Syndrome: recomputed Hamming bits vs the *stored* ones — for a single
  // flipped data bit this equals that bit's codeword position; for a single
  // flipped Hamming bit it equals that (power-of-two) position.
  const auto stored_h = static_cast<std::uint8_t>(check & 0x7F);
  const std::uint8_t syndrome = hamming_bits(data) ^ stored_h;
  // Overall parity of the received 72-bit codeword (data + stored Hamming
  // bits + stored overall bit); 1 for any odd number of flipped bits.
  const unsigned overall =
      (std::popcount(data) + std::popcount(static_cast<unsigned>(stored_h)) +
       ((check >> 7) & 1u)) &
      1u;

  if (syndrome == 0 && overall == 0) return SecdedStatus::kClean;
  if (overall == 0) {
    // Even number of flipped bits with a non-zero syndrome: double error.
    return SecdedStatus::kUncorrectable;
  }
  // Odd number of errors: assume single. If the syndrome names a data
  // position, flip that data bit back; otherwise the error was in the
  // check byte itself (Hamming or overall bit) and the data is fine.
  if (syndrome != 0 && syndrome < 72 && kPosToData[syndrome] != 0) {
    const unsigned data_bit = kPosToData[syndrome] - 1u;
    data ^= (std::uint64_t{1} << data_bit);
  }
  return SecdedStatus::kCorrected;
}

std::vector<std::uint8_t> ecc_encode_weights(
    const std::vector<float>& weights) {
  SPARKXD_REQUIRE(weights.size() % 2 == 0,
                  "SECDED protects 64-bit words: need an even weight count");
  std::vector<std::uint8_t> checks(weights.size() / 2);
  for (std::size_t w = 0; w < checks.size(); ++w) {
    std::uint64_t word;
    std::memcpy(&word, weights.data() + 2 * w, sizeof(word));
    checks[w] = secded_encode(word);
  }
  return checks;
}

ScrubStats ecc_scrub_weights(std::vector<float>& weights,
                             const std::vector<std::uint8_t>& checks) {
  SPARKXD_REQUIRE(weights.size() == checks.size() * 2,
                  "check-byte count must match the weight buffer");
  ScrubStats stats;
  stats.words = checks.size();
  for (std::size_t w = 0; w < checks.size(); ++w) {
    std::uint64_t word;
    std::memcpy(&word, weights.data() + 2 * w, sizeof(word));
    switch (secded_decode(word, checks[w])) {
      case SecdedStatus::kClean:
        break;
      case SecdedStatus::kCorrected:
        ++stats.corrected;
        std::memcpy(weights.data() + 2 * w, &word, sizeof(word));
        break;
      case SecdedStatus::kUncorrectable:
        ++stats.uncorrectable;
        break;
    }
  }
  return stats;
}

}  // namespace sparkxd::error
