// sparkxd_replay — deterministic load generator for sparkxd_serve.
//
// Builds a procedural image pool, replays N classify requests over C
// pipelined connections, and reports throughput + latency percentiles plus
// the server's own counters. The id-sorted reply digest is a pure function
// of (artifact, task, samples, seed, requests) — independent of
// connections, windowing, server workers, batching, AND of any injected
// network faults (--chaos): the retry policy re-sends until every request
// is answered exactly once, so CI pins the digest as a golden value to
// prove a deployment answers byte-for-byte even under chaos.
//
//   sparkxd_replay --port N [--host IP] [--requests N] [--connections N]
//                  [--window N] [--task digits|fashion] [--samples N]
//                  [--seed N] [--crc] [--chaos SPEC] [--chaos-seed N]
//                  [--json FILE] [--digest] [--allow-partial]
//
// --port-file FILE reads the port sparkxd_serve wrote (see its --port-file);
// a missing or still-empty file is retried for a few seconds, so starting
// the two processes concurrently does not race.
// --chaos injects deterministic faults into this client's own sends —
// torn/dripped/stalled/RST/bit-corrupted frames (grammar in
// src/serve/chaos.hpp); corrupt requires --crc.
// --digest prints "serve_digest=<hex16> replies=<n>" on stdout (the golden
// line); everything human-oriented goes to stderr.
// --json writes a "sparkxd-bench-v1" report (same schema as bench/).
//
// Exit codes: 0 success, 1 runtime failure, 2 bad usage.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <thread>

#include "common/env.hpp"
#include "common/json.hpp"
#include "common/stats.hpp"
#include "data/dataset.hpp"
#include "serve/client.hpp"

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: sparkxd_replay --port N | --port-file FILE  [options]\n"
      "  --host IP          server address (default 127.0.0.1)\n"
      "  --port N           server port\n"
      "  --port-file FILE   read the port from FILE (sparkxd_serve "
      "--port-file);\n"
      "                     retried for up to 10s while missing or empty\n"
      "  --requests N       classify requests to send (default 1000)\n"
      "  --connections N    parallel connections (default 1)\n"
      "  --window N         max in-flight requests per connection "
      "(default 64)\n"
      "  --task NAME        image pool task: digits or fashion (default "
      "digits)\n"
      "  --samples N        image pool size (default 64)\n"
      "  --seed N           determinism root for pool + request seeds "
      "(default 7)\n"
      "  --crc              negotiate protocol v2 (CRC32-framed) per "
      "connection\n"
      "  --chaos SPEC       inject faults into this client's sends; SPEC is\n"
      "                     none | all[:P] | mode[:P](,mode[:P])* with mode\n"
      "                     in torn|drip|stall|rst|corrupt (corrupt needs "
      "--crc)\n"
      "  --chaos-seed N     chaos schedule seed (default 0); same spec+seed\n"
      "                     replays the same fault schedule bit for bit\n"
      "  --json FILE        write a sparkxd-bench-v1 JSON report to FILE\n"
      "  --digest           print the golden digest line on stdout\n"
      "  --allow-partial    report partial results when a connection slot\n"
      "                     exhausts its retry budget instead of failing;\n"
      "                     a replay that served NOTHING still exits 1\n"
      "  --help             this message\n");
}

long long parse_count(const char* what, const char* spec, long long lo,
                      long long hi) {
  char* end = nullptr;
  const long long v = std::strtoll(spec, &end, 10);
  if (end == spec || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr,
                 "sparkxd_replay: %s wants an integer in [%lld, %lld]\n",
                 what, lo, hi);
    std::exit(2);
  }
  return v;
}

/// Reads the port from `path`, retrying while the file is missing or not
/// yet (atomically) renamed into place. sparkxd_serve writes the file only
/// after listen(), so a successfully read port is immediately connectable.
long long read_port_file(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  const auto give_up = Clock::now() + std::chrono::seconds(10);
  for (;;) {
    {
      std::ifstream pf(path);
      long long from_file = 0;
      if (pf >> from_file && from_file >= 1 && from_file <= 65535)
        return from_file;
    }
    if (Clock::now() >= give_up) {
      std::fprintf(stderr, "sparkxd_replay: cannot read a port from '%s'\n",
                   path.c_str());
      std::exit(2);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparkxd;

  std::string host = "127.0.0.1", port_file, json_path;
  long long port = -1;
  serve::ClientOptions options;
  data::Task task = data::Task::kDigits;
  std::size_t samples = 64;
  bool want_digest = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sparkxd_replay: %s needs an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      port = parse_count("--port", next("--port"), 1, 65535);
    } else if (arg == "--port-file") {
      port_file = next("--port-file");
    } else if (arg == "--requests") {
      options.requests = static_cast<std::size_t>(
          parse_count("--requests", next("--requests"), 1, 1ll << 32));
    } else if (arg == "--connections") {
      options.connections = static_cast<std::size_t>(
          parse_count("--connections", next("--connections"), 1, 4096));
    } else if (arg == "--window") {
      options.window = static_cast<std::size_t>(
          parse_count("--window", next("--window"), 1, 1 << 20));
    } else if (arg == "--task") {
      const std::string spec = next("--task");
      if (spec == "digits") {
        task = data::Task::kDigits;
      } else if (spec == "fashion") {
        task = data::Task::kFashion;
      } else {
        std::fprintf(stderr,
                     "sparkxd_replay: --task wants digits or fashion "
                     "(got '%s')\n",
                     spec.c_str());
        return 2;
      }
    } else if (arg == "--samples") {
      samples = static_cast<std::size_t>(
          parse_count("--samples", next("--samples"), 1, 1 << 20));
    } else if (arg == "--seed") {
      options.base_seed = static_cast<std::uint64_t>(
          parse_count("--seed", next("--seed"), 0, 1ll << 62));
    } else if (arg == "--crc") {
      options.crc = true;
    } else if (arg == "--chaos") {
      try {
        options.chaos = serve::ChaosSpec::parse(next("--chaos"));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "sparkxd_replay: --chaos: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--chaos-seed") {
      options.chaos_seed = static_cast<std::uint64_t>(
          parse_count("--chaos-seed", next("--chaos-seed"), 0, 1ll << 62));
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--digest") {
      want_digest = true;
    } else if (arg == "--allow-partial") {
      options.allow_partial = true;
    } else {
      std::fprintf(stderr, "sparkxd_replay: unknown option '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }
  if (options.chaos.corrupt > 0.0 && !options.crc) {
    std::fprintf(stderr,
                 "sparkxd_replay: --chaos corrupt requires --crc (without "
                 "the check the server would decode corrupted frames)\n");
    return 2;
  }
  if (!port_file.empty()) port = read_port_file(port_file);
  if (port < 0) {
    std::fprintf(stderr, "sparkxd_replay: --port or --port-file is required\n");
    print_usage(stderr);
    return 2;
  }

  try {
    // The pool and the per-request seeds both derive from --seed, so the
    // whole request stream — and therefore the reply digest — is pinned by
    // the flag values alone.
    const auto pool = data::make_dataset(task, samples, options.base_seed);
    std::fprintf(stderr,
                 "sparkxd_replay: %zu requests over %zu connection(s) "
                 "(window %zu, pool %s/%zu, seed %" PRIu64 ", crc %s, "
                 "chaos %s seed %" PRIu64 ")\n",
                 options.requests, options.connections, options.window,
                 data::to_string(task), pool.size(), options.base_seed,
                 options.crc ? "on" : "off",
                 options.chaos.to_string().c_str(), options.chaos_seed);

    auto stats = serve::replay(host, static_cast<std::uint16_t>(port), pool,
                               options);
    if (stats.replies == 0) {
      // A replay that served nothing has no latency sample — reporting
      // p99=0 would read as "infinitely fast" in a CI trend. Fail loudly
      // (before fetch_stats: the server may well be the thing that died).
      std::fprintf(stderr,
                   "sparkxd_replay: zero replies served — no latency "
                   "sample to report\n");
      return 1;
    }
    const auto server_stats =
        serve::fetch_stats(host, static_cast<std::uint16_t>(port));

    const double wall_s = static_cast<double>(stats.wall_ns) / 1e9;
    const double rps =
        wall_s > 0.0 ? static_cast<double>(stats.replies) / wall_s : 0.0;
    const double p50 = percentile(stats.latency_us, 50.0);
    const double p95 = percentile(stats.latency_us, 95.0);
    const double p99 = percentile(stats.latency_us, 99.0);
    std::fprintf(stderr,
                 "sparkxd_replay: %" PRIu64 " replies in %.3fs — %.0f req/s, "
                 "latency p50=%.0fus p95=%.0fus p99=%.0fus, "
                 "retries=%" PRIu64 " reconnects=%" PRIu64 " dup=%" PRIu64
                 "; server "
                 "served=%" PRIu64 " batches=%" PRIu64 " max_queue=%" PRIu64
                 "\n",
                 stats.replies, wall_s, rps, p50, p95, p99, stats.retries,
                 stats.reconnects, stats.duplicates, server_stats.served,
                 server_stats.batches, server_stats.max_queue_depth);
    if (options.chaos.any())
      std::fprintf(stderr,
                   "sparkxd_replay: chaos fired %" PRIu64
                   " (torn=%" PRIu64 " drip=%" PRIu64 " stall=%" PRIu64
                   " rst=%" PRIu64 " corrupt=%" PRIu64 "); server "
                   "bad_frames=%" PRIu64 " evicted_slow=%" PRIu64
                   " deadline_exceeded=%" PRIu64 " generation=%" PRIu64 "\n",
                   stats.chaos.total(), stats.chaos.torn, stats.chaos.drip,
                   stats.chaos.stall, stats.chaos.rst, stats.chaos.corrupt,
                   server_stats.bad_frames, server_stats.evicted_slow,
                   server_stats.deadline_exceeded, server_stats.generation);

    if (!json_path.empty()) {
      // Same layout as bench_common's BenchReport (schema
      // "sparkxd-bench-v1") so the CI trend tooling reads one format.
      json::Writer w;
      w.begin_object();
      w.field("schema", "sparkxd-bench-v1");
      w.field("bench", "serve_replay");
      w.field("scale", workload_scale());
      w.field("seed", options.base_seed);
      w.field("threads", static_cast<std::uint64_t>(options.connections));
      w.key("phases").begin_array();
      w.begin_object();
      w.field("name", "replay");
      w.field("reps", static_cast<std::uint64_t>(stats.replies));
      w.field("total_ns", static_cast<double>(stats.wall_ns));
      w.field("ns_per_rep",
              static_cast<double>(stats.wall_ns) /
                  static_cast<double>(stats.replies ? stats.replies : 1));
      w.key("metrics").begin_object();
      w.field("rps", rps);
      w.field("p50_us", p50);
      w.field("p95_us", p95);
      w.field("p99_us", p99);
      w.field("retries", static_cast<double>(stats.retries));
      w.field("reconnects", static_cast<double>(stats.reconnects));
      w.field("duplicates", static_cast<double>(stats.duplicates));
      w.field("chaos_faults", static_cast<double>(stats.chaos.total()));
      w.field("served", static_cast<double>(server_stats.served));
      w.field("batches", static_cast<double>(server_stats.batches));
      w.field("max_queue_depth",
              static_cast<double>(server_stats.max_queue_depth));
      w.field("generation", static_cast<double>(server_stats.generation));
      w.field("bad_frames", static_cast<double>(server_stats.bad_frames));
      w.field("evicted_slow", static_cast<double>(server_stats.evicted_slow));
      w.field("deadline_exceeded",
              static_cast<double>(server_stats.deadline_exceeded));
      w.field("rejected_conns",
              static_cast<double>(server_stats.rejected_conns));
      w.field("wedged_events",
              static_cast<double>(server_stats.wedged_events));
      for (std::size_t b = 0; b < server_stats.batch_hist.size(); ++b)
        if (server_stats.batch_hist[b] != 0)
          w.field("batch_" + std::to_string(b + 1),
                  static_cast<double>(server_stats.batch_hist[b]));
      w.end_object();
      w.end_object();
      w.end_array();
      w.end_object();
      std::ofstream out(json_path, std::ios::binary);
      if (out) out << w.str() << "\n";
      if (!out) {
        std::fprintf(stderr, "sparkxd_replay: cannot write '%s'\n",
                     json_path.c_str());
        return 1;
      }
    }

    if (want_digest)
      std::printf("serve_digest=%016" PRIx64 " replies=%" PRIu64 "\n",
                  stats.digest, stats.replies);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sparkxd_replay: %s\n", e.what());
    return 1;
  }
}
