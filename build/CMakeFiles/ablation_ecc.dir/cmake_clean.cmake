file(REMOVE_RECURSE
  "CMakeFiles/ablation_ecc.dir/bench/ablation_ecc.cpp.o"
  "CMakeFiles/ablation_ecc.dir/bench/ablation_ecc.cpp.o.d"
  "ablation_ecc"
  "ablation_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
