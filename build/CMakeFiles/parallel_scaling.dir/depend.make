# Empty dependencies file for parallel_scaling.
# This may be replaced when dependencies are built.
