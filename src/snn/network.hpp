#pragma once
// The fully-connected unsupervised SNN of the paper's Fig. 4a: rate-coded
// Poisson input -> excitatory LIF layer with lateral inhibition, trained
// with STDP. Synaptic weights are stored as FP32 row-major [neuron][input] —
// the exact array the approximate-DRAM error injector corrupts.
//
// Inference additionally maintains a TRANSPOSED copy of the weights
// ([input][neuron]): the per-timestep synaptic gather then runs
// spike-outer / neuron-inner over contiguous memory, which vectorizes and
// breaks the per-neuron serial addition chain of the row-major walk. The
// per-neuron addition *sequence* is unchanged (same spikes, same order), so
// inference results are bitwise identical to the row-major kernel — the
// golden digests lock this down. Training keeps reading the row-major array
// directly (STDP updates rows mid-sample), so the transpose is resynced
// lazily before the next inference.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "snn/encoding.hpp"
#include "snn/lif.hpp"
#include "snn/params.hpp"
#include "snn/stdp.hpp"

namespace sparkxd::snn {

class Network;

/// Per-worker mutable inference state over a shared const Network: the LIF
/// dynamics (a copy of the layer: potentials, refractory counters and the
/// frozen adaptive thresholds), the Poisson encoder, and the scratch
/// buffers — but NOT the weights, which are read from the network's
/// transposed layout. Constructing one is O(n_neurons); a full Network copy
/// is O(n_neurons * n_inputs). This is what lets evaluation workers fan out
/// (and Monte-Carlo trials repeat) without copying the weight matrix.
class InferenceState {
 public:
  explicit InferenceState(const Network& net);

 private:
  friend class Network;
  LifLayer lif_;
  PoissonEncoder encoder_;
  std::vector<float> current_;
  std::vector<std::uint32_t> in_spikes_;
  std::vector<std::uint32_t> out_spikes_;
};

/// A complete network instance (weights + neuron state + encoder).
class Network {
 public:
  explicit Network(const NetworkConfig& cfg);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return cfg_; }

  /// The synaptic weight matrix, row-major [n_neurons][n_inputs]. Mutable
  /// access exists so the error injector can corrupt the stored bits and the
  /// fault-aware trainer can restore snapshots; it invalidates the
  /// transposed inference copy, which is rebuilt before the next inference.
  [[nodiscard]] const std::vector<float>& weights() const noexcept {
    return w_;
  }
  [[nodiscard]] std::vector<float>& weights_mut() noexcept {
    wt_synced_ = false;
    return w_;
  }

  /// Hot-path mutable access for DELTA fault injection: unlike
  /// weights_mut() this does NOT invalidate the transposed copy. The caller
  /// must mirror every word it changes via mirror_weight() before the next
  /// inference — error::WeightFlip logs carry exactly those words. Requires
  /// a synced transpose (sync_transpose() first), so the invariant "both
  /// layouts agree except at the words the caller is about to mirror" holds.
  [[nodiscard]] std::vector<float>& weights_delta() {
    SPARKXD_REQUIRE(wt_synced_,
                    "weights_delta needs a synced transpose — call "
                    "sync_transpose() first (or use weights_mut())");
    return w_;
  }

  /// Copies the current value of flat weight `idx` into the transposed
  /// layout (companion of weights_delta()).
  void mirror_weight(std::size_t idx) noexcept {
    const std::size_t n = idx / cfg_.n_inputs;
    const std::size_t i = idx % cfg_.n_inputs;
    wt_[i * cfg_.n_neurons + n] = w_[idx];
  }

  /// Rebuilds the transposed weight copy from the row-major array if any
  /// weights_mut()/normalize/training mutation happened since the last sync.
  void sync_transpose();
  [[nodiscard]] bool transpose_synced() const noexcept { return wt_synced_; }

  /// The transposed weights [n_inputs][n_neurons]; requires a synced
  /// transpose. Read-only — the row-major array stays canonical.
  [[nodiscard]] const std::vector<float>& weights_T() const {
    SPARKXD_REQUIRE(wt_synced_, "transposed weights are stale — call "
                                "sync_transpose() first");
    return wt_;
  }

  /// Adaptive thresholds (exposed for snapshot/restore alongside weights).
  [[nodiscard]] const std::vector<float>& thetas() const noexcept {
    return lif_.thetas();
  }
  [[nodiscard]] std::vector<float>& thetas_mut() noexcept {
    return lif_.thetas_mut();
  }

  /// Presents one image for config().timesteps steps and returns per-neuron
  /// spike counts. With learn=true, STDP and threshold adaptation are active
  /// and the weight rows are re-normalized afterwards; with learn=false the
  /// network is a pure inference engine (weights and thetas untouched).
  /// `rng` drives the Poisson spike trains.
  std::vector<std::uint32_t> process(const std::vector<float>& image,
                                     bool learn, Rng& rng);

  /// Pure inference through a caller-owned InferenceState: identical spike
  /// counts and Rng consumption as process(image, /*learn=*/false, rng), but
  /// const on the network and reusing the state's buffers — the per-trial /
  /// per-worker hot path. Requires a synced transpose.
  std::vector<std::uint32_t> infer(InferenceState& state,
                                   const std::vector<float>& image,
                                   Rng& rng) const;

  /// Rescales every neuron's incoming weights to sum to norm_target
  /// (no-op for all-zero rows).
  void normalize_rows();

  /// Resets membrane dynamics (called automatically between samples).
  void reset_dynamics();

 private:
  friend class InferenceState;

  NetworkConfig cfg_;
  std::vector<float> w_;    ///< canonical row-major [neuron][input]
  std::vector<float> wt_;   ///< transposed [input][neuron], inference kernel
  bool wt_synced_ = false;
  LifLayer lif_;
  PreTraces traces_;
  PoissonEncoder encoder_;
  // Reused scratch buffers.
  std::vector<float> current_;
  std::vector<std::uint32_t> in_spikes_;
  std::vector<std::uint32_t> out_spikes_;
};

}  // namespace sparkxd::snn
