# Empty dependencies file for snn_lif_test.
# This may be replaced when dependencies are built.
