# Empty dependencies file for dram_geometry_test.
# This may be replaced when dependencies are built.
