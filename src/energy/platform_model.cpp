#include "energy/platform_model.hpp"

#include "common/contracts.hpp"

namespace sparkxd::energy {

std::vector<PlatformCoefficients> fig1b_platforms() {
  // Coefficients (pJ/event) chosen so that, for the canonical fully-
  // connected inference workload, the memory share lands where the paper's
  // Fig. 1b (after Krithivasan et al. [5]) places each platform.
  return {
      // TrueNorth: local banked SRAM -> relatively cheap memory, costly
      // spike routing across the core mesh (memory ~50%).
      {"TrueNorth", 0.30, 80.0, 0.83},
      // SNNAP: accelerator with DRAM-backed weights (memory ~60%).
      {"SNNAP", 0.30, 40.0, 1.00},
      // PEASE: event-driven engine streaming weights (memory ~75%).
      {"PEASE", 0.20, 20.0, 1.25},
  };
}

EnergyShares breakdown(const PlatformCoefficients& platform,
                       const SnnWorkload& workload) {
  const double comp = platform.pj_per_synop * workload.synaptic_ops;
  const double comm = platform.pj_per_spike * workload.spikes;
  const double mem = platform.pj_per_byte * workload.memory_bytes;
  const double total = comp + comm + mem;
  SPARKXD_REQUIRE(total > 0.0, "workload produces no energy");
  return {comp / total, comm / total, mem / total};
}

SnnWorkload snn_inference_workload(std::size_t n_inputs,
                                   std::size_t n_neurons,
                                   std::size_t timesteps, double spike_rate) {
  SPARKXD_REQUIRE(spike_rate >= 0.0 && spike_rate <= 1.0,
                  "spike rate is a fraction of inputs per step");
  SnnWorkload w;
  const auto steps = static_cast<double>(timesteps);
  const auto ni = static_cast<double>(n_inputs);
  const auto nn = static_cast<double>(n_neurons);
  // Each input spike drives one weight-accumulate per neuron.
  w.spikes = ni * spike_rate * steps;
  w.synaptic_ops = w.spikes * nn;
  // Weights are streamed once per inference (4 B each) plus neuron state
  // (potential + threshold, 8 B) read and written every step.
  w.memory_bytes = ni * nn * 4.0 + nn * 8.0 * 2.0 * steps;
  return w;
}

}  // namespace sparkxd::energy
