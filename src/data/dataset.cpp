#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "data/canvas.hpp"

namespace sparkxd::data {

namespace {

constexpr std::size_t kSide = 28;

/// Per-sample geometric jitter parameters.
struct Jitter {
  double rot;        // radians
  double scale;      // isotropic
  double dx, dy;     // pixels
  double thickness;  // stroke thickness in pixels
};

Jitter draw_jitter(Rng& rng, double max_rot, double max_shift) {
  Jitter j{};
  j.rot = rng.uniform(-max_rot, max_rot);
  j.scale = rng.uniform(0.85, 1.12);
  j.dx = rng.uniform(-max_shift, max_shift);
  j.dy = rng.uniform(-max_shift, max_shift);
  j.thickness = rng.uniform(1.6, 2.6);
  return j;
}

/// Renders one digit glyph (classes 0-9) with the given stroke thickness.
/// Glyphs are authored as short stroke/ellipse programs in normalized
/// coordinates; they are deliberately simple — intra-class variation comes
/// from the affine jitter and noise, mirroring handwritten variation.
void render_digit(Canvas& c, int cls, double t) {
  switch (cls) {
    case 0:
      c.ellipse(0.50, 0.50, 0.17, 0.26, t);
      break;
    case 1:
      c.stroke(0.55, 0.22, 0.55, 0.78, t);
      c.stroke(0.44, 0.34, 0.55, 0.22, t);
      break;
    case 2:
      c.stroke(0.33, 0.33, 0.42, 0.24, t);
      c.stroke(0.42, 0.24, 0.60, 0.24, t);
      c.stroke(0.60, 0.24, 0.67, 0.35, t);
      c.stroke(0.67, 0.35, 0.34, 0.76, t);
      c.stroke(0.34, 0.76, 0.68, 0.76, t);
      break;
    case 3:
      c.stroke(0.34, 0.25, 0.64, 0.25, t);
      c.stroke(0.64, 0.25, 0.48, 0.48, t);
      c.stroke(0.48, 0.48, 0.66, 0.58, t);
      c.stroke(0.66, 0.58, 0.60, 0.74, t);
      c.stroke(0.60, 0.74, 0.36, 0.76, t);
      break;
    case 4:
      c.stroke(0.58, 0.22, 0.34, 0.58, t);
      c.stroke(0.34, 0.58, 0.70, 0.58, t);
      c.stroke(0.58, 0.22, 0.58, 0.78, t);
      break;
    case 5:
      c.stroke(0.66, 0.23, 0.37, 0.23, t);
      c.stroke(0.37, 0.23, 0.37, 0.48, t);
      c.stroke(0.37, 0.48, 0.58, 0.46, t);
      c.stroke(0.58, 0.46, 0.67, 0.60, t);
      c.stroke(0.67, 0.60, 0.56, 0.76, t);
      c.stroke(0.56, 0.76, 0.35, 0.73, t);
      break;
    case 6:
      c.stroke(0.60, 0.22, 0.42, 0.48, t);
      c.ellipse(0.49, 0.62, 0.15, 0.15, t);
      break;
    case 7:
      c.stroke(0.33, 0.24, 0.68, 0.24, t);
      c.stroke(0.68, 0.24, 0.45, 0.78, t);
      break;
    case 8:
      c.ellipse(0.50, 0.36, 0.13, 0.13, t);
      c.ellipse(0.50, 0.64, 0.16, 0.15, t);
      break;
    case 9:
      c.ellipse(0.50, 0.38, 0.15, 0.15, t);
      c.stroke(0.64, 0.44, 0.55, 0.78, t);
      break;
    default:
      SPARKXD_REQUIRE(false, "digit class out of range");
  }
}

/// Renders one garment silhouette (Fashion-MNIST stand-in classes):
/// 0 t-shirt, 1 trouser, 2 pullover, 3 dress, 4 coat, 5 sandal, 6 shirt,
/// 7 sneaker, 8 bag, 9 ankle boot. The four torso classes (0/2/4/6) and the
/// three shoe classes (5/7/9) intentionally overlap, which makes this task
/// harder than digits — matching Fashion-MNIST's relative difficulty.
void render_fashion(Canvas& c, int cls, double t) {
  switch (cls) {
    case 0:  // t-shirt: torso + short sleeves
      c.fill_rect(0.37, 0.32, 0.63, 0.74);
      c.stroke(0.37, 0.34, 0.24, 0.44, t + 1.5);
      c.stroke(0.63, 0.34, 0.76, 0.44, t + 1.5);
      break;
    case 1:  // trouser: waistband + two legs
      c.fill_rect(0.38, 0.24, 0.62, 0.32);
      c.fill_rect(0.38, 0.32, 0.47, 0.80);
      c.fill_rect(0.53, 0.32, 0.62, 0.80);
      break;
    case 2:  // pullover: torso + long straight sleeves
      c.fill_rect(0.37, 0.30, 0.63, 0.76);
      c.stroke(0.37, 0.33, 0.26, 0.70, t + 1.6);
      c.stroke(0.63, 0.33, 0.74, 0.70, t + 1.6);
      break;
    case 3:  // dress: narrow bodice widening to a skirt
      c.fill_rect(0.42, 0.26, 0.58, 0.46);
      c.fill_rect(0.38, 0.46, 0.62, 0.62);
      c.fill_rect(0.33, 0.62, 0.67, 0.80);
      break;
    case 4:  // coat: long torso, long sleeves, front opening gap
      c.fill_rect(0.36, 0.28, 0.48, 0.80);
      c.fill_rect(0.52, 0.28, 0.64, 0.80);
      c.stroke(0.36, 0.31, 0.25, 0.72, t + 1.6);
      c.stroke(0.64, 0.31, 0.75, 0.72, t + 1.6);
      break;
    case 5:  // sandal: thin sole + diagonal straps
      c.stroke(0.22, 0.68, 0.78, 0.68, t + 1.0);
      c.stroke(0.30, 0.68, 0.44, 0.46, t - 0.4);
      c.stroke(0.44, 0.46, 0.58, 0.68, t - 0.4);
      c.stroke(0.58, 0.68, 0.70, 0.50, t - 0.4);
      break;
    case 6:  // shirt: torso + sleeves + collar marks
      c.fill_rect(0.38, 0.32, 0.62, 0.76);
      c.stroke(0.38, 0.34, 0.27, 0.56, t + 1.2);
      c.stroke(0.62, 0.34, 0.73, 0.56, t + 1.2);
      c.stroke(0.46, 0.30, 0.50, 0.38, t - 0.5);
      c.stroke(0.54, 0.30, 0.50, 0.38, t - 0.5);
      break;
    case 7:  // sneaker: low body + thick sole
      c.fill_ellipse(0.48, 0.58, 0.24, 0.10);
      c.fill_rect(0.22, 0.62, 0.78, 0.70);
      break;
    case 8:  // bag: body + handle arc
      c.fill_rect(0.30, 0.44, 0.70, 0.74);
      c.ellipse(0.50, 0.42, 0.13, 0.12, t);
      break;
    case 9:  // ankle boot: shaft + foot + sole
      c.fill_rect(0.40, 0.30, 0.56, 0.62);
      c.fill_rect(0.40, 0.54, 0.74, 0.70);
      c.fill_rect(0.38, 0.68, 0.76, 0.74);
      break;
    default:
      SPARKXD_REQUIRE(false, "fashion class out of range");
  }
}

std::vector<float> render_sample(Task task, int cls, Rng& rng) {
  Canvas c(kSide, kSide);
  // Garments tolerate less rotation than digit strokes before becoming
  // ambiguous with neighbours; keep their jitter slightly tighter.
  const Jitter j = task == Task::kDigits ? draw_jitter(rng, 0.16, 1.8)
                                         : draw_jitter(rng, 0.10, 1.6);
  if (task == Task::kDigits)
    render_digit(c, cls, j.thickness);
  else
    render_fashion(c, cls, j.thickness);
  c.affine(j.rot, j.scale, j.dx, j.dy);
  c.blur(1);

  auto img = c.take();
  // Pixel noise: mild Gaussian everywhere plus occasional salt specks, then
  // clamp — approximates sensor/antialias noise in the original datasets.
  const double sigma = task == Task::kDigits ? 0.05 : 0.08;
  for (float& p : img) {
    p += static_cast<float>(rng.normal(0.0, sigma));
    if (rng.bernoulli(0.002)) p += 0.8f;
    p = std::clamp(p, 0.0f, 1.0f);
  }
  return img;
}

}  // namespace

const char* to_string(Task t) noexcept {
  return t == Task::kDigits ? "SynthDigits" : "SynthFashion";
}

Dataset Dataset::take(std::size_t n) const {
  SPARKXD_REQUIRE(n <= size(), "take(n) beyond dataset size");
  Dataset out = *this;
  out.images.assign(images.begin(), images.begin() + static_cast<long>(n));
  out.labels.assign(labels.begin(), labels.begin() + static_cast<long>(n));
  return out;
}

Dataset Dataset::drop(std::size_t n) const {
  SPARKXD_REQUIRE(n <= size(), "drop(n) beyond dataset size");
  Dataset out = *this;
  out.images.assign(images.begin() + static_cast<long>(n), images.end());
  out.labels.assign(labels.begin() + static_cast<long>(n), labels.end());
  return out;
}

Dataset make_dataset(Task task, std::size_t n, std::uint64_t seed) {
  Dataset ds;
  ds.width = kSide;
  ds.height = kSide;
  ds.num_classes = 10;
  ds.name = to_string(task);
  ds.images.reserve(n);
  ds.labels.reserve(n);

  Rng rng(hash_combine(seed, static_cast<std::uint64_t>(task)));
  // Balanced labels in shuffled order so any prefix is roughly balanced.
  std::vector<std::uint8_t> labels(n);
  for (std::size_t i = 0; i < n; ++i)
    labels[i] = static_cast<std::uint8_t>(i % 10);
  rng.shuffle(labels);

  for (std::size_t i = 0; i < n; ++i) {
    Rng sample_rng = rng.fork(i);
    ds.images.push_back(render_sample(task, labels[i], sample_rng));
    ds.labels.push_back(labels[i]);
  }
  return ds;
}

std::vector<std::vector<float>> class_centroids(const Dataset& ds) {
  std::vector<std::vector<float>> centroids(
      ds.num_classes, std::vector<float>(ds.pixels(), 0.0f));
  std::vector<std::size_t> counts(ds.num_classes, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    auto& c = centroids[ds.labels[i]];
    for (std::size_t p = 0; p < ds.pixels(); ++p) c[p] += ds.images[i][p];
    ++counts[ds.labels[i]];
  }
  for (std::size_t k = 0; k < ds.num_classes; ++k)
    if (counts[k] > 0)
      for (float& v : centroids[k]) v /= static_cast<float>(counts[k]);
  return centroids;
}

}  // namespace sparkxd::data
