#pragma once
// The fully-connected unsupervised SNN of the paper's Fig. 4a — generalized
// from the single excitatory layer to a layer STACK: rate-coded Poisson
// input -> zero or more spiking LIF hidden layers -> the excitatory LIF
// output layer, every layer trained with STDP and laterally inhibited.
// Synaptic weights are stored per layer as FP32 row-major [neuron][input] —
// exactly the per-layer arrays the approximate-DRAM error injector corrupts
// and the error-aware mapping places independently (per-layer BER_th, the
// EnforceSNN/EDEN structure).
//
// Inference additionally maintains a TRANSPOSED copy of each layer's
// weights ([input][neuron]): the per-timestep synaptic gather then runs
// spike-outer / neuron-inner over contiguous memory, which vectorizes and
// breaks the per-neuron serial addition chain of the row-major walk. The
// per-neuron addition *sequence* is unchanged (same spikes, same order), so
// inference results are bitwise identical to the row-major kernel — the
// golden digests lock this down. Training keeps reading the row-major
// arrays directly (STDP updates rows mid-sample), so the transposes are
// resynced lazily before the next inference.
//
// Bit-exactness contract: a NetworkConfig with empty `hidden_neurons` is
// the legacy single-layer network — same weight-init stream (Rng(seed)),
// same per-timestep arithmetic, same Rng consumption — so every
// pre-layer-stack result stays byte-identical.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "snn/encoding.hpp"
#include "snn/lif.hpp"
#include "snn/params.hpp"
#include "snn/stdp.hpp"

namespace sparkxd::snn {

class Network;

/// Per-worker mutable inference state over a shared const Network: per
/// layer, the LIF dynamics (a copy of the layer: potentials, refractory
/// counters and the frozen adaptive thresholds) and the scratch buffers,
/// plus the Poisson encoder — but NOT the weights, which are read from the
/// network's transposed layouts. Constructing one is O(sum of layer
/// neurons); a full Network copy is O(total weights). This is what lets
/// evaluation workers fan out (and Monte-Carlo trials repeat) without
/// copying the weight matrices.
class InferenceState {
 public:
  explicit InferenceState(const Network& net);

  /// Recopies the LIF slices (potentials, refractory counters, thetas) from
  /// the network — O(sum of layer neurons), no weight traffic. Network::infer
  /// calls this automatically when the network's theta generation has moved
  /// past the state's snapshot (e.g. the state was built before fault-aware
  /// retraining), so a stale state can never silently infer with old
  /// thresholds.
  void resync(const Network& net);

  /// Theta generation this state was last synced against.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

 private:
  friend class Network;
  /// One slice per layer of the stack (index matches Network layers).
  struct LayerSlice {
    LifLayer lif;
    std::vector<float> current;
    std::vector<std::uint32_t> out_spikes;
    // ---- Event-engine scratch (sized by resync; dense path ignores). ----
    std::vector<std::uint64_t> in_mask;  ///< bitset over the layer's inputs
    std::vector<std::int64_t> acc;       ///< Q47.16 accumulator (fx mode)
    bool skip_ok = false;  ///< zero-input step provably identity at rest
    /// LIF state exactly at rest: true from the per-sample reset until the
    /// layer's first non-empty input wave (no mid-sample re-arm — float
    /// decay cannot reach exact rest within a sample).
    bool at_rest = true;
    bool current_zero = false;  ///< `current` known all-zero (decay steps)
  };
  std::vector<LayerSlice> layers_;
  PoissonEncoder encoder_;
  std::vector<std::uint32_t> in_spikes_;
  std::uint64_t generation_ = 0;
};

/// A complete network instance (per-layer weights + neuron state + encoder).
class Network {
 public:
  explicit Network(const NetworkConfig& cfg);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t n_layers() const noexcept {
    return layers_.size();
  }

  // ---- Per-layer weight access (layer 0 = input side). -----------------

  /// Layer `l`'s synaptic weight matrix, row-major
  /// [layer_neurons(l)][layer_inputs(l)]. Mutable access exists so the
  /// error injector can corrupt the stored bits and the fault-aware trainer
  /// can restore snapshots; it invalidates that layer's transposed
  /// inference copy, which is rebuilt before the next inference.
  [[nodiscard]] const std::vector<float>& weights(std::size_t l) const {
    return layer(l).w;
  }
  [[nodiscard]] std::vector<float>& weights_mut(std::size_t l) {
    Layer& lay = layer(l);
    lay.wt_synced = false;
    return lay.w;
  }

  /// Hot-path mutable access for DELTA fault injection: unlike
  /// weights_mut() this does NOT invalidate the transposed copy. The caller
  /// must mirror every word it changes via mirror_weight() before the next
  /// inference — error::WeightFlip logs carry exactly those words. Requires
  /// a synced transpose (sync_transpose() first), so the invariant "both
  /// layouts agree except at the words the caller is about to mirror" holds.
  [[nodiscard]] std::vector<float>& weights_delta(std::size_t l) {
    Layer& lay = layer(l);
    SPARKXD_REQUIRE(lay.wt_synced,
                    "weights_delta needs a synced transpose — call "
                    "sync_transpose() first (or use weights_mut())");
    return lay.w;
  }

  /// Copies the current value of layer `l`'s flat weight `idx` into the
  /// transposed layout (companion of weights_delta()).
  void mirror_weight(std::size_t l, std::size_t idx) {
    Layer& lay = layer(l);
    const std::size_t n = idx / lay.n_in;
    const std::size_t i = idx % lay.n_in;
    lay.wt[i * lay.n_out + n] = lay.w[idx];
  }

  /// Layer `l`'s transposed weights [input][neuron]; requires a synced
  /// transpose. Read-only — the row-major array stays canonical.
  [[nodiscard]] const std::vector<float>& weights_T(std::size_t l) const {
    const Layer& lay = layer(l);
    SPARKXD_REQUIRE(lay.wt_synced, "transposed weights are stale — call "
                                   "sync_transpose() first");
    return lay.wt;
  }

  /// Layer `l`'s adaptive thresholds (exposed for snapshot/restore
  /// alongside the weights).
  [[nodiscard]] const std::vector<float>& thetas(std::size_t l) const {
    return layer(l).lif.thetas();
  }
  [[nodiscard]] std::vector<float>& thetas_mut(std::size_t l) {
    // Mutable access presumes mutation: any InferenceState snapshotted
    // before this call now holds stale thresholds and must resync.
    ++theta_generation_;
    return layer(l).lif.thetas_mut();
  }

  /// Monotone counter bumped whenever trained thresholds may have changed
  /// (training passes, thetas_mut). InferenceState snapshots it; a mismatch
  /// at infer() time triggers a cheap resync instead of silently inferring
  /// with stale thetas.
  [[nodiscard]] std::uint64_t theta_generation() const noexcept {
    return theta_generation_;
  }

  /// Selects the inference engine for infer() (see EngineKind). Training
  /// (process with learn=true) always runs the dense row-major kernel.
  void set_engine(EngineKind engine) noexcept { cfg_.engine = engine; }
  [[nodiscard]] EngineKind engine() const noexcept { return cfg_.engine; }

  // ---- Legacy single-layer aliases. ------------------------------------
  // The pre-stack API addressed THE layer; these forward to layer 0 and
  // require a single-layer stack so deep-network callers are forced to name
  // the layer explicitly instead of silently touching only one of them.

  [[nodiscard]] const std::vector<float>& weights() const {
    return weights(only_layer());
  }
  [[nodiscard]] std::vector<float>& weights_mut() {
    return weights_mut(only_layer());
  }
  [[nodiscard]] std::vector<float>& weights_delta() {
    return weights_delta(only_layer());
  }
  void mirror_weight(std::size_t idx) { mirror_weight(only_layer(), idx); }
  [[nodiscard]] const std::vector<float>& weights_T() const {
    return weights_T(only_layer());
  }
  [[nodiscard]] const std::vector<float>& thetas() const {
    return thetas(only_layer());
  }
  [[nodiscard]] std::vector<float>& thetas_mut() {
    return thetas_mut(only_layer());
  }

  /// Rebuilds every stale transposed weight copy from its row-major array.
  void sync_transpose();
  /// True when every layer's transposed copy is in sync.
  [[nodiscard]] bool transpose_synced() const noexcept;

  /// Presents one image for config().timesteps steps and returns the OUTPUT
  /// layer's per-neuron spike counts. With learn=true, STDP and threshold
  /// adaptation are active on every layer and all weight rows are
  /// re-normalized afterwards; with learn=false the network is a pure
  /// inference engine (weights and thetas untouched). `rng` drives the
  /// Poisson spike trains (the only stochastic part — hidden layers are
  /// deterministic given their input spikes).
  std::vector<std::uint32_t> process(const std::vector<float>& image,
                                     bool learn, Rng& rng);

  /// Pure inference through a caller-owned InferenceState: identical spike
  /// counts and Rng consumption as process(image, /*learn=*/false, rng), but
  /// const on the network and reusing the state's buffers — the per-trial /
  /// per-worker hot path. Requires synced transposes. Resyncs the state
  /// first if the network's theta generation moved past its snapshot.
  ///
  /// config().engine picks the kernel: kDense is the transposed-gather
  /// reference; kEvent walks per-timestep bitset spike masks and skips
  /// empty waves against at-rest layers outright (bitwise-identical counts
  /// and Rng consumption to kDense); kEventFx additionally accumulates the
  /// synaptic drive in Q47.16 fixed point (order-independent, numerically
  /// different from the float paths).
  std::vector<std::uint32_t> infer(InferenceState& state,
                                   const std::vector<float>& image,
                                   Rng& rng) const;

  /// Rescales every neuron's incoming weights (every layer) to sum to
  /// norm_target (no-op for all-zero rows).
  void normalize_rows();

  /// Resets membrane dynamics (called automatically between samples).
  void reset_dynamics();

 private:
  friend class InferenceState;

  /// One layer of the stack: weights in both layouts plus neuron state.
  struct Layer {
    std::size_t n_in = 0;
    std::size_t n_out = 0;
    std::vector<float> w;   ///< canonical row-major [neuron][input]
    std::vector<float> wt;  ///< transposed [input][neuron], inference kernel
    bool wt_synced = false;
    LifLayer lif;
    PreTraces traces;
    // Reused scratch buffers.
    std::vector<float> current;
    std::vector<std::uint32_t> out_spikes;

    Layer(std::size_t n_in, std::size_t n_out, const NetworkConfig& cfg);
  };

  [[nodiscard]] Layer& layer(std::size_t l) {
    SPARKXD_REQUIRE(l < layers_.size(), "layer index out of range");
    return layers_[l];
  }
  [[nodiscard]] const Layer& layer(std::size_t l) const {
    SPARKXD_REQUIRE(l < layers_.size(), "layer index out of range");
    return layers_[l];
  }
  /// Index of the only layer; throws for deep stacks (legacy-alias guard).
  [[nodiscard]] std::size_t only_layer() const {
    SPARKXD_REQUIRE(layers_.size() == 1,
                    "this accessor addresses THE layer of a single-layer "
                    "network — a deep stack needs an explicit layer index");
    return 0;
  }

  /// The two infer() kernels (common setup/validation lives in infer()).
  void infer_dense(InferenceState& state, Rng& rng,
                   std::vector<std::uint32_t>& counts) const;
  void infer_event(InferenceState& state, Rng& rng,
                   std::vector<std::uint32_t>& counts) const;

  NetworkConfig cfg_;
  std::vector<Layer> layers_;  ///< [0] = input side, back() = output layer
  PoissonEncoder encoder_;
  std::vector<std::uint32_t> in_spikes_;  ///< reused input-spike scratch
  std::uint64_t theta_generation_ = 0;    ///< see theta_generation()
};

}  // namespace sparkxd::snn
