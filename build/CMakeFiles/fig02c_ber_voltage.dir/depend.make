# Empty dependencies file for fig02c_ber_voltage.
# This may be replaced when dependencies are built.
