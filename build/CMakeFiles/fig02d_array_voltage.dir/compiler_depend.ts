# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02d_array_voltage.
