#pragma once
// Length-prefixed TCP wire protocol of the serving layer.
//
// Framing: every message is  [u32 LE payload length][payload] ; the payload
// begins with a one-byte message type followed by fixed-width little-endian
// fields (the same raw-POD convention model_io uses). There is no
// versioning handshake — the protocol is an internal contract between
// sparkxd_serve and its clients, pinned by tests.
//
//   kClassify   u64 id, u64 seed, u32 n_pixels, f32 pixels[n_pixels]
//   kReply      u64 id, i32 label, u32 spikes, u32 flips
//   kStats      (empty) — server answers with kStatsReply on the same
//               connection, bypassing the batch queue
//   kStatsReply u64 served, u64 batches, u64 max_queue_depth,
//               u32 n_hist, u64 hist[n_hist]  (hist[i] = batches of size i+1)
//   kQueueFull  u64 id — overload backpressure: the admission queue was at
//               its bound when this classify request arrived; the request
//               was NOT processed (and never will be), the connection stays
//               open, and the client may retry
//
// Encode/decode work on byte vectors (unit-testable without sockets);
// read_frame/write_frame do the blocking fd I/O with full-length loops.

#include <cstdint>
#include <vector>

#include "serve/engine.hpp"

namespace sparkxd::serve {

enum class MsgType : std::uint8_t {
  kClassify = 1,
  kReply = 2,
  kStats = 3,
  kStatsReply = 4,
  kQueueFull = 5,
};

/// Upper bound on a frame payload; a length prefix beyond it is treated as
/// a corrupt/hostile stream and read_frame throws.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

/// Server-side counters reported through kStatsReply.
struct ServerStats {
  std::uint64_t served = 0;   ///< replies written
  std::uint64_t batches = 0;  ///< batches processed
  std::uint64_t max_queue_depth = 0;  ///< high-water admission-queue depth
  /// batch_hist[i] = number of batches of size i+1.
  std::vector<std::uint64_t> batch_hist;

  friend bool operator==(const ServerStats&, const ServerStats&) = default;
};

/// The type byte of a decoded payload; throws on an empty payload.
[[nodiscard]] MsgType frame_type(const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_classify(
    const ClassifyRequest& request);
[[nodiscard]] std::vector<std::uint8_t> encode_reply(
    const ClassifyReply& reply);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request();
[[nodiscard]] std::vector<std::uint8_t> encode_stats_reply(
    const ServerStats& stats);
[[nodiscard]] std::vector<std::uint8_t> encode_queue_full(std::uint64_t id);

/// Decoders throw ContractViolation on a wrong type byte or a malformed /
/// short payload.
[[nodiscard]] ClassifyRequest decode_classify(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] ClassifyReply decode_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] ServerStats decode_stats_reply(
    const std::vector<std::uint8_t>& payload);
/// Returns the rejected request's id.
[[nodiscard]] std::uint64_t decode_queue_full(
    const std::vector<std::uint8_t>& payload);

/// Writes one frame (length prefix + payload) to `fd`, looping until all
/// bytes are out. Returns false when the peer is gone (EPIPE/ECONNRESET);
/// throws on malformed use (payload too large).
bool write_frame(int fd, const std::vector<std::uint8_t>& payload);

/// Reads one frame from `fd` into `payload`, looping until complete.
/// Returns false on clean EOF at a frame boundary; throws ContractViolation
/// on a truncated frame or an oversized length prefix.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);

}  // namespace sparkxd::serve
