#include "dram/geometry.hpp"

namespace sparkxd::dram {

void Geometry::validate() const {
  SPARKXD_REQUIRE(channels && ranks_per_channel && chips_per_rank &&
                      banks_per_chip && subarrays_per_bank &&
                      rows_per_subarray && columns_per_row && column_bytes,
                  "every geometry level must have at least one element");
  SPARKXD_REQUIRE(burst_columns >= 1 && burst_columns <= columns_per_row,
                  "burst length must fit in a row");
  SPARKXD_REQUIRE(columns_per_row % burst_columns == 0,
                  "rows must hold a whole number of bursts");
}

void check_address(const Geometry& g, const Address& a) {
  SPARKXD_REQUIRE(a.channel < g.channels, "channel out of range");
  SPARKXD_REQUIRE(a.rank < g.ranks_per_channel, "rank out of range");
  SPARKXD_REQUIRE(a.chip < g.chips_per_rank, "chip out of range");
  SPARKXD_REQUIRE(a.bank < g.banks_per_chip, "bank out of range");
  SPARKXD_REQUIRE(a.subarray < g.subarrays_per_bank, "subarray out of range");
  SPARKXD_REQUIRE(a.row < g.rows_per_subarray, "row out of range");
  SPARKXD_REQUIRE(a.column < g.columns_per_row, "column out of range");
}

std::uint64_t subarray_id(const Geometry& g, const Address& a) {
  check_address(g, a);
  return bank_id(g, a) * g.subarrays_per_bank + a.subarray;
}

std::uint64_t bank_id(const Geometry& g, const Address& a) {
  return ((std::uint64_t{a.channel} * g.ranks_per_channel + a.rank) *
              g.chips_per_rank +
          a.chip) *
             g.banks_per_chip +
         a.bank;
}

std::uint32_t bank_row(const Geometry& g, const Address& a) {
  return a.subarray * g.rows_per_subarray + a.row;
}

std::uint64_t cell_bit_index(const Geometry& g, const Address& a,
                             std::uint32_t bit_in_column) {
  SPARKXD_REQUIRE(bit_in_column < 8 * g.column_bytes,
                  "bit offset exceeds the column width");
  // encode_linear is the byte address of the word's first byte; the cell
  // coordinate is that address in bits plus the offset within the word.
  return encode_linear(g, a) * 8 + bit_in_column;
}

std::uint64_t encode_linear(const Geometry& g, const Address& a) {
  check_address(g, a);
  std::uint64_t x = a.channel;
  x = x * g.ranks_per_channel + a.rank;
  x = x * g.chips_per_rank + a.chip;
  x = x * g.banks_per_chip + a.bank;
  x = x * g.subarrays_per_bank + a.subarray;
  x = x * g.rows_per_subarray + a.row;
  x = x * g.columns_per_row + a.column;
  return x * g.column_bytes;
}

Address decode_linear(const Geometry& g, std::uint64_t byte_addr) {
  SPARKXD_REQUIRE(byte_addr < g.total_bytes(), "byte address out of range");
  std::uint64_t x = byte_addr / g.column_bytes;
  Address a;
  a.column = static_cast<std::uint32_t>(x % g.columns_per_row);
  x /= g.columns_per_row;
  a.row = static_cast<std::uint32_t>(x % g.rows_per_subarray);
  x /= g.rows_per_subarray;
  a.subarray = static_cast<std::uint32_t>(x % g.subarrays_per_bank);
  x /= g.subarrays_per_bank;
  a.bank = static_cast<std::uint32_t>(x % g.banks_per_chip);
  x /= g.banks_per_chip;
  a.chip = static_cast<std::uint32_t>(x % g.chips_per_rank);
  x /= g.chips_per_rank;
  a.rank = static_cast<std::uint32_t>(x % g.ranks_per_channel);
  x /= g.ranks_per_channel;
  a.channel = static_cast<std::uint32_t>(x);
  return a;
}

}  // namespace sparkxd::dram
