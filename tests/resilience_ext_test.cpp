// Tests for the resilience extensions: uint8 weight quantization, SECDED
// ECC, and raw-byte error injection (the paths bench/ablation_quantization
// and bench/ablation_ecc exercise).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "error/ecc.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"
#include "snn/quant.hpp"

namespace sparkxd {
namespace {

// -------------------------------------------------------------- quantization

TEST(Quant, RoundTripWithinHalfScale) {
  Rng rng(1);
  const std::size_t neurons = 10, inputs = 100;
  std::vector<float> w(neurons * inputs);
  for (auto& x : w) x = static_cast<float>(rng.uniform(0.0, 0.4));
  const auto q = snn::quantize(w, neurons, inputs);
  const auto back = snn::dequantize(q);
  for (std::size_t n = 0; n < neurons; ++n) {
    const float bound = snn::quantization_error_bound(q, n) + 1e-6f;
    for (std::size_t i = 0; i < inputs; ++i)
      EXPECT_NEAR(back[n * inputs + i], w[n * inputs + i], bound);
  }
}

TEST(Quant, ScalePerRowTracksRowMax) {
  std::vector<float> w = {0.1f, 0.2f,   // row 0: max 0.2
                          0.4f, 0.05f}; // row 1: max 0.4
  const auto q = snn::quantize(w, 2, 2);
  EXPECT_NEAR(q.row_scale[0], 0.2f / 255.0f, 1e-7);
  EXPECT_NEAR(q.row_scale[1], 0.4f / 255.0f, 1e-7);
  // The row maximum maps to code 255.
  EXPECT_EQ(q.codes[1], 255);
  EXPECT_EQ(q.codes[2], 255);
}

TEST(Quant, ZeroRowIsStable) {
  std::vector<float> w(8, 0.0f);
  const auto q = snn::quantize(w, 2, 4);
  const auto back = snn::dequantize(q);
  for (const float x : back) EXPECT_EQ(x, 0.0f);
}

TEST(Quant, StorageIsOneBytePerSynapse) {
  std::vector<float> w(300, 0.1f);
  const auto q = snn::quantize(w, 3, 100);
  EXPECT_EQ(q.size_bytes(), 300u);
}

TEST(Quant, RejectsNegativeWeightsAndBadShape) {
  std::vector<float> w = {0.1f, -0.2f};
  EXPECT_THROW((void)snn::quantize(w, 1, 2), ContractViolation);
  EXPECT_THROW((void)snn::quantize(w, 2, 2), ContractViolation);
}

TEST(Quant, CorruptionIsBoundedByRowMax) {
  // The structural advantage over FP32: flipping ANY bit of a uint8 code
  // moves the decoded weight by at most row_max (no exponent explosion).
  Rng rng(2);
  const std::size_t neurons = 4, inputs = 64;
  std::vector<float> w(neurons * inputs);
  for (auto& x : w) x = static_cast<float>(rng.uniform(0.0, 0.3));
  auto q = snn::quantize(w, neurons, inputs);
  const auto clean = snn::dequantize(q);
  for (auto& c : q.codes) c = static_cast<std::uint8_t>(c ^ 0x80);  // MSB
  const auto corrupted = snn::dequantize(q);
  for (std::size_t n = 0; n < neurons; ++n) {
    const float row_max = q.row_scale[n] * 255.0f;
    for (std::size_t i = 0; i < inputs; ++i)
      EXPECT_LE(std::abs(corrupted[n * inputs + i] - clean[n * inputs + i]),
                row_max * 0.51f);
  }
}

// ------------------------------------------------------- raw-byte injection

TEST(ByteInjection, FlipRateMatchesFloatPath) {
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, 11);
  const std::size_t n_bytes = 400000;
  const auto place =
      mapping::baseline_placement(g, n_bytes / sizeof(float));
  const error::ErrorInjector inj(g, profile, {}, place, n_bytes, 11, 1e-3);
  Rng rng(3);
  std::vector<std::uint8_t> buf(n_bytes, 0x55);
  const auto flips = inj.inject_bytes(buf.data(), buf.size(), 1e-3, rng);
  EXPECT_NEAR(static_cast<double>(flips) / inj.expected_flips(1e-3), 1.0,
              0.15);
}

TEST(ByteInjection, FlippedBitsMatchHammingDistance) {
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, 12);
  const std::size_t n_bytes = 100000;
  const auto place =
      mapping::baseline_placement(g, n_bytes / sizeof(float));
  const error::ErrorInjector inj(g, profile, {}, place, n_bytes, 12, 1e-3);
  Rng rng(4);
  std::vector<std::uint8_t> buf(n_bytes, 0x00);
  const auto flips = inj.inject_bytes(buf.data(), buf.size(), 1e-3, rng);
  std::size_t ones = 0;
  for (const auto b : buf)
    ones += static_cast<std::size_t>(std::popcount(unsigned{b}));
  EXPECT_EQ(ones, flips);
}

TEST(ByteInjection, SameWeakCellsAsFloatPath) {
  // Injecting all weak cells via the byte path and via the FP32 path must
  // corrupt exactly the same stored bits (same physical cells).
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, 13);
  const std::size_t n_weights = 50000;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto inj = error::ErrorInjector::for_weights(g, profile, {}, place,
                                                     n_weights, 13, 1e-3);
  std::vector<float> wf(n_weights, 0.1f);
  (void)inj.inject_all_weak(wf, 1e-3, {-1e30f, 1e30f});  // wide: no clamping
  // Byte path over the same payload, all weak cells via a forced-decide rng
  // is not exposed; emulate by comparing against the float result bitwise.
  std::vector<std::uint8_t> bytes(n_weights * sizeof(float));
  const float clean = 0.1f;
  for (std::size_t i = 0; i < n_weights; ++i)
    std::memcpy(bytes.data() + i * 4, &clean, 4);
  // inject_bytes is probabilistic; run the float injection's deterministic
  // variant and check every flipped float differs from clean in >= 1 bit
  // that a weak cell could own (structural consistency check).
  std::size_t flipped_weights = 0;
  for (std::size_t i = 0; i < n_weights; ++i)
    if (wf[i] != clean) ++flipped_weights;
  EXPECT_GT(flipped_weights, 0u);
  EXPECT_LE(flipped_weights, inj.candidate_count());
}

// ----------------------------------------------------------------------- ECC

TEST(Secded, CleanWordDecodesClean) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::uint64_t data = rng.next_u64();
    const auto check = error::secded_encode(data);
    std::uint64_t received = data;
    EXPECT_EQ(error::secded_decode(received, check),
              error::SecdedStatus::kClean);
    EXPECT_EQ(received, data);
  }
}

TEST(Secded, CorrectsEverySingleDataBit) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t data = rng.next_u64();
    const auto check = error::secded_encode(data);
    for (unsigned bit = 0; bit < 64; ++bit) {
      std::uint64_t received = data ^ (std::uint64_t{1} << bit);
      EXPECT_EQ(error::secded_decode(received, check),
                error::SecdedStatus::kCorrected);
      EXPECT_EQ(received, data) << "bit " << bit << " not corrected";
    }
  }
}

TEST(Secded, ToleratesSingleCheckBitError) {
  Rng rng(7);
  const std::uint64_t data = rng.next_u64();
  const auto check = error::secded_encode(data);
  for (unsigned bit = 0; bit < 8; ++bit) {
    std::uint64_t received = data;
    const auto bad_check = static_cast<std::uint8_t>(check ^ (1u << bit));
    EXPECT_EQ(error::secded_decode(received, bad_check),
              error::SecdedStatus::kCorrected);
    EXPECT_EQ(received, data);
  }
}

TEST(Secded, DetectsDoubleDataBitErrors) {
  Rng rng(8);
  const std::uint64_t data = rng.next_u64();
  const auto check = error::secded_encode(data);
  std::size_t detected = 0, total = 0;
  for (unsigned a = 0; a < 64; a += 7)
    for (unsigned b = a + 1; b < 64; b += 5) {
      std::uint64_t received =
          data ^ (std::uint64_t{1} << a) ^ (std::uint64_t{1} << b);
      if (error::secded_decode(received, check) ==
          error::SecdedStatus::kUncorrectable)
        ++detected;
      ++total;
    }
  EXPECT_EQ(detected, total) << "SECDED must flag all double data errors";
}

TEST(Secded, EncodeIsDeterministic) {
  EXPECT_EQ(error::secded_encode(0xDEADBEEFCAFEF00DULL),
            error::secded_encode(0xDEADBEEFCAFEF00DULL));
  EXPECT_NE(error::secded_encode(0), error::secded_encode(1));
}

TEST(EccWeights, ScrubRepairsSingleErrors) {
  Rng rng(9);
  std::vector<float> w(1000);
  for (auto& x : w) x = static_cast<float>(rng.uniform(0.0, 0.4));
  const auto checks = error::ecc_encode_weights(w);
  auto corrupted = w;
  // Flip one bit in 50 distinct 64-bit words.
  for (std::size_t word = 0; word < 50; ++word) {
    const std::size_t weight = word * 10;  // two weights per word: word*10/2
    corrupted[weight] =
        flip_float_bit(corrupted[weight], (word * 7) % 32);
  }
  const auto stats = error::ecc_scrub_weights(corrupted, checks);
  EXPECT_EQ(stats.corrected, 50u);
  EXPECT_EQ(stats.uncorrectable, 0u);
  EXPECT_EQ(corrupted, w);
}

TEST(EccWeights, DoubleErrorInWordIsFlaggedNotMiscorrected) {
  std::vector<float> w(10, 0.25f);
  const auto checks = error::ecc_encode_weights(w);
  auto corrupted = w;
  corrupted[0] = flip_float_bit(corrupted[0], 3);
  corrupted[1] = flip_float_bit(corrupted[1], 17);  // same 64-bit word
  const auto stats = error::ecc_scrub_weights(corrupted, checks);
  EXPECT_EQ(stats.uncorrectable, 1u);
  EXPECT_EQ(stats.corrected, 0u);
}

TEST(EccWeights, RejectsOddWeightCountAndMismatchedChecks) {
  std::vector<float> odd(3, 0.1f);
  EXPECT_THROW((void)error::ecc_encode_weights(odd), ContractViolation);
  std::vector<float> w(4, 0.1f);
  std::vector<std::uint8_t> wrong(3);
  EXPECT_THROW((void)error::ecc_scrub_weights(w, wrong), ContractViolation);
}

TEST(EccWeights, OverheadConstant) {
  EXPECT_DOUBLE_EQ(error::kEccStorageOverhead, 0.125);
  std::vector<float> w(512, 0.1f);
  EXPECT_EQ(error::ecc_encode_weights(w).size(), 256u);  // 1 B per 8 B
}

}  // namespace
}  // namespace sparkxd
