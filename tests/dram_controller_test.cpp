// Tests for the DRAM controller: row-buffer classification, command counts,
// timing behaviour (tRCD/tRAS/tRP/tCL), multi-bank overlap, and arrival-rate
// limiting.

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "dram/controller.hpp"

namespace sparkxd::dram {
namespace {

Geometry geom() { return Geometry::lpddr3_4gb(); }
TimingParams timing() { return TimingParams::lpddr3_1600(); }

Access rd(std::uint32_t bank, std::uint32_t subarray, std::uint32_t row,
          std::uint32_t column) {
  return {Address{0, 0, 0, bank, subarray, row, column}, AccessType::kRead};
}

TEST(Controller, FirstAccessIsMiss) {
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0)});
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.activates, 1u);
  EXPECT_EQ(stats.reads, 1u);
}

TEST(Controller, SameRowIsHit) {
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0), rd(0, 0, 0, 8), rd(0, 0, 0, 16)});
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.activates, 1u);
}

TEST(Controller, DifferentRowSameBankIsConflict) {
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0), rd(0, 0, 1, 0)});
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_EQ(stats.activates, 2u);
  // Conflict precharge + the trailing close of the open row.
  EXPECT_EQ(stats.precharges, 2u);
}

TEST(Controller, DifferentSubarraySameBankIsConflict) {
  // Subarrays share the bank-level row buffer in commodity DRAM.
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0), rd(0, 1, 0, 0)});
  EXPECT_EQ(stats.conflicts, 1u);
}

TEST(Controller, DifferentBanksAreIndependentMisses) {
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0), rd(1, 0, 0, 0), rd(0, 0, 0, 8)});
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);  // bank 0 row still open
}

TEST(Controller, SingleAccessLatencyIsRcdPlusClPlusBurst) {
  Controller c(geom(), timing());
  const auto t = timing();
  const auto stats = c.run({rd(0, 0, 0, 0)});
  EXPECT_NEAR(stats.total_time_ns, t.t_rcd + t.t_cl + t.t_burst, 1e-9);
}

TEST(Controller, StreamingHitsAreBusLimited) {
  Controller c(geom(), timing());
  const auto t = timing();
  AccessTrace trace;
  const std::uint32_t bursts = 32;
  for (std::uint32_t b = 0; b < bursts; ++b) trace.push_back(rd(0, 0, 0, b * 8));
  const auto stats = c.run(trace);
  // First access pays tRCD + tCL, the rest stream at one burst each.
  EXPECT_NEAR(stats.total_time_ns,
              t.t_rcd + t.t_cl + bursts * t.t_burst, 1e-6);
}

TEST(Controller, ConflictPaysRowCycle) {
  Controller c(geom(), timing());
  const auto t = timing();
  const auto stats = c.run({rd(0, 0, 0, 0), rd(0, 0, 1, 0)});
  // Second access: PRE waits for tRAS after the first ACT, then tRP + tRCD.
  const double expected =
      t.t_ras + t.t_rp + t.t_rcd + t.t_cl + t.t_burst;
  EXPECT_NEAR(stats.total_time_ns, expected, 1e-6);
}

TEST(Controller, MultiBankOverlapHidesActivation) {
  // Interleaving rows across banks must be faster than cycling rows within
  // one bank — the Fig. 9b multi-bank burst benefit.
  Controller c(geom(), timing());
  AccessTrace same_bank, interleaved;
  const std::uint32_t rows = 8;
  const std::uint32_t bursts_per_row = 16;
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t b = 0; b < bursts_per_row; ++b) {
      same_bank.push_back(rd(0, 0, r, b * 8));
      interleaved.push_back(rd(r % 8, 0, r / 8, b * 8));
    }
  const auto t_same = c.run(same_bank).total_time_ns;
  const auto t_inter = c.run(interleaved).total_time_ns;
  EXPECT_LT(t_inter, t_same * 0.95);
}

TEST(Controller, RrdSpacingBetweenActivates) {
  Controller c(geom(), timing());
  const auto t = timing();
  // Two immediate ACTs to different banks must be spaced by tRRD; the
  // second access's data lands tRRD later than a lone access... measure via
  // makespan of two misses to different banks.
  const auto stats = c.run({rd(0, 0, 0, 0), rd(1, 0, 0, 0)});
  const double lone = t.t_rcd + t.t_cl + t.t_burst;
  EXPECT_GE(stats.total_time_ns, lone + t.t_rrd - 1e-9);
}

TEST(Controller, ArrivalIntervalStretchesMakespan) {
  Controller c(geom(), timing());
  AccessTrace trace;
  for (std::uint32_t b = 0; b < 64; ++b) trace.push_back(rd(0, 0, 0, b * 8));
  const auto fast = c.run(trace, 0.0);
  const auto slow = c.run(trace, 20.0);
  EXPECT_GT(slow.total_time_ns, fast.total_time_ns);
  EXPECT_GE(slow.total_time_ns, 63 * 20.0);
}

TEST(Controller, ArrivalIntervalDoesNotChangeClassification) {
  Controller c(geom(), timing());
  AccessTrace trace{rd(0, 0, 0, 0), rd(0, 0, 0, 8), rd(0, 0, 1, 0)};
  const auto a = c.run(trace, 0.0);
  const auto b = c.run(trace, 50.0);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.conflicts, b.conflicts);
}

TEST(Controller, RunResetsStateBetweenCalls) {
  Controller c(geom(), timing());
  (void)c.run({rd(0, 0, 0, 0)});
  const auto stats = c.run({rd(0, 0, 0, 0)});
  EXPECT_EQ(stats.misses, 1u);  // bank idle again, not a hit
}

TEST(Controller, ClassifyMatchesRunOutcomes) {
  Controller c(geom(), timing());
  (void)c.run({rd(0, 0, 0, 0)});
  // After run(), bank 0 row 0 is open (classify uses current state).
  EXPECT_EQ(c.classify(rd(0, 0, 0, 8)), RowBufferOutcome::kHit);
  EXPECT_EQ(c.classify(rd(0, 0, 1, 0)), RowBufferOutcome::kConflict);
  EXPECT_EQ(c.classify(rd(1, 0, 0, 0)), RowBufferOutcome::kMiss);
}

TEST(Controller, StatsAccounting) {
  Controller c(geom(), timing());
  AccessTrace trace;
  for (std::uint32_t b = 0; b < 10; ++b) trace.push_back(rd(0, 0, 0, b * 8));
  trace.push_back({Address{0, 0, 0, 1, 0, 0, 0}, AccessType::kWrite});
  const auto stats = c.run(trace);
  EXPECT_EQ(stats.accesses, 11u);
  EXPECT_EQ(stats.reads, 10u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.hits + stats.misses + stats.conflicts, stats.accesses);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 9.0 / 11.0);
}

TEST(Controller, ThroughputHelper) {
  TraceStats s;
  s.accesses = 10;
  s.total_time_ns = 100.0;
  EXPECT_DOUBLE_EQ(s.bytes_per_ns(32), 3.2);
  TraceStats empty;
  EXPECT_EQ(empty.bytes_per_ns(32), 0.0);
  EXPECT_EQ(empty.hit_rate(), 0.0);
}

TEST(Controller, RejectsNegativeArrivalInterval) {
  Controller c(geom(), timing());
  EXPECT_THROW(c.run({rd(0, 0, 0, 0)}, -1.0), ContractViolation);
}

TEST(Controller, EmptyTrace) {
  Controller c(geom(), timing());
  const auto stats = c.run({});
  EXPECT_EQ(stats.accesses, 0u);
  EXPECT_EQ(stats.total_time_ns, 0.0);
}

class SlowTimings : public ::testing::TestWithParam<double> {};

TEST_P(SlowTimings, LongerTimingsNeverSpeedUpConflicts) {
  // Property: scaling tRCD/tRAS/tRP up (reduced voltage) can only increase
  // the makespan of a conflict-heavy trace.
  auto slow = timing();
  const double k = GetParam();
  slow.t_rcd *= k;
  slow.t_ras *= k;
  slow.t_rp *= k;
  AccessTrace trace;
  for (std::uint32_t r = 0; r < 6; ++r) trace.push_back(rd(0, 0, r, 0));
  Controller base(geom(), timing());
  Controller scaled(geom(), slow);
  EXPECT_GE(scaled.run(trace).total_time_ns,
            base.run(trace).total_time_ns - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ScaleFactors, SlowTimings,
                         ::testing::Values(1.0, 1.2, 1.5, 2.0));


// ------------------------------------------------- subarray-level parallelism

TEST(Salp, CrossSubarraySwitchIsMissNotConflict) {
  // With per-subarray row buffers (SALP), moving between subarrays of one
  // bank does not evict the other subarray's open row.
  Controller salp(geom(), timing(), /*subarray_level_parallelism=*/true);
  const auto stats =
      salp.run({rd(0, 0, 0, 0), rd(0, 1, 0, 0), rd(0, 0, 0, 8)});
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.hits, 1u);  // subarray 0's row is still open
}

TEST(Salp, CommodityModeConflictsOnSameTrace) {
  Controller plain(geom(), timing(), /*subarray_level_parallelism=*/false);
  const auto stats =
      plain.run({rd(0, 0, 0, 0), rd(0, 1, 0, 0), rd(0, 0, 0, 8)});
  EXPECT_EQ(stats.conflicts, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(Salp, NeverSlowerThanCommodity) {
  // Property: SALP only removes PRE+ACT work, so any trace is at least as
  // fast as on the commodity controller.
  Controller salp(geom(), timing(), true);
  Controller plain(geom(), timing(), false);
  Rng rng(77);
  AccessTrace trace;
  for (int i = 0; i < 500; ++i)
    trace.push_back(rd(static_cast<std::uint32_t>(rng.index(8)),
                       static_cast<std::uint32_t>(rng.index(4)),
                       static_cast<std::uint32_t>(rng.index(8)),
                       static_cast<std::uint32_t>(rng.index(64)) * 8));
  const auto t_salp = salp.run(trace).total_time_ns;
  const auto t_plain = plain.run(trace).total_time_ns;
  EXPECT_LE(t_salp, t_plain * 1.0001);
}

TEST(Salp, SameRowSameSubarrayStillHits) {
  Controller salp(geom(), timing(), true);
  const auto stats = salp.run({rd(0, 3, 5, 0), rd(0, 3, 5, 8)});
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

// ----------------------------------------------------- randomized properties

/// Random trace spanning a few banks/subarrays/rows so every row-buffer
/// outcome class occurs.
AccessTrace random_trace(std::uint64_t seed, std::size_t n = 400) {
  Rng rng(seed);
  AccessTrace trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    trace.push_back(rd(static_cast<std::uint32_t>(rng.index(8)),
                       static_cast<std::uint32_t>(rng.index(4)),
                       static_cast<std::uint32_t>(rng.index(8)),
                       static_cast<std::uint32_t>(rng.index(64)) * 8));
  return trace;
}

class RandomTraces : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraces, SalpNeverProducesMoreConflictsThanCommodity) {
  // A SALP conflict needs the *same subarray* open on a different row; in
  // commodity DRAM that access also conflicts (the shared bank buffer holds
  // a different bank-level row). So per access — and hence in aggregate —
  // SALP's conflicts are a subset of commodity's, and its hits a superset.
  const auto trace = random_trace(GetParam());
  Controller salp(geom(), timing(), true);
  Controller plain(geom(), timing(), false);
  const auto s = salp.run(trace);
  const auto p = plain.run(trace);
  EXPECT_LE(s.conflicts, p.conflicts);
  EXPECT_GE(s.hits, p.hits);
  EXPECT_EQ(s.accesses, p.accesses);
  EXPECT_EQ(s.hits + s.misses + s.conflicts, s.accesses);
}

TEST_P(RandomTraces, RunResetsStateBetweenCalls) {
  // After any prior trace, run() must behave exactly like a fresh
  // controller: identical classification counts, commands, and makespan.
  for (const bool salp_mode : {false, true}) {
    Controller reused(geom(), timing(), salp_mode);
    Controller fresh(geom(), timing(), salp_mode);
    (void)reused.run(random_trace(GetParam() + 1000));  // dirty the state
    const auto trace = random_trace(GetParam());
    const auto a = reused.run(trace, 3.0);
    const auto b = fresh.run(trace, 3.0);
    EXPECT_EQ(a.hits, b.hits) << "salp=" << salp_mode;
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.conflicts, b.conflicts);
    EXPECT_EQ(a.activates, b.activates);
    EXPECT_EQ(a.precharges, b.precharges);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.total_time_ns, b.total_time_ns);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraces,
                         ::testing::Values(1u, 7u, 42u, 1337u, 9001u));

}  // namespace
}  // namespace sparkxd::dram
