#pragma once
// The long-lived serving daemon core: a localhost TCP listener feeding an
// admission queue that worker threads drain in dynamic batches.
//
// Thread layout:
//   accept thread        blocks in accept(), spawns one reader per client
//   reader threads       decode frames; kClassify jobs go to the queue
//                        (bounded by max_queue — overflow is answered with
//                        kQueueFull instead of admitted), kStats is
//                        answered inline (it must not queue behind the
//                        work it is measuring)
//   worker threads       each owns a serve::Engine; pops a batch (up to
//                        max_batch jobs, waiting at most max_wait_us for
//                        stragglers after the first), classifies, writes
//                        replies under the owning connection's write mutex
//
// Batching is a throughput lever only: replies are deterministic per
// request (see engine.hpp), so batch boundaries and worker assignment are
// unobservable in the payloads.
//
// Shutdown contract: request_stop() stops accepting, wakes the readers
// (SHUT_RD on every live connection), and lets the workers drain whatever
// was already admitted; wait() joins everything. Every admitted request is
// answered before its connection closes.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/protocol.hpp"

namespace sparkxd::serve {

struct ServerConfig {
  std::uint16_t port = 0;       ///< 0 = ephemeral; read back via port()
  std::size_t workers = 1;      ///< engines (and threads) draining the queue
  std::size_t max_batch = 16;   ///< batch size ceiling
  std::uint64_t max_wait_us = 200;  ///< linger for stragglers after job #1
  /// Admission-queue bound (backpressure): a classify frame arriving while
  /// the queue already holds this many jobs is answered with kQueueFull
  /// instead of being admitted — memory stays bounded under overload and
  /// the connection survives so the client can retry.
  std::size_t max_queue = 4096;
};

class Server {
 public:
  /// Binds and validates but does not serve yet; the artifact must outlive
  /// the server.
  Server(const ServingArtifact& artifact, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept thread and the worker pool.
  void start();

  /// The bound port (resolved even when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Begins the graceful drain; idempotent, safe from a signal-poll loop.
  void request_stop();

  /// Joins all threads; returns once every admitted request is answered
  /// and every connection is closed. Blocks until request_stop() happens.
  void wait();

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mu;  ///< replies from different workers interleave
  };

  struct Job {
    std::shared_ptr<Connection> conn;
    ClassifyRequest request;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void worker_loop();
  void record_batch(std::size_t batch_size);

  const ServingArtifact* artifact_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;

  std::mutex conns_mu_;
  std::vector<std::thread> reader_threads_;        // guarded by conns_mu_
  std::vector<std::weak_ptr<Connection>> conns_;   // guarded by conns_mu_

  // Admission queue. Workers may exit only when the queue is empty AND no
  // producer can refill it (accept loop done, all readers done).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;           // guarded by queue_mu_
  std::size_t active_readers_ = 0;  // guarded by queue_mu_
  bool accept_done_ = false;        // guarded by queue_mu_

  std::atomic<std::uint64_t> served_{0};
  mutable std::mutex stats_mu_;
  std::uint64_t batches_ = 0;                // guarded by stats_mu_
  std::uint64_t max_queue_depth_ = 0;        // guarded by stats_mu_
  std::vector<std::uint64_t> batch_hist_;    // guarded by stats_mu_
};

}  // namespace sparkxd::serve
