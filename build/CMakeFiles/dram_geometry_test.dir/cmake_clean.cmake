file(REMOVE_RECURSE
  "CMakeFiles/dram_geometry_test.dir/tests/dram_geometry_test.cpp.o"
  "CMakeFiles/dram_geometry_test.dir/tests/dram_geometry_test.cpp.o.d"
  "dram_geometry_test"
  "dram_geometry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
