// Fig. 2a: combining approximate DRAM with weight pruning — normalized
// DRAM energy across network connectivity (synaptic connection rate) for a
// 4900-neuron network, at 1.350 V (accurate) and 1.025 V (approximate).
// Paper: both curves fall with connectivity; the approximate-DRAM curve
// sits ~40% below the accurate one at every point.

#include "bench_common.hpp"
#include "error/subarray_profile.hpp"
#include "mapping/mapping.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 2a — approximate DRAM x weight pruning",
                "energy scales with connectivity; approximate DRAM adds a "
                "~40% saving on top of pruning");
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, experiment_seed());
  const std::size_t full_weights = 784 * 4900;

  // Normalization reference: accurate DRAM at full connectivity.
  const auto ref_place = mapping::baseline_placement(g, full_weights);
  const double ref = core::weight_stream_energy(g, ref_place, full_weights,
                                                1.350)
                         .energy.total_nj();

  Table t("fig02a_pruning_combination",
          {"connectivity", "accurate DRAM (1.350V)",
           "approximate DRAM (1.025V)", "saving at this connectivity"});
  for (const double conn : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
    const auto n =
        static_cast<std::size_t>(conn * static_cast<double>(full_weights));
    // Accurate baseline uses the baseline mapping; the approximate point
    // uses the SparkXD mapping (safe subarrays at BER_th = module BER).
    const auto base_place = mapping::baseline_placement(g, n);
    const auto prop =
        mapping::sparkxd_placement(g, profile, 1e-3, 1e-3, n);
    const double e_acc =
        core::weight_stream_energy(g, base_place, n, 1.350).energy.total_nj();
    const double e_apx =
        core::weight_stream_energy(g, prop.chunks, n, 1.025)
            .energy.total_nj();
    t.add_row({Table::pct(100.0 * conn, 0), Table::num(e_acc / ref, 3),
               Table::num(e_apx / ref, 3),
               Table::pct(100.0 * (1.0 - e_apx / e_acc))});
  }
  t.emit();
  return 0;
}
