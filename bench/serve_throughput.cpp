// serve_throughput — requests/sec of the serving layer vs worker count.
//
// Builds a serving artifact in-process (the smoke-digits-m0 scenario — the
// same golden-locked workload CI smokes), then for each worker count spins
// up a loopback sparkxd serve::Server, replays a fixed deterministic
// request stream against it, and reports throughput + latency percentiles
// per configuration as sparkxd-bench-v1 phases ("serve_w1", "serve_w2",
// ...). The reply digest MUST be identical across every worker count — the
// serving determinism contract — and the exit code enforces it, so this
// bench doubles as a concurrency regression check while CI archives the
// numbers as a trend artifact (no thresholds).
//
//   serve_throughput [--json serve_throughput.json]
//
// Honours SPARKXD_SCALE / SPARKXD_SEED for the artifact workload. Exit
// codes: 0 ok, 1 digest divergence across worker counts, 2 bad usage.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "scenario/scenario.hpp"
#include "serve/artifact.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace sparkxd;

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_out_path(argc, argv);
  bench::banner("serving throughput vs worker count",
                "batched serving scales with workers at a bit-stable digest");

  // One artifact for every configuration, captured at the lowest voltage —
  // the operating point the paper's pipeline actually selects for.
  const auto* scenario = scenario::find_scenario("smoke-digits-m0");
  SPARKXD_REQUIRE(scenario != nullptr, "smoke scenario disappeared");
  core::ArtifactState state;
  (void)core::run_pipeline(scenario->pipeline_config(), &state);
  const auto artifact =
      serve::make_artifact(scenario->name, std::move(state));

  serve::ClientOptions options;
  options.requests = scaled(600, 200);
  options.connections = 4;
  options.window = 32;
  options.base_seed = experiment_seed();
  const auto pool = data::make_dataset(data::Task::kDigits, 64,
                                       options.base_seed);

  // Clip the sweep to the host's cores, but never below {1, 2}: the
  // cross-worker digest check needs at least two configurations, and mere
  // oversubscription cannot perturb a deterministic reply.
  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  while (worker_counts.size() > 2 && worker_counts.back() > hw)
    worker_counts.pop_back();

  bench::BenchReport report("serve_throughput");
  Table tbl("serve_throughput", {"workers", "req/s", "p50 us", "p95 us",
                                 "p99 us", "batches", "digest"});
  bool diverged = false;
  std::uint64_t reference_digest = 0;
  for (const std::size_t workers : worker_counts) {
    serve::ServerConfig config;
    config.workers = workers;
    config.max_batch = 8;
    config.max_wait_us = 100;
    serve::Server server(artifact, config);
    server.start();
    const auto stats = serve::replay("127.0.0.1", server.port(), pool,
                                     options);
    const auto server_stats = server.stats();
    server.request_stop();
    server.wait();

    const double wall_s = static_cast<double>(stats.wall_ns) / 1e9;
    const double rps =
        wall_s > 0.0 ? static_cast<double>(stats.replies) / wall_s : 0.0;
    const double p50 = percentile(stats.latency_us, 50.0);
    const double p95 = percentile(stats.latency_us, 95.0);
    const double p99 = percentile(stats.latency_us, 99.0);

    if (workers == worker_counts.front()) {
      reference_digest = stats.digest;
    } else if (stats.digest != reference_digest) {
      diverged = true;
    }

    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016" PRIx64,
                  stats.digest);
    tbl.add_row({std::to_string(workers), Table::num(rps, 0),
                 Table::num(p50, 0), Table::num(p95, 0), Table::num(p99, 0),
                 std::to_string(server_stats.batches), digest_hex});

    auto& phase = report.add_phase("serve_w" + std::to_string(workers),
                                   stats.replies,
                                   static_cast<double>(stats.wall_ns));
    phase.metrics.emplace_back("rps", rps);
    phase.metrics.emplace_back("p50_us", p50);
    phase.metrics.emplace_back("p95_us", p95);
    phase.metrics.emplace_back("p99_us", p99);
    phase.metrics.emplace_back("batches",
                               static_cast<double>(server_stats.batches));
    phase.metrics.emplace_back(
        "max_queue_depth",
        static_cast<double>(server_stats.max_queue_depth));
  }
  tbl.emit();

  if (diverged) {
    std::fprintf(stderr,
                 "serve_throughput: reply digest DIVERGED across worker "
                 "counts — the serving determinism contract is broken\n");
    return 1;
  }
  std::printf("digest stable across %zu worker configurations\n",
              worker_counts.size());
  if (json_path != nullptr && !report.write(json_path)) return 2;
  return 0;
}
