#pragma once
// Small numerical helpers shared by the simulator, the analyzers, and the
// benchmark harnesses: summary statistics and parameter-sweep grids.

#include <cstddef>
#include <vector>

namespace sparkxd {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a vector (0 for empty input).
[[nodiscard]] double mean(const std::vector<double>& v) noexcept;

/// Sample standard deviation (0 for fewer than two samples).
[[nodiscard]] double stddev(const std::vector<double>& v) noexcept;

/// Linearly interpolated percentile, p in [0, 100]. Requires non-empty input.
[[nodiscard]] double percentile(std::vector<double> v, double p);

/// n evenly spaced points from lo to hi inclusive (n >= 2), or {lo} for n == 1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// n log-spaced points from lo to hi inclusive (lo, hi > 0).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Clamps x into [lo, hi].
[[nodiscard]] double clamp(double x, double lo, double hi) noexcept;

/// Linear interpolation in a sorted (x, y) table with end-point clamping.
/// Requires xs sorted ascending (contract-checked).
[[nodiscard]] double interp(const std::vector<double>& xs,
                            const std::vector<double>& ys, double x);

}  // namespace sparkxd
