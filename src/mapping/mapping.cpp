#include "mapping/mapping.hpp"

#include "common/contracts.hpp"

namespace sparkxd::mapping {

std::size_t weights_per_chunk(const dram::Geometry& g) {
  SPARKXD_REQUIRE(g.burst_bytes() % sizeof(float) == 0,
                  "burst size must hold whole FP32 weights");
  return g.burst_bytes() / sizeof(float);
}

std::size_t chunks_for_weights(const dram::Geometry& g,
                               std::size_t n_weights) {
  const std::size_t wpc = weights_per_chunk(g);
  return (n_weights + wpc - 1) / wpc;
}

error::ChunkPlacement baseline_placement(const dram::Geometry& g,
                                         std::size_t n_weights) {
  g.validate();
  const std::size_t needed = chunks_for_weights(g, n_weights);
  const std::size_t bursts_per_row = g.columns_per_row / g.burst_columns;
  error::ChunkPlacement out;
  out.reserve(needed);

  // Subsequent addresses within a bank: columns, then rows (subarray-major),
  // then the next bank, chip, rank, channel.
  for (std::uint32_t ch = 0; ch < g.channels && out.size() < needed; ++ch)
    for (std::uint32_t ra = 0; ra < g.ranks_per_channel && out.size() < needed;
         ++ra)
      for (std::uint32_t cp = 0; cp < g.chips_per_rank && out.size() < needed;
           ++cp)
        for (std::uint32_t ba = 0;
             ba < g.banks_per_chip && out.size() < needed; ++ba)
          for (std::uint32_t su = 0;
               su < g.subarrays_per_bank && out.size() < needed; ++su)
            for (std::uint32_t ro = 0;
                 ro < g.rows_per_subarray && out.size() < needed; ++ro)
              for (std::size_t b = 0;
                   b < bursts_per_row && out.size() < needed; ++b)
                out.push_back(dram::Address{
                    ch, ra, cp, ba, su, ro,
                    static_cast<std::uint32_t>(b * g.burst_columns)});

  SPARKXD_REQUIRE(out.size() == needed,
                  "DRAM module too small for the weight data");
  return out;
}

SparkXdPlacement sparkxd_placement(const dram::Geometry& g,
                                   const error::SubarrayProfile& profile,
                                   double module_ber, double ber_threshold,
                                   std::size_t n_weights) {
  g.validate();
  SPARKXD_REQUIRE(ber_threshold >= 0.0, "BER_th must be non-negative");
  const std::size_t needed = chunks_for_weights(g, n_weights);
  const std::size_t bursts_per_row = g.columns_per_row / g.burst_columns;

  SparkXdPlacement result;
  result.chunks.reserve(needed);

  // Count safe/unsafe once for diagnostics.
  for (std::uint64_t s = 0; s < profile.size(); ++s)
    (profile.rate(s, module_ber) <= ber_threshold ? result.safe_subarrays
                                                  : result.unsafe_subarrays)++;

  // Algorithm 2's loop nest: ch -> ra -> cp -> ro -> su -> ba -> safe? -> co.
  // For a fixed row offset, all columns of that row are filled (row-buffer
  // hits, Step-1) and the walk rotates across banks (multi-bank overlap,
  // Step-2) before moving to the next subarray and only then the next row.
  auto& out = result.chunks;
  for (std::uint32_t ch = 0; ch < g.channels && out.size() < needed; ++ch)
    for (std::uint32_t ra = 0; ra < g.ranks_per_channel && out.size() < needed;
         ++ra)
      for (std::uint32_t cp = 0; cp < g.chips_per_rank && out.size() < needed;
           ++cp)
        for (std::uint32_t ro = 0;
             ro < g.rows_per_subarray && out.size() < needed; ++ro)
          for (std::uint32_t su = 0;
               su < g.subarrays_per_bank && out.size() < needed; ++su)
            for (std::uint32_t ba = 0;
                 ba < g.banks_per_chip && out.size() < needed; ++ba) {
              const dram::Address probe{ch, ra, cp, ba, su, ro, 0};
              const auto sid = dram::subarray_id(g, probe);
              if (profile.rate(sid, module_ber) > ber_threshold)
                continue;  // unsafe subarray: do not store weights here
              for (std::size_t b = 0; b < bursts_per_row && out.size() < needed;
                   ++b)
                out.push_back(dram::Address{
                    ch, ra, cp, ba, su, ro,
                    static_cast<std::uint32_t>(b * g.burst_columns)});
            }

  SPARKXD_REQUIRE(out.size() == needed,
                  "safe subarrays cannot hold the weight data at this BER_th");
  return result;
}

std::vector<error::ChunkPlacement> baseline_placement_layers(
    const dram::Geometry& g, const std::vector<std::size_t>& layer_weights) {
  SPARKXD_REQUIRE(!layer_weights.empty(), "need at least one layer");
  const std::size_t wpc = weights_per_chunk(g);
  // Whole chunks per layer: a layer whose weights end mid-chunk pads the
  // remainder, so the next layer starts chunk-aligned and the regions stay
  // disjoint.
  std::size_t total_chunks = 0;
  for (const std::size_t n : layer_weights)
    total_chunks += chunks_for_weights(g, n);
  const auto flat = baseline_placement(g, total_chunks * wpc);

  std::vector<error::ChunkPlacement> out(layer_weights.size());
  std::size_t cursor = 0;
  for (std::size_t l = 0; l < layer_weights.size(); ++l) {
    const std::size_t n = chunks_for_weights(g, layer_weights[l]);
    out[l].assign(flat.begin() + static_cast<std::ptrdiff_t>(cursor),
                  flat.begin() + static_cast<std::ptrdiff_t>(cursor + n));
    cursor += n;
  }
  return out;
}

namespace {

/// One attempt at placing a layer with Algorithm 2's loop nest, skipping
/// rows already holding earlier layers. Fills `lp.chunks` and the occupancy
/// diagnostics; returns false (leaving `used` untouched) when the safe
/// subarrays cannot hold the layer. On success the consumed rows are marked
/// in `used` (row granularity: partially filled rows are retired whole).
bool try_place_layer(const dram::Geometry& g,
                     const error::SubarrayProfile& profile, double module_ber,
                     std::size_t needed, mapping::LayerPlacement& lp,
                     std::vector<std::uint8_t>& used) {
  const std::size_t bursts_per_row = g.columns_per_row / g.burst_columns;
  lp.chunks.clear();
  lp.chunks.reserve(needed);
  lp.safe_subarrays = 0;
  lp.unsafe_subarrays = 0;
  for (std::uint64_t s = 0; s < profile.size(); ++s)
    (profile.rate(s, module_ber) <= lp.ber_th ? lp.safe_subarrays
                                              : lp.unsafe_subarrays)++;

  auto& out = lp.chunks;
  std::vector<std::uint64_t> rows;  // row keys consumed by this attempt
  for (std::uint32_t ch = 0; ch < g.channels && out.size() < needed; ++ch)
    for (std::uint32_t ra = 0; ra < g.ranks_per_channel && out.size() < needed;
         ++ra)
      for (std::uint32_t cp = 0; cp < g.chips_per_rank && out.size() < needed;
           ++cp)
        for (std::uint32_t ro = 0;
             ro < g.rows_per_subarray && out.size() < needed; ++ro)
          for (std::uint32_t su = 0;
               su < g.subarrays_per_bank && out.size() < needed; ++su)
            for (std::uint32_t ba = 0;
                 ba < g.banks_per_chip && out.size() < needed; ++ba) {
              const dram::Address probe{ch, ra, cp, ba, su, ro, 0};
              const auto sid = dram::subarray_id(g, probe);
              if (profile.rate(sid, module_ber) > lp.ber_th)
                continue;  // unsafe subarray at this layer's BER_th
              const std::uint64_t row_key = sid * g.rows_per_subarray + ro;
              if (used[row_key]) continue;  // row holds an earlier layer
              rows.push_back(row_key);
              for (std::size_t b = 0; b < bursts_per_row && out.size() < needed;
                   ++b)
                out.push_back(dram::Address{
                    ch, ra, cp, ba, su, ro,
                    static_cast<std::uint32_t>(b * g.burst_columns)});
            }

  if (out.size() < needed) return false;
  for (const auto key : rows) used[key] = 1;
  return true;
}

}  // namespace

std::vector<LayerPlacement> sparkxd_placement_layers(
    const dram::Geometry& g, const error::SubarrayProfile& profile,
    double module_ber, const std::vector<double>& thresholds,
    const std::vector<std::size_t>& layer_weights) {
  g.validate();
  SPARKXD_REQUIRE(!layer_weights.empty(), "need at least one layer");
  SPARKXD_REQUIRE(thresholds.size() == layer_weights.size(),
                  "need exactly one BER threshold per layer");

  std::vector<std::uint8_t> used(
      profile.size() * std::uint64_t{g.rows_per_subarray}, 0);
  std::vector<LayerPlacement> out(layer_weights.size());
  for (std::size_t l = 0; l < layer_weights.size(); ++l) {
    LayerPlacement& lp = out[l];
    lp.ber_th = thresholds[l];
    SPARKXD_REQUIRE(lp.ber_th >= 0.0, "BER_th must be non-negative");
    const std::size_t needed = chunks_for_weights(g, layer_weights[l]);
    // The pipeline's capacity-relax loop, per layer: when the learned
    // threshold is too strict to fit this layer at the operating BER, relax
    // it to the smallest feasible threshold and report that honestly.
    while (!try_place_layer(g, profile, module_ber, needed, lp, used)) {
      SPARKXD_REQUIRE(lp.safe_subarrays < profile.size(),
                      "DRAM module cannot hold the layer stack even with "
                      "every subarray safe");
      lp.capacity_relaxed = true;
      lp.ber_th = lp.ber_th == 0.0 ? module_ber * 0.125 : lp.ber_th * 2.0;
      SPARKXD_REQUIRE(lp.ber_th < 1.0,
                      "weights cannot fit even with every subarray unsafe");
    }
  }
  return out;
}

dram::AccessTrace streaming_read_trace(const dram::Geometry& g,
                                       const error::ChunkPlacement& placement,
                                       std::size_t n_weights,
                                       std::size_t passes) {
  const std::size_t used = chunks_for_weights(g, n_weights);
  SPARKXD_REQUIRE(used <= placement.size(),
                  "placement does not cover the weight data");
  SPARKXD_REQUIRE(passes >= 1, "need at least one pass");
  dram::AccessTrace trace;
  trace.reserve(used * passes);
  for (std::size_t p = 0; p < passes; ++p)
    for (std::size_t c = 0; c < used; ++c)
      trace.push_back({placement[c], dram::AccessType::kRead});
  return trace;
}

}  // namespace sparkxd::mapping
