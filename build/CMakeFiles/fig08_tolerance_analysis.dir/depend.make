# Empty dependencies file for fig08_tolerance_analysis.
# This may be replaced when dependencies are built.
