#include "common/table.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/contracts.hpp"

namespace sparkxd {

Table::Table(std::string name, std::vector<std::string> header)
    : name_(std::move(name)), header_(std::move(header)) {
  SPARKXD_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  SPARKXD_REQUIRE(row.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << '%';
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (const auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    os << '\n';
  };

  os << "== " << name_ << " ==\n";
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::emit() const {
  print(std::cout);
  std::cout.flush();
  if (const char* dir = std::getenv("SPARKXD_CSV_DIR")) {
    std::ofstream csv(std::string(dir) + "/" + name_ + ".csv");
    if (!csv) {
      std::cerr << "sparkxd: cannot write CSV for " << name_ << " in " << dir
                << '\n';
      return;
    }
    const auto write_row = [&csv](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) csv << ',';
        // Quote cells containing separators.
        if (cells[c].find_first_of(",\"\n") != std::string::npos) {
          csv << '"';
          for (const char ch : cells[c]) {
            if (ch == '"') csv << '"';
            csv << ch;
          }
          csv << '"';
        } else {
          csv << cells[c];
        }
      }
      csv << '\n';
    };
    write_row(header_);
    for (const auto& row : rows_) write_row(row);
  }
}

}  // namespace sparkxd
