// Event-engine density sweep: wall-clock of Network::infer with the dense
// transposed-gather reference versus the event-driven engine, across spike
// densities (max_rate sweep) plus the all-zero-image short-circuit.
//
// The event engine's contract is "bitwise-identical counts, strictly less
// work": it gathers only over set bitset words and skips whole (layer,
// timestep) updates that are provably the identity — empty input wave, LIF
// state exactly at rest. At the paper's default rate (0.30) waves are rarely
// empty and the engines should be near parity; as the rate drops the skip
// rate climbs and the event engine pulls ahead. Every timed leg checksums
// its spike counts, and a dense/event checksum mismatch exits non-zero —
// the speedup claim is only meaningful if the results are identical.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace sparkxd;

std::vector<float> random_image(std::size_t n, std::uint64_t seed,
                                double density) {
  Rng rng(seed);
  std::vector<float> img(n, 0.0f);
  for (auto& px : img)
    if (rng.uniform() < density) px = static_cast<float>(rng.uniform());
  return img;
}

/// Trained-ish network at the given Poisson rate: a couple of STDP passes so
/// thetas and weight rows are non-trivial, then frozen for inference.
snn::Network make_network(float max_rate, std::uint64_t seed,
                          std::vector<std::size_t> hidden = {}) {
  snn::NetworkConfig cfg;
  cfg.n_inputs = 784;
  cfg.n_neurons = 64;
  cfg.hidden_neurons = std::move(hidden);
  cfg.timesteps = 60;
  cfg.max_rate = max_rate;
  cfg.seed = seed;
  snn::Network net(cfg);
  Rng rng(seed);
  for (int pass = 0; pass < 2; ++pass)
    (void)net.process(random_image(784, seed + pass, 0.4), /*learn=*/true,
                      rng);
  net.sync_transpose();
  return net;
}

struct LegResult {
  double ms = 0.0;
  std::uint64_t checksum = 0;  ///< order-weighted spike-count sum
};

/// Times `reps` passes over the image batch with the given engine. Every
/// (rep, image) pair reseeds its Rng deterministically, so the dense and
/// event legs replay the exact same spike trains.
LegResult run_leg(const snn::Network& base, snn::EngineKind engine,
                  const std::vector<std::vector<float>>& images,
                  std::size_t reps, std::uint64_t seed) {
  snn::Network net = base;
  net.set_engine(engine);
  snn::InferenceState state(net);
  LegResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      Rng rng(hash_combine(seed, rep * images.size() + i));
      const auto counts = net.infer(state, images[i], rng);
      for (std::size_t n = 0; n < counts.size(); ++n)
        r.checksum += static_cast<std::uint64_t>(counts[n]) * (n + 1);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparkxd;
  const char* json_path = bench::json_out_path(argc, argv);
  bench::banner("event-driven inference — spike-density sweep",
                "event engine matches dense bitwise and wins wall-clock as "
                "spike density drops (empty waves get skipped outright)");

  const std::uint64_t seed = experiment_seed();
  const std::size_t reps = std::max<std::size_t>(scaled(24), 4);
  const std::size_t batch = 8;

  // Low-density images so low rates actually produce empty waves.
  std::vector<std::vector<float>> images;
  for (std::size_t i = 0; i < batch; ++i)
    images.push_back(random_image(784, seed + 100 + i, 0.15));
  const std::vector<std::vector<float>> black(
      batch, std::vector<float>(784, 0.0f));

  const std::vector<float> rates = {0.30f, 0.10f, 0.03f, 0.01f, 0.003f};

  Table t("event_engine",
          {"max_rate", "dense [ms]", "event [ms]", "speedup", "bit-equal"});
  bench::BenchReport report("event_engine");
  bool all_equal = true;
  double low_density_speedup = 0.0;

  for (const float rate : rates) {
    const auto net = make_network(rate, seed);
    // Warm-up legs (cache + page-in), then the timed pair.
    (void)run_leg(net, snn::EngineKind::kDense, images, 1, seed);
    (void)run_leg(net, snn::EngineKind::kEvent, images, 1, seed);
    const auto dense =
        run_leg(net, snn::EngineKind::kDense, images, reps, seed);
    const auto event =
        run_leg(net, snn::EngineKind::kEvent, images, reps, seed);
    const bool equal = dense.checksum == event.checksum;
    all_equal &= equal;
    const double speedup = dense.ms / std::max(event.ms, 1e-3);
    low_density_speedup = speedup;  // last row = lowest rate
    t.add_row({Table::num(rate, 3), Table::num(dense.ms, 2),
               Table::num(event.ms, 2), Table::num(speedup, 2),
               equal ? "yes" : "NO"});
    auto& phase = report.add_phase("rate_" + Table::num(rate, 3),
                                   reps * batch, event.ms * 1e6);
    phase.metrics.emplace_back("max_rate", rate);
    phase.metrics.emplace_back("dense_ms", dense.ms);
    phase.metrics.emplace_back("event_ms", event.ms);
    phase.metrics.emplace_back("speedup", speedup);
    phase.metrics.emplace_back("checksum_equal", equal ? 1.0 : 0.0);
  }

  // Deep stacks are where per-layer skipping bites hardest: hidden layers
  // sit exactly at rest until the first wave reaches them, and at low input
  // rates the upper layers stay silent for most (often all) of the sample.
  for (const float rate : {0.10f, 0.01f}) {
    const auto net = make_network(rate, seed, {64, 64});
    (void)run_leg(net, snn::EngineKind::kDense, images, 1, seed);
    (void)run_leg(net, snn::EngineKind::kEvent, images, 1, seed);
    const auto dense =
        run_leg(net, snn::EngineKind::kDense, images, reps, seed);
    const auto event =
        run_leg(net, snn::EngineKind::kEvent, images, reps, seed);
    const bool equal = dense.checksum == event.checksum;
    all_equal &= equal;
    const double speedup = dense.ms / std::max(event.ms, 1e-3);
    t.add_row({"deep " + Table::num(rate, 2), Table::num(dense.ms, 2),
               Table::num(event.ms, 2), Table::num(speedup, 2),
               equal ? "yes" : "NO"});
    auto& phase = report.add_phase("deep_rate_" + Table::num(rate, 2),
                                   reps * batch, event.ms * 1e6);
    phase.metrics.emplace_back("max_rate", rate);
    phase.metrics.emplace_back("dense_ms", dense.ms);
    phase.metrics.emplace_back("event_ms", event.ms);
    phase.metrics.emplace_back("speedup", speedup);
    phase.metrics.emplace_back("checksum_equal", equal ? 1.0 : 0.0);
  }

  // The degenerate extreme: an all-zero image short-circuits the whole
  // sample (no active pixels -> no Rng draws -> provable silence).
  {
    const auto net = make_network(0.30f, seed);
    const auto dense =
        run_leg(net, snn::EngineKind::kDense, black, reps, seed);
    const auto event =
        run_leg(net, snn::EngineKind::kEvent, black, reps, seed);
    const bool equal = dense.checksum == event.checksum;
    all_equal &= equal;
    const double speedup = dense.ms / std::max(event.ms, 1e-3);
    t.add_row({"all-zero", Table::num(dense.ms, 2), Table::num(event.ms, 2),
               Table::num(speedup, 2), equal ? "yes" : "NO"});
    auto& phase =
        report.add_phase("all_zero_image", reps * batch, event.ms * 1e6);
    phase.metrics.emplace_back("dense_ms", dense.ms);
    phase.metrics.emplace_back("event_ms", event.ms);
    phase.metrics.emplace_back("speedup", speedup);
    phase.metrics.emplace_back("checksum_equal", equal ? 1.0 : 0.0);
  }
  t.emit();

  std::printf("\nevent counts bit-identical to dense on every leg: %s\n",
              all_equal ? "yes" : "NO — EQUIVALENCE VIOLATION");
  std::printf("lowest-rate speedup: %.2fx (expect >1 once most waves are "
              "empty; ~1x at the paper's default rate 0.30)\n",
              low_density_speedup);
  if (json_path != nullptr && !report.write(json_path)) return 2;
  return all_equal ? 0 : 1;
}
