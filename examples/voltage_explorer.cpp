// Voltage explorer: what happens to an LPDDR3 module as you turn the
// supply-voltage knob? For each voltage this prints the derived reliable
// timings (from the array-voltage waveform), the module BER, the safe
// subarray count at a given tolerance, and the per-access energies — the
// full design space SparkXD navigates.
//
// Usage: voltage_explorer [ber_threshold]      (default 1e-3)

#include <cstdio>
#include <cstdlib>

#include "common/env.hpp"
#include "common/table.hpp"
#include "dram/geometry.hpp"
#include "energy/ber_model.hpp"
#include "energy/power_model.hpp"
#include "energy/voltage_model.hpp"
#include "error/subarray_profile.hpp"

int main(int argc, char** argv) {
  using namespace sparkxd;
  const double ber_th = argc > 1 ? std::atof(argv[1]) : 1e-3;
  std::printf("SparkXD voltage explorer — LPDDR3-1600 4Gb, BER_th=%.0e\n",
              ber_th);

  const energy::VoltageModel vm;
  const energy::BerModel bm;
  const energy::PowerModel pm;
  const auto geometry = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(geometry, experiment_seed());

  Table t("voltage_explorer",
          {"V [V]", "tRCD [ns]", "tRAS [ns]", "tRP [ns]", "BER",
           "safe subarrays", "E_hit [nJ]", "E_conflict [nJ]",
           "hit saving"});
  const double nominal_hit = pm.access_energy_nj(
      dram::RowBufferOutcome::kHit, energy::kNominalVdd,
      vm.derive_timings(energy::kNominalVdd));
  for (const double v : {1.350, 1.325, 1.300, 1.275, 1.250, 1.225, 1.200,
                         1.175, 1.150, 1.125, 1.100, 1.075, 1.050, 1.025}) {
    const auto timing = vm.derive_timings(v);
    const double ber = bm.ber(v);
    const auto safe = profile.count_safe(ber, ber_th);
    const double e_hit =
        pm.access_energy_nj(dram::RowBufferOutcome::kHit, v, timing);
    const double e_conf =
        pm.access_energy_nj(dram::RowBufferOutcome::kConflict, v, timing);
    t.add_row({Table::num(v, 3), Table::num(timing.t_rcd, 2),
               Table::num(timing.t_ras, 2), Table::num(timing.t_rp, 2),
               ber > 0 ? Table::sci(ber) : "0",
               std::to_string(safe) + "/" +
                   std::to_string(profile.size()),
               Table::num(e_hit, 2), Table::num(e_conf, 2),
               Table::pct(100.0 * (1.0 - e_hit / nominal_hit))});
  }
  t.emit();
  std::printf(
      "\nReading the table: every voltage step down buys per-access energy\n"
      "but raises the BER and shrinks the pool of subarrays that still meet\n"
      "BER_th. SparkXD picks the lowest voltage whose safe pool holds the\n"
      "model and whose BER the fault-aware-trained weights tolerate.\n");
  return 0;
}
