// sparkxd_run — scenario matrix CLI.
//
// Enumerates, filters, and executes the built-in evaluation scenarios
// (src/scenario) and serializes their PipelineReports to the stable JSON
// report format. The --digest output is the compact fixed-precision digest
// the golden-report regression harness locks down (tests/golden/), so CI can
// diff a fresh run against the checked-in digest.
//
//   sparkxd_run --list [--filter SUBSTR]
//   sparkxd_run --scenario NAME [--scenario NAME2 ...] [--threads N]
//               [--out report.json] [--digest]
//   sparkxd_run --filter smoke --threads 8 --out report.json
//   sparkxd_run --all
//   sparkxd_run --scenario NAME --export-artifact model.sxda
//
// --export-artifact additionally captures the serving artifact (trained
// model + operating point + frozen per-layer injection tables + placement)
// for sparkxd_serve; it requires exactly one selected scenario.
//
// Exit codes: 0 success, 2 bad usage / unknown scenario.

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "error/ecc_scheme.hpp"
#include "scenario/matrix.hpp"
#include "scenario/runner.hpp"
#include "serve/artifact.hpp"

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: sparkxd_run [options]\n"
      "  --list             list matching scenarios and exit\n"
      "  --scenario NAME    run this scenario (repeatable, exact name)\n"
      "  --filter SUBSTR    select scenarios whose name contains SUBSTR\n"
      "  --all              select every built-in scenario\n"
      "  --refresh SPEC     override the refresh policy of every selected\n"
      "                     scenario: off, nominal, or a multiplier like 8x\n"
      "                     (renames them with a -ref* suffix)\n"
      "  --layers SPEC      override the layer stack of every selected\n"
      "                     scenario: 'flat' (single layer) or hidden sizes\n"
      "                     like 64 or 64,32 (renames them with a -l*\n"
      "                     suffix)\n"
      "  --ecc SPEC         override the ECC scheme of every selected\n"
      "                     scenario: off, parity, secded, hsiao, or bch,\n"
      "                     optionally with a codeword payload size like\n"
      "                     bch:4096 (renames them with a -ecc-* suffix)\n"
      "  --engine SPEC      override the inference engine of every selected\n"
      "                     scenario: dense (bit-exact reference), event\n"
      "                     (bitwise-identical, skips silent work), or\n"
      "                     event-fx (fixed-point drive; renames them with\n"
      "                     a -eng-* suffix)\n"
      "  --layer-knobs      run the per-layer (voltage x refresh x ECC)\n"
      "                     operating-point search on every selected\n"
      "                     scenario (renames them with a -knobs suffix)\n"
      "  --threads N        worker threads (sets SPARKXD_THREADS)\n"
      "  --out FILE         write the JSON report to FILE ('-' = stdout)\n"
      "  --export-artifact FILE\n"
      "                     also save the serving artifact (for\n"
      "                     sparkxd_serve) to FILE; needs exactly one\n"
      "                     selected scenario\n"
      "  --artifact-voltage V\n"
      "                     capture the artifact at supply voltage V (must\n"
      "                     be on the scenario's grid; default: the lowest)\n"
      "  --digest           print golden digests of the results to stdout\n"
      "                     (mutually exclusive with --out -)\n"
      "  --timings          print per-phase wall-clock timings to stderr\n"
      "                     (never part of the JSON report or digests)\n"
      "  --help             this message\n"
      "\nWith no selection option, --list shows every scenario; running\n"
      "requires an explicit --scenario/--filter/--all selection.\n");
}

/// Compact layer-stack label: "1" for the flat network, else
/// "<depth>:<hidden sizes>", e.g. "3:64-48".
std::string layers_label(const sparkxd::scenario::Scenario& s) {
  if (s.hidden_neurons.empty()) return "1";
  std::string out = std::to_string(s.hidden_neurons.size() + 1) + ":";
  for (std::size_t i = 0; i < s.hidden_neurons.size(); ++i) {
    if (i != 0) out += "-";
    out += std::to_string(s.hidden_neurons[i]);
  }
  return out;
}

void list_scenarios(const std::vector<sparkxd::scenario::Scenario>& all) {
  std::printf("%-36s %-13s %8s %-8s %6s %-10s %-6s %-7s %-9s %s\n", "name",
              "task", "neurons", "layers", "volts", "geometry", "model",
              "refresh", "ecc", "description");
  for (const auto& s : all) {
    std::printf("%-36s %-13s %8zu %-8s %6zu %-10s %-6s %-7s %-9s %s\n",
                s.name.c_str(), sparkxd::data::to_string(s.task), s.n_neurons,
                layers_label(s).c_str(), s.voltages.size(),
                s.salp ? "salp" : "commodity",
                sparkxd::scenario::model_label(s.error_model.kind),
                sparkxd::scenario::refresh_label(s.refresh).c_str(),
                sparkxd::error::ecc_label(s.ecc).c_str(),
                s.description.c_str());
  }
}

/// Parses a --refresh SPEC: "off", "nominal", or "<multiplier>[x]" with a
/// multiplier >= 1. Exits with usage code 2 on anything else.
sparkxd::dram::RefreshPolicy parse_refresh_spec(const std::string& spec) {
  using sparkxd::dram::RefreshPolicy;
  if (spec == "off" || spec == "disabled") return RefreshPolicy::disabled();
  if (spec == "nominal" || spec == "1x") return RefreshPolicy::nominal();
  std::string digits = spec;
  if (!digits.empty() && digits.back() == 'x') digits.pop_back();
  char* end = nullptr;
  const double mult = std::strtod(digits.c_str(), &end);
  if (digits.empty() || end != digits.c_str() + digits.size() ||
      !std::isfinite(mult) || mult < 1.0) {
    std::fprintf(stderr,
                 "sparkxd_run: --refresh wants off, nominal, or a "
                 "multiplier >= 1 like 8x (got '%s')\n",
                 spec.c_str());
    std::exit(2);
  }
  return mult == 1.0 ? RefreshPolicy::nominal() : RefreshPolicy::reduced(mult);
}

/// Scenario-name-safe form of a refresh label ("8.5x" -> "8p5x").
std::string refresh_suffix(const sparkxd::dram::RefreshPolicy& policy) {
  std::string label = "-ref" + sparkxd::scenario::refresh_label(policy);
  for (auto& c : label)
    if (c == '.') c = 'p';
  return label;
}

/// Parses a --layers SPEC: "flat" (clear the hidden stack) or a comma list
/// of positive hidden sizes like "64" or "64,32". Exits with usage code 2
/// on anything else.
std::vector<std::size_t> parse_layers_spec(const std::string& spec) {
  // A hidden layer bigger than this is a typo, not a workload.
  constexpr long long kMaxHidden = 1 << 20;
  std::vector<std::size_t> hidden;
  if (spec == "flat") return hidden;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string part = spec.substr(pos, comma - pos);
    char* end = nullptr;
    errno = 0;
    const long long n = std::strtoll(part.c_str(), &end, 10);
    if (part.empty() || end != part.c_str() + part.size() || errno != 0 ||
        n < 1 || n > kMaxHidden) {
      std::fprintf(stderr,
                   "sparkxd_run: --layers wants 'flat' or a comma list of "
                   "positive hidden sizes like 64,32 (got '%s')\n",
                   spec.c_str());
      std::exit(2);
    }
    hidden.push_back(static_cast<std::size_t>(n));
    pos = comma + 1;
  }
  return hidden;
}

/// Parses an --ecc SPEC: "off" or a scheme name (parity/secded/hsiao/bch),
/// optionally with a ":<data_bits>" codeword payload size like "bch:4096".
/// Exits with usage code 2 on anything else (including sizes the scheme
/// rejects, e.g. secded with data_bits != 64).
sparkxd::error::EccSpec parse_ecc_spec(const std::string& spec) {
  using sparkxd::error::EccKind;
  sparkxd::error::EccSpec out;
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const auto fail = [&](const char* why) {
    std::fprintf(stderr,
                 "sparkxd_run: --ecc wants off, parity, secded, hsiao, or "
                 "bch, optionally with a payload size like bch:4096 "
                 "(got '%s': %s)\n",
                 spec.c_str(), why);
    std::exit(2);
  };
  if (kind == "off" || kind == "none") {
    if (colon != std::string::npos) fail("'off' takes no payload size");
    return out;
  } else if (kind == "parity") {
    out.kind = EccKind::kParity;
  } else if (kind == "secded") {
    out.kind = EccKind::kSecded;
  } else if (kind == "hsiao") {
    out.kind = EccKind::kHsiao;
  } else if (kind == "bch") {
    out.kind = EccKind::kBch;
  } else {
    fail("unknown scheme");
  }
  if (colon != std::string::npos) {
    const std::string part = spec.substr(colon + 1);
    char* end = nullptr;
    errno = 0;
    const long long bits = std::strtoll(part.c_str(), &end, 10);
    if (part.empty() || end != part.c_str() + part.size() || errno != 0 ||
        bits < 1)
      fail("payload size is not a positive bit count");
    out.data_bits = static_cast<std::size_t>(bits);
  }
  try {
    out.validate();
  } catch (const sparkxd::ContractViolation& e) {
    fail(e.what());
  }
  return out;
}

/// Scenario-name-safe suffix of an --ecc override ("-ecc-none",
/// "-ecc-bch4096b").
std::string ecc_suffix(const sparkxd::error::EccSpec& spec) {
  return "-ecc-" + sparkxd::error::ecc_label(spec);
}

/// Parses an --engine SPEC: dense, event, or event-fx. Exits with usage
/// code 2 on anything else.
sparkxd::snn::EngineKind parse_engine_spec(const std::string& spec) {
  using sparkxd::snn::EngineKind;
  if (spec == "dense") return EngineKind::kDense;
  if (spec == "event") return EngineKind::kEvent;
  if (spec == "event-fx" || spec == "eventfx") return EngineKind::kEventFx;
  std::fprintf(stderr,
               "sparkxd_run: --engine wants dense, event, or event-fx "
               "(got '%s')\n",
               spec.c_str());
  std::exit(2);
}

/// Scenario-name-safe suffix of an --engine override ("-eng-event").
std::string engine_suffix(sparkxd::snn::EngineKind engine) {
  return std::string("-eng-") + sparkxd::snn::to_string(engine);
}

/// Scenario-name-safe suffix of a --layers override ("-lflat", "-l64-32").
std::string layers_suffix(const std::vector<std::size_t>& hidden) {
  if (hidden.empty()) return "-lflat";
  std::string label = "-l";
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    if (i != 0) label += "-";
    label += std::to_string(hidden[i]);
  }
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparkxd;

  bool list = false, all = false, want_digest = false, want_timings = false;
  std::vector<std::string> names;
  std::vector<std::string> filters;
  std::string out_path;
  std::string artifact_path;
  bool have_artifact_voltage = false;
  double artifact_voltage = 0.0;
  bool override_refresh = false;
  dram::RefreshPolicy refresh_override;
  bool override_layers = false;
  std::vector<std::size_t> layers_override;
  bool override_ecc = false;
  error::EccSpec ecc_override;
  bool override_engine = false;
  snn::EngineKind engine_override = snn::EngineKind::kDense;
  bool enable_layer_knobs = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sparkxd_run: %s needs an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--digest") {
      want_digest = true;
    } else if (arg == "--timings") {
      want_timings = true;
    } else if (arg == "--scenario") {
      names.emplace_back(next("--scenario"));
    } else if (arg == "--filter") {
      filters.emplace_back(next("--filter"));
    } else if (arg == "--refresh") {
      refresh_override = parse_refresh_spec(next("--refresh"));
      override_refresh = true;
    } else if (arg == "--layers") {
      layers_override = parse_layers_spec(next("--layers"));
      override_layers = true;
    } else if (arg == "--ecc") {
      ecc_override = parse_ecc_spec(next("--ecc"));
      override_ecc = true;
    } else if (arg == "--engine") {
      engine_override = parse_engine_spec(next("--engine"));
      override_engine = true;
    } else if (arg == "--layer-knobs") {
      enable_layer_knobs = true;
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--export-artifact") {
      artifact_path = next("--export-artifact");
    } else if (arg == "--artifact-voltage") {
      const char* spec = next("--artifact-voltage");
      char* end = nullptr;
      artifact_voltage = std::strtod(spec, &end);
      if (end == spec || *end != '\0' || !std::isfinite(artifact_voltage) ||
          artifact_voltage <= 0.0) {
        std::fprintf(stderr,
                     "sparkxd_run: --artifact-voltage wants a positive "
                     "voltage like 1.025 (got '%s')\n",
                     spec);
        return 2;
      }
      have_artifact_voltage = true;
    } else if (arg == "--threads") {
      const char* n = next("--threads");
      if (std::atoll(n) < 1) {
        std::fprintf(stderr, "sparkxd_run: --threads wants a count >= 1\n");
        return 2;
      }
      ::setenv("SPARKXD_THREADS", n, 1);
    } else {
      std::fprintf(stderr, "sparkxd_run: unknown option '%s'\n",
                   std::string(arg).c_str());
      print_usage(stderr);
      return 2;
    }
  }

  if (want_digest && out_path == "-") {
    std::fprintf(stderr,
                 "sparkxd_run: --digest and --out - both write stdout and "
                 "would interleave; write the report to a file instead\n");
    return 2;
  }

  // --- Selection. ----------------------------------------------------------
  std::vector<scenario::Scenario> selected;
  const auto add_unique = [&](const scenario::Scenario& s) {
    for (const auto& have : selected)
      if (have.name == s.name) return;
    selected.push_back(s);
  };
  if (all) {
    for (const auto& s : scenario::builtin_scenarios()) add_unique(s);
  }
  for (const auto& name : names) {
    const auto* s = scenario::find_scenario(name);
    if (s == nullptr) {
      std::fprintf(stderr,
                   "sparkxd_run: unknown scenario '%s' (see --list)\n",
                   name.c_str());
      return 2;
    }
    add_unique(*s);
  }
  for (const auto& f : filters) {
    const auto matches = scenario::match_scenarios(f);
    if (matches.empty()) {
      std::fprintf(stderr, "sparkxd_run: --filter '%s' matches nothing\n",
                   f.c_str());
      return 2;
    }
    for (const auto& s : matches) add_unique(s);
  }

  // --refresh / --layers rewrite every selected scenario onto the requested
  // policy/stack; the -ref* / -l* name suffixes keep overridden results
  // distinguishable from the built-ins (and their golden digests) in any
  // downstream diff.
  const auto apply_overrides =
      [&](std::vector<scenario::Scenario>& scenarios) {
        if (override_refresh) {
          for (auto& s : scenarios) {
            s.refresh = refresh_override;
            s.name += refresh_suffix(refresh_override);
            s.description += " [refresh override]";
          }
        }
        if (override_layers) {
          for (auto& s : scenarios) {
            s.hidden_neurons = layers_override;
            s.name += layers_suffix(layers_override);
            s.description += " [layers override]";
          }
        }
        if (override_ecc) {
          for (auto& s : scenarios) {
            s.ecc = ecc_override;
            s.name += ecc_suffix(ecc_override);
            s.description += " [ecc override]";
          }
        }
        if (override_engine) {
          for (auto& s : scenarios) {
            s.engine = engine_override;
            s.name += engine_suffix(engine_override);
            s.description += " [engine override]";
          }
        }
        if (enable_layer_knobs) {
          for (auto& s : scenarios) {
            s.layer_knobs = true;
            s.name += "-knobs";
            s.description += " [layer-knobs override]";
          }
        }
      };

  if (list) {
    // With no selection, --list browses every built-in — still honouring a
    // --refresh override so the listing shows what a run would execute.
    auto shown = selected.empty() ? scenario::builtin_scenarios() : selected;
    apply_overrides(shown);
    list_scenarios(shown);
    return 0;
  }
  apply_overrides(selected);
  if (selected.empty()) {
    std::fprintf(stderr,
                 "sparkxd_run: nothing selected — use --scenario, --filter, "
                 "or --all (or --list to browse)\n");
    return 2;
  }
  if (!artifact_path.empty() && selected.size() != 1) {
    std::fprintf(stderr,
                 "sparkxd_run: --export-artifact captures one operating "
                 "point and needs exactly one selected scenario (got %zu)\n",
                 selected.size());
    return 2;
  }

  // --- Run. ----------------------------------------------------------------
  // Human-readable progress goes to stderr so --digest / --out - stdout
  // output stays machine-diffable.
  std::fprintf(stderr, "running %zu scenario(s) with %zu thread(s)\n",
               selected.size(), thread_count());
  std::vector<scenario::ScenarioResult> results;
  if (!artifact_path.empty()) {
    // Artifact export runs the pipeline directly so it can pass the capture
    // hook; the report (and thus --out/--digest) is bit-identical to the
    // run_scenarios path.
    const auto& s = selected.front();
    const auto cfg = s.pipeline_config();
    core::ArtifactState state;
    if (have_artifact_voltage) {
      for (std::size_t vi = 0; vi < cfg.voltages.size(); ++vi)
        if (std::fabs(cfg.voltages[vi] - artifact_voltage) < 1e-9)
          state.voltage_index = vi;
      if (state.voltage_index == core::ArtifactState::npos) {
        std::fprintf(stderr,
                     "sparkxd_run: --artifact-voltage %.4f is not on the "
                     "voltage grid of scenario '%s'\n",
                     artifact_voltage, s.name.c_str());
        return 2;
      }
    }
    results.push_back({s, core::run_pipeline(cfg, &state)});
    const auto artifact = serve::make_artifact(s.name, std::move(state));
    serve::save_artifact(artifact, artifact_path);
    std::fprintf(stderr,
                 "wrote serving artifact '%s' (V=%.4f, module BER=%.3e)\n",
                 artifact_path.c_str(), artifact.v_supply,
                 artifact.module_ber);
  } else {
    results = scenario::run_scenarios(selected);
  }
  for (const auto& r : results) {
    const auto& low = r.report.per_voltage.back();
    std::fprintf(stderr,
                 "  %-28s baseline=%.3f improved=%.3f ber_th=%.1e "
                 "saving@%.3fV=%.1f%% speedup=%.2fx\n",
                 r.scenario.name.c_str(), r.report.baseline_accuracy,
                 r.report.improved_accuracy, r.report.ber_th, low.v_supply,
                 low.saving_pct, low.speedup);
  }
  if (want_timings) {
    // Wall-clock phase breakdown; stderr only — host-dependent numbers must
    // never reach the machine-diffable JSON/digest streams.
    std::fprintf(stderr, "phase timings [ms]:\n");
    std::fprintf(stderr, "  %-28s %10s %16s %10s %10s\n", "scenario", "train",
                 "fault_training", "sweep", "total");
    for (const auto& r : results) {
      const auto& t = r.report.timings;
      std::fprintf(stderr, "  %-28s %10.1f %16.1f %10.1f %10.1f\n",
                   r.scenario.name.c_str(), t.train_ns / 1e6,
                   t.fault_training_ns / 1e6, t.sweep_ns / 1e6,
                   t.total_ns / 1e6);
    }
  }

  // --- Serialize. ----------------------------------------------------------
  if (!out_path.empty()) {
    const std::string doc = scenario::to_json(results);
    if (out_path == "-") {
      std::fwrite(doc.data(), 1, doc.size(), stdout);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "sparkxd_run: cannot open '%s'\n",
                     out_path.c_str());
        return 2;
      }
      out << doc;
      out.close();
      if (!out) {
        std::fprintf(stderr, "sparkxd_run: write to '%s' failed\n",
                     out_path.c_str());
        return 2;
      }
    }
  }
  if (want_digest) {
    for (const auto& r : results) std::fputs(scenario::digest(r).c_str(), stdout);
  }
  return 0;
}
