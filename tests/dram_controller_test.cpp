// Tests for the DRAM controller: row-buffer classification, command counts,
// timing behaviour (tRCD/tRAS/tRP/tCL), multi-bank overlap, and arrival-rate
// limiting.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "dram/controller.hpp"

namespace sparkxd::dram {
namespace {

Geometry geom() { return Geometry::lpddr3_4gb(); }
TimingParams timing() { return TimingParams::lpddr3_1600(); }

Access rd(std::uint32_t bank, std::uint32_t subarray, std::uint32_t row,
          std::uint32_t column) {
  return {Address{0, 0, 0, bank, subarray, row, column}, AccessType::kRead};
}

TEST(Controller, FirstAccessIsMiss) {
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0)});
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.activates, 1u);
  EXPECT_EQ(stats.reads, 1u);
}

TEST(Controller, SameRowIsHit) {
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0), rd(0, 0, 0, 8), rd(0, 0, 0, 16)});
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.activates, 1u);
}

TEST(Controller, DifferentRowSameBankIsConflict) {
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0), rd(0, 0, 1, 0)});
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_EQ(stats.activates, 2u);
  // Conflict precharge + the trailing close of the open row.
  EXPECT_EQ(stats.precharges, 2u);
}

TEST(Controller, DifferentSubarraySameBankIsConflict) {
  // Subarrays share the bank-level row buffer in commodity DRAM.
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0), rd(0, 1, 0, 0)});
  EXPECT_EQ(stats.conflicts, 1u);
}

TEST(Controller, DifferentBanksAreIndependentMisses) {
  Controller c(geom(), timing());
  const auto stats = c.run({rd(0, 0, 0, 0), rd(1, 0, 0, 0), rd(0, 0, 0, 8)});
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);  // bank 0 row still open
}

TEST(Controller, SingleAccessLatencyIsRcdPlusClPlusBurst) {
  Controller c(geom(), timing());
  const auto t = timing();
  const auto stats = c.run({rd(0, 0, 0, 0)});
  EXPECT_NEAR(stats.total_time_ns, t.t_rcd + t.t_cl + t.t_burst, 1e-9);
}

TEST(Controller, StreamingHitsAreBusLimited) {
  Controller c(geom(), timing());
  const auto t = timing();
  AccessTrace trace;
  const std::uint32_t bursts = 32;
  for (std::uint32_t b = 0; b < bursts; ++b) trace.push_back(rd(0, 0, 0, b * 8));
  const auto stats = c.run(trace);
  // First access pays tRCD + tCL, the rest stream at one burst each.
  EXPECT_NEAR(stats.total_time_ns,
              t.t_rcd + t.t_cl + bursts * t.t_burst, 1e-6);
}

TEST(Controller, ConflictPaysRowCycle) {
  Controller c(geom(), timing());
  const auto t = timing();
  const auto stats = c.run({rd(0, 0, 0, 0), rd(0, 0, 1, 0)});
  // Second access: PRE waits for tRAS after the first ACT, then tRP + tRCD.
  const double expected =
      t.t_ras + t.t_rp + t.t_rcd + t.t_cl + t.t_burst;
  EXPECT_NEAR(stats.total_time_ns, expected, 1e-6);
}

TEST(Controller, MultiBankOverlapHidesActivation) {
  // Interleaving rows across banks must be faster than cycling rows within
  // one bank — the Fig. 9b multi-bank burst benefit.
  Controller c(geom(), timing());
  AccessTrace same_bank, interleaved;
  const std::uint32_t rows = 8;
  const std::uint32_t bursts_per_row = 16;
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t b = 0; b < bursts_per_row; ++b) {
      same_bank.push_back(rd(0, 0, r, b * 8));
      interleaved.push_back(rd(r % 8, 0, r / 8, b * 8));
    }
  const auto t_same = c.run(same_bank).total_time_ns;
  const auto t_inter = c.run(interleaved).total_time_ns;
  EXPECT_LT(t_inter, t_same * 0.95);
}

TEST(Controller, RrdSpacingBetweenActivates) {
  Controller c(geom(), timing());
  const auto t = timing();
  // Two immediate ACTs to different banks must be spaced by tRRD; the
  // second access's data lands tRRD later than a lone access... measure via
  // makespan of two misses to different banks.
  const auto stats = c.run({rd(0, 0, 0, 0), rd(1, 0, 0, 0)});
  const double lone = t.t_rcd + t.t_cl + t.t_burst;
  EXPECT_GE(stats.total_time_ns, lone + t.t_rrd - 1e-9);
}

TEST(Controller, ArrivalIntervalStretchesMakespan) {
  Controller c(geom(), timing());
  AccessTrace trace;
  for (std::uint32_t b = 0; b < 64; ++b) trace.push_back(rd(0, 0, 0, b * 8));
  const auto fast = c.run(trace, 0.0);
  const auto slow = c.run(trace, 20.0);
  EXPECT_GT(slow.total_time_ns, fast.total_time_ns);
  EXPECT_GE(slow.total_time_ns, 63 * 20.0);
}

TEST(Controller, ArrivalIntervalDoesNotChangeClassification) {
  Controller c(geom(), timing());
  AccessTrace trace{rd(0, 0, 0, 0), rd(0, 0, 0, 8), rd(0, 0, 1, 0)};
  const auto a = c.run(trace, 0.0);
  const auto b = c.run(trace, 50.0);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.conflicts, b.conflicts);
}

TEST(Controller, RunResetsStateBetweenCalls) {
  Controller c(geom(), timing());
  (void)c.run({rd(0, 0, 0, 0)});
  const auto stats = c.run({rd(0, 0, 0, 0)});
  EXPECT_EQ(stats.misses, 1u);  // bank idle again, not a hit
}

TEST(Controller, ClassifyMatchesRunOutcomes) {
  Controller c(geom(), timing());
  (void)c.run({rd(0, 0, 0, 0)});
  // After run(), bank 0 row 0 is open (classify uses current state).
  EXPECT_EQ(c.classify(rd(0, 0, 0, 8)), RowBufferOutcome::kHit);
  EXPECT_EQ(c.classify(rd(0, 0, 1, 0)), RowBufferOutcome::kConflict);
  EXPECT_EQ(c.classify(rd(1, 0, 0, 0)), RowBufferOutcome::kMiss);
}

TEST(Controller, StatsAccounting) {
  Controller c(geom(), timing());
  AccessTrace trace;
  for (std::uint32_t b = 0; b < 10; ++b) trace.push_back(rd(0, 0, 0, b * 8));
  trace.push_back({Address{0, 0, 0, 1, 0, 0, 0}, AccessType::kWrite});
  const auto stats = c.run(trace);
  EXPECT_EQ(stats.accesses, 11u);
  EXPECT_EQ(stats.reads, 10u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.hits + stats.misses + stats.conflicts, stats.accesses);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 9.0 / 11.0);
}

TEST(Controller, ThroughputHelper) {
  TraceStats s;
  s.accesses = 10;
  s.total_time_ns = 100.0;
  EXPECT_DOUBLE_EQ(s.bytes_per_ns(32), 3.2);
  TraceStats empty;
  EXPECT_EQ(empty.bytes_per_ns(32), 0.0);
  EXPECT_EQ(empty.hit_rate(), 0.0);
}

TEST(Controller, RejectsNegativeArrivalInterval) {
  Controller c(geom(), timing());
  EXPECT_THROW(c.run({rd(0, 0, 0, 0)}, -1.0), ContractViolation);
}

TEST(Controller, EmptyTrace) {
  Controller c(geom(), timing());
  const auto stats = c.run({});
  EXPECT_EQ(stats.accesses, 0u);
  EXPECT_EQ(stats.total_time_ns, 0.0);
}

class SlowTimings : public ::testing::TestWithParam<double> {};

TEST_P(SlowTimings, LongerTimingsNeverSpeedUpConflicts) {
  // Property: scaling tRCD/tRAS/tRP up (reduced voltage) can only increase
  // the makespan of a conflict-heavy trace.
  auto slow = timing();
  const double k = GetParam();
  slow.t_rcd *= k;
  slow.t_ras *= k;
  slow.t_rp *= k;
  AccessTrace trace;
  for (std::uint32_t r = 0; r < 6; ++r) trace.push_back(rd(0, 0, r, 0));
  Controller base(geom(), timing());
  Controller scaled(geom(), slow);
  EXPECT_GE(scaled.run(trace).total_time_ns,
            base.run(trace).total_time_ns - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ScaleFactors, SlowTimings,
                         ::testing::Values(1.0, 1.2, 1.5, 2.0));


// ------------------------------------------------- subarray-level parallelism

TEST(Salp, CrossSubarraySwitchIsMissNotConflict) {
  // With per-subarray row buffers (SALP), moving between subarrays of one
  // bank does not evict the other subarray's open row.
  Controller salp(geom(), timing(), /*subarray_level_parallelism=*/true);
  const auto stats =
      salp.run({rd(0, 0, 0, 0), rd(0, 1, 0, 0), rd(0, 0, 0, 8)});
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.conflicts, 0u);
  EXPECT_EQ(stats.hits, 1u);  // subarray 0's row is still open
}

TEST(Salp, CommodityModeConflictsOnSameTrace) {
  Controller plain(geom(), timing(), /*subarray_level_parallelism=*/false);
  const auto stats =
      plain.run({rd(0, 0, 0, 0), rd(0, 1, 0, 0), rd(0, 0, 0, 8)});
  EXPECT_EQ(stats.conflicts, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(Salp, NeverSlowerThanCommodity) {
  // Property: SALP only removes PRE+ACT work, so any trace is at least as
  // fast as on the commodity controller.
  Controller salp(geom(), timing(), true);
  Controller plain(geom(), timing(), false);
  Rng rng(77);
  AccessTrace trace;
  for (int i = 0; i < 500; ++i)
    trace.push_back(rd(static_cast<std::uint32_t>(rng.index(8)),
                       static_cast<std::uint32_t>(rng.index(4)),
                       static_cast<std::uint32_t>(rng.index(8)),
                       static_cast<std::uint32_t>(rng.index(64)) * 8));
  const auto t_salp = salp.run(trace).total_time_ns;
  const auto t_plain = plain.run(trace).total_time_ns;
  EXPECT_LE(t_salp, t_plain * 1.0001);
}

TEST(Salp, SameRowSameSubarrayStillHits) {
  Controller salp(geom(), timing(), true);
  const auto stats = salp.run({rd(0, 3, 5, 0), rd(0, 3, 5, 8)});
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

// ----------------------------------------------------- randomized properties

/// Random trace spanning a few banks/subarrays/rows so every row-buffer
/// outcome class occurs.
AccessTrace random_trace(std::uint64_t seed, std::size_t n = 400) {
  Rng rng(seed);
  AccessTrace trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    trace.push_back(rd(static_cast<std::uint32_t>(rng.index(8)),
                       static_cast<std::uint32_t>(rng.index(4)),
                       static_cast<std::uint32_t>(rng.index(8)),
                       static_cast<std::uint32_t>(rng.index(64)) * 8));
  return trace;
}

class RandomTraces : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraces, SalpNeverProducesMoreConflictsThanCommodity) {
  // A SALP conflict needs the *same subarray* open on a different row; in
  // commodity DRAM that access also conflicts (the shared bank buffer holds
  // a different bank-level row). So per access — and hence in aggregate —
  // SALP's conflicts are a subset of commodity's, and its hits a superset.
  const auto trace = random_trace(GetParam());
  Controller salp(geom(), timing(), true);
  Controller plain(geom(), timing(), false);
  const auto s = salp.run(trace);
  const auto p = plain.run(trace);
  EXPECT_LE(s.conflicts, p.conflicts);
  EXPECT_GE(s.hits, p.hits);
  EXPECT_EQ(s.accesses, p.accesses);
  EXPECT_EQ(s.hits + s.misses + s.conflicts, s.accesses);
}

TEST_P(RandomTraces, RunResetsStateBetweenCalls) {
  // After any prior trace, run() must behave exactly like a fresh
  // controller: identical classification counts, commands, and makespan.
  for (const bool salp_mode : {false, true}) {
    Controller reused(geom(), timing(), salp_mode);
    Controller fresh(geom(), timing(), salp_mode);
    (void)reused.run(random_trace(GetParam() + 1000));  // dirty the state
    const auto trace = random_trace(GetParam());
    const auto a = reused.run(trace, 3.0);
    const auto b = fresh.run(trace, 3.0);
    EXPECT_EQ(a.hits, b.hits) << "salp=" << salp_mode;
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.conflicts, b.conflicts);
    EXPECT_EQ(a.activates, b.activates);
    EXPECT_EQ(a.precharges, b.precharges);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.total_time_ns, b.total_time_ns);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraces,
                         ::testing::Values(1u, 7u, 42u, 1337u, 9001u));

// ------------------------------------------------------------------ refresh

TEST(Refresh, PolicyValidation) {
  const auto t = timing();
  EXPECT_NO_THROW(RefreshPolicy::disabled().validate(t));
  EXPECT_NO_THROW(RefreshPolicy::nominal().validate(t));
  EXPECT_NO_THROW(RefreshPolicy::reduced(16.0).validate(t));
  EXPECT_THROW(RefreshPolicy::reduced(0.5).validate(t), ContractViolation);
  EXPECT_THROW(RefreshPolicy::reduced(
                   std::numeric_limits<double>::infinity()).validate(t),
               ContractViolation);
  auto broken = t;
  broken.t_rfc = broken.t_refi + 1.0;  // REF longer than the interval
  EXPECT_THROW(RefreshPolicy::nominal().validate(broken), ContractViolation);
}

TEST(Refresh, EffectiveInterval) {
  const auto t = timing();
  EXPECT_DOUBLE_EQ(RefreshPolicy::nominal().effective_refi_ns(t), t.t_refi);
  EXPECT_DOUBLE_EQ(RefreshPolicy::reduced(8.0).effective_refi_ns(t),
                   8.0 * t.t_refi);
}

TEST(Refresh, NextOutsideRefreshWindowArithmetic) {
  const auto t = timing();
  Controller c(geom(), t, false, RefreshPolicy::nominal());
  // Before the first REF: identity.
  EXPECT_DOUBLE_EQ(c.next_outside_refresh(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.next_outside_refresh(t.t_refi - 1.0), t.t_refi - 1.0);
  // Inside window k = 1: pushed to its end.
  EXPECT_DOUBLE_EQ(c.next_outside_refresh(t.t_refi), t.t_refi + t.t_rfc);
  EXPECT_DOUBLE_EQ(c.next_outside_refresh(t.t_refi + t.t_rfc / 2),
                   t.t_refi + t.t_rfc);
  // At the window end: open again.
  EXPECT_DOUBLE_EQ(c.next_outside_refresh(t.t_refi + t.t_rfc),
                   t.t_refi + t.t_rfc);
  // Disabled refresh: identity everywhere.
  Controller off(geom(), t);
  EXPECT_DOUBLE_EQ(off.next_outside_refresh(t.t_refi), t.t_refi);
}

TEST(Refresh, WindowBoundaryTieBreakRefWins) {
  // A command landing EXACTLY on a window start k*tREFI_eff belongs to the
  // REF — it must be pushed behind the window no matter how t / tREFI_eff
  // rounds. The old floor()-only arithmetic made the outcome depend on
  // whether k*refi / refi rounded to k or to just under k, so the schedule
  // at an exact boundary flipped with the multiplier's binary
  // representation. Sweep FP-unfriendly multipliers and many k to pin the
  // tie-break.
  const auto t = timing();
  for (const double m : {1.0, 1.7, 2.0, 3.0, 7.0, 8.0, 13.7}) {
    const RefreshPolicy policy =
        m == 1.0 ? RefreshPolicy::nominal() : RefreshPolicy::reduced(m);
    Controller c(geom(), t, false, policy);
    const double refi = policy.effective_refi_ns(t);
    for (int k = 1; k <= 500; ++k) {
      const double boundary = static_cast<double>(k) * refi;
      // On the boundary: REF wins, command waits out tRFC.
      EXPECT_DOUBLE_EQ(c.next_outside_refresh(boundary), boundary + t.t_rfc)
          << "m=" << m << " k=" << k;
      // At the window end: open again (identity).
      EXPECT_DOUBLE_EQ(c.next_outside_refresh(boundary + t.t_rfc),
                       boundary + t.t_rfc)
          << "m=" << m << " k=" << k;
      // Mid-window: pushed to the end.
      EXPECT_DOUBLE_EQ(c.next_outside_refresh(boundary + t.t_rfc * 0.5),
                       boundary + t.t_rfc)
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(Refresh, StallsAccessLandingInsideTheWindow) {
  const auto t = timing();
  Controller c(geom(), t, false, RefreshPolicy::nominal());
  // Second access arrives just as REF #1 starts: its ACT waits out tRFC.
  const auto stats = c.run({rd(0, 0, 0, 0), rd(1, 0, 0, 0)}, t.t_refi);
  const double expected =
      t.t_refi + t.t_rfc + t.t_rcd + t.t_cl + t.t_burst;
  EXPECT_NEAR(stats.total_time_ns, expected, 1e-9);
  EXPECT_EQ(stats.refreshes, 1u);
}

TEST(Refresh, NominalCadenceSlowsLongTracesAndCountsRefs) {
  AccessTrace trace;
  for (std::uint32_t r = 0; r < 64; ++r)
    for (std::uint32_t b = 0; b < 64; ++b) trace.push_back(rd(0, 0, r, b * 8));
  Controller off(geom(), timing());
  Controller on(geom(), timing(), false, RefreshPolicy::nominal());
  Controller relaxed(geom(), timing(), false, RefreshPolicy::reduced(8.0));
  const auto s_off = off.run(trace);
  const auto s_on = on.run(trace);
  const auto s_relaxed = relaxed.run(trace);
  EXPECT_EQ(s_off.refreshes, 0u);
  EXPECT_GT(s_on.refreshes, 0u);
  EXPECT_GT(s_on.total_time_ns, s_off.total_time_ns);
  // Relaxing the cadence recovers most of the stall time and cuts REFs.
  EXPECT_LT(s_relaxed.refreshes, s_on.refreshes);
  EXPECT_LE(s_relaxed.total_time_ns, s_on.total_time_ns);
  // Classification is purely address-driven: identical with refresh on.
  EXPECT_EQ(s_on.hits, s_off.hits);
  EXPECT_EQ(s_on.misses, s_off.misses);
  EXPECT_EQ(s_on.conflicts, s_off.conflicts);
}

// ---------------------------------------------------- per-region refresh

TEST(RegionRefresh, EmptyPlanMatchesSinglePolicyBitForBit) {
  for (const bool salp_mode : {false, true}) {
    for (const RefreshPolicy policy :
         {RefreshPolicy::disabled(), RefreshPolicy::nominal(),
          RefreshPolicy::reduced(8.0)}) {
      Controller single(geom(), timing(), salp_mode, policy);
      Controller regions(geom(), timing(), salp_mode,
                         RefreshRegions{policy, {}});
      EXPECT_EQ(regions.region_count(), 0u);
      const auto trace = random_trace(77u, 600);
      std::vector<AccessTiming> tl_a, tl_b;
      const auto a = single.run(trace, 5.0, &tl_a);
      const auto b = regions.run(trace, 5.0, &tl_b);
      EXPECT_EQ(a.refreshes, b.refreshes);
      EXPECT_EQ(a.total_time_ns, b.total_time_ns);  // exact
      EXPECT_TRUE(b.region_refreshes.empty());
      ASSERT_EQ(tl_a.size(), tl_b.size());
      for (std::size_t i = 0; i < tl_a.size(); ++i) {
        EXPECT_EQ(tl_a[i].cmd_ns, tl_b[i].cmd_ns);
        EXPECT_EQ(tl_a[i].data_end_ns, tl_b[i].data_end_ns);
      }
    }
  }
}

TEST(RegionRefresh, CommandsDodgeOwnRegionCadenceOnly) {
  const auto g = geom();
  const auto t = timing();
  const Access fast_row = rd(0, 0, 0, 0);   // region with nominal cadence
  const Access slow_row = rd(1, 0, 0, 0);   // region with 8x relaxed cadence
  RefreshRegions plan;
  plan.base = RefreshPolicy::disabled();
  plan.regions.push_back(
      {RefreshPolicy::nominal(), {region_row_id(g, fast_row.addr)}});
  plan.regions.push_back(
      {RefreshPolicy::reduced(8.0), {region_row_id(g, slow_row.addr)}});

  // Second access arrives exactly at t_refi. In the relaxed region the
  // first REF is 8*t_refi away — no stall; in the nominal region the
  // access lands on REF #1 and waits out tRFC.
  Controller c1(g, t, false, plan);
  const auto relaxed = c1.run({fast_row, slow_row}, t.t_refi);
  EXPECT_NEAR(relaxed.total_time_ns,
              t.t_refi + t.t_rcd + t.t_cl + t.t_burst, 1e-9);

  Controller c2(g, t, false, plan);
  const auto stalled = c2.run({slow_row, fast_row}, t.t_refi);
  EXPECT_NEAR(stalled.total_time_ns,
              t.t_refi + t.t_rfc + t.t_rcd + t.t_cl + t.t_burst, 1e-9);
}

TEST(RegionRefresh, RegionRefCountsFollowOwnCadence) {
  const auto g = geom();
  const auto t = timing();
  AccessTrace trace;
  for (std::uint32_t r = 0; r < 32; ++r)
    for (std::uint32_t b = 0; b < 32; ++b) trace.push_back(rd(0, 0, r, b * 8));
  RefreshRegions plan;
  plan.base = RefreshPolicy::disabled();
  std::vector<std::uint64_t> rows_a, rows_b;
  for (std::uint32_t r = 0; r < 16; ++r)
    rows_a.push_back(region_row_id(g, rd(0, 0, r, 0).addr));
  for (std::uint32_t r = 16; r < 32; ++r)
    rows_b.push_back(region_row_id(g, rd(0, 0, r, 0).addr));
  plan.regions.push_back({RefreshPolicy::nominal(), rows_a});
  plan.regions.push_back({RefreshPolicy::reduced(4.0), rows_b});

  Controller c(g, t, false, plan);
  ASSERT_EQ(c.region_count(), 2u);
  EXPECT_DOUBLE_EQ(c.region_refi_ns(0), t.t_refi);
  EXPECT_DOUBLE_EQ(c.region_refi_ns(1), 4.0 * t.t_refi);
  const auto stats = c.run(trace, 25.0);
  EXPECT_EQ(stats.refreshes, 0u);  // base policy is disabled
  ASSERT_EQ(stats.region_refreshes.size(), 2u);
  EXPECT_EQ(stats.region_refreshes[0],
            static_cast<std::uint64_t>(
                std::floor(stats.total_time_ns / t.t_refi)));
  EXPECT_EQ(stats.region_refreshes[1],
            static_cast<std::uint64_t>(
                std::floor(stats.total_time_ns / (4.0 * t.t_refi))));
  EXPECT_GT(stats.region_refreshes[0], 0u);
  EXPECT_GT(stats.region_refreshes[0], stats.region_refreshes[1]);
}

TEST(RegionRefresh, OverlappingRegionRowSetsThrow) {
  const auto g = geom();
  const std::uint64_t shared = region_row_id(g, rd(0, 0, 3, 0).addr);
  RefreshRegions plan;
  plan.regions.push_back({RefreshPolicy::nominal(), {shared}});
  plan.regions.push_back({RefreshPolicy::reduced(2.0), {shared}});
  EXPECT_THROW(Controller(g, timing(), false, plan), ContractViolation);
}

// --------------------------------------- randomized refresh timing invariants

class RefreshProperties
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(RefreshProperties, TimingInvariantsHoldWithRefreshOn) {
  const auto [seed, multiplier] = GetParam();
  const auto t = timing();
  const RefreshPolicy policy = multiplier == 1.0
                                   ? RefreshPolicy::nominal()
                                   : RefreshPolicy::reduced(multiplier);
  for (const bool salp_mode : {false, true}) {
    Controller c(geom(), t, salp_mode, policy);
    const auto trace = random_trace(seed, 2000);
    std::vector<AccessTiming> timeline;
    // A mild arrival interval spreads the trace past several REF windows
    // (makespan >= 2000 x 25 ns = 50 us > 4 x tREFI).
    const auto stats = c.run(trace, 25.0, &timeline);
    ASSERT_EQ(timeline.size(), trace.size());

    const double refi = policy.effective_refi_ns(t);
    const auto inside_window = [&](double at) {
      const double k = std::floor(at / refi);
      return k >= 1.0 && at >= k * refi && at < k * refi + t.t_rfc;
    };
    double prev_end = 0.0;
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      const auto& a = timeline[i];
      // Completion times are monotonically non-decreasing (the shared bus
      // serializes bursts in trace order).
      EXPECT_GE(a.data_end_ns, prev_end) << "access " << i;
      prev_end = a.data_end_ns;
      // No command is serviced inside a [REF, REF + tRFC) window.
      if (a.pre_ns >= 0.0) {
        EXPECT_FALSE(inside_window(a.pre_ns)) << "PRE of access " << i;
      }
      if (a.act_ns >= 0.0) {
        EXPECT_FALSE(inside_window(a.act_ns)) << "ACT of access " << i;
      }
      EXPECT_FALSE(inside_window(a.cmd_ns)) << "RD of access " << i;
      EXPECT_NEAR(a.data_start_ns, a.cmd_ns + t.t_cl, 1e-9);
      EXPECT_NEAR(a.data_end_ns, a.data_start_ns + t.t_burst, 1e-9);
    }
    // The REF counter matches the windows the makespan spans.
    EXPECT_EQ(stats.refreshes,
              static_cast<std::uint64_t>(
                  std::floor(stats.total_time_ns / refi)));
    EXPECT_GT(stats.refreshes, 0u) << "trace too short to exercise refresh";
  }
}

TEST_P(RefreshProperties, DisabledPolicyReproducesRefreshFreeRunBitForBit) {
  const auto [seed, multiplier] = GetParam();
  (void)multiplier;
  for (const bool salp_mode : {false, true}) {
    Controller legacy(geom(), timing(), salp_mode);  // pre-refresh ctor
    Controller off(geom(), timing(), salp_mode, RefreshPolicy::disabled());
    const auto trace = random_trace(seed, 500);
    std::vector<AccessTiming> tl_legacy, tl_off;
    const auto a = legacy.run(trace, 3.0, &tl_legacy);
    const auto b = off.run(trace, 3.0, &tl_off);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.conflicts, b.conflicts);
    EXPECT_EQ(a.activates, b.activates);
    EXPECT_EQ(a.precharges, b.precharges);
    EXPECT_EQ(a.refreshes, 0u);
    EXPECT_EQ(b.refreshes, 0u);
    EXPECT_EQ(a.total_time_ns, b.total_time_ns);  // exact, not approximate
    ASSERT_EQ(tl_legacy.size(), tl_off.size());
    for (std::size_t i = 0; i < tl_legacy.size(); ++i) {
      EXPECT_EQ(tl_legacy[i].data_start_ns, tl_off[i].data_start_ns);
      EXPECT_EQ(tl_legacy[i].data_end_ns, tl_off[i].data_end_ns);
      EXPECT_EQ(tl_legacy[i].act_ns, tl_off[i].act_ns);
      EXPECT_EQ(tl_legacy[i].pre_ns, tl_off[i].pre_ns);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMultipliers, RefreshProperties,
    ::testing::Combine(::testing::Values(3u, 19u, 271u, 6553u),
                       ::testing::Values(1.0, 4.0)));

// ------------------------------------------- classify() vs run() differential

class ClassifyDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifyDifferential, ClassifyAgreesWithRunForHeadOfTraceProbes) {
  // For a random single-access probe X against the state a prefix trace T
  // leaves behind, classify(X) must name exactly the outcome run() records
  // for X when it is appended to T — on commodity and SALP organizations,
  // with refresh off and on (refresh stalls time but never reclassifies).
  Rng rng(GetParam());
  const auto prefix = random_trace(GetParam(), 200);
  for (const bool salp_mode : {false, true}) {
    for (const RefreshPolicy policy :
         {RefreshPolicy::disabled(), RefreshPolicy::nominal(),
          RefreshPolicy::reduced(16.0)}) {
      Controller c(geom(), timing(), salp_mode, policy);
      (void)c.run(prefix, 4.0);  // leaves head-of-trace state behind
      for (int probe = 0; probe < 50; ++probe) {
        const Access x = rd(static_cast<std::uint32_t>(rng.index(8)),
                            static_cast<std::uint32_t>(rng.index(4)),
                            static_cast<std::uint32_t>(rng.index(8)),
                            static_cast<std::uint32_t>(rng.index(64)) * 8);
        const auto predicted = c.classify(x);

        auto extended = prefix;
        extended.push_back(x);
        Controller fresh(geom(), timing(), salp_mode, policy);
        const auto with = fresh.run(extended, 4.0);
        Controller fresh2(geom(), timing(), salp_mode, policy);
        const auto without = fresh2.run(prefix, 4.0);
        RowBufferOutcome actual;
        if (with.hits > without.hits)
          actual = RowBufferOutcome::kHit;
        else if (with.misses > without.misses)
          actual = RowBufferOutcome::kMiss;
        else
          actual = RowBufferOutcome::kConflict;
        EXPECT_EQ(predicted, actual)
            << "salp=" << salp_mode << " refresh=" << int(policy.mode)
            << " probe=" << probe;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifyDifferential,
                         ::testing::Values(11u, 77u, 4242u));

}  // namespace
}  // namespace sparkxd::dram
