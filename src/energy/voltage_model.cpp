#include "energy/voltage_model.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::energy {

VoltageModel::VoltageModel(const Params& p) : p_(p) {
  SPARKXD_REQUIRE(p.beta > 0.0 && p.tau_act_ns > 0.0 && p.tau_pre_ns > 0.0,
                  "voltage-model constants must be positive");
}

double VoltageModel::tau_scale(double v_supply) const {
  SPARKXD_REQUIRE(v_supply > 0.5 && v_supply <= 2.0,
                  "supply voltage outside the modelled range");
  return std::pow(kNominalVdd / v_supply, p_.drive_exponent);
}

double VoltageModel::v_array_activate(double v_supply, double t_ns) const {
  if (t_ns <= 0.0) return v_supply / 2.0;
  const double tau = p_.tau_act_ns * tau_scale(v_supply);
  const double x = std::pow(t_ns / tau, p_.beta);
  return v_supply / 2.0 + (v_supply / 2.0) * (1.0 - std::exp(-x));
}

double VoltageModel::v_array_precharge(double v_supply, double v_start,
                                       double t_ns) const {
  if (t_ns <= 0.0) return v_start;
  const double tau = p_.tau_pre_ns * tau_scale(v_supply);
  const double target = v_supply / 2.0;
  return target + (v_start - target) * std::exp(-t_ns / tau);
}

double VoltageModel::t_rcd_ns(double v_supply) const {
  // Solve V/2 * (2 - exp(-(t/tau)^beta)) = 0.75 V  =>  exp(-x) = 0.5.
  const double tau = p_.tau_act_ns * tau_scale(v_supply);
  return tau * std::pow(std::log(2.0), 1.0 / p_.beta);
}

double VoltageModel::t_ras_ns(double v_supply) const {
  // 98% threshold: remaining gap fraction = (1 - 0.98) / 0.5 = 0.04.
  const double tau = p_.tau_act_ns * tau_scale(v_supply);
  return tau * std::pow(std::log(1.0 / 0.04), 1.0 / p_.beta);
}

double VoltageModel::t_rp_ns(double v_supply) const {
  // From a restored cell (~V_supply) down to within 2% of V/2: the initial
  // gap is V/2, so exp(-t/tau) = 0.02.
  const double tau = p_.tau_pre_ns * tau_scale(v_supply);
  return tau * std::log(1.0 / 0.02);
}

dram::TimingParams VoltageModel::derive_timings(double v_supply) const {
  dram::TimingParams t = dram::TimingParams::lpddr3_1600();
  const auto ceil_to_clock = [&t](double ns) {
    return std::ceil(ns / t.t_ck) * t.t_ck;
  };
  t.t_rcd = ceil_to_clock(t_rcd_ns(v_supply));
  t.t_ras = ceil_to_clock(t_ras_ns(v_supply));
  t.t_rp = ceil_to_clock(t_rp_ns(v_supply));
  return t;
}

std::vector<WaveformPoint> VoltageModel::waveform(double v_supply,
                                                  double pre_at_ns,
                                                  double t_end_ns,
                                                  double dt_ns) const {
  SPARKXD_REQUIRE(dt_ns > 0.0, "sample period must be positive");
  SPARKXD_REQUIRE(pre_at_ns >= 0.0 && pre_at_ns <= t_end_ns,
                  "PRE must fall inside the sampled window");
  std::vector<WaveformPoint> out;
  const double v_at_pre = v_array_activate(v_supply, pre_at_ns);
  for (double t = 0.0; t <= t_end_ns + 1e-9; t += dt_ns) {
    const double v = t < pre_at_ns
                         ? v_array_activate(v_supply, t)
                         : v_array_precharge(v_supply, v_at_pre, t - pre_at_ns);
    out.push_back({t, v});
  }
  return out;
}

}  // namespace sparkxd::energy
