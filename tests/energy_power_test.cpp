// Tests for the DRAM power model (Fig. 2b, Table I) and the platform
// breakdown model (Fig. 1b).

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "energy/platform_model.hpp"
#include "energy/power_model.hpp"
#include "energy/voltage_model.hpp"

namespace sparkxd::energy {
namespace {

using dram::RowBufferOutcome;

dram::TimingParams nominal() { return dram::TimingParams::lpddr3_1600(); }

// --------------------------------------------------------------- power model

TEST(PowerModel, ScalingFactors) {
  EXPECT_DOUBLE_EQ(PowerModel::dynamic_scale(kNominalVdd), 1.0);
  EXPECT_DOUBLE_EQ(PowerModel::background_scale(kNominalVdd), 1.0);
  EXPECT_NEAR(PowerModel::dynamic_scale(1.025), 0.5764, 0.001);
  EXPECT_NEAR(PowerModel::background_scale(1.025), 0.7593, 0.001);
}

TEST(PowerModel, HitLessThanMissLessThanConflict) {
  // Paper Fig. 2b: energy ordering of the access conditions.
  const PowerModel pm;
  for (const double v : {1.350, 1.025}) {
    const double hit = pm.access_energy_nj(RowBufferOutcome::kHit, v, nominal());
    const double miss =
        pm.access_energy_nj(RowBufferOutcome::kMiss, v, nominal());
    const double conf =
        pm.access_energy_nj(RowBufferOutcome::kConflict, v, nominal());
    EXPECT_LT(hit, miss);
    EXPECT_LT(miss, conf);
  }
}

TEST(PowerModel, NominalAccessEnergiesInFig2bRange) {
  const PowerModel pm;
  const double hit =
      pm.access_energy_nj(RowBufferOutcome::kHit, kNominalVdd, nominal());
  const double conf =
      pm.access_energy_nj(RowBufferOutcome::kConflict, kNominalVdd, nominal());
  EXPECT_GT(hit, 1.0);
  EXPECT_LT(hit, 3.0);
  EXPECT_GT(conf, 6.0);
  EXPECT_LT(conf, 9.0);
}

TEST(PowerModel, PerAccessSavingsInPaperRange) {
  // Paper §I-B: 31%-42% energy saving per access at 1.025 V. Our calibration
  // (see EXPERIMENTS.md) lands every condition inside a slightly tighter
  // 30-43% band.
  const PowerModel pm;
  const VoltageModel vm;
  const auto slow = vm.derive_timings(1.025);
  for (const auto outcome :
       {RowBufferOutcome::kHit, RowBufferOutcome::kMiss,
        RowBufferOutcome::kConflict}) {
    const double e_nom =
        pm.access_energy_nj(outcome, kNominalVdd, nominal());
    const double e_low = pm.access_energy_nj(outcome, 1.025, slow);
    const double saving = 1.0 - e_low / e_nom;
    EXPECT_GT(saving, 0.30);
    EXPECT_LT(saving, 0.43);
  }
}

TEST(PowerModel, ArrayEnergyPerAccessMatchesTable1) {
  // Table I: savings of the DRAM energy-per-access at each voltage step.
  const PowerModel pm;
  const double base = pm.array_energy_per_access_nj(kNominalVdd);
  const double expected[] = {3.92, 14.29, 24.33, 33.59, 42.40};
  int i = 0;
  for (const double v : kEvalVoltages) {
    const double saving =
        100.0 * (1.0 - pm.array_energy_per_access_nj(v) / base);
    EXPECT_NEAR(saving, expected[i], 0.5)
        << "voltage " << v << ": paper reports " << expected[i];
    ++i;
  }
}

TEST(PowerModel, TraceEnergyScalesWithCounts) {
  const PowerModel pm;
  dram::TraceStats s;
  s.reads = 10;
  s.activates = 2;
  s.precharges = 2;
  s.total_time_ns = 100.0;
  const auto e1 = pm.trace_energy(s, kNominalVdd);
  s.reads = 20;
  const auto e2 = pm.trace_energy(s, kNominalVdd);
  EXPECT_NEAR(e2.read_nj, 2.0 * e1.read_nj, 1e-12);
  EXPECT_NEAR(e2.io_nj, 2.0 * e1.io_nj, 1e-12);
  EXPECT_DOUBLE_EQ(e2.act_nj, e1.act_nj);
}

TEST(PowerModel, TraceEnergyDecreasesWithVoltage) {
  const PowerModel pm;
  dram::TraceStats s;
  s.reads = 100;
  s.activates = 5;
  s.precharges = 5;
  s.total_time_ns = 1000.0;
  double prev = 1e18;
  for (const double v : {1.350, 1.325, 1.250, 1.175, 1.100, 1.025}) {
    const double e = pm.trace_energy(s, v).total_nj();
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(PowerModel, IoEnergyIsVoltageIndependent) {
  const PowerModel pm;
  dram::TraceStats s;
  s.reads = 10;
  EXPECT_DOUBLE_EQ(pm.trace_energy(s, 1.35).io_nj,
                   pm.trace_energy(s, 1.025).io_nj);
}

TEST(PowerModel, BreakdownSumsToTotal) {
  const PowerModel pm;
  dram::TraceStats s;
  s.reads = 7;
  s.writes = 3;
  s.activates = 2;
  s.precharges = 2;
  s.total_time_ns = 500.0;
  const auto e = pm.trace_energy(s, 1.1);
  EXPECT_NEAR(e.total_nj(), e.act_nj + e.pre_nj + e.read_nj + e.write_nj +
                                e.io_nj + e.background_nj,
              1e-12);
}

TEST(PowerModel, RejectsNonPositiveVoltage) {
  EXPECT_THROW((void)PowerModel::dynamic_scale(0.0), ContractViolation);
  EXPECT_THROW((void)PowerModel::background_scale(-1.0), ContractViolation);
}

TEST(PowerModel, RefreshPolicyAwareTraceEnergy) {
  const PowerModel pm;
  dram::TraceStats s;
  s.reads = 100;
  s.activates = 5;
  s.precharges = 5;
  s.total_time_ns = 20000.0;  // legacy estimate: floor(20000/7800) = 2 REFs
  s.refreshes = 3;            // as counted by a refresh-simulating controller
  // Disabled policy falls back to the legacy makespan estimate, byte for
  // byte.
  const auto legacy = pm.trace_energy(s, kNominalVdd);
  const auto off =
      pm.trace_energy(s, kNominalVdd, dram::RefreshPolicy::disabled());
  EXPECT_EQ(off.refresh_nj, legacy.refresh_nj);
  EXPECT_DOUBLE_EQ(legacy.refresh_nj, 2.0 * pm.params().e_refresh_nj);
  // Simulated policies charge the counted REF commands instead.
  const auto nominal =
      pm.trace_energy(s, kNominalVdd, dram::RefreshPolicy::nominal());
  EXPECT_DOUBLE_EQ(nominal.refresh_nj, 3.0 * pm.params().e_refresh_nj);
  // Refresh charge is array work: V^2 scaling like ACT/PRE.
  const auto reduced_low_v =
      pm.trace_energy(s, 1.025, dram::RefreshPolicy::reduced(8.0));
  EXPECT_DOUBLE_EQ(reduced_low_v.refresh_nj,
                   3.0 * pm.params().e_refresh_nj *
                       PowerModel::dynamic_scale(1.025));
  // Fewer REFs -> proportionally less refresh energy (the reduced-rate win).
  dram::TraceStats relaxed = s;
  relaxed.refreshes = 1;
  EXPECT_LT(pm.trace_energy(relaxed, kNominalVdd,
                            dram::RefreshPolicy::reduced(3.0))
                .refresh_nj,
            nominal.refresh_nj);
}

// ------------------------------------------------------------ platform model

TEST(PlatformModel, ThreePlatformsOfFig1b) {
  const auto ps = fig1b_platforms();
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0].name, "TrueNorth");
  EXPECT_EQ(ps[1].name, "SNNAP");
  EXPECT_EQ(ps[2].name, "PEASE");
}

TEST(PlatformModel, SharesSumToOne) {
  const auto w = snn_inference_workload(784, 400, 100, 0.1);
  for (const auto& p : fig1b_platforms()) {
    const auto s = breakdown(p, w);
    EXPECT_NEAR(s.computation + s.communication + s.memory, 1.0, 1e-12);
    EXPECT_GE(s.computation, 0.0);
    EXPECT_GE(s.communication, 0.0);
    EXPECT_GE(s.memory, 0.0);
  }
}

TEST(PlatformModel, MemoryDominatesAsInPaper) {
  // Paper Fig. 1b / [5]: memory accesses consume ~50-75% of total energy.
  const auto w = snn_inference_workload(784, 400, 100, 0.1);
  for (const auto& p : fig1b_platforms()) {
    const auto s = breakdown(p, w);
    EXPECT_GE(s.memory, 0.45) << p.name;
    EXPECT_LE(s.memory, 0.80) << p.name;
  }
}

TEST(PlatformModel, PeaseMostMemoryBound) {
  const auto w = snn_inference_workload(784, 400, 100, 0.1);
  const auto ps = fig1b_platforms();
  const double tn = breakdown(ps[0], w).memory;
  const double pease = breakdown(ps[2], w).memory;
  EXPECT_GT(pease, tn);
}

TEST(PlatformModel, WorkloadScalesWithNetwork) {
  const auto small = snn_inference_workload(784, 100, 100, 0.1);
  const auto large = snn_inference_workload(784, 400, 100, 0.1);
  EXPECT_NEAR(large.synaptic_ops / small.synaptic_ops, 4.0, 0.01);
  EXPECT_GT(large.memory_bytes, small.memory_bytes);
  EXPECT_DOUBLE_EQ(large.spikes, small.spikes);  // input-driven
}

TEST(PlatformModel, RejectsDegenerateInputs) {
  EXPECT_THROW((void)snn_inference_workload(784, 400, 100, 1.5), ContractViolation);
  const SnnWorkload empty{};
  EXPECT_THROW((void)breakdown(fig1b_platforms()[0], empty), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::energy
