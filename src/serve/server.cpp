#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/contracts.hpp"

namespace sparkxd::serve {

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(const ServingArtifact& artifact, ServerConfig config)
    : artifact_(&artifact), config_(config) {
  SPARKXD_REQUIRE(config_.workers >= 1, "server needs at least one worker");
  SPARKXD_REQUIRE(config_.max_batch >= 1, "server batch ceiling must be >= 1");
  SPARKXD_REQUIRE(config_.max_queue >= 1,
                  "server admission-queue bound must be >= 1");
  artifact.validate();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SPARKXD_REQUIRE(listen_fd_ >= 0, "cannot create the listening socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  SPARKXD_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "cannot bind the serving port");
  SPARKXD_REQUIRE(::listen(listen_fd_, 128) == 0,
                  "cannot listen on the serving port");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  SPARKXD_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0,
                  "cannot read back the bound serving port");
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  request_stop();
  wait();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::start() {
  SPARKXD_REQUIRE(!accept_thread_.joinable(), "server already started");
  worker_threads_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    worker_threads_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Kick every reader out of its blocking read; replies still flow (the
  // write half stays open until the connection object dies).
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& weak : conns_)
    if (const auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RD);
  queue_cv_.notify_all();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop is done, so reader_threads_ can no longer grow.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(reader_threads_);
  }
  for (auto& t : readers) t.join();
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.served = served_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.batches = batches_;
  out.max_queue_depth = max_queue_depth_;
  out.batch_hist = batch_hist_;
  return out;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or hard error): stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;  // raced with request_stop(); the listener dies next round
    }
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      ++active_readers_;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    accept_done_ = true;
  }
  queue_cv_.notify_all();
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> payload;
  for (;;) {
    bool got = false;
    try {
      got = read_frame(conn->fd, payload);
    } catch (const ContractViolation&) {
      break;  // malformed stream: drop the connection
    }
    if (!got) break;  // clean EOF
    MsgType type;
    try {
      type = frame_type(payload);
      if (type == MsgType::kClassify) {
        Job job{conn, decode_classify(payload)};
        std::size_t depth = 0;
        bool admitted = false;
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          if (queue_.size() < config_.max_queue) {
            queue_.push_back(std::move(job));
            depth = queue_.size();
            admitted = true;
          }
        }
        if (admitted) {
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            if (depth > max_queue_depth_) max_queue_depth_ = depth;
          }
          queue_cv_.notify_one();
        } else {
          // Backpressure: answer kQueueFull instead of growing the queue
          // (or dropping the connection) — the request is rejected, the
          // connection stays usable, the client may retry.
          const auto frame = encode_queue_full(job.request.id);
          std::lock_guard<std::mutex> lock(conn->write_mu);
          if (!write_frame(conn->fd, frame)) break;
        }
      } else if (type == MsgType::kStats) {
        const auto frame = encode_stats_reply(stats());
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (!write_frame(conn->fd, frame)) break;
      } else {
        break;  // clients must not send server-to-client message types
      }
    } catch (const ContractViolation&) {
      break;  // malformed payload: drop the connection
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    --active_readers_;
  }
  queue_cv_.notify_all();
}

void Server::worker_loop() {
  Engine engine(*artifact_);
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() ||
               (stopping_.load() && accept_done_ && active_readers_ == 0);
      });
      if (queue_.empty()) return;  // fully drained, nothing can arrive
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(config_.max_wait_us);
      while (batch.size() < config_.max_batch) {
        if (queue_.empty()) {
          if (stopping_.load()) break;  // draining: don't linger for more
          const bool arrived = queue_cv_.wait_until(
              lock, deadline, [this] { return !queue_.empty(); });
          if (!arrived) break;  // deadline hit: run what we have
        }
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    record_batch(batch.size());
    for (const auto& job : batch) {
      ClassifyReply reply;
      try {
        reply = engine.classify(job.request);
      } catch (const ContractViolation&) {
        continue;  // bad request (e.g. wrong image size): no reply, no crash
      }
      const auto frame = encode_reply(reply);
      served_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> write_lock(job.conn->write_mu);
      write_frame(job.conn->fd, frame);  // peer-gone is not our problem
    }
  }
}

void Server::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++batches_;
  if (batch_hist_.size() < batch_size) batch_hist_.resize(batch_size, 0);
  ++batch_hist_[batch_size - 1];
}

}  // namespace sparkxd::serve
