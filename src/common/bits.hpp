#pragma once
// Bit-level views of stored data.
//
// Approximate DRAM corrupts *stored bits*; SparkXD stores FP32 synaptic
// weights. These helpers provide the exact bit-pattern view used by the error
// injector (src/error) and by tests that reason about MSB/LSB sensitivity.

#include <bit>
#include <cstdint>

#include "common/contracts.hpp"

namespace sparkxd {

/// Reinterprets an IEEE-754 binary32 as its 32-bit pattern.
[[nodiscard]] constexpr std::uint32_t float_to_bits(float f) noexcept {
  return std::bit_cast<std::uint32_t>(f);
}

/// Reinterprets a 32-bit pattern as an IEEE-754 binary32.
[[nodiscard]] constexpr float bits_to_float(std::uint32_t b) noexcept {
  return std::bit_cast<float>(b);
}

/// Flips bit `bit` (0 = LSB … 31 = MSB/sign) of a 32-bit word.
[[nodiscard]] constexpr std::uint32_t flip_bit(std::uint32_t word,
                                               unsigned bit) noexcept {
  return word ^ (std::uint32_t{1} << bit);
}

/// Flips bit `bit` of the stored representation of a float.
[[nodiscard]] inline float flip_float_bit(float f, unsigned bit) {
  SPARKXD_REQUIRE(bit < 32, "binary32 has bits 0..31");
  return bits_to_float(flip_bit(float_to_bits(f), bit));
}

/// True if the word's bit `bit` is set.
[[nodiscard]] constexpr bool test_bit(std::uint32_t word,
                                      unsigned bit) noexcept {
  return (word >> bit) & 1u;
}

/// Number of bits that differ between two 32-bit patterns.
[[nodiscard]] constexpr int hamming_distance(std::uint32_t a,
                                             std::uint32_t b) noexcept {
  return std::popcount(a ^ b);
}

/// Rounds `bytes` up to a multiple of `align` (align must be a power of two).
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t bytes,
                                               std::uint64_t align) noexcept {
  return (bytes + align - 1) & ~(align - 1);
}

/// True if x is a power of two (and non-zero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_pow2(std::uint64_t x) noexcept {
  return static_cast<unsigned>(std::countr_zero(x));
}

}  // namespace sparkxd
