file(REMOVE_RECURSE
  "CMakeFiles/ablation_error_models.dir/bench/ablation_error_models.cpp.o"
  "CMakeFiles/ablation_error_models.dir/bench/ablation_error_models.cpp.o.d"
  "ablation_error_models"
  "ablation_error_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_error_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
