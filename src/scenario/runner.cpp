#include "scenario/runner.hpp"

#include <array>
#include <charconv>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "data/dataset.hpp"
#include "error/ecc_scheme.hpp"
#include "error/error_model.hpp"

namespace sparkxd::scenario {

namespace {

/// Fixed/scientific formatting via std::to_chars — like snprintf %.*f/%.*e
/// but immune to LC_NUMERIC, matching the locale-independence guarantee of
/// the JSON path (a comma decimal point would silently break every golden
/// digest comparison).
std::string fmt(std::chars_format format, int precision, double v) {
  std::array<char, 64> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v,
                                 format, precision);
  SPARKXD_ENSURE(res.ec == std::errc{}, "double did not fit the buffer");
  return std::string(buf.data(), res.ptr);
}

std::string fixed(int precision, double v) {
  return fmt(std::chars_format::fixed, precision, v);
}

std::string sci(int precision, double v) {
  return fmt(std::chars_format::scientific, precision, v);
}

void write_config(json::Writer& w, const Scenario& s) {
  w.key("config").begin_object();
  w.field("task", data::to_string(s.task));
  w.field("neurons", s.n_neurons);
  w.key("hidden_layers").begin_array();
  for (const std::size_t h : s.hidden_neurons)
    w.value(static_cast<std::uint64_t>(h));
  w.end_array();
  w.field("train_samples", s.train_samples);
  w.field("test_samples", s.test_samples);
  w.field("baseline_epochs", s.baseline_epochs);
  w.key("ber_stages").begin_array();
  for (const double b : s.ber_stages) w.value(b);
  w.end_array();
  w.field("eval_trials", s.eval_trials);
  w.key("geometry").begin_object();
  w.field("banks_per_chip", s.geometry.banks_per_chip);
  w.field("subarrays_per_bank", s.geometry.subarrays_per_bank);
  w.field("rows_per_subarray", s.geometry.rows_per_subarray);
  w.field("columns_per_row", s.geometry.columns_per_row);
  w.field("salp", s.salp);
  w.end_object();
  w.field("error_model", error::to_string(s.error_model.kind));
  w.key("refresh").begin_object();
  w.field("mode", dram::to_string(s.refresh.mode));
  w.field("interval_multiplier", s.refresh.effective_multiplier());
  w.end_object();
  w.key("ecc").begin_object();
  w.field("scheme", error::to_string(s.ecc.kind));
  w.field("data_bits", static_cast<std::uint64_t>(s.ecc.data_bits));
  w.end_object();
  w.key("voltages").begin_array();
  for (const double v : s.voltages) w.value(v);
  w.end_array();
  w.field("seed", s.seed);
  // Emitted only for non-default engines so every pre-event report keeps
  // its byte layout (and the float event engine, which is bitwise-identical
  // to dense, is still visible in the report when selected).
  if (s.engine != snn::EngineKind::kDense)
    w.field("engine", snn::to_string(s.engine));
  // Same gating for the knob search: absent unless the scenario runs it.
  if (s.layer_knobs) w.field("layer_knobs", true);
  w.end_object();
}

/// One chosen (voltage, refresh, ECC) triple as a JSON object.
void write_knob_choice(json::Writer& w, const core::LayerKnobChoice& c) {
  w.begin_object();
  w.field("v_supply", c.v_supply);
  w.field("module_ber", c.module_ber);
  w.field("refresh_multiplier", c.refresh_multiplier);
  w.field("ecc_scheme", c.ecc_scheme);
  w.field("raw_ber", c.raw_ber);
  w.field("tolerable_ber", c.tolerable_ber);
  w.field("energy_nj", c.energy_nj);
  w.field("meets_floor", c.meets_floor);
  w.field("retention_weak_cells", c.retention_weak_cells);
  w.end_object();
}

void write_report(json::Writer& w, const Scenario& s,
                  const core::PipelineReport& r) {
  // Per-layer report blocks are emitted only for deep stacks, and ECC
  // blocks only for ecc-enabled scenarios, so every pre-existing report
  // (and its byte layout) is unchanged.
  const bool deep = !s.hidden_neurons.empty();
  const bool ecc_on = s.ecc.enabled();
  w.key("report").begin_object();
  w.field("baseline_accuracy", r.baseline_accuracy);
  w.field("improved_accuracy", r.improved_accuracy);
  w.field("ber_th", r.ber_th);
  w.field("met_target", r.met_target);
  if (deep) {
    // The per-layer tolerance vector (input side first): BER_th, whether
    // the bound was met, and the per-layer accuracy-vs-BER curve.
    w.key("layer_tolerance").begin_array();
    for (std::size_t l = 0; l < r.layer_ber_th.size(); ++l) {
      w.begin_object();
      w.field("layer", static_cast<std::uint64_t>(l));
      w.field("ber_th", r.layer_ber_th[l]);
      w.field("met_target", static_cast<bool>(r.layer_met_target[l]));
      w.key("curve").begin_array();
      if (l < r.layer_curves.size()) {
        for (const auto& p : r.layer_curves[l]) {
          w.begin_object();
          w.field("ber", p.ber);
          w.field("accuracy", p.accuracy);
          w.end_object();
        }
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  w.field("baseline_energy_nj", r.baseline_energy_nj);
  w.field("baseline_time_ns", r.baseline_time_ns);
  w.key("stage_curve").begin_array();
  for (const auto& p : r.stage_curve) {
    w.begin_object();
    w.field("ber", p.ber);
    w.field("accuracy", p.accuracy);
    w.end_object();
  }
  w.end_array();
  w.key("per_voltage").begin_array();
  for (const auto& v : r.per_voltage) {
    w.begin_object();
    w.field("v_supply", v.v_supply);
    w.field("module_ber", v.module_ber);
    w.field("accuracy", v.accuracy);
    w.field("energy_nj", v.energy_nj);
    w.field("saving_pct", v.saving_pct);
    w.field("speedup", v.speedup);
    w.field("row_hit_rate", v.row_hit_rate);
    w.field("safe_subarrays", v.safe_subarrays);
    w.field("capacity_relaxed", v.capacity_relaxed);
    w.field("refreshes", v.refreshes);
    w.field("retention_weak_cells", v.retention_weak_cells);
    if (ecc_on) {
      w.field("ecc_codewords", v.ecc_codewords);
      w.field("ecc_corrected", v.ecc_corrected);
      w.field("ecc_detected", v.ecc_detected);
      // Per-layer scheme assignment + scrub accounting at this voltage.
      w.key("ecc_layers").begin_array();
      for (const auto& ls : v.layers) {
        w.begin_object();
        w.field("scheme", ls.ecc_scheme);
        w.field("escalated", ls.ecc_escalated);
        w.field("storage_overhead", ls.ecc_overhead);
        w.field("codewords", ls.ecc_codewords);
        w.field("corrected", ls.ecc_corrected);
        w.field("detected", ls.ecc_detected);
        w.field("decode_energy_nj", ls.ecc_energy_nj);
        w.end_object();
      }
      w.end_array();
    }
    if (deep) {
      // Per-layer placement + accounting at this voltage.
      w.key("layers").begin_array();
      for (const auto& ls : v.layers) {
        w.begin_object();
        w.field("ber_th", ls.ber_th);
        w.field("capacity_relaxed", ls.capacity_relaxed);
        w.field("chunks", ls.chunks);
        w.field("safe_subarrays", ls.safe_subarrays);
        w.field("energy_nj", ls.energy_nj);
        w.field("row_hit_rate", ls.row_hit_rate);
        w.field("refreshes", ls.refreshes);
        w.field("retention_weak_cells", ls.retention_weak_cells);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  // Per-layer operating points (knob-search scenarios only, so every
  // knob-free report keeps its byte layout).
  if (s.layer_knobs && r.layer_knobs.has_value()) {
    const core::LayerKnobsReport& k = *r.layer_knobs;
    w.key("layer_knobs").begin_object();
    w.key("layers").begin_array();
    for (const auto& c : k.layers) write_knob_choice(w, c);
    w.end_array();
    w.field("total_energy_nj", k.total_energy_nj);
    w.field("uniform_feasible", k.uniform_feasible);
    if (k.uniform_feasible) {
      w.key("uniform");
      write_knob_choice(w, k.uniform);
      w.field("uniform_energy_nj", k.uniform_energy_nj);
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::vector<ScenarioResult> run_scenarios(
    const std::vector<Scenario>& scenarios) {
  for (const auto& s : scenarios) s.validate();
  std::vector<ScenarioResult> results(scenarios.size());
  parallel_for(scenarios.size(), [&](std::size_t i) {
    results[i].scenario = scenarios[i];
    results[i].report = core::run_pipeline(scenarios[i].pipeline_config());
  });
  return results;
}

std::string to_json(const std::vector<ScenarioResult>& results) {
  json::Writer w;
  w.begin_object();
  w.field("schema", "sparkxd-report-v1");
  w.key("scenarios").begin_array();
  for (const auto& r : results) {
    w.begin_object();
    w.field("name", r.scenario.name);
    w.field("description", r.scenario.description);
    write_config(w, r.scenario);
    write_report(w, r.scenario, r.report);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  SPARKXD_ENSURE(w.complete(), "report serialization left JSON unbalanced");
  return w.str() + "\n";
}

std::string digest(const ScenarioResult& result) {
  const auto& r = result.report;
  // Refresh-axis fields are emitted only for scenarios that simulate
  // refresh, per-layer fields only for deep stacks, and ECC fields only
  // for ecc-enabled scenarios, so every pre-existing digest stays
  // byte-identical.
  const bool refresh_on = result.scenario.refresh.simulated();
  const bool deep = !result.scenario.hidden_neurons.empty();
  const bool ecc_on = result.scenario.ecc.enabled();
  // The engine header line follows the same gating: absent for the default
  // dense engine, so pre-event digests stay byte-identical.
  const bool engine_on = result.scenario.engine != snn::EngineKind::kDense;
  // Knob-search lines (K<n>) only for scenarios that ran the search.
  const bool knobs_on =
      result.scenario.layer_knobs && r.layer_knobs.has_value();
  std::string d;
  d += "scenario=" + result.scenario.name + "\n";
  if (engine_on)
    d += std::string("engine=") + snn::to_string(result.scenario.engine) + "\n";
  if (refresh_on)
    d += "refresh=" + refresh_label(result.scenario.refresh) + "\n";
  if (ecc_on) d += "ecc=" + error::ecc_label(result.scenario.ecc) + "\n";
  if (deep) {
    d += "layers=" + std::to_string(result.scenario.hidden_neurons.size() + 1);
    d += "\n";
  }
  d += "baseline_accuracy=" + fixed(6, r.baseline_accuracy) + "\n";
  d += "improved_accuracy=" + fixed(6, r.improved_accuracy) + "\n";
  d += "ber_th=" + sci(3, r.ber_th) + "\n";
  d += std::string("met_target=") + (r.met_target ? "1" : "0") + "\n";
  if (deep) {
    // One line per layer: the per-layer tolerance analysis headline.
    for (std::size_t l = 0; l < r.layer_ber_th.size(); ++l) {
      d += "layer" + std::to_string(l);
      d += " ber_th=" + sci(3, r.layer_ber_th[l]);
      d += std::string(" met=") + (r.layer_met_target[l] ? "1" : "0") + "\n";
    }
  }
  d += "baseline_energy_nj=" + sci(6, r.baseline_energy_nj) + "\n";
  d += "baseline_time_ns=" + sci(6, r.baseline_time_ns) + "\n";
  for (const auto& v : r.per_voltage) {
    d += "v=" + fixed(3, v.v_supply);
    d += " ber=" + sci(3, v.module_ber);
    d += " acc=" + fixed(6, v.accuracy);
    d += " energy_nj=" + sci(6, v.energy_nj);
    d += " saving_pct=" + fixed(4, v.saving_pct);
    d += " speedup=" + fixed(4, v.speedup);
    d += " hit_rate=" + fixed(6, v.row_hit_rate);
    d += " safe=" + std::to_string(v.safe_subarrays);
    d += std::string(" relaxed=") + (v.capacity_relaxed ? "1" : "0");
    if (refresh_on) {
      d += " ref=" + std::to_string(v.refreshes);
      d += " retweak=" + std::to_string(v.retention_weak_cells);
    }
    if (ecc_on) {
      d += " ecccw=" + std::to_string(v.ecc_codewords);
      d += " ecccorr=" + std::to_string(v.ecc_corrected);
      d += " eccdet=" + std::to_string(v.ecc_detected);
    }
    d += "\n";
    if (deep) {
      // Per-layer placement + accounting under the voltage line it
      // belongs to.
      for (std::size_t l = 0; l < v.layers.size(); ++l) {
        const auto& ls = v.layers[l];
        d += "  L" + std::to_string(l);
        d += " ber_th=" + sci(3, ls.ber_th);
        d += std::string(" relaxed=") + (ls.capacity_relaxed ? "1" : "0");
        d += " chunks=" + std::to_string(ls.chunks);
        d += " safe=" + std::to_string(ls.safe_subarrays);
        d += " energy_nj=" + sci(6, ls.energy_nj);
        d += " hit_rate=" + fixed(6, ls.row_hit_rate);
        if (refresh_on) {
          d += " ref=" + std::to_string(ls.refreshes);
          d += " retweak=" + std::to_string(ls.retention_weak_cells);
        }
        d += "\n";
      }
    }
    if (ecc_on) {
      // Per-layer scheme assignment + scrub accounting under the voltage
      // line it belongs to (emitted for flat nets too: the ECC axis makes
      // layer 0's escalation decision part of the locked contract).
      for (std::size_t l = 0; l < v.layers.size(); ++l) {
        const auto& ls = v.layers[l];
        d += "  E" + std::to_string(l);
        d += " scheme=" + ls.ecc_scheme;
        d += std::string(" esc=") + (ls.ecc_escalated ? "1" : "0");
        d += " cw=" + std::to_string(ls.ecc_codewords);
        d += " corr=" + std::to_string(ls.ecc_corrected);
        d += " det=" + std::to_string(ls.ecc_detected);
        d += " decode_nj=" + sci(6, ls.ecc_energy_nj);
        d += "\n";
      }
    }
  }
  if (knobs_on) {
    // Per-layer operating points: one K<n> line per layer with the chosen
    // (voltage, refresh multiplier, ECC) triple and the evaluation that
    // justified it, then the uniform baseline and the energy split.
    const core::LayerKnobsReport& k = *r.layer_knobs;
    for (std::size_t l = 0; l < k.layers.size(); ++l) {
      const auto& c = k.layers[l];
      d += "K" + std::to_string(l);
      d += " v=" + fixed(3, c.v_supply);
      d += " m=" + fixed(1, c.refresh_multiplier);
      d += " ecc=" + c.ecc_scheme;
      d += " raw=" + sci(3, c.raw_ber);
      d += " tol=" + sci(3, c.tolerable_ber);
      d += " energy_nj=" + sci(6, c.energy_nj);
      d += std::string(" floor=") + (c.meets_floor ? "1" : "0");
      d += " retweak=" + std::to_string(c.retention_weak_cells);
      d += "\n";
    }
    if (k.uniform_feasible) {
      d += "Kuniform v=" + fixed(3, k.uniform.v_supply);
      d += " m=" + fixed(1, k.uniform.refresh_multiplier);
      d += " ecc=" + k.uniform.ecc_scheme;
      d += " energy_nj=" + sci(6, k.uniform_energy_nj);
      d += "\n";
    }
    d += "Ktotal energy_nj=" + sci(6, k.total_energy_nj);
    d += std::string(" uniform_feasible=") + (k.uniform_feasible ? "1" : "0");
    if (k.uniform_feasible && k.uniform_energy_nj > 0.0)
      d += " save_pct=" +
           fixed(4, 100.0 * (1.0 - k.total_energy_nj / k.uniform_energy_nj));
    d += "\n";
  }
  return d;
}

}  // namespace sparkxd::scenario
