// Tests for the synthetic dataset substrate: canvas primitives, dataset
// shape/determinism, class balance and separability (the property the SNN
// experiments depend on).

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "data/canvas.hpp"
#include "data/dataset.hpp"

namespace sparkxd::data {
namespace {

double pixel_sum(const std::vector<float>& img) {
  double s = 0.0;
  for (const float p : img) s += p;
  return s;
}

// -------------------------------------------------------------------- canvas

TEST(Canvas, StartsBlack) {
  Canvas c(28, 28);
  EXPECT_EQ(pixel_sum(c.pixels()), 0.0);
}

TEST(Canvas, StrokePaintsAlongSegment) {
  Canvas c(28, 28);
  c.stroke(0.2, 0.5, 0.8, 0.5, 2.0);
  const auto& px = c.pixels();
  // The midpoint of the stroke is bright, far corners are black.
  EXPECT_GT(px[14 * 28 + 14], 0.5f);
  EXPECT_EQ(px[0], 0.0f);
  EXPECT_EQ(px[27 * 28 + 27], 0.0f);
}

TEST(Canvas, StrokeRespectsThickness) {
  Canvas thin(28, 28), thick(28, 28);
  thin.stroke(0.1, 0.5, 0.9, 0.5, 1.0);
  thick.stroke(0.1, 0.5, 0.9, 0.5, 4.0);
  EXPECT_GT(pixel_sum(thick.pixels()), 2.0 * pixel_sum(thin.pixels()));
}

TEST(Canvas, EllipseOutlineHasHollowCentre) {
  Canvas c(28, 28);
  c.ellipse(0.5, 0.5, 0.3, 0.3, 2.0);
  const auto& px = c.pixels();
  EXPECT_EQ(px[14 * 28 + 14], 0.0f);  // centre is empty
  // A point on the ring (r = 0.3 of 28 ~ 8.4 px from centre) is bright.
  EXPECT_GT(px[14 * 28 + 22], 0.4f);
}

TEST(Canvas, FillEllipseCoversCentre) {
  Canvas c(28, 28);
  c.fill_ellipse(0.5, 0.5, 0.3, 0.3);
  EXPECT_GT(c.pixels()[14 * 28 + 14], 0.9f);
}

TEST(Canvas, FillRectCorners) {
  Canvas c(28, 28);
  c.fill_rect(0.25, 0.25, 0.75, 0.75);
  const auto& px = c.pixels();
  EXPECT_GT(px[14 * 28 + 14], 0.9f);
  EXPECT_EQ(px[0], 0.0f);
}

TEST(Canvas, BlurPreservesMassApproximately) {
  Canvas c(28, 28);
  c.fill_rect(0.3, 0.3, 0.7, 0.7);
  const double before = pixel_sum(c.pixels());
  c.blur(2);
  const double after = pixel_sum(c.pixels());
  // Mass only leaks at the border, which the shape does not touch.
  EXPECT_NEAR(after, before, before * 0.02);
}

TEST(Canvas, BlurSpreadsEdges) {
  Canvas c(28, 28);
  c.fill_rect(0.4, 0.4, 0.6, 0.6);
  const float edge_before = c.pixels()[14 * 28 + 9];
  c.blur(3);
  EXPECT_GT(c.pixels()[14 * 28 + 9], edge_before);
}

TEST(Canvas, AffineIdentityIsNoOp) {
  Canvas c(28, 28);
  c.fill_ellipse(0.5, 0.5, 0.2, 0.2);
  const auto before = c.pixels();
  c.affine(0.0, 1.0, 0.0, 0.0);
  const auto& after = c.pixels();
  double max_diff = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(before[i]) - after[i]));
  EXPECT_LT(max_diff, 1e-4);
}

TEST(Canvas, AffineTranslationMovesMass) {
  Canvas c(28, 28);
  c.fill_ellipse(0.5, 0.5, 0.15, 0.15);
  c.affine(0.0, 1.0, 6.0, 0.0);
  const auto& px = c.pixels();
  EXPECT_GT(px[14 * 28 + 20], 0.8f);  // moved right
  EXPECT_LT(px[14 * 28 + 8], 0.2f);   // vacated
}

TEST(Canvas, TakeClearsBuffer) {
  Canvas c(8, 8);
  c.fill_rect(0.0, 0.0, 1.0, 1.0);
  const auto img = c.take();
  EXPECT_GT(pixel_sum(img), 0.0);
  EXPECT_EQ(pixel_sum(c.pixels()), 0.0);
}

TEST(Canvas, RejectsEmptyDimensions) {
  EXPECT_THROW(Canvas(0, 5), ContractViolation);
}

// ------------------------------------------------------------------- dataset

class DatasetShape : public ::testing::TestWithParam<Task> {};

TEST_P(DatasetShape, DimensionsAndRanges) {
  const auto ds = make_dataset(GetParam(), 100, 1);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.width, 28u);
  EXPECT_EQ(ds.height, 28u);
  EXPECT_EQ(ds.num_classes, 10u);
  for (const auto& img : ds.images) {
    ASSERT_EQ(img.size(), 784u);
    for (const float p : img) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
    }
  }
  for (const auto l : ds.labels) EXPECT_LT(l, 10);
}

TEST_P(DatasetShape, BalancedLabels) {
  const auto ds = make_dataset(GetParam(), 200, 2);
  std::vector<int> counts(10, 0);
  for (const auto l : ds.labels) ++counts[l];
  for (const int c : counts) EXPECT_EQ(c, 20);
}

TEST_P(DatasetShape, DeterministicInSeed) {
  const auto a = make_dataset(GetParam(), 20, 7);
  const auto b = make_dataset(GetParam(), 20, 7);
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.images[i], b.images[i]);
}

TEST_P(DatasetShape, DifferentSeedsDiffer) {
  const auto a = make_dataset(GetParam(), 20, 7);
  const auto b = make_dataset(GetParam(), 20, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i)
    any_diff = a.images[i] != b.images[i];
  EXPECT_TRUE(any_diff);
}

TEST_P(DatasetShape, SamplesHaveInk) {
  const auto ds = make_dataset(GetParam(), 50, 3);
  for (const auto& img : ds.images) {
    EXPECT_GT(pixel_sum(img), 5.0) << "image is nearly blank";
    EXPECT_LT(pixel_sum(img), 500.0) << "image is nearly full";
  }
}

TEST_P(DatasetShape, IntraClassVariation) {
  // Two samples of the same class must not be identical (jitter + noise).
  const auto ds = make_dataset(GetParam(), 40, 5);
  for (std::size_t i = 0; i < ds.size(); ++i)
    for (std::size_t j = i + 1; j < ds.size(); ++j)
      if (ds.labels[i] == ds.labels[j]) {
        EXPECT_NE(ds.images[i], ds.images[j]);
      }
}

INSTANTIATE_TEST_SUITE_P(Tasks, DatasetShape,
                         ::testing::Values(Task::kDigits, Task::kFashion),
                         [](const auto& info) {
                           return info.param == Task::kDigits ? "Digits"
                                                              : "Fashion";
                         });

TEST(Dataset, TakeDropPartition) {
  const auto ds = make_dataset(Task::kDigits, 30, 4);
  const auto head = ds.take(20);
  const auto tail = ds.drop(20);
  EXPECT_EQ(head.size(), 20u);
  EXPECT_EQ(tail.size(), 10u);
  EXPECT_EQ(head.images[0], ds.images[0]);
  EXPECT_EQ(tail.images[0], ds.images[20]);
  EXPECT_THROW(ds.take(31), ContractViolation);
  EXPECT_THROW(ds.drop(31), ContractViolation);
}

TEST(Dataset, CentroidSeparability) {
  // Class centroids must be more distant across classes than the average
  // within-class spread — the minimal condition for learnability.
  const auto ds = make_dataset(Task::kDigits, 400, 6);
  const auto centroids = class_centroids(ds);
  ASSERT_EQ(centroids.size(), 10u);
  const auto dist = [](const std::vector<float>& a,
                       const std::vector<float>& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
      d += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(d);
  };
  double min_between = 1e18;
  for (std::size_t a = 0; a < 10; ++a)
    for (std::size_t b = a + 1; b < 10; ++b)
      min_between = std::min(min_between, dist(centroids[a], centroids[b]));
  // Average distance of samples to their own centroid.
  double within = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i)
    within += dist(ds.images[i], centroids[ds.labels[i]]);
  within /= static_cast<double>(ds.size());
  EXPECT_GT(min_between, 0.3 * within)
      << "classes overlap too much to be learnable";
}

TEST(Dataset, FashionHarderThanDigits) {
  // The Fashion task is constructed to have more confusable classes:
  // its minimum between-centroid distance is smaller relative to digits.
  const auto dig = make_dataset(Task::kDigits, 400, 6);
  const auto fash = make_dataset(Task::kFashion, 400, 6);
  const auto min_between = [](const Dataset& ds) {
    const auto cs = class_centroids(ds);
    double m = 1e18;
    for (std::size_t a = 0; a < cs.size(); ++a)
      for (std::size_t b = a + 1; b < cs.size(); ++b) {
        double d = 0.0;
        for (std::size_t i = 0; i < cs[a].size(); ++i)
          d += (cs[a][i] - cs[b][i]) * (cs[a][i] - cs[b][i]);
        m = std::min(m, std::sqrt(d));
      }
    return m;
  };
  EXPECT_LT(min_between(fash), min_between(dig));
}

TEST(Dataset, TaskNames) {
  EXPECT_STREQ(to_string(Task::kDigits), "SynthDigits");
  EXPECT_STREQ(to_string(Task::kFashion), "SynthFashion");
}

}  // namespace
}  // namespace sparkxd::data
