// CLI contract tests for sparkxd_run and sparkxd_replay: bad usage must
// exit 2 with a clear stderr message, --help must exit 0, a replay that
// served nothing must exit 1. These run the real binaries (paths baked in
// via SPARKXD_RUN_BIN / SPARKXD_REPLAY_BIN) so the exit codes scripts and
// CI depend on are pinned by a test, not convention.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, merged
};

RunResult run_binary(const char* bin, const std::string& args) {
  const std::string cmd = std::string(bin) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult result;
  if (pipe == nullptr) return result;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
    result.output.append(buf, n);
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

RunResult run_cli(const std::string& args) {
  return run_binary(SPARKXD_RUN_BIN, args);
}

/// A loopback port that was just bound and released — nothing listens on
/// it, so connections are refused (modulo an unlucky reuse race).
int dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(CliTest, UnknownScenarioExitsTwoWithMessage) {
  const auto r = run_cli("--scenario no-such-scenario-xyz");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown scenario 'no-such-scenario-xyz'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("--list"), std::string::npos) << r.output;
}

TEST(CliTest, NoSelectionExitsTwo) {
  const auto r = run_cli("--digest");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("nothing selected"), std::string::npos) << r.output;
}

TEST(CliTest, BadRefreshSpecExitsTwo) {
  const auto r = run_cli("--scenario smoke-digits-m0 --refresh bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--refresh"), std::string::npos) << r.output;
}

TEST(CliTest, BadEccSpecExitsTwo) {
  const auto r = run_cli("--scenario smoke-digits-m0 --ecc bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--ecc"), std::string::npos) << r.output;
  // An infeasible shape (secded is the fixed 72,64 code) is rejected by the
  // spec validation, same exit code.
  const auto shape = run_cli("--scenario smoke-digits-m0 --ecc secded:128");
  EXPECT_EQ(shape.exit_code, 2);
  EXPECT_NE(shape.output.find("--ecc"), std::string::npos) << shape.output;
}

TEST(CliTest, EccOverrideRenamesAndShowsInList) {
  const auto r = run_cli("--list --scenario smoke-digits-m0 --ecc bch:4096");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("smoke-digits-m0-ecc-bch4096b"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[ecc override]"), std::string::npos) << r.output;
}

TEST(CliTest, UnknownOptionExitsTwo) {
  const auto r = run_cli("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option"), std::string::npos) << r.output;
}

TEST(CliTest, ExportArtifactNeedsExactlyOneScenario) {
  const auto r = run_cli(
      "--scenario smoke-digits-m0 --scenario smoke-fashion-salp-m1 "
      "--export-artifact /tmp/cli_test_never_written.sxda");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("exactly one selected scenario"),
            std::string::npos)
      << r.output;
}

TEST(CliTest, BadArtifactVoltageExitsTwo) {
  const auto r = run_cli(
      "--scenario smoke-digits-m0 --export-artifact "
      "/tmp/cli_test_never_written.sxda --artifact-voltage nope");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--artifact-voltage"), std::string::npos)
      << r.output;
}

TEST(CliTest, HelpExitsZero) {
  const auto r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage: sparkxd_run"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("--export-artifact"), std::string::npos)
      << r.output;
}

TEST(CliTest, ListExitsZeroAndNamesGoldenScenarios) {
  const auto r = run_cli("--list");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("smoke-digits-m0"), std::string::npos) << r.output;
}

TEST(CliTest, LayerKnobsOverrideRenamesAndShowsInList) {
  const auto r = run_cli("--list --scenario smoke-digits-m0 --layer-knobs");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("smoke-digits-m0-knobs"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[layer-knobs override]"), std::string::npos)
      << r.output;
}

// Regression: serve::percentile used to return 0 on an empty sample, so a
// replay that served nothing reported "p99=0us" and exited 0 — a fully
// faulted run read as infinitely fast in the CI trend. A zero-served replay
// must now fail loudly before any percentile is computed.
TEST(CliTest, ReplayZeroServedExitsNonZero) {
  const auto r = run_binary(
      SPARKXD_REPLAY_BIN,
      "--port " + std::to_string(dead_port()) +
          " --requests 2 --allow-partial");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("zero replies"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("p99=0"), std::string::npos) << r.output;
}

}  // namespace
