# Empty dependencies file for voltage_explorer.
# This may be replaced when dependencies are built.
