#pragma once
// The long-lived serving daemon core: a localhost TCP listener feeding an
// admission queue that worker threads drain in dynamic batches.
//
// Thread layout:
//   accept thread        blocks in accept(), spawns one reader per client
//                        (closing immediately at the --max-conns cap)
//   reader threads       decode frames; kClassify jobs go to the queue
//                        (bounded by max_queue — overflow is answered with
//                        kQueueFull instead of admitted), kStats is
//                        answered inline (it must not queue behind the
//                        work it is measuring), kHello upgrades the
//                        connection to CRC framing (protocol v2). A frame
//                        that stalls mid-read past read_deadline_ms gets
//                        its connection evicted (slow-loris defense); a
//                        CRC failure is answered kBadFrame and the
//                        connection closed (stream sync is gone)
//   worker threads       each owns a serve::Engine; pops a batch (up to
//                        max_batch jobs, waiting at most max_wait_us for
//                        stragglers after the first), classifies, writes
//                        replies under the owning connection's write mutex.
//                        A job that waited past request_deadline_us is
//                        answered kDeadlineExceeded instead of classified
//   watchdog thread      (when watchdog_stall_ms > 0) samples per-worker
//                        heartbeats; a worker stuck on one batch past the
//                        stall bound is counted in stats().wedged_events
//                        and logged — the loud-failure signal for a wedged
//                        engine
//
// Batching is a throughput lever only: replies are deterministic per
// request (see engine.hpp), so batch boundaries and worker assignment are
// unobservable in the payloads.
//
// Hot reload: reload() validates and atomically installs a new refcounted
// artifact generation. Workers notice before their next batch and rebuild
// their engine; in-flight batches finish on the generation they started
// with, no connection is touched, and the old artifact is freed when the
// last engine lets go. stats().generation exposes the installed one.
//
// Shutdown contract: request_stop() stops accepting, wakes the readers
// (SHUT_RD on every live connection), and lets the workers drain whatever
// was already admitted; wait() joins everything. Every admitted request is
// answered before its connection closes.

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/protocol.hpp"

namespace sparkxd::serve {

struct ServerConfig {
  std::uint16_t port = 0;       ///< 0 = ephemeral; read back via port()
  std::size_t workers = 1;      ///< engines (and threads) draining the queue
  std::size_t max_batch = 16;   ///< batch size ceiling
  std::uint64_t max_wait_us = 200;  ///< linger for stragglers after job #1
  /// Admission-queue bound (backpressure): a classify frame arriving while
  /// the queue already holds this many jobs is answered with kQueueFull
  /// instead of being admitted — memory stays bounded under overload and
  /// the connection survives so the client can retry.
  std::size_t max_queue = 4096;
  /// Slow-loris defense: once a frame has STARTED arriving on a
  /// connection, the rest of it must land within this many milliseconds or
  /// the connection is evicted (counted in stats().evicted_slow). Idle
  /// connections at a frame boundary are never evicted. 0 disables.
  std::uint64_t read_deadline_ms = 0;
  /// Per-request deadline: a job that waited in the admission queue longer
  /// than this is answered kDeadlineExceeded instead of classified
  /// (counted in stats().deadline_exceeded). 0 disables.
  std::uint64_t request_deadline_us = 0;
  /// Accept cap: connections accepted while this many are already live are
  /// closed immediately (counted in stats().rejected_conns). 0 = unlimited.
  std::size_t max_conns = 0;
  /// Watchdog stall bound: a worker processing ONE batch for longer than
  /// this is counted in stats().wedged_events and logged to stderr (once
  /// per batch). The server keeps running — the watchdog detects, it does
  /// not kill. 0 disables the watchdog thread.
  std::uint64_t watchdog_stall_ms = 0;
};

class Server {
 public:
  /// Binds and validates but does not serve yet. The refcounted artifact
  /// is generation 1; reload() installs later generations.
  Server(std::shared_ptr<const ServingArtifact> artifact, ServerConfig config);
  /// Non-owning convenience overload; the artifact must outlive the server
  /// (and any generation still held by a draining worker after reload()).
  Server(const ServingArtifact& artifact, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept thread, the worker pool, and (if configured) the
  /// watchdog.
  void start();

  /// The bound port (resolved even when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Validates `artifact` and atomically swaps it in as the next
  /// generation. In-flight batches finish on their old generation; every
  /// batch popped afterwards runs on the new one. No connection is
  /// dropped. Thread-safe; callable while serving.
  void reload(std::shared_ptr<const ServingArtifact> artifact);

  /// The currently installed artifact generation (starts at 1).
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Begins the graceful drain; idempotent, safe from a signal-poll loop.
  void request_stop();

  /// Joins all threads; returns once every admitted request is answered
  /// and every connection is closed. Blocks until request_stop() happens.
  void wait();

  [[nodiscard]] ServerStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mu;  ///< replies from different workers interleave
    /// CRC framing negotiated via kHello. Guarded by write_mu: the reader
    /// flips it while holding write_mu (after sending the ack), and every
    /// writer already holds write_mu when it frames a reply.
    bool crc = false;
  };

  struct Job {
    std::shared_ptr<Connection> conn;
    ClassifyRequest request;
    Clock::time_point admitted;  ///< for the per-request deadline
  };

  /// Per-worker heartbeat the watchdog samples.
  struct WorkerBeat {
    std::atomic<std::int64_t> busy_since_ns{0};  ///< 0 = idle
    std::atomic<std::uint64_t> batch_seq{0};
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void worker_loop(std::size_t worker_index);
  void watchdog_loop();
  void record_batch(std::size_t batch_size);
  void write_to_conn(Connection& conn, const std::vector<std::uint8_t>& frame);
  [[nodiscard]] std::pair<std::shared_ptr<const ServingArtifact>,
                          std::uint64_t>
  artifact_snapshot() const;

  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  // Refcounted artifact generations (hot reload).
  mutable std::mutex artifact_mu_;
  std::shared_ptr<const ServingArtifact> artifact_;  // guarded by artifact_mu_
  std::atomic<std::uint64_t> generation_{1};

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::thread watchdog_thread_;
  std::atomic<bool> watchdog_stop_{false};
  std::vector<std::unique_ptr<WorkerBeat>> beats_;  // one per worker, fixed

  std::mutex conns_mu_;
  std::vector<std::thread> reader_threads_;        // guarded by conns_mu_
  std::vector<std::weak_ptr<Connection>> conns_;   // guarded by conns_mu_
  std::atomic<std::size_t> live_conns_{0};

  // Admission queue. Workers may exit only when the queue is empty AND no
  // producer can refill it (accept loop done, all readers done).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;           // guarded by queue_mu_
  std::size_t active_readers_ = 0;  // guarded by queue_mu_
  bool accept_done_ = false;        // guarded by queue_mu_

  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> evicted_slow_{0};
  std::atomic<std::uint64_t> rejected_conns_{0};
  std::atomic<std::uint64_t> wedged_events_{0};
  mutable std::mutex stats_mu_;
  std::uint64_t batches_ = 0;                // guarded by stats_mu_
  std::uint64_t max_queue_depth_ = 0;        // guarded by stats_mu_
  std::vector<std::uint64_t> batch_hist_;    // guarded by stats_mu_
};

}  // namespace sparkxd::serve
