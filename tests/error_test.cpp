// Tests for the approximate-DRAM error substrate: subarray profiles, the
// four EDEN error models, weak-cell determinism/nesting, and injection
// statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

namespace sparkxd::error {
namespace {

dram::Geometry geom() { return dram::Geometry::lpddr3_4gb(); }

/// A placement + weight buffer big enough for meaningful statistics.
struct InjectorFixture {
  dram::Geometry g = geom();
  SubarrayProfile profile{g, 42};
  std::size_t n_weights = 200000;
  ChunkPlacement placement =
      mapping::baseline_placement(g, n_weights);
  std::vector<float> weights = std::vector<float>(n_weights, 0.1f);
};

// ------------------------------------------------------------------- profile

TEST(SubarrayProfile, DeterministicPerSeed) {
  const SubarrayProfile a(geom(), 7), b(geom(), 7), c(geom(), 8);
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.weakness(i), b.weakness(i));
  }
  bool differs = false;
  for (std::uint64_t i = 0; i < a.size() && !differs; ++i)
    differs = a.weakness(i) != c.weakness(i);
  EXPECT_TRUE(differs);
}

TEST(SubarrayProfile, WeaknessMeanNearOne) {
  // Use a bigger module for tighter statistics.
  auto g = geom();
  g.subarrays_per_bank = 512;
  const SubarrayProfile p(g, 3);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < p.size(); ++i) sum += p.weakness(i);
  EXPECT_NEAR(sum / static_cast<double>(p.size()), 1.0, 0.1);
}

TEST(SubarrayProfile, RateScalesWithModuleBer) {
  const SubarrayProfile p(geom(), 7);
  EXPECT_DOUBLE_EQ(p.rate(0, 0.0), 0.0);
  EXPECT_NEAR(p.rate(0, 1e-4) / p.rate(0, 1e-6), 100.0, 1e-6);
}

TEST(SubarrayProfile, RateClampedAtHalf) {
  const SubarrayProfile p(geom(), 7, 2.0);  // wide spread
  for (std::uint64_t i = 0; i < p.size(); ++i)
    EXPECT_LE(p.rate(i, 0.4), 0.5);
}

TEST(SubarrayProfile, CountSafeMonotoneInThreshold) {
  const SubarrayProfile p(geom(), 7);
  const double ber = 1e-3;
  std::size_t prev = 0;
  for (const double th : {1e-5, 1e-4, 1e-3, 1e-2, 1.0}) {
    const auto n = p.count_safe(ber, th);
    EXPECT_GE(n, prev);
    prev = n;
  }
  EXPECT_EQ(p.count_safe(ber, 1.0), p.size());
}

TEST(SubarrayProfile, HalfSafeAtThresholdEqualBer) {
  // weakness is lognormal with median < mean=1: more than half the
  // subarrays have rate <= module BER.
  const SubarrayProfile p(geom(), 7);
  const auto safe = p.count_safe(1e-3, 1e-3);
  EXPECT_GT(safe, p.size() / 2);
  EXPECT_LT(safe, p.size());
}

TEST(SubarrayProfile, ZeroSigmaIsUniform) {
  const SubarrayProfile p(geom(), 7, 0.0);
  for (std::uint64_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(p.weakness(i), 1.0, 1e-9);
}

TEST(SubarrayProfile, RejectsOutOfRange) {
  const SubarrayProfile p(geom(), 7);
  EXPECT_THROW((void)p.weakness(p.size()), ContractViolation);
  EXPECT_THROW((void)p.rate(0, 2.0), ContractViolation);
}

// ------------------------------------------------------------------ injector

TEST(Injector, ExpectedFlipRateMatchesBer) {
  InjectorFixture f;
  const double ber = 1e-3;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                          ber);
  // The placement covers a couple of subarrays; the expected rate is
  // ber * (their average weakness), so compare against that.
  const auto bits = static_cast<double>(f.n_weights) * 32.0;
  const double expected = inj.expected_flips(ber);
  Rng rng(1);
  double total = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    auto w = f.weights;
    total += static_cast<double>(inj.inject(w, ber, rng));
  }
  const double measured = total / trials;
  EXPECT_NEAR(measured / expected, 1.0, 0.1);
  // And the absolute rate is the right order of magnitude.
  EXPECT_GT(measured / bits, ber * 0.1);
  EXPECT_LT(measured / bits, ber * 10.0);
}

TEST(Injector, WeakSetsAreNestedAcrossBer) {
  // Cells failing at a low BER must also fail at a higher BER (voltage
  // reduction only adds failures). inject_all_weak flips every weak cell,
  // so the flip count must be monotone in BER.
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                          1e-3);
  std::size_t prev = 0;
  for (const double ber : {1e-6, 1e-5, 1e-4, 1e-3}) {
    auto w = f.weights;
    const auto flips = inj.inject_all_weak(w, ber);
    EXPECT_GE(flips, prev);
    prev = flips;
  }
  EXPECT_GT(prev, 0u);
}

TEST(Injector, FlippedCellsAtLowerBerAreSubsetOfHigherBer) {
  // Prefix stability of the sorted candidate list: the exact cells flipped
  // at BER b1 < b2 must be a subset of those flipped at b2, not merely
  // fewer. Zeroed weights + a clamp range wider than any single-flip value
  // (max 2^127) make the resulting bit pattern the exact weak-cell mask.
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement,
                                              f.n_weights, 42, 1e-3);
  const SanitizeRange wide{-3.4e38f, 3.4e38f};
  const auto mask_at = [&](double ber) {
    std::vector<float> w(f.n_weights, 0.0f);
    inj.inject_all_weak(w, ber, wide);
    std::vector<std::uint32_t> bits(f.n_weights);
    for (std::size_t i = 0; i < f.n_weights; ++i)
      bits[i] = float_to_bits(w[i]);
    return bits;
  };
  const auto low = mask_at(1e-5);
  const auto high = mask_at(1e-3);
  std::size_t low_bits = 0, high_bits = 0;
  for (std::size_t i = 0; i < f.n_weights; ++i) {
    EXPECT_EQ(low[i] & high[i], low[i]) << "weight " << i;
    low_bits += static_cast<std::size_t>(std::popcount(low[i]));
    high_bits += static_cast<std::size_t>(std::popcount(high[i]));
  }
  EXPECT_GT(low_bits, 0u);
  EXPECT_GT(high_bits, low_bits);
}

TEST(Injector, SameSeedSameWeakCells) {
  InjectorFixture f;
  const auto a = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                        1e-3);
  const auto b = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                        1e-3);
  auto wa = f.weights, wb = f.weights;
  (void)a.inject_all_weak(wa, 1e-3);
  (void)b.inject_all_weak(wb, 1e-3);
  EXPECT_EQ(wa, wb);
}

TEST(Injector, DifferentSeedDifferentWeakCells) {
  InjectorFixture f;
  const auto a = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                        1e-3);
  const auto b = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 43,
                        1e-3);
  auto wa = f.weights, wb = f.weights;
  (void)a.inject_all_weak(wa, 1e-3);
  (void)b.inject_all_weak(wb, 1e-3);
  EXPECT_NE(wa, wb);
}

TEST(Injector, ZeroBerNeverFlips) {
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                          1e-3);
  Rng rng(1);
  auto w = f.weights;
  EXPECT_EQ(inj.inject(w, 0.0, rng), 0u);
  EXPECT_EQ(w, f.weights);
}

TEST(Injector, SanitizeClampsCorruptedValues) {
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                          1e-3);
  Rng rng(1);
  auto w = f.weights;
  (void)inj.inject(w, 1e-3, rng, {0.0f, 0.4f});
  for (const float v : w) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 0.4f);
    EXPECT_FALSE(std::isnan(v));
  }
}

TEST(Injector, RejectsBerAboveMax) {
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                          1e-5);
  Rng rng(1);
  auto w = f.weights;
  EXPECT_THROW((void)inj.inject(w, 1e-3, rng), ContractViolation);
}

TEST(Injector, RejectsUndersizedPlacement) {
  InjectorFixture f;
  ChunkPlacement tiny(f.placement.begin(), f.placement.begin() + 2);
  EXPECT_THROW(ErrorInjector::for_weights(f.g, f.profile, {}, tiny,
                                          f.n_weights, 42, 1e-3),
               ContractViolation);
}

TEST(Injector, FlipProbabilityIsHalfForWeakCells) {
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement, f.n_weights, 42,
                          1e-3);
  auto w_all = f.weights;
  const auto all = inj.inject_all_weak(w_all, 1e-3);
  Rng rng(2);
  double sum = 0.0;
  for (int t = 0; t < 10; ++t) {
    auto w = f.weights;
    sum += static_cast<double>(inj.inject(w, 1e-3, rng));
  }
  EXPECT_NEAR(sum / 10.0 / static_cast<double>(all), kWeakCellFailProb, 0.05);
}

// ------------------------------------------------------------ error models

class ModelKinds : public ::testing::TestWithParam<ErrorModelKind> {};

TEST_P(ModelKinds, AllModelsProduceExpectedOrderOfFlips) {
  InjectorFixture f;
  ErrorModelSpec spec;
  spec.kind = GetParam();
  const double ber = 1e-3;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, spec, f.placement, f.n_weights, 42,
                          ber);
  Rng rng(3);
  auto w = f.weights;
  const auto flips = inj.inject(w, ber, rng);
  const auto bits = static_cast<double>(f.n_weights) * 32.0;
  EXPECT_GT(flips, bits * ber * 0.05);
  EXPECT_LT(flips, bits * ber * 20.0);
}

TEST_P(ModelKinds, ToStringIsStable) {
  EXPECT_NE(std::string(to_string(GetParam())).find("Model"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelKinds,
    ::testing::Values(ErrorModelKind::kModel0Uniform,
                      ErrorModelKind::kModel1Bitline,
                      ErrorModelKind::kModel2Wordline,
                      ErrorModelKind::kModel3DataDependent),
    [](const auto& info) {
      switch (info.param) {
        case ErrorModelKind::kModel0Uniform: return "Model0";
        case ErrorModelKind::kModel1Bitline: return "Model1";
        case ErrorModelKind::kModel2Wordline: return "Model2";
        case ErrorModelKind::kModel3DataDependent: return "Model3";
      }
      return "unknown";
    });

TEST(ErrorModels, Model1ConcentratesOnBitlines) {
  // Under Model-1, weak cells cluster on a subset of bitlines; under
  // Model-0 they spread across all of them. With the baseline placement a
  // weight's bitline within its row is (weight_index mod 512, bit), so we
  // count how many distinct bitlines receive at least one flip.
  InjectorFixture f;
  const std::size_t bitlines = 512 * 32;
  const auto distinct_bitlines = [&](ErrorModelKind kind) {
    ErrorModelSpec spec;
    spec.kind = kind;
    spec.stripe_sigma = 2.0;
    const auto inj = ErrorInjector::for_weights(f.g, f.profile, spec, f.placement, f.n_weights,
                            42, 1e-3);
    auto w = f.weights;
    (void)inj.inject_all_weak(w, 1e-3);
    std::vector<char> hit(bitlines, 0);
    const std::uint32_t clean = float_to_bits(0.1f);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const std::uint32_t diff = float_to_bits(w[i]) ^ clean;
      if (!diff) continue;
      for (unsigned b = 0; b < 32; ++b)
        if ((diff >> b) & 1u) hit[(i % 512) * 32 + b] = 1;
    }
    std::size_t n = 0;
    for (const char h : hit) n += static_cast<std::size_t>(h);
    return n;
  };
  const auto m0 = distinct_bitlines(ErrorModelKind::kModel0Uniform);
  const auto m1 = distinct_bitlines(ErrorModelKind::kModel1Bitline);
  EXPECT_LT(m1, m0 * 8 / 10) << "Model-1 flips should cluster on fewer "
                                "bitlines than Model-0";
}

TEST(ErrorModels, Model3PrefersSetBits) {
  // With p1 >> p0, weak cells holding 1 flip far more often than those
  // holding 0. Use an all-bits-set weight vs an all-bits-clear one.
  InjectorFixture f;
  ErrorModelSpec spec;
  spec.kind = ErrorModelKind::kModel3DataDependent;
  spec.p1 = 0.99;
  spec.p0 = 0.01;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, spec, f.placement, f.n_weights, 42,
                          1e-3);
  Rng rng(5);
  std::vector<float> ones(f.n_weights, bits_to_float(0xFFFFFFFFu));
  std::vector<float> zeros(f.n_weights, bits_to_float(0x0u));
  // No sanitization (lo=-inf style range wide enough): use a huge range so
  // flips are counted, not clamped away.
  const SanitizeRange wide{-3.4e38f, 3.4e38f};
  const auto flips_ones = inj.inject(ones, 1e-3, rng, wide);
  const auto flips_zeros = inj.inject(zeros, 1e-3, rng, wide);
  EXPECT_GT(flips_ones, flips_zeros * 5);
}

// ---------------------------------------- delta injection + frozen tables

TEST(DeltaInjection, RevertRestoresWeightsBitwise) {
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement,
                                              f.n_weights, 42, 1e-3);
  Rng rng(11);
  auto w = f.weights;
  std::vector<WeightFlip> log;
  const auto flips = inj.inject(w, 1e-3, rng, {0.0f, 0.4f}, &log);
  ASSERT_GT(flips, 0u);
  EXPECT_EQ(flips, log.size());
  EXPECT_NE(w, f.weights);
  revert_flips(w, log);
  EXPECT_EQ(w, f.weights);  // exact pre-injection bit patterns
}

TEST(DeltaInjection, LoggingDoesNotChangeTheInjection) {
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement,
                                              f.n_weights, 42, 1e-3);
  Rng a(12), b(12);
  auto wa = f.weights, wb = f.weights;
  std::vector<WeightFlip> log;
  const auto na = inj.inject(wa, 1e-3, a);
  const auto nb = inj.inject(wb, 1e-3, b, {}, &log);
  EXPECT_EQ(na, nb);
  EXPECT_EQ(wa, wb);
}

TEST(FrozenInjection_, MatchesLegacyInjectBitwise) {
  // The frozen table must replay the exact legacy behaviour at its BER:
  // same flips, same resulting weights, same Rng consumption (the streams
  // must stay aligned for bit-identical Monte-Carlo trials).
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement,
                                              f.n_weights, 42, 1e-3);
  for (const double ber : {1e-5, 1e-4, 1e-3}) {
    const auto frozen = inj.freeze(ber);
    Rng a(13), b(13);
    auto wa = f.weights, wb = f.weights;
    const auto na = inj.inject(wa, ber, a, {0.0f, 0.4f});
    const auto nb = frozen.inject(wb, b, {0.0f, 0.4f});
    EXPECT_EQ(na, nb) << "ber " << ber;
    EXPECT_EQ(wa, wb) << "ber " << ber;
    EXPECT_EQ(a.next_u64(), b.next_u64()) << "Rng streams diverged";
  }
}

TEST(FrozenInjection_, Model3MatchesLegacyInjectBitwise) {
  // Model-3 decides per stored bit value, so the frozen path must read the
  // same current bits in the same order.
  InjectorFixture f;
  ErrorModelSpec spec;
  spec.kind = ErrorModelKind::kModel3DataDependent;
  spec.p1 = 0.9;
  spec.p0 = 0.1;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, spec,
                                              f.placement, f.n_weights, 42,
                                              1e-3);
  const auto frozen = inj.freeze(1e-3);
  Rng a(14), b(14);
  auto wa = f.weights, wb = f.weights;
  const auto na = inj.inject(wa, 1e-3, a, {0.0f, 0.4f});
  const auto nb = frozen.inject(wb, b, {0.0f, 0.4f});
  EXPECT_EQ(na, nb);
  EXPECT_EQ(wa, wb);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(FrozenInjection_, TablesAreNestedAcrossBer) {
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement,
                                              f.n_weights, 42, 1e-3);
  std::size_t prev = 0;
  for (const double ber : {1e-6, 1e-5, 1e-4, 1e-3}) {
    const auto frozen = inj.freeze(ber);
    EXPECT_EQ(frozen.ber(), ber);
    EXPECT_GE(frozen.size(), prev);
    prev = frozen.size();
  }
  // At the enumerated maximum the table is the whole candidate list.
  EXPECT_EQ(inj.freeze(1e-3).size(), inj.candidate_count());
  EXPECT_THROW((void)inj.freeze(1e-2), ContractViolation);
}

TEST(FrozenInjection_, DeltaRoundTripThroughTheTable) {
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, {}, f.placement,
                                              f.n_weights, 42, 1e-3);
  const auto frozen = inj.freeze(1e-3);
  Rng rng(15);
  auto w = f.weights;
  // Several consecutive inject/revert cycles on ONE buffer (the Monte-Carlo
  // trial pattern) must leave it untouched every time.
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<WeightFlip> log;
    const auto flips = frozen.inject(w, rng, {0.0f, 0.4f}, &log);
    EXPECT_EQ(flips, log.size());
    revert_flips(w, log);
    EXPECT_EQ(w, f.weights) << "trial " << trial;
  }
}

TEST(FrozenInjection_, CarriesRetentionCandidatesAtAnyBer) {
  // Retention-weak cells are below every BER threshold, so a table frozen
  // at BER 0 still injects them — same composition rule as inject().
  InjectorFixture f;
  ErrorModelSpec spec;
  spec.retention.enabled = true;
  spec.retention.interval_multiplier = 32.0;
  const auto inj = ErrorInjector::for_weights(f.g, f.profile, spec,
                                              f.placement, f.n_weights, 42,
                                              0.0);
  const auto frozen = inj.freeze(0.0);
  EXPECT_EQ(frozen.size(), inj.retention_candidate_count());
  EXPECT_GT(frozen.size(), 0u);
  Rng a(16), b(16);
  auto wa = f.weights, wb = f.weights;
  EXPECT_EQ(inj.inject(wa, 0.0, a), frozen.inject(wb, b));
  EXPECT_EQ(wa, wb);
}

// ----------------------------------------------------------------- retention

RetentionSpec retention_at(double multiplier) {
  RetentionSpec r;
  r.enabled = true;
  r.interval_multiplier = multiplier;
  return r;
}

ErrorModelSpec spec_with_retention(double multiplier) {
  ErrorModelSpec spec;
  spec.retention = retention_at(multiplier);
  return spec;
}

TEST(Retention, FailProbabilityShape) {
  // Disabled: exactly zero. Nominal cadence on an average subarray:
  // negligible (~1e-8). Each relaxation step raises it monotonically, as
  // does subarray weakness.
  EXPECT_EQ(retention_fail_probability(RetentionSpec{}, 1.0), 0.0);
  const double p1 = retention_fail_probability(retention_at(1.0), 1.0);
  EXPECT_GT(p1, 0.0);
  EXPECT_LT(p1, 1e-6);
  double prev = p1;
  for (const double m : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const double p = retention_fail_probability(retention_at(m), 1.0);
    EXPECT_GT(p, prev) << "multiplier " << m;
    prev = p;
  }
  // 32x relaxation lands in the same decades as the voltage axis's BERs.
  const double p32 = retention_fail_probability(retention_at(32.0), 1.0);
  EXPECT_GT(p32, 1e-4);
  EXPECT_LT(p32, 1e-2);
  // Weak subarrays leak faster.
  EXPECT_GT(retention_fail_probability(retention_at(8.0), 4.0),
            retention_fail_probability(retention_at(8.0), 1.0));
  EXPECT_EQ(retention_fail_probability(retention_at(8.0), 0.0), 0.0);
}

TEST(Retention, SpecValidation) {
  EXPECT_NO_THROW(RetentionSpec{}.validate());  // disabled: anything goes
  EXPECT_NO_THROW(retention_at(64.0).validate());
  EXPECT_THROW(retention_at(0.5).validate(), ContractViolation);
  auto bad_sigma = retention_at(8.0);
  bad_sigma.sigma_decades = 0.0;
  EXPECT_THROW(bad_sigma.validate(), ContractViolation);
}

TEST(Retention, InjectorEnumeratesRetentionCandidates) {
  InjectorFixture f;
  // Voltage axis quiet (tiny max BER), retention relaxed 32x: candidates
  // are (almost) purely retention failures, deterministic per seed.
  const auto inj = ErrorInjector::for_weights(
      f.g, f.profile, spec_with_retention(32.0), f.placement, f.n_weights,
      42, 1e-12);
  EXPECT_GT(inj.retention_candidate_count(), 0u);
  EXPECT_LE(inj.retention_candidate_count(), inj.candidate_count());
  // ~p32 * 6.4M cells. The band is wide: the baseline placement packs the
  // payload into very few subarrays, so the draw of their weakness
  // multipliers moves the count through the nonlinear tail of Phi.
  const double p32 = retention_fail_probability(retention_at(32.0), 1.0);
  const double expected = p32 * static_cast<double>(f.n_weights) * 32;
  EXPECT_GT(static_cast<double>(inj.retention_candidate_count()),
            expected / 50);
  EXPECT_LT(static_cast<double>(inj.retention_candidate_count()),
            expected * 50);
  // Nominal cadence: the same payload carries (essentially) none.
  const auto nominal = ErrorInjector::for_weights(
      f.g, f.profile, spec_with_retention(1.0), f.placement, f.n_weights,
      42, 1e-12);
  EXPECT_LT(nominal.retention_candidate_count(), 5u);
  // Determinism in the seed.
  const auto again = ErrorInjector::for_weights(
      f.g, f.profile, spec_with_retention(32.0), f.placement, f.n_weights,
      42, 1e-12);
  EXPECT_EQ(again.retention_candidate_count(),
            inj.retention_candidate_count());
}

TEST(Retention, WeakSetsAreNestedAcrossMultipliers) {
  // A cell that leaks past an 8x window also leaks past a 32x window: the
  // deterministic per-cell uniform is compared against a larger probability,
  // so the flipped set at 8x is a subset of the one at 32x.
  InjectorFixture f;
  const auto flipped_at = [&](double multiplier) {
    const auto inj = ErrorInjector::for_weights(
        f.g, f.profile, spec_with_retention(multiplier), f.placement,
        f.n_weights, 42, 1e-12);
    auto w = f.weights;
    (void)inj.inject_all_weak(w, 1e-12);
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < w.size(); ++i)
      if (w[i] != f.weights[i]) idx.push_back(i);
    return idx;
  };
  const auto at8 = flipped_at(8.0);
  const auto at32 = flipped_at(32.0);
  ASSERT_FALSE(at32.empty());
  EXPECT_LT(at8.size(), at32.size());
  for (const auto i : at8)
    EXPECT_TRUE(std::binary_search(at32.begin(), at32.end(), i))
        << "weight " << i << " flipped at 8x but not at 32x";
}

TEST(Retention, ComposesWithVoltageWeakCellsWithoutDuplicates) {
  InjectorFixture f;
  const auto voltage_only = ErrorInjector::for_weights(
      f.g, f.profile, {}, f.placement, f.n_weights, 42, 1e-3);
  const auto composed = ErrorInjector::for_weights(
      f.g, f.profile, spec_with_retention(32.0), f.placement, f.n_weights,
      42, 1e-3);
  // The union grows and the retention share is accounted.
  EXPECT_GT(composed.candidate_count(), voltage_only.candidate_count());
  EXPECT_GT(composed.retention_candidate_count(), 0u);
  // No duplicate candidates: every reported flip changes a distinct bit, so
  // the number of changed bits equals the flip count (duplicates would
  // cancel pairwise and undercount). The full-float range keeps the
  // sanitizer from clamping extra bits away.
  auto w = f.weights;
  const auto flips = composed.inject_all_weak(
      w, 1e-3,
      {-std::numeric_limits<float>::max(), std::numeric_limits<float>::max()});
  std::size_t changed_bits = 0;
  for (std::size_t i = 0; i < w.size(); ++i)
    changed_bits += static_cast<std::size_t>(
        std::popcount(float_to_bits(w[i]) ^ float_to_bits(f.weights[i])));
  EXPECT_EQ(changed_bits, flips);
}

TEST(Retention, RetentionCellsFlipAtAnyInjectionBer) {
  // Retention failures do not care about the voltage: they flip even when
  // the injection BER is zero (the bank is at nominal voltage but the
  // refresh interval is relaxed).
  InjectorFixture f;
  const auto inj = ErrorInjector::for_weights(
      f.g, f.profile, spec_with_retention(32.0), f.placement, f.n_weights,
      42, 0.0);
  EXPECT_GT(inj.retention_candidate_count(), 0u);
  auto w = f.weights;
  const auto flips = inj.inject_all_weak(w, 0.0);
  EXPECT_EQ(flips, inj.retention_candidate_count());
}

}  // namespace
}  // namespace sparkxd::error
