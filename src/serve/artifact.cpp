#include "serve/artifact.hpp"

#include <cmath>
#include <cstring>
#include <fstream>

#include "common/contracts.hpp"
#include "snn/model_io.hpp"

namespace sparkxd::serve {

namespace {

constexpr char kMagic[4] = {'S', 'X', 'D', 'A'};
constexpr std::uint32_t kVersion = 1;
// A placement or frozen table bigger than this is a corrupt length field,
// not a workload (the largest built-in scenarios stay far below it).
constexpr std::uint64_t kMaxElems = 1ull << 32;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  SPARKXD_REQUIRE(is.good(), "truncated artifact file");
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  std::uint64_t n = 0;
  read_pod(is, n);
  SPARKXD_REQUIRE(n <= 4096, "artifact string length is absurd");
  std::string s(static_cast<std::size_t>(n), '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  SPARKXD_REQUIRE(is.good(), "truncated artifact file");
  return s;
}

void write_placement(std::ostream& os, const error::ChunkPlacement& p) {
  write_pod(os, static_cast<std::uint64_t>(p.size()));
  for (const auto& a : p) {
    write_pod(os, a.channel);
    write_pod(os, a.rank);
    write_pod(os, a.chip);
    write_pod(os, a.bank);
    write_pod(os, a.subarray);
    write_pod(os, a.row);
    write_pod(os, a.column);
  }
}

error::ChunkPlacement read_placement(std::istream& is) {
  std::uint64_t n = 0;
  read_pod(is, n);
  SPARKXD_REQUIRE(n <= kMaxElems, "artifact declares an absurd placement");
  error::ChunkPlacement p(static_cast<std::size_t>(n));
  for (auto& a : p) {
    read_pod(is, a.channel);
    read_pod(is, a.rank);
    read_pod(is, a.chip);
    read_pod(is, a.bank);
    read_pod(is, a.subarray);
    read_pod(is, a.row);
    read_pod(is, a.column);
  }
  return p;
}

void write_frozen(std::ostream& os, const error::FrozenInjection& f) {
  write_pod(os, f.ber());
  write_pod(os, f.p0());
  write_pod(os, f.p1());
  write_pod(os, static_cast<std::uint8_t>(f.data_dependent() ? 1 : 0));
  write_pod(os, static_cast<std::uint64_t>(f.payload_bytes()));
  write_pod(os, static_cast<std::uint64_t>(f.entries().size()));
  for (const auto& e : f.entries()) {
    write_pod(os, e.word);
    write_pod(os, e.bit);
  }
}

error::FrozenInjection read_frozen(std::istream& is) {
  double ber = 0.0, p0 = 0.0, p1 = 0.0;
  read_pod(is, ber);
  read_pod(is, p0);
  read_pod(is, p1);
  std::uint8_t dd = 0;
  read_pod(is, dd);
  SPARKXD_REQUIRE(dd <= 1, "artifact data-dependence flag is corrupt");
  std::uint64_t payload = 0, n = 0;
  read_pod(is, payload);
  read_pod(is, n);
  SPARKXD_REQUIRE(n <= kMaxElems, "artifact declares an absurd frozen table");
  std::vector<error::FrozenInjection::Entry> entries(
      static_cast<std::size_t>(n));
  for (auto& e : entries) {
    read_pod(is, e.word);
    read_pod(is, e.bit);
  }
  // from_parts re-validates every entry against the payload size.
  return error::FrozenInjection::from_parts(std::move(entries), ber, p0, p1,
                                            dd != 0,
                                            static_cast<std::size_t>(payload));
}

}  // namespace

void ServingArtifact::validate() const {
  SPARKXD_REQUIRE(!scenario.empty(), "artifact needs a scenario name");
  SPARKXD_REQUIRE(std::isfinite(v_supply) && v_supply > 0.0,
                  "artifact supply voltage must be positive and finite");
  SPARKXD_REQUIRE(std::isfinite(module_ber) && module_ber >= 0.0 &&
                      module_ber < 1.0,
                  "artifact module BER must lie in [0, 1)");
  const auto& cfg = model.net.config();
  SPARKXD_REQUIRE(std::isfinite(weight_clip) && weight_clip > cfg.stdp.w_min,
                  "artifact weight clip must exceed the weight floor");
  SPARKXD_REQUIRE(layers.size() == model.net.n_layers(),
                  "artifact needs one layer entry per network layer");
  for (std::size_t l = 0; l < layers.size(); ++l) {
    SPARKXD_REQUIRE(!layers[l].placement.empty(),
                    "artifact layer placement is empty");
    SPARKXD_REQUIRE(layers[l].frozen.payload_bytes() ==
                        cfg.layer_weight_count(l) * sizeof(float),
                    "artifact frozen table does not cover the layer weights");
  }
}

ServingArtifact make_artifact(std::string scenario_name,
                              core::ArtifactState&& captured) {
  SPARKXD_REQUIRE(captured.model.has_value(),
                  "artifact capture holds no model — run run_pipeline with "
                  "this ArtifactState first");
  ServingArtifact art(std::move(*captured.model));
  art.scenario = std::move(scenario_name);
  art.v_supply = captured.v_supply;
  art.module_ber = captured.module_ber;
  art.weight_clip = captured.weight_clip;
  SPARKXD_REQUIRE(captured.placement.size() == captured.frozen.size() &&
                      captured.placement.size() == art.model.net.n_layers(),
                  "artifact capture is incomplete — placement/frozen tables "
                  "missing for some layers");
  art.layers.reserve(captured.placement.size());
  for (std::size_t l = 0; l < captured.placement.size(); ++l)
    art.layers.push_back({std::move(captured.placement[l].chunks),
                          std::move(captured.frozen[l]),
                          captured.placement[l].ber_th});
  art.validate();
  return art;
}

void save_artifact(const ServingArtifact& artifact, const std::string& path) {
  artifact.validate();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SPARKXD_REQUIRE(os.good(), "cannot open artifact file for writing");
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_string(os, artifact.scenario);
  write_pod(os, artifact.v_supply);
  write_pod(os, artifact.module_ber);
  write_pod(os, artifact.weight_clip);
  // The model section embeds the complete model_io container (magic +
  // version + payload), so artifact and standalone model files share one
  // format and one loader.
  snn::save_model(artifact.model, static_cast<std::ostream&>(os));
  write_pod(os, static_cast<std::uint64_t>(artifact.layers.size()));
  for (const auto& layer : artifact.layers) {
    write_pod(os, layer.ber_th);
    write_placement(os, layer.placement);
    write_frozen(os, layer.frozen);
  }
  os.close();
  SPARKXD_ENSURE(os.good(), "artifact write failed");
}

ServingArtifact load_artifact(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SPARKXD_REQUIRE(is.good(), "cannot open artifact file for reading");
  char magic[4];
  is.read(magic, sizeof(magic));
  SPARKXD_REQUIRE(is.good() && std::memcmp(magic, kMagic, 4) == 0,
                  "not a SparkXD serving artifact");
  std::uint32_t version = 0;
  read_pod(is, version);
  SPARKXD_REQUIRE(version == kVersion, "unsupported artifact version");
  const std::string scenario = read_string(is);
  double v_supply = 0.0, module_ber = 0.0;
  float weight_clip = 0.0f;
  read_pod(is, v_supply);
  read_pod(is, module_ber);
  read_pod(is, weight_clip);
  ServingArtifact art(snn::load_model(static_cast<std::istream&>(is)));
  art.scenario = scenario;
  art.v_supply = v_supply;
  art.module_ber = module_ber;
  art.weight_clip = weight_clip;
  std::uint64_t n_layers = 0;
  read_pod(is, n_layers);
  SPARKXD_REQUIRE(n_layers == art.model.net.n_layers(),
                  "artifact layer count does not match the stored model");
  art.layers.reserve(static_cast<std::size_t>(n_layers));
  for (std::uint64_t l = 0; l < n_layers; ++l) {
    LayerArtifact layer;
    read_pod(is, layer.ber_th);
    layer.placement = read_placement(is);
    layer.frozen = read_frozen(is);
    art.layers.push_back(std::move(layer));
  }
  art.validate();
  return art;
}

std::shared_ptr<const ServingArtifact> load_artifact_shared(
    const std::string& path) {
  return std::make_shared<const ServingArtifact>(load_artifact(path));
}

}  // namespace sparkxd::serve
