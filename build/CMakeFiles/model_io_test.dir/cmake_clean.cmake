file(REMOVE_RECURSE
  "CMakeFiles/model_io_test.dir/tests/model_io_test.cpp.o"
  "CMakeFiles/model_io_test.dir/tests/model_io_test.cpp.o.d"
  "model_io_test"
  "model_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
