#include "snn/lif.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::snn {

LifLayer::LifLayer(std::size_t n, const LifParams& p, float dt_ms)
    : p_(p),
      decay_m_(std::exp(-dt_ms / p.tau_m_ms)),
      decay_theta_(std::exp(-dt_ms / p.tau_theta_ms)),
      v_(n, p.v_rest),
      theta_(n, 0.0f),
      refractory_(n, 0) {
  SPARKXD_REQUIRE(n > 0, "LIF layer must have at least one neuron");
  SPARKXD_REQUIRE(p.tau_m_ms > 0.0f && p.tau_theta_ms > 0.0f,
                  "time constants must be positive");
  SPARKXD_REQUIRE(dt_ms > 0.0f, "dt must be positive");
  SPARKXD_REQUIRE(p.v_thresh > p.v_reset,
                  "threshold must sit above the reset potential");
}

void LifLayer::reset_dynamics() {
  std::fill(v_.begin(), v_.end(), p_.v_rest);
  std::fill(refractory_.begin(), refractory_.end(), 0);
}

void LifLayer::reset_all() {
  reset_dynamics();
  std::fill(theta_.begin(), theta_.end(), 0.0f);
}

bool LifLayer::silent_at_rest() const noexcept {
  if (plastic_) return false;
  for (const float th : theta_)
    if (!(p_.v_rest < p_.v_thresh + th)) return false;
  return true;
}

bool LifLayer::at_exact_rest() const noexcept {
  for (const float v : v_)
    if (v != p_.v_rest) return false;
  for (const auto r : refractory_)
    if (r != 0) return false;
  return true;
}

void LifLayer::step(const std::vector<float>& input_current,
                    std::vector<std::uint32_t>& spikes_out) {
  SPARKXD_REQUIRE(input_current.size() == v_.size(),
                  "input current width must match layer size");
  spikes_out.clear();
  const std::size_t n = v_.size();
  // Integrate, then collect threshold crossings.
  for (std::size_t i = 0; i < n; ++i) {
    if (refractory_[i] > 0) {
      --refractory_[i];
      v_[i] = p_.v_reset;
      continue;
    }
    // Leak toward rest, then integrate this step's synaptic drive.
    v_[i] = p_.v_rest + (v_[i] - p_.v_rest) * decay_m_ + input_current[i];
    if (plastic_) theta_[i] *= decay_theta_;
    if (v_[i] >= p_.v_thresh + theta_[i])
      spikes_out.push_back(static_cast<std::uint32_t>(i));
  }
  const bool compete = plastic_ || p_.compete_at_inference;
  // Hard WTA: of the simultaneous crossings keep only the neuron whose
  // potential exceeds its threshold by the largest margin.
  if (compete && p_.winner_take_all && spikes_out.size() > 1) {
    std::uint32_t best = spikes_out.front();
    float best_margin = v_[best] - theta_[best];
    for (const auto s : spikes_out) {
      const float margin = v_[s] - theta_[s];
      if (margin > best_margin) {
        best = s;
        best_margin = margin;
      }
    }
    spikes_out.assign(1, best);
  }
  for (const auto s : spikes_out) {
    v_[s] = p_.v_reset;
    refractory_[s] = p_.refractory_steps;
    if (plastic_) theta_[s] += p_.theta_plus;
  }
  // Lateral inhibition: each spike pushes every *other* neuron down.
  if (compete && !spikes_out.empty() && p_.inhibition > 0.0f) {
    const float total =
        p_.inhibition * static_cast<float>(spikes_out.size());
    for (std::size_t i = 0; i < n; ++i) v_[i] -= total;
    // Spiking neurons should not inhibit themselves: undo their own share.
    for (const auto s : spikes_out) v_[s] += p_.inhibition;
    // Do not let inhibition push potentials unphysically far below reset.
    const float floor = p_.v_rest - 5.0f * p_.v_thresh;
    for (std::size_t i = 0; i < n; ++i)
      if (v_[i] < floor) v_[i] = floor;
  }
}

}  // namespace sparkxd::snn
