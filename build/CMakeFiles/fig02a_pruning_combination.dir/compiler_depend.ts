# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02a_pruning_combination.
