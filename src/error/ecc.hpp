#pragma once
// SECDED ECC — the conventional alternative to SparkXD's approach.
//
// Instead of teaching the network to tolerate errors and mapping around weak
// subarrays, a deployment can protect the stored weights with a
// single-error-correct / double-error-detect Hamming(72,64) code, at the
// cost of 12.5% extra storage and the energy to fetch and check it.
// bench/ablation_ecc quantifies the trade-off against SparkXD at each BER.
//
// Layout: one 8-bit check byte per 64-bit data word (7 Hamming parity bits
// + 1 overall parity bit).

#include <cstdint>
#include <vector>

namespace sparkxd::error {

/// Outcome of decoding one protected word.
enum class SecdedStatus : std::uint8_t {
  kClean,          ///< no error
  kCorrected,      ///< single-bit error corrected
  kUncorrectable,  ///< double-bit error detected (data unreliable)
};

/// Computes the 8 check bits for a 64-bit data word.
[[nodiscard]] std::uint8_t secded_encode(std::uint64_t data);

/// Checks (and, for single-bit errors, corrects in place) a data word
/// against its check byte. Errors in the check byte itself are handled.
[[nodiscard]] SecdedStatus secded_decode(std::uint64_t& data,
                                         std::uint8_t check);

/// Aggregate results of scrubbing a whole buffer.
struct ScrubStats {
  std::size_t words = 0;
  std::size_t corrected = 0;
  std::size_t uncorrectable = 0;
};

/// Encodes an FP32 weight buffer: one check byte per 2 weights (64 bits).
/// Requires an even number of weights (pad the model if necessary).
[[nodiscard]] std::vector<std::uint8_t> ecc_encode_weights(
    const std::vector<float>& weights);

/// Decodes/corrects a (possibly corrupted) weight buffer in place against
/// check bytes computed from the clean weights. Uncorrectable words are
/// left as-is (detected but unrecoverable without a higher-level retry).
ScrubStats ecc_scrub_weights(std::vector<float>& weights,
                             const std::vector<std::uint8_t>& checks);

/// Storage overhead of the code (check bytes / data bytes) = 1/8.
inline constexpr double kEccStorageOverhead = 0.125;

}  // namespace sparkxd::error
