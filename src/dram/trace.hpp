#pragma once
// Access traces and their statistics — the interface between workload
// generation (src/mapping TraceGenerator), the controller simulation, and
// the energy model ("DRAM access traces & statistics" in the paper's Fig. 10
// tool flow).

#include <cstdint>
#include <vector>

#include "dram/geometry.hpp"

namespace sparkxd::dram {

enum class AccessType : std::uint8_t { kRead, kWrite };

/// One burst access: the address identifies the first column of a BL8 burst.
struct Access {
  Address addr;
  AccessType type = AccessType::kRead;
};

using AccessTrace = std::vector<Access>;

/// Row-buffer outcome of a single access (paper §I-B / §II-B1).
enum class RowBufferOutcome : std::uint8_t {
  kHit,      ///< requested row already in the row buffer
  kMiss,     ///< bank idle: ACT needed
  kConflict  ///< another row open: PRE + ACT needed
};

/// Per-access command-issue instants recorded by Controller::run when a
/// timeline sink is supplied. `pre_ns`/`act_ns` are negative when the access
/// needed no PRE/ACT (hits, and misses need no PRE). The property tests use
/// these to assert the controller's timing invariants (monotone completion,
/// no command inside a refresh window) without re-deriving the schedule.
struct AccessTiming {
  RowBufferOutcome outcome = RowBufferOutcome::kMiss;
  double pre_ns = -1.0;         ///< PRE issue time (conflicts only)
  double act_ns = -1.0;         ///< ACT issue time (misses and conflicts)
  double cmd_ns = 0.0;          ///< RD/WR column-command issue time
  double data_start_ns = 0.0;   ///< first data beat on the bus
  double data_end_ns = 0.0;     ///< burst completion
};

/// Aggregate statistics produced by the controller for one trace.
struct TraceStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t activates = 0;   ///< ACT commands issued
  std::uint64_t precharges = 0;  ///< PRE commands issued
  std::uint64_t reads = 0;       ///< RD bursts
  std::uint64_t writes = 0;      ///< WR bursts
  std::uint64_t refreshes = 0;   ///< all-bank REF commands within the makespan
  /// Per-region REF counts when the controller runs a RefreshRegions plan
  /// (one entry per region, in plan order); empty in single-policy mode, so
  /// existing reports and digests are untouched.
  std::vector<std::uint64_t> region_refreshes;
  double total_time_ns = 0.0;    ///< makespan of the trace

  [[nodiscard]] double hit_rate() const noexcept {
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  [[nodiscard]] double bytes_per_ns(std::uint64_t burst_bytes) const noexcept {
    return total_time_ns > 0.0
               ? static_cast<double>(accesses * burst_bytes) / total_time_ns
               : 0.0;
  }
};

}  // namespace sparkxd::dram
