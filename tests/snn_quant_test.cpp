// Tests for the quantized weight storage (snn/quant): round-trip error
// bounds, code monotonicity, idempotence, and shape/domain contracts —
// property-style over randomized weight matrices.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "snn/quant.hpp"

namespace sparkxd::snn {
namespace {

std::vector<float> random_weights(Rng& rng, std::size_t n_neurons,
                                  std::size_t n_inputs, double w_max) {
  std::vector<float> w(n_neurons * n_inputs);
  for (auto& x : w) x = static_cast<float>(rng.uniform(0.0, w_max));
  return w;
}

TEST(Quant, RoundTripErrorWithinHalfScalePerWeight) {
  Rng rng(1);
  for (std::size_t iter = 0; iter < 10; ++iter) {
    const std::size_t n_neurons = 1 + iter, n_inputs = 7 + 3 * iter;
    const auto w = random_weights(rng, n_neurons, n_inputs, 1.0);
    const auto q = quantize(w, n_neurons, n_inputs);
    const auto back = dequantize(q);
    ASSERT_EQ(back.size(), w.size());
    for (std::size_t n = 0; n < n_neurons; ++n) {
      const float bound = quantization_error_bound(q, n);
      EXPECT_EQ(bound, q.row_scale[n] * 0.5f);
      for (std::size_t i = 0; i < n_inputs; ++i) {
        const std::size_t idx = n * n_inputs + i;
        // lround ties plus float rounding: half a scale step plus slack.
        EXPECT_NEAR(back[idx], w[idx], bound * (1.0f + 1e-4f) + 1e-7f)
            << "neuron " << n << " input " << i;
      }
    }
  }
}

TEST(Quant, CodesAreMonotoneInTheWeights) {
  // Within a row, a larger weight can never get a smaller code: the affine
  // map is monotone, which is what keeps relative synapse ordering intact
  // through storage.
  Rng rng(2);
  const std::size_t n_inputs = 64;
  const auto w = random_weights(rng, 4, n_inputs, 0.8);
  const auto q = quantize(w, 4, n_inputs);
  for (std::size_t n = 0; n < 4; ++n)
    for (std::size_t i = 0; i < n_inputs; ++i)
      for (std::size_t j = 0; j < n_inputs; ++j) {
        const std::size_t a = n * n_inputs + i, b = n * n_inputs + j;
        if (w[a] > w[b]) {
          EXPECT_GE(q.codes[a], q.codes[b])
              << "monotonicity violated in row " << n;
        }
      }
}

TEST(Quant, QuantizeIsIdempotentOnDequantizedWeights) {
  // Re-quantizing a dequantized matrix reproduces the codes exactly: the
  // representable grid is a fixed point of the round trip.
  Rng rng(3);
  const auto w = random_weights(rng, 6, 32, 1.0);
  const auto q1 = quantize(w, 6, 32);
  const auto q2 = quantize(dequantize(q1), 6, 32);
  EXPECT_EQ(q1.codes, q2.codes);
  EXPECT_EQ(q1.row_scale, q2.row_scale);
}

TEST(Quant, RowMaxMapsToFullCodeAndScaleReconstructsIt) {
  std::vector<float> w{0.0f, 0.1f, 0.4f,   // row 0, max 0.4
                       0.2f, 0.05f, 0.2f}; // row 1, max 0.2
  const auto q = quantize(w, 2, 3);
  EXPECT_EQ(q.codes[2], 255);  // the row maximum always saturates the code
  EXPECT_FLOAT_EQ(q.row_scale[0], 0.4f / 255.0f);
  const auto back = dequantize(q);
  EXPECT_FLOAT_EQ(back[2], 0.4f);
  EXPECT_FLOAT_EQ(back[3], 0.2f);
}

TEST(Quant, AllZeroRowStaysZeroWithUnitScale) {
  const std::vector<float> w(8, 0.0f);
  const auto q = quantize(w, 1, 8);
  EXPECT_FLOAT_EQ(q.row_scale[0], 1.0f);
  for (const auto c : q.codes) EXPECT_EQ(c, 0);
  for (const float v : dequantize(q)) EXPECT_EQ(v, 0.0f);
}

TEST(Quant, SizeBytesIsOneBytePerSynapse) {
  Rng rng(4);
  const auto w = random_weights(rng, 3, 5, 1.0);
  EXPECT_EQ(quantize(w, 3, 5).size_bytes(), 15u);
}

TEST(Quant, RejectsShapeMismatchAndNegativeWeights) {
  std::vector<float> w(12, 0.5f);
  EXPECT_THROW((void)quantize(w, 3, 5), ContractViolation);  // 15 != 12
  w[3] = -0.1f;
  EXPECT_THROW((void)quantize(w, 3, 4), ContractViolation);
  QuantizedWeights q;
  q.n_neurons = 2;
  q.n_inputs = 2;
  q.codes = {1, 2, 3};  // 3 != 4
  q.row_scale = {1.0f, 1.0f};
  EXPECT_THROW((void)dequantize(q), ContractViolation);
  const auto ok = quantize(std::vector<float>(4, 0.5f), 2, 2);
  EXPECT_THROW((void)quantization_error_bound(ok, 2), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::snn
