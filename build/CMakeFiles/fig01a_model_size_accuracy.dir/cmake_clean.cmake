file(REMOVE_RECURSE
  "CMakeFiles/fig01a_model_size_accuracy.dir/bench/fig01a_model_size_accuracy.cpp.o"
  "CMakeFiles/fig01a_model_size_accuracy.dir/bench/fig01a_model_size_accuracy.cpp.o.d"
  "fig01a_model_size_accuracy"
  "fig01a_model_size_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01a_model_size_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
