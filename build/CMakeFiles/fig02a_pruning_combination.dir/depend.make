# Empty dependencies file for fig02a_pruning_combination.
# This may be replaced when dependencies are built.
