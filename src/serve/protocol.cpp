#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/contracts.hpp"

namespace sparkxd::serve {

namespace {

// Raw little-endian POD append/extract. The framework already reads and
// writes PODs byte for byte (model_io, the artifact), so the wire format
// shares that convention.

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T get(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  SPARKXD_REQUIRE(pos + sizeof(T) <= in.size(),
                  "truncated protocol payload");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

void require_type(const std::vector<std::uint8_t>& payload, MsgType want) {
  SPARKXD_REQUIRE(frame_type(payload) == want,
                  "unexpected protocol message type");
}

}  // namespace

MsgType frame_type(const std::vector<std::uint8_t>& payload) {
  SPARKXD_REQUIRE(!payload.empty(), "empty protocol payload");
  return static_cast<MsgType>(payload[0]);
}

std::vector<std::uint8_t> encode_classify(const ClassifyRequest& request) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + 8 + 4 + request.image.size() * sizeof(float));
  out.push_back(static_cast<std::uint8_t>(MsgType::kClassify));
  put(out, request.id);
  put(out, request.seed);
  put(out, static_cast<std::uint32_t>(request.image.size()));
  for (const float px : request.image) put(out, px);
  return out;
}

ClassifyRequest decode_classify(const std::vector<std::uint8_t>& payload) {
  require_type(payload, MsgType::kClassify);
  std::size_t pos = 1;
  ClassifyRequest req;
  req.id = get<std::uint64_t>(payload, pos);
  req.seed = get<std::uint64_t>(payload, pos);
  const auto n = get<std::uint32_t>(payload, pos);
  SPARKXD_REQUIRE(pos + static_cast<std::size_t>(n) * sizeof(float) ==
                      payload.size(),
                  "classify payload length does not match its pixel count");
  req.image.resize(n);
  for (auto& px : req.image) px = get<float>(payload, pos);
  return req;
}

std::vector<std::uint8_t> encode_reply(const ClassifyReply& reply) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + 4 + 4 + 4);
  out.push_back(static_cast<std::uint8_t>(MsgType::kReply));
  put(out, reply.id);
  put(out, reply.label);
  put(out, reply.spikes);
  put(out, reply.flips);
  return out;
}

ClassifyReply decode_reply(const std::vector<std::uint8_t>& payload) {
  require_type(payload, MsgType::kReply);
  std::size_t pos = 1;
  ClassifyReply rep;
  rep.id = get<std::uint64_t>(payload, pos);
  rep.label = get<std::int32_t>(payload, pos);
  rep.spikes = get<std::uint32_t>(payload, pos);
  rep.flips = get<std::uint32_t>(payload, pos);
  SPARKXD_REQUIRE(pos == payload.size(), "oversized reply payload");
  return rep;
}

std::vector<std::uint8_t> encode_stats_request() {
  return {static_cast<std::uint8_t>(MsgType::kStats)};
}

std::vector<std::uint8_t> encode_stats_reply(const ServerStats& stats) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kStatsReply));
  put(out, stats.served);
  put(out, stats.batches);
  put(out, stats.max_queue_depth);
  put(out, static_cast<std::uint32_t>(stats.batch_hist.size()));
  for (const std::uint64_t h : stats.batch_hist) put(out, h);
  return out;
}

std::vector<std::uint8_t> encode_queue_full(std::uint64_t id) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8);
  out.push_back(static_cast<std::uint8_t>(MsgType::kQueueFull));
  put(out, id);
  return out;
}

std::uint64_t decode_queue_full(const std::vector<std::uint8_t>& payload) {
  require_type(payload, MsgType::kQueueFull);
  std::size_t pos = 1;
  const auto id = get<std::uint64_t>(payload, pos);
  SPARKXD_REQUIRE(pos == payload.size(), "oversized queue-full payload");
  return id;
}

ServerStats decode_stats_reply(const std::vector<std::uint8_t>& payload) {
  require_type(payload, MsgType::kStatsReply);
  std::size_t pos = 1;
  ServerStats stats;
  stats.served = get<std::uint64_t>(payload, pos);
  stats.batches = get<std::uint64_t>(payload, pos);
  stats.max_queue_depth = get<std::uint64_t>(payload, pos);
  const auto n = get<std::uint32_t>(payload, pos);
  SPARKXD_REQUIRE(pos + static_cast<std::size_t>(n) * sizeof(std::uint64_t) ==
                      payload.size(),
                  "stats payload length does not match its histogram size");
  stats.batch_hist.resize(n);
  for (auto& h : stats.batch_hist) h = get<std::uint64_t>(payload, pos);
  return stats;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  SPARKXD_REQUIRE(!payload.empty() && payload.size() <= kMaxFrameBytes,
                  "frame payload must be non-empty and bounded");
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> buf;
  buf.reserve(sizeof(len) + payload.size());
  put(buf, len);
  buf.insert(buf.end(), payload.begin(), payload.end());
  std::size_t done = 0;
  while (done < buf.size()) {
    // MSG_NOSIGNAL keeps a vanished peer from raising SIGPIPE at the
    // server; non-socket fds (tests use pipes too) fall back to write().
    ::ssize_t n = ::send(fd, buf.data() + done, buf.size() - done,
                         MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK)
      n = ::write(fd, buf.data() + done, buf.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone (EPIPE/ECONNRESET) or fd closed
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

/// Reads exactly `n` bytes; returns the byte count actually read (short on
/// EOF or error).
std::size_t read_full(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ::ssize_t r = ::read(fd, out + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;  // EOF
    done += static_cast<std::size_t>(r);
  }
  return done;
}

}  // namespace

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t len_buf[4];
  const std::size_t got = read_full(fd, len_buf, sizeof(len_buf));
  if (got == 0) return false;  // clean EOF at a frame boundary
  SPARKXD_REQUIRE(got == sizeof(len_buf), "truncated frame length prefix");
  std::uint32_t len = 0;
  std::memcpy(&len, len_buf, sizeof(len));
  SPARKXD_REQUIRE(len > 0 && len <= kMaxFrameBytes,
                  "frame length prefix out of bounds");
  payload.resize(len);
  SPARKXD_REQUIRE(read_full(fd, payload.data(), len) == len,
                  "truncated frame payload");
  return true;
}

}  // namespace sparkxd::serve
