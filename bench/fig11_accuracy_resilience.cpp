// Fig. 11: accuracy of (a) the baseline SNN with accurate DRAM, (b) the
// baseline SNN with approximate DRAM, and (c) the SparkXD-improved SNN
// with approximate DRAM — across BER 1e-9..1e-3, network sizes N400..N3600,
// and both datasets.
// Paper: the baseline degrades as BER grows (visibly at 1e-3); the improved
// SNN stays within 1% of the accurate-DRAM baseline at every BER.
//
// This is the framework's headline accuracy experiment and the longest
// bench (a few minutes at SPARKXD_SCALE=1).

#include "bench_common.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

namespace {

using namespace sparkxd;

void run_dataset(data::Task task, Table& table, Table& summary) {
  const std::uint64_t seed = experiment_seed();
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, seed);

  for (const auto neurons : bench::kPaperSizes) {
    const std::size_t n_train = bench::train_samples_for(neurons);
    const std::size_t n_test = bench::test_samples();
    const auto all = data::make_dataset(task, n_train + n_test, seed);
    const auto train = all.take(n_train);
    const auto test = all.drop(n_train);
    Rng rng(hash_combine(seed, neurons));

    // Baseline SNN (trained without DRAM errors) + accurate DRAM.
    const auto cfg = bench::net_config(neurons);
    auto baseline = snn::train_and_label(cfg, train, test, 2, rng);

    // Error machinery over the baseline (training-time) placement.
    const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
    const auto place = mapping::baseline_placement(g, n_weights);
    const auto injector = error::ErrorInjector::for_weights(g, profile, {}, place, n_weights,
                                        seed, 1e-3);

    // SparkXD improvement (Algorithm 1, BER decades up to 1e-3).
    core::FaultTrainingConfig ft;
    ft.ber_stages = {1e-7, 1e-5, 1e-3};
    auto improved = core::improve_error_tolerance(baseline, ft, injector,
                                                  train, test, rng);

    const std::string name = "N" + std::to_string(neurons);
    // The full SparkXD deployment maps the improved model's weights into
    // safe subarrays (Algorithm 2) at the learned tolerance BER_th; the
    // baseline keeps the error-oblivious sequential placement.
    const double ber_th =
        improved.met_target ? improved.ber_th : ft.ber_stages.back();
    double worst_gap = -1.0;
    for (const double ber : bench::kPlotBers) {
      const double acc_base_approx =
          core::evaluate_corrupted(baseline.net, baseline.labels, injector,
                                   ber, test, rng);
      const auto sp = mapping::sparkxd_placement(
          g, profile, ber, std::max(ber, ber_th), n_weights);
      const auto sp_injector = error::ErrorInjector::for_weights(
          g, profile, {}, sp.chunks, n_weights, seed, std::max(ber, 1e-12));
      const double acc_impr_approx = core::evaluate_corrupted(
          improved.improved.net, improved.improved.labels, sp_injector, ber,
          test, rng);
      worst_gap = std::max(worst_gap,
                           baseline.clean_accuracy - acc_impr_approx);
      table.add_row({data::to_string(task), name, Table::sci(ber),
                     Table::pct(100.0 * baseline.clean_accuracy, 1),
                     Table::pct(100.0 * acc_base_approx, 1),
                     Table::pct(100.0 * acc_impr_approx, 1)});
    }
    // One test sample is 1/n_test of accuracy; allow that as noise on the
    // 1% bound when judging the claim.
    const double bound =
        ft.accuracy_bound + 1.0 / static_cast<double>(n_test);
    summary.add_row({data::to_string(task), name,
                     Table::pct(100.0 * baseline.clean_accuracy, 1),
                     Table::num(100.0 * worst_gap, 2),
                     worst_gap <= bound + 1e-9 ? "yes" : "no"});
  }
}

}  // namespace

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 11 — accuracy under approximate DRAM",
                "improved SNN stays within 1% of the accurate-DRAM "
                "baseline across BER 1e-9..1e-3, sizes, and datasets");
  Table t("fig11_accuracy_resilience",
          {"dataset", "network", "BER", "baseline (accurate)",
           "baseline (approx)", "improved (approx, SparkXD)"});
  Table s("fig11_summary",
          {"dataset", "network", "baseline accuracy",
           "worst improved gap [pp]", "within 1%?"});
  run_dataset(data::Task::kDigits, t, s);
  run_dataset(data::Task::kFashion, t, s);
  t.emit();
  s.emit();
  return 0;
}
