#include "common/rng.hpp"

#include <cmath>

namespace sparkxd {

// splitmix64 / hash_combine / next_u64 / uniform / bernoulli are defined
// inline in rng.hpp — the evaluation hot paths make millions of draws and
// must not pay a cross-TU call per draw.

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  // Mix the full current state with the stream id; do not advance *this.
  std::uint64_t h = stream_id;
  for (const auto w : state_) h = hash_combine(h, w);
  return Rng(h);
}

double Rng::uniform(double lo, double hi) {
  SPARKXD_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SPARKXD_REQUIRE(lo <= hi, "uniform_int(lo, hi) needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % span);
}

std::size_t Rng::index(std::size_t n) {
  SPARKXD_REQUIRE(n > 0, "index(n) needs n > 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::normal() noexcept {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::normal(double mean, double sigma) {
  SPARKXD_REQUIRE(sigma >= 0.0, "normal sigma must be >= 0");
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double lambda) {
  SPARKXD_REQUIRE(lambda >= 0.0, "poisson lambda must be >= 0");
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth: multiply uniforms until below exp(-lambda).
    const double l = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction for large lambda.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::exponential(double rate) {
  SPARKXD_REQUIRE(rate > 0.0, "exponential rate must be > 0");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  SPARKXD_REQUIRE(k <= n, "cannot sample more items than the population");
  // Partial Fisher–Yates over an index vector; O(n) memory, O(n) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace sparkxd
