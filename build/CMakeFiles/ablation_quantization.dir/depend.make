# Empty dependencies file for ablation_quantization.
# This may be replaced when dependencies are built.
