#pragma once
// Trained-model serialization.
//
// A deployment trains once (possibly on a workstation) and ships the
// improved model to the edge device, so the trained state — weights,
// adaptive thresholds, neuron labels/biases, and the exact network
// configuration — must round-trip through a file.
//
// Format: a small versioned binary container ("SXDM"), little-endian,
// fixed-width fields; no external dependencies.

#include <string>

#include "snn/trainer.hpp"

namespace sparkxd::snn {

/// Serializes a trained, labelled model to `path`. Throws ContractViolation
/// on I/O failure.
void save_model(const TrainedModel& model, const std::string& path);

/// Loads a model previously written by save_model. Throws on I/O failure,
/// bad magic/version, or a corrupt payload (size mismatch).
[[nodiscard]] TrainedModel load_model(const std::string& path);

}  // namespace sparkxd::snn
