file(REMOVE_RECURSE
  "CMakeFiles/snn_lif_test.dir/tests/snn_lif_test.cpp.o"
  "CMakeFiles/snn_lif_test.dir/tests/snn_lif_test.cpp.o.d"
  "snn_lif_test"
  "snn_lif_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snn_lif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
