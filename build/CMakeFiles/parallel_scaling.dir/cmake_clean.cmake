file(REMOVE_RECURSE
  "CMakeFiles/parallel_scaling.dir/bench/parallel_scaling.cpp.o"
  "CMakeFiles/parallel_scaling.dir/bench/parallel_scaling.cpp.o.d"
  "parallel_scaling"
  "parallel_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
