file(REMOVE_RECURSE
  "CMakeFiles/model_lifecycle.dir/examples/model_lifecycle.cpp.o"
  "CMakeFiles/model_lifecycle.dir/examples/model_lifecycle.cpp.o.d"
  "model_lifecycle"
  "model_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
