// Pluggable EccScheme registry tests: the interface Secded must be
// bit-identical to the legacy secded_encode/secded_decode pair, every
// registered scheme must round-trip clean codewords and restore any
// corruption within its t-guarantee (property/fuzz style, seeded), the
// check-bit auto-sizing must match the declared overhead per codeword size,
// and the Monte-Carlo scrub must stay revertible bit for bit through
// revert_flips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "error/ecc.hpp"
#include "error/ecc_scheme.hpp"

namespace sparkxd::error {
namespace {

EccStatus expected_status(SecdedStatus s) {
  switch (s) {
    case SecdedStatus::kClean: return EccStatus::kClean;
    case SecdedStatus::kCorrected: return EccStatus::kCorrected;
    case SecdedStatus::kUncorrectable: return EccStatus::kDetected;
  }
  return EccStatus::kClean;
}

TEST(EccSchemeSecded, EncodeMatchesLegacyOnRandomCorpus) {
  const auto scheme = make_ecc_scheme({EccKind::kSecded, 64, 0});
  Rng rng(1001);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t word = rng.next_u64();
    std::uint64_t check = 0;
    scheme->encode(&word, &check);
    EXPECT_EQ(check, static_cast<std::uint64_t>(secded_encode(word)));
  }
}

TEST(EccSchemeSecded, DecodeMatchesLegacyUnderRandomCorruption) {
  // 0..3 random codeword-bit flips per word: the interface must report the
  // mapped legacy status and leave the data word in the same state the
  // legacy decoder leaves it in (restored, untouched, or — beyond the
  // guarantee — identically miscorrected).
  const auto scheme = make_ecc_scheme({EccKind::kSecded, 64, 0});
  Rng rng(2002);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t word = rng.next_u64();
    const std::uint8_t check = secded_encode(word);
    std::uint64_t data_a = word, data_b = word;
    std::uint64_t check_a = check;
    std::uint8_t check_b = check;
    const int flips = static_cast<int>(rng.next_u64() % 4);
    for (int f = 0; f < flips; ++f) {
      const unsigned pos = static_cast<unsigned>(rng.next_u64() % 72);
      if (pos < 64) {
        data_a ^= std::uint64_t{1} << pos;
        data_b ^= std::uint64_t{1} << pos;
      } else {
        check_a ^= std::uint64_t{1} << (pos - 64);
        check_b ^= static_cast<std::uint8_t>(1u << (pos - 64));
      }
    }
    const EccDecode r = scheme->decode(&data_a, &check_a);
    const SecdedStatus legacy = secded_decode(data_b, check_b);
    ASSERT_EQ(r.status, expected_status(legacy)) << "word " << i;
    ASSERT_EQ(data_a, data_b) << "word " << i;
    if (r.status == EccStatus::kCorrected) {
      // The interface also repairs the check word, so the corrected
      // codeword is a valid codeword again.
      EXPECT_EQ(check_a, static_cast<std::uint64_t>(secded_encode(data_a)));
    }
  }
}

// ------------------------------------------------------------------ registry

TEST(EccSchemeRegistry, CheckBitSizingMatchesTheDeclaredOverhead) {
  // (kind, data_bits) -> exact auto check-bit count. These are the storage
  // contracts the README documents; a change here is a breaking change to
  // every placement that stores check words.
  const struct {
    EccSpec spec;
    std::size_t check_bits;
  } expected[] = {
      {{EccKind::kNone, 64, 0}, 0},     {{EccKind::kParity, 64, 0}, 1},
      {{EccKind::kSecded, 64, 0}, 8},   {{EccKind::kHsiao, 64, 0}, 8},
      {{EccKind::kHsiao, 128, 0}, 9},   {{EccKind::kBch, 64, 0}, 15},
      {{EccKind::kBch, 4096, 0}, 27},   {{EccKind::kBch, 32768, 0}, 33},
  };
  for (const auto& e : expected) {
    const auto scheme = make_ecc_scheme(e.spec);
    EXPECT_EQ(scheme->check_bits(), e.check_bits) << scheme->name();
    EXPECT_EQ(ecc_min_check_bits(e.spec.kind, e.spec.data_bits), e.check_bits);
    EXPECT_EQ(scheme->data_bits(), e.spec.data_bits);
    EXPECT_DOUBLE_EQ(scheme->storage_overhead(),
                     static_cast<double>(e.check_bits) /
                         static_cast<double>(e.spec.data_bits));
  }
  // The classic SECDED overhead survives the generalization.
  EXPECT_DOUBLE_EQ(make_ecc_scheme({EccKind::kSecded, 64, 0})->storage_overhead(),
                   kEccStorageOverhead);
}

TEST(EccSchemeRegistry, CleanCodewordsAlwaysDecodeClean) {
  Rng rng(3003);
  for (const auto& spec : registered_ecc_specs()) {
    const auto scheme = make_ecc_scheme(spec);
    for (int i = 0; i < 16; ++i) {
      std::vector<std::uint64_t> data(scheme->data_words());
      std::vector<std::uint64_t> check(scheme->check_words());
      for (auto& w : data) w = rng.next_u64();
      scheme->encode(data.data(), check.data());
      const auto orig_data = data;
      const auto orig_check = check;
      const EccDecode r = scheme->decode(data.data(), check.data());
      EXPECT_EQ(r.status, EccStatus::kClean) << scheme->name();
      EXPECT_EQ(r.bits_corrected, 0u) << scheme->name();
      EXPECT_EQ(data, orig_data) << scheme->name();
      EXPECT_EQ(check, orig_check) << scheme->name();
    }
  }
}

TEST(EccSchemeRegistry, AnyCorruptionWithinTheGuaranteeIsFullyRestored) {
  // Property/fuzz: <= t random distinct codeword-bit flips round-trip to the
  // exact original codeword, for every registered scheme with t >= 1.
  Rng rng(4004);
  for (const auto& spec : registered_ecc_specs()) {
    const auto scheme = make_ecc_scheme(spec);
    const unsigned t = scheme->correctable_bits();
    if (t == 0) continue;
    const std::size_t n = scheme->data_bits() + scheme->check_bits();
    for (int i = 0; i < 50; ++i) {
      std::vector<std::uint64_t> data(scheme->data_words());
      std::vector<std::uint64_t> check(scheme->check_words());
      for (auto& w : data) w = rng.next_u64();
      scheme->encode(data.data(), check.data());
      const auto orig_data = data;
      const auto orig_check = check;
      const unsigned k = 1 + static_cast<unsigned>(rng.next_u64() % t);
      std::vector<std::size_t> pos;
      while (pos.size() < k) {
        const std::size_t p = rng.next_u64() % n;
        bool dup = false;
        for (const std::size_t q : pos) dup = dup || q == p;
        if (!dup) pos.push_back(p);
      }
      for (const std::size_t p : pos) {
        if (p < scheme->data_bits())
          data[p / 64] ^= std::uint64_t{1} << (p % 64);
        else
          check[(p - scheme->data_bits()) / 64] ^=
              std::uint64_t{1} << ((p - scheme->data_bits()) % 64);
      }
      const EccDecode r = scheme->decode(data.data(), check.data());
      ASSERT_EQ(r.status, EccStatus::kCorrected)
          << scheme->name() << " iteration " << i;
      EXPECT_EQ(r.bits_corrected, k) << scheme->name();
      EXPECT_EQ(data, orig_data) << scheme->name();
      EXPECT_EQ(check, orig_check) << scheme->name();
    }
  }
}

TEST(EccSchemeRegistry, TolerableRawBerInvertsTheResidualRate) {
  const auto none = make_ecc_scheme({EccKind::kNone, 64, 0});
  const auto parity = make_ecc_scheme({EccKind::kParity, 64, 0});
  const auto secded = make_ecc_scheme({EccKind::kSecded, 64, 0});
  const auto bch = make_ecc_scheme({EccKind::kBch, 64, 0});
  // Detection alone restores no bits: pass-through.
  EXPECT_DOUBLE_EQ(none->tolerable_raw_ber(1e-5), 1e-5);
  EXPECT_DOUBLE_EQ(parity->tolerable_raw_ber(1e-5), 1e-5);
  // t=1 over n=72: sqrt(post * n / (2 * C(72,2))) ~ 3.75e-4.
  EXPECT_NEAR(secded->tolerable_raw_ber(1e-5), 3.753e-4, 1e-6);
  // t=2 over n=79: cbrt(post * n / (3 * C(79,3))) ~ 1.49e-3.
  EXPECT_NEAR(bch->tolerable_raw_ber(1e-5), 1.494e-3, 5e-6);
  // A stronger code tolerates a strictly higher raw BER; tolerance grows
  // with the acceptable residual and never exceeds the 0.4 cap.
  EXPECT_GT(bch->tolerable_raw_ber(1e-5), secded->tolerable_raw_ber(1e-5));
  EXPECT_GT(secded->tolerable_raw_ber(1e-3), secded->tolerable_raw_ber(1e-5));
  EXPECT_LE(bch->tolerable_raw_ber(0.3), 0.4);
}

TEST(EccSchemeRegistry, EscalationLaddersEndAtBch) {
  const auto off = ecc_escalation_ladder({EccKind::kNone, 64, 0});
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0].kind, EccKind::kNone);

  const auto parity = ecc_escalation_ladder({EccKind::kParity, 64, 0});
  ASSERT_EQ(parity.size(), 3u);
  EXPECT_EQ(parity[0].kind, EccKind::kParity);
  EXPECT_EQ(parity[1].kind, EccKind::kSecded);
  EXPECT_EQ(parity[2].kind, EccKind::kBch);

  const auto parity4k = ecc_escalation_ladder({EccKind::kParity, 4096, 0});
  ASSERT_EQ(parity4k.size(), 3u);
  EXPECT_EQ(parity4k[1].kind, EccKind::kHsiao);
  EXPECT_EQ(parity4k[1].data_bits, 4096u);
  EXPECT_EQ(parity4k[2].kind, EccKind::kBch);

  const auto secded = ecc_escalation_ladder({EccKind::kSecded, 64, 0});
  ASSERT_EQ(secded.size(), 2u);
  EXPECT_EQ(secded[1].kind, EccKind::kBch);

  const auto bch = ecc_escalation_ladder({EccKind::kBch, 4096, 0});
  ASSERT_EQ(bch.size(), 1u);

  // Every ladder step is constructible, keeps the codeword size, and
  // strictly increases the tolerable raw BER.
  for (const auto& base : registered_ecc_specs()) {
    const auto ladder = ecc_escalation_ladder(base);
    double prev = -1.0;
    for (const auto& step : ladder) {
      EXPECT_EQ(step.data_bits, base.data_bits);
      const auto scheme = make_ecc_scheme(step);
      const double tol = scheme->tolerable_raw_ber(1e-5);
      EXPECT_GE(tol, prev) << ecc_label(step);
      prev = tol;
    }
  }
}

TEST(EccSchemeRegistry, SpecValidateRejectsInfeasibleShapes) {
  EXPECT_THROW(EccSpec({EccKind::kSecded, 128, 0}).validate(),
               ContractViolation);
  EXPECT_THROW(EccSpec({EccKind::kNone, 48, 0}).validate(), ContractViolation);
  EXPECT_THROW(EccSpec({EccKind::kHsiao, 8192, 0}).validate(),
               ContractViolation);
  EXPECT_THROW(EccSpec({EccKind::kBch, 64, 14}).validate(), ContractViolation);
  EXPECT_THROW(EccSpec({EccKind::kParity, 64, 2}).validate(),
               ContractViolation);
  EXPECT_NO_THROW(EccSpec({EccKind::kBch, 32768, 33}).validate());
  EXPECT_EQ(ecc_label({EccKind::kBch, 4096, 0}), "bch4096b");
  EXPECT_EQ(ecc_label({EccKind::kSecded, 64, 0}), "secded");
  EXPECT_EQ(ecc_label({EccKind::kNone, 64, 0}), "off");
}

// ------------------------------------------------------------------- buffers

TEST(EccSchemeBuffers, EncodeCountAndFloatEquivalentTracksTheCodewords) {
  const auto secded = make_ecc_scheme({EccKind::kSecded, 64, 0});
  EXPECT_EQ(ecc_codeword_count(*secded, 10), 5u);
  // 5 codewords x 8 check bits = 40 bits -> 2 FP32 words.
  EXPECT_EQ(ecc_check_float_equiv(*secded, 10), 2u);
  const auto bch = make_ecc_scheme({EccKind::kBch, 4096, 0});
  EXPECT_EQ(ecc_codeword_count(*bch, 200), 2u);  // 128 floats per codeword
  EXPECT_EQ(ecc_check_float_equiv(*bch, 200), 2u);  // 54 bits -> 2 words

  std::vector<float> w(10, 0.5f);
  EXPECT_EQ(ecc_encode_buffer(*secded, w).size(), 5u);
}

TEST(EccSchemeBuffers, ScrubRestoresWithinGuaranteeAndStaysRevertible) {
  Rng rng(5005);
  for (const auto& spec : registered_ecc_specs()) {
    if (!spec.enabled()) continue;
    const auto scheme = make_ecc_scheme(spec);
    const unsigned t = scheme->correctable_bits();
    std::vector<float> w(3 * spec.data_bits / 32 + 1);
    for (auto& v : w)
      v = static_cast<float>(rng.next_u64() % 1000) / 1000.0f;
    const auto original = w;
    const auto checks = ecc_encode_buffer(*scheme, w);

    // Inject <= t raw flips into one codeword (codeword 1), recording the
    // delta exactly like the frozen-injection hot path does.
    std::vector<WeightFlip> flips;
    const std::size_t floats_per_cw = spec.data_bits / 32;
    const unsigned k = t == 0 ? 1 : t;
    for (unsigned f = 0; f < k; ++f) {
      const std::uint32_t word =
          static_cast<std::uint32_t>(floats_per_cw + f % floats_per_cw);
      flips.push_back({word, w[word]});
      w[word] = flip_float_bit(w[word], 5 + 7 * f);
    }
    const std::size_t n_injected = flips.size();
    const SanitizeRange clip{0.0f, 1.0f, true};
    const EccScrubStats st =
        ecc_scrub_codewords(*scheme, w, checks, flips, n_injected, clip);
    EXPECT_EQ(st.codewords, 1u) << scheme->name();
    if (t >= 1) {
      // Within the guarantee: the buffer is bit-for-bit clean again.
      EXPECT_EQ(st.corrected, 1u) << scheme->name();
      for (std::size_t i = 0; i < w.size(); ++i)
        ASSERT_EQ(float_to_bits(w[i]), float_to_bits(original[i]))
            << scheme->name() << " word " << i;
    } else {
      EXPECT_EQ(st.corrected, 0u) << scheme->name();
    }

    // Reverting the recorded delta restores the pre-injection buffer
    // bit for bit — corrections, detections, and clips included.
    revert_flips(w, flips);
    for (std::size_t i = 0; i < w.size(); ++i)
      ASSERT_EQ(float_to_bits(w[i]), float_to_bits(original[i]))
          << scheme->name() << " word " << i << " after revert";
  }
}

TEST(EccSchemeBuffers, ScrubClipsWhatTheCodeCannotRestore) {
  // Two flips in one SECDED codeword: detected, not corrected — the
  // injected words must go through the load-time clip (no raw Inf/NaN may
  // reach inference), and the delta must still revert bit for bit.
  const auto scheme = make_ecc_scheme({EccKind::kSecded, 64, 0});
  std::vector<float> w(4, 0.75f);
  const auto original = w;
  const auto checks = ecc_encode_buffer(*scheme, w);
  std::vector<WeightFlip> flips;
  flips.push_back({0, w[0]});
  w[0] = flip_float_bit(w[0], 30);  // exponent flip -> huge value
  flips.push_back({1, w[1]});
  w[1] = flip_float_bit(w[1], 3);
  const SanitizeRange clip{0.0f, 1.0f, true};
  const EccScrubStats st =
      ecc_scrub_codewords(*scheme, w, checks, flips, 2, clip);
  EXPECT_EQ(st.detected, 1u);
  EXPECT_EQ(st.corrected, 0u);
  EXPECT_LE(w[0], 1.0f);  // clipped, not raw
  revert_flips(w, flips);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_EQ(float_to_bits(w[i]), float_to_bits(original[i]));
}

}  // namespace
}  // namespace sparkxd::error
