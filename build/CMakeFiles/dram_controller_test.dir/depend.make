# Empty dependencies file for dram_controller_test.
# This may be replaced when dependencies are built.
