#pragma once
// Client side of the serving protocol: a deterministic replay load
// generator plus small helpers (connect, stats fetch, reply digest).
//
// replay() opens N connections, each driven by its own thread with a
// windowed pipeline (up to `window` requests in flight per connection).
// Request i carries id=i, seed=hash_combine(base_seed, i), and image
// pool[i % pool.size()]; connection c sends the requests with i % N == c.
//
// Robustness: each connection slot runs a retry policy that makes the
// replay immune to any number of injected or real failures —
//   * kQueueFull / kDeadlineExceeded  -> jittered exponential backoff,
//     then re-send the same request (it is a pure function of its id);
//   * connection loss (RST, eviction, kBadFrame, EOF) -> backoff,
//     reconnect, re-handshake, and re-send every sent-but-unanswered id;
//   * replies are deduped by id, so a request that was answered AND
//     re-sent (a reconnect race) still lands exactly once.
// Because every reply is a pure function of (artifact, request) — see
// engine.hpp — the id-sorted reply digest is identical no matter how the
// server batches, how many workers it runs, how the replies interleave,
// or how many faults the path injected; that is exactly what the
// serve-smoke golden and the chaos tests pin.
//
// Chaos: when options.chaos has any active mode, each connection slot
// funnels its classify sends through a serve::ChaosConnection seeded
// hash_combine(chaos_seed, slot) — the deterministic network-fault
// injector the retry policy is proven against (see chaos.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "serve/chaos.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"

namespace sparkxd::serve {

/// Backoff/reconnect knobs for the replay client.
struct RetryPolicy {
  std::uint64_t base_backoff_us = 200;   ///< first backoff step
  std::uint64_t max_backoff_us = 50'000; ///< exponential ceiling
  /// Consecutive failed reconnect attempts per connection slot before the
  /// slot declares the server gone.
  std::size_t max_reconnects = 64;
};

struct ClientOptions {
  std::size_t requests = 1000;
  std::size_t connections = 1;
  std::size_t window = 64;  ///< max in-flight requests per connection
  std::uint64_t base_seed = 7;
  /// Negotiate protocol v2 (CRC32-framed) via kHello on every connection.
  bool crc = false;
  /// Network-fault injection on this client's own sends (see chaos.hpp).
  /// A nonzero `corrupt` probability requires crc — without the CRC check
  /// the server would decode corrupted payloads instead of rejecting them.
  ChaosSpec chaos;
  std::uint64_t chaos_seed = 0;
  RetryPolicy retry;
  /// When true, a slot that exhausts its reconnect budget (e.g. the server
  /// is draining) reports partial results instead of making replay()
  /// throw. Replies received remain exact.
  bool allow_partial = false;
};

struct ReplayStats {
  std::uint64_t replies = 0;
  std::uint64_t digest = 0;   ///< id-sorted FNV-1a over all replies
  std::uint64_t wall_ns = 0;  ///< first send to last reply
  /// Re-sends of individual requests (kQueueFull / kDeadlineExceeded
  /// rejections plus unanswered ids re-sent after a reconnect). Timing-
  /// dependent (NOT part of the digest): every request still ends in
  /// exactly one recorded reply, so the digest stays replayable bit for
  /// bit.
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;  ///< successful re-connections after a loss
  std::uint64_t duplicates = 0;  ///< replies dropped by id-level dedupe
  ChaosCounters chaos;           ///< faults the injector actually fired
  /// Connection slots that gave up before answering all their ids (only
  /// possible with allow_partial; otherwise replay() throws).
  std::size_t incomplete_conns = 0;
  /// One entry per reply: first-send-to-reply microseconds (unsorted);
  /// retried requests include their rejected round trips and backoff.
  std::vector<double> latency_us;
};

/// Blocking TCP connect to host:port; throws ContractViolation on failure.
[[nodiscard]] int connect_to(const std::string& host, std::uint16_t port);

/// Drives `options.requests` classify requests from the image pool and
/// collects every reply. Throws if a connection slot exhausts its retry
/// budget (unless options.allow_partial).
[[nodiscard]] ReplayStats replay(const std::string& host, std::uint16_t port,
                                 const data::Dataset& pool,
                                 const ClientOptions& options);

/// Fetches the server counters over a fresh (plain v1) connection.
[[nodiscard]] ServerStats fetch_stats(const std::string& host,
                                      std::uint16_t port);

/// FNV-1a 64 over (id, label, spikes, flips) of the replies in ascending-id
/// order (the input is sorted in place). Concurrency-order independent.
///
/// Latency percentiles: use sparkxd::percentile (common/stats.hpp) — the one
/// shared implementation; an empty sample is a contract violation, never 0.
[[nodiscard]] std::uint64_t digest_replies(std::vector<ClassifyReply>& replies);

}  // namespace sparkxd::serve
