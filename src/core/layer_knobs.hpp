#pragma once
// Per-layer (voltage x refresh x ECC) operating-point search — the
// EnforceSNN/EDEN completion of the per-layer follow-ons: EnforceSNN maps
// less-tolerant layers to shorter-refresh regions, EDEN assigns DRAM
// parameters per layer; assign_layer_knobs does both across all three
// approximation axes at once.
//
// For every layer the search walks the cross-product of the scenario's
// voltage grid, a refresh-interval ladder, and the ECC escalation ladder of
// the configured base code, and picks the minimum-energy triple whose
// combined raw bit-error rate (voltage BER composed with the refresh
// ladder's retention-failure probability) stays within what the candidate
// code can absorb at the layer's learned tolerance BER_th — the same
// accuracy floor analyze_layer_tolerance derived the threshold under
// (baseline accuracy - accuracy_bound), so "meets the floor" is exactly
// "post-correction residual BER <= BER_th".
//
// Candidate energy is a real controller simulation: the layer's rows form
// one dram::RefreshRegion at the candidate cadence (commands dodge that
// region's REF windows only) and the refresh charge is the power model's
// per-region term — REF commands scaled by the fraction of module rows the
// region actually retires. The search is deterministic and consumes no Rng:
// candidates are evaluated with parallel_for into a preallocated table and
// the winner is chosen by a value-based total order (energy, then higher
// voltage, then lower multiplier, then weaker code), so the result is
// invariant to thread count AND to candidate-enumeration order.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dram/geometry.hpp"
#include "error/ecc_scheme.hpp"
#include "error/error_model.hpp"
#include "error/subarray_profile.hpp"

namespace sparkxd::core {

/// Knob-search configuration (part of PipelineConfig).
struct LayerKnobsConfig {
  bool enabled = false;
  /// Refresh-interval multipliers to consider, in units of tREFI (>= 1,
  /// strictly ascending; 1 = datasheet cadence). The default spans the same
  /// decades as the voltage axis (see error::RetentionSpec).
  std::vector<double> refresh_ladder = {1.0, 2.0, 4.0, 8.0};

  /// Throws ContractViolation on an invalid ladder.
  void validate() const;
};

/// The chosen (voltage, refresh, ECC) triple of one layer, plus the
/// evaluation that justified it.
struct LayerKnobChoice {
  double v_supply = 0.0;
  double module_ber = 0.0;          ///< voltage-axis BER at v_supply
  double refresh_multiplier = 1.0;  ///< tREFI multiplier of the layer region
  error::EccSpec ecc;               ///< assigned code (may be the base spec)
  std::string ecc_scheme;           ///< scheme name, e.g. "secded(72,64)"
  double raw_ber = 0.0;        ///< voltage BER composed with retention p_fail
  double tolerable_ber = 0.0;  ///< raw BER the code absorbs at this BER_th
  double energy_nj = 0.0;      ///< one weight-stream pass at this triple
  bool meets_floor = false;    ///< raw_ber <= tolerable_ber under a met BER_th
  std::size_t retention_weak_cells = 0;  ///< weak cells at this cadence
};

/// Full search result: per-layer choices plus the best *uniform* triple
/// (one (v, m, ecc) shared by every layer) as the baseline the per-layer
/// assignment must beat — by construction sum(layers) <= uniform when the
/// uniform point exists, since each layer minimizes over a superset.
struct LayerKnobsReport {
  std::vector<LayerKnobChoice> layers;
  double total_energy_nj = 0.0;  ///< sum of the per-layer choices
  /// Minimum-total-energy single triple feasible for ALL layers; fields are
  /// zero / meets_floor=false when no such triple exists.
  LayerKnobChoice uniform;
  double uniform_energy_nj = 0.0;  ///< all layers streamed at `uniform`
  bool uniform_feasible = false;
};

/// Everything the search needs from the pipeline (no Rng: the search is a
/// pure function of these inputs).
struct LayerKnobsInputs {
  dram::Geometry geometry;
  const error::SubarrayProfile* profile = nullptr;
  error::ErrorModelSpec error_model;  ///< retention spec template
  std::vector<double> voltages;       ///< candidate supply voltages
  error::EccSpec ecc;                 ///< base code; ladder derived from it
  std::vector<double> layer_ber_th;   ///< per-layer tolerance (0 = not met)
  std::vector<bool> layer_met_target;
  std::vector<std::size_t> layer_weights;  ///< payload FP32 words per layer
  bool salp = false;
  std::uint64_t seed = 0;
};

/// Runs the search. Deterministic in its inputs; thread- and
/// enumeration-order-invariant (see file header).
[[nodiscard]] LayerKnobsReport assign_layer_knobs(const LayerKnobsConfig& cfg,
                                                  const LayerKnobsInputs& in);

}  // namespace sparkxd::core
