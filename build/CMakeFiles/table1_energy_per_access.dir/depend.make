# Empty dependencies file for table1_energy_per_access.
# This may be replaced when dependencies are built.
