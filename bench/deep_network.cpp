// Deep-network phase bench: the layer-stack pipeline at depths 1..3.
//
// Runs the tiny golden digits workload as the flat single-layer network and
// as 2-/3-layer stacks, and reports per depth the wall clock of each
// pipeline phase (train / fault-aware training incl. the per-layer
// tolerance analysis / per-voltage sweep), the per-layer BER_th vector the
// tolerance analysis produced, and the lowest-voltage accuracy/energy.
// Depth multiplies the tolerance-analysis and mapping work (one analysis
// and one placement per layer) while the added hidden layers keep the
// weight volume — and so the DRAM energy — in the same regime; this bench
// tracks that cost structure. Emits the sparkxd-bench-v1 JSON via --json.

#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace sparkxd;
  bench::banner("Deep-network phase breakdown",
                "per-layer tolerance analysis and per-layer error-aware "
                "mapping generalize the Fig. 7 flow to layer stacks "
                "(EnforceSNN-style per-layer BER thresholds)");

  const auto* base = scenario::find_scenario("smoke-digits-m0");
  SPARKXD_REQUIRE(base != nullptr, "smoke scenario missing from registry");

  struct Depth {
    const char* name;
    std::vector<std::size_t> hidden;
  };
  const std::vector<Depth> depths = {
      {"flat", {}}, {"deep2", {48}}, {"deep3", {48, 32}}};

  std::vector<scenario::Scenario> sweep;
  for (const auto& d : depths) {
    scenario::Scenario s = *base;
    s.name = std::string("bench-") + d.name;
    s.description = "deep-network bench point";
    s.seed = experiment_seed();
    s.hidden_neurons = d.hidden;
    sweep.push_back(std::move(s));
  }

  const auto results = scenario::run_scenarios(sweep);

  bench::BenchReport report("deep_network");
  Table t("deep_network",
          {"stack", "train_ms", "fault+tol_ms", "sweep_ms", "layer_ber_th",
           "acc@lowV", "energy@lowV"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& tm = r.report.timings;
    const auto& low = r.report.per_voltage.back();
    std::string berths;
    for (std::size_t l = 0; l < r.report.layer_ber_th.size(); ++l) {
      if (l != 0) berths += "/";
      berths += Table::sci(r.report.layer_ber_th[l], 0);
    }
    t.add_row({depths[i].name, Table::num(tm.train_ns / 1e6, 1),
               Table::num(tm.fault_training_ns / 1e6, 1),
               Table::num(tm.sweep_ns / 1e6, 1), berths,
               Table::num(low.accuracy, 3), Table::num(low.energy_nj, 1)});

    auto& phase = report.add_phase(depths[i].name, 1, tm.total_ns);
    phase.metrics.emplace_back("train_ns", tm.train_ns);
    phase.metrics.emplace_back("fault_training_ns", tm.fault_training_ns);
    phase.metrics.emplace_back("sweep_ns", tm.sweep_ns);
    phase.metrics.emplace_back(
        "n_layers", static_cast<double>(r.report.layer_ber_th.size()));
    phase.metrics.emplace_back("accuracy_low_v", low.accuracy);
    phase.metrics.emplace_back("energy_nj_low_v", low.energy_nj);
  }
  t.emit();

  if (const char* path = bench::json_out_path(argc, argv))
    if (!report.write(path)) return 1;
  return 0;
}
