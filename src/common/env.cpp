#include "common/env.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/stats.hpp"

namespace sparkxd {

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (!s || !*s) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  return end != s ? v : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* s = std::getenv(name);
  if (!s || !*s) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  return end != s ? v : fallback;
}

double workload_scale() {
  return clamp(env_double("SPARKXD_SCALE", 1.0), 0.05, 100.0);
}

std::uint64_t experiment_seed() {
  return static_cast<std::uint64_t>(env_int("SPARKXD_SEED", 42));
}

std::size_t thread_count() {
  const auto fallback = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  const std::int64_t v = env_int("SPARKXD_THREADS", fallback);
  return static_cast<std::size_t>(std::clamp<std::int64_t>(v, 1, 256));
}

std::size_t scaled(std::size_t base, std::size_t lo) {
  const double v = std::round(static_cast<double>(base) * workload_scale());
  const auto n = static_cast<std::size_t>(v < 0 ? 0 : v);
  return n < lo ? lo : n;
}

}  // namespace sparkxd
