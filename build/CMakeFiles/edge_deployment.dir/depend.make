# Empty dependencies file for edge_deployment.
# This may be replaced when dependencies are built.
