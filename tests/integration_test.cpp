// Cross-module integration and invariant tests: the voltage model feeding
// the controller, energy consistency between the per-access probes and full
// traces, the mapping/injector interaction that underpins Algorithm 2's
// accuracy guarantee, and determinism of a whole experiment.

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "dram/controller.hpp"
#include "energy/ber_model.hpp"
#include "energy/power_model.hpp"
#include "energy/voltage_model.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"

namespace sparkxd {
namespace {

TEST(Integration, ReducedVoltageTimingsSlowTheController) {
  // VoltageModel -> TimingParams -> Controller: reduced supply voltage must
  // increase the makespan of a row-cycling trace.
  const auto g = dram::Geometry::lpddr3_4gb();
  const energy::VoltageModel vm;
  dram::AccessTrace trace;
  for (std::uint32_t r = 0; r < 32; ++r)
    trace.push_back({dram::Address{0, 0, 0, 0, 0, r, 0},
                     dram::AccessType::kRead});
  double prev = 0.0;
  for (const double v : {1.350, 1.175, 1.025}) {
    dram::Controller c(g, vm.derive_timings(v));
    const double t = c.run(trace).total_time_ns;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Integration, PerAccessProbeConsistentWithTraceEnergy) {
  // A 1-access trace must cost approximately what the Fig. 2b per-access
  // probe reports for a miss (identical command set and latency window).
  const auto g = dram::Geometry::lpddr3_4gb();
  const energy::PowerModel pm;
  const auto timing = dram::TimingParams::lpddr3_1600();
  dram::Controller c(g, timing);
  const auto stats = c.run(
      {{dram::Address{0, 0, 0, 0, 0, 0, 0}, dram::AccessType::kRead}});
  auto e_trace = pm.trace_energy(stats, energy::kNominalVdd).total_nj();
  // The trace also accounts the trailing PRE of the still-open row; remove
  // it for the comparison.
  e_trace -= pm.params().e_pre_nj;
  const double e_probe = pm.access_energy_nj(dram::RowBufferOutcome::kMiss,
                                             energy::kNominalVdd, timing);
  EXPECT_NEAR(e_trace, e_probe, 0.05);
}

TEST(Integration, BerModelVoltagesMatchInjectionSeverity) {
  // Lower supply voltage -> higher module BER -> more weak cells enumerated
  // over the same placement.
  const auto g = dram::Geometry::lpddr3_4gb();
  const energy::BerModel bm;
  const error::SubarrayProfile profile(g, 9);
  const std::size_t n_weights = 50000;
  const auto place = mapping::baseline_placement(g, n_weights);
  std::vector<float> weights(n_weights, 0.1f);
  std::size_t prev = 0;
  for (const double v : {1.175, 1.100, 1.025}) {
    const double ber = bm.ber(v);
    const auto inj = error::ErrorInjector::for_weights(g, profile, {}, place, n_weights, 9, ber);
    auto w = weights;
    const auto flips = inj.inject_all_weak(w, ber);
    EXPECT_GT(flips, prev);
    prev = flips;
  }
}

TEST(Integration, SafeSubarrayMappingReducesEffectiveErrors) {
  // The heart of Algorithm 2's accuracy guarantee: at the same module BER,
  // weights placed via sparkxd_placement (safe subarrays only) suffer fewer
  // bit errors than the baseline placement.
  const auto g = dram::Geometry::lpddr3_4gb();
  // Seed chosen arbitrarily; the property must hold for any seed because
  // the proposed placement filters subarrays by rate.
  for (const std::uint64_t seed : {1ull, 7ull, 2024ull}) {
    const error::SubarrayProfile profile(g, seed);
    const double ber = 1e-3;
    const std::size_t n_weights = 784 * 400;
    const auto base = mapping::baseline_placement(g, n_weights);
    const auto prop =
        mapping::sparkxd_placement(g, profile, ber, ber, n_weights);
    const auto inj_base = error::ErrorInjector::for_weights(g, profile, {}, base, n_weights,
                                        seed, ber);
    const auto inj_prop = error::ErrorInjector::for_weights(g, profile, {}, prop.chunks,
                                        n_weights, seed, ber);
    // Average weakness of the subarrays the baseline lands in can be above
    // or below 1, but the proposed placement's cells are drawn only from
    // rate <= BER_th subarrays, capping expected flips at n_bits * ber.
    const double bits = static_cast<double>(n_weights) * 32.0;
    EXPECT_LE(inj_prop.expected_flips(ber), bits * ber * 1.05);
  }
}

TEST(Integration, WholeExperimentIsDeterministic) {
  core::PipelineConfig cfg;
  cfg.network.n_neurons = 36;
  cfg.network.seed = 42;
  cfg.train_samples = 120;
  cfg.test_samples = 60;
  cfg.baseline_epochs = 1;
  cfg.fault_training.ber_stages = {1e-5, 1e-3};
  cfg.voltages = {1.175, 1.025};
  const auto a = core::run_pipeline(cfg);
  const auto b = core::run_pipeline(cfg);
  EXPECT_EQ(a.baseline_accuracy, b.baseline_accuracy);
  EXPECT_EQ(a.ber_th, b.ber_th);
  ASSERT_EQ(a.per_voltage.size(), b.per_voltage.size());
  for (std::size_t i = 0; i < a.per_voltage.size(); ++i) {
    EXPECT_EQ(a.per_voltage[i].accuracy, b.per_voltage[i].accuracy);
    EXPECT_EQ(a.per_voltage[i].energy_nj, b.per_voltage[i].energy_nj);
  }
}

TEST(Integration, EnergySavingGrowsMonotonicallyWithVoltageReduction) {
  // Fig. 12a's defining shape, independent of the SNN: for a fixed
  // placement, each voltage step down saves more energy.
  const auto g = dram::Geometry::lpddr3_4gb();
  const std::size_t n_weights = 784 * 900;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto base = core::weight_stream_energy(g, place, n_weights,
                                               energy::kNominalVdd);
  double prev_saving = -1.0;
  for (const double v : energy::kEvalVoltages) {
    const auto te = core::weight_stream_energy(g, place, n_weights, v);
    const double saving =
        1.0 - te.energy.total_nj() / base.energy.total_nj();
    EXPECT_GT(saving, prev_saving);
    prev_saving = saving;
  }
  // And the headline number: ~40% at 1.025 V.
  EXPECT_NEAR(prev_saving, 0.395, 0.03);
}

TEST(Integration, EnergyScalesWithNetworkSize) {
  // Fig. 12a across sizes: larger networks move more weights and cost
  // proportionally more DRAM energy.
  const auto g = dram::Geometry::lpddr3_4gb();
  double prev = 0.0;
  for (const std::size_t neurons : {400u, 900u, 1600u, 2500u, 3600u}) {
    const std::size_t n_weights = 784 * neurons;
    const auto place = mapping::baseline_placement(g, n_weights);
    const auto te = core::weight_stream_energy(g, place, n_weights,
                                               energy::kNominalVdd);
    EXPECT_GT(te.energy.total_nj(), prev);
    prev = te.energy.total_nj();
  }
}

TEST(Integration, Fig2aCombinationWithPruning) {
  // Fig. 2a: approximate DRAM composes with weight pruning — energy falls
  // with connectivity at both voltages, and the approximate-DRAM curve sits
  // strictly below the accurate one.
  const auto g = dram::Geometry::lpddr3_4gb();
  const std::size_t full = 784 * 4900;
  double prev_acc = 1e18, prev_apx = 1e18;
  for (const double conn : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
    const auto n = static_cast<std::size_t>(conn * static_cast<double>(full));
    const auto place = mapping::baseline_placement(g, n);
    const double e_acc =
        core::weight_stream_energy(g, place, n, 1.350).energy.total_nj();
    const double e_apx =
        core::weight_stream_energy(g, place, n, 1.025).energy.total_nj();
    EXPECT_LT(e_apx, e_acc);
    EXPECT_LT(e_acc, prev_acc);
    EXPECT_LT(e_apx, prev_apx);
    prev_acc = e_acc;
    prev_apx = e_apx;
  }
}

}  // namespace
}  // namespace sparkxd
